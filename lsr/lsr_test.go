package lsr

import (
	"strings"
	"testing"
)

func TestCompileAndRun(t *testing.T) {
	p, err := Compile("(define (f x) (+ x 1)) (f 41)", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "42" {
		t.Errorf("value = %s", res.Value)
	}
	if res.Counters.Instructions == 0 {
		t.Error("no instructions counted")
	}
}

func TestRunValidated(t *testing.T) {
	p, err := Compile(`
(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(fib 12)`, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunValidated(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "144" {
		t.Errorf("value = %s", res.Value)
	}
}

func TestOptionsMatrix(t *testing.T) {
	src := "(let loop ([i 0] [a 0]) (if (= i 50) a (loop (+ i 1) (+ a i))))"
	for _, saves := range []SaveStrategy{SaveLazy, SaveEarly, SaveLate} {
		for _, rest := range []RestorePolicy{RestoreEager, RestoreLazy} {
			opts := DefaultOptions()
			opts.Saves = saves
			opts.Restores = rest
			p, err := Compile(src, opts)
			if err != nil {
				t.Fatalf("%v/%v: %v", saves, rest, err)
			}
			res, err := p.RunValidated(nil)
			if err != nil {
				t.Fatalf("%v/%v: %v", saves, rest, err)
			}
			if res.Value != "1225" {
				t.Errorf("%v/%v: value = %s", saves, rest, res.Value)
			}
		}
	}
}

func TestCalleeSaveOptions(t *testing.T) {
	opts := DefaultOptions()
	opts.Config.CalleeSaveRegs = 6
	opts.CalleeSave = true
	p, err := Compile("(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 10)", opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunValidated(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "3628800" {
		t.Errorf("value = %s", res.Value)
	}
}

func TestInterpretOracle(t *testing.T) {
	v, err := Interpret("(map (lambda (x) (* x x)) '(1 2 3))", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != "(1 4 9)" {
		t.Errorf("value = %s", v)
	}
}

func TestOutputWriter(t *testing.T) {
	p, err := Compile(`(display "hi") (newline) 'done`, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if _, err := p.Run(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "hi\n" {
		t.Errorf("output = %q", b.String())
	}
}

func TestDisassemble(t *testing.T) {
	p, err := Compile("(+ 1 2)", Options{Config: Config{ArgRegs: 2}, NoPrelude: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Disassemble(), "halt") {
		t.Error("disassembly missing halt")
	}
}

func TestBenchmarksExposed(t *testing.T) {
	bs := Benchmarks()
	if len(bs) < 20 {
		t.Fatalf("got %d benchmarks", len(bs))
	}
	tak, err := BenchmarkByName("tak")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(tak.Source, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != tak.Expect {
		t.Errorf("tak = %s, want %s", res.Value, tak.Expect)
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestParsers(t *testing.T) {
	if s, err := ParseSaveStrategy("early"); err != nil || s != SaveEarly {
		t.Error("ParseSaveStrategy(early)")
	}
	if _, err := ParseSaveStrategy("bogus"); err == nil {
		t.Error("expected error")
	}
	if r, err := ParseRestorePolicy("lazy"); err != nil || r != RestoreLazy {
		t.Error("ParseRestorePolicy(lazy)")
	}
	if m, err := ParseShuffleMethod("naive"); err != nil || m != ShuffleNaive {
		t.Error("ParseShuffleMethod(naive)")
	}
	if SaveLazy.String() != "lazy" || RestoreEager.String() != "eager" || ShuffleGreedy.String() != "greedy" {
		t.Error("String() misbehaves")
	}
}

func TestStepBudget(t *testing.T) {
	p, err := Compile("(define (spin) (spin)) (spin)", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunWithCost(nil, DefaultCostModel(), 100000); err == nil {
		t.Error("expected step budget error")
	}
}

func TestCompileError(t *testing.T) {
	if _, err := Compile("(lambda x x)", DefaultOptions()); err == nil {
		t.Error("expected error for variadic lambda")
	}
}

func TestShuffleStatsOption(t *testing.T) {
	opts := DefaultOptions()
	opts.ShuffleStats = true
	p, err := Compile("(define (f a b) (f b a)) (if #f (f 1 2) 'ok)", opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.CallSites == 0 {
		t.Error("no call sites recorded")
	}
	if p.Stats.SitesOptimal+p.Stats.SitesSuboptimal != p.Stats.CallSites {
		t.Error("optimality comparison missing")
	}
}
