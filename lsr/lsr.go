// Package lsr is the public API of the register-allocation library: a
// mini-Scheme compiler and register-machine simulator built around the
// PLDI'95 Burger/Waddell/Dybvig allocator — lazy saves, eager restores,
// and greedy shuffling.
//
// Quick start:
//
//	prog, err := lsr.Compile(`(define (f x) (+ x 1)) (f 41)`, lsr.DefaultOptions())
//	res, err := prog.Run(nil)
//	fmt.Println(res.Value)            // "42"
//	fmt.Println(res.Counters.StackRefs())
//
// The Options select the save strategy (lazy/early/late), the restore
// policy (eager/lazy), the argument shuffler (greedy/optimal/naive), the
// register configuration, and the §2.4 callee-save mode — every knob the
// paper's evaluation turns.
package lsr

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/dataflow"
	"repro/internal/findings"
	"repro/internal/prim"
	"repro/internal/verify"
	"repro/internal/vm"
)

// SaveStrategy selects where register saves are placed (§2.1, §4).
type SaveStrategy int

// Save strategies.
const (
	// SaveLazy saves as soon as a call is inevitable (the paper).
	SaveLazy SaveStrategy = iota
	// SaveEarly saves at definition points (the callee-save-style extreme).
	SaveEarly
	// SaveLate saves immediately before each call (the caller-save extreme).
	SaveLate
	// SaveSimple places saves with the simple one-set S[E] algorithm of
	// §2.1.1 — sound but "too lazy" around short-circuit boolean tests
	// (the ablation motivating the revised algorithm).
	SaveSimple
)

// RestorePolicy selects where restores are placed (§2.2).
type RestorePolicy int

// Restore policies.
const (
	// RestoreEager restores immediately after each call everything
	// possibly referenced before the next call (the paper).
	RestoreEager RestorePolicy = iota
	// RestoreLazy restores at first use and on save-region exit.
	RestoreLazy
)

// ShuffleMethod selects the argument-shuffling algorithm (§2.3).
type ShuffleMethod int

// Shuffle methods.
const (
	// ShuffleGreedy is the paper's greedy ordering with cycle breaking.
	ShuffleGreedy ShuffleMethod = iota
	// ShuffleOptimal exhaustively minimizes temporaries.
	ShuffleOptimal
	// ShuffleNaive evaluates arguments left to right.
	ShuffleNaive
)

// Config is the machine's register layout.
type Config struct {
	// ArgRegs is the number of argument registers (paper default 6).
	ArgRegs int
	// UserRegs is the number of user-variable registers (paper default 6).
	UserRegs int
	// CalleeSaveRegs sizes the callee-save register file for the §2.4
	// mode.
	CalleeSaveRegs int
}

// Options configures a compilation.
type Options struct {
	Config   Config
	Saves    SaveStrategy
	Restores RestorePolicy
	Shuffle  ShuffleMethod
	// CalleeSave enables the §2.4 callee-save discipline (requires
	// Config.CalleeSaveRegs > 0).
	CalleeSave bool
	// PredictBranches enables the §6 static branch prediction extension.
	PredictBranches bool
	// ShuffleStats additionally compares the shuffler against the
	// exhaustive optimum at every call site (visible in Stats).
	ShuffleStats bool
	// NoPrelude omits the Scheme runtime library.
	NoPrelude bool
	// Verify runs the static translation validator over the emitted code
	// as a compiler post-pass: it proves the lazy-save, eager-restore and
	// shuffle invariants hold on every static path, and Compile fails
	// with the violations otherwise.
	Verify bool
	// Lint runs the static optimality analyzer over the emitted code:
	// it detects allocation waste (redundant saves, dead restores,
	// suboptimal shuffle sequences) and computes a static per-procedure
	// cycle estimate. The report is attached to the compiled Program as
	// Lint; unlike Verify it never fails the compilation.
	Lint bool
}

// DefaultOptions is the paper's configuration: six argument and six user
// registers, lazy saves, eager restores, greedy shuffling.
func DefaultOptions() Options {
	return Options{Config: Config{ArgRegs: 6, UserRegs: 6}}
}

// BaselineOptions is the Table 3 baseline: no argument or user
// registers, so all parameters and variables live on the stack.
func BaselineOptions() Options {
	return Options{}
}

func (o Options) internal() compiler.Options {
	out := compiler.DefaultOptions()
	out.Config = vm.Config{
		ArgRegs:        o.Config.ArgRegs,
		UserRegs:       o.Config.UserRegs,
		ScratchRegs:    8,
		CalleeSaveRegs: o.Config.CalleeSaveRegs,
	}
	out.Saves = codegen.SaveStrategy(o.Saves)
	out.Restores = codegen.RestorePolicy(o.Restores)
	out.Shuffle = codegen.ShuffleMethod(o.Shuffle)
	out.CalleeSave = o.CalleeSave
	out.PredictBranches = o.PredictBranches
	out.ComputeShuffleStats = o.ShuffleStats
	out.NoPrelude = o.NoPrelude
	out.Verify = o.Verify
	out.Lint = o.Lint
	return out
}

// VerifyError is the error returned by Compile when Options.Verify is
// set and the translation validator rejects the emitted code. It
// carries the individual violations for structured reporting.
type VerifyError = verify.Error

// Violation is one translation-validator finding: which invariant broke
// (missing save, missing restore, shuffle mismatch, ...), where, and a
// static path witnessing it.
type Violation = verify.Violation

// LintReport is the optimality analyzer's result: waste findings
// (redundant saves, dead restores, excess shuffle moves/temporaries),
// per-procedure static cost estimates, and aggregate counts. Attached
// to Program.Lint when Options.Lint is set.
type LintReport = analysis.Report

// LintFinding is one statically detected piece of allocation waste.
type LintFinding = analysis.Finding

// InterprocReport is the interprocedural save/restore audit's result:
// cross-call dead restores and redundant saves that only a whole-program
// view can see, plus call-site resolution totals. Produced on demand by
// Program.AnalyzeInterproc; the findings are advisory (they measure the
// headroom an interprocedural allocator would have, not emitter bugs).
type InterprocReport = dataflow.InterprocReport

// InterprocStats is the audit's aggregate totals.
type InterprocStats = dataflow.InterprocStats

// StructuredFinding is the JSON-ready finding format shared by the
// verifier and the lint analyzer (kind, pc, reg/slot, witness path).
type StructuredFinding = findings.Finding

// StructuredReport is the JSON envelope for a pass's findings.
type StructuredReport = findings.Report

// WriteFindings renders a structured report as indented JSON.
func WriteFindings(w io.Writer, r StructuredReport) error {
	return findings.WriteJSON(w, r)
}

// VerifyFindings converts a VerifyError's violations to the structured
// finding format.
func VerifyFindings(err *VerifyError) []StructuredFinding {
	return verify.Findings(err.Violations)
}

// Stats are static compilation measurements.
type Stats = codegen.Stats

// Counters are the machine's dynamic measurements (stack references,
// cycles, the Table 2 activation classification, and more).
type Counters = vm.Counters

// Slot kinds index Counters.ReadsByKind and Counters.WritesByKind to
// break stack traffic down by purpose.
const (
	KindSave    = vm.KindSave
	KindRestore = vm.KindRestore
	KindArg     = vm.KindArg
	KindTemp    = vm.KindTemp
	KindVar     = vm.KindVar
)

// CostModel charges cycles for instructions, stack traffic and load-use
// stalls.
type CostModel = vm.CostModel

// DefaultCostModel approximates an early-90s RISC.
func DefaultCostModel() CostModel { return vm.DefaultCostModel() }

// Program is a compiled program.
type Program struct {
	compiled *vm.Program
	// Stats holds the allocator's static measurements.
	Stats Stats
	// Lint holds the optimality analyzer's report (nil unless
	// Options.Lint was set).
	Lint *LintReport
}

// Compile compiles mini-Scheme source text.
func Compile(src string, opts Options) (*Program, error) {
	c, err := compiler.Compile(src, opts.internal())
	if err != nil {
		return nil, err
	}
	return &Program{compiled: c.Program, Stats: c.Stats, Lint: c.Lint}, nil
}

// Result is the outcome of running a program.
type Result struct {
	// Value is the program result in Scheme write notation.
	Value string
	// Counters are the dynamic measurements of the run.
	Counters Counters
}

// Run executes the program; out receives display/write output (nil
// discards it).
func (p *Program) Run(out io.Writer) (*Result, error) {
	return p.run(out, DefaultCostModel(), false, 0)
}

// RunValidated executes with restore validation: caller-save registers
// are poisoned at every call boundary and reads of destroyed registers
// trap. Useful when experimenting with allocator changes.
func (p *Program) RunValidated(out io.Writer) (*Result, error) {
	return p.run(out, DefaultCostModel(), true, 0)
}

// RunWithCost executes under an explicit cost model and step budget
// (0 = unlimited).
func (p *Program) RunWithCost(out io.Writer, cost CostModel, maxSteps int64) (*Result, error) {
	return p.run(out, cost, false, maxSteps)
}

// ErrFuelExhausted is returned (wrapped) by every Run variant when the
// program exhausts its step budget; match it with errors.Is.
var ErrFuelExhausted = vm.ErrFuelExhausted

// RunOptions configures one execution of a compiled Program.
type RunOptions struct {
	// Cost is the machine cost model (zero value = DefaultCostModel).
	Cost CostModel
	// Validate poisons caller-save registers at call boundaries so a
	// missing restore traps instead of yielding wrong answers.
	Validate bool
	// MaxSteps is the execution fuel (0 = unlimited): the run fails
	// with an error matching ErrFuelExhausted once the budget is spent.
	MaxSteps int64
}

// RunWithOptions executes with every run knob explicit; out receives
// display/write output (nil discards it).
func (p *Program) RunWithOptions(out io.Writer, ro RunOptions) (*Result, error) {
	cost := ro.Cost
	if cost == (CostModel{}) {
		cost = DefaultCostModel()
	}
	return p.run(out, cost, ro.Validate, ro.MaxSteps)
}

func (p *Program) run(out io.Writer, cost CostModel, validate bool, maxSteps int64) (*Result, error) {
	m := vm.New(p.compiled, out)
	m.SetCostModel(cost)
	m.ValidateRestores = validate
	m.MaxSteps = maxSteps
	v, err := m.Run()
	if err != nil {
		return nil, err
	}
	return &Result{Value: prim.WriteString(v), Counters: m.Counters}, nil
}

// Disassemble renders the compiled code.
func (p *Program) Disassemble() string { return p.compiled.Disassemble() }

// AnalyzeInterproc runs the interprocedural save/restore waste audit
// over the compiled code: it resolves each call site's callee, computes
// transitive may-clobber summaries, and reports saves and restores that
// are provably no-ops for the program as compiled (see the lsrc -lint
// and -interproc flags for the CLI surface).
func (p *Program) AnalyzeInterproc() *InterprocReport {
	return dataflow.AnalyzeInterproc(p.compiled)
}

// Interpret evaluates source with the reference interpreter (the
// engine-independent oracle).
func Interpret(src string, out io.Writer) (string, error) {
	v, err := compiler.Interpret(src, false, out)
	if err != nil {
		return "", err
	}
	return prim.WriteString(v), nil
}

// Benchmark is one program of the paper's evaluation suite.
type Benchmark struct {
	Name        string
	Description string
	Source      string
	// Expect is the expected result in write notation.
	Expect string
	// Large marks the Table 1 large-program stand-ins.
	Large bool
}

// Benchmarks returns the evaluation suite (Gabriel benchmarks plus the
// large-program stand-ins) in table order.
func Benchmarks() []Benchmark {
	all := bench.All()
	out := make([]Benchmark, len(all))
	for i, p := range all {
		out[i] = Benchmark{
			Name:        p.Name,
			Description: p.Description,
			Source:      p.Source,
			Expect:      p.Expect,
			Large:       p.Large,
		}
	}
	return out
}

// BenchmarkByName fetches one benchmark.
func BenchmarkByName(name string) (Benchmark, error) {
	p, err := bench.ByName(name)
	if err != nil {
		return Benchmark{}, err
	}
	return Benchmark{
		Name: p.Name, Description: p.Description, Source: p.Source,
		Expect: p.Expect, Large: p.Large,
	}, nil
}

// String implementations for the option enums.

func (s SaveStrategy) String() string {
	return codegen.SaveStrategy(s).String()
}

func (r RestorePolicy) String() string {
	return codegen.RestorePolicy(r).String()
}

func (s ShuffleMethod) String() string {
	return codegen.ShuffleMethod(s).String()
}

// ParseSaveStrategy parses "lazy", "early" or "late".
func ParseSaveStrategy(s string) (SaveStrategy, error) {
	switch s {
	case "lazy":
		return SaveLazy, nil
	case "early":
		return SaveEarly, nil
	case "late":
		return SaveLate, nil
	case "simple":
		return SaveSimple, nil
	}
	return 0, fmt.Errorf("lsr: unknown save strategy %q (want lazy, early, late or simple)", s)
}

// ParseRestorePolicy parses "eager" or "lazy".
func ParseRestorePolicy(s string) (RestorePolicy, error) {
	switch s {
	case "eager":
		return RestoreEager, nil
	case "lazy":
		return RestoreLazy, nil
	}
	return 0, fmt.Errorf("lsr: unknown restore policy %q (want eager or lazy)", s)
}

// ParseShuffleMethod parses "greedy", "optimal" or "naive".
func ParseShuffleMethod(s string) (ShuffleMethod, error) {
	switch s {
	case "greedy":
		return ShuffleGreedy, nil
	case "optimal":
		return ShuffleOptimal, nil
	case "naive":
		return ShuffleNaive, nil
	}
	return 0, fmt.Errorf("lsr: unknown shuffle method %q (want greedy, optimal or naive)", s)
}
