// Quickstart: compile a mini-Scheme program with the paper's allocator
// (lazy saves, eager restores, greedy shuffling), run it, and inspect
// the measurements the paper's evaluation is built on.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/lsr"
)

const program = `
;; A classic: the Takeuchi function — the paper's Table 4/5 kernel,
;; chosen because it "isolates the effect of register save/restore
;; strategies for calls".
(define (tak x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))

(display "tak(18, 12, 6) = ")
(display (tak 18 12 6))
(newline)
(tak 18 12 6)`

func main() {
	// Compile under the paper's configuration: six argument registers,
	// six user registers, lazy saves, eager restores, greedy shuffling.
	// Verify additionally runs the static translation validator over the
	// emitted code, proving the save/restore/shuffle invariants hold.
	opts := lsr.DefaultOptions()
	opts.Verify = true
	prog, err := lsr.Compile(program, opts)
	if err != nil {
		log.Fatal(err)
	}

	res, err := prog.Run(os.Stdout)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nresult value: %s\n\n", res.Value)
	fmt.Println("machine counters:")
	fmt.Print(res.Counters.String())

	// The same program with the early-save strategy, for comparison.
	early := opts
	early.Saves = lsr.SaveEarly
	prog2, err := lsr.Compile(program, early)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := prog2.Run(nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nlazy saves:  %8d stack references, %9d cycles\n",
		res.Counters.StackRefs(), res.Counters.Cycles)
	fmt.Printf("early saves: %8d stack references, %9d cycles\n",
		res2.Counters.StackRefs(), res2.Counters.Cycles)
	fmt.Printf("lazy saves eliminate %.0f%% of early's stack references on tak\n",
		100*(1-float64(res.Counters.StackRefs())/float64(res2.Counters.StackRefs())))
}
