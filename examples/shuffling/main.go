// Shuffling demonstrates the greedy argument-shuffling algorithm of
// §2.3/§3.1 on the paper's own examples, then compares the greedy,
// naive and exhaustive-optimal shufflers over random call-site
// dependency graphs.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/regset"
	"repro/lsr"
)

func main() {
	fmt.Println("== The paper's swap example: f(y, x) with x in a1, y in a2 ==")
	swap := []core.ShuffleArg{
		{Target: 0, Reads: regset.Of(1)}, // a1 <- y (currently in a2)
		{Target: 1, Reads: regset.Of(0)}, // a2 <- x (currently in a1)
	}
	show(swap)

	fmt.Println("== The paper's no-shuffle example: f(x+y, y+1, y+z) ==")
	noshuffle := []core.ShuffleArg{
		{Target: 0, Reads: regset.Of(0, 1)}, // a1 <- x+y
		{Target: 1, Reads: regset.Of(1)},    // a2 <- y+1
		{Target: 2, Reads: regset.Of(1, 2)}, // a3 <- y+z
	}
	fmt.Println("greedy (evaluates y+1 last, zero temporaries):")
	show(noshuffle)
	fmt.Println("naive left-to-right (needs a temporary):")
	plan := core.NaiveShuffle(noshuffle, regset.Empty)
	printPlan(noshuffle, plan)

	fmt.Println("== Greedy vs optimal over 20000 random sparse call sites ==")
	rng := rand.New(rand.NewSource(1995))
	sites, cyclic, matched, extra := 0, 0, 0, 0
	for i := 0; i < 20000; i++ {
		m := 2 + rng.Intn(5)
		args := make([]core.ShuffleArg, m)
		for j := range args {
			args[j].Target = j
			for k := 0; k < rng.Intn(3); k++ {
				args[j].Reads = args[j].Reads.Add(rng.Intn(m))
			}
		}
		g := core.GreedyShuffle(args, regset.Empty)
		opt := core.OptimalSimpleTemps(args)
		sites++
		if g.HadCycle {
			cyclic++
		}
		if g.SimpleTemps == opt {
			matched++
		} else {
			extra += g.SimpleTemps - opt
		}
	}
	fmt.Printf("call sites: %d, cyclic: %d (%.1f%%; paper: 7%%)\n",
		sites, cyclic, 100*float64(cyclic)/float64(sites))
	fmt.Printf("greedy optimal at %d (%.2f%%; paper: all but 6 of 20245), total excess temps %d\n\n",
		matched, 100*float64(matched)/float64(sites), extra)

	fmt.Println("== And in compiled code: the swap loop runs with one temporary ==")
	opts := lsr.DefaultOptions()
	opts.Verify = true // the validator checks the emitted shuffle too
	prog, err := lsr.Compile(`
(define (spin x y n)
  (if (zero? n) (list x y) (spin y x (- n 1))))
(spin 'a 'b 101)`, opts)
	if err != nil {
		panic(err)
	}
	res, err := prog.Run(nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("(spin 'a 'b 101) = %s after 101 argument swaps\n", res.Value)
}

func show(args []core.ShuffleArg) {
	plan := core.GreedyShuffle(args, regset.Empty)
	printPlan(args, plan)
}

func printPlan(args []core.ShuffleArg, plan core.Plan) {
	for _, st := range plan.Steps {
		target := args[st.Arg].Target
		switch st.Dest {
		case core.DestTarget:
			fmt.Printf("  eval arg%d -> a%d\n", st.Arg+1, target+1)
		case core.DestRegTemp:
			fmt.Printf("  eval arg%d -> temp register r%d\n", st.Arg+1, st.TempReg)
		case core.DestStackTemp:
			fmt.Printf("  eval arg%d -> stack temporary\n", st.Arg+1)
		}
	}
	for _, argIdx := range plan.Moves {
		fmt.Printf("  move temp -> a%d\n", args[argIdx].Target+1)
	}
	fmt.Printf("  (cycle: %v, simple temps: %d)\n\n", plan.HadCycle, plan.SimpleTemps)
}
