// Leafprofile reproduces the paper's central observation (§1/Table 2):
// while *syntactic* leaf routines account for a minority of procedure
// activations, *effective* leaf routines — activations that happen to
// make no calls at run time — account for the large majority, which is
// what makes lazy save placement pay off.
//
// It runs a few benchmarks from the evaluation suite and prints each
// one's dynamic call-graph breakdown, plus the per-procedure profile of
// one of them.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/lsr"
)

func main() {
	names := []string{"tak", "deriv", "browse", "minieval", "typecheck"}
	// Every compilation in the examples runs the translation validator.
	opts := lsr.DefaultOptions()
	opts.Verify = true

	fmt.Printf("%-12s %12s %10s %10s %10s %10s\n",
		"benchmark", "activations", "syn-leaf", "eff-leaf", "ns-intern", "syn-intern")
	for _, name := range names {
		b, err := lsr.BenchmarkByName(name)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := lsr.Compile(b.Source, opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := prog.Run(nil)
		if err != nil {
			log.Fatal(err)
		}
		c := res.Counters
		sl, nsl, nsi, si := c.Breakdown()
		fmt.Printf("%-12s %12d %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
			name, c.ClassifiedActivations(), sl*100, (sl+nsl)*100, nsi*100, si*100)
	}

	// Per-procedure detail for deriv: which procedures are the
	// effective leaves?
	b, err := lsr.BenchmarkByName("deriv")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := lsr.Compile(b.Source, opts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run(nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-procedure activations for deriv (top 10 by count):")
	perProc := res.Counters.PerProc
	sort.Slice(perProc, func(i, j int) bool { return perProc[i].Activations > perProc[j].Activations })
	fmt.Printf("%-16s %12s %12s %12s\n", "procedure", "activations", "made-call", "eff-leaf%")
	shown := 0
	for _, p := range perProc {
		if p.Activations == 0 || shown == 10 {
			continue
		}
		shown++
		leafPct := 100 * (1 - float64(p.MadeCalls)/float64(p.Activations))
		fmt.Printf("%-16s %12d %12d %11.1f%%\n", p.Name, p.Activations, p.MadeCalls, leafPct)
	}

	fmt.Println("\nThe paper's takeaway: saving registers only once a call is inevitable")
	fmt.Println("lets every effective-leaf activation skip its saves entirely.")
}
