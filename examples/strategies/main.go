// Strategies compares the three save-placement strategies (§2.1/§4) and
// the two restore policies (§2.2) on one program, showing the generated
// code for a small procedure so the placement differences are visible.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/lsr"
)

// The demo procedure has both a call-free path (the base case — an
// effective leaf when taken) and a path with two calls (where late
// placement saves twice and lazy saves once).
const program = `
(define (fib n)
  (if (< n 2)
      n
      (+ (fib (- n 1)) (fib (- n 2)))))
(fib 17)`

func main() {
	type row struct {
		name string
		opts lsr.Options
	}
	base := lsr.DefaultOptions()
	base.Verify = true // statically validate every compilation below
	early := base
	early.Saves = lsr.SaveEarly
	late := base
	late.Saves = lsr.SaveLate
	lazyRestores := base
	lazyRestores.Restores = lsr.RestoreLazy

	rows := []row{
		{"lazy saves / eager restores (the paper)", base},
		{"early saves", early},
		{"late saves", late},
		{"lazy saves / lazy restores", lazyRestores},
	}

	fmt.Println("fib(17) under four allocator configurations:")
	fmt.Printf("%-42s %10s %10s %10s %10s\n", "configuration", "saves", "restores", "stackrefs", "cycles")
	for _, r := range rows {
		prog, err := lsr.Compile(program, r.opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := prog.RunValidated(nil)
		if err != nil {
			log.Fatal(err)
		}
		if res.Value != "1597" {
			log.Fatalf("%s: wrong answer %s", r.name, res.Value)
		}
		c := res.Counters
		fmt.Printf("%-42s %10d %10d %10d %10d\n", r.name,
			c.WritesByKind[lsr.KindSave], c.ReadsByKind[lsr.KindRestore], c.StackRefs(), c.Cycles)
	}

	// Show fib's generated code under lazy saves: the save of n and ret
	// sits inside the else arm (after the < test), so the base case
	// — two thirds of all activations — never touches the stack.
	prog, err := lsr.Compile(program, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfib compiled with lazy saves (note: no saves before the branch):")
	printProc(prog.Disassemble(), "fib")
}

// printProc extracts one procedure's listing from the disassembly.
func printProc(asm, name string) {
	lines := strings.Split(asm, "\n")
	printing := false
	for _, l := range lines {
		if strings.HasSuffix(l, ":") {
			printing = strings.TrimSuffix(l, ":") == name
		}
		if printing {
			fmt.Println(l)
		}
	}
}
