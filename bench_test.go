// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation, plus micro-benchmarks of
// the allocator's hot components. Custom metrics expose the paper's own
// units (stack references, simulated cycles) alongside Go's ns/op:
//
//	go test -bench=. -benchmem                 # everything, quick suite
//	go test -bench=BenchmarkTable3 -suite=full # one table, full suite
package repro

import (
	"flag"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/regset"
)

var suiteFlag = flag.String("suite", "quick", "benchmark suite for the table benchmarks: quick or full")

// suite returns the benchmark set for table regeneration.
func suite(b *testing.B) []*bench.Program {
	b.Helper()
	if *suiteFlag == "full" {
		return bench.All()
	}
	var out []*bench.Program
	for _, n := range []string{"minieval", "typecheck", "tak", "deriv", "browse"} {
		p, err := bench.ByName(n)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// BenchmarkTable2 regenerates the dynamic call-graph summary and reports
// the effective-leaf fraction (paper: over two thirds).
func BenchmarkTable2(b *testing.B) {
	progs := suite(b)
	var eff float64
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.Table2(progs)
		if err != nil {
			b.Fatal(err)
		}
		eff = 0
		for _, r := range rows {
			eff += r.EffectiveLeaf()
		}
		eff /= float64(len(rows))
	}
	b.ReportMetric(eff*100, "effleaf%")
}

// BenchmarkTable3 regenerates the stack-reference table and reports the
// average lazy-save reduction (paper: 72%) and speedup (paper: 43%).
func BenchmarkTable3(b *testing.B) {
	progs := suite(b)
	var red, perf float64
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.Table3(progs)
		if err != nil {
			b.Fatal(err)
		}
		red, perf = 0, 0
		for _, r := range rows {
			lr, _, _ := r.Reductions()
			lp, _, _ := r.Speedups()
			red += lr
			perf += lp
		}
		red /= float64(len(rows))
		perf /= float64(len(rows))
	}
	b.ReportMetric(red*100, "lazyrefs%")
	b.ReportMetric(perf*100, "lazyperf%")
}

// BenchmarkTable4 regenerates the C-vs-Chez tak comparison and reports
// the lazy caller-save speedup over callee-save early (paper: 14% over cc).
func BenchmarkTable4(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.Table4()
		if err != nil {
			b.Fatal(err)
		}
		c := rows[0].Cycles
		chez := rows[len(rows)-1].Cycles
		gain = float64(c)/float64(chez) - 1
	}
	b.ReportMetric(gain*100, "speedup%")
}

// BenchmarkTable5 regenerates the callee-save study and reports lazy
// callee-save's speedup over early (paper: 60-91%).
func BenchmarkTable5(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.Table5()
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(rows[0].Cycles)/float64(rows[1].Cycles) - 1
	}
	b.ReportMetric(gain*100, "speedup%")
}

// BenchmarkFigure1 verifies the derived Figure 1 equations over random
// expressions.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure1(500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates the eager-vs-lazy restore shapes.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShuffleOptimality regenerates the §3.1 statistics and reports
// the cyclic-call-site fraction (paper: 7%).
func BenchmarkShuffleOptimality(b *testing.B) {
	progs := suite(b)
	var cyclic float64
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.ShuffleStats(progs)
		if err != nil {
			b.Fatal(err)
		}
		sites, cyc := 0, 0
		for _, r := range rows {
			sites += r.CallSites
			cyc += r.CyclicSites
		}
		cyclic = float64(cyc) / float64(sites)
	}
	b.ReportMetric(cyclic*100, "cyclic%")
}

// BenchmarkRegisterSweep regenerates the §4 register-count sweep on tak
// and reports the 0→6-register speedup.
func BenchmarkRegisterSweep(b *testing.B) {
	p, err := bench.ByName("tak")
	if err != nil {
		b.Fatal(err)
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.RegisterSweep(p)
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(rows[0].GreedyCycles)/float64(rows[6].GreedyCycles) - 1
	}
	b.ReportMetric(gain*100, "speedup%")
}

// BenchmarkRestorePolicy regenerates the §2.2 eager-vs-lazy restore
// comparison and reports the average lazy/eager cycle ratio (paper: ≈1).
func BenchmarkRestorePolicy(b *testing.B) {
	progs := suite(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.RestoreStudy(progs)
		if err != nil {
			b.Fatal(err)
		}
		ratio = 0
		for _, r := range rows {
			ratio += float64(r.LazyCycles) / float64(r.EagerCycles)
		}
		ratio /= float64(len(rows))
	}
	b.ReportMetric(ratio, "lazy/eager")
}

// BenchmarkBranchPrediction regenerates the §6 static-branch-prediction
// study and reports the average gain (paper: 2-3%).
func BenchmarkBranchPrediction(b *testing.B) {
	progs := suite(b)
	var gain float64
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.BranchStudy(progs, 3)
		if err != nil {
			b.Fatal(err)
		}
		gain = 0
		for _, r := range rows {
			gain += float64(r.Unpredicted)/float64(r.Predicted) - 1
		}
		gain /= float64(len(rows))
	}
	b.ReportMetric(gain*100, "gain%")
}

// --- micro-benchmarks of the allocator's components -------------------

// BenchmarkCompileTak measures end-to-end compilation (reader through
// code generation) of the tak benchmark plus the runtime prelude.
func BenchmarkCompileTak(b *testing.B) {
	p, err := bench.ByName("tak")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := compiler.Compile(p.Source, compiler.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMTak measures simulator throughput on compiled tak.
func BenchmarkVMTak(b *testing.B) {
	p, err := bench.ByName("tak")
	if err != nil {
		b.Fatal(err)
	}
	var instr int64
	for i := 0; i < b.N; i++ {
		m, err := bench.Measure(p, bench.PaperOptions())
		if err != nil {
			b.Fatal(err)
		}
		instr = m.Counters.Instructions
	}
	b.ReportMetric(float64(instr), "instructions")
}

// BenchmarkGreedyShuffle measures the greedy shuffler on random
// dependency graphs.
func BenchmarkGreedyShuffle(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	graphs := make([][]core.ShuffleArg, 256)
	for i := range graphs {
		m := 2 + rng.Intn(5)
		args := make([]core.ShuffleArg, m)
		for j := range args {
			args[j].Target = j
			for k := 0; k < rng.Intn(3); k++ {
				args[j].Reads = args[j].Reads.Add(rng.Intn(m))
			}
		}
		graphs[i] = args
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GreedyShuffle(graphs[i%len(graphs)], regset.Empty)
	}
}

// BenchmarkSaveAnalysis measures the revised S_t/S_f computation on the
// simplified language.
func BenchmarkSaveAnalysis(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	var build func(depth int) core.Expr
	build = func(depth int) core.Expr {
		if depth == 0 {
			return core.Call{LiveAfter: regset.Set(rng.Uint64()) & 0xff}
		}
		return core.If{
			Test: core.Var{Reg: rng.Intn(8)},
			Then: core.Seq{E1: build(depth - 1), E2: core.Var{Reg: rng.Intn(8)}},
			Else: build(depth - 1),
		}
	}
	e := build(12)
	r := regset.Universe(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Revised(e, r)
	}
}

// BenchmarkAllocatorOnly isolates pass 1 + pass 2 (analysis and
// emission) from the front end, the quantity behind the paper's "7% of
// compile time" figure.
func BenchmarkAllocatorOnly(b *testing.B) {
	p, err := bench.ByName("boyer")
	if err != nil {
		b.Fatal(err)
	}
	c, err := compiler.Compile(p.Source, compiler.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Recompiling the already-built IR is not possible (annotations
		// are in-place), so measure the full back end via a fresh
		// front-end per iteration, subtracting nothing; the compile-time
		// study (lsrbench -compiletime) reports the split.
		if _, err := compiler.Compile(p.Source, compiler.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
	_ = c
}

// BenchmarkStrategies runs fib under each save strategy for a direct
// simulated-cycle comparison.
func BenchmarkStrategies(b *testing.B) {
	fib := &bench.Program{
		Name: "fib-17",
		Source: `
(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(fib 17)`,
		Expect: "1597",
	}
	for _, s := range []codegen.SaveStrategy{codegen.SaveLazy, codegen.SaveEarly, codegen.SaveLate} {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				m, err := bench.Measure(fib, bench.StrategyOptions(s))
				if err != nil {
					b.Fatal(err)
				}
				cycles = m.Counters.Cycles
			}
			b.ReportMetric(float64(cycles), "simcycles")
		})
	}
}
