package ast

import (
	"fmt"

	"repro/internal/sexp"
)

// parser carries the mutable state of a parse: the variable counter and
// gensym counter.
type parser struct {
	nextVar int
	nextTmp int
}

// scope is a lexical environment mapping names to bindings.
type scope struct {
	parent *scope
	vars   map[sexp.Symbol]*Var
}

func (s *scope) lookup(name sexp.Symbol) *Var {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.vars[name]; ok {
			return v
		}
	}
	return nil
}

func (s *scope) child() *scope {
	return &scope{parent: s, vars: map[sexp.Symbol]*Var{}}
}

func (p *parser) newVar(name sexp.Symbol) *Var {
	v := &Var{Name: name, ID: p.nextVar}
	p.nextVar++
	return v
}

func (p *parser) gensym(stem string) sexp.Symbol {
	p.nextTmp++
	return sexp.Symbol(fmt.Sprintf("%%%s.%d", stem, p.nextTmp))
}

// ParseProgram parses a sequence of top-level forms. Top-level defines
// become Defs; remaining expressions are sequenced into the body. The
// value of the last body expression is the program result.
func ParseProgram(forms []sexp.Datum) (*Program, error) {
	p := &parser{}
	top := &scope{vars: map[sexp.Symbol]*Var{}}
	prog := &Program{}
	var body []Expr
	for _, f := range forms {
		if name, rhs, ok := splitDefine(f); ok {
			e, err := p.parse(rhs, top, string(name))
			if err != nil {
				return nil, err
			}
			prog.Defs = append(prog.Defs, Def{Name: name, Rhs: e})
			continue
		}
		e, err := p.parse(f, top, "")
		if err != nil {
			return nil, err
		}
		body = append(body, e)
	}
	switch len(body) {
	case 0:
		prog.Body = Unspecified
	case 1:
		prog.Body = body[0]
	default:
		prog.Body = &Begin{Exprs: body}
	}
	prog.NumVars = p.nextVar
	return prog, nil
}

// ParseString is a convenience wrapper: read all datums in src and parse
// them as a program.
func ParseString(src string) (*Program, error) {
	forms, err := sexp.ReadAll(src)
	if err != nil {
		return nil, err
	}
	return ParseProgram(forms)
}

// splitDefine recognizes (define name rhs) and (define (name . formals)
// body...) and returns the name and an equivalent rhs datum.
func splitDefine(d sexp.Datum) (sexp.Symbol, sexp.Datum, bool) {
	pair, ok := d.(*sexp.Pair)
	if !ok || pair.Car != sexp.Symbol("define") {
		return "", nil, false
	}
	items, err := sexp.ListItems(d)
	if err != nil || len(items) < 2 {
		return "", nil, false
	}
	switch head := items[1].(type) {
	case sexp.Symbol:
		if len(items) == 2 {
			return head, sexp.List(sexp.Symbol("quote"), sexp.Symbol("#!unspecified")), true
		}
		if len(items) == 3 {
			return head, items[2], true
		}
		return "", nil, false
	case *sexp.Pair:
		name, ok := head.Car.(sexp.Symbol)
		if !ok {
			return "", nil, false
		}
		lam := sexp.Cons(sexp.Symbol("lambda"), sexp.Cons(head.Cdr, sexp.List(items[2:]...)))
		return name, lam, true
	default:
		return "", nil, false
	}
}

// parse converts one datum to core AST. nameHint labels lambdas for
// profiling output.
func (p *parser) parse(d sexp.Datum, env *scope, nameHint string) (Expr, error) {
	switch t := d.(type) {
	case sexp.Fixnum, sexp.Flonum, sexp.Boolean, sexp.Char, sexp.Str:
		return &Const{Value: t}, nil
	case sexp.Symbol:
		if v := env.lookup(t); v != nil {
			return &Ref{Var: v}, nil
		}
		return &GlobalRef{Name: t}, nil
	case *sexp.Pair:
		return p.parseForm(t, env, nameHint)
	case sexp.Empty:
		return nil, fmt.Errorf("ast: empty application ()")
	default:
		return nil, fmt.Errorf("ast: cannot parse %s", d)
	}
}

func (p *parser) parseForm(form *sexp.Pair, env *scope, nameHint string) (Expr, error) {
	head, isSym := form.Car.(sexp.Symbol)
	if isSym && env.lookup(head) == nil {
		switch head {
		case "quote":
			items, err := formItems(form, 2, 2)
			if err != nil {
				return nil, err
			}
			return &Const{Value: items[1]}, nil
		case "quasiquote":
			items, err := formItems(form, 2, 2)
			if err != nil {
				return nil, err
			}
			expanded, err := expandQuasiquote(items[1], 1)
			if err != nil {
				return nil, err
			}
			return p.parse(expanded, env, nameHint)
		case "if":
			items, err := formItems(form, 3, 4)
			if err != nil {
				return nil, err
			}
			test, err := p.parse(items[1], env, "")
			if err != nil {
				return nil, err
			}
			then, err := p.parse(items[2], env, "")
			if err != nil {
				return nil, err
			}
			var els Expr = Unspecified
			if len(items) == 4 {
				if els, err = p.parse(items[3], env, ""); err != nil {
					return nil, err
				}
			}
			return &If{Test: test, Then: then, Else: els}, nil
		case "begin":
			items, err := formItems(form, 1, -1)
			if err != nil {
				return nil, err
			}
			return p.parseBody(items[1:], env)
		case "lambda":
			return p.parseLambda(form, env, nameHint)
		case "let":
			return p.parseLet(form, env, nameHint)
		case "let*":
			return p.parseLetStar(form, env, nameHint)
		case "letrec", "letrec*":
			return p.parseLetrec(form, env, nameHint)
		case "set!":
			items, err := formItems(form, 3, 3)
			if err != nil {
				return nil, err
			}
			name, ok := items[1].(sexp.Symbol)
			if !ok {
				return nil, fmt.Errorf("ast: set! target must be a symbol, got %s", items[1])
			}
			rhs, err := p.parse(items[2], env, string(name))
			if err != nil {
				return nil, err
			}
			if v := env.lookup(name); v != nil {
				v.Assigned = true
				return &Set{Var: v, Rhs: rhs}, nil
			}
			return &GlobalSet{Name: name, Rhs: rhs}, nil
		case "and":
			items, err := formItems(form, 1, -1)
			if err != nil {
				return nil, err
			}
			return p.parseAnd(items[1:], env)
		case "or":
			items, err := formItems(form, 1, -1)
			if err != nil {
				return nil, err
			}
			return p.parseOr(items[1:], env)
		case "not":
			items, err := formItems(form, 2, 2)
			if err != nil {
				return nil, err
			}
			e, err := p.parse(items[1], env, "")
			if err != nil {
				return nil, err
			}
			// (not E) = (if E #f #t), per Figure 1.
			return &If{Test: e, Then: False, Else: True}, nil
		case "when":
			items, err := formItems(form, 3, -1)
			if err != nil {
				return nil, err
			}
			test, err := p.parse(items[1], env, "")
			if err != nil {
				return nil, err
			}
			body, err := p.parseBody(items[2:], env)
			if err != nil {
				return nil, err
			}
			return &If{Test: test, Then: body, Else: Unspecified}, nil
		case "unless":
			items, err := formItems(form, 3, -1)
			if err != nil {
				return nil, err
			}
			test, err := p.parse(items[1], env, "")
			if err != nil {
				return nil, err
			}
			body, err := p.parseBody(items[2:], env)
			if err != nil {
				return nil, err
			}
			return &If{Test: test, Then: Unspecified, Else: body}, nil
		case "cond":
			return p.parseCond(form, env)
		case "case":
			return p.parseCase(form, env)
		case "do":
			return p.parseDo(form, env)
		case "define":
			return nil, fmt.Errorf("ast: define is only allowed at top level or at the head of a body")
		}
	}
	// Ordinary application.
	items, err := formItems(form, 1, -1)
	if err != nil {
		return nil, err
	}
	fn, err := p.parse(items[0], env, "")
	if err != nil {
		return nil, err
	}
	args := make([]Expr, 0, len(items)-1)
	for _, a := range items[1:] {
		e, err := p.parse(a, env, "")
		if err != nil {
			return nil, err
		}
		args = append(args, e)
	}
	return &Call{Fn: fn, Args: args}, nil
}

// parseBody handles internal defines at the head of a body by rewriting
// them into a letrec*, then sequences the remaining expressions.
func (p *parser) parseBody(forms []sexp.Datum, env *scope) (Expr, error) {
	var names []sexp.Symbol
	var rhss []sexp.Datum
	i := 0
	for ; i < len(forms); i++ {
		name, rhs, ok := splitDefine(forms[i])
		if !ok {
			break
		}
		names = append(names, name)
		rhss = append(rhss, rhs)
	}
	rest := forms[i:]
	if len(names) > 0 {
		if len(rest) == 0 {
			return nil, fmt.Errorf("ast: body consists only of definitions")
		}
		inner := env.child()
		vars := make([]*Var, len(names))
		for j, n := range names {
			vars[j] = p.newVar(n)
			inner.vars[n] = vars[j]
		}
		inits := make([]Expr, len(rhss))
		for j, r := range rhss {
			e, err := p.parse(r, inner, string(names[j]))
			if err != nil {
				return nil, err
			}
			inits[j] = e
		}
		body, err := p.parseBody(rest, inner)
		if err != nil {
			return nil, err
		}
		return &Letrec{Vars: vars, Inits: inits, Body: body}, nil
	}
	if len(rest) == 0 {
		return Unspecified, nil
	}
	exprs := make([]Expr, 0, len(rest))
	for _, f := range rest {
		e, err := p.parse(f, env, "")
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
	}
	if len(exprs) == 1 {
		return exprs[0], nil
	}
	return &Begin{Exprs: exprs}, nil
}

func (p *parser) parseLambda(form *sexp.Pair, env *scope, nameHint string) (Expr, error) {
	items, err := formItems(form, 3, -1)
	if err != nil {
		return nil, err
	}
	formals, err := sexp.ListItems(items[1])
	if err != nil {
		return nil, fmt.Errorf("ast: lambda formals must be a proper list (variadic procedures are not supported): %s", items[1])
	}
	inner := env.child()
	params := make([]*Var, len(formals))
	for i, f := range formals {
		name, ok := f.(sexp.Symbol)
		if !ok {
			return nil, fmt.Errorf("ast: lambda formal must be a symbol, got %s", f)
		}
		params[i] = p.newVar(name)
		inner.vars[name] = params[i]
	}
	body, err := p.parseBody(items[2:], inner)
	if err != nil {
		return nil, err
	}
	if nameHint == "" {
		nameHint = "anon"
	}
	return &Lambda{Params: params, Body: body, Name: nameHint}, nil
}

// parseLet handles both ordinary and named let.
func (p *parser) parseLet(form *sexp.Pair, env *scope, nameHint string) (Expr, error) {
	items, err := formItems(form, 3, -1)
	if err != nil {
		return nil, err
	}
	if loopName, ok := items[1].(sexp.Symbol); ok {
		return p.parseNamedLet(loopName, items[2:], env)
	}
	names, inits, err := p.parseBindings(items[1], env)
	if err != nil {
		return nil, err
	}
	inner := env.child()
	vars := make([]*Var, len(names))
	for i, n := range names {
		vars[i] = p.newVar(n)
		inner.vars[n] = vars[i]
	}
	body, err := p.parseBody(items[2:], inner)
	if err != nil {
		return nil, err
	}
	return &Let{Vars: vars, Inits: inits, Body: body}, nil
}

func (p *parser) parseBindings(d sexp.Datum, env *scope) ([]sexp.Symbol, []Expr, error) {
	bindings, err := sexp.ListItems(d)
	if err != nil {
		return nil, nil, fmt.Errorf("ast: malformed bindings %s", d)
	}
	names := make([]sexp.Symbol, len(bindings))
	inits := make([]Expr, len(bindings))
	for i, b := range bindings {
		pair, err := sexp.ListItems(b)
		if err != nil || len(pair) != 2 {
			return nil, nil, fmt.Errorf("ast: malformed binding %s", b)
		}
		name, ok := pair[0].(sexp.Symbol)
		if !ok {
			return nil, nil, fmt.Errorf("ast: binding name must be a symbol: %s", b)
		}
		names[i] = name
		init, err := p.parse(pair[1], env, string(name))
		if err != nil {
			return nil, nil, err
		}
		inits[i] = init
	}
	return names, inits, nil
}

// parseNamedLet expands (let loop ([x e] ...) body) into
// (letrec ([loop (lambda (x ...) body)]) (loop e ...)).
func (p *parser) parseNamedLet(loopName sexp.Symbol, rest []sexp.Datum, env *scope) (Expr, error) {
	if len(rest) < 2 {
		return nil, fmt.Errorf("ast: malformed named let %s", loopName)
	}
	names, inits, err := p.parseBindings(rest[0], env)
	if err != nil {
		return nil, err
	}
	outer := env.child()
	loopVar := p.newVar(loopName)
	outer.vars[loopName] = loopVar
	inner := outer.child()
	params := make([]*Var, len(names))
	for i, n := range names {
		params[i] = p.newVar(n)
		inner.vars[n] = params[i]
	}
	body, err := p.parseBody(rest[1:], inner)
	if err != nil {
		return nil, err
	}
	lam := &Lambda{Params: params, Body: body, Name: string(loopName)}
	callArgs := make([]Expr, len(inits))
	copy(callArgs, inits)
	return &Letrec{
		Vars:  []*Var{loopVar},
		Inits: []Expr{lam},
		Body:  &Call{Fn: &Ref{Var: loopVar}, Args: callArgs},
	}, nil
}

func (p *parser) parseLetStar(form *sexp.Pair, env *scope, nameHint string) (Expr, error) {
	items, err := formItems(form, 3, -1)
	if err != nil {
		return nil, err
	}
	bindings, err := sexp.ListItems(items[1])
	if err != nil {
		return nil, fmt.Errorf("ast: malformed let* bindings")
	}
	return p.parseLetStarLoop(bindings, items[2:], env)
}

func (p *parser) parseLetStarLoop(bindings []sexp.Datum, body []sexp.Datum, env *scope) (Expr, error) {
	if len(bindings) == 0 {
		return p.parseBody(body, env)
	}
	pair, err := sexp.ListItems(bindings[0])
	if err != nil || len(pair) != 2 {
		return nil, fmt.Errorf("ast: malformed binding %s", bindings[0])
	}
	name, ok := pair[0].(sexp.Symbol)
	if !ok {
		return nil, fmt.Errorf("ast: binding name must be a symbol: %s", bindings[0])
	}
	init, err := p.parse(pair[1], env, string(name))
	if err != nil {
		return nil, err
	}
	inner := env.child()
	v := p.newVar(name)
	inner.vars[name] = v
	rest, err := p.parseLetStarLoop(bindings[1:], body, inner)
	if err != nil {
		return nil, err
	}
	return &Let{Vars: []*Var{v}, Inits: []Expr{init}, Body: rest}, nil
}

func (p *parser) parseLetrec(form *sexp.Pair, env *scope, nameHint string) (Expr, error) {
	items, err := formItems(form, 3, -1)
	if err != nil {
		return nil, err
	}
	bindings, err := sexp.ListItems(items[1])
	if err != nil {
		return nil, fmt.Errorf("ast: malformed letrec bindings")
	}
	inner := env.child()
	vars := make([]*Var, len(bindings))
	rhss := make([]sexp.Datum, len(bindings))
	for i, b := range bindings {
		pair, err := sexp.ListItems(b)
		if err != nil || len(pair) != 2 {
			return nil, fmt.Errorf("ast: malformed binding %s", b)
		}
		name, ok := pair[0].(sexp.Symbol)
		if !ok {
			return nil, fmt.Errorf("ast: binding name must be a symbol: %s", b)
		}
		vars[i] = p.newVar(name)
		inner.vars[name] = vars[i]
		rhss[i] = pair[1]
	}
	inits := make([]Expr, len(vars))
	for i, r := range rhss {
		e, err := p.parse(r, inner, string(vars[i].Name))
		if err != nil {
			return nil, err
		}
		inits[i] = e
	}
	body, err := p.parseBody(items[2:], inner)
	if err != nil {
		return nil, err
	}
	return &Letrec{Vars: vars, Inits: inits, Body: body}, nil
}

// parseAnd expands (and ...) into nested ifs, per Figure 1.
func (p *parser) parseAnd(args []sexp.Datum, env *scope) (Expr, error) {
	if len(args) == 0 {
		return True, nil
	}
	first, err := p.parse(args[0], env, "")
	if err != nil {
		return nil, err
	}
	if len(args) == 1 {
		return first, nil
	}
	rest, err := p.parseAnd(args[1:], env)
	if err != nil {
		return nil, err
	}
	return &If{Test: first, Then: rest, Else: False}, nil
}

// parseOr expands (or e1 e2 ...) into (let ([t e1]) (if t t (or e2 ...)))
// so that e1 is evaluated once, per Figure 1's (if E1 true E2) modulo the
// usual value-preserving temporary.
func (p *parser) parseOr(args []sexp.Datum, env *scope) (Expr, error) {
	if len(args) == 0 {
		return False, nil
	}
	first, err := p.parse(args[0], env, "")
	if err != nil {
		return nil, err
	}
	if len(args) == 1 {
		return first, nil
	}
	rest, err := p.parseOr(args[1:], env)
	if err != nil {
		return nil, err
	}
	tmp := p.newVar(p.gensym("or"))
	return &Let{
		Vars:  []*Var{tmp},
		Inits: []Expr{first},
		Body:  &If{Test: &Ref{Var: tmp}, Then: &Ref{Var: tmp}, Else: rest},
	}, nil
}

func (p *parser) parseCond(form *sexp.Pair, env *scope) (Expr, error) {
	items, err := formItems(form, 2, -1)
	if err != nil {
		return nil, err
	}
	return p.parseCondClauses(items[1:], env)
}

func (p *parser) parseCondClauses(clauses []sexp.Datum, env *scope) (Expr, error) {
	if len(clauses) == 0 {
		return Unspecified, nil
	}
	clause, err := sexp.ListItems(clauses[0])
	if err != nil || len(clause) == 0 {
		return nil, fmt.Errorf("ast: malformed cond clause %s", clauses[0])
	}
	if clause[0] == sexp.Symbol("else") {
		if len(clauses) != 1 {
			return nil, fmt.Errorf("ast: cond else clause must be last")
		}
		return p.parseBody(clause[1:], env)
	}
	test, err := p.parse(clause[0], env, "")
	if err != nil {
		return nil, err
	}
	rest, err := p.parseCondClauses(clauses[1:], env)
	if err != nil {
		return nil, err
	}
	if len(clause) == 1 {
		// (cond (test) ...) yields test's value when true.
		tmp := p.newVar(p.gensym("cond"))
		return &Let{
			Vars:  []*Var{tmp},
			Inits: []Expr{test},
			Body:  &If{Test: &Ref{Var: tmp}, Then: &Ref{Var: tmp}, Else: rest},
		}, nil
	}
	if len(clause) == 3 && clause[1] == sexp.Symbol("=>") {
		tmp := p.newVar(p.gensym("cond"))
		recv, err := p.parse(clause[2], env, "")
		if err != nil {
			return nil, err
		}
		return &Let{
			Vars:  []*Var{tmp},
			Inits: []Expr{test},
			Body: &If{
				Test: &Ref{Var: tmp},
				Then: &Call{Fn: recv, Args: []Expr{&Ref{Var: tmp}}},
				Else: rest,
			},
		}, nil
	}
	then, err := p.parseBody(clause[1:], env)
	if err != nil {
		return nil, err
	}
	return &If{Test: test, Then: then, Else: rest}, nil
}

// parseCase expands case into a let-bound key and a chain of memv tests.
func (p *parser) parseCase(form *sexp.Pair, env *scope) (Expr, error) {
	items, err := formItems(form, 3, -1)
	if err != nil {
		return nil, err
	}
	key, err := p.parse(items[1], env, "")
	if err != nil {
		return nil, err
	}
	tmp := p.newVar(p.gensym("case"))
	inner := env.child() // tmp is hidden from user code (gensym name)
	body, err := p.parseCaseClauses(items[2:], tmp, inner)
	if err != nil {
		return nil, err
	}
	return &Let{Vars: []*Var{tmp}, Inits: []Expr{key}, Body: body}, nil
}

func (p *parser) parseCaseClauses(clauses []sexp.Datum, key *Var, env *scope) (Expr, error) {
	if len(clauses) == 0 {
		return Unspecified, nil
	}
	clause, err := sexp.ListItems(clauses[0])
	if err != nil || len(clause) < 2 {
		return nil, fmt.Errorf("ast: malformed case clause %s", clauses[0])
	}
	if clause[0] == sexp.Symbol("else") {
		if len(clauses) != 1 {
			return nil, fmt.Errorf("ast: case else clause must be last")
		}
		return p.parseBody(clause[1:], env)
	}
	data, err := sexp.ListItems(clause[0])
	if err != nil {
		return nil, fmt.Errorf("ast: malformed case datum list %s", clause[0])
	}
	then, err := p.parseBody(clause[1:], env)
	if err != nil {
		return nil, err
	}
	rest, err := p.parseCaseClauses(clauses[1:], key, env)
	if err != nil {
		return nil, err
	}
	test := &Call{
		Fn:   &GlobalRef{Name: "memv"},
		Args: []Expr{&Ref{Var: key}, &Const{Value: sexp.List(data...)}},
	}
	return &If{Test: test, Then: then, Else: rest}, nil
}

// parseDo expands (do ([v init step] ...) (test result ...) body ...)
// into a named-let loop.
func (p *parser) parseDo(form *sexp.Pair, env *scope) (Expr, error) {
	items, err := formItems(form, 3, -1)
	if err != nil {
		return nil, err
	}
	specs, err := sexp.ListItems(items[1])
	if err != nil {
		return nil, fmt.Errorf("ast: malformed do bindings")
	}
	exit, err := sexp.ListItems(items[2])
	if err != nil || len(exit) < 1 {
		return nil, fmt.Errorf("ast: malformed do exit clause")
	}

	loopSym := p.gensym("do")
	outer := env.child()
	loopVar := p.newVar(loopSym)
	outer.vars[loopSym] = loopVar

	inner := outer.child()
	vars := make([]*Var, len(specs))
	inits := make([]Expr, len(specs))
	steps := make([]sexp.Datum, len(specs))
	for i, s := range specs {
		parts, err := sexp.ListItems(s)
		if err != nil || len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("ast: malformed do binding %s", s)
		}
		name, ok := parts[0].(sexp.Symbol)
		if !ok {
			return nil, fmt.Errorf("ast: do binding name must be a symbol: %s", s)
		}
		if inits[i], err = p.parse(parts[1], env, string(name)); err != nil {
			return nil, err
		}
		vars[i] = p.newVar(name)
		inner.vars[name] = vars[i]
		if len(parts) == 3 {
			steps[i] = parts[2]
		} else {
			steps[i] = parts[0] // variable unchanged across iterations
		}
	}

	test, err := p.parse(exit[0], inner, "")
	if err != nil {
		return nil, err
	}
	var result Expr = Unspecified
	if len(exit) > 1 {
		if result, err = p.parseBody(exit[1:], inner); err != nil {
			return nil, err
		}
	}
	var bodyExprs []Expr
	for _, b := range items[3:] {
		e, err := p.parse(b, inner, "")
		if err != nil {
			return nil, err
		}
		bodyExprs = append(bodyExprs, e)
	}
	stepArgs := make([]Expr, len(steps))
	for i, s := range steps {
		e, err := p.parse(s, inner, "")
		if err != nil {
			return nil, err
		}
		stepArgs[i] = e
	}
	again := &Call{Fn: &Ref{Var: loopVar}, Args: stepArgs}
	var loopBody Expr
	if len(bodyExprs) == 0 {
		loopBody = again
	} else {
		loopBody = &Begin{Exprs: append(bodyExprs, again)}
	}
	lam := &Lambda{Params: vars, Body: &If{Test: test, Then: result, Else: loopBody}, Name: string(loopSym)}
	return &Letrec{
		Vars:  []*Var{loopVar},
		Inits: []Expr{lam},
		Body:  &Call{Fn: &Ref{Var: loopVar}, Args: inits},
	}, nil
}

// expandQuasiquote rewrites quasiquote templates into cons/append/list
// constructions. depth tracks nesting of quasiquote within quasiquote.
func expandQuasiquote(d sexp.Datum, depth int) (sexp.Datum, error) {
	switch t := d.(type) {
	case *sexp.Pair:
		if t.Car == sexp.Symbol("unquote") && sexp.Length(t) == 2 {
			arg := t.Cdr.(*sexp.Pair).Car
			if depth == 1 {
				return arg, nil
			}
			inner, err := expandQuasiquote(arg, depth-1)
			if err != nil {
				return nil, err
			}
			return sexp.List(sexp.Symbol("list"), sexp.List(sexp.Symbol("quote"), sexp.Symbol("unquote")), inner), nil
		}
		if t.Car == sexp.Symbol("quasiquote") && sexp.Length(t) == 2 {
			inner, err := expandQuasiquote(t.Cdr.(*sexp.Pair).Car, depth+1)
			if err != nil {
				return nil, err
			}
			return sexp.List(sexp.Symbol("list"), sexp.List(sexp.Symbol("quote"), sexp.Symbol("quasiquote")), inner), nil
		}
		if carPair, ok := t.Car.(*sexp.Pair); ok && carPair.Car == sexp.Symbol("unquote-splicing") && sexp.Length(carPair) == 2 {
			if depth != 1 {
				return nil, fmt.Errorf("ast: nested unquote-splicing beyond depth 1 is not supported")
			}
			spliced := carPair.Cdr.(*sexp.Pair).Car
			rest, err := expandQuasiquote(t.Cdr, depth)
			if err != nil {
				return nil, err
			}
			return sexp.List(sexp.Symbol("append"), spliced, rest), nil
		}
		car, err := expandQuasiquote(t.Car, depth)
		if err != nil {
			return nil, err
		}
		cdr, err := expandQuasiquote(t.Cdr, depth)
		if err != nil {
			return nil, err
		}
		return sexp.List(sexp.Symbol("cons"), car, cdr), nil
	case *sexp.Vector:
		lst := sexp.List(t.Items...)
		expanded, err := expandQuasiquote(lst, depth)
		if err != nil {
			return nil, err
		}
		return sexp.List(sexp.Symbol("list->vector"), expanded), nil
	default:
		return sexp.List(sexp.Symbol("quote"), d), nil
	}
}

func formItems(form *sexp.Pair, min, max int) ([]sexp.Datum, error) {
	items, err := sexp.ListItems(form)
	if err != nil {
		return nil, fmt.Errorf("ast: improper form %s", form)
	}
	if len(items) < min || (max >= 0 && len(items) > max) {
		return nil, fmt.Errorf("ast: malformed %s form: %s", items[0], form)
	}
	return items, nil
}
