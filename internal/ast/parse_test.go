package ast

import (
	"strings"
	"testing"

	"repro/internal/sexp"
)

func parseOne(t *testing.T, src string) Expr {
	t.Helper()
	prog, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString(%q): %v", src, err)
	}
	return prog.Body
}

func TestParseConst(t *testing.T) {
	e := parseOne(t, "42")
	c, ok := e.(*Const)
	if !ok || c.Value != sexp.Fixnum(42) {
		t.Fatalf("got %#v", e)
	}
}

func TestParseQuote(t *testing.T) {
	e := parseOne(t, "'(1 2)")
	c, ok := e.(*Const)
	if !ok || c.Value.String() != "(1 2)" {
		t.Fatalf("got %s", Print(e))
	}
}

func TestGlobalVsLocal(t *testing.T) {
	e := parseOne(t, "(let ([x 1]) (+ x y))")
	let, ok := e.(*Let)
	if !ok {
		t.Fatalf("got %s", Print(e))
	}
	call := let.Body.(*Call)
	if _, ok := call.Fn.(*GlobalRef); !ok {
		t.Errorf("+ should be a global ref")
	}
	if _, ok := call.Args[0].(*Ref); !ok {
		t.Errorf("x should be a local ref")
	}
	if g, ok := call.Args[1].(*GlobalRef); !ok || g.Name != "y" {
		t.Errorf("y should be a global ref")
	}
}

func TestShadowing(t *testing.T) {
	e := parseOne(t, "(let ([x 1]) (let ([x 2]) x))")
	outer := e.(*Let)
	inner := outer.Body.(*Let)
	ref := inner.Body.(*Ref)
	if ref.Var != inner.Vars[0] {
		t.Error("inner x should resolve to inner binding")
	}
	if ref.Var == outer.Vars[0] {
		t.Error("inner x should not resolve to outer binding")
	}
}

func TestShadowedSpecialForm(t *testing.T) {
	// A let-bound `if` is an ordinary variable.
	e := parseOne(t, "(let ([if 1]) (if if if))")
	let := e.(*Let)
	call, ok := let.Body.(*Call)
	if !ok || len(call.Args) != 2 {
		t.Fatalf("shadowed if should parse as a call, got %s", Print(let.Body))
	}
}

func TestDefineForms(t *testing.T) {
	prog, err := ParseString("(define (f x) (+ x 1)) (define g 10) (f g)")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Defs) != 2 {
		t.Fatalf("got %d defs", len(prog.Defs))
	}
	lam, ok := prog.Defs[0].Rhs.(*Lambda)
	if !ok || len(lam.Params) != 1 || lam.Name != "f" {
		t.Errorf("define (f x): got %#v", prog.Defs[0].Rhs)
	}
}

func TestSetMarksAssigned(t *testing.T) {
	e := parseOne(t, "(let ([x 1]) (set! x 2) x)")
	let := e.(*Let)
	if !let.Vars[0].Assigned {
		t.Error("x should be marked assigned")
	}
}

func TestAndOrNotExpansion(t *testing.T) {
	// (and a b) => (if a b #f)
	e := parseOne(t, "(and a b)")
	iff, ok := e.(*If)
	if !ok {
		t.Fatalf("and should expand to if, got %s", Print(e))
	}
	if c, ok := iff.Else.(*Const); !ok || c.Value != sexp.Boolean(false) {
		t.Errorf("and else branch should be #f")
	}
	// (and) => #t
	if c, ok := parseOne(t, "(and)").(*Const); !ok || c.Value != sexp.Boolean(true) {
		t.Error("(and) should be #t")
	}
	// (or a b): a evaluated once via a temp
	e = parseOne(t, "(or a b)")
	let, ok := e.(*Let)
	if !ok {
		t.Fatalf("or should expand to let, got %s", Print(e))
	}
	iff = let.Body.(*If)
	if iff.Test.(*Ref).Var != let.Vars[0] {
		t.Error("or temp should be tested")
	}
	// (not a) => (if a #f #t)
	e = parseOne(t, "(not a)")
	iff = e.(*If)
	if c := iff.Then.(*Const); c.Value != sexp.Boolean(false) {
		t.Error("not then branch should be #f")
	}
}

func TestCondExpansion(t *testing.T) {
	e := parseOne(t, "(cond [(f) 1] [(g) 2] [else 3])")
	iff, ok := e.(*If)
	if !ok {
		t.Fatalf("got %s", Print(e))
	}
	inner, ok := iff.Else.(*If)
	if !ok {
		t.Fatalf("got %s", Print(e))
	}
	if c, ok := inner.Else.(*Const); !ok || c.Value != sexp.Fixnum(3) {
		t.Errorf("else clause: got %s", Print(inner.Else))
	}
}

func TestCondArrow(t *testing.T) {
	e := parseOne(t, "(cond [(f) => g] [else 0])")
	let, ok := e.(*Let)
	if !ok {
		t.Fatalf("got %s", Print(e))
	}
	iff := let.Body.(*If)
	call, ok := iff.Then.(*Call)
	if !ok || len(call.Args) != 1 {
		t.Fatalf("=> should apply receiver, got %s", Print(iff.Then))
	}
}

func TestCaseExpansion(t *testing.T) {
	e := parseOne(t, "(case x [(1 2) 'small] [else 'big])")
	let, ok := e.(*Let)
	if !ok {
		t.Fatalf("got %s", Print(e))
	}
	iff := let.Body.(*If)
	call := iff.Test.(*Call)
	if g, ok := call.Fn.(*GlobalRef); !ok || g.Name != "memv" {
		t.Errorf("case test should use memv, got %s", Print(iff.Test))
	}
}

func TestNamedLet(t *testing.T) {
	e := parseOne(t, "(let loop ([i 0]) (if (= i 10) i (loop (+ i 1))))")
	lr, ok := e.(*Letrec)
	if !ok {
		t.Fatalf("got %s", Print(e))
	}
	if _, ok := lr.Inits[0].(*Lambda); !ok {
		t.Error("named let should bind a lambda")
	}
	if _, ok := lr.Body.(*Call); !ok {
		t.Error("named let body should be a call")
	}
}

func TestDoExpansion(t *testing.T) {
	e := parseOne(t, "(do ([i 0 (+ i 1)] [acc 1]) ((= i 3) acc) (set! acc (* acc 2)))")
	lr, ok := e.(*Letrec)
	if !ok {
		t.Fatalf("got %s", Print(e))
	}
	lam := lr.Inits[0].(*Lambda)
	if len(lam.Params) != 2 {
		t.Errorf("do loop should have 2 params")
	}
}

func TestInternalDefines(t *testing.T) {
	e := parseOne(t, "(lambda (x) (define (h y) (* y 2)) (h x))")
	lam := e.(*Lambda)
	if _, ok := lam.Body.(*Letrec); !ok {
		t.Errorf("internal defines should become letrec, got %s", Print(lam.Body))
	}
}

func TestLetStar(t *testing.T) {
	e := parseOne(t, "(let* ([x 1] [y x]) y)")
	outer, ok := e.(*Let)
	if !ok {
		t.Fatalf("got %s", Print(e))
	}
	inner := outer.Body.(*Let)
	if inner.Inits[0].(*Ref).Var != outer.Vars[0] {
		t.Error("let* scoping broken")
	}
}

func TestQuasiquote(t *testing.T) {
	e := parseOne(t, "`(a ,b (c ,@d))")
	// Should expand into cons/append/quote structure referencing global b, d.
	s := Print(e)
	for _, frag := range []string{"cons", "append", "'a"} {
		if !strings.Contains(s, frag) {
			t.Errorf("quasiquote expansion missing %q: %s", frag, s)
		}
	}
}

func TestWhenUnless(t *testing.T) {
	e := parseOne(t, "(when c 1 2)")
	iff := e.(*If)
	if _, ok := iff.Then.(*Begin); !ok {
		t.Errorf("when body should be a begin, got %s", Print(iff.Then))
	}
	e = parseOne(t, "(unless c 1)")
	iff = e.(*If)
	if c, ok := iff.Then.(*Const); !ok || c != Unspecified {
		t.Errorf("unless then should be unspecified")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"(if)",
		"(set! 3 4)",
		"(lambda x x)", // variadic unsupported
		"(let ([x]) x)",
		"(cond [else 1] [f 2])",
		"()",
		"(define)",
		"(lambda (x) (define (h y) y))", // body only definitions
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q): expected error", src)
		}
	}
}

func TestVarIDsUnique(t *testing.T) {
	prog, err := ParseString("(let ([x 1]) (let ([x 2] [y 3]) (+ x y)))")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case *Let:
			for _, v := range n.Vars {
				if seen[v.ID] {
					t.Errorf("duplicate var ID %d", v.ID)
				}
				seen[v.ID] = true
			}
			for _, i := range n.Inits {
				walk(i)
			}
			walk(n.Body)
		case *Call:
			walk(n.Fn)
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	walk(prog.Body)
	if len(seen) != 3 {
		t.Errorf("expected 3 vars, saw %d", len(seen))
	}
	if prog.NumVars < 3 {
		t.Errorf("NumVars = %d", prog.NumVars)
	}
}
