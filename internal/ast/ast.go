// Package ast defines the core abstract syntax of the mini-Scheme
// language and the parser/macro-expander that produces it from
// S-expressions.
//
// The core language after expansion consists of constants, variable
// references, if, begin, lambda, let, letrec, set!, and procedure calls.
// Derived forms (and, or, not, cond, case, when, unless, do, let*, named
// let, quasiquote) are expanded during parsing, matching the paper's §2
// treatment of short-circuit boolean operations as if expressions.
package ast

import (
	"fmt"

	"repro/internal/sexp"
)

// Var is a local variable binding. Every binding occurrence gets a
// distinct *Var, so the later passes never need to worry about shadowing.
type Var struct {
	Name sexp.Symbol
	// ID is a unique identifier assigned at parse time.
	ID int
	// Assigned is set when the variable is the target of a set!;
	// assignment conversion boxes exactly these variables.
	Assigned bool
}

func (v *Var) String() string { return fmt.Sprintf("%s.%d", v.Name, v.ID) }

// Expr is the interface implemented by all core-language expressions.
type Expr interface{ expr() }

// Const is a self-evaluating or quoted constant.
type Const struct{ Value sexp.Datum }

// Ref is a reference to a local variable.
type Ref struct{ Var *Var }

// GlobalRef is a reference to a top-level (or primitive) name.
type GlobalRef struct{ Name sexp.Symbol }

// If is a two- or three-armed conditional; a missing else arm is filled
// with an unspecified constant.
type If struct{ Test, Then, Else Expr }

// Begin is a sequence of expressions evaluated left to right; the paper's
// seq form is the two-expression special case.
type Begin struct{ Exprs []Expr }

// Lambda is a procedure with fixed arity.
type Lambda struct {
	Params []*Var
	Body   Expr
	// Name is a debugging/profiling label derived from the define or
	// binding form that produced the lambda ("anon" otherwise).
	Name string
}

// Let binds variables in parallel. It is kept as a core form (rather than
// expanding to an application) so that locals can be register-allocated
// without a procedure call.
type Let struct {
	Vars  []*Var
	Inits []Expr
	Body  Expr
}

// Letrec binds mutually recursive variables.
type Letrec struct {
	Vars  []*Var
	Inits []Expr
	Body  Expr
}

// Set assigns a local variable.
type Set struct {
	Var *Var
	Rhs Expr
}

// GlobalSet assigns a top-level name.
type GlobalSet struct {
	Name sexp.Symbol
	Rhs  Expr
}

// Call applies Fn to Args.
type Call struct {
	Fn   Expr
	Args []Expr
}

func (*Const) expr()     {}
func (*Ref) expr()       {}
func (*GlobalRef) expr() {}
func (*If) expr()        {}
func (*Begin) expr()     {}
func (*Lambda) expr()    {}
func (*Let) expr()       {}
func (*Letrec) expr()    {}
func (*Set) expr()       {}
func (*GlobalSet) expr() {}
func (*Call) expr()      {}

// Def is a top-level definition.
type Def struct {
	Name sexp.Symbol
	Rhs  Expr
}

// Program is a parsed program: a sequence of top-level definitions
// followed by a body expression whose value is the program's result.
type Program struct {
	Defs []Def
	Body Expr
	// NumVars is one more than the largest Var.ID in the program.
	NumVars int
}

// Unspecified is the constant produced by one-armed ifs and empty bodies.
var Unspecified = &Const{Value: sexp.Symbol("#!unspecified")}

// True and False are shared boolean constants.
var (
	True  = &Const{Value: sexp.Boolean(true)}
	False = &Const{Value: sexp.Boolean(false)}
)
