package ast

import (
	"fmt"
	"strings"

	"repro/internal/sexp"
)

// Print renders an expression back into S-expression notation for dumps
// and tests. Variables print with their unique IDs so shadowing is
// visible.
func Print(e Expr) string {
	var b strings.Builder
	printExpr(&b, e)
	return b.String()
}

// PrintProgram renders all definitions and the body of a program.
func PrintProgram(p *Program) string {
	var b strings.Builder
	for _, d := range p.Defs {
		fmt.Fprintf(&b, "(define %s ", d.Name)
		printExpr(&b, d.Rhs)
		b.WriteString(")\n")
	}
	printExpr(&b, p.Body)
	b.WriteString("\n")
	return b.String()
}

func printExpr(b *strings.Builder, e Expr) {
	switch t := e.(type) {
	case *Const:
		if needsQuote(t.Value) {
			b.WriteString("'")
		}
		b.WriteString(t.Value.String())
	case *Ref:
		b.WriteString(t.Var.String())
	case *GlobalRef:
		b.WriteString(string(t.Name))
	case *If:
		b.WriteString("(if ")
		printExpr(b, t.Test)
		b.WriteByte(' ')
		printExpr(b, t.Then)
		b.WriteByte(' ')
		printExpr(b, t.Else)
		b.WriteByte(')')
	case *Begin:
		b.WriteString("(begin")
		for _, x := range t.Exprs {
			b.WriteByte(' ')
			printExpr(b, x)
		}
		b.WriteByte(')')
	case *Lambda:
		b.WriteString("(lambda (")
		for i, v := range t.Params {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(v.String())
		}
		b.WriteString(") ")
		printExpr(b, t.Body)
		b.WriteByte(')')
	case *Let:
		printBindingForm(b, "let", t.Vars, t.Inits, t.Body)
	case *Letrec:
		printBindingForm(b, "letrec", t.Vars, t.Inits, t.Body)
	case *Set:
		b.WriteString("(set! ")
		b.WriteString(t.Var.String())
		b.WriteByte(' ')
		printExpr(b, t.Rhs)
		b.WriteByte(')')
	case *GlobalSet:
		b.WriteString("(set! ")
		b.WriteString(string(t.Name))
		b.WriteByte(' ')
		printExpr(b, t.Rhs)
		b.WriteByte(')')
	case *Call:
		b.WriteByte('(')
		printExpr(b, t.Fn)
		for _, a := range t.Args {
			b.WriteByte(' ')
			printExpr(b, a)
		}
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "#<unknown %T>", e)
	}
}

func printBindingForm(b *strings.Builder, head string, vars []*Var, inits []Expr, body Expr) {
	b.WriteByte('(')
	b.WriteString(head)
	b.WriteString(" (")
	for i, v := range vars {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('[')
		b.WriteString(v.String())
		b.WriteByte(' ')
		printExpr(b, inits[i])
		b.WriteByte(']')
	}
	b.WriteString(") ")
	printExpr(b, body)
	b.WriteByte(')')
}

func needsQuote(d sexp.Datum) bool {
	switch d.(type) {
	case sexp.Symbol, *sexp.Pair, sexp.Empty:
		return true
	}
	return false
}
