package store

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/compiler"
	"repro/internal/prim"
	"repro/internal/vm"
)

// testSources cover the constant kinds the codec must round-trip:
// fixnums (including the boxed range), flonums, characters, strings,
// symbols, nested quoted structure and vectors.
var testSources = []struct{ name, src, want string }{
	{"arith", "(define (f x) (+ x 1)) (f 41)", "42"},
	{"fib", "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 10)", "55"},
	{"quoted", `(define (f) '((a . 1) (b #\x "s" 2.5) #(1 2 3))) (f)`, `((a . 1) (b #\x "s" 2.5) #(1 2 3))`},
	{"bigfix", "(* 1152921504606846976 4)", "4611686018427387904"},
	{"strings", `(string-append "he" "llo")`, `"hello"`},
}

func compileSrc(t *testing.T, src string) *compiler.Compiled {
	t.Helper()
	c, err := compiler.Compile(src, compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func runProgram(t *testing.T, p *vm.Program) (string, vm.Counters) {
	t.Helper()
	m := vm.New(p, nil)
	m.MaxSteps = 100_000_000
	v, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return prim.WriteString(v), m.Counters
}

func keyOf(src string) Key { return Key(sha256.Sum256([]byte(src))) }

// TestRoundTrip: a decoded program must be observably identical to the
// original — same result value, same deterministic counters, same
// disassembly, same stats.
func TestRoundTrip(t *testing.T) {
	for _, tc := range testSources {
		t.Run(tc.name, func(t *testing.T) {
			orig := compileSrc(t, tc.src)
			payload, err := encodeCompiled(orig)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := decodeCompiled(payload)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if got.Stats != orig.Stats {
				t.Errorf("stats: got %+v want %+v", got.Stats, orig.Stats)
			}
			if od, gd := orig.Program.Disassemble(), got.Program.Disassemble(); od != gd {
				t.Errorf("disassembly differs:\n--- original\n%s\n--- decoded\n%s", od, gd)
			}
			if !reflect.DeepEqual(orig.Program.ConstMutable, got.Program.ConstMutable) {
				t.Errorf("const-mutable differs")
			}
			ov, oc := runProgram(t, orig.Program)
			gv, gc := runProgram(t, got.Program)
			if ov != tc.want || gv != tc.want {
				t.Errorf("values: original %s, decoded %s, want %s", ov, gv, tc.want)
			}
			if !reflect.DeepEqual(oc, gc) {
				t.Errorf("counters differ after round trip")
			}
		})
	}
}

// TestEncodeRefusesLint: lint-bearing compilations are not persisted.
func TestEncodeRefusesLint(t *testing.T) {
	opts := compiler.DefaultOptions()
	opts.Lint = true
	c, err := compiler.Compile("(+ 1 2)", opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := encodeCompiled(c); err == nil {
		t.Fatal("encode accepted a lint-bearing compilation")
	}
}

func TestStorePutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src := testSources[0].src
	c := compileSrc(t, src)
	key := keyOf(src)
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(key, c); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("miss after put")
	}
	if v, _ := runProgram(t, got.Program); v != testSources[0].want {
		t.Fatalf("got %s want %s", v, testSources[0].want)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestReplicaSharing: a second store opened on the same directory (a
// cold replica) serves entries written by the first.
func TestReplicaSharing(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := testSources[1].src
	key := keyOf(src)
	if err := s1.Put(key, compileSrc(t, src)); err != nil {
		t.Fatal(err)
	}
	if err := s1.Flush(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Contains(key) {
		t.Fatal("flushed index did not warm the replica's key set")
	}
	got, ok := s2.Get(key)
	if !ok {
		t.Fatal("cold replica missed a shared entry")
	}
	if v, _ := runProgram(t, got.Program); v != testSources[1].want {
		t.Fatalf("wrong value from shared entry")
	}

	// Without the index the replica must still find entries by scan.
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s3.Contains(key) {
		t.Fatal("directory scan did not recover the key set")
	}
}

// corruptions are the crash/corruption shapes that must all read as
// clean misses: truncation at various points, bit flips in the payload,
// version skew, garbage files.
func TestCorruptEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := testSources[2].src
	key := keyOf(src)
	if err := s.Put(key, compileSrc(t, src)); err != nil {
		t.Fatal(err)
	}
	path := s.path(key)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated-header", func(b []byte) []byte { return b[:10] }},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated-checksum", func(b []byte) []byte { return b[:len(b)-5] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"bit-flip", func(b []byte) []byte {
			c := bytes.Clone(b)
			c[len(c)/2] ^= 0x40
			return c
		}},
		{"wrong-version", func(b []byte) []byte {
			c := bytes.Clone(b)
			c[11] = 0xFE
			return c
		}},
		{"bad-magic", func(b []byte) []byte {
			c := bytes.Clone(b)
			c[0] = 'X'
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, tc.mutate(pristine), 0o644); err != nil {
				t.Fatal(err)
			}
			before := s.Stats().Corrupt
			if _, ok := s.Get(key); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if s.Stats().Corrupt != before+1 {
				t.Fatalf("corruption not counted")
			}
			// Miss-then-recompile: the next Put must restore service.
			if err := s.Put(key, compileSrc(t, src)); err != nil {
				t.Fatalf("re-put after corruption: %v", err)
			}
			if _, ok := s.Get(key); !ok {
				t.Fatal("entry not readable after rewrite")
			}
		})
	}
}

// TestConcurrentSameKeyWriters: N goroutines putting and getting the
// same key must never surface an error or a corrupt read — writers
// stage to temp files and rename, so readers only ever see complete
// entries.
func TestConcurrentSameKeyWriters(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src := testSources[0].src
	c := compileSrc(t, src)
	key := keyOf(src)
	const writers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, writers*2)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if err := s.Put(key, c); err != nil {
					errCh <- err
					return
				}
				if got, ok := s.Get(key); ok {
					if got.Stats != c.Stats {
						errCh <- fmt.Errorf("stats mismatch under concurrency")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Corrupt != 0 || st.PutErrors != 0 {
		t.Fatalf("concurrent writers produced corruption: %+v", st)
	}
	// No leftover temp files.
	matches, _ := filepath.Glob(filepath.Join(s.dir, "*", "put-*.tmp"))
	if len(matches) != 0 {
		t.Fatalf("leftover temp files: %v", matches)
	}
}
