package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/prim"
	"repro/internal/sexp"
	"repro/internal/vm"
)

// CodecVersion identifies the entry payload layout. Bump it whenever a
// field is added, removed or re-ordered: a store written by one version
// is then treated as all-misses by the next, which is exactly the
// recovery story (recompile and overwrite) rather than a migration.
const CodecVersion = 1

// encodeCompiled serializes a compilation result. Only plain
// compilations are persistable: a Compiled carrying a lint report is
// refused (the report holds analyzer structures that are cheap to
// recompute and are not part of the shared-cache contract), and the IR
// is always dropped (it exists for dump tooling, not for serving).
func encodeCompiled(c *compiler.Compiled) ([]byte, error) {
	if c == nil || c.Program == nil {
		return nil, fmt.Errorf("store: nil compilation")
	}
	if c.Lint != nil {
		return nil, fmt.Errorf("store: compilations carrying a lint report are not persisted")
	}
	e := &encoder{}
	e.program(c.Program)
	e.stats(&c.Stats)
	if e.err != nil {
		return nil, e.err
	}
	return e.buf, nil
}

// decodeCompiled parses an entry payload back into a compilation
// result. Any malformed input yields an error, never a panic or a
// half-built program — the store turns every decode error into a cache
// miss.
func decodeCompiled(data []byte) (*compiler.Compiled, error) {
	d := &decoder{data: data}
	p := d.program()
	st := d.stats()
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(d.data) {
		return nil, fmt.Errorf("store: %d trailing bytes after payload", len(d.data)-d.pos)
	}
	return &compiler.Compiled{Program: p, Stats: st}, nil
}

// ---- encoder ----

type encoder struct {
	buf []byte
	err error
}

func (e *encoder) uvarint(n uint64) { e.buf = binary.AppendUvarint(e.buf, n) }
func (e *encoder) varint(n int64)   { e.buf = binary.AppendVarint(e.buf, n) }
func (e *encoder) int(n int)        { e.varint(int64(n)) }
func (e *encoder) bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}
func (e *encoder) byte(b byte) { e.buf = append(e.buf, b) }
func (e *encoder) string(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) program(p *vm.Program) {
	e.int(p.Config.ArgRegs)
	e.int(p.Config.UserRegs)
	e.int(p.Config.ScratchRegs)
	e.int(p.Config.CalleeSaveRegs)
	e.int(p.MainIndex)

	e.uvarint(uint64(len(p.Code)))
	for i := range p.Code {
		in := &p.Code[i]
		e.byte(byte(in.Op))
		e.int(in.A)
		e.int(in.B)
		e.int(in.C)
		e.uvarint(uint64(len(in.Regs)))
		for _, r := range in.Regs {
			e.int(r)
		}
		e.byte(byte(in.Kind))
		e.varint(int64(in.Predict))
	}

	e.uvarint(uint64(len(p.Consts)))
	for _, c := range p.Consts {
		e.value(c, 0)
	}
	e.uvarint(uint64(len(p.ConstMutable)))
	for _, m := range p.ConstMutable {
		e.bool(m)
	}

	e.uvarint(uint64(len(p.Prims)))
	for _, d := range p.Prims {
		if d == nil {
			e.setErr(fmt.Errorf("store: nil primitive in pool"))
			return
		}
		e.string(string(d.Name))
	}

	e.uvarint(uint64(len(p.Procs)))
	for _, pi := range p.Procs {
		e.string(pi.Name)
		e.int(pi.Entry)
		e.int(pi.NArgs)
		e.int(pi.NFree)
		e.bool(pi.SyntacticLeaf)
		e.bool(pi.CallInevitable)
	}

	e.uvarint(uint64(len(p.GlobalNames)))
	for _, g := range p.GlobalNames {
		e.string(string(g))
	}
	e.uvarint(uint64(len(p.PrimGlobals)))
	for _, d := range p.PrimGlobals {
		if d == nil {
			e.string("")
		} else {
			e.string(string(d.Name))
		}
	}

	e.uvarint(uint64(len(p.Shuffles)))
	for _, sh := range p.Shuffles {
		e.int(sh.StartPC)
		e.int(sh.CallPC)
		e.uvarint(uint64(len(sh.Assigns)))
		for _, a := range sh.Assigns {
			e.int(a.Target)
			e.int(a.Src)
			e.bool(a.SrcIsSlot)
		}
	}
}

func (e *encoder) stats(st *codegen.Stats) {
	for _, n := range []int{
		st.CallSites, st.CyclicCallSites, st.ShuffleTemps, st.OptimalTemps,
		st.SitesOptimal, st.SitesSuboptimal, st.ExtraTempsWorst,
		st.SaveSites, st.RestoreSites, st.DefensiveRestores,
		st.Procs, st.SyntacticLeaves, st.CallInevitable, st.Instructions,
	} {
		e.int(n)
	}
}

// Constant-pool value tags. Constants are datum-shaped (they come from
// quoted literals and the emitter's sentinels), so the codec covers
// exactly the sexp.Datum kinds plus the zero Value.
const (
	tNone byte = iota
	tFixnum
	tFlonum
	tBool
	tChar
	tSymbol
	tString
	tEmpty
	tPair
	tVector
)

// maxConstDepth bounds recursion while decoding nested pairs/vectors so
// a corrupt entry cannot blow the stack; real constant pools are
// shallow (quoted program literals).
const maxConstDepth = 10_000

func (e *encoder) value(v prim.Value, depth int) {
	if e.err != nil {
		return
	}
	if depth > maxConstDepth {
		e.setErr(fmt.Errorf("store: constant nesting exceeds %d", maxConstDepth))
		return
	}
	switch {
	case v.IsNone():
		e.byte(tNone)
	case v.IsEmpty():
		e.byte(tEmpty)
	case v.IsBool():
		b, _ := v.Bool()
		e.byte(tBool)
		e.bool(b)
	default:
		if n, ok := v.Fixnum(); ok {
			e.byte(tFixnum)
			e.varint(n)
			return
		}
		if f, ok := v.Flonum(); ok {
			e.byte(tFlonum)
			e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(f))
			return
		}
		if c, ok := v.Char(); ok {
			e.byte(tChar)
			e.varint(int64(c))
			return
		}
		if s, ok := v.Symbol(); ok {
			e.byte(tSymbol)
			e.string(string(s))
			return
		}
		if s, ok := v.Str(); ok {
			e.byte(tString)
			e.string(string(s))
			return
		}
		if p, ok := v.Pair(); ok {
			e.byte(tPair)
			e.value(p.Car, depth+1)
			e.value(p.Cdr, depth+1)
			return
		}
		if vec, ok := v.Vector(); ok {
			e.byte(tVector)
			e.uvarint(uint64(len(vec.Items)))
			for _, it := range vec.Items {
				e.value(it, depth+1)
			}
			return
		}
		e.setErr(fmt.Errorf("store: constant %s is not datum-shaped", prim.WriteString(v)))
	}
}

func (e *encoder) setErr(err error) {
	if e.err == nil {
		e.err = err
	}
}

// ---- decoder ----

type decoder struct {
	data []byte
	pos  int
	err  error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("store: "+format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	n, w := binary.Uvarint(d.data[d.pos:])
	if w <= 0 {
		d.fail("truncated uvarint at %d", d.pos)
		return 0
	}
	d.pos += w
	return n
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	n, w := binary.Varint(d.data[d.pos:])
	if w <= 0 {
		d.fail("truncated varint at %d", d.pos)
		return 0
	}
	d.pos += w
	return n
}

func (d *decoder) int() int { return int(d.varint()) }

// count reads a length prefix and sanity-bounds it against the bytes
// remaining, so a corrupt length cannot drive a giant allocation.
func (d *decoder) count(elemMin int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if n > uint64((len(d.data)-d.pos)/elemMin)+1 {
		d.fail("implausible count %d at %d", n, d.pos)
		return 0
	}
	return int(n)
}

func (d *decoder) bool() bool { return d.byte() != 0 }

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.data) {
		d.fail("truncated at %d", d.pos)
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *decoder) string() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	if d.pos+n > len(d.data) {
		d.fail("truncated string at %d", d.pos)
		return ""
	}
	s := string(d.data[d.pos : d.pos+n])
	d.pos += n
	return s
}

func (d *decoder) program() *vm.Program {
	// Build every field in locals and assemble with one composite
	// literal at the end: the srclint immutability analyzer proves
	// vm.Program is never written after construction, and this decoder
	// must look like construction, not mutation, under that proof.
	var cfg vm.Config
	cfg.ArgRegs = d.int()
	cfg.UserRegs = d.int()
	cfg.ScratchRegs = d.int()
	cfg.CalleeSaveRegs = d.int()
	mainIndex := d.int()

	nCode := d.count(4)
	if d.err != nil {
		return nil
	}
	code := make([]vm.Instr, nCode)
	for i := range code {
		in := &code[i]
		in.Op = vm.Op(d.byte())
		in.A = d.int()
		in.B = d.int()
		in.C = d.int()
		if nRegs := d.count(1); nRegs > 0 {
			in.Regs = make([]int, nRegs)
			for j := range in.Regs {
				in.Regs[j] = d.int()
			}
		}
		in.Kind = vm.SlotKind(d.byte())
		in.Predict = int8(d.varint())
		if d.err != nil {
			return nil
		}
	}

	nConsts := d.count(1)
	if d.err != nil {
		return nil
	}
	consts := make([]prim.Value, nConsts)
	for i := range consts {
		consts[i] = d.value(0)
		if d.err != nil {
			return nil
		}
	}
	nMut := d.count(1)
	if d.err != nil {
		return nil
	}
	if nMut != nConsts {
		d.fail("const-mutable length %d does not match %d constants", nMut, nConsts)
		return nil
	}
	constMutable := make([]bool, nMut)
	for i := range constMutable {
		constMutable[i] = d.bool()
	}

	nPrims := d.count(2)
	if d.err != nil {
		return nil
	}
	prims := make([]*prim.Def, nPrims)
	for i := range prims {
		name := d.string()
		if d.err != nil {
			return nil
		}
		def := prim.Lookup(sexp.Symbol(name))
		if def == nil {
			d.fail("unknown primitive %q", name)
			return nil
		}
		prims[i] = def
	}

	nProcs := d.count(6)
	if d.err != nil {
		return nil
	}
	procs := make([]vm.ProcInfo, nProcs)
	for i := range procs {
		procs[i] = vm.ProcInfo{
			Name:           d.string(),
			Entry:          d.int(),
			NArgs:          d.int(),
			NFree:          d.int(),
			SyntacticLeaf:  d.bool(),
			CallInevitable: d.bool(),
		}
		if d.err != nil {
			return nil
		}
	}

	nGlobals := d.count(1)
	if d.err != nil {
		return nil
	}
	globalNames := make([]sexp.Symbol, nGlobals)
	for i := range globalNames {
		globalNames[i] = sexp.Symbol(d.string())
	}
	nPrimGlobals := d.count(1)
	if d.err != nil {
		return nil
	}
	if nPrimGlobals != nGlobals {
		d.fail("prim-global length %d does not match %d globals", nPrimGlobals, nGlobals)
		return nil
	}
	primGlobals := make([]*prim.Def, nPrimGlobals)
	for i := range primGlobals {
		name := d.string()
		if d.err != nil {
			return nil
		}
		if name == "" {
			continue
		}
		def := prim.Lookup(sexp.Symbol(name))
		if def == nil {
			d.fail("unknown primitive global %q", name)
			return nil
		}
		primGlobals[i] = def
	}

	nShuffles := d.count(3)
	if d.err != nil {
		return nil
	}
	shuffles := make([]vm.ShuffleRecord, nShuffles)
	for i := range shuffles {
		sh := &shuffles[i]
		sh.StartPC = d.int()
		sh.CallPC = d.int()
		if nAssigns := d.count(3); nAssigns > 0 {
			sh.Assigns = make([]vm.ShuffleAssign, nAssigns)
			for j := range sh.Assigns {
				sh.Assigns[j] = vm.ShuffleAssign{
					Target:    d.int(),
					Src:       d.int(),
					SrcIsSlot: d.bool(),
				}
			}
		}
		if d.err != nil {
			return nil
		}
	}
	if d.err != nil {
		return nil
	}
	return &vm.Program{
		Config:       cfg,
		MainIndex:    mainIndex,
		Code:         code,
		Consts:       consts,
		ConstMutable: constMutable,
		Prims:        prims,
		Procs:        procs,
		GlobalNames:  globalNames,
		PrimGlobals:  primGlobals,
		Shuffles:     shuffles,
	}
}

func (d *decoder) stats() codegen.Stats {
	var st codegen.Stats
	for _, f := range []*int{
		&st.CallSites, &st.CyclicCallSites, &st.ShuffleTemps, &st.OptimalTemps,
		&st.SitesOptimal, &st.SitesSuboptimal, &st.ExtraTempsWorst,
		&st.SaveSites, &st.RestoreSites, &st.DefensiveRestores,
		&st.Procs, &st.SyntacticLeaves, &st.CallInevitable, &st.Instructions,
	} {
		*f = d.int()
	}
	return st
}

// value decodes one constant by rebuilding the reader-level datum and
// converting it through prim.FromDatum — the exact path the compiler
// takes for quoted literals, so a decoded constant is bit-identical in
// canonical encoding to a freshly compiled one.
func (d *decoder) value(depth int) prim.Value {
	if depth > maxConstDepth {
		d.fail("constant nesting exceeds %d", maxConstDepth)
		return prim.Value{}
	}
	switch tag := d.byte(); tag {
	case tNone:
		return prim.Value{}
	case tFixnum:
		return prim.FixV(d.varint())
	case tFlonum:
		if d.pos+8 > len(d.data) {
			d.fail("truncated flonum at %d", d.pos)
			return prim.Value{}
		}
		bits := binary.BigEndian.Uint64(d.data[d.pos:])
		d.pos += 8
		return prim.FloV(math.Float64frombits(bits))
	case tBool:
		return prim.BoolV(d.bool())
	case tChar:
		return prim.CharV(rune(d.varint()))
	case tSymbol:
		return prim.SymV(sexp.Symbol(d.string()))
	case tString:
		return prim.StrV(sexp.Str(d.string()))
	case tEmpty:
		return prim.Empty
	case tPair:
		car := d.value(depth + 1)
		cdr := d.value(depth + 1)
		if d.err != nil {
			return prim.Value{}
		}
		return prim.PairV(&prim.Pair{Car: car, Cdr: cdr})
	case tVector:
		n := d.count(1)
		if d.err != nil {
			return prim.Value{}
		}
		items := make([]prim.Value, n)
		for i := range items {
			items[i] = d.value(depth + 1)
			if d.err != nil {
				return prim.Value{}
			}
		}
		return prim.VecV(&prim.Vector{Items: items})
	default:
		d.fail("unknown constant tag %d at %d", tag, d.pos-1)
		return prim.Value{}
	}
}
