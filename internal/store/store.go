// Package store is the on-disk tier of the service's two-tier
// compilation cache: a content-addressed store of compiled programs
// keyed by the service's SHA-256 cache key. It exists so that restarts
// and horizontal lsrd replicas share compilations — the in-memory LRU
// is the fast tier, this store is the durable, shared tier underneath.
//
// Coherence is by construction: entries are immutable and keyed by the
// content hash of (prelude version, code-affecting options, source), so
// two replicas can only ever write byte-equivalent programs under the
// same key. Writers stage to a temp file and rename into place, which
// is atomic on POSIX filesystems; concurrent same-key writers race
// benignly (last rename wins, both files decode to the same program).
// Corrupt, truncated or version-skewed entries are treated as misses
// and overwritten by the next compile — never surfaced as errors to a
// client.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/compiler"
)

// Key is the content address of one compilation — the same SHA-256 the
// service's in-memory cache uses (service.CacheKey converts directly).
type Key [sha256.Size]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// magic heads every entry file; a file without it is not an entry at
// all (and reads as a miss).
var magic = [8]byte{'l', 's', 'r', 's', 't', 'o', 'r', 'e'}

// IndexSchema versions index.json, the flushed snapshot of the key set.
const IndexSchema = "lsr/store-index/v1"

// Stats are the store's monotonic counters, all safe to read
// concurrently.
type Stats struct {
	// Hits and Misses count Get outcomes. Corrupt counts the subset of
	// misses caused by an entry that existed but failed validation
	// (bad magic, version skew, truncation, checksum or decode error).
	Hits, Misses, Corrupt int64
	// Puts counts successful writes; PutErrors counts failed ones
	// (both encode refusals and I/O errors).
	Puts, PutErrors int64
}

// Store is an on-disk compilation store rooted at one directory. It is
// safe for concurrent use by multiple goroutines and multiple
// processes sharing the directory.
type Store struct {
	dir string

	hits, misses, corrupt atomic.Int64
	puts, putErrors       atomic.Int64

	// known is the in-memory index: keys believed present on disk. It
	// is a hint, not a guarantee — Get falls through to the filesystem
	// for unknown keys (another replica may have written them), and a
	// known key whose file fails to load degrades to a miss.
	mu    sync.Mutex
	known map[Key]struct{}
}

// storeIndex is the serialized form of the key set (index.json).
type storeIndex struct {
	Schema  string   `json:"schema"`
	Codec   int      `json:"codec_version"`
	Entries []string `json:"entries"`
}

// Open creates (if needed) and opens the store rooted at dir. A flushed
// index.json warms the key set; without one the directory tree is
// scanned, so a crash that lost the index costs one walk, not any
// entries.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s := &Store{dir: dir, known: map[Key]struct{}{}}
	if !s.loadIndex() {
		s.scan()
	}
	return s, nil
}

// Dir is the store's root directory.
func (s *Store) Dir() string { return s.dir }

// loadIndex reads index.json; false means absent or unusable.
func (s *Store) loadIndex() bool {
	data, err := os.ReadFile(filepath.Join(s.dir, "index.json"))
	if err != nil {
		return false
	}
	var idx storeIndex
	if json.Unmarshal(data, &idx) != nil || idx.Schema != IndexSchema || idx.Codec != CodecVersion {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, h := range idx.Entries {
		b, err := hex.DecodeString(h)
		if err != nil || len(b) != len(Key{}) {
			continue
		}
		var k Key
		copy(k[:], b)
		s.known[k] = struct{}{}
	}
	return true
}

// scan walks the shard directories collecting entry keys.
func (s *Store) scan() {
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, ent := range entries {
			name := ent.Name()
			if filepath.Ext(name) != ".lsrc" {
				continue
			}
			b, err := hex.DecodeString(name[:len(name)-len(".lsrc")])
			if err != nil || len(b) != len(Key{}) {
				continue
			}
			var k Key
			copy(k[:], b)
			s.known[k] = struct{}{}
		}
	}
}

// path is the entry file for key, sharded by the first hex byte so no
// directory grows unboundedly.
func (s *Store) path(k Key) string {
	h := k.String()
	return filepath.Join(s.dir, h[:2], h+".lsrc")
}

// Get loads the compilation stored under key. ok is false on any
// failure — absent, truncated, corrupt, version-skewed or undecodable
// entries all read as misses (corrupt ones are additionally counted
// and removed so the next Put rewrites them cleanly).
func (s *Store) Get(key Key) (*compiler.Compiled, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		s.forget(key)
		return nil, false
	}
	c, err := decodeEntry(data)
	if err != nil {
		s.misses.Add(1)
		s.corrupt.Add(1)
		s.forget(key)
		_ = os.Remove(s.path(key))
		return nil, false
	}
	s.hits.Add(1)
	s.remember(key)
	return c, true
}

// Contains reports whether key is in the in-memory index (a hint; the
// authoritative check is Get).
func (s *Store) Contains(key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.known[key]
	return ok
}

// Len is the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.known)
}

// Put persists a compilation under key: encode, write to a temp file in
// the entry's own shard directory, fsync-free rename into place. A
// compilation the codec refuses (lint-bearing) or an I/O failure is
// counted and reported, but callers treat Put as best-effort — the
// in-memory tier already holds the value.
func (s *Store) Put(key Key, c *compiler.Compiled) error {
	payload, err := encodeCompiled(c)
	if err != nil {
		s.putErrors.Add(1)
		return err
	}
	entry := encodeEntry(payload)
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		s.putErrors.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "put-*.tmp")
	if err != nil {
		s.putErrors.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	if _, err := tmp.Write(entry); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.putErrors.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.putErrors.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		s.putErrors.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	s.puts.Add(1)
	s.remember(key)
	return nil
}

func (s *Store) remember(key Key) {
	s.mu.Lock()
	s.known[key] = struct{}{}
	s.mu.Unlock()
}

func (s *Store) forget(key Key) {
	s.mu.Lock()
	delete(s.known, key)
	s.mu.Unlock()
}

// Flush writes index.json (atomically, write-then-rename) so the next
// Open skips the directory scan. Called on graceful shutdown; a crash
// that skips it only costs the next Open a walk.
func (s *Store) Flush() error {
	s.mu.Lock()
	idx := storeIndex{Schema: IndexSchema, Codec: CodecVersion}
	idx.Entries = make([]string, 0, len(s.known))
	for k := range s.known {
		idx.Entries = append(idx.Entries, k.String())
	}
	s.mu.Unlock()

	data, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "index-*.tmp")
	if err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: flush: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: flush: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, "index.json")); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: flush: %w", err)
	}
	return nil
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Corrupt:   s.corrupt.Load(),
		Puts:      s.puts.Load(),
		PutErrors: s.putErrors.Load(),
	}
}

// encodeEntry frames a payload: magic, codec version, payload length,
// payload, SHA-256 checksum of the payload. Every field the reader
// trusts is validated; anything off reads as corruption.
func encodeEntry(payload []byte) []byte {
	buf := make([]byte, 0, len(magic)+8+4+len(payload)+sha256.Size)
	buf = append(buf, magic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, CodecVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(payload)
	buf = append(buf, sum[:]...)
	return buf
}

// decodeEntry validates framing and checksum, then decodes the payload.
func decodeEntry(data []byte) (*compiler.Compiled, error) {
	header := len(magic) + 4 + 4
	if len(data) < header+sha256.Size {
		return nil, fmt.Errorf("store: entry truncated (%d bytes)", len(data))
	}
	if [8]byte(data[:8]) != magic {
		return nil, fmt.Errorf("store: bad magic")
	}
	if v := binary.BigEndian.Uint32(data[8:12]); v != CodecVersion {
		return nil, fmt.Errorf("store: codec version %d, want %d", v, CodecVersion)
	}
	n := int(binary.BigEndian.Uint32(data[12:16]))
	if len(data) != header+n+sha256.Size {
		return nil, fmt.Errorf("store: entry length %d does not match payload %d", len(data), n)
	}
	payload := data[header : header+n]
	var want [sha256.Size]byte
	copy(want[:], data[header+n:])
	if sha256.Sum256(payload) != want {
		return nil, fmt.Errorf("store: checksum mismatch")
	}
	return decodeCompiled(payload)
}
