package service

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// postHeader is post with an extra header (tenant tests).
func postHeader(t *testing.T, url, path, body, hname, hval string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if hname != "" {
		req.Header.Set(hname, hval)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := make([]byte, 0, 512)
	buf := make([]byte, 512)
	for {
		n, rerr := resp.Body.Read(buf)
		out = append(out, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	return resp, out
}

// TestStoreSharedAcrossReplicas is the PR's acceptance test: a
// cold-started second replica sharing the store directory serves a
// compilation cached by the first without recompiling, observed both
// in the response's cached flag and in the replica's metrics (a store
// hit and zero compiles).
func TestStoreSharedAcrossReplicas(t *testing.T) {
	dir := t.TempDir()
	svc1, ts1 := newTestServer(t, Config{StoreDir: dir})

	code, body := post(t, ts1, "/v1/compile", CompileRequest{Source: addOneSrc})
	if code != http.StatusOK {
		t.Fatalf("replica 1 compile: status %d: %s", code, body)
	}
	var first CompileResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("replica 1's first compile claims cached")
	}
	if err := svc1.FlushStore(); err != nil {
		t.Fatal(err)
	}

	// Cold start: fresh service, empty in-memory LRU, same store dir.
	_, ts2 := newTestServer(t, Config{StoreDir: dir})
	code, body = post(t, ts2, "/v1/compile", CompileRequest{Source: addOneSrc})
	if code != http.StatusOK {
		t.Fatalf("replica 2 compile: status %d: %s", code, body)
	}
	var second CompileResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("replica 2 recompiled a store-resident compilation")
	}
	if second.Key != first.Key {
		t.Fatalf("replicas disagree on the content address: %s vs %s", second.Key, first.Key)
	}
	if second.Stats != first.Stats {
		t.Fatalf("replicas disagree on stats: %+v vs %+v", second.Stats, first.Stats)
	}

	_, metrics := get(t, ts2, "/metrics")
	m := string(metrics)
	if !strings.Contains(m, "lsrd_store_hits_total 1") {
		t.Error("replica 2 metrics missing lsrd_store_hits_total 1")
	}
	if !strings.Contains(m, "# TYPE lsrd_compiles_total counter") || strings.Contains(m, "lsrd_compiles_total{") {
		t.Errorf("replica 2 compiled despite the store hit:\n%s", m)
	}

	// The run path shares the same two-tier lookup.
	code, body = post(t, ts2, "/v1/run", RunRequest{Source: addOneSrc})
	if code != http.StatusOK {
		t.Fatalf("replica 2 run: status %d: %s", code, body)
	}
	var run RunResponse
	if err := json.Unmarshal(body, &run); err != nil {
		t.Fatal(err)
	}
	if run.Value != "42" {
		t.Fatalf("replica 2 ran the store-decoded program to %q, want 42", run.Value)
	}
}

// TestBatchByteIdentity: each batch item's body must be byte-identical
// (modulo the response writer's indentation) to the standalone
// /v1/compile response for the same unit — success and error items
// alike share one decoder contract.
func TestBatchByteIdentity(t *testing.T) {
	items := []CompileRequest{
		{Source: addOneSrc},
		{Source: `(define (g x) (* x x)) (g 7)`, Dump: true},
		{Source: `(+ 1`}, // parse error
		{Source: addOneSrc, Options: &OptionsRequest{Saves: "?"}}, // bad options
	}

	// Standalone responses from a fresh service.
	_, ts1 := newTestServer(t, Config{})
	var singles [][]byte
	var codes []int
	for _, it := range items {
		code, body := post(t, ts1, "/v1/compile", it)
		singles = append(singles, body)
		codes = append(codes, code)
	}

	// The batch from another fresh service, so cache state matches.
	_, ts2 := newTestServer(t, Config{})
	code, body := post(t, ts2, "/v1/batch", BatchRequest{Items: items})
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, body)
	}
	var batch BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Items) != len(items) {
		t.Fatalf("batch returned %d items, want %d", len(batch.Items), len(items))
	}
	for i, item := range batch.Items {
		if item.Status != codes[i] {
			t.Errorf("item %d: status %d, standalone %d", i, item.Status, codes[i])
		}
		var indented strings.Builder
		if err := jsonIndent(&indented, item.Body); err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if got, want := indented.String(), string(singles[i]); got != want {
			t.Errorf("item %d body differs from standalone response:\n batch: %s\nsingle: %s", i, got, want)
		}
	}

	// Golden: the batch response is fully deterministic (content-hash
	// keys, fixed stats), so its bytes are pinned.
	golden := filepath.Join("testdata", "batch_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if string(want) != string(body) {
		t.Errorf("batch response drifted from golden:\n got: %s\nwant: %s", body, want)
	}
}

// jsonIndent re-indents a compact body exactly as writeJSON renders
// (two-space indent, trailing newline).
func jsonIndent(b *strings.Builder, raw json.RawMessage) error {
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		return err
	}
	b.Write(buf.Bytes())
	b.WriteByte('\n')
	return nil
}

// TestBatchLimits: empty and oversized batches are bad requests.
func TestBatchLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchItems: 2})
	code, body := post(t, ts, "/v1/batch", BatchRequest{})
	if code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d: %s", code, body)
	}
	code, body = post(t, ts, "/v1/batch", BatchRequest{Items: []CompileRequest{
		{Source: "(+ 1 1)"}, {Source: "(+ 2 2)"}, {Source: "(+ 3 3)"},
	}})
	if code != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d: %s", code, body)
	}
	if !strings.Contains(string(body), "limit 2") {
		t.Errorf("oversized batch error does not state the limit: %s", body)
	}
}

// TestTenantQuota: a tenant at its admission limit sheds with 429,
// the quota kind, a Retry-After header, and a per-tenant metric;
// other tenants are unaffected.
func TestTenantQuota(t *testing.T) {
	svc, ts := newTestServer(t, Config{TenantInflight: 1})

	// Hold tenant A's only slot, as an in-flight request would.
	if !svc.tenants.acquire("team-a", 1) {
		t.Fatal("first acquire failed")
	}
	resp, body := postHeader(t, ts.URL, "/v1/compile", `{"source":"(+ 1 2)"}`, "X-Lsr-Tenant", "team-a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated tenant: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want 1", got)
	}
	if !strings.Contains(string(body), string(KindQuota)) {
		t.Errorf("shed body missing quota kind: %s", body)
	}

	// A different tenant still gets through, as does anonymous traffic.
	resp, body = postHeader(t, ts.URL, "/v1/compile", `{"source":"(+ 1 2)"}`, "X-Lsr-Tenant", "team-b")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: status %d: %s", resp.StatusCode, body)
	}
	resp, body = postHeader(t, ts.URL, "/v1/compile", `{"source":"(+ 1 2)"}`, "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("anonymous: status %d: %s", resp.StatusCode, body)
	}

	// Releasing the slot readmits tenant A.
	svc.tenants.release("team-a")
	resp, body = postHeader(t, ts.URL, "/v1/compile", `{"source":"(+ 1 2)"}`, "X-Lsr-Tenant", "team-a")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("released tenant: status %d: %s", resp.StatusCode, body)
	}

	_, metrics := get(t, ts, "/metrics")
	m := string(metrics)
	if !strings.Contains(m, `lsrd_tenant_quota_rejected_total{tenant="team-a"} 1`) {
		t.Error("metrics missing the quota rejection")
	}
	if !strings.Contains(m, `lsrd_tenant_requests_total{tenant="team-b"} 1`) {
		t.Error("metrics missing per-tenant request count")
	}
}

// TestTenantFuelClamp: a tenant fuel ceiling caps what /v1/run grants,
// while anonymous requests keep the server-wide bound.
func TestTenantFuelClamp(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantMaxFuel: 5000})

	resp, body := postHeader(t, ts.URL, "/v1/run",
		`{"source":"(+ 1 2)","max_steps":100000}`, "X-Lsr-Tenant", "team-a")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant run: status %d: %s", resp.StatusCode, body)
	}
	var run RunResponse
	if err := json.Unmarshal(body, &run); err != nil {
		t.Fatal(err)
	}
	if run.Fuel != 5000 {
		t.Errorf("tenant fuel = %d, want clamp 5000", run.Fuel)
	}

	resp, body = postHeader(t, ts.URL, "/v1/run",
		`{"source":"(+ 1 2)","max_steps":100000}`, "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("anonymous run: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &run); err != nil {
		t.Fatal(err)
	}
	if run.Fuel != 100000 {
		t.Errorf("anonymous fuel = %d, want 100000", run.Fuel)
	}
}

// TestDrain: StartDrain stops admission (503 + Retry-After, taxonomy
// kind "draining"), flips /healthz so the gate routes away, raises the
// lsrd_draining gauge, and DrainWait completes and flushes the store.
func TestDrain(t *testing.T) {
	dir := t.TempDir()
	svc, ts := newTestServer(t, Config{StoreDir: dir})

	code, body := post(t, ts, "/v1/compile", CompileRequest{Source: addOneSrc})
	if code != http.StatusOK {
		t.Fatalf("pre-drain compile: status %d: %s", code, body)
	}

	svc.StartDrain()
	if !svc.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}

	resp, body := postHeader(t, ts.URL, "/v1/compile", `{"source":"(+ 1 2)"}`, "", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining compile: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "5" {
		t.Errorf("draining Retry-After = %q, want 5", got)
	}
	if !strings.Contains(string(body), string(KindDraining)) {
		t.Errorf("draining body missing kind: %s", body)
	}

	code, body = get(t, ts, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d", code)
	}
	if !strings.Contains(string(body), "draining") {
		t.Errorf("draining healthz body: %s", body)
	}

	_, metrics := get(t, ts, "/metrics")
	if !strings.Contains(string(metrics), "lsrd_draining 1") {
		t.Error("metrics missing lsrd_draining 1")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.DrainWait(ctx); err != nil {
		t.Fatalf("DrainWait: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "index.json")); err != nil {
		t.Errorf("store index not flushed on drain: %v", err)
	}
}

// TestRetryAfterTaxonomy pins the backoff contract documented in the
// README's taxonomy table.
func TestRetryAfterTaxonomy(t *testing.T) {
	cases := []struct {
		kind Kind
		want int
	}{
		{KindOverload, 1}, {KindQuota, 1}, {KindDraining, 5},
		{KindBadRequest, 0}, {KindCompile, 0}, {KindFuel, 0},
	}
	for _, c := range cases {
		if got := c.kind.RetryAfterSeconds(); got != c.want {
			t.Errorf("RetryAfterSeconds(%s) = %d, want %d", c.kind, got, c.want)
		}
	}
	if KindQuota.HTTPStatus() != http.StatusTooManyRequests {
		t.Error("quota kind is not 429")
	}
	if KindDraining.HTTPStatus() != http.StatusServiceUnavailable {
		t.Error("draining kind is not 503")
	}
}
