// Package service is the serving layer over the compiler, verifier,
// optimality analyzer and VM: a concurrent compile-and-run service with
// a two-tier content-addressed compilation cache (in-memory LRU over a
// shared on-disk store, so restarts and horizontal replicas share
// compilations), a bounded worker pool that sheds load instead of
// collapsing (with per-tenant admission quotas), execution fuel so
// hostile programs cannot wedge a worker, graceful draining, and
// Prometheus-format metrics. cmd/lsrd wraps it in an HTTP daemon and
// cmd/lsrgate shards requests across replicas; the error taxonomy
// (Kind) is shared with the lsrc CLI so batch and served failures
// report identically.
//
// Endpoints:
//
//	POST /v1/compile  compile (optionally verify), return static stats
//	POST /v1/batch    compile many units under one pool admission
//	POST /v1/run      compile and execute under a fuel budget
//	POST /v1/verify   translation-validate, return a findings report
//	POST /v1/lint     optimality-analyze, return a findings report
//	GET  /healthz     liveness (503 while draining)
//	GET  /metrics     Prometheus text metrics
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/compiler"
	"repro/internal/findings"
	"repro/internal/prim"
	"repro/internal/service/metrics"
	"repro/internal/store"
	"repro/internal/verify"
	"repro/internal/vm"
)

// Config tunes the service.
type Config struct {
	// Workers bounds concurrently executing requests (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker beyond the ones
	// running; an arrival past Workers+QueueDepth is shed with 429.
	QueueDepth int
	// RequestTimeout bounds how long a request may wait in the queue
	// (and is the deadline attached to its context).
	RequestTimeout time.Duration
	// DefaultFuel is the step budget for /v1/run when the request does
	// not set one; MaxFuel caps what a request may ask for.
	DefaultFuel int64
	MaxFuel     int64
	// CacheEntries sizes the compilation cache (LRU).
	CacheEntries int
	// MaxSourceBytes bounds accepted request bodies.
	MaxSourceBytes int64
	// MaxOutputBytes truncates a run's captured display output.
	MaxOutputBytes int64
	// StoreDir roots the on-disk compilation store (the durable tier
	// under the LRU, shared by restarts and replicas). Empty disables
	// the disk tier; the service is then memory-only as before.
	StoreDir string
	// MaxBatchItems bounds the number of units one /v1/batch request
	// may carry.
	MaxBatchItems int
	// TenantHeader names the header carrying the tenant identity for
	// per-tenant quotas (default X-Lsr-Tenant). Requests without the
	// header share the anonymous pool and are only subject to the
	// global admission limits.
	TenantHeader string
	// TenantInflight caps how many requests one tenant may have
	// admitted at once (0 disables per-tenant admission quotas).
	TenantInflight int
	// TenantMaxFuel caps the fuel a tenant-attributed run may request;
	// it is applied after the global MaxFuel clamp (0 = no extra cap).
	TenantMaxFuel int64
}

// DefaultConfig returns production-shaped defaults.
func DefaultConfig() Config {
	return Config{
		Workers:        runtime.GOMAXPROCS(0),
		QueueDepth:     64,
		RequestTimeout: 10 * time.Second,
		DefaultFuel:    50_000_000,
		MaxFuel:        2_000_000_000,
		CacheEntries:   256,
		MaxSourceBytes: 1 << 20,
		MaxOutputBytes: 1 << 20,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = d.RequestTimeout
	}
	if c.DefaultFuel <= 0 {
		c.DefaultFuel = d.DefaultFuel
	}
	if c.MaxFuel <= 0 {
		c.MaxFuel = d.MaxFuel
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = d.CacheEntries
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = d.MaxSourceBytes
	}
	if c.MaxOutputBytes <= 0 {
		c.MaxOutputBytes = d.MaxOutputBytes
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 64
	}
	if c.TenantHeader == "" {
		c.TenantHeader = "X-Lsr-Tenant"
	}
	return c
}

// Error is a taxonomy-classified service failure.
type Error struct {
	Kind     Kind
	Message  string
	Findings []findings.Finding
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Kind, e.Message) }

func errOf(kind Kind, format string, args ...any) *Error {
	return &Error{Kind: kind, Message: fmt.Sprintf(format, args...)}
}

// Service is the serving layer. Create with New; it is safe for
// concurrent use.
type Service struct {
	cfg      Config
	cache    *Cache
	store    *store.Store
	sem      chan struct{}
	admitted atomic.Int64
	draining atomic.Bool
	tenants  *tenantTable
	log      *slog.Logger

	reg           *metrics.Registry
	reqs          *metrics.CounterVec
	latency       *metrics.HistogramVec
	inflight      *metrics.Gauge
	shed          *metrics.Counter
	drainGauge    *metrics.Gauge
	fuelExhausted *metrics.Counter
	compiles      *metrics.CounterVec
	runs          *metrics.CounterVec
	batchItems    *metrics.CounterVec
	saveSites     *metrics.CounterVec
	restoreSites  *metrics.CounterVec
	shuffleTemps  *metrics.CounterVec
	tenantReqs    *metrics.CounterVec
	tenantShed    *metrics.CounterVec
}

// New creates a service. logger may be nil (logs are discarded). A
// non-empty cfg.StoreDir opens (creating if needed) the on-disk store;
// an unopenable directory is a hard error surfaced by NewWithError —
// New itself logs and continues memory-only, which keeps the daemon
// serving even on a broken disk.
func New(cfg Config, logger *slog.Logger) *Service {
	s, err := NewWithError(cfg, logger)
	if err != nil {
		// s is still a functioning memory-only service.
		s.log.Error("store disabled", "err", err)
	}
	return s
}

// NewWithError is New with the store-open failure reported instead of
// swallowed (cmd/lsrd treats it as fatal; tests assert on it).
func NewWithError(cfg Config, logger *slog.Logger) (*Service, error) {
	cfg = cfg.withDefaults()
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Service{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheEntries),
		sem:     make(chan struct{}, cfg.Workers),
		tenants: newTenantTable(),
		log:     logger,
		reg:     metrics.NewRegistry(),
	}
	var storeErr error
	if cfg.StoreDir != "" {
		s.store, storeErr = store.Open(cfg.StoreDir)
	}
	s.reqs = s.reg.NewCounterVec("lsrd_requests_total",
		"Requests by endpoint and status code.", "endpoint", "code")
	s.latency = s.reg.NewHistogramVec("lsrd_request_seconds",
		"Request latency by endpoint.", metrics.DefBuckets, "endpoint")
	s.inflight = s.reg.NewGauge("lsrd_inflight_requests",
		"Requests currently admitted (running or queued).")
	s.shed = s.reg.NewCounter("lsrd_shed_total",
		"Requests rejected with 429 because the queue was full.")
	s.drainGauge = s.reg.NewGauge("lsrd_draining",
		"1 while the daemon is draining (admitting nothing new).")
	s.fuelExhausted = s.reg.NewCounter("lsrd_fuel_exhausted_total",
		"Runs terminated by the execution fuel budget.")
	s.compiles = s.reg.NewCounterVec("lsrd_compiles_total",
		"Actual (non-cached) compilations by save strategy.", "saves")
	s.runs = s.reg.NewCounterVec("lsrd_runs_total",
		"Program executions by engine.", "engine")
	s.batchItems = s.reg.NewCounterVec("lsrd_batch_items_total",
		"Units processed through /v1/batch by per-item outcome kind (ok or error kind).", "kind")
	s.tenantReqs = s.reg.NewCounterVec("lsrd_tenant_requests_total",
		"Requests attributed to a tenant header.", "tenant")
	s.tenantShed = s.reg.NewCounterVec("lsrd_tenant_quota_rejected_total",
		"Requests rejected with 429 by the per-tenant admission quota.", "tenant")
	s.saveSites = s.reg.NewCounterVec("lsrd_compile_save_sites_total",
		"Static save instructions emitted, by save strategy.", "saves")
	s.restoreSites = s.reg.NewCounterVec("lsrd_compile_restore_sites_total",
		"Static restore instructions emitted, by save strategy.", "saves")
	s.shuffleTemps = s.reg.NewCounterVec("lsrd_compile_shuffle_temps_total",
		"Shuffle temporaries introduced, by save strategy.", "saves")
	s.reg.NewCounterFunc("lsrd_cache_hits_total",
		"Compilation cache hits.", func() int64 { return s.cache.Stats().Hits })
	s.reg.NewCounterFunc("lsrd_cache_misses_total",
		"Compilation cache misses.", func() int64 { return s.cache.Stats().Misses })
	s.reg.NewCounterFunc("lsrd_cache_evictions_total",
		"Compilation cache LRU evictions.", func() int64 { return s.cache.Stats().Evictions })
	s.reg.NewCounterFunc("lsrd_cache_dedup_total",
		"Requests collapsed into an in-flight identical compile.", func() int64 { return s.cache.Stats().Deduped })
	s.reg.NewGaugeFunc("lsrd_cache_entries",
		"Compiled programs currently cached.", func() int64 { return int64(s.cache.Len()) })
	if s.store != nil {
		s.reg.NewCounterFunc("lsrd_store_hits_total",
			"On-disk store hits (compilations served without recompiling).",
			func() int64 { return s.store.Stats().Hits })
		s.reg.NewCounterFunc("lsrd_store_misses_total",
			"On-disk store misses.", func() int64 { return s.store.Stats().Misses })
		s.reg.NewCounterFunc("lsrd_store_corrupt_total",
			"Store entries rejected as corrupt/truncated/version-skewed (read as misses).",
			func() int64 { return s.store.Stats().Corrupt })
		s.reg.NewCounterFunc("lsrd_store_put_errors_total",
			"Failed store writes (service continued from memory).",
			func() int64 { return s.store.Stats().PutErrors })
		s.reg.NewGaugeFunc("lsrd_store_entries",
			"Entries in the on-disk store's index.", func() int64 { return int64(s.store.Len()) })
	}
	return s, storeErr
}

// Cache exposes the compilation cache (tests and diagnostics).
func (s *Service) Cache() *Cache { return s.cache }

// Store exposes the on-disk tier (nil when disabled).
func (s *Service) Store() *store.Store { return s.store }

// StartDrain moves the service into draining: every subsequent request
// is rejected with 503/draining (Retry-After set) and /healthz reports
// draining, so load balancers and the gate route away while in-flight
// work finishes.
func (s *Service) StartDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.drainGauge.Set(1)
		s.log.Info("draining: admission stopped")
	}
}

// Draining reports whether StartDrain has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// DrainWait blocks until every admitted request has finished (or ctx
// expires), then flushes the on-disk store index. Call after
// StartDrain; the HTTP server's own Shutdown handles the connections.
func (s *Service) DrainWait(ctx context.Context) error {
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for s.admitted.Load() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("drain: %d requests still in flight: %w", s.admitted.Load(), ctx.Err())
		case <-tick.C:
		}
	}
	return s.FlushStore()
}

// FlushStore writes the on-disk store's index (no-op when the store is
// disabled).
func (s *Service) FlushStore() error {
	if s.store == nil {
		return nil
	}
	return s.store.Flush()
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.endpoint("compile", s.handleCompile))
	mux.HandleFunc("POST /v1/run", s.endpoint("run", s.handleRun))
	mux.HandleFunc("POST /v1/verify", s.endpoint("verify", s.handleVerify))
	mux.HandleFunc("POST /v1/lint", s.endpoint("lint", s.handleLint))
	mux.HandleFunc("POST /v1/batch", s.endpoint("batch", s.handleBatch))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"draining"}`)
			return
		}
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WriteText(w)
	})
	return mux
}

// handlerFunc is one endpoint's logic: it returns the response body and
// status, or a classified error.
type handlerFunc func(ctx context.Context, body []byte) (any, int, *Error)

// endpoint wraps admission control, deadlines, body limits, metrics and
// structured logging around a handler.
func (s *Service) endpoint(name string, h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status := 0
		defer func() {
			s.reqs.With(name, fmt.Sprintf("%d", status)).Inc()
			s.latency.With(name).Observe(time.Since(start).Seconds())
			s.log.Info("request",
				"endpoint", name,
				"status", status,
				"duration", time.Since(start),
				"remote", r.RemoteAddr)
		}()

		if s.draining.Load() {
			status = KindDraining.HTTPStatus()
			writeError(w, status, errOf(KindDraining, "daemon is draining; retry another replica"))
			return
		}

		body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxSourceBytes+1))
		if err != nil {
			status = http.StatusBadRequest
			writeError(w, status, errOf(KindBadRequest, "reading body: %v", err))
			return
		}
		if int64(len(body)) > s.cfg.MaxSourceBytes {
			status = http.StatusBadRequest
			writeError(w, status, errOf(KindBadRequest, "body exceeds %d bytes", s.cfg.MaxSourceBytes))
			return
		}

		tenant := r.Header.Get(s.cfg.TenantHeader)
		if tenant != "" {
			s.tenantReqs.With(tenant).Inc()
		}
		release, qerr := s.tenantAcquire(tenant)
		if qerr != nil {
			s.tenantShed.With(tenant).Inc()
			status = qerr.Kind.HTTPStatus()
			writeError(w, status, qerr)
			return
		}
		defer release()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		ctx = withTenant(ctx, tenant)
		if aerr := s.acquire(ctx); aerr != nil {
			if aerr.Kind == KindOverload {
				s.shed.Inc()
			}
			status = aerr.Kind.HTTPStatus()
			writeError(w, status, aerr)
			return
		}
		defer s.release()

		resp, code, herr := h(ctx, body)
		if herr != nil {
			if herr.Kind == KindFuel {
				s.fuelExhausted.Inc()
			}
			status = herr.Kind.HTTPStatus()
			writeError(w, status, herr)
			return
		}
		status = code
		writeJSON(w, code, resp)
	}
}

// acquire admits a request into the bounded pool: it counts the request
// against Workers+QueueDepth (shedding with KindOverload past that) and
// then waits for a worker slot until the deadline.
func (s *Service) acquire(ctx context.Context) *Error {
	limit := int64(s.cfg.Workers + s.cfg.QueueDepth)
	if s.admitted.Add(1) > limit {
		s.admitted.Add(-1)
		return errOf(KindOverload, "queue full (%d running or queued)", limit)
	}
	s.inflight.Add(1)
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.admitted.Add(-1)
		s.inflight.Add(-1)
		return errOf(KindTimeout, "timed out waiting for a worker: %v", ctx.Err())
	}
}

func (s *Service) release() {
	<-s.sem
	s.admitted.Add(-1)
	s.inflight.Add(-1)
}

// compileCached compiles source under opts through the two-tier
// content-addressed cache — in-memory LRU over the shared on-disk
// store — recording per-strategy compile metrics on actual compiles.
// The reported hit covers both tiers: an LRU hit, a singleflight join,
// or a store hit all mean the request did not trigger a compile.
func (s *Service) compileCached(src string, opts compiler.Options) (*compiler.Compiled, CacheKey, bool, *Error) {
	key := KeyFor(src, opts)
	storeHit := false
	val, hit, err := s.cache.GetOrCompile(key, func() (*compiler.Compiled, error) {
		// Miss in the fast tier: consult the durable tier before
		// compiling. Lint-bearing compilations are never persisted (the
		// codec refuses them), so skip the read too — a stored plain
		// entry under a lint key cannot exist.
		if s.store != nil && !opts.Lint {
			if c, ok := s.store.Get(store.Key(key)); ok {
				storeHit = true
				return c, nil
			}
		}
		c, cerr := compiler.Compile(src, opts)
		if cerr == nil {
			saves := opts.Saves.String()
			s.compiles.With(saves).Inc()
			s.saveSites.With(saves).Add(int64(c.Stats.SaveSites))
			s.restoreSites.With(saves).Add(int64(c.Stats.RestoreSites))
			s.shuffleTemps.With(saves).Add(int64(c.Stats.ShuffleTemps))
			if s.store != nil && !opts.Lint {
				if perr := s.store.Put(store.Key(key), c); perr != nil {
					s.log.Warn("store put failed", "key", key.String(), "err", perr)
				}
			}
		}
		return c, cerr
	})
	hit = hit || storeHit
	if err != nil {
		kind := Classify(StageCompile, err)
		serr := &Error{Kind: kind, Message: err.Error()}
		var verr *verify.Error
		if errors.As(err, &verr) {
			serr.Findings = verify.Findings(verr.Violations)
		}
		return nil, key, false, serr
	}
	return val, key, hit, nil
}

func decodeRequest(body []byte, into any) *Error {
	if err := json.Unmarshal(body, into); err != nil {
		return errOf(KindBadRequest, "decoding request: %v", err)
	}
	return nil
}

func requireSource(src string) *Error {
	if src == "" {
		return errOf(KindBadRequest, "source must not be empty")
	}
	return nil
}

func (s *Service) handleCompile(ctx context.Context, body []byte) (any, int, *Error) {
	var req CompileRequest
	if err := decodeRequest(body, &req); err != nil {
		return nil, 0, err
	}
	resp, err := s.compileUnit(&req)
	if err != nil {
		return nil, 0, err
	}
	return *resp, http.StatusOK, nil
}

func (s *Service) handleRun(ctx context.Context, body []byte) (any, int, *Error) {
	var req RunRequest
	if err := decodeRequest(body, &req); err != nil {
		return nil, 0, err
	}
	if err := requireSource(req.Source); err != nil {
		return nil, 0, err
	}
	opts, oerr := req.Options.toCompiler()
	if oerr != nil {
		return nil, 0, errOf(KindBadRequest, "%v", oerr)
	}
	engine, eerr := engineKind(req.Engine)
	if eerr != nil {
		return nil, 0, errOf(KindBadRequest, "%v", eerr)
	}
	mode, merr := counterMode(req.Counters)
	if merr != nil {
		return nil, 0, errOf(KindBadRequest, "%v", merr)
	}
	c, key, hit, err := s.compileCached(req.Source, opts)
	if err != nil {
		return nil, 0, err
	}

	fuel := req.MaxSteps
	if fuel <= 0 {
		fuel = s.cfg.DefaultFuel
	}
	if fuel > s.cfg.MaxFuel {
		fuel = s.cfg.MaxFuel
	}
	// Tenant fuel quota: a tenant-attributed run is clamped to the
	// per-tenant ceiling on top of the global one.
	if t := tenantFrom(ctx); t != "" && s.cfg.TenantMaxFuel > 0 && fuel > s.cfg.TenantMaxFuel {
		fuel = s.cfg.TenantMaxFuel
	}
	var out limitedBuffer
	out.limit = int(s.cfg.MaxOutputBytes)
	m := vm.New(c.Program, &out)
	m.Engine = engine
	m.Counting = mode
	m.MaxSteps = fuel
	m.ValidateRestores = req.Validate
	engineName := "threaded"
	if engine == vm.EngineSwitch {
		engineName = "switch"
	}
	s.runs.With(engineName).Inc()
	v, rerr := m.Run()
	if rerr != nil {
		return nil, 0, &Error{Kind: Classify(StageRun, rerr), Message: rerr.Error()}
	}
	return RunResponse{
		Key:      key.String(),
		Cached:   hit,
		Value:    prim.WriteString(v),
		Output:   out.String(),
		Fuel:     fuel,
		Counters: summarizeCounters(&m.Counters),
	}, http.StatusOK, nil
}

func (s *Service) handleVerify(ctx context.Context, body []byte) (any, int, *Error) {
	var req CheckRequest
	if err := decodeRequest(body, &req); err != nil {
		return nil, 0, err
	}
	if err := requireSource(req.Source); err != nil {
		return nil, 0, err
	}
	opts, oerr := req.Options.toCompiler()
	if oerr != nil {
		return nil, 0, errOf(KindBadRequest, "%v", oerr)
	}
	opts.Verify = true
	_, _, _, err := s.compileCached(req.Source, opts)
	if err != nil {
		if err.Kind == KindVerify {
			// The response body is exactly what lsrc -verify -json
			// prints: the findings report, with the taxonomy status.
			rep := findings.Report{Tool: "verify", Findings: err.Findings}
			return rep, KindVerify.HTTPStatus(), nil
		}
		return nil, 0, err
	}
	return findings.Report{Tool: "verify", Findings: []findings.Finding{}}, http.StatusOK, nil
}

func (s *Service) handleLint(ctx context.Context, body []byte) (any, int, *Error) {
	var req CheckRequest
	if err := decodeRequest(body, &req); err != nil {
		return nil, 0, err
	}
	if err := requireSource(req.Source); err != nil {
		return nil, 0, err
	}
	opts, oerr := req.Options.toCompiler()
	if oerr != nil {
		return nil, 0, errOf(KindBadRequest, "%v", oerr)
	}
	opts.Lint = true
	c, _, _, err := s.compileCached(req.Source, opts)
	if err != nil {
		return nil, 0, err
	}
	// Exactly lsrc -lint -json: the findings plus the waste totals.
	// Waste does not fail the request — the report is the product; the
	// client applies its own gate (lsrc exits with KindWaste's code).
	return findings.Report{
		Tool:     "lint",
		Findings: c.Lint.Structured(),
		Summary:  c.Lint.Totals,
	}, http.StatusOK, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, e *Error) {
	// Backoff contract: every shed response (429 overload/quota, 503
	// draining) tells the client how long to back off before retrying.
	if ra := e.Kind.RetryAfterSeconds(); ra > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", ra))
	}
	writeJSON(w, status, ErrorResponse{Error: ErrorBody{
		Kind:     string(e.Kind),
		Message:  e.Message,
		Findings: e.Findings,
	}})
}

// limitedBuffer captures program output up to a byte limit, discarding
// the rest (the run itself is not failed for being chatty).
type limitedBuffer struct {
	buf   []byte
	limit int
}

func (b *limitedBuffer) Write(p []byte) (int, error) {
	if room := b.limit - len(b.buf); room > 0 {
		if len(p) > room {
			b.buf = append(b.buf, p[:room]...)
		} else {
			b.buf = append(b.buf, p...)
		}
	}
	return len(p), nil
}

func (b *limitedBuffer) String() string { return string(b.buf) }
