package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/compiler"
	"repro/internal/findings"
	"repro/internal/vm"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg, nil)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, out
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

const addOneSrc = `(define (f x) (+ x 1)) (f 41)`

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if strings.TrimSpace(string(body)) != `{"status":"ok"}` {
		t.Errorf("healthz body: %s", body)
	}
}

func TestCompileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := post(t, ts, "/v1/compile", CompileRequest{Source: addOneSrc, Verify: true})
	if code != http.StatusOK {
		t.Fatalf("compile: status %d: %s", code, body)
	}
	var resp CompileResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(resp.Key) != 64 {
		t.Errorf("key = %q, want 64 hex chars", resp.Key)
	}
	if resp.Cached {
		t.Error("first compile reported cached")
	}
	// The stats must match a direct compilation byte for byte.
	opts := compiler.DefaultOptions()
	opts.Verify = true
	want, err := compiler.Compile(addOneSrc, opts)
	if err != nil {
		t.Fatalf("direct compile: %v", err)
	}
	if resp.Stats != want.Stats {
		t.Errorf("stats diverge from direct compile:\n got %+v\nwant %+v", resp.Stats, want.Stats)
	}

	// The identical request is a cache hit with the same key.
	code, body = post(t, ts, "/v1/compile", CompileRequest{Source: addOneSrc, Verify: true})
	if code != http.StatusOK {
		t.Fatalf("second compile: status %d", code)
	}
	var resp2 CompileResponse
	if err := json.Unmarshal(body, &resp2); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !resp2.Cached || resp2.Key != resp.Key {
		t.Errorf("second compile: cached=%t key=%s, want cached hit of %s", resp2.Cached, resp2.Key, resp.Key)
	}

	// Different options → different content address.
	lateOpts := &OptionsRequest{Saves: "late"}
	code, body = post(t, ts, "/v1/compile", CompileRequest{Source: addOneSrc, Options: lateOpts})
	if code != http.StatusOK {
		t.Fatalf("late compile: status %d", code)
	}
	var resp3 CompileResponse
	if err := json.Unmarshal(body, &resp3); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp3.Key == resp.Key {
		t.Error("different options produced the same cache key")
	}
}

func TestRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := `(display "hi") (+ 1 41)`
	code, body := post(t, ts, "/v1/run", RunRequest{Source: src})
	if code != http.StatusOK {
		t.Fatalf("run: status %d: %s", code, body)
	}
	var resp RunResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Value != "42" {
		t.Errorf("value = %q, want 42", resp.Value)
	}
	if resp.Output != "hi" {
		t.Errorf("output = %q, want hi", resp.Output)
	}
	if resp.Counters.Instructions == 0 || resp.Counters.Activations == 0 {
		t.Errorf("counters not populated: %+v", resp.Counters)
	}
	if resp.Cached {
		t.Error("first run reported cached")
	}

	// Re-running hits the compilation cache but still executes.
	code, body = post(t, ts, "/v1/run", RunRequest{Source: src})
	if code != http.StatusOK {
		t.Fatalf("second run: status %d", code)
	}
	var resp2 RunResponse
	if err := json.Unmarshal(body, &resp2); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !resp2.Cached {
		t.Error("second run was not a cache hit")
	}
	if resp2.Value != "42" || resp2.Counters.Instructions != resp.Counters.Instructions {
		t.Errorf("cached program ran differently: %+v vs %+v", resp2, resp)
	}
}

// TestVerifyEndpointGolden pins the exact response body: the same
// findings.Report JSON that `lsrc -verify -json` prints.
func TestVerifyEndpointGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := post(t, ts, "/v1/verify", CheckRequest{Source: addOneSrc})
	if code != http.StatusOK {
		t.Fatalf("verify: status %d: %s", code, body)
	}
	var want bytes.Buffer
	if err := findings.WriteJSON(&want, findings.Report{Tool: "verify", Findings: []findings.Finding{}}); err != nil {
		t.Fatal(err)
	}
	if string(body) != want.String() {
		t.Errorf("verify body diverges from lsrc -json format:\n got: %s\nwant: %s", body, want.String())
	}
}

// TestLintEndpointGolden: the /v1/lint body must be byte-for-byte what
// lsrc -lint -json prints for the same source and options.
func TestLintEndpointGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := post(t, ts, "/v1/lint", CheckRequest{Source: addOneSrc})
	if code != http.StatusOK {
		t.Fatalf("lint: status %d: %s", code, body)
	}
	opts := compiler.DefaultOptions()
	opts.Lint = true
	c, err := compiler.Compile(addOneSrc, opts)
	if err != nil {
		t.Fatalf("direct compile: %v", err)
	}
	var want bytes.Buffer
	rep := findings.Report{Tool: "lint", Findings: c.Lint.Structured(), Summary: c.Lint.Totals}
	if err := findings.WriteJSON(&want, rep); err != nil {
		t.Fatal(err)
	}
	if string(body) != want.String() {
		t.Errorf("lint body diverges from lsrc -json format:\n got: %s\nwant: %s", body, want.String())
	}
	var decoded struct {
		Tool    string           `json:"tool"`
		Summary analysis.Summary `json:"summary"`
	}
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if decoded.Tool != "lint" || decoded.Summary.Saves == 0 {
		t.Errorf("lint summary looks empty: %s", body)
	}
}

// TestRunFuelExhausted: the ISSUE's acceptance program — an infinite
// tail loop — must terminate with the fuel-exhausted taxonomy kind
// instead of hanging a worker.
func TestRunFuelExhausted(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	code, body := post(t, ts, "/v1/run", RunRequest{
		Source:   `(define (f) (f)) (f)`,
		MaxSteps: 10_000,
	})
	if code != KindFuel.HTTPStatus() {
		t.Fatalf("status = %d, want %d: %s", code, KindFuel.HTTPStatus(), body)
	}
	var resp ErrorResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Error.Kind != string(KindFuel) {
		t.Errorf("kind = %q, want %q", resp.Error.Kind, KindFuel)
	}
	if svc.fuelExhausted.Value() != 1 {
		t.Errorf("fuel metric = %d, want 1", svc.fuelExhausted.Value())
	}
}

// TestRunDefaultFuel: a looping program with no requested budget is
// still bounded by the server's default fuel.
func TestRunDefaultFuel(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultFuel: 5_000})
	code, body := post(t, ts, "/v1/run", RunRequest{Source: `(define (f) (f)) (f)`})
	if code != KindFuel.HTTPStatus() {
		t.Fatalf("status = %d, want fuel exhaustion: %s", code, body)
	}
}

// TestRunFuelClamped: a request cannot exceed the server's MaxFuel.
func TestRunFuelClamped(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxFuel: 5_000})
	code, body := post(t, ts, "/v1/run", RunRequest{
		Source:   `(define (f) (f)) (f)`,
		MaxSteps: 1_000_000_000,
	})
	if code != KindFuel.HTTPStatus() {
		t.Fatalf("status = %d, want fuel exhaustion within the clamp: %s", code, body)
	}
	var resp ErrorResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Error.Message, "5000") {
		t.Errorf("expected the clamped budget in the message, got %q", resp.Error.Message)
	}
}

func TestErrorTaxonomyOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name     string
		path     string
		body     any
		wantCode int
		wantKind Kind
	}{
		{"parse error", "/v1/compile", CompileRequest{Source: "((«"}, 422, KindParse},
		{"runtime error", "/v1/run", RunRequest{Source: "(car 5)"}, 422, KindRuntime},
		{"unbound global", "/v1/run", RunRequest{Source: "(nope 1)"}, 422, KindRuntime},
		{"bad option", "/v1/compile", CompileRequest{Source: "1", Options: &OptionsRequest{Saves: "wat"}}, 400, KindBadRequest},
		{"empty source", "/v1/run", RunRequest{}, 400, KindBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, body := post(t, ts, c.path, c.body)
			if code != c.wantCode {
				t.Fatalf("status = %d, want %d: %s", code, c.wantCode, body)
			}
			var resp ErrorResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if resp.Error.Kind != string(c.wantKind) {
				t.Errorf("kind = %q, want %q", resp.Error.Kind, c.wantKind)
			}
		})
	}
}

// TestVerifyEndpointViolations: a program compiled under an option set
// the verifier rejects must return the findings report with the
// verify-failed status. (No such option set exists in the healthy
// compiler, so this exercises the envelope via a parse check instead —
// the violation path itself is covered by the verifier's own tests.)
func TestVerifyEndpointBadSource(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := post(t, ts, "/v1/verify", CheckRequest{Source: "((("})
	if code != KindParse.HTTPStatus() {
		t.Fatalf("status = %d: %s", code, body)
	}
	var resp ErrorResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error.Kind != string(KindParse) {
		t.Errorf("kind = %q", resp.Error.Kind)
	}
}

// TestOverloadSheds429: with one worker held and the queue full, the
// next request is shed with 429 and the overloaded kind.
func TestOverloadSheds429(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RequestTimeout: 5 * time.Second})

	// Occupy the only worker slot directly.
	svc.sem <- struct{}{}
	svc.admitted.Add(1)
	defer func() {
		<-svc.sem
		svc.admitted.Add(-1)
	}()

	// One request is admitted into the queue (blocks waiting for the
	// worker until we release it below).
	queued := make(chan struct {
		code int
		body []byte
	}, 1)
	go func() {
		data, _ := json.Marshal(RunRequest{Source: "(+ 1 1)"})
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(data))
		if err != nil {
			queued <- struct {
				code int
				body []byte
			}{0, []byte(err.Error())}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		queued <- struct {
			code int
			body []byte
		}{resp.StatusCode, b}
	}()

	// Wait for the queued request to be admitted (admitted == 2).
	deadline := time.Now().Add(2 * time.Second)
	for svc.admitted.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// The pool (1 worker + 1 queued) is full: the next request sheds.
	code, body := post(t, ts, "/v1/compile", CompileRequest{Source: "1"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", code, body)
	}
	var resp ErrorResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error.Kind != string(KindOverload) {
		t.Errorf("kind = %q, want %q", resp.Error.Kind, KindOverload)
	}
	if svc.shed.Value() == 0 {
		t.Error("shed counter not incremented")
	}

	// Release the worker: the queued request must complete normally.
	<-svc.sem
	svc.admitted.Add(-1)
	res := <-queued
	if res.code != http.StatusOK {
		t.Errorf("queued request: status %d: %s", res.code, res.body)
	}
	// Rebalance for the deferred cleanup (the slot we released was the
	// one the defer expects to drain — re-occupy it).
	svc.sem <- struct{}{}
	svc.admitted.Add(1)
}

// TestConcurrentMixedTraffic is the acceptance scenario: concurrent
// compile/run/verify/lint requests against one service, raced by
// `go test -race`, with repeated identical compiles landing in the
// cache.
func TestConcurrentMixedTraffic(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 8, QueueDepth: 256, RequestTimeout: 30 * time.Second})
	sources := []string{
		addOneSrc,
		`(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 10)`,
		`(let loop ([i 0] [acc 0]) (if (= i 100) acc (loop (+ i 1) (+ acc i))))`,
	}
	var wg sync.WaitGroup
	errs := make(chan string, 128)
	for i := 0; i < 96; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := sources[i%len(sources)]
			var code int
			var body []byte
			switch i % 4 {
			case 0:
				code, body = post(t, ts, "/v1/compile", CompileRequest{Source: src})
			case 1:
				code, body = post(t, ts, "/v1/run", RunRequest{Source: src})
			case 2:
				code, body = post(t, ts, "/v1/verify", CheckRequest{Source: src})
			case 3:
				code, body = post(t, ts, "/v1/lint", CheckRequest{Source: src})
			}
			if code != http.StatusOK {
				errs <- fmt.Sprintf("request %d: status %d: %s", i, code, body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	stats := svc.Cache().Stats()
	if stats.Hits == 0 {
		t.Error("expected cache hits under repeated identical traffic")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts, "/v1/compile", CompileRequest{Source: addOneSrc})
	post(t, ts, "/v1/compile", CompileRequest{Source: addOneSrc})
	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`lsrd_requests_total{endpoint="compile",code="200"} 2`,
		"lsrd_cache_hits_total 1",
		"lsrd_cache_misses_total 1",
		`lsrd_compiles_total{saves="lazy"} 1`,
		"lsrd_request_seconds_bucket",
		"# TYPE lsrd_request_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}
}

// TestAcquireTimeout: a request that cannot get a worker before its
// deadline reports the timeout kind.
func TestAcquireTimeout(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4, RequestTimeout: 20 * time.Millisecond}, nil)
	svc.sem <- struct{}{} // occupy the worker
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := svc.acquire(ctx)
	if err == nil || err.Kind != KindTimeout {
		t.Fatalf("want timeout, got %v", err)
	}
}

// TestClassify covers the taxonomy mapping over real pipeline errors.
func TestClassify(t *testing.T) {
	parseErr := func() error {
		_, err := compiler.Compile("(((", compiler.DefaultOptions())
		return err
	}()
	runtimeErr := func() error {
		_, _, err := compiler.Run("(car 5)", compiler.DefaultOptions(), nil)
		return err
	}()
	fuelErr := &vm.FuelError{Budget: 10, PC: 3}
	cases := []struct {
		stage Stage
		err   error
		want  Kind
	}{
		{StageCompile, parseErr, KindParse},
		{StageRun, runtimeErr, KindRuntime},
		{StageRun, fuelErr, KindFuel},
		{StageRun, fmt.Errorf("wrapped: %w", fuelErr), KindFuel},
		{StageCompile, errors.New("mystery"), KindCompile},
		{StageRun, errors.New("mystery"), KindRuntime},
	}
	for _, c := range cases {
		if got := Classify(c.stage, c.err); got != c.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", c.stage, c.err, got, c.want)
		}
	}
}

// TestRunEngineAndCounters exercises the engine and counter-mode
// selectors of /v1/run: both engines must produce identical values and
// identical counters, essential mode must keep the cost-model outputs
// while zeroing the diagnostic ones, and bad selectors are
// bad-request errors.
func TestRunEngineAndCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := `(define (f n acc) (if (zero? n) acc (f (- n 1) (+ acc n)))) (f 100 0)`

	var byEngine []RunResponse
	for _, engine := range []string{"threaded", "switch"} {
		code, body := post(t, ts, "/v1/run", RunRequest{Source: src, Engine: engine})
		if code != http.StatusOK {
			t.Fatalf("run engine=%s: status %d: %s", engine, code, body)
		}
		var resp RunResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if resp.Value != "5050" {
			t.Errorf("engine=%s value = %q, want 5050", engine, resp.Value)
		}
		byEngine = append(byEngine, resp)
	}
	if byEngine[0].Counters != byEngine[1].Counters {
		t.Errorf("engines disagree on counters:\nthreaded: %+v\nswitch:   %+v",
			byEngine[0].Counters, byEngine[1].Counters)
	}

	code, body := post(t, ts, "/v1/run", RunRequest{Source: src, Counters: "essential"})
	if code != http.StatusOK {
		t.Fatalf("run counters=essential: status %d: %s", code, body)
	}
	var ess RunResponse
	if err := json.Unmarshal(body, &ess); err != nil {
		t.Fatalf("decode: %v", err)
	}
	full := byEngine[0].Counters
	if ess.Counters.Instructions != full.Instructions || ess.Counters.Cycles != full.Cycles ||
		ess.Counters.StallCycles != full.StallCycles ||
		ess.Counters.StackReads != full.StackReads || ess.Counters.StackWrites != full.StackWrites {
		t.Errorf("essential cost-model counters diverge: %+v vs %+v", ess.Counters, full)
	}
	if ess.Counters.Activations != 0 || ess.Counters.Calls != 0 {
		t.Errorf("essential mode populated diagnostic counters: %+v", ess.Counters)
	}

	for _, bad := range []RunRequest{
		{Source: src, Engine: "warp"},
		{Source: src, Counters: "most"},
	} {
		code, body := post(t, ts, "/v1/run", bad)
		if code != http.StatusBadRequest {
			t.Errorf("bad selector %+v: status %d: %s", bad, code, body)
		}
	}

	// The runs-by-engine metric counted every successful execution.
	code, body = get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	for _, want := range []string{
		`lsrd_runs_total{engine="threaded"}`,
		`lsrd_runs_total{engine="switch"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}
