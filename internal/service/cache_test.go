package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/compiler"
)

func testKey(b byte) CacheKey {
	var k CacheKey
	k[0] = b
	return k
}

// TestSingleflightCollapse: N identical concurrent compiles must run
// the compile function exactly once; every caller gets the same value.
func TestSingleflightCollapse(t *testing.T) {
	const n = 16
	c := NewCache(8)
	key := testKey(1)
	var compiles atomic.Int64
	release := make(chan struct{})
	want := &compiler.Compiled{}

	results := make(chan *compiler.Compiled, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, _, err := c.GetOrCompile(key, func() (*compiler.Compiled, error) {
				compiles.Add(1)
				<-release // hold the flight open until every caller joined
				return want, nil
			})
			if err != nil {
				t.Errorf("GetOrCompile: %v", err)
			}
			results <- val
		}()
	}

	// Wait until the n-1 late arrivals have joined the in-flight
	// compile, then let it finish.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Deduped < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d callers joined the flight", c.Stats().Deduped)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(results)

	if got := compiles.Load(); got != 1 {
		t.Errorf("compile ran %d times, want 1", got)
	}
	for val := range results {
		if val != want {
			t.Error("caller got a different compilation")
		}
	}
	stats := c.Stats()
	if stats.Deduped != n-1 {
		t.Errorf("deduped = %d, want %d", stats.Deduped, n-1)
	}
	if stats.Misses != n {
		t.Errorf("misses = %d, want %d (joining a flight is still a miss)", stats.Misses, n)
	}

	// Now the entry is cached: the next lookup is a hit.
	if _, hit, _ := c.GetOrCompile(key, func() (*compiler.Compiled, error) {
		t.Error("cached key recompiled")
		return nil, nil
	}); !hit {
		t.Error("expected a cache hit after the flight landed")
	}
}

// TestCacheErrorsNotCached: a failed compile is reported to callers but
// never stored, so the next request retries.
func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(8)
	key := testKey(2)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompile(key, func() (*compiler.Compiled, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	ran := false
	if _, hit, err := c.GetOrCompile(key, func() (*compiler.Compiled, error) {
		ran = true
		return &compiler.Compiled{}, nil
	}); hit || err != nil {
		t.Fatalf("hit=%t err=%v", hit, err)
	}
	if !ran {
		t.Error("second compile did not run after a failed first")
	}
}

// TestCacheLRUEviction: capacity bounds the cache; the least recently
// used entry is evicted first.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	mk := func() (*compiler.Compiled, error) { return &compiler.Compiled{}, nil }
	c.GetOrCompile(testKey(1), mk)
	c.GetOrCompile(testKey(2), mk)
	c.GetOrCompile(testKey(1), mk) // touch 1 → 2 is now LRU
	c.GetOrCompile(testKey(3), mk) // evicts 2
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
	if _, hit, _ := c.GetOrCompile(testKey(1), mk); !hit {
		t.Error("touched key 1 should have survived")
	}
	recompiled := false
	if _, hit, _ := c.GetOrCompile(testKey(2), func() (*compiler.Compiled, error) {
		recompiled = true
		return &compiler.Compiled{}, nil
	}); hit || !recompiled {
		t.Error("evicted key 2 should have recompiled")
	}
}

// TestKeyForSensitivity: the content address must change with the
// source and with every code-affecting option, and must be stable for
// identical inputs.
func TestKeyForSensitivity(t *testing.T) {
	base := compiler.DefaultOptions()
	if KeyFor("(+ 1 2)", base) != KeyFor("(+ 1 2)", base) {
		t.Error("identical inputs hashed differently")
	}
	if KeyFor("(+ 1 2)", base) == KeyFor("(+ 1 3)", base) {
		t.Error("different sources collided")
	}
	mutations := []func(*compiler.Options){
		func(o *compiler.Options) { o.Saves = 2 },
		func(o *compiler.Options) { o.Restores = 1 },
		func(o *compiler.Options) { o.Shuffle = 1 },
		func(o *compiler.Options) { o.Config.ArgRegs = 2 },
		func(o *compiler.Options) { o.Config.UserRegs = 1 },
		func(o *compiler.Options) { o.Config.CalleeSaveRegs = 4 },
		func(o *compiler.Options) { o.CalleeSave = true },
		func(o *compiler.Options) { o.PredictBranches = true },
		func(o *compiler.Options) { o.Verify = true },
		func(o *compiler.Options) { o.Lint = true },
		func(o *compiler.Options) { o.NoPrelude = true },
	}
	seen := map[CacheKey]int{KeyFor("(+ 1 2)", base): -1}
	for i, mutate := range mutations {
		o := compiler.DefaultOptions()
		mutate(&o)
		k := KeyFor("(+ 1 2)", o)
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %d collided with %d", i, prev)
		}
		seen[k] = i
	}
}
