package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
)

// BatchRequest is the body of POST /v1/batch: many compilation units
// in one request, admitted into the worker pool once (one admission
// covers the whole batch, amortizing queue and dispatch overhead for
// fleet clients that compile translation units in bulk).
type BatchRequest struct {
	Items []CompileRequest `json:"items"`
}

// BatchItemResult is one unit's outcome. Status is the HTTP status the
// equivalent /v1/compile call would have returned, and Body is its
// exact response body (a CompileResponse on success, an ErrorResponse
// on failure) — byte-identical content, so batch clients and
// single-shot clients share one decoder and one error taxonomy.
type BatchItemResult struct {
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body"`
}

// BatchResponse is the body of a successful POST /v1/batch. The batch
// itself succeeds (200) even when individual items fail; per-item
// failures are taxonomy-classified in their results.
type BatchResponse struct {
	Items []BatchItemResult `json:"items"`
}

// handleBatch compiles every unit in the request under one pool
// admission. Items are processed sequentially on the admitted worker —
// the parallelism knob is the pool, not the batch — and each item's
// result is exactly what /v1/compile would have produced for it.
func (s *Service) handleBatch(ctx context.Context, body []byte) (any, int, *Error) {
	var req BatchRequest
	if err := decodeRequest(body, &req); err != nil {
		return nil, 0, err
	}
	if len(req.Items) == 0 {
		return nil, 0, errOf(KindBadRequest, "batch has no items")
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		return nil, 0, errOf(KindBadRequest, "batch has %d items, limit %d", len(req.Items), s.cfg.MaxBatchItems)
	}
	resp := BatchResponse{Items: make([]BatchItemResult, len(req.Items))}
	for i := range req.Items {
		item := s.compileOne(&req.Items[i])
		resp.Items[i] = item
		if item.Status == http.StatusOK {
			s.batchItems.With("ok").Inc()
		}
	}
	return resp, http.StatusOK, nil
}

// compileOne runs one batch item through the same logic as
// handleCompile and renders its body with the same encoder, so the
// bytes match a standalone call's response exactly.
func (s *Service) compileOne(req *CompileRequest) BatchItemResult {
	resp, herr := s.compileUnit(req)
	if herr != nil {
		s.batchItems.With(string(herr.Kind)).Inc()
		return BatchItemResult{
			Status: herr.Kind.HTTPStatus(),
			Body: marshalBody(ErrorResponse{Error: ErrorBody{
				Kind:     string(herr.Kind),
				Message:  herr.Message,
				Findings: herr.Findings,
			}}),
		}
	}
	return BatchItemResult{Status: http.StatusOK, Body: marshalBody(resp)}
}

// compileUnit is the shared core of /v1/compile and one /v1/batch
// item: options lowering, the two-tier cached compile, and the
// response assembly.
func (s *Service) compileUnit(req *CompileRequest) (*CompileResponse, *Error) {
	if err := requireSource(req.Source); err != nil {
		return nil, err
	}
	opts, oerr := req.Options.toCompiler()
	if oerr != nil {
		return nil, errOf(KindBadRequest, "%v", oerr)
	}
	opts.Verify = req.Verify
	c, key, hit, err := s.compileCached(req.Source, opts)
	if err != nil {
		return nil, err
	}
	resp := &CompileResponse{Key: key.String(), Cached: hit, Stats: c.Stats}
	if req.Dump {
		resp.Disassembly = c.Program.Disassemble()
	}
	return resp, nil
}

// marshalBody renders v exactly as writeJSON serializes a response
// body (same field order, compact form; clients re-indent as they
// like). It cannot fail for the response types it is given.
func marshalBody(v any) json.RawMessage {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(v); err != nil {
		return json.RawMessage(`{}`)
	}
	return json.RawMessage(bytes.TrimRight(buf.Bytes(), "\n"))
}
