// Package metrics is a small, dependency-free metrics registry for the
// lsrd service: counters, gauges and histograms with optional labels,
// rendered in the Prometheus text exposition format at /metrics. It
// implements just what the daemon needs — monotonic counters for
// request/cache/fuel accounting, cumulative histograms for latency —
// with atomic hot paths so instrumented request handling never takes a
// registry lock.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a set of named metric families and renders them.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

type familyKind int

const (
	kindCounter familyKind = iota
	kindGauge
	kindHistogram
)

// family is one metric name with its help text and all label variants.
type family struct {
	name    string
	help    string
	kind    familyKind
	labels  []string // label names, fixed per family
	buckets []float64

	mu       sync.Mutex
	children map[string]metric // keyed by rendered label string
	order    []string
}

type metric interface {
	write(w io.Writer, name, labelStr string)
}

func (r *Registry) family(name, help string, kind familyKind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		return f
	}
	f := &family{
		name: name, help: help, kind: kind, labels: labels,
		buckets: buckets, children: map[string]metric{},
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// child fetches or creates the labeled variant of a family.
func (f *family) child(values []string, mk func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelString(f.labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	m := mk()
	f.children[key] = m
	f.order = append(f.order, key)
	return m
}

// labelString renders {a="x",b="y"} (empty for no labels).
func labelString(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, values[i])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name, labelStr string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labelStr, c.v.Load())
}

// Gauge is a settable int64.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer, name, labelStr string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labelStr, g.v.Load())
}

// Histogram is a cumulative histogram with fixed upper bounds.
type Histogram struct {
	buckets []float64 // upper bounds, ascending
	counts  []atomic.Int64
	sumBits atomic.Uint64 // float64 bits
	count   atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count is the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

func (h *Histogram) write(w io.Writer, name, labelStr string) {
	// Prometheus cumulative buckets: le="ub" carries everything <= ub.
	cum := int64(0)
	for i, ub := range h.buckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(labelStr, fmt.Sprintf("le=%q", formatBound(ub))), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(labelStr, `le="+Inf"`), h.count.Load())
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labelStr, math.Float64frombits(h.sumBits.Load()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelStr, h.count.Load())
}

func formatBound(ub float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", ub), "0"), ".")
}

// mergeLabel splices an extra label pair into a rendered label string.
func mergeLabel(labelStr, pair string) string {
	if labelStr == "" {
		return "{" + pair + "}"
	}
	return labelStr[:len(labelStr)-1] + "," + pair + "}"
}

// NewCounter registers (or fetches) an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.family(name, help, kindCounter, nil, nil)
	return f.child(nil, func() metric { return &Counter{} }).(*Counter)
}

// NewGauge registers (or fetches) an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge, nil, nil)
	return f.child(nil, func() metric { return &Gauge{} }).(*Gauge)
}

// NewHistogram registers (or fetches) an unlabeled histogram with the
// given ascending upper bounds.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, kindHistogram, nil, buckets)
	return f.child(nil, func() metric { return newHistogram(buckets) }).(*Histogram)
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{buckets: buckets, counts: make([]atomic.Int64, len(buckets))}
}

// funcMetric renders a callback's value at scrape time (used to expose
// counters owned by another subsystem, e.g. the compilation cache).
type funcMetric struct{ fn func() int64 }

func (m *funcMetric) write(w io.Writer, name, labelStr string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labelStr, m.fn())
}

// NewCounterFunc registers a counter whose value is read from fn at
// scrape time. fn must be monotonic and safe for concurrent use.
func (r *Registry) NewCounterFunc(name, help string, fn func() int64) {
	f := r.family(name, help, kindCounter, nil, nil)
	f.child(nil, func() metric { return &funcMetric{fn: fn} })
}

// NewGaugeFunc registers a gauge whose value is read from fn at scrape
// time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() int64) {
	f := r.family(name, help, kindGauge, nil, nil)
	f.child(nil, func() metric { return &funcMetric{fn: fn} })
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, labels, nil)}
}

// With fetches the counter for the given label values (created on first
// use).
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() metric { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, labels, nil)}
}

// With fetches the gauge for the given label values (created on first
// use).
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() metric { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// NewHistogramVec registers a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, labels, buckets)}
}

// With fetches the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() metric { return newHistogram(v.f.buckets) }).(*Histogram)
}

// WriteText renders every registered metric in the Prometheus text
// exposition format, families in registration order, label variants in
// first-use order.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		typ := "counter"
		switch f.kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ)
		f.mu.Lock()
		order := append([]string(nil), f.order...)
		children := make(map[string]metric, len(f.children))
		for k, m := range f.children {
			children[k] = m
		}
		f.mu.Unlock()
		sorted := append([]string(nil), order...)
		sort.Strings(sorted)
		for _, key := range sorted {
			children[key].write(w, f.name, key)
		}
	}
}

// DefBuckets are latency buckets in seconds, tuned for an in-process
// compile service (sub-millisecond cache hits to multi-second runs).
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}
