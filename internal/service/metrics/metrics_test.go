package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGaugeText(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "A test counter.")
	c.Inc()
	c.Add(2)
	g := r.NewGauge("test_depth", "A test gauge.")
	g.Set(7)
	g.Add(-2)
	v := r.NewCounterVec("test_labeled_total", "Labeled.", "kind")
	v.With("a").Inc()
	v.With("b").Add(3)

	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP test_total A test counter.",
		"# TYPE test_total counter",
		"test_total 3",
		"# TYPE test_depth gauge",
		"test_depth 5",
		`test_labeled_total{kind="a"} 1`,
		`test_labeled_total{kind="b"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramText(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50) // above every bound: only +Inf and count

	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="10"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "lat_seconds_sum 55.55") {
		t.Errorf("sum line wrong:\n%s", out)
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := int64(41)
	r.NewCounterFunc("fn_total", "From a callback.", func() int64 { return n })
	n++
	var b strings.Builder
	r.WriteText(&b)
	if !strings.Contains(b.String(), "fn_total 42") {
		t.Errorf("callback not read at scrape time:\n%s", b.String())
	}
}

// TestConcurrentUse hammers one registry from many goroutines; run
// under -race this proves the hot paths are lock-free-safe.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	h := r.NewHistogram("h_seconds", "", DefBuckets)
	v := r.NewCounterVec("v_total", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
				v.With([]string{"a", "b", "c"}[i%3]).Inc()
			}
		}(i)
	}
	// Scrape concurrently with the writers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b strings.Builder
			r.WriteText(&b)
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}
