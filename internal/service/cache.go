package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/compiler"
	"repro/internal/prelude"
)

// CacheKey is the content address of one compilation: the SHA-256 of
// the source text, every code-affecting compiler option, and the
// prelude version. Two requests with the same key are guaranteed the
// same compiled Program.
type CacheKey [sha256.Size]byte

// String renders the key as lowercase hex (the form the API exposes).
func (k CacheKey) String() string { return hex.EncodeToString(k[:]) }

// KeyFor derives the content address of (source, opts). Every field of
// the options that can change the emitted code — the register
// configuration, the save/restore/shuffle selections, the callee-save
// and branch-prediction modes, the prelude switch — is folded into the
// hash, as are the post-pass switches (Verify, Lint) since they change
// what a cached Compiled carries. ComputeShuffleStats only adds
// measurements, but it changes the Stats the entry returns, so it is
// included too.
func KeyFor(source string, opts compiler.Options) CacheKey {
	h := sha256.New()
	fmt.Fprintf(h, "prelude=%s\n", prelude.Version())
	fmt.Fprintf(h, "config=%d,%d,%d,%d\n",
		opts.Config.ArgRegs, opts.Config.UserRegs, opts.Config.ScratchRegs, opts.Config.CalleeSaveRegs)
	fmt.Fprintf(h, "alloc=%d,%d,%d,%t,%t,%t\n",
		opts.Saves, opts.Restores, opts.Shuffle, opts.CalleeSave, opts.PredictBranches, opts.ComputeShuffleStats)
	fmt.Fprintf(h, "post=%t,%t,%t\n", opts.Verify, opts.Lint, opts.NoPrelude)
	fmt.Fprintf(h, "source=%d:", len(source))
	h.Write([]byte(source))
	var k CacheKey
	h.Sum(k[:0])
	return k
}

// CacheStats are the cache's monotonic counters.
type CacheStats struct {
	// Hits, Misses count lookups; a miss triggers a compile.
	Hits, Misses int64
	// Evictions counts entries dropped by LRU pressure.
	Evictions int64
	// Deduped counts requests that joined an in-flight identical
	// compile instead of starting their own (singleflight collapses).
	Deduped int64
}

// Cache is a content-addressed compilation cache: an LRU over compiled
// programs keyed by CacheKey, with singleflight deduplication so N
// concurrent identical requests trigger exactly one compile. Safe for
// concurrent use. Cached *compiler.Compiled values are shared across
// requests, which is sound because vm.Program is immutable after
// compilation (see the internal/vm concurrency contract) and the Stats
// and Lint report are never written after Compile returns.
type Cache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recent; values are *cacheEntry
	byKey    map[CacheKey]*list.Element
	inflight map[CacheKey]*flight
	stats    CacheStats
}

type cacheEntry struct {
	key CacheKey
	val *compiler.Compiled
}

// flight is one in-progress compile that late arrivals join.
type flight struct {
	done chan struct{}
	val  *compiler.Compiled
	err  error
}

// NewCache creates a cache holding up to capacity compiled programs
// (capacity < 1 is treated as 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		byKey:    map[CacheKey]*list.Element{},
		inflight: map[CacheKey]*flight{},
	}
}

// GetOrCompile returns the cached compilation for key, or runs compile
// exactly once per key — concurrent callers with the same key block on
// the first caller's result. hit reports whether the value came from
// the cache (joining an in-flight compile counts as a miss for every
// joiner; the dedup counter records the collapse). Errors are returned
// to every waiter and never cached, so a transient failure does not
// poison the key.
func (c *Cache) GetOrCompile(key CacheKey, compile func() (*compiler.Compiled, error)) (val *compiler.Compiled, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		val = el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, true, nil
	}
	c.stats.Misses++
	if f, ok := c.inflight[key]; ok {
		c.stats.Deduped++
		c.mu.Unlock()
		<-f.done
		return f.val, false, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.val, f.err = compile()
	close(f.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		if _, exists := c.byKey[key]; !exists {
			c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, val: f.val})
			for c.lru.Len() > c.capacity {
				oldest := c.lru.Back()
				c.lru.Remove(oldest)
				delete(c.byKey, oldest.Value.(*cacheEntry).key)
				c.stats.Evictions++
			}
		}
	}
	c.mu.Unlock()
	return f.val, false, f.err
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len is the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
