package service

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/findings"
	"repro/internal/vm"
)

// OptionsRequest selects the allocator configuration for one request.
// Zero values mean the paper's defaults (lazy saves, eager restores,
// greedy shuffling, six argument and six user registers).
type OptionsRequest struct {
	// Saves is "lazy", "early", "late" or "simple".
	Saves string `json:"saves,omitempty"`
	// Restores is "eager" or "lazy".
	Restores string `json:"restores,omitempty"`
	// Shuffle is "greedy", "optimal" or "naive".
	Shuffle string `json:"shuffle,omitempty"`
	// ArgRegs / UserRegs override the register counts (nil = default 6).
	ArgRegs  *int `json:"arg_regs,omitempty"`
	UserRegs *int `json:"user_regs,omitempty"`
	// CalleeSave > 0 enables the §2.4 callee-save mode with that many
	// callee-save registers.
	CalleeSave int `json:"callee_save,omitempty"`
	// Predict enables the §6 static branch prediction extension.
	Predict bool `json:"predict,omitempty"`
	// NoPrelude omits the Scheme runtime library.
	NoPrelude bool `json:"no_prelude,omitempty"`
}

// toCompiler lowers the request options to the internal form.
func (o *OptionsRequest) toCompiler() (compiler.Options, error) {
	opts := compiler.DefaultOptions()
	if o == nil {
		return opts, nil
	}
	if o.Saves != "" {
		switch o.Saves {
		case "lazy":
			opts.Saves = codegen.SaveLazy
		case "early":
			opts.Saves = codegen.SaveEarly
		case "late":
			opts.Saves = codegen.SaveLate
		case "simple":
			opts.Saves = codegen.SaveSimple
		default:
			return opts, fmt.Errorf("unknown save strategy %q (want lazy, early, late or simple)", o.Saves)
		}
	}
	if o.Restores != "" {
		switch o.Restores {
		case "eager":
			opts.Restores = codegen.RestoreEager
		case "lazy":
			opts.Restores = codegen.RestoreLazy
		default:
			return opts, fmt.Errorf("unknown restore policy %q (want eager or lazy)", o.Restores)
		}
	}
	if o.Shuffle != "" {
		switch o.Shuffle {
		case "greedy":
			opts.Shuffle = codegen.ShuffleGreedy
		case "optimal":
			opts.Shuffle = codegen.ShuffleOptimal
		case "naive":
			opts.Shuffle = codegen.ShuffleNaive
		default:
			return opts, fmt.Errorf("unknown shuffle method %q (want greedy, optimal or naive)", o.Shuffle)
		}
	}
	if o.ArgRegs != nil {
		opts.Config.ArgRegs = *o.ArgRegs
	}
	if o.UserRegs != nil {
		opts.Config.UserRegs = *o.UserRegs
	}
	if o.CalleeSave > 0 {
		opts.Config.CalleeSaveRegs = o.CalleeSave
		opts.CalleeSave = true
	}
	opts.PredictBranches = o.Predict
	opts.NoPrelude = o.NoPrelude
	if err := opts.Config.Validate(); err != nil {
		return opts, err
	}
	return opts, nil
}

// RequestKey derives the content-addressed cache key for (source,
// options) exactly as the serving path does. The gate (internal/gate)
// uses it to consistent-hash-shard requests across replicas by cache
// key, so every replica's two-tier cache sees a stable partition of
// the key space.
func RequestKey(source string, opts *OptionsRequest) (CacheKey, error) {
	o, err := opts.toCompiler()
	if err != nil {
		return CacheKey{}, err
	}
	return KeyFor(source, o), nil
}

// CompileRequest is the body of POST /v1/compile.
type CompileRequest struct {
	Source  string          `json:"source"`
	Options *OptionsRequest `json:"options,omitempty"`
	// Verify additionally runs the translation validator; violations
	// fail the request with kind "verify-failed".
	Verify bool `json:"verify,omitempty"`
	// Dump includes the disassembly in the response.
	Dump bool `json:"dump,omitempty"`
}

// CompileResponse is the body of a successful POST /v1/compile.
type CompileResponse struct {
	// Key is the compilation's content address (hex SHA-256).
	Key string `json:"key"`
	// Cached reports whether the compilation was served from the cache.
	Cached bool `json:"cached"`
	// Stats are the allocator's static measurements.
	Stats codegen.Stats `json:"stats"`
	// Disassembly is the compiled code (only with Dump).
	Disassembly string `json:"disassembly,omitempty"`
}

// RunRequest is the body of POST /v1/run.
type RunRequest struct {
	Source  string          `json:"source"`
	Options *OptionsRequest `json:"options,omitempty"`
	// MaxSteps is the execution fuel for this run (0 = the server's
	// default; values above the server's maximum are clamped).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// Validate poisons caller-save registers at call boundaries.
	Validate bool `json:"validate,omitempty"`
	// Engine selects the execution engine: "threaded" (the pre-decoded
	// engine, the default) or "switch" (the reference decode-every-step
	// loop). Both produce identical values and counters; "switch"
	// exists for differential debugging against the reference
	// semantics.
	Engine string `json:"engine,omitempty"`
	// Counters selects the counter fidelity: "full" (the default;
	// every field of the response's counters is populated) or
	// "essential" (the counters-off fast path: instructions, cycles,
	// stalls and stack references are still exact, but calls,
	// tail_calls and activations read zero).
	Counters string `json:"counters,omitempty"`
}

// engineKind lowers RunRequest.Engine.
func engineKind(s string) (vm.EngineKind, error) {
	switch s {
	case "", "threaded":
		return vm.EngineThreaded, nil
	case "switch":
		return vm.EngineSwitch, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want threaded or switch)", s)
}

// counterMode lowers RunRequest.Counters.
func counterMode(s string) (vm.CounterMode, error) {
	switch s {
	case "", "full":
		return vm.CountFull, nil
	case "essential":
		return vm.CountEssential, nil
	}
	return 0, fmt.Errorf("unknown counter mode %q (want full or essential)", s)
}

// RunResponse is the body of a successful POST /v1/run.
type RunResponse struct {
	Key    string `json:"key"`
	Cached bool   `json:"cached"`
	// Value is the program result in Scheme write notation.
	Value string `json:"value"`
	// Output is the program's display/write output (truncated at the
	// server's output limit).
	Output string `json:"output"`
	// Fuel is the step budget the run executed under.
	Fuel int64 `json:"fuel"`
	// Counters summarizes the machine's measurements.
	Counters RunCounters `json:"counters"`
}

// RunCounters is the dynamic-measurement summary returned by /v1/run.
type RunCounters struct {
	Instructions int64 `json:"instructions"`
	Cycles       int64 `json:"cycles"`
	StallCycles  int64 `json:"stall_cycles"`
	StackReads   int64 `json:"stack_reads"`
	StackWrites  int64 `json:"stack_writes"`
	Calls        int64 `json:"calls"`
	TailCalls    int64 `json:"tail_calls"`
	Activations  int64 `json:"activations"`
}

func summarizeCounters(c *vm.Counters) RunCounters {
	return RunCounters{
		Instructions: c.Instructions,
		Cycles:       c.Cycles,
		StallCycles:  c.StallCycles,
		StackReads:   c.StackReads,
		StackWrites:  c.StackWrites,
		Calls:        c.Calls,
		TailCalls:    c.TailCalls,
		Activations:  c.Activations,
	}
}

// CheckRequest is the body of POST /v1/verify and POST /v1/lint.
type CheckRequest struct {
	Source  string          `json:"source"`
	Options *OptionsRequest `json:"options,omitempty"`
}

// Check responses are a findings.Report — byte-for-byte the structure
// `lsrc -verify -json` / `lsrc -lint -json` print.

// ErrorBody is the error detail of a failed request.
type ErrorBody struct {
	// Kind is the taxonomy kind (see Kind).
	Kind string `json:"kind"`
	// Message is the human-readable error.
	Message string `json:"message"`
	// Findings carries structured findings when the failure is a
	// verify-failed (the violated invariants).
	Findings []findings.Finding `json:"findings,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}
