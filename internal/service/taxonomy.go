package service

import (
	"errors"
	"net/http"
	"strings"

	"repro/internal/prim"
	"repro/internal/sexp"
	"repro/internal/verify"
	"repro/internal/vm"
)

// Kind is the service's error taxonomy. Every failure the pipeline can
// produce maps to exactly one kind, and each kind maps to one HTTP
// status (for lsrd) and one process exit code (for lsrc), so scripts
// and the daemon report failures identically.
type Kind string

// The error kinds.
const (
	// KindBadRequest is a malformed API request (invalid JSON, unknown
	// option value, empty source).
	KindBadRequest Kind = "bad-request"
	// KindParse is a reader or syntax error in the submitted source.
	KindParse Kind = "parse-error"
	// KindCompile is a failure in the compilation pipeline after parsing
	// (expansion, conversion, code generation).
	KindCompile Kind = "compile-error"
	// KindVerify is a translation-validation failure: the emitted code
	// broke a save/restore/shuffle invariant.
	KindVerify Kind = "verify-failed"
	// KindWaste is the lint gate: statically detected allocation waste
	// the paper's algorithms promise never to emit.
	KindWaste Kind = "lint-waste"
	// KindRuntime is a trap during execution (type error, unbound
	// global, arity mismatch, scheme error).
	KindRuntime Kind = "runtime-error"
	// KindFuel is a program that exhausted its execution fuel.
	KindFuel Kind = "fuel-exhausted"
	// KindOverload is load shedding: the worker pool and its queue are
	// full.
	KindOverload Kind = "overloaded"
	// KindQuota is per-tenant load shedding: the tenant named by the
	// request's tenant header is at its admission quota, even though
	// the shared pool may have room.
	KindQuota Kind = "quota-exceeded"
	// KindDraining is a request that arrived after the daemon began a
	// graceful drain (SIGTERM): it admits nothing new while finishing
	// in-flight work.
	KindDraining Kind = "draining"
	// KindTimeout is a request that exceeded its deadline while queued.
	KindTimeout Kind = "timeout"
	// KindInternal is everything else.
	KindInternal Kind = "internal"
)

// HTTPStatus maps a kind to the status code lsrd responds with.
func (k Kind) HTTPStatus() int {
	switch k {
	case KindBadRequest:
		return http.StatusBadRequest // 400
	case KindParse, KindCompile, KindVerify, KindWaste, KindRuntime, KindFuel:
		return http.StatusUnprocessableEntity // 422
	case KindOverload, KindQuota:
		return http.StatusTooManyRequests // 429
	case KindDraining:
		return http.StatusServiceUnavailable // 503
	case KindTimeout:
		return http.StatusGatewayTimeout // 504
	default:
		return http.StatusInternalServerError // 500
	}
}

// RetryAfterSeconds is the backoff contract for shed responses: every
// 429 and 503 the daemon produces carries a Retry-After header with
// this value, and clients are expected to back off at least that long
// (with jitter) before retrying. Overload and quota shedding clear in
// roughly a queue-drain time, so the hint is short; a draining process
// never recovers, so the hint is long enough for an LB health check to
// route the client elsewhere first. Returns 0 for kinds that must not
// be blindly retried.
func (k Kind) RetryAfterSeconds() int {
	switch k {
	case KindOverload, KindQuota:
		return 1
	case KindDraining:
		return 5
	default:
		return 0
	}
}

// ExitCode maps a kind to the process exit code lsrc terminates with.
// 0 is success and 2 is flag-usage (the Go flag package's convention);
// the taxonomy starts at 3.
func (k Kind) ExitCode() int {
	switch k {
	case KindBadRequest:
		return 2
	case KindParse:
		return 3
	case KindCompile, KindVerify:
		return 4
	case KindRuntime:
		return 5
	case KindFuel:
		return 6
	case KindWaste:
		return 7
	default:
		return 1
	}
}

// Stage tells Classify which pipeline stage produced an error, so
// untyped errors default sensibly.
type Stage int

// Stages.
const (
	// StageCompile covers parse through code generation.
	StageCompile Stage = iota
	// StageRun covers execution.
	StageRun
)

// Classify assigns an error to its taxonomy kind. Typed errors (syntax,
// verify, fuel, runtime traps, scheme errors) classify exactly; untyped
// errors fall back to the stage default (compile-error or
// runtime-error). Reader errors carry the "sexp:" prefix and expansion
// errors the "ast:" prefix, both of which classify as parse errors.
func Classify(stage Stage, err error) Kind {
	if err == nil {
		return ""
	}
	if errors.Is(err, vm.ErrFuelExhausted) {
		return KindFuel
	}
	var synErr *sexp.SyntaxError
	if errors.As(err, &synErr) {
		return KindParse
	}
	var verr *verify.Error
	if errors.As(err, &verr) {
		return KindVerify
	}
	var rerr *vm.RuntimeError
	if errors.As(err, &rerr) {
		return KindRuntime
	}
	var serr *prim.SchemeError
	if errors.As(err, &serr) {
		return KindRuntime
	}
	msg := err.Error()
	if strings.HasPrefix(msg, "sexp:") || strings.HasPrefix(msg, "ast:") {
		return KindParse
	}
	if stage == StageRun {
		return KindRuntime
	}
	return KindCompile
}
