package service

import (
	"context"
	"sync"
)

// tenantTable tracks per-tenant admitted-request counts for the
// admission quota. Tenants are identified by the configured header
// value; the empty tenant (no header) is exempt — it shares only the
// global pool. The table grows one small entry per distinct tenant
// string and is never pruned; tenant identities are expected to be a
// bounded operator-controlled set, not attacker-supplied cardinality
// (the same assumption the per-tenant metric labels make).
type tenantTable struct {
	mu sync.Mutex
	n  map[string]int
}

func newTenantTable() *tenantTable {
	return &tenantTable{n: map[string]int{}}
}

// acquire admits one request for tenant under the limit; ok is false
// when the tenant is at quota.
func (t *tenantTable) acquire(tenant string, limit int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n[tenant] >= limit {
		return false
	}
	t.n[tenant]++
	return true
}

func (t *tenantTable) release(tenant string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n[tenant] > 0 {
		t.n[tenant]--
	}
}

// tenantAcquire applies the per-tenant admission quota. The returned
// release must be called exactly once (it is a no-op when no quota was
// taken).
func (s *Service) tenantAcquire(tenant string) (func(), *Error) {
	if tenant == "" || s.cfg.TenantInflight <= 0 {
		return func() {}, nil
	}
	if !s.tenants.acquire(tenant, s.cfg.TenantInflight) {
		return nil, errOf(KindQuota, "tenant %q is at its admission quota (%d in flight)",
			tenant, s.cfg.TenantInflight)
	}
	return func() { s.tenants.release(tenant) }, nil
}

// tenantKey carries the request's tenant through handler contexts.
type tenantKey struct{}

func withTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

func tenantFrom(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}
