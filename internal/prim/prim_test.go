package prim

import (
	"strings"
	"testing"

	"repro/internal/sexp"
)

func call(t *testing.T, name string, args ...Value) Value {
	t.Helper()
	d := Lookup(sexp.Symbol(name))
	if d == nil {
		t.Fatalf("no primitive %s", name)
	}
	if err := CheckArity(d, len(args)); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	v, err := d.Fn(&Ctx{}, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func callErr(name string, args ...Value) error {
	d := Lookup(sexp.Symbol(name))
	if d == nil {
		return Errorf("no primitive %s", name)
	}
	if err := CheckArity(d, len(args)); err != nil {
		return err
	}
	_, err := d.Fn(&Ctx{}, args)
	return err
}

func TestArithmetic(t *testing.T) {
	if got := call(t, "+", sexp.Fixnum(1), sexp.Fixnum(2)); got != sexp.Fixnum(3) {
		t.Errorf("+ = %v", got)
	}
	if got := call(t, "+", sexp.Fixnum(1), sexp.Flonum(0.5)); got != sexp.Flonum(1.5) {
		t.Errorf("mixed + = %v", got)
	}
	if got := call(t, "-", sexp.Fixnum(5)); got != sexp.Fixnum(-5) {
		t.Errorf("unary - = %v", got)
	}
	if got := call(t, "/", sexp.Fixnum(6), sexp.Fixnum(3)); got != sexp.Fixnum(2) {
		t.Errorf("exact / = %v", got)
	}
	if got := call(t, "/", sexp.Fixnum(1), sexp.Fixnum(2)); got != sexp.Flonum(0.5) {
		t.Errorf("inexact / = %v", got)
	}
	if err := callErr("/", sexp.Fixnum(1), sexp.Fixnum(0)); err == nil {
		t.Error("division by zero should error")
	}
	if got := call(t, "modulo", sexp.Fixnum(-7), sexp.Fixnum(3)); got != sexp.Fixnum(2) {
		t.Errorf("modulo = %v", got)
	}
	if got := call(t, "expt", sexp.Fixnum(3), sexp.Fixnum(4)); got != sexp.Fixnum(81) {
		t.Errorf("expt = %v", got)
	}
	if got := call(t, "min", sexp.Fixnum(3), sexp.Fixnum(1), sexp.Fixnum(2)); got != sexp.Fixnum(1) {
		t.Errorf("min = %v", got)
	}
}

func TestComparisons(t *testing.T) {
	if got := call(t, "<", sexp.Fixnum(1), sexp.Fixnum(2), sexp.Fixnum(3)); got != sexp.Boolean(true) {
		t.Errorf("< chain = %v", got)
	}
	if got := call(t, "=", sexp.Fixnum(2), sexp.Flonum(2)); got != sexp.Boolean(true) {
		t.Errorf("= mixed = %v", got)
	}
	// Large fixnums compare exactly (no float rounding).
	big := sexp.Fixnum(1 << 62)
	if got := call(t, "<", big, big+1); got != sexp.Boolean(true) {
		t.Errorf("big fixnum < = %v", got)
	}
}

func TestPairsAndOpaque(t *testing.T) {
	p := call(t, "cons", sexp.Fixnum(1), sexp.Fixnum(2))
	if got := call(t, "car", p); got != sexp.Fixnum(1) {
		t.Errorf("car = %v", got)
	}
	// Boxes survive storage in pairs.
	b := &Box{V: sexp.Fixnum(7)}
	p2 := call(t, "cons", b, sexp.Nil)
	got := call(t, "car", p2)
	if got != Value(b) {
		t.Errorf("car of boxed pair = %#v", got)
	}
	call(t, "set-car!", p2, sexp.Fixnum(9))
	if got := call(t, "car", p2); got != sexp.Fixnum(9) {
		t.Errorf("after set-car! = %v", got)
	}
}

func TestCxr(t *testing.T) {
	// (cadr '(1 2 3)) = 2
	lst := call(t, "list", sexp.Fixnum(1), sexp.Fixnum(2), sexp.Fixnum(3))
	if got := call(t, "cadr", lst); got != sexp.Fixnum(2) {
		t.Errorf("cadr = %v", got)
	}
	if got := call(t, "caddr", lst); got != sexp.Fixnum(3) {
		t.Errorf("caddr = %v", got)
	}
	if err := callErr("caar", lst); err == nil {
		t.Error("caar of flat list should error")
	}
}

func TestVectors(t *testing.T) {
	v := call(t, "make-vector", sexp.Fixnum(3), sexp.Symbol("z"))
	if got := call(t, "vector-length", v); got != sexp.Fixnum(3) {
		t.Errorf("vector-length = %v", got)
	}
	call(t, "vector-set!", v, sexp.Fixnum(1), sexp.Fixnum(42))
	if got := call(t, "vector-ref", v, sexp.Fixnum(1)); got != sexp.Fixnum(42) {
		t.Errorf("vector-ref = %v", got)
	}
	if err := callErr("vector-ref", v, sexp.Fixnum(3)); err == nil {
		t.Error("out-of-range vector-ref should error")
	}
	lst := call(t, "vector->list", v)
	v2 := call(t, "list->vector", lst)
	if got := call(t, "vector-ref", v2, sexp.Fixnum(1)); got != sexp.Fixnum(42) {
		t.Errorf("round trip vector-ref = %v", got)
	}
}

func TestStrings(t *testing.T) {
	if got := call(t, "string-append", sexp.Str("foo"), sexp.Str("bar")); got != sexp.Str("foobar") {
		t.Errorf("string-append = %v", got)
	}
	if got := call(t, "substring", sexp.Str("hello"), sexp.Fixnum(1), sexp.Fixnum(3)); got != sexp.Str("el") {
		t.Errorf("substring = %v", got)
	}
	if got := call(t, "string->number", sexp.Str("12")); got != sexp.Fixnum(12) {
		t.Errorf("string->number = %v", got)
	}
	if got := call(t, "string->number", sexp.Str("nope")); got != sexp.Boolean(false) {
		t.Errorf("string->number non-number = %v", got)
	}
	if got := call(t, "string->symbol", sexp.Str("abc")); got != sexp.Symbol("abc") {
		t.Errorf("string->symbol = %v", got)
	}
}

func TestEqvEqualSemantics(t *testing.T) {
	if !Eqv(sexp.Fixnum(3), sexp.Fixnum(3)) {
		t.Error("eqv? fixnums")
	}
	p1 := &sexp.Pair{Car: sexp.Fixnum(1), Cdr: sexp.Nil}
	p2 := &sexp.Pair{Car: sexp.Fixnum(1), Cdr: sexp.Nil}
	if Eqv(p1, p2) {
		t.Error("eqv? distinct pairs should be false")
	}
	if !Eqv(p1, p1) {
		t.Error("eqv? same pair")
	}
	if !Equal(p1, p2) {
		t.Error("equal? structurally equal pairs")
	}
}

func TestWriteDisplay(t *testing.T) {
	lst := call(t, "list", sexp.Str("a"), sexp.Char('b'))
	if got := WriteString(lst); got != `("a" #\b)` {
		t.Errorf("WriteString = %q", got)
	}
	if got := DisplayString(lst); got != "(a b)" {
		t.Errorf("DisplayString = %q", got)
	}
	if got := WriteString(&Box{V: sexp.Fixnum(1)}); got != "#&1" {
		t.Errorf("box = %q", got)
	}
}

func TestArityChecking(t *testing.T) {
	if err := callErr("cons", sexp.Fixnum(1)); err == nil {
		t.Error("cons/1 should fail arity check")
	}
	if err := callErr("newline", sexp.Fixnum(1)); err == nil {
		t.Error("newline/1 should fail arity check")
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	if len(all) < 80 {
		t.Errorf("expected at least 80 primitives, got %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Errorf("All() not sorted at %d: %s >= %s", i, all[i-1].Name, all[i].Name)
		}
	}
}

func TestIOOutput(t *testing.T) {
	var b strings.Builder
	ctx := &Ctx{Out: &b}
	d := Lookup("display")
	if _, err := d.Fn(ctx, []Value{sexp.Str("hi")}); err != nil {
		t.Fatal(err)
	}
	n := Lookup("newline")
	if _, err := n.Fn(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if b.String() != "hi\n" {
		t.Errorf("output = %q", b.String())
	}
}

func TestTruthy(t *testing.T) {
	if Truthy(sexp.Boolean(false)) {
		t.Error("#f should be falsy")
	}
	for _, v := range []Value{sexp.Fixnum(0), sexp.Nil, sexp.Str(""), sexp.Boolean(true)} {
		if !Truthy(v) {
			t.Errorf("%v should be truthy", WriteString(v))
		}
	}
}
