package prim

import (
	"strings"
	"testing"

	"repro/internal/sexp"
)

func call(t *testing.T, name string, args ...Value) Value {
	t.Helper()
	d := Lookup(sexp.Symbol(name))
	if d == nil {
		t.Fatalf("no primitive %s", name)
	}
	if err := CheckArity(d, len(args)); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	v, err := d.Fn(&Ctx{}, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func callErr(name string, args ...Value) error {
	d := Lookup(sexp.Symbol(name))
	if d == nil {
		return Errorf("no primitive %s", name)
	}
	if err := CheckArity(d, len(args)); err != nil {
		return err
	}
	_, err := d.Fn(&Ctx{}, args)
	return err
}

func TestArithmetic(t *testing.T) {
	if got := call(t, "+", FixV(1), FixV(2)); got != FixV(3) {
		t.Errorf("+ = %v", got)
	}
	if got := call(t, "+", FixV(1), FloV(0.5)); got != FloV(1.5) {
		t.Errorf("mixed + = %v", got)
	}
	if got := call(t, "-", FixV(5)); got != FixV(-5) {
		t.Errorf("unary - = %v", got)
	}
	if got := call(t, "/", FixV(6), FixV(3)); got != FixV(2) {
		t.Errorf("exact / = %v", got)
	}
	if got := call(t, "/", FixV(1), FixV(2)); got != FloV(0.5) {
		t.Errorf("inexact / = %v", got)
	}
	if err := callErr("/", FixV(1), FixV(0)); err == nil {
		t.Error("division by zero should error")
	}
	if got := call(t, "modulo", FixV(-7), FixV(3)); got != FixV(2) {
		t.Errorf("modulo = %v", got)
	}
	if got := call(t, "expt", FixV(3), FixV(4)); got != FixV(81) {
		t.Errorf("expt = %v", got)
	}
	if got := call(t, "min", FixV(3), FixV(1), FixV(2)); got != FixV(1) {
		t.Errorf("min = %v", got)
	}
}

func TestComparisons(t *testing.T) {
	if got := call(t, "<", FixV(1), FixV(2), FixV(3)); got != BoolV(true) {
		t.Errorf("< chain = %v", got)
	}
	if got := call(t, "=", FixV(2), FloV(2)); got != BoolV(true) {
		t.Errorf("= mixed = %v", got)
	}
	// Large fixnums compare exactly (no float rounding); 1<<62 is out of
	// immediate range, so this also exercises the boxed-fixnum path.
	big, bigger := FixV(1<<62), FixV(1<<62+1)
	if got := call(t, "<", big, bigger); got != BoolV(true) {
		t.Errorf("big fixnum < = %v", got)
	}
}

func TestPairsAndOpaque(t *testing.T) {
	p := call(t, "cons", FixV(1), FixV(2))
	if got := call(t, "car", p); got != FixV(1) {
		t.Errorf("car = %v", got)
	}
	// Boxes survive storage in pairs.
	b := &Box{V: FixV(7)}
	p2 := call(t, "cons", BoxV(b), Empty)
	got := call(t, "car", p2)
	if got != BoxV(b) {
		t.Errorf("car of boxed pair = %#v", got)
	}
	call(t, "set-car!", p2, FixV(9))
	if got := call(t, "car", p2); got != FixV(9) {
		t.Errorf("after set-car! = %v", got)
	}
}

func TestCxr(t *testing.T) {
	// (cadr '(1 2 3)) = 2
	lst := call(t, "list", FixV(1), FixV(2), FixV(3))
	if got := call(t, "cadr", lst); got != FixV(2) {
		t.Errorf("cadr = %v", got)
	}
	if got := call(t, "caddr", lst); got != FixV(3) {
		t.Errorf("caddr = %v", got)
	}
	if err := callErr("caar", lst); err == nil {
		t.Error("caar of flat list should error")
	}
}

func TestVectors(t *testing.T) {
	v := call(t, "make-vector", FixV(3), SymV("z"))
	if got := call(t, "vector-length", v); got != FixV(3) {
		t.Errorf("vector-length = %v", got)
	}
	call(t, "vector-set!", v, FixV(1), FixV(42))
	if got := call(t, "vector-ref", v, FixV(1)); got != FixV(42) {
		t.Errorf("vector-ref = %v", got)
	}
	if err := callErr("vector-ref", v, FixV(3)); err == nil {
		t.Error("out-of-range vector-ref should error")
	}
	lst := call(t, "vector->list", v)
	v2 := call(t, "list->vector", lst)
	if got := call(t, "vector-ref", v2, FixV(1)); got != FixV(42) {
		t.Errorf("round trip vector-ref = %v", got)
	}
}

func TestStrings(t *testing.T) {
	if got := call(t, "string-append", StrV("foo"), StrV("bar")); got != StrV("foobar") {
		t.Errorf("string-append = %v", got)
	}
	if got := call(t, "substring", StrV("hello"), FixV(1), FixV(3)); got != StrV("el") {
		t.Errorf("substring = %v", got)
	}
	if got := call(t, "string->number", StrV("12")); got != FixV(12) {
		t.Errorf("string->number = %v", got)
	}
	if got := call(t, "string->number", StrV("nope")); got != BoolV(false) {
		t.Errorf("string->number non-number = %v", got)
	}
	if got := call(t, "string->symbol", StrV("abc")); got != SymV("abc") {
		t.Errorf("string->symbol = %v", got)
	}
}

func TestEqvEqualSemantics(t *testing.T) {
	if !Eqv(FixV(3), FixV(3)) {
		t.Error("eqv? fixnums")
	}
	p1 := PairV(&Pair{Car: FixV(1), Cdr: Empty})
	p2 := PairV(&Pair{Car: FixV(1), Cdr: Empty})
	if Eqv(p1, p2) {
		t.Error("eqv? distinct pairs should be false")
	}
	if !Eqv(p1, p1) {
		t.Error("eqv? same pair")
	}
	if !Equal(p1, p2) {
		t.Error("equal? structurally equal pairs")
	}
}

func TestWriteDisplay(t *testing.T) {
	lst := call(t, "list", StrV("a"), CharV('b'))
	if got := WriteString(lst); got != `("a" #\b)` {
		t.Errorf("WriteString = %q", got)
	}
	if got := DisplayString(lst); got != "(a b)" {
		t.Errorf("DisplayString = %q", got)
	}
	if got := WriteString(BoxV(&Box{V: FixV(1)})); got != "#&1" {
		t.Errorf("box = %q", got)
	}
}

func TestArityChecking(t *testing.T) {
	if err := callErr("cons", FixV(1)); err == nil {
		t.Error("cons/1 should fail arity check")
	}
	if err := callErr("newline", FixV(1)); err == nil {
		t.Error("newline/1 should fail arity check")
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	if len(all) < 80 {
		t.Errorf("expected at least 80 primitives, got %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Errorf("All() not sorted at %d: %s >= %s", i, all[i-1].Name, all[i].Name)
		}
	}
}

func TestIOOutput(t *testing.T) {
	var b strings.Builder
	ctx := &Ctx{Out: &b}
	d := Lookup("display")
	if _, err := d.Fn(ctx, []Value{StrV("hi")}); err != nil {
		t.Fatal(err)
	}
	n := Lookup("newline")
	if _, err := n.Fn(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if b.String() != "hi\n" {
		t.Errorf("output = %q", b.String())
	}
}

func TestTruthy(t *testing.T) {
	if Truthy(BoolV(false)) {
		t.Error("#f should be falsy")
	}
	for _, v := range []Value{FixV(0), Empty, StrV(""), BoolV(true)} {
		if !Truthy(v) {
			t.Errorf("%v should be truthy", WriteString(v))
		}
	}
}
