// Package prim implements the primitive procedures of the mini-Scheme
// run-time system. Both the reference interpreter and the compiled-code
// virtual machine dispatch to the same primitive table, so a differential
// test that compares the two engines exercises the compiler rather than
// two divergent libraries.
//
// Primitives are deliberately first-order (they never call back into
// Scheme); higher-order library procedures such as map and for-each are
// defined in the Scheme prelude (see package runtime's Prelude) and are
// compiled like user code.
package prim

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/sexp"
)

// Value is a runtime value. Scheme data reuses the sexp datum types
// (Fixnum, Flonum, Boolean, Char, Str, Symbol, *Pair, *Vector, Empty);
// procedures and boxes use the types below.
type Value interface{}

// Box is an assignable cell, the target of assignment conversion.
type Box struct{ V Value }

// Procedure is implemented by every engine's closure and continuation
// representation, so that procedure? works across engines.
type Procedure interface{ SchemeProcedure() }

// Unspecified is the value of expressions with no useful result.
var Unspecified Value = sexp.Symbol("#!unspecified")

// SchemeError is an error raised by the `error` primitive or by a
// primitive misuse (wrong type, division by zero, index out of range).
type SchemeError struct {
	Msg       string
	Irritants []Value
}

func (e *SchemeError) Error() string {
	var b strings.Builder
	b.WriteString("scheme error: ")
	b.WriteString(e.Msg)
	for _, irr := range e.Irritants {
		b.WriteByte(' ')
		b.WriteString(WriteString(irr))
	}
	return b.String()
}

// Errorf builds a *SchemeError.
func Errorf(format string, args ...interface{}) error {
	return &SchemeError{Msg: fmt.Sprintf(format, args...)}
}

// Ctx carries the ambient state primitives may touch (the output sink
// used by display/write/newline and the gensym counter).
type Ctx struct {
	Out       io.Writer
	gensymCnt int
}

// Fn is the Go implementation of a primitive.
type Fn func(ctx *Ctx, args []Value) (Value, error)

// Def describes one primitive.
type Def struct {
	Name sexp.Symbol
	// MinArgs and MaxArgs bound the arity; MaxArgs < 0 means variadic.
	MinArgs, MaxArgs int
	Fn               Fn
}

// table is the master list of primitives, populated by the files in this
// package; Lookup and All expose it.
var table = map[sexp.Symbol]*Def{}

func def(name string, min, max int, fn Fn) {
	sym := sexp.Symbol(name)
	if _, dup := table[sym]; dup {
		panic("prim: duplicate primitive " + name)
	}
	table[sym] = &Def{Name: sym, MinArgs: min, MaxArgs: max, Fn: fn}
}

// Lookup returns the primitive definition for name, or nil.
func Lookup(name sexp.Symbol) *Def { return table[name] }

// All returns every primitive definition sorted by name.
func All() []*Def {
	out := make([]*Def, 0, len(table))
	for _, d := range table {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CheckArity validates an argument count against a definition.
func CheckArity(d *Def, n int) error {
	if n < d.MinArgs || (d.MaxArgs >= 0 && n > d.MaxArgs) {
		return Errorf("%s: wrong number of arguments (%d)", d.Name, n)
	}
	return nil
}

// Truthy implements Scheme truth: everything except #f is true. The
// type assertion compiles to a type-pointer compare, where comparing
// interfaces directly would call into the runtime — this is the VM's
// branch condition, so it is hot.
func Truthy(v Value) bool {
	b, ok := v.(sexp.Boolean)
	return !ok || bool(b)
}

// WriteString renders a value in external (write) notation.
func WriteString(v Value) string {
	switch t := v.(type) {
	case sexp.Datum:
		return writeDatum(t)
	case *Box:
		return "#&" + WriteString(t.V)
	case Procedure:
		return "#<procedure>"
	case nil:
		return "#<void>"
	default:
		return fmt.Sprintf("#<%T %v>", v, v)
	}
}

// DisplayString renders a value in display notation (strings unquoted,
// characters raw).
func DisplayString(v Value) string {
	switch t := v.(type) {
	case sexp.Str:
		return string(t)
	case sexp.Char:
		return string(rune(t))
	case *sexp.Pair:
		var b strings.Builder
		b.WriteByte('(')
		displayTail(&b, t)
		b.WriteByte(')')
		return b.String()
	case *sexp.Vector:
		var b strings.Builder
		b.WriteString("#(")
		for i, it := range t.Items {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(DisplayString(it))
		}
		b.WriteByte(')')
		return b.String()
	default:
		return WriteString(v)
	}
}

func displayTail(b *strings.Builder, p *sexp.Pair) {
	b.WriteString(DisplayString(p.Car))
	switch cdr := p.Cdr.(type) {
	case sexp.Empty:
	case *sexp.Pair:
		b.WriteByte(' ')
		displayTail(b, cdr)
	default:
		b.WriteString(" . ")
		b.WriteString(DisplayString(cdr))
	}
}

// writeDatum handles pairs/vectors that may contain non-datum values
// (closures, boxes) by recursing through WriteString.
func writeDatum(d sexp.Datum) string {
	switch t := d.(type) {
	case *sexp.Pair:
		var b strings.Builder
		b.WriteByte('(')
		writeTailMixed(&b, t)
		b.WriteByte(')')
		return b.String()
	case *sexp.Vector:
		var b strings.Builder
		b.WriteString("#(")
		for i, it := range t.Items {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(WriteString(it))
		}
		b.WriteByte(')')
		return b.String()
	default:
		return d.String()
	}
}

func writeTailMixed(b *strings.Builder, p *sexp.Pair) {
	b.WriteString(WriteString(p.Car))
	switch cdr := p.Cdr.(type) {
	case sexp.Empty:
	case *sexp.Pair:
		b.WriteByte(' ')
		writeTailMixed(b, cdr)
	default:
		b.WriteString(" . ")
		b.WriteString(WriteString(cdr))
	}
}

// Equal implements Scheme equal? over runtime values.
func Equal(a, b Value) bool {
	a, b = unwrapValue(a), unwrapValue(b)
	switch x := a.(type) {
	case *sexp.Pair:
		y, ok := b.(*sexp.Pair)
		return ok && Equal(x.Car, y.Car) && Equal(x.Cdr, y.Cdr)
	case *sexp.Vector:
		y, ok := b.(*sexp.Vector)
		if !ok || len(x.Items) != len(y.Items) {
			return false
		}
		for i := range x.Items {
			if !Equal(x.Items[i], y.Items[i]) {
				return false
			}
		}
		return true
	case *Box:
		y, ok := b.(*Box)
		return ok && Equal(x.V, y.V)
	default:
		return Eqv(a, b)
	}
}

// unwrapValue removes the opaque wrapper that lets non-datum values live
// inside pairs and vectors.
func unwrapValue(v Value) Value {
	if d, ok := v.(sexp.Datum); ok {
		return Unwrap(d)
	}
	return v
}

// Eqv implements Scheme eqv?.
func Eqv(a, b Value) bool {
	// Fast paths for the common concrete types. These cannot be hiding
	// inside an opaque wrapper (asDatum wraps only non-datum values), so
	// the unwrap below is unnecessary for them, and a concrete type
	// assertion is much cheaper than an interface-to-interface one.
	switch x := a.(type) {
	case sexp.Fixnum:
		y, ok := b.(sexp.Fixnum)
		return ok && x == y
	case sexp.Symbol:
		y, ok := b.(sexp.Symbol)
		return ok && x == y
	case sexp.Boolean:
		y, ok := b.(sexp.Boolean)
		return ok && x == y
	case sexp.Empty:
		_, ok := b.(sexp.Empty)
		return ok
	case *sexp.Pair:
		y, ok := b.(*sexp.Pair)
		return ok && x == y
	}
	a, b = unwrapValue(a), unwrapValue(b)
	switch a.(type) {
	case sexp.Fixnum, sexp.Flonum, sexp.Boolean, sexp.Char, sexp.Symbol, sexp.Empty:
		return a == b
	}
	// Pointer identity for pairs, vectors, strings, boxes, procedures.
	if sa, ok := a.(sexp.Str); ok {
		sb, ok := b.(sexp.Str)
		return ok && sa == sb // strings are immutable; value identity is safe
	}
	return a == b
}

// Eq implements Scheme eq?; with our representations it coincides with
// eqv? except that flonum eq? is unspecified (we make it value equality,
// which is what Chez does for immediates).
func Eq(a, b Value) bool { return Eqv(a, b) }

// --- numeric helpers ---

func numAdd(a, b Value) (Value, error) { return numOp(a, b, "+") }
func numSub(a, b Value) (Value, error) { return numOp(a, b, "-") }
func numMul(a, b Value) (Value, error) { return numOp(a, b, "*") }

func numOp(a, b Value, op string) (Value, error) {
	switch x := a.(type) {
	case sexp.Fixnum:
		switch y := b.(type) {
		case sexp.Fixnum:
			switch op {
			case "+":
				return x + y, nil
			case "-":
				return x - y, nil
			case "*":
				return x * y, nil
			}
		case sexp.Flonum:
			return flonumOp(float64(x), float64(y), op), nil
		}
	case sexp.Flonum:
		switch y := b.(type) {
		case sexp.Fixnum:
			return flonumOp(float64(x), float64(y), op), nil
		case sexp.Flonum:
			return flonumOp(float64(x), float64(y), op), nil
		}
	}
	return nil, Errorf("%s: expected numbers, got %s and %s", op, WriteString(a), WriteString(b))
}

func flonumOp(x, y float64, op string) Value {
	switch op {
	case "+":
		return sexp.Flonum(x + y)
	case "-":
		return sexp.Flonum(x - y)
	case "*":
		return sexp.Flonum(x * y)
	}
	panic("unreachable")
}

func toFloat(v Value) (float64, bool) {
	switch t := v.(type) {
	case sexp.Fixnum:
		return float64(t), true
	case sexp.Flonum:
		return float64(t), true
	}
	return 0, false
}

func numCompare(a, b Value) (int, error) {
	x, okx := toFloat(a)
	y, oky := toFloat(b)
	if !okx || !oky {
		return 0, Errorf("comparison: expected numbers, got %s and %s", WriteString(a), WriteString(b))
	}
	// Exact fixnum comparison avoids float rounding for large ints.
	if xa, ok := a.(sexp.Fixnum); ok {
		if yb, ok := b.(sexp.Fixnum); ok {
			switch {
			case xa < yb:
				return -1, nil
			case xa > yb:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	switch {
	case x < y:
		return -1, nil
	case x > y:
		return 1, nil
	case math.IsNaN(x) || math.IsNaN(y):
		return 2, nil // incomparable
	default:
		return 0, nil
	}
}

func wantFixnum(name string, v Value) (sexp.Fixnum, error) {
	n, ok := v.(sexp.Fixnum)
	if !ok {
		return 0, Errorf("%s: expected fixnum, got %s", name, WriteString(v))
	}
	return n, nil
}

func wantPair(name string, v Value) (*sexp.Pair, error) {
	p, ok := v.(*sexp.Pair)
	if !ok {
		return nil, Errorf("%s: expected pair, got %s", name, WriteString(v))
	}
	return p, nil
}

func wantVector(name string, v Value) (*sexp.Vector, error) {
	p, ok := v.(*sexp.Vector)
	if !ok {
		return nil, Errorf("%s: expected vector, got %s", name, WriteString(v))
	}
	return p, nil
}

func wantString(name string, v Value) (sexp.Str, error) {
	s, ok := v.(sexp.Str)
	if !ok {
		return "", Errorf("%s: expected string, got %s", name, WriteString(v))
	}
	return s, nil
}

func boolV(b bool) Value { return sexp.Boolean(b) }
