// Package prim implements the primitive procedures of the mini-Scheme
// run-time system. Both the reference interpreter and the compiled-code
// virtual machine dispatch to the same primitive table, so a differential
// test that compares the two engines exercises the compiler rather than
// two divergent libraries.
//
// Values use the tagged two-word representation defined in value.go:
// fixnums, booleans, characters and the empty list are immediates (no
// heap box), flonums ride in the word next to a shared kind token, and
// pairs, closures, and closure free-variable slices come from a
// per-machine Arena of recycled slabs (nil-receiver-safe: without an
// arena every allocator falls back to the plain Go heap). Arena.Recycle
// invalidates everything handed out since the last call; CopyTree is
// the escape hatch for values that must outlive it. See value.go for
// the layout and lifetime contract.
//
// Primitives are deliberately first-order (they never call back into
// Scheme); higher-order library procedures such as map and for-each are
// defined in the Scheme prelude (see package runtime's Prelude) and are
// compiled like user code.
package prim

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sexp"
)

// Box is an assignable cell, the target of assignment conversion.
type Box struct{ V Value }

// Procedure is implemented by every engine's closure and continuation
// representation, so that procedure? works across engines.
type Procedure interface{ SchemeProcedure() }

// Unspecified is the value of expressions with no useful result. It is
// deliberately a symbol (as in the original interface representation),
// so symbol? of (void) stays #t.
var Unspecified = Value{p: sexp.Symbol("#!unspecified")}

// SchemeError is an error raised by the `error` primitive or by a
// primitive misuse (wrong type, division by zero, index out of range).
type SchemeError struct {
	Msg       string
	Irritants []Value
}

func (e *SchemeError) Error() string {
	var b strings.Builder
	b.WriteString("scheme error: ")
	b.WriteString(e.Msg)
	for _, irr := range e.Irritants {
		b.WriteByte(' ')
		b.WriteString(WriteString(irr))
	}
	return b.String()
}

// Errorf builds a *SchemeError.
func Errorf(format string, args ...interface{}) error {
	return &SchemeError{Msg: fmt.Sprintf(format, args...)}
}

// Ctx carries the ambient state primitives may touch: the output sink
// used by display/write/newline, the pair arena of the owning machine
// (nil for engines that allocate from the ordinary heap), the gensym
// counter, and the symbol→string intern cache.
type Ctx struct {
	Out       io.Writer
	Arena     *Arena
	gensymCnt int
	// symStr interns the result of symbol->string per symbol, so the
	// hot (string-ref (symbol->string s) 0) idiom pays the string-box
	// allocation once per distinct symbol instead of once per call.
	// The cache is machine-local (no synchronization needed) and
	// survives Recycle — boxed strings hold no arena cells.
	symStr map[sexp.Symbol]Value
}

// symStrCap bounds the intern cache so a program that manufactures
// symbols without limit (string->symbol in a loop) cannot grow it
// unboundedly; past the cap, conversions fall back to a fresh box.
const symStrCap = 4096

// SymbolString converts a symbol to its name string, interning the
// boxed result per Ctx. Safe on a nil receiver (uncached conversion).
func (c *Ctx) SymbolString(s sexp.Symbol) Value {
	if c == nil {
		return StrV(sexp.Str(s))
	}
	if v, ok := c.symStr[s]; ok {
		return v
	}
	v := StrV(sexp.Str(s))
	if len(c.symStr) < symStrCap {
		if c.symStr == nil {
			c.symStr = make(map[sexp.Symbol]Value)
		}
		c.symStr[s] = v
	}
	return v
}

// Fn is the Go implementation of a primitive.
type Fn func(ctx *Ctx, args []Value) (Value, error)

// Def describes one primitive.
type Def struct {
	Name sexp.Symbol
	// MinArgs and MaxArgs bound the arity; MaxArgs < 0 means variadic.
	MinArgs, MaxArgs int
	Fn               Fn
}

// table is the master list of primitives, populated by the files in this
// package; Lookup and All expose it.
var table = map[sexp.Symbol]*Def{}

func def(name string, min, max int, fn Fn) {
	sym := sexp.Symbol(name)
	if _, dup := table[sym]; dup {
		panic("prim: duplicate primitive " + name)
	}
	table[sym] = &Def{Name: sym, MinArgs: min, MaxArgs: max, Fn: fn}
}

// Lookup returns the primitive definition for name, or nil.
func Lookup(name sexp.Symbol) *Def { return table[name] }

// All returns every primitive definition sorted by name.
func All() []*Def {
	out := make([]*Def, 0, len(table))
	for _, d := range table {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CheckArity validates an argument count against a definition.
func CheckArity(d *Def, n int) error {
	if n < d.MinArgs || (d.MaxArgs >= 0 && n > d.MaxArgs) {
		return Errorf("%s: wrong number of arguments (%d)", d.Name, n)
	}
	return nil
}

// Truthy implements Scheme truth: everything except #f is true. With
// the tagged representation this is two word compares — no interface
// assertion — which matters because it is the VM's branch condition.
func Truthy(v Value) bool {
	return v.p != nil || v.w != False.w
}

// WriteString renders a value in external (write) notation.
func WriteString(v Value) string {
	if v.p == nil {
		switch v.w & tagMask {
		case tagFixnum:
			return strconv.FormatInt(int64(v.w)>>3, 10)
		case tagBool:
			if v.w>>3 != 0 {
				return "#t"
			}
			return "#f"
		case tagChar:
			return sexp.Char(int64(v.w) >> 3).String()
		case tagEmpty:
			return "()"
		case tagRet:
			pc, fp, _ := v.Ret()
			return fmt.Sprintf("#<retaddr %d %d>", pc, fp)
		default: // tagNone: the "no value" sentinel
			return "#<void>"
		}
	}
	if v.p == floToken {
		return sexp.Flonum(math.Float64frombits(v.w)).String()
	}
	switch t := v.p.(type) {
	case sexp.Symbol:
		return string(t)
	case sexp.Str:
		return strconv.Quote(string(t))
	case *fixBox:
		return strconv.FormatInt(int64(*t), 10)
	case *Pair:
		var b strings.Builder
		b.WriteByte('(')
		writeTail(&b, t)
		b.WriteByte(')')
		return b.String()
	case *Vector:
		var b strings.Builder
		b.WriteString("#(")
		for i, it := range t.Items {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(WriteString(it))
		}
		b.WriteByte(')')
		return b.String()
	case *Box:
		return "#&" + WriteString(t.V)
	case Procedure:
		return "#<procedure>"
	default:
		return fmt.Sprintf("#<%T %v>", v.p, v.p)
	}
}

func writeTail(b *strings.Builder, p *Pair) {
	b.WriteString(WriteString(p.Car))
	for {
		cdr := p.Cdr
		if cdr.IsEmpty() {
			return
		}
		if next, ok := cdr.Pair(); ok {
			b.WriteByte(' ')
			b.WriteString(WriteString(next.Car))
			p = next
			continue
		}
		b.WriteString(" . ")
		b.WriteString(WriteString(cdr))
		return
	}
}

// DisplayString renders a value in display notation (strings unquoted,
// characters raw).
func DisplayString(v Value) string {
	if v.p == nil {
		if v.w&tagMask == tagChar {
			return string(rune(int64(v.w) >> 3))
		}
		return WriteString(v)
	}
	switch t := v.p.(type) {
	case sexp.Str:
		return string(t)
	case *Pair:
		var b strings.Builder
		b.WriteByte('(')
		displayTail(&b, t)
		b.WriteByte(')')
		return b.String()
	case *Vector:
		var b strings.Builder
		b.WriteString("#(")
		for i, it := range t.Items {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(DisplayString(it))
		}
		b.WriteByte(')')
		return b.String()
	default:
		return WriteString(v)
	}
}

func displayTail(b *strings.Builder, p *Pair) {
	b.WriteString(DisplayString(p.Car))
	for {
		cdr := p.Cdr
		if cdr.IsEmpty() {
			return
		}
		if next, ok := cdr.Pair(); ok {
			b.WriteByte(' ')
			b.WriteString(DisplayString(next.Car))
			p = next
			continue
		}
		b.WriteString(" . ")
		b.WriteString(DisplayString(cdr))
		return
	}
}

// Equal implements Scheme equal? over runtime values.
func Equal(a, b Value) bool {
	switch x := a.p.(type) {
	case *Pair:
		y, ok := b.p.(*Pair)
		return ok && Equal(x.Car, y.Car) && Equal(x.Cdr, y.Cdr)
	case *Vector:
		y, ok := b.p.(*Vector)
		if !ok || len(x.Items) != len(y.Items) {
			return false
		}
		for i := range x.Items {
			if !Equal(x.Items[i], y.Items[i]) {
				return false
			}
		}
		return true
	case *Box:
		y, ok := b.p.(*Box)
		return ok && Equal(x.V, y.V)
	default:
		return Eqv(a, b)
	}
}

// Eqv implements Scheme eqv?. Immediates compare by word; flonums by
// numeric value (NaN is not eqv? to anything, matching the previous
// interface-equality semantics where == applied IEEE comparison);
// out-of-range fixnums by value (the canonical-encoding invariant means
// this case only arises boxed-vs-boxed); everything else by Go
// interface equality, which is value identity for symbols and strings
// (both immutable) and pointer identity for pairs, vectors, boxes and
// procedures.
func Eqv(a, b Value) bool {
	if a.p == nil || b.p == nil {
		return a.w == b.w && a.p == b.p
	}
	if a.p == floToken {
		return b.p == floToken &&
			math.Float64frombits(a.w) == math.Float64frombits(b.w)
	}
	if x, ok := a.p.(*fixBox); ok {
		y, ok := b.p.(*fixBox)
		return ok && *x == *y
	}
	return a.p == b.p
}

// Eq implements Scheme eq?; with our representations it coincides with
// eqv? except that flonum eq? is unspecified (we make it value equality,
// which is what Chez does for immediates).
func Eq(a, b Value) bool { return Eqv(a, b) }

// --- numeric helpers ---

func numAdd(a, b Value) (Value, error) { return numOp(a, b, "+") }
func numSub(a, b Value) (Value, error) { return numOp(a, b, "-") }
func numMul(a, b Value) (Value, error) { return numOp(a, b, "*") }

func numOp(a, b Value, op string) (Value, error) {
	if x, ok := a.Fixnum(); ok {
		if y, ok := b.Fixnum(); ok {
			// Fixnum arithmetic wraps at int64 (the boxed fallback keeps
			// the full 64-bit result exact; only true int64 overflow
			// wraps, as it always has).
			switch op {
			case "+":
				return FixV(x + y), nil
			case "-":
				return FixV(x - y), nil
			case "*":
				return FixV(x * y), nil
			}
		}
		if y, ok := b.Flonum(); ok {
			return flonumOp(float64(x), y, op), nil
		}
	} else if x, ok := a.Flonum(); ok {
		if y, ok := toFloat(b); ok {
			return flonumOp(x, y, op), nil
		}
	}
	return Value{}, Errorf("%s: expected numbers, got %s and %s", op, WriteString(a), WriteString(b))
}

func flonumOp(x, y float64, op string) Value {
	switch op {
	case "+":
		return FloV(x + y)
	case "-":
		return FloV(x - y)
	case "*":
		return FloV(x * y)
	}
	panic("unreachable")
}

func toFloat(v Value) (float64, bool) {
	if n, ok := v.Fixnum(); ok {
		return float64(n), true
	}
	return v.Flonum()
}

func numCompare(a, b Value) (int, error) {
	// Exact fixnum comparison avoids float rounding for large ints.
	if xa, ok := a.Fixnum(); ok {
		if yb, ok := b.Fixnum(); ok {
			switch {
			case xa < yb:
				return -1, nil
			case xa > yb:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	x, okx := toFloat(a)
	y, oky := toFloat(b)
	if !okx || !oky {
		return 0, Errorf("comparison: expected numbers, got %s and %s", WriteString(a), WriteString(b))
	}
	switch {
	case x < y:
		return -1, nil
	case x > y:
		return 1, nil
	case math.IsNaN(x) || math.IsNaN(y):
		return 2, nil // incomparable
	default:
		return 0, nil
	}
}

func wantFixnum(name string, v Value) (int64, error) {
	n, ok := v.Fixnum()
	if !ok {
		return 0, Errorf("%s: expected fixnum, got %s", name, WriteString(v))
	}
	return n, nil
}

func wantPair(name string, v Value) (*Pair, error) {
	p, ok := v.Pair()
	if !ok {
		return nil, Errorf("%s: expected pair, got %s", name, WriteString(v))
	}
	return p, nil
}

func wantVector(name string, v Value) (*Vector, error) {
	p, ok := v.Vector()
	if !ok {
		return nil, Errorf("%s: expected vector, got %s", name, WriteString(v))
	}
	return p, nil
}

func wantString(name string, v Value) (sexp.Str, error) {
	s, ok := v.Str()
	if !ok {
		return "", Errorf("%s: expected string, got %s", name, WriteString(v))
	}
	return s, nil
}

func boolV(b bool) Value { return BoolV(b) }
