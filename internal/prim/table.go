package prim

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/sexp"
)

func init() {
	registerPredicates()
	registerPairs()
	registerNumeric()
	registerVectors()
	registerStrings()
	registerChars()
	registerBoxes()
	registerIO()
	registerMisc()
}

func registerPredicates() {
	def("eq?", 2, 2, func(ctx *Ctx, a []Value) (Value, error) { return boolV(Eq(a[0], a[1])), nil })
	def("eqv?", 2, 2, func(ctx *Ctx, a []Value) (Value, error) { return boolV(Eqv(a[0], a[1])), nil })
	def("equal?", 2, 2, func(ctx *Ctx, a []Value) (Value, error) { return boolV(Equal(a[0], a[1])), nil })
	def("null?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		return boolV(a[0].IsEmpty()), nil
	})
	def("pair?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].Pair()
		return boolV(ok), nil
	})
	def("symbol?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].Symbol()
		return boolV(ok), nil
	})
	def("number?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		return boolV(a[0].IsNumber()), nil
	})
	def("integer?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		if _, ok := a[0].Fixnum(); ok {
			return boolV(true), nil
		}
		if f, ok := a[0].Flonum(); ok {
			return boolV(f == math.Trunc(f)), nil
		}
		return boolV(false), nil
	})
	def("fixnum?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].Fixnum()
		return boolV(ok), nil
	})
	def("flonum?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].Flonum()
		return boolV(ok), nil
	})
	def("boolean?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		return boolV(a[0].IsBool()), nil
	})
	def("string?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].Str()
		return boolV(ok), nil
	})
	def("char?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].Char()
		return boolV(ok), nil
	})
	def("vector?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].Vector()
		return boolV(ok), nil
	})
	def("procedure?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].Heap().(Procedure)
		return boolV(ok), nil
	})
	def("box?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].Box()
		return boolV(ok), nil
	})
	def("zero?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		c, err := numCompare(a[0], FixV(0))
		if err != nil {
			return Value{}, err
		}
		return boolV(c == 0), nil
	})
	def("positive?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		c, err := numCompare(a[0], FixV(0))
		if err != nil {
			return Value{}, err
		}
		return boolV(c == 1), nil
	})
	def("negative?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		c, err := numCompare(a[0], FixV(0))
		if err != nil {
			return Value{}, err
		}
		return boolV(c == -1), nil
	})
	def("even?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		n, err := wantFixnum("even?", a[0])
		if err != nil {
			return Value{}, err
		}
		return boolV(n%2 == 0), nil
	})
	def("odd?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		n, err := wantFixnum("odd?", a[0])
		if err != nil {
			return Value{}, err
		}
		return boolV(n%2 != 0), nil
	})
}

func registerPairs() {
	def("cons", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		return ctx.Cons(a[0], a[1]), nil
	})
	def("car", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		p, err := wantPair("car", a[0])
		if err != nil {
			return Value{}, err
		}
		return p.Car, nil
	})
	def("cdr", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		p, err := wantPair("cdr", a[0])
		if err != nil {
			return Value{}, err
		}
		return p.Cdr, nil
	})
	def("set-car!", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		p, err := wantPair("set-car!", a[0])
		if err != nil {
			return Value{}, err
		}
		p.Car = a[1]
		return Unspecified, nil
	})
	def("set-cdr!", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		p, err := wantPair("set-cdr!", a[0])
		if err != nil {
			return Value{}, err
		}
		p.Cdr = a[1]
		return Unspecified, nil
	})
	// Compound accessors caar..cddr and the common three-deep ones.
	for _, path := range []string{"aa", "ad", "da", "dd", "aaa", "aad", "ada", "add", "daa", "dad", "dda", "ddd"} {
		path := path
		name := "c" + path + "r"
		def(name, 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
			v := a[0]
			for i := len(path) - 1; i >= 0; i-- {
				p, err := wantPair(name, v)
				if err != nil {
					return Value{}, err
				}
				if path[i] == 'a' {
					v = p.Car
				} else {
					v = p.Cdr
				}
			}
			return v, nil
		})
	}
	def("list", 0, -1, func(ctx *Ctx, a []Value) (Value, error) {
		out := Empty
		for i := len(a) - 1; i >= 0; i-- {
			out = ctx.Cons(a[i], out)
		}
		return out, nil
	})
}

func registerNumeric() {
	def("+", 0, -1, func(ctx *Ctx, a []Value) (Value, error) {
		// Two-fixnum fast path: the compiler emits almost all arithmetic
		// as binary, and fixnums dominate the benchmark suite.
		if len(a) == 2 {
			if x, ok := a[0].Fixnum(); ok {
				if y, ok := a[1].Fixnum(); ok {
					return FixV(x + y), nil
				}
			}
		}
		acc := FixV(0)
		for _, v := range a {
			var err error
			if acc, err = numAdd(acc, v); err != nil {
				return Value{}, err
			}
		}
		return acc, nil
	})
	def("-", 1, -1, func(ctx *Ctx, a []Value) (Value, error) {
		if len(a) == 2 {
			if x, ok := a[0].Fixnum(); ok {
				if y, ok := a[1].Fixnum(); ok {
					return FixV(x - y), nil
				}
			}
		}
		if len(a) == 1 {
			return numSub(FixV(0), a[0])
		}
		acc := a[0]
		for _, v := range a[1:] {
			var err error
			if acc, err = numSub(acc, v); err != nil {
				return Value{}, err
			}
		}
		return acc, nil
	})
	def("*", 0, -1, func(ctx *Ctx, a []Value) (Value, error) {
		if len(a) == 2 {
			if x, ok := a[0].Fixnum(); ok {
				if y, ok := a[1].Fixnum(); ok {
					return FixV(x * y), nil
				}
			}
		}
		acc := FixV(1)
		for _, v := range a {
			var err error
			if acc, err = numMul(acc, v); err != nil {
				return Value{}, err
			}
		}
		return acc, nil
	})
	def("/", 1, -1, func(ctx *Ctx, a []Value) (Value, error) {
		if len(a) == 1 {
			return divide(FixV(1), a[0])
		}
		acc := a[0]
		for _, v := range a[1:] {
			var err error
			if acc, err = divide(acc, v); err != nil {
				return Value{}, err
			}
		}
		return acc, nil
	})
	def("quotient", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		x, err := wantFixnum("quotient", a[0])
		if err != nil {
			return Value{}, err
		}
		y, err := wantFixnum("quotient", a[1])
		if err != nil {
			return Value{}, err
		}
		if y == 0 {
			return Value{}, Errorf("quotient: division by zero")
		}
		return FixV(x / y), nil
	})
	def("remainder", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		x, err := wantFixnum("remainder", a[0])
		if err != nil {
			return Value{}, err
		}
		y, err := wantFixnum("remainder", a[1])
		if err != nil {
			return Value{}, err
		}
		if y == 0 {
			return Value{}, Errorf("remainder: division by zero")
		}
		return FixV(x % y), nil
	})
	def("modulo", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		x, err := wantFixnum("modulo", a[0])
		if err != nil {
			return Value{}, err
		}
		y, err := wantFixnum("modulo", a[1])
		if err != nil {
			return Value{}, err
		}
		if y == 0 {
			return Value{}, Errorf("modulo: division by zero")
		}
		m := x % y
		if m != 0 && (m < 0) != (y < 0) {
			m += y
		}
		return FixV(m), nil
	})
	def("abs", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		if n, ok := a[0].Fixnum(); ok {
			if n < 0 {
				return FixV(-n), nil
			}
			return a[0], nil
		}
		if f, ok := a[0].Flonum(); ok {
			return FloV(math.Abs(f)), nil
		}
		return Value{}, Errorf("abs: expected number, got %s", WriteString(a[0]))
	})
	def("min", 1, -1, func(ctx *Ctx, a []Value) (Value, error) { return minMax(a, -1) })
	def("max", 1, -1, func(ctx *Ctx, a []Value) (Value, error) { return minMax(a, 1) })
	def("1+", 1, 1, func(ctx *Ctx, a []Value) (Value, error) { return numAdd(a[0], FixV(1)) })
	def("1-", 1, 1, func(ctx *Ctx, a []Value) (Value, error) { return numSub(a[0], FixV(1)) })
	def("add1", 1, 1, func(ctx *Ctx, a []Value) (Value, error) { return numAdd(a[0], FixV(1)) })
	def("sub1", 1, 1, func(ctx *Ctx, a []Value) (Value, error) { return numSub(a[0], FixV(1)) })
	def("expt", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		if x, ok := a[0].Fixnum(); ok {
			if y, ok := a[1].Fixnum(); ok && y >= 0 {
				var acc int64 = 1
				for i := int64(0); i < y; i++ {
					acc *= x
				}
				return FixV(acc), nil
			}
		}
		x, okx := toFloat(a[0])
		y, oky := toFloat(a[1])
		if !okx || !oky {
			return Value{}, Errorf("expt: expected numbers")
		}
		return FloV(math.Pow(x, y)), nil
	})
	def("sqrt", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		x, ok := toFloat(a[0])
		if !ok {
			return Value{}, Errorf("sqrt: expected number")
		}
		return FloV(math.Sqrt(x)), nil
	})
	def("sin", 1, 1, flUnary(math.Sin))
	def("cos", 1, 1, flUnary(math.Cos))
	def("atan", 1, 1, flUnary(math.Atan))
	def("exact->inexact", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		x, ok := toFloat(a[0])
		if !ok {
			return Value{}, Errorf("exact->inexact: expected number")
		}
		return FloV(x), nil
	})
	def("inexact->exact", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		if _, ok := a[0].Fixnum(); ok {
			return a[0], nil
		}
		if f, ok := a[0].Flonum(); ok {
			return FixV(int64(f)), nil
		}
		return Value{}, Errorf("inexact->exact: expected number")
	})
	def("truncate", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		if _, ok := a[0].Fixnum(); ok {
			return a[0], nil
		}
		if f, ok := a[0].Flonum(); ok {
			return FloV(math.Trunc(f)), nil
		}
		return Value{}, Errorf("truncate: expected number")
	})
	def("floor", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		if _, ok := a[0].Fixnum(); ok {
			return a[0], nil
		}
		if f, ok := a[0].Flonum(); ok {
			return FloV(math.Floor(f)), nil
		}
		return Value{}, Errorf("floor: expected number")
	})
	cmp := func(name string, ok func(c int) bool) {
		def(name, 2, -1, func(ctx *Ctx, a []Value) (Value, error) {
			// Two-fixnum fast path (see "+"): skip the float promotion
			// dance when both operands are fixnums.
			if len(a) == 2 {
				if x, okx := a[0].Fixnum(); okx {
					if y, oky := a[1].Fixnum(); oky {
						c := 0
						if x < y {
							c = -1
						} else if x > y {
							c = 1
						}
						return boolV(ok(c)), nil
					}
				}
			}
			for i := 0; i+1 < len(a); i++ {
				c, err := numCompare(a[i], a[i+1])
				if err != nil {
					return Value{}, err
				}
				if c == 2 || !ok(c) {
					return boolV(false), nil
				}
			}
			return boolV(true), nil
		})
	}
	cmp("=", func(c int) bool { return c == 0 })
	cmp("<", func(c int) bool { return c == -1 })
	cmp(">", func(c int) bool { return c == 1 })
	cmp("<=", func(c int) bool { return c <= 0 })
	cmp(">=", func(c int) bool { return c >= 0 })
	def("logand", 2, 2, fxBinary("logand", func(x, y int64) int64 { return x & y }))
	def("logor", 2, 2, fxBinary("logor", func(x, y int64) int64 { return x | y }))
	def("logxor", 2, 2, fxBinary("logxor", func(x, y int64) int64 { return x ^ y }))
	def("ash", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		x, err := wantFixnum("ash", a[0])
		if err != nil {
			return Value{}, err
		}
		y, err := wantFixnum("ash", a[1])
		if err != nil {
			return Value{}, err
		}
		if y >= 0 {
			return FixV(x << uint(y)), nil
		}
		return FixV(x >> uint(-y)), nil
	})
}

func flUnary(f func(float64) float64) Fn {
	return func(ctx *Ctx, a []Value) (Value, error) {
		x, ok := toFloat(a[0])
		if !ok {
			return Value{}, Errorf("expected number, got %s", WriteString(a[0]))
		}
		return FloV(f(x)), nil
	}
}

func fxBinary(name string, f func(x, y int64) int64) Fn {
	return func(ctx *Ctx, a []Value) (Value, error) {
		x, err := wantFixnum(name, a[0])
		if err != nil {
			return Value{}, err
		}
		y, err := wantFixnum(name, a[1])
		if err != nil {
			return Value{}, err
		}
		return FixV(f(x, y)), nil
	}
}

func divide(a, b Value) (Value, error) {
	if x, ok := a.Fixnum(); ok {
		if y, ok := b.Fixnum(); ok {
			if y == 0 {
				return Value{}, Errorf("/: division by zero")
			}
			if x%y == 0 {
				return FixV(x / y), nil
			}
			return FloV(float64(x) / float64(y)), nil
		}
	}
	x, okx := toFloat(a)
	y, oky := toFloat(b)
	if !okx || !oky {
		return Value{}, Errorf("/: expected numbers")
	}
	return FloV(x / y), nil
}

func minMax(a []Value, dir int) (Value, error) {
	best := a[0]
	for _, v := range a[1:] {
		c, err := numCompare(v, best)
		if err != nil {
			return Value{}, err
		}
		if c == dir {
			best = v
		}
	}
	return best, nil
}

func registerVectors() {
	def("vector", 0, -1, func(ctx *Ctx, a []Value) (Value, error) {
		items := make([]Value, len(a))
		copy(items, a) // a aliases the VM's argument buffer; the vector must own its storage
		return VecV(&Vector{Items: items}), nil
	})
	def("make-vector", 1, 2, func(ctx *Ctx, a []Value) (Value, error) {
		n, err := wantFixnum("make-vector", a[0])
		if err != nil {
			return Value{}, err
		}
		if n < 0 {
			return Value{}, Errorf("make-vector: negative length %d", n)
		}
		fill := FixV(0)
		if len(a) == 2 {
			fill = a[1]
		}
		items := make([]Value, n)
		for i := range items {
			items[i] = fill
		}
		return VecV(&Vector{Items: items}), nil
	})
	def("vector-length", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		v, err := wantVector("vector-length", a[0])
		if err != nil {
			return Value{}, err
		}
		return FixV(int64(len(v.Items))), nil
	})
	def("vector-ref", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		v, err := wantVector("vector-ref", a[0])
		if err != nil {
			return Value{}, err
		}
		i, err := wantFixnum("vector-ref", a[1])
		if err != nil {
			return Value{}, err
		}
		if i < 0 || int(i) >= len(v.Items) {
			return Value{}, Errorf("vector-ref: index %d out of range for length %d", i, len(v.Items))
		}
		return v.Items[i], nil
	})
	def("vector-set!", 3, 3, func(ctx *Ctx, a []Value) (Value, error) {
		v, err := wantVector("vector-set!", a[0])
		if err != nil {
			return Value{}, err
		}
		i, err := wantFixnum("vector-set!", a[1])
		if err != nil {
			return Value{}, err
		}
		if i < 0 || int(i) >= len(v.Items) {
			return Value{}, Errorf("vector-set!: index %d out of range for length %d", i, len(v.Items))
		}
		v.Items[i] = a[2]
		return Unspecified, nil
	})
	def("vector-fill!", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		v, err := wantVector("vector-fill!", a[0])
		if err != nil {
			return Value{}, err
		}
		for i := range v.Items {
			v.Items[i] = a[1]
		}
		return Unspecified, nil
	})
	def("list->vector", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		var items []Value
		v := a[0]
		for {
			if v.IsEmpty() {
				return VecV(&Vector{Items: items}), nil
			}
			p, ok := v.Pair()
			if !ok {
				return Value{}, Errorf("list->vector: improper list")
			}
			items = append(items, p.Car)
			v = p.Cdr
		}
	})
	def("vector->list", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		v, err := wantVector("vector->list", a[0])
		if err != nil {
			return Value{}, err
		}
		out := Empty
		for i := len(v.Items) - 1; i >= 0; i-- {
			out = ctx.Cons(v.Items[i], out)
		}
		return out, nil
	})
}

func registerStrings() {
	def("string-length", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		s, err := wantString("string-length", a[0])
		if err != nil {
			return Value{}, err
		}
		return FixV(int64(len(s))), nil
	})
	def("string-ref", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		s, err := wantString("string-ref", a[0])
		if err != nil {
			return Value{}, err
		}
		i, err := wantFixnum("string-ref", a[1])
		if err != nil {
			return Value{}, err
		}
		if i < 0 || int(i) >= len(s) {
			return Value{}, Errorf("string-ref: index %d out of range", i)
		}
		return CharV(rune(s[i])), nil
	})
	def("string-append", 0, -1, func(ctx *Ctx, a []Value) (Value, error) {
		var b strings.Builder
		for _, v := range a {
			s, err := wantString("string-append", v)
			if err != nil {
				return Value{}, err
			}
			b.WriteString(string(s))
		}
		return StrV(sexp.Str(b.String())), nil
	})
	def("substring", 3, 3, func(ctx *Ctx, a []Value) (Value, error) {
		s, err := wantString("substring", a[0])
		if err != nil {
			return Value{}, err
		}
		i, err := wantFixnum("substring", a[1])
		if err != nil {
			return Value{}, err
		}
		j, err := wantFixnum("substring", a[2])
		if err != nil {
			return Value{}, err
		}
		if i < 0 || j < i || int(j) > len(s) {
			return Value{}, Errorf("substring: bad range [%d,%d) for length %d", i, j, len(s))
		}
		return StrV(s[i:j]), nil
	})
	def("string=?", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		x, err := wantString("string=?", a[0])
		if err != nil {
			return Value{}, err
		}
		y, err := wantString("string=?", a[1])
		if err != nil {
			return Value{}, err
		}
		return boolV(x == y), nil
	})
	def("string<?", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		x, err := wantString("string<?", a[0])
		if err != nil {
			return Value{}, err
		}
		y, err := wantString("string<?", a[1])
		if err != nil {
			return Value{}, err
		}
		return boolV(x < y), nil
	})
	def("symbol->string", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		s, ok := a[0].Symbol()
		if !ok {
			return Value{}, Errorf("symbol->string: expected symbol")
		}
		return ctx.SymbolString(s), nil
	})
	def("string->symbol", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		s, err := wantString("string->symbol", a[0])
		if err != nil {
			return Value{}, err
		}
		return SymV(sexp.Symbol(s)), nil
	})
	def("number->string", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		if n, ok := a[0].Fixnum(); ok {
			return StrV(sexp.Str(strconv.FormatInt(n, 10))), nil
		}
		if f, ok := a[0].Flonum(); ok {
			return StrV(sexp.Str(sexp.Flonum(f).String())), nil
		}
		return Value{}, Errorf("number->string: expected number")
	})
	def("string->number", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		s, err := wantString("string->number", a[0])
		if err != nil {
			return Value{}, err
		}
		if n, err := strconv.ParseInt(string(s), 10, 64); err == nil {
			return FixV(n), nil
		}
		if f, err := strconv.ParseFloat(string(s), 64); err == nil {
			return FloV(f), nil
		}
		return boolV(false), nil
	})
	def("string->list", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		s, err := wantString("string->list", a[0])
		if err != nil {
			return Value{}, err
		}
		out := Empty
		for i := len(s) - 1; i >= 0; i-- {
			out = ctx.Cons(CharV(rune(s[i])), out)
		}
		return out, nil
	})
	def("list->string", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		var b strings.Builder
		v := a[0]
		for {
			if v.IsEmpty() {
				return StrV(sexp.Str(b.String())), nil
			}
			p, ok := v.Pair()
			if !ok {
				return Value{}, Errorf("list->string: improper list")
			}
			c, ok := p.Car.Char()
			if !ok {
				return Value{}, Errorf("list->string: expected char, got %s", WriteString(p.Car))
			}
			b.WriteRune(c)
			v = p.Cdr
		}
	})
}

func registerChars() {
	def("char->integer", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		c, ok := a[0].Char()
		if !ok {
			return Value{}, Errorf("char->integer: expected char")
		}
		return FixV(int64(c)), nil
	})
	def("integer->char", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		n, err := wantFixnum("integer->char", a[0])
		if err != nil {
			return Value{}, err
		}
		return CharV(rune(n)), nil
	})
	charCmp := func(name string, ok func(c int) bool) {
		def(name, 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
			x, okx := a[0].Char()
			y, oky := a[1].Char()
			if !okx || !oky {
				return Value{}, Errorf("%s: expected chars", name)
			}
			c := 0
			if x < y {
				c = -1
			} else if x > y {
				c = 1
			}
			return boolV(ok(c)), nil
		})
	}
	charCmp("char=?", func(c int) bool { return c == 0 })
	charCmp("char<?", func(c int) bool { return c == -1 })
	charCmp("char>?", func(c int) bool { return c == 1 })
	charCmp("char<=?", func(c int) bool { return c <= 0 })
	charCmp("char>=?", func(c int) bool { return c >= 0 })
	def("char-upcase", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		c, ok := a[0].Char()
		if !ok {
			return Value{}, Errorf("char-upcase: expected char")
		}
		if c >= 'a' && c <= 'z' {
			return CharV(c - 32), nil
		}
		return a[0], nil
	})
	def("char-alphabetic?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		c, ok := a[0].Char()
		if !ok {
			return Value{}, Errorf("char-alphabetic?: expected char")
		}
		return boolV((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')), nil
	})
	def("char-numeric?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		c, ok := a[0].Char()
		if !ok {
			return Value{}, Errorf("char-numeric?: expected char")
		}
		return boolV(c >= '0' && c <= '9'), nil
	})
}

func registerBoxes() {
	def("box", 1, 1, func(ctx *Ctx, a []Value) (Value, error) { return BoxV(&Box{V: a[0]}), nil })
	def("unbox", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		b, ok := a[0].Box()
		if !ok {
			return Value{}, Errorf("unbox: expected box, got %s", WriteString(a[0]))
		}
		return b.V, nil
	})
	def("set-box!", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		b, ok := a[0].Box()
		if !ok {
			return Value{}, Errorf("set-box!: expected box, got %s", WriteString(a[0]))
		}
		b.V = a[1]
		return Unspecified, nil
	})
}

func registerIO() {
	def("display", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		if ctx.Out != nil {
			fmt.Fprint(ctx.Out, DisplayString(a[0]))
		}
		return Unspecified, nil
	})
	def("write", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		if ctx.Out != nil {
			fmt.Fprint(ctx.Out, WriteString(a[0]))
		}
		return Unspecified, nil
	})
	def("newline", 0, 0, func(ctx *Ctx, a []Value) (Value, error) {
		if ctx.Out != nil {
			fmt.Fprintln(ctx.Out)
		}
		return Unspecified, nil
	})
	def("write-char", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		c, ok := a[0].Char()
		if !ok {
			return Value{}, Errorf("write-char: expected char")
		}
		if ctx.Out != nil {
			fmt.Fprint(ctx.Out, string(c))
		}
		return Unspecified, nil
	})
}

func registerMisc() {
	def("error", 1, -1, func(ctx *Ctx, a []Value) (Value, error) {
		msg := DisplayString(a[0])
		// Copy the irritants: a aliases the VM's reusable argument buffer
		// and the error outlives this call.
		irr := make([]Value, len(a)-1)
		copy(irr, a[1:])
		return Value{}, &SchemeError{Msg: msg, Irritants: irr}
	})
	def("void", 0, 0, func(ctx *Ctx, a []Value) (Value, error) { return Unspecified, nil })
	def("gensym", 0, 0, func(ctx *Ctx, a []Value) (Value, error) {
		ctx.gensymCnt++
		return SymV(sexp.Symbol(fmt.Sprintf("g%d", ctx.gensymCnt))), nil
	})
}
