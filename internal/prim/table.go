package prim

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/sexp"
)

func init() {
	registerPredicates()
	registerPairs()
	registerNumeric()
	registerVectors()
	registerStrings()
	registerChars()
	registerBoxes()
	registerIO()
	registerMisc()
}

func registerPredicates() {
	def("eq?", 2, 2, func(ctx *Ctx, a []Value) (Value, error) { return boolV(Eq(a[0], a[1])), nil })
	def("eqv?", 2, 2, func(ctx *Ctx, a []Value) (Value, error) { return boolV(Eqv(a[0], a[1])), nil })
	def("equal?", 2, 2, func(ctx *Ctx, a []Value) (Value, error) { return boolV(Equal(a[0], a[1])), nil })
	def("null?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].(sexp.Empty)
		return boolV(ok), nil
	})
	def("pair?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].(*sexp.Pair)
		return boolV(ok), nil
	})
	def("symbol?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].(sexp.Symbol)
		return boolV(ok), nil
	})
	def("number?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := toFloat(a[0])
		return boolV(ok), nil
	})
	def("integer?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		switch t := a[0].(type) {
		case sexp.Fixnum:
			return boolV(true), nil
		case sexp.Flonum:
			return boolV(float64(t) == math.Trunc(float64(t))), nil
		}
		return boolV(false), nil
	})
	def("fixnum?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].(sexp.Fixnum)
		return boolV(ok), nil
	})
	def("flonum?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].(sexp.Flonum)
		return boolV(ok), nil
	})
	def("boolean?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].(sexp.Boolean)
		return boolV(ok), nil
	})
	def("string?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].(sexp.Str)
		return boolV(ok), nil
	})
	def("char?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].(sexp.Char)
		return boolV(ok), nil
	})
	def("vector?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].(*sexp.Vector)
		return boolV(ok), nil
	})
	def("procedure?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].(Procedure)
		return boolV(ok), nil
	})
	def("box?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		_, ok := a[0].(*Box)
		return boolV(ok), nil
	})
	def("zero?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		c, err := numCompare(a[0], sexp.Fixnum(0))
		if err != nil {
			return nil, err
		}
		return boolV(c == 0), nil
	})
	def("positive?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		c, err := numCompare(a[0], sexp.Fixnum(0))
		if err != nil {
			return nil, err
		}
		return boolV(c == 1), nil
	})
	def("negative?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		c, err := numCompare(a[0], sexp.Fixnum(0))
		if err != nil {
			return nil, err
		}
		return boolV(c == -1), nil
	})
	def("even?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		n, err := wantFixnum("even?", a[0])
		if err != nil {
			return nil, err
		}
		return boolV(n%2 == 0), nil
	})
	def("odd?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		n, err := wantFixnum("odd?", a[0])
		if err != nil {
			return nil, err
		}
		return boolV(n%2 != 0), nil
	})
}

func registerPairs() {
	def("cons", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		return &sexp.Pair{Car: asDatum(a[0]), Cdr: asDatum(a[1])}, nil
	})
	def("car", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		p, err := wantPair("car", a[0])
		if err != nil {
			return nil, err
		}
		return Unwrap(p.Car), nil
	})
	def("cdr", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		p, err := wantPair("cdr", a[0])
		if err != nil {
			return nil, err
		}
		return Unwrap(p.Cdr), nil
	})
	def("set-car!", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		p, err := wantPair("set-car!", a[0])
		if err != nil {
			return nil, err
		}
		p.Car = asDatum(a[1])
		return Unspecified, nil
	})
	def("set-cdr!", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		p, err := wantPair("set-cdr!", a[0])
		if err != nil {
			return nil, err
		}
		p.Cdr = asDatum(a[1])
		return Unspecified, nil
	})
	// Compound accessors caar..cddr and the common three-deep ones.
	for _, path := range []string{"aa", "ad", "da", "dd", "aaa", "aad", "ada", "add", "daa", "dad", "dda", "ddd"} {
		path := path
		name := "c" + path + "r"
		def(name, 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
			v := a[0]
			for i := len(path) - 1; i >= 0; i-- {
				p, err := wantPair(name, v)
				if err != nil {
					return nil, err
				}
				if path[i] == 'a' {
					v = Unwrap(p.Car)
				} else {
					v = Unwrap(p.Cdr)
				}
			}
			return v, nil
		})
	}
	def("list", 0, -1, func(ctx *Ctx, a []Value) (Value, error) {
		var out sexp.Datum = sexp.Nil
		for i := len(a) - 1; i >= 0; i-- {
			out = &sexp.Pair{Car: asDatum(a[i]), Cdr: out}
		}
		return out, nil
	})
}

func registerNumeric() {
	def("+", 0, -1, func(ctx *Ctx, a []Value) (Value, error) {
		// Two-fixnum fast path: the compiler emits almost all arithmetic
		// as binary, and fixnums dominate the benchmark suite.
		if len(a) == 2 {
			if x, ok := a[0].(sexp.Fixnum); ok {
				if y, ok := a[1].(sexp.Fixnum); ok {
					return x + y, nil
				}
			}
		}
		var acc Value = sexp.Fixnum(0)
		for _, v := range a {
			var err error
			if acc, err = numAdd(acc, v); err != nil {
				return nil, err
			}
		}
		return acc, nil
	})
	def("-", 1, -1, func(ctx *Ctx, a []Value) (Value, error) {
		if len(a) == 2 {
			if x, ok := a[0].(sexp.Fixnum); ok {
				if y, ok := a[1].(sexp.Fixnum); ok {
					return x - y, nil
				}
			}
		}
		if len(a) == 1 {
			return numSub(sexp.Fixnum(0), a[0])
		}
		acc := a[0]
		for _, v := range a[1:] {
			var err error
			if acc, err = numSub(acc, v); err != nil {
				return nil, err
			}
		}
		return acc, nil
	})
	def("*", 0, -1, func(ctx *Ctx, a []Value) (Value, error) {
		if len(a) == 2 {
			if x, ok := a[0].(sexp.Fixnum); ok {
				if y, ok := a[1].(sexp.Fixnum); ok {
					return x * y, nil
				}
			}
		}
		var acc Value = sexp.Fixnum(1)
		for _, v := range a {
			var err error
			if acc, err = numMul(acc, v); err != nil {
				return nil, err
			}
		}
		return acc, nil
	})
	def("/", 1, -1, func(ctx *Ctx, a []Value) (Value, error) {
		if len(a) == 1 {
			return divide(sexp.Fixnum(1), a[0])
		}
		acc := a[0]
		for _, v := range a[1:] {
			var err error
			if acc, err = divide(acc, v); err != nil {
				return nil, err
			}
		}
		return acc, nil
	})
	def("quotient", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		x, err := wantFixnum("quotient", a[0])
		if err != nil {
			return nil, err
		}
		y, err := wantFixnum("quotient", a[1])
		if err != nil {
			return nil, err
		}
		if y == 0 {
			return nil, Errorf("quotient: division by zero")
		}
		return x / y, nil
	})
	def("remainder", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		x, err := wantFixnum("remainder", a[0])
		if err != nil {
			return nil, err
		}
		y, err := wantFixnum("remainder", a[1])
		if err != nil {
			return nil, err
		}
		if y == 0 {
			return nil, Errorf("remainder: division by zero")
		}
		return x % y, nil
	})
	def("modulo", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		x, err := wantFixnum("modulo", a[0])
		if err != nil {
			return nil, err
		}
		y, err := wantFixnum("modulo", a[1])
		if err != nil {
			return nil, err
		}
		if y == 0 {
			return nil, Errorf("modulo: division by zero")
		}
		m := x % y
		if m != 0 && (m < 0) != (y < 0) {
			m += y
		}
		return m, nil
	})
	def("abs", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		switch t := a[0].(type) {
		case sexp.Fixnum:
			if t < 0 {
				return -t, nil
			}
			return t, nil
		case sexp.Flonum:
			return sexp.Flonum(math.Abs(float64(t))), nil
		}
		return nil, Errorf("abs: expected number, got %s", WriteString(a[0]))
	})
	def("min", 1, -1, func(ctx *Ctx, a []Value) (Value, error) { return minMax(a, -1) })
	def("max", 1, -1, func(ctx *Ctx, a []Value) (Value, error) { return minMax(a, 1) })
	def("1+", 1, 1, func(ctx *Ctx, a []Value) (Value, error) { return numAdd(a[0], sexp.Fixnum(1)) })
	def("1-", 1, 1, func(ctx *Ctx, a []Value) (Value, error) { return numSub(a[0], sexp.Fixnum(1)) })
	def("add1", 1, 1, func(ctx *Ctx, a []Value) (Value, error) { return numAdd(a[0], sexp.Fixnum(1)) })
	def("sub1", 1, 1, func(ctx *Ctx, a []Value) (Value, error) { return numSub(a[0], sexp.Fixnum(1)) })
	def("expt", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		if x, ok := a[0].(sexp.Fixnum); ok {
			if y, ok := a[1].(sexp.Fixnum); ok && y >= 0 {
				var acc sexp.Fixnum = 1
				for i := sexp.Fixnum(0); i < y; i++ {
					acc *= x
				}
				return acc, nil
			}
		}
		x, okx := toFloat(a[0])
		y, oky := toFloat(a[1])
		if !okx || !oky {
			return nil, Errorf("expt: expected numbers")
		}
		return sexp.Flonum(math.Pow(x, y)), nil
	})
	def("sqrt", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		x, ok := toFloat(a[0])
		if !ok {
			return nil, Errorf("sqrt: expected number")
		}
		return sexp.Flonum(math.Sqrt(x)), nil
	})
	def("sin", 1, 1, flUnary(math.Sin))
	def("cos", 1, 1, flUnary(math.Cos))
	def("atan", 1, 1, flUnary(math.Atan))
	def("exact->inexact", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		x, ok := toFloat(a[0])
		if !ok {
			return nil, Errorf("exact->inexact: expected number")
		}
		return sexp.Flonum(x), nil
	})
	def("inexact->exact", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		switch t := a[0].(type) {
		case sexp.Fixnum:
			return t, nil
		case sexp.Flonum:
			return sexp.Fixnum(int64(t)), nil
		}
		return nil, Errorf("inexact->exact: expected number")
	})
	def("truncate", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		switch t := a[0].(type) {
		case sexp.Fixnum:
			return t, nil
		case sexp.Flonum:
			return sexp.Flonum(math.Trunc(float64(t))), nil
		}
		return nil, Errorf("truncate: expected number")
	})
	def("floor", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		switch t := a[0].(type) {
		case sexp.Fixnum:
			return t, nil
		case sexp.Flonum:
			return sexp.Flonum(math.Floor(float64(t))), nil
		}
		return nil, Errorf("floor: expected number")
	})
	cmp := func(name string, ok func(c int) bool) {
		def(name, 2, -1, func(ctx *Ctx, a []Value) (Value, error) {
			// Two-fixnum fast path (see "+"): skip the float promotion
			// dance when both operands are fixnums.
			if len(a) == 2 {
				if x, okx := a[0].(sexp.Fixnum); okx {
					if y, oky := a[1].(sexp.Fixnum); oky {
						c := 0
						if x < y {
							c = -1
						} else if x > y {
							c = 1
						}
						return boolV(ok(c)), nil
					}
				}
			}
			for i := 0; i+1 < len(a); i++ {
				c, err := numCompare(a[i], a[i+1])
				if err != nil {
					return nil, err
				}
				if c == 2 || !ok(c) {
					return boolV(false), nil
				}
			}
			return boolV(true), nil
		})
	}
	cmp("=", func(c int) bool { return c == 0 })
	cmp("<", func(c int) bool { return c == -1 })
	cmp(">", func(c int) bool { return c == 1 })
	cmp("<=", func(c int) bool { return c <= 0 })
	cmp(">=", func(c int) bool { return c >= 0 })
	def("logand", 2, 2, fxBinary("logand", func(x, y int64) int64 { return x & y }))
	def("logor", 2, 2, fxBinary("logor", func(x, y int64) int64 { return x | y }))
	def("logxor", 2, 2, fxBinary("logxor", func(x, y int64) int64 { return x ^ y }))
	def("ash", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		x, err := wantFixnum("ash", a[0])
		if err != nil {
			return nil, err
		}
		y, err := wantFixnum("ash", a[1])
		if err != nil {
			return nil, err
		}
		if y >= 0 {
			return x << uint(y), nil
		}
		return x >> uint(-y), nil
	})
}

func flUnary(f func(float64) float64) Fn {
	return func(ctx *Ctx, a []Value) (Value, error) {
		x, ok := toFloat(a[0])
		if !ok {
			return nil, Errorf("expected number, got %s", WriteString(a[0]))
		}
		return sexp.Flonum(f(x)), nil
	}
}

func fxBinary(name string, f func(x, y int64) int64) Fn {
	return func(ctx *Ctx, a []Value) (Value, error) {
		x, err := wantFixnum(name, a[0])
		if err != nil {
			return nil, err
		}
		y, err := wantFixnum(name, a[1])
		if err != nil {
			return nil, err
		}
		return sexp.Fixnum(f(int64(x), int64(y))), nil
	}
}

func divide(a, b Value) (Value, error) {
	if x, ok := a.(sexp.Fixnum); ok {
		if y, ok := b.(sexp.Fixnum); ok {
			if y == 0 {
				return nil, Errorf("/: division by zero")
			}
			if x%y == 0 {
				return x / y, nil
			}
			return sexp.Flonum(float64(x) / float64(y)), nil
		}
	}
	x, okx := toFloat(a)
	y, oky := toFloat(b)
	if !okx || !oky {
		return nil, Errorf("/: expected numbers")
	}
	return sexp.Flonum(x / y), nil
}

func minMax(a []Value, dir int) (Value, error) {
	best := a[0]
	for _, v := range a[1:] {
		c, err := numCompare(v, best)
		if err != nil {
			return nil, err
		}
		if c == dir {
			best = v
		}
	}
	return best, nil
}

func registerVectors() {
	def("vector", 0, -1, func(ctx *Ctx, a []Value) (Value, error) {
		items := make([]sexp.Datum, len(a))
		for i, v := range a {
			items[i] = asDatum(v)
		}
		return &sexp.Vector{Items: items}, nil
	})
	def("make-vector", 1, 2, func(ctx *Ctx, a []Value) (Value, error) {
		n, err := wantFixnum("make-vector", a[0])
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, Errorf("make-vector: negative length %d", n)
		}
		fill := Value(sexp.Fixnum(0))
		if len(a) == 2 {
			fill = a[1]
		}
		items := make([]sexp.Datum, n)
		for i := range items {
			items[i] = asDatum(fill)
		}
		return &sexp.Vector{Items: items}, nil
	})
	def("vector-length", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		v, err := wantVector("vector-length", a[0])
		if err != nil {
			return nil, err
		}
		return sexp.Fixnum(len(v.Items)), nil
	})
	def("vector-ref", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		v, err := wantVector("vector-ref", a[0])
		if err != nil {
			return nil, err
		}
		i, err := wantFixnum("vector-ref", a[1])
		if err != nil {
			return nil, err
		}
		if i < 0 || int(i) >= len(v.Items) {
			return nil, Errorf("vector-ref: index %d out of range for length %d", i, len(v.Items))
		}
		return Unwrap(v.Items[i]), nil
	})
	def("vector-set!", 3, 3, func(ctx *Ctx, a []Value) (Value, error) {
		v, err := wantVector("vector-set!", a[0])
		if err != nil {
			return nil, err
		}
		i, err := wantFixnum("vector-set!", a[1])
		if err != nil {
			return nil, err
		}
		if i < 0 || int(i) >= len(v.Items) {
			return nil, Errorf("vector-set!: index %d out of range for length %d", i, len(v.Items))
		}
		v.Items[i] = asDatum(a[2])
		return Unspecified, nil
	})
	def("vector-fill!", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		v, err := wantVector("vector-fill!", a[0])
		if err != nil {
			return nil, err
		}
		for i := range v.Items {
			v.Items[i] = asDatum(a[1])
		}
		return Unspecified, nil
	})
	def("list->vector", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		var items []sexp.Datum
		v := a[0]
		for {
			switch t := v.(type) {
			case sexp.Empty:
				return &sexp.Vector{Items: items}, nil
			case *sexp.Pair:
				items = append(items, asDatum(t.Car))
				v = t.Cdr
			default:
				return nil, Errorf("list->vector: improper list")
			}
		}
	})
	def("vector->list", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		v, err := wantVector("vector->list", a[0])
		if err != nil {
			return nil, err
		}
		var out sexp.Datum = sexp.Nil
		for i := len(v.Items) - 1; i >= 0; i-- {
			out = &sexp.Pair{Car: v.Items[i], Cdr: out}
		}
		return out, nil
	})
}

// asDatum stores an arbitrary runtime value into a datum slot (pairs and
// vectors hold sexp.Datum); non-datum values are wrapped.
func asDatum(v Value) sexp.Datum {
	if d, ok := v.(sexp.Datum); ok {
		return d
	}
	return opaque{v}
}

// opaque lets closures and boxes live inside pairs/vectors.
type opaque struct{ v Value }

func (opaque) Sexp() {}
func (o opaque) String() string {
	return WriteString(o.v)
}

// Unwrap exposes the value stored in a datum slot.
func Unwrap(d sexp.Datum) Value {
	if o, ok := d.(opaque); ok {
		return o.v
	}
	return d
}

func registerStrings() {
	def("string-length", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		s, err := wantString("string-length", a[0])
		if err != nil {
			return nil, err
		}
		return sexp.Fixnum(len(s)), nil
	})
	def("string-ref", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		s, err := wantString("string-ref", a[0])
		if err != nil {
			return nil, err
		}
		i, err := wantFixnum("string-ref", a[1])
		if err != nil {
			return nil, err
		}
		if i < 0 || int(i) >= len(s) {
			return nil, Errorf("string-ref: index %d out of range", i)
		}
		return sexp.Char(s[i]), nil
	})
	def("string-append", 0, -1, func(ctx *Ctx, a []Value) (Value, error) {
		var b strings.Builder
		for _, v := range a {
			s, err := wantString("string-append", v)
			if err != nil {
				return nil, err
			}
			b.WriteString(string(s))
		}
		return sexp.Str(b.String()), nil
	})
	def("substring", 3, 3, func(ctx *Ctx, a []Value) (Value, error) {
		s, err := wantString("substring", a[0])
		if err != nil {
			return nil, err
		}
		i, err := wantFixnum("substring", a[1])
		if err != nil {
			return nil, err
		}
		j, err := wantFixnum("substring", a[2])
		if err != nil {
			return nil, err
		}
		if i < 0 || j < i || int(j) > len(s) {
			return nil, Errorf("substring: bad range [%d,%d) for length %d", i, j, len(s))
		}
		return s[i:j], nil
	})
	def("string=?", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		x, err := wantString("string=?", a[0])
		if err != nil {
			return nil, err
		}
		y, err := wantString("string=?", a[1])
		if err != nil {
			return nil, err
		}
		return boolV(x == y), nil
	})
	def("string<?", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		x, err := wantString("string<?", a[0])
		if err != nil {
			return nil, err
		}
		y, err := wantString("string<?", a[1])
		if err != nil {
			return nil, err
		}
		return boolV(x < y), nil
	})
	def("symbol->string", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		s, ok := a[0].(sexp.Symbol)
		if !ok {
			return nil, Errorf("symbol->string: expected symbol")
		}
		return sexp.Str(s), nil
	})
	def("string->symbol", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		s, err := wantString("string->symbol", a[0])
		if err != nil {
			return nil, err
		}
		return sexp.Symbol(s), nil
	})
	def("number->string", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		switch t := a[0].(type) {
		case sexp.Fixnum, sexp.Flonum:
			return sexp.Str(t.(sexp.Datum).String()), nil
		}
		return nil, Errorf("number->string: expected number")
	})
	def("string->number", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		s, err := wantString("string->number", a[0])
		if err != nil {
			return nil, err
		}
		if n, err := strconv.ParseInt(string(s), 10, 64); err == nil {
			return sexp.Fixnum(n), nil
		}
		if f, err := strconv.ParseFloat(string(s), 64); err == nil {
			return sexp.Flonum(f), nil
		}
		return boolV(false), nil
	})
	def("string->list", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		s, err := wantString("string->list", a[0])
		if err != nil {
			return nil, err
		}
		var out sexp.Datum = sexp.Nil
		for i := len(s) - 1; i >= 0; i-- {
			out = &sexp.Pair{Car: sexp.Char(s[i]), Cdr: out}
		}
		return out, nil
	})
	def("list->string", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		var b strings.Builder
		v := a[0]
		for {
			switch t := v.(type) {
			case sexp.Empty:
				return sexp.Str(b.String()), nil
			case *sexp.Pair:
				c, ok := t.Car.(sexp.Char)
				if !ok {
					return nil, Errorf("list->string: expected char, got %s", WriteString(t.Car))
				}
				b.WriteRune(rune(c))
				v = t.Cdr
			default:
				return nil, Errorf("list->string: improper list")
			}
		}
	})
}

func registerChars() {
	def("char->integer", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		c, ok := a[0].(sexp.Char)
		if !ok {
			return nil, Errorf("char->integer: expected char")
		}
		return sexp.Fixnum(c), nil
	})
	def("integer->char", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		n, err := wantFixnum("integer->char", a[0])
		if err != nil {
			return nil, err
		}
		return sexp.Char(rune(n)), nil
	})
	charCmp := func(name string, ok func(c int) bool) {
		def(name, 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
			x, okx := a[0].(sexp.Char)
			y, oky := a[1].(sexp.Char)
			if !okx || !oky {
				return nil, Errorf("%s: expected chars", name)
			}
			c := 0
			if x < y {
				c = -1
			} else if x > y {
				c = 1
			}
			return boolV(ok(c)), nil
		})
	}
	charCmp("char=?", func(c int) bool { return c == 0 })
	charCmp("char<?", func(c int) bool { return c == -1 })
	charCmp("char>?", func(c int) bool { return c == 1 })
	charCmp("char<=?", func(c int) bool { return c <= 0 })
	charCmp("char>=?", func(c int) bool { return c >= 0 })
	def("char-upcase", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		c, ok := a[0].(sexp.Char)
		if !ok {
			return nil, Errorf("char-upcase: expected char")
		}
		if c >= 'a' && c <= 'z' {
			return c - 32, nil
		}
		return c, nil
	})
	def("char-alphabetic?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		c, ok := a[0].(sexp.Char)
		if !ok {
			return nil, Errorf("char-alphabetic?: expected char")
		}
		return boolV((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')), nil
	})
	def("char-numeric?", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		c, ok := a[0].(sexp.Char)
		if !ok {
			return nil, Errorf("char-numeric?: expected char")
		}
		return boolV(c >= '0' && c <= '9'), nil
	})
}

func registerBoxes() {
	def("box", 1, 1, func(ctx *Ctx, a []Value) (Value, error) { return &Box{V: a[0]}, nil })
	def("unbox", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		b, ok := a[0].(*Box)
		if !ok {
			return nil, Errorf("unbox: expected box, got %s", WriteString(a[0]))
		}
		return b.V, nil
	})
	def("set-box!", 2, 2, func(ctx *Ctx, a []Value) (Value, error) {
		b, ok := a[0].(*Box)
		if !ok {
			return nil, Errorf("set-box!: expected box, got %s", WriteString(a[0]))
		}
		b.V = a[1]
		return Unspecified, nil
	})
}

func registerIO() {
	def("display", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		if ctx.Out != nil {
			fmt.Fprint(ctx.Out, DisplayString(a[0]))
		}
		return Unspecified, nil
	})
	def("write", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		if ctx.Out != nil {
			fmt.Fprint(ctx.Out, WriteString(a[0]))
		}
		return Unspecified, nil
	})
	def("newline", 0, 0, func(ctx *Ctx, a []Value) (Value, error) {
		if ctx.Out != nil {
			fmt.Fprintln(ctx.Out)
		}
		return Unspecified, nil
	})
	def("write-char", 1, 1, func(ctx *Ctx, a []Value) (Value, error) {
		c, ok := a[0].(sexp.Char)
		if !ok {
			return nil, Errorf("write-char: expected char")
		}
		if ctx.Out != nil {
			fmt.Fprint(ctx.Out, string(rune(c)))
		}
		return Unspecified, nil
	})
}

func registerMisc() {
	def("error", 1, -1, func(ctx *Ctx, a []Value) (Value, error) {
		msg := DisplayString(a[0])
		return nil, &SchemeError{Msg: msg, Irritants: a[1:]}
	})
	def("void", 0, 0, func(ctx *Ctx, a []Value) (Value, error) { return Unspecified, nil })
	def("gensym", 0, 0, func(ctx *Ctx, a []Value) (Value, error) {
		ctx.gensymCnt++
		return sexp.Symbol(fmt.Sprintf("g%d", ctx.gensymCnt)), nil
	})
}
