package prim

// The tagged value representation. A Value is two machine words: a
// payload word w carrying a 3-bit tag plus a 61-bit immediate payload,
// and a pointer word p carrying the heap object (or kind token) for
// everything that does not fit in an immediate. Fixnums, booleans,
// characters, the empty list and VM return addresses are immediates:
// p == nil and the value lives entirely in w, so moving one between
// registers, stack slots and primitive arguments never allocates. The
// previous representation (Value = interface{}) heap-boxed every fixnum
// outside the Go runtime's tiny static cache, which made interface
// boxing the VM's dominant allocation site (DESIGN.md §12).
//
// Layout of w for immediates (p == nil):
//
//	bits 0..2   tag (tagNone, tagFixnum, tagBool, tagChar, tagEmpty, tagRet)
//	bits 3..63  payload, tag-specific:
//	              tagFixnum  signed 61-bit integer (int64(w) >> 3)
//	              tagBool    0 = #f, 1 = #t
//	              tagChar    signed rune (same encoding as fixnum)
//	              tagRet     pc in bits 3..32, fp in bits 33..62
//	              tagNone    unused (the zero Value: "no value here")
//	              tagEmpty   unused
//
// When p != nil, w is meaningful in exactly one case: flonums, where p
// is the shared flonum kind token and w holds math.Float64bits of the
// value — so flonums are unboxed too (no allocation, token is shared).
// Every other p is the value itself: sexp.Symbol and sexp.Str
// (interface-boxed once at construction, compared by value), *Pair,
// *Vector, *Box, *fixBox (a fixnum outside the 61-bit immediate range),
// and procedure objects (anything implementing Procedure).
//
// Encoding invariant: a fixnum inside the 61-bit range is ALWAYS the
// immediate form and one outside it is ALWAYS a *fixBox, so every int64
// has exactly one representation and Eqv on fixnums stays a word
// compare plus one boxed fallback.

import (
	"math"

	"repro/internal/sexp"
)

// Value is a runtime value in the tagged two-word representation. The
// zero Value is "no value" (an unset register, global or result); it is
// distinct from every Scheme value including #f and the empty list.
type Value struct {
	w uint64
	p any
}

// Immediate tags (the low three bits of w when p == nil).
const (
	tagNone uint64 = iota
	tagFixnum
	tagBool
	tagChar
	tagEmpty
	tagRet
)

const tagMask uint64 = 7

// FixMin and FixMax bound the immediate (unboxed) fixnum range. Values
// outside it are still exact integers — they carry the full int64 in a
// heap box — so arithmetic semantics are unchanged; only representation
// differs.
const (
	FixMin int64 = -1 << 60
	FixMax int64 = 1<<60 - 1
)

// fixBox is the boxed fallback for fixnums outside the immediate range.
type fixBox int64

// floKind is the shared kind token marking a flonum (p == floToken, w ==
// Float64bits). It is a distinct unexported type so no heap object can
// collide with it.
type floKind struct{}

var floToken any = &floKind{}

// Canonical immediates.
var (
	// True and False are the boolean immediates.
	True  = Value{w: 1<<3 | tagBool}
	False = Value{w: tagBool}
	// Empty is the empty list ().
	Empty = Value{w: tagEmpty}
)

// FixV encodes an int64 as a fixnum: immediate when it fits in 61 bits,
// boxed otherwise (see the encoding invariant above).
func FixV(n int64) Value {
	if n >= FixMin && n <= FixMax {
		return Value{w: uint64(n)<<3 | tagFixnum}
	}
	b := fixBox(n)
	return Value{p: &b}
}

// FloV encodes a float64 as an unboxed flonum.
func FloV(f float64) Value {
	return Value{w: math.Float64bits(f), p: floToken}
}

// BoolV encodes a boolean.
func BoolV(b bool) Value {
	if b {
		return True
	}
	return False
}

// CharV encodes a character.
func CharV(r rune) Value {
	return Value{w: uint64(int64(r))<<3 | tagChar}
}

// SymV encodes a symbol (interface-boxed once here; copies are free).
func SymV(s sexp.Symbol) Value { return Value{p: s} }

// StrV encodes a string.
func StrV(s sexp.Str) Value { return Value{p: s} }

// PairV wraps an existing pair cell.
func PairV(p *Pair) Value { return Value{p: p} }

// VecV wraps an existing vector.
func VecV(v *Vector) Value { return Value{p: v} }

// BoxV wraps an existing box cell.
func BoxV(b *Box) Value { return Value{p: b} }

// ObjV wraps a heap object (a procedure implementation, a sentinel). It
// must not be used for values that have a dedicated constructor.
func ObjV(o any) Value { return Value{p: o} }

// retPayloadBits is the width of each MakeRet component: pc and fp each
// get 30 bits of the 61-bit immediate payload.
const retPayloadBits = 30

// MakeRet packs a VM return point (code address, frame pointer) into an
// immediate. ok is false when either component is out of range; the VM
// falls back to a boxed representation then, so a hostile frame pointer
// cannot corrupt the packing.
func MakeRet(pc, fp int) (Value, bool) {
	if uint64(pc) >= 1<<retPayloadBits || uint64(fp) >= 1<<retPayloadBits {
		return Value{}, false
	}
	return Value{w: uint64(pc)<<3 | uint64(fp)<<(3+retPayloadBits) | tagRet}, true
}

// Ret unpacks an immediate return point.
func (v Value) Ret() (pc, fp int, ok bool) {
	if v.p != nil || v.w&tagMask != tagRet {
		return 0, 0, false
	}
	payload := v.w >> 3
	return int(payload & (1<<retPayloadBits - 1)), int(payload >> retPayloadBits), true
}

// IsNone reports the zero Value ("no value here").
func (v Value) IsNone() bool { return v.p == nil && v.w == 0 }

// Fixnum decodes a fixnum (immediate or boxed).
func (v Value) Fixnum() (int64, bool) {
	if v.p == nil {
		return int64(v.w) >> 3, v.w&tagMask == tagFixnum
	}
	return v.fixnumBoxed()
}

func (v Value) fixnumBoxed() (int64, bool) {
	if b, ok := v.p.(*fixBox); ok {
		return int64(*b), true
	}
	return 0, false
}

// BoxedFixnum reports whether v is a fixnum in the boxed (out-of-range)
// representation. Exposed for the round-trip tests of the encoding
// invariant.
func (v Value) BoxedFixnum() bool {
	_, ok := v.fixnumBoxed()
	return ok
}

// Flonum decodes a flonum.
func (v Value) Flonum() (float64, bool) {
	if v.p == floToken {
		return math.Float64frombits(v.w), true
	}
	return 0, false
}

// IsBool reports whether v is a boolean.
func (v Value) IsBool() bool { return v.p == nil && v.w&tagMask == tagBool }

// Bool decodes a boolean.
func (v Value) Bool() (bool, bool) {
	if !v.IsBool() {
		return false, false
	}
	return v.w>>3 != 0, true
}

// Char decodes a character.
func (v Value) Char() (rune, bool) {
	if v.p != nil || v.w&tagMask != tagChar {
		return 0, false
	}
	return rune(int64(v.w) >> 3), true
}

// IsEmpty reports the empty list.
func (v Value) IsEmpty() bool { return v.p == nil && v.w&tagMask == tagEmpty }

// Symbol decodes a symbol.
func (v Value) Symbol() (sexp.Symbol, bool) {
	s, ok := v.p.(sexp.Symbol)
	return s, ok
}

// Str decodes a string.
func (v Value) Str() (sexp.Str, bool) {
	s, ok := v.p.(sexp.Str)
	return s, ok
}

// Pair decodes a pair cell.
func (v Value) Pair() (*Pair, bool) {
	p, ok := v.p.(*Pair)
	return p, ok
}

// Vector decodes a vector.
func (v Value) Vector() (*Vector, bool) {
	p, ok := v.p.(*Vector)
	return p, ok
}

// Box decodes a box cell.
func (v Value) Box() (*Box, bool) {
	b, ok := v.p.(*Box)
	return b, ok
}

// Heap exposes the pointer word for kind dispatch on heap values (the
// VM's procedure-application switch). It is nil for every immediate.
func (v Value) Heap() any { return v.p }

// IsNumber reports fixnums (either form) and flonums.
func (v Value) IsNumber() bool {
	if v.p == nil {
		return v.w&tagMask == tagFixnum
	}
	if v.p == floToken {
		return true
	}
	_, wide := v.p.(*fixBox)
	return wide
}

// Pair is a cons cell over runtime values. Cells come from a machine's
// Arena on the VM hot path and from the ordinary heap elsewhere.
type Pair struct {
	Car Value
	Cdr Value
}

// Closure is a compiled procedure paired with its free-variable values.
// It is the VM's procedure representation (the vm package aliases it);
// it lives here so closure objects and their free-variable slices can
// come from the same per-machine Arena as pair cells. On the VM hot
// path both are slab-allocated via AllocClosure and recycled wholesale
// by Arena.Recycle; library callers with no arena get ordinary heap
// closures through the nil-receiver fallback.
type Closure struct {
	// Proc is the procedure index into the owning Program's Procs.
	Proc int
	// Free holds the captured free-variable values. For slab-allocated
	// closures it points into the arena's value-slice slab and is
	// invalidated by Recycle like every other arena value.
	Free []Value
}

// SchemeProcedure marks Closure as a procedure.
func (*Closure) SchemeProcedure() {}

// Vector is a runtime vector.
type Vector struct {
	Items []Value
}

// FromDatum converts reader/compile-time data (sexp.Datum) to a runtime
// Value, deep-copying pairs and vectors: each call yields structure the
// caller owns exclusively, which is what quoted-constant evaluation
// requires (fresh pairs per evaluation, matching the VM's const-copy
// semantics).
func FromDatum(d sexp.Datum) Value {
	switch t := d.(type) {
	case sexp.Fixnum:
		return FixV(int64(t))
	case sexp.Flonum:
		return FloV(float64(t))
	case sexp.Boolean:
		return BoolV(bool(t))
	case sexp.Char:
		return CharV(rune(t))
	case sexp.Symbol:
		return Value{p: t}
	case sexp.Str:
		return Value{p: t}
	case sexp.Empty:
		return Empty
	case *sexp.Pair:
		return Value{p: &Pair{Car: FromDatum(t.Car), Cdr: FromDatum(t.Cdr)}}
	case *sexp.Vector:
		items := make([]Value, len(t.Items))
		for i, it := range t.Items {
			items[i] = FromDatum(it)
		}
		return Value{p: &Vector{Items: items}}
	case nil:
		return Value{}
	default:
		panic("prim: FromDatum: unknown datum kind")
	}
}

// CopyTree deep-copies the arena-backed structure of v (pairs, vectors,
// and closures), drawing replacement cells from a when non-nil.
// Immediates and immutable heap values are returned as-is. With a nil
// arena this is the escape hatch of the Recycle contract: a caller that
// wants to retain a run's result past Machine.Recycle copies it off the
// arena first. Like the pair case, the closure case assumes acyclic
// structure; the VM's constant pool (the hot caller, via copyConst)
// never contains closures or cycles.
func CopyTree(a *Arena, v Value) Value {
	switch t := v.p.(type) {
	case *Pair:
		return Value{p: a.NewPair(CopyTree(a, t.Car), CopyTree(a, t.Cdr))}
	case *Vector:
		items := make([]Value, len(t.Items))
		for i, it := range t.Items {
			items[i] = CopyTree(a, it)
		}
		return Value{p: &Vector{Items: items}}
	case *Closure:
		c := a.AllocClosure(t.Proc, len(t.Free))
		for i, fv := range t.Free {
			c.Free[i] = CopyTree(a, fv)
		}
		return Value{p: c}
	default:
		return v
	}
}

// arenaChunk is the number of pair cells per arena slab: large enough
// that slab allocation is rare, small enough that a mostly-idle machine
// does not pin much memory.
const arenaChunk = 512

// closureChunk is the number of closure objects per closure slab, and
// valueChunk the number of Value cells per free-variable-slice slab.
// valueChunk also caps the slice capacity classes: a single closure
// capturing more than valueChunk free variables (no real compiler
// output comes close) falls back to a heap slice.
const (
	closureChunk = 256
	valueChunk   = 512
)

// Arena is a chunked free-list allocator for the VM's hot-path heap
// objects — pair cells, closure objects, and closure free-variable
// slices — owned by one machine (it is NOT safe for concurrent use).
// Each kind is handed out slab-by-slab, so an allocation costs a
// bump-pointer increment instead of a heap allocation; Recycle returns
// every slab of every kind to its free list for the owner's next run.
//
// Free-variable slices are carved from the value slab in power-of-two
// capacity classes (1, 2, 4, ..., valueChunk): the returned slice has
// the exact requested length but class-sized capacity, so slab packing
// stays regular regardless of the mix of closure arities a program
// creates. Requests beyond valueChunk fall back to the heap.
//
// Lifetime contract: every pair, closure, and free-variable slice
// allocated from an Arena remains valid until Recycle is called on it.
// Recycle invalidates ALL of them at once — including values reachable
// from a previous Run's result value or from global cells — so the
// owner must only recycle between runs whose values it no longer
// needs. A nil *Arena is valid and falls back to ordinary heap
// allocation (the reference interpreter runs with none, keeping the
// oracle independent of arena bugs).
type Arena struct {
	cur  []Pair
	n    int
	used [][]Pair
	free [][]Pair

	// The closure slab (same shape as the pair slab).
	ccur  []Closure
	cn    int
	cused [][]Closure
	cfree [][]Closure

	// The free-variable value-slice slab.
	vcur  []Value
	vn    int
	vused [][]Value
	vfree [][]Value
}

// NewPair allocates a cell. Safe on a nil receiver (plain heap).
func (a *Arena) NewPair(car, cdr Value) *Pair {
	if a == nil {
		return &Pair{Car: car, Cdr: cdr}
	}
	if a.n == len(a.cur) {
		a.grow()
	}
	p := &a.cur[a.n]
	a.n++
	p.Car, p.Cdr = car, cdr
	return p
}

func (a *Arena) grow() {
	if a.cur != nil {
		a.used = append(a.used, a.cur)
	}
	if k := len(a.free); k > 0 {
		a.cur = a.free[k-1]
		a.free = a.free[:k-1]
	} else {
		a.cur = make([]Pair, arenaChunk)
	}
	a.n = 0
}

// AllocClosure allocates a closure for procedure proc with nfree
// free-variable slots (zero Values), the closure object from the
// closure slab and its Free slice from the value slab. Safe on a nil
// receiver (plain heap closure and slice). A closure with no free
// variables gets a nil Free and touches only the closure slab.
func (a *Arena) AllocClosure(proc, nfree int) *Closure {
	if a == nil {
		c := &Closure{Proc: proc}
		if nfree > 0 {
			c.Free = make([]Value, nfree)
		}
		return c
	}
	if a.cn == len(a.ccur) {
		a.growClosures()
	}
	c := &a.ccur[a.cn]
	a.cn++
	c.Proc = proc
	c.Free = a.allocValues(nfree)
	return c
}

func (a *Arena) growClosures() {
	if a.ccur != nil {
		a.cused = append(a.cused, a.ccur)
	}
	if k := len(a.cfree); k > 0 {
		a.ccur = a.cfree[k-1]
		a.cfree = a.cfree[:k-1]
	} else {
		a.ccur = make([]Closure, closureChunk)
	}
	a.cn = 0
}

// sliceClass rounds a free-variable count up to its capacity class,
// the next power of two (see the Arena comment).
func sliceClass(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// allocValues carves an n-Value slice (class-sized capacity) from the
// value slab; n == 0 yields nil and past-valueChunk requests fall back
// to the heap.
func (a *Arena) allocValues(n int) []Value {
	if n == 0 {
		return nil
	}
	class := sliceClass(n)
	if class > valueChunk {
		return make([]Value, n)
	}
	if a.vn+class > len(a.vcur) {
		a.growValues()
	}
	s := a.vcur[a.vn : a.vn+n : a.vn+class]
	a.vn += class
	return s
}

func (a *Arena) growValues() {
	if a.vcur != nil {
		a.vused = append(a.vused, a.vcur)
	}
	if k := len(a.vfree); k > 0 {
		a.vcur = a.vfree[k-1]
		a.vfree = a.vfree[:k-1]
	} else {
		a.vcur = make([]Value, valueChunk)
	}
	a.vn = 0
}

// Recycle returns every slab of every kind to its free list for reuse,
// zeroing the cells so recycled slabs do not pin garbage. See the
// lifetime contract on Arena. Safe on a nil receiver (no-op).
func (a *Arena) Recycle() {
	if a == nil {
		return
	}
	if a.cur != nil {
		a.used = append(a.used, a.cur)
		a.cur, a.n = nil, 0
	}
	for _, c := range a.used {
		for i := range c {
			c[i] = Pair{}
		}
		a.free = append(a.free, c)
	}
	a.used = a.used[:0]

	if a.ccur != nil {
		a.cused = append(a.cused, a.ccur)
		a.ccur, a.cn = nil, 0
	}
	for _, c := range a.cused {
		for i := range c {
			c[i] = Closure{}
		}
		a.cfree = append(a.cfree, c)
	}
	a.cused = a.cused[:0]

	if a.vcur != nil {
		a.vused = append(a.vused, a.vcur)
		a.vcur, a.vn = nil, 0
	}
	for _, c := range a.vused {
		for i := range c {
			c[i] = Value{}
		}
		a.vfree = append(a.vfree, c)
	}
	a.vused = a.vused[:0]
}

// Live reports the number of pair cells handed out since the last
// Recycle (diagnostics and tests).
func (a *Arena) Live() int {
	if a == nil {
		return 0
	}
	return len(a.used)*arenaChunk + a.n
}

// LiveClosures reports the number of closure objects handed out since
// the last Recycle (diagnostics and tests).
func (a *Arena) LiveClosures() int {
	if a == nil {
		return 0
	}
	return len(a.cused)*closureChunk + a.cn
}

// LiveValueCells reports the number of value-slab cells (class-rounded)
// handed out since the last Recycle (diagnostics and tests).
func (a *Arena) LiveValueCells() int {
	if a == nil {
		return 0
	}
	return len(a.vused)*valueChunk + a.vn
}

// Cons allocates a pair from the context's arena (plain heap when the
// context has none).
func (ctx *Ctx) Cons(car, cdr Value) Value {
	return Value{p: ctx.Arena.NewPair(car, cdr)}
}

// AllocClosure allocates a closure from the context's arena (plain
// heap when the context has none). Like Cons, it is the only path by
// which engine code reaches the closure slab, so the ownership story
// stays "everything slab-backed flows through Ctx".
func (ctx *Ctx) AllocClosure(proc, nfree int) *Closure {
	return ctx.Arena.AllocClosure(proc, nfree)
}
