package prim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sexp"
)

// TestTagRoundTrip is the property-test battery for the tagged value
// encoding: every immediate kind must decode back to exactly the value
// it was encoded from, out-of-range fixnums must take (only) the boxed
// fallback, and no encoding may be confused for another tag.

func TestTagRoundTripFixnum(t *testing.T) {
	// Identity over the full int64 domain, randomized.
	roundTrip := func(n int64) bool {
		v := FixV(n)
		got, ok := v.Fixnum()
		if !ok || got != n {
			return false
		}
		// Encoding invariant: in-range is always immediate, out-of-range
		// is always boxed.
		inRange := n >= FixMin && n <= FixMax
		return v.BoxedFixnum() == !inRange
	}
	if err := quick.Check(roundTrip, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}

	// The boundaries the randomized sweep is unlikely to hit exactly.
	for _, n := range []int64{
		0, 1, -1, 42, -42,
		FixMin, FixMin + 1, FixMin - 1,
		FixMax, FixMax - 1, FixMax + 1,
		math.MinInt64, math.MinInt64 + 1,
		math.MaxInt64, math.MaxInt64 - 1,
	} {
		if !roundTrip(n) {
			v := FixV(n)
			got, ok := v.Fixnum()
			t.Errorf("FixV(%d): decode = (%d, %v), boxed = %v", n, got, ok, v.BoxedFixnum())
		}
	}
}

func TestTagRoundTripFixnumEqv(t *testing.T) {
	// Eqv must hold across fresh encodings in both representations.
	for _, n := range []int64{0, -7, FixMax, FixMax + 1, math.MinInt64} {
		if !Eqv(FixV(n), FixV(n)) {
			t.Errorf("Eqv(FixV(%d), FixV(%d)) = false", n, n)
		}
		if Eqv(FixV(n), FixV(n+1)) {
			t.Errorf("Eqv(FixV(%d), FixV(%d)) = true", n, n+1)
		}
	}
	// Immediate fixnums are word-comparable Go values.
	if FixV(5) != FixV(5) {
		t.Error("immediate fixnums should be == as Go values")
	}
}

func TestTagRoundTripChar(t *testing.T) {
	// Every Unicode code point (and then some: the full surrogate range
	// too, since Scheme chars are just code points to this VM).
	for r := rune(0); r <= 0x10FFFF; r++ {
		v := CharV(r)
		got, ok := v.Char()
		if !ok || got != r {
			t.Fatalf("CharV(%#x): decode = (%#x, %v)", r, got, ok)
		}
		if v.Heap() != nil {
			t.Fatalf("CharV(%#x) is not immediate", r)
		}
	}
	// Chars never read as fixnums or booleans.
	v := CharV('a')
	if _, ok := v.Fixnum(); ok {
		t.Error("char decoded as fixnum")
	}
	if v.IsBool() || v.IsEmpty() || v.IsNone() {
		t.Error("char confused with another immediate tag")
	}
}

func TestTagRoundTripBoolEmptyNone(t *testing.T) {
	for _, b := range []bool{false, true} {
		v := BoolV(b)
		got, ok := v.Bool()
		if !ok || got != b {
			t.Errorf("BoolV(%v): decode = (%v, %v)", b, got, ok)
		}
	}
	if True == False {
		t.Error("#t and #f encode identically")
	}
	if !Empty.IsEmpty() {
		t.Error("Empty does not report IsEmpty")
	}
	if !(Value{}).IsNone() {
		t.Error("zero Value does not report IsNone")
	}
	// The four no-payload immediates are pairwise distinct.
	distinct := []Value{True, False, Empty, {}}
	for i := range distinct {
		for j := i + 1; j < len(distinct); j++ {
			if distinct[i] == distinct[j] {
				t.Errorf("immediates %d and %d collide", i, j)
			}
		}
	}
	// #f is falsy; every other immediate (including the zero Value, which
	// mirrors the old untyped-nil behavior) is truthy.
	if Truthy(False) {
		t.Error("#f should be falsy")
	}
	for _, v := range []Value{True, Empty, {}, FixV(0), CharV(0)} {
		if !Truthy(v) {
			t.Errorf("%#v should be truthy", v)
		}
	}
}

func TestTagRoundTripFlonum(t *testing.T) {
	roundTrip := func(f float64) bool {
		got, ok := FloV(f).Flonum()
		return ok && math.Float64bits(got) == math.Float64bits(f)
	}
	if err := quick.Check(roundTrip, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
	for _, f := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(), math.MaxFloat64, math.SmallestNonzeroFloat64} {
		if !roundTrip(f) {
			t.Errorf("FloV(%v) does not round-trip", f)
		}
	}
	// Flonums are unboxed: no per-value heap object, just the shared token.
	if FloV(1.5).Heap() != FloV(2.5).Heap() {
		t.Error("flonums should share one kind token")
	}
	// Eqv semantics survive the bit-packing: NaN != NaN, -0.0 == 0.0.
	if Eqv(FloV(math.NaN()), FloV(math.NaN())) {
		t.Error("Eqv(NaN, NaN) should be false")
	}
	if !Eqv(FloV(0), FloV(math.Copysign(0, -1))) {
		t.Error("Eqv(0.0, -0.0) should be true")
	}
	// A flonum is not a fixnum even when w happens to carry a fixnum tag
	// pattern (p disambiguates).
	if _, ok := FloV(math.Float64frombits(uint64(9)<<3 | 1)).Fixnum(); ok {
		t.Error("flonum decoded as fixnum")
	}
}

func TestTagRoundTripRet(t *testing.T) {
	roundTrip := func(pc, fp uint32) bool {
		pcIn, fpIn := int(pc)&(1<<retPayloadBits-1), int(fp)&(1<<retPayloadBits-1)
		v, ok := MakeRet(pcIn, fpIn)
		if !ok {
			return false
		}
		pcOut, fpOut, ok := v.Ret()
		return ok && pcOut == pcIn && fpOut == fpIn
	}
	if err := quick.Check(roundTrip, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
	// Extremes of the packable range.
	lim := 1<<retPayloadBits - 1
	for _, c := range [][2]int{{0, 0}, {lim, 0}, {0, lim}, {lim, lim}} {
		v, ok := MakeRet(c[0], c[1])
		if !ok {
			t.Fatalf("MakeRet(%d, %d) refused an in-range point", c[0], c[1])
		}
		pc, fp, ok := v.Ret()
		if !ok || pc != c[0] || fp != c[1] {
			t.Errorf("MakeRet(%d, %d) round-trips to (%d, %d, %v)", c[0], c[1], pc, fp, ok)
		}
	}
	// Out-of-range components must be refused (the VM then boxes).
	for _, c := range [][2]int{{lim + 1, 0}, {0, lim + 1}, {-1, 0}, {0, -1}} {
		if _, ok := MakeRet(c[0], c[1]); ok {
			t.Errorf("MakeRet(%d, %d) should be out of range", c[0], c[1])
		}
	}
	// A return point is not a fixnum, boolean or char.
	v, _ := MakeRet(17, 3)
	if _, ok := v.Fixnum(); ok {
		t.Error("ret decoded as fixnum")
	}
	if v.IsBool() || v.IsEmpty() || v.IsNone() {
		t.Error("ret confused with another immediate tag")
	}
}

func TestTagHeapKindsDoNotDecodeAsImmediates(t *testing.T) {
	heapValues := []Value{
		SymV("sym"), StrV("str"),
		PairV(&Pair{Car: FixV(1), Cdr: Empty}),
		VecV(&Vector{Items: []Value{FixV(1)}}),
		BoxV(&Box{V: FixV(1)}),
		FixV(math.MaxInt64), // boxed fixnum: Heap() non-nil but IS a number
	}
	for _, v := range heapValues {
		if v.Heap() == nil {
			t.Errorf("%#v should carry a heap pointer", v)
		}
		if v.IsBool() || v.IsEmpty() || v.IsNone() {
			t.Errorf("%#v confused with a no-payload immediate", v)
		}
		if _, ok := v.Char(); ok {
			t.Errorf("%#v decoded as char", v)
		}
		if _, _, ok := v.Ret(); ok {
			t.Errorf("%#v decoded as ret", v)
		}
	}
	if _, ok := SymV("sym").Fixnum(); ok {
		t.Error("symbol decoded as fixnum")
	}
}

func TestFromDatumCopiesStructure(t *testing.T) {
	// FromDatum is exercised indirectly by every compile; here just pin
	// the canonical-encoding property at the conversion boundary.
	v := FixV(FixMax + 1)
	if !v.BoxedFixnum() {
		t.Fatal("expected boxed")
	}
	got, ok := v.Fixnum()
	if !ok || got != FixMax+1 {
		t.Errorf("boxed decode = (%d, %v)", got, ok)
	}
}

func TestArenaRecycle(t *testing.T) {
	a := &Arena{}
	// Fill more than one slab, remembering the cells.
	const n = arenaChunk + 17
	cells := make([]*Pair, n)
	for i := 0; i < n; i++ {
		cells[i] = a.NewPair(FixV(int64(i)), Empty)
	}
	if a.Live() != n {
		t.Errorf("Live = %d, want %d", a.Live(), n)
	}
	for i, c := range cells {
		if car, _ := c.Car.Fixnum(); car != int64(i) {
			t.Fatalf("cell %d corrupted before recycle", i)
		}
	}
	a.Recycle()
	if a.Live() != 0 {
		t.Errorf("Live after Recycle = %d", a.Live())
	}
	// Recycled cells are zeroed (no pinned garbage) ...
	for _, c := range cells {
		if !c.Car.IsNone() || !c.Cdr.IsNone() {
			t.Fatal("recycle did not zero cells")
		}
	}
	// ... and the slabs are reused: allocating again returns the same
	// backing cells instead of growing.
	reused := a.NewPair(FixV(-1), Empty)
	found := false
	for _, c := range cells {
		if c == reused {
			found = true
			break
		}
	}
	if !found {
		t.Error("recycled slab not reused by the next allocation")
	}

	// A nil arena falls back to plain heap allocation.
	var nilA *Arena
	p := nilA.NewPair(FixV(1), FixV(2))
	if car, _ := p.Car.Fixnum(); car != 1 {
		t.Error("nil-arena NewPair broken")
	}
	nilA.Recycle() // must not panic
	if nilA.Live() != 0 {
		t.Error("nil-arena Live should be 0")
	}
}

func TestCopyTreeUsesArena(t *testing.T) {
	a := &Arena{}
	orig := PairV(&Pair{Car: FixV(1), Cdr: PairV(&Pair{Car: FixV(2), Cdr: Empty})})
	cp := CopyTree(a, orig)
	if Eqv(orig, cp) {
		t.Error("copy should be a distinct pair")
	}
	if !Equal(orig, cp) {
		t.Error("copy should be structurally equal")
	}
	if a.Live() != 2 {
		t.Errorf("copy of 2 pairs drew %d arena cells", a.Live())
	}
	// Mutating the copy leaves the original untouched.
	cpp, _ := cp.Pair()
	cpp.Car = FixV(99)
	op, _ := orig.Pair()
	if car, _ := op.Car.Fixnum(); car != 1 {
		t.Error("copy aliases the original")
	}
}

// TestSymbolStringIntern pins the symbol->string intern cache: the
// boxed string for a symbol is built once per Ctx, repeat conversions
// hit the cache, the cache is capacity-bounded, and a nil Ctx still
// converts (uncached) rather than panicking.
func TestSymbolStringIntern(t *testing.T) {
	c := &Ctx{}
	v1 := c.SymbolString("alpha")
	if s, ok := v1.Str(); !ok || string(s) != "alpha" {
		t.Fatalf("SymbolString(alpha) = %v", v1)
	}
	if len(c.symStr) != 1 {
		t.Fatalf("cache size = %d, want 1", len(c.symStr))
	}
	v2 := c.SymbolString("alpha")
	if v1 != v2 {
		t.Errorf("repeat conversion not interned: %v vs %v", v1, v2)
	}
	if len(c.symStr) != 1 {
		t.Errorf("cache grew on repeat conversion: %d", len(c.symStr))
	}

	// Fill to the cap: conversions past it still work but stop caching.
	for i := 0; len(c.symStr) < symStrCap; i++ {
		c.SymbolString(sexp.Symbol(sexp.Str("s") + sexp.Str(rune('a'+i%26)) + sexp.Str(rune('0'+i/26%10)) + sexp.Str(rune('0'+i/260))))
	}
	over := c.SymbolString("overflow-sym")
	if s, ok := over.Str(); !ok || string(s) != "overflow-sym" {
		t.Fatalf("post-cap conversion = %v", over)
	}
	if len(c.symStr) != symStrCap {
		t.Errorf("cache exceeded cap: %d > %d", len(c.symStr), symStrCap)
	}

	var nilCtx *Ctx
	if s, ok := nilCtx.SymbolString("nilcase").Str(); !ok || string(s) != "nilcase" {
		t.Errorf("nil-Ctx conversion failed")
	}
}

// TestAllocClosureSlab pins the closure-slab basics: slab-backed
// closures carry the requested proc index and a zeroed Free slice of
// exactly the requested length, with capacity rounded to the
// power-of-two class.
func TestAllocClosureSlab(t *testing.T) {
	a := &Arena{}
	cl := a.AllocClosure(7, 3)
	if cl.Proc != 7 {
		t.Errorf("Proc = %d, want 7", cl.Proc)
	}
	if len(cl.Free) != 3 {
		t.Fatalf("len(Free) = %d, want 3", len(cl.Free))
	}
	if cap(cl.Free) != 4 {
		t.Errorf("cap(Free) = %d, want class 4", cap(cl.Free))
	}
	for i, v := range cl.Free {
		if !v.IsNone() {
			t.Errorf("Free[%d] not zeroed: %v", i, v)
		}
	}
	if a.LiveClosures() != 1 {
		t.Errorf("LiveClosures = %d, want 1", a.LiveClosures())
	}
	if a.LiveValueCells() != 4 {
		t.Errorf("LiveValueCells = %d, want 4 (class-rounded)", a.LiveValueCells())
	}
	// Two closures carved from one value slab must not alias.
	cl2 := a.AllocClosure(8, 2)
	cl.Free[2] = FixV(1)
	cl2.Free[0] = FixV(2)
	if v, _ := cl.Free[2].Fixnum(); v != 1 {
		t.Error("free slices of distinct closures alias")
	}
	// Appending past a slab slice's class capacity must reallocate
	// rather than scribble on the neighbor (the VM never appends; this
	// pins the three-index carve).
	grown := append(cl.Free, FixV(9))
	if &grown[0] == &cl.Free[0] && cap(cl.Free) != len(grown) {
		t.Error("append grew in place past the class capacity")
	}
}

// TestAllocClosureZeroFree: a closure with no free variables gets a nil
// Free and touches only the closure slab.
func TestAllocClosureZeroFree(t *testing.T) {
	a := &Arena{}
	cl := a.AllocClosure(3, 0)
	if cl.Proc != 3 || cl.Free != nil {
		t.Errorf("zero-free closure = %+v, want Proc 3, nil Free", cl)
	}
	if a.LiveValueCells() != 0 {
		t.Errorf("zero-free closure drew %d value cells", a.LiveValueCells())
	}
	var nilA *Arena
	hc := nilA.AllocClosure(3, 0)
	if hc.Proc != 3 || hc.Free != nil {
		t.Errorf("nil-arena zero-free closure = %+v", hc)
	}
}

// TestClosureSlabGrowthAndRecycle fills several slabs of both kinds,
// recycles, and proves the slabs are zeroed and reused — the same
// contract TestArenaRecycle pins for pairs.
func TestClosureSlabGrowthAndRecycle(t *testing.T) {
	a := &Arena{}
	const n = closureChunk + 33 // forces a second closure slab
	cls := make([]*Closure, n)
	for i := 0; i < n; i++ {
		// 5 free vars → class 8; n*8 cells forces several value slabs.
		cls[i] = a.AllocClosure(i, 5)
		for j := range cls[i].Free {
			cls[i].Free[j] = FixV(int64(i))
		}
	}
	if a.LiveClosures() != n {
		t.Errorf("LiveClosures = %d, want %d", a.LiveClosures(), n)
	}
	if a.LiveValueCells() < n*8 {
		t.Errorf("LiveValueCells = %d, want >= %d", a.LiveValueCells(), n*8)
	}
	for i, cl := range cls {
		if cl.Proc != i {
			t.Fatalf("closure %d corrupted before recycle", i)
		}
		if v, _ := cl.Free[4].Fixnum(); v != int64(i) {
			t.Fatalf("closure %d free slice corrupted before recycle", i)
		}
	}
	a.Recycle()
	if a.LiveClosures() != 0 || a.LiveValueCells() != 0 {
		t.Errorf("after Recycle: closures=%d cells=%d", a.LiveClosures(), a.LiveValueCells())
	}
	// Recycle zeroes both slabs: the old pointers see dead objects.
	for _, cl := range cls {
		if cl.Proc != 0 || cl.Free != nil {
			t.Fatal("recycle did not zero closure cells")
		}
	}
	// And the slabs are reused, not reallocated.
	reused := a.AllocClosure(99, 1)
	found := false
	for _, cl := range cls {
		if cl == reused {
			found = true
			break
		}
	}
	if !found {
		t.Error("recycled closure slab not reused by the next allocation")
	}
}

// TestAllocClosureOversized: a free-variable count past the value-slab
// capacity falls back to a heap slice but still works.
func TestAllocClosureOversized(t *testing.T) {
	a := &Arena{}
	cl := a.AllocClosure(1, valueChunk+1)
	if len(cl.Free) != valueChunk+1 {
		t.Fatalf("len(Free) = %d", len(cl.Free))
	}
	if a.LiveValueCells() != 0 {
		t.Errorf("oversized slice drew %d slab cells", a.LiveValueCells())
	}
	cl.Free[valueChunk] = FixV(5)
	a.Recycle() // must not panic with a heap Free in a slab closure
}

// TestSliceClass pins the capacity classes.
func TestSliceClass(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 9: 16, 100: 128, 512: 512}
	for n, want := range cases {
		if got := sliceClass(n); got != want {
			t.Errorf("sliceClass(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestCopyTreeCopiesClosures: CopyTree with a nil arena is the
// documented escape hatch for retaining a run's result past
// Machine.Recycle; with closures now slab-backed it must deep-copy
// them (object and Free slice) off the arena.
func TestCopyTreeCopiesClosures(t *testing.T) {
	a := &Arena{}
	inner := a.NewPair(FixV(1), Empty)
	cl := a.AllocClosure(4, 2)
	cl.Free[0] = PairV(inner)
	cl.Free[1] = FixV(8)
	orig := ObjV(cl)

	cp := CopyTree(nil, orig)
	ccl, ok := cp.Heap().(*Closure)
	if !ok {
		t.Fatalf("copy is not a closure: %v", cp)
	}
	if ccl == cl {
		t.Fatal("closure not copied")
	}
	if ccl.Proc != 4 || len(ccl.Free) != 2 {
		t.Fatalf("copy shape = %+v", ccl)
	}
	cpair, ok := ccl.Free[0].Pair()
	if !ok || cpair == inner {
		t.Fatal("captured pair not deep-copied")
	}

	// Recycling the arena must leave the copy intact.
	a.Recycle()
	if ccl.Proc != 4 {
		t.Error("heap copy damaged by Recycle")
	}
	if car, _ := cpair.Car.Fixnum(); car != 1 {
		t.Error("heap-copied pair damaged by Recycle")
	}
	if v, _ := ccl.Free[1].Fixnum(); v != 8 {
		t.Error("immediate free value damaged by Recycle")
	}
	// The original slab closure is dead, as the contract says.
	if cl.Proc != 0 || cl.Free != nil {
		t.Error("slab closure survived Recycle; zeroing broken")
	}
}
