package findings

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the round-trip golden file")

// goldenReport exercises every field of the envelope across the tools
// that emit it: a VM-code finding with a witness path, a source-level
// finding using the File/Line anchors, and the interprocedural and
// arena kinds introduced with internal/dataflow.
func goldenReport() Report {
	return Report{
		Tool: "interproc",
		Findings: []Finding{
			{
				Tool: "interproc", Kind: "cross-call-dead-restore", Proc: "f",
				PC: 394, Instr: "restore r2 <- frame[1]", Reg: 2, Slot: 1, CallPC: 392,
				Msg:     "restore of r2 after call to g: g provably preserves r2",
				Witness: []int{390, 392, 394},
			},
			{
				Tool: "interproc", Kind: "cross-call-redundant-save", Proc: "f",
				PC: 390, Instr: "save frame[1] <- r2", Reg: 2, Slot: 1, CallPC: 392,
				Msg: "save of r2 read only by cross-call-dead restores",
			},
			{
				Tool: "arena", Kind: "arena-stale-global-read", Proc: "main",
				PC: 12, Instr: "global r3 <- g", Reg: 3, Slot: 0, CallPC: -1,
				Msg: "global g may hold arena structure from a previous run",
			},
			{
				Tool: "srclint", Kind: "program-mutation",
				File: "internal/vm/instr.go", Line: 42,
				PC: -1, Reg: -1, Slot: -1, CallPC: -1,
				Msg: "assignment to vm.Program field outside the allowlist",
			},
		},
		Summary: map[string]any{"cross_dead_restores": 1, "cross_redundant_saves": 1},
	}
}

// TestReportGoldenRoundTrip pins the wire format: the envelope must
// marshal to the committed golden bytes, and unmarshal → marshal must
// reproduce them byte for byte (no field is dropped, renamed, or
// reordered by a round trip). lsrd's /v1 endpoints and the check.sh
// JSON gates all assume this stability.
func TestReportGoldenRoundTrip(t *testing.T) {
	var direct bytes.Buffer
	if err := WriteJSON(&direct, goldenReport()); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "report_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, direct.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(direct.Bytes(), want) {
		t.Errorf("marshal drifted from golden file\n got: %s\nwant: %s", direct.Bytes(), want)
	}

	var decoded Report
	if err := json.Unmarshal(want, &decoded); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := WriteJSON(&again, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), want) {
		t.Errorf("marshal → unmarshal → marshal is not byte-identical\n got: %s\nwant: %s", again.Bytes(), want)
	}
}

// TestFindingOmitEmpty pins which fields vanish when unset — consumers
// key on presence (File/Line only for source findings, Witness only
// when a path exists), so a change to the omitempty set is a wire
// format change.
func TestFindingOmitEmpty(t *testing.T) {
	b, err := json.Marshal(Finding{Tool: "lint", Kind: "dead-restore", PC: 3, Reg: 1, Slot: -1, CallPC: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"proc", "file", "line", "instr", "witness"} {
		if bytes.Contains(b, []byte(`"`+absent+`"`)) {
			t.Errorf("unset field %q serialized: %s", absent, b)
		}
	}
	for _, present := range []string{"tool", "kind", "pc", "reg", "slot", "call_pc", "msg"} {
		if !bytes.Contains(b, []byte(`"`+present+`"`)) {
			t.Errorf("required field %q missing: %s", present, b)
		}
	}
}
