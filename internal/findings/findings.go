// Package findings defines the structured finding format shared by the
// repository's static passes: the translation validator
// (internal/verify), the optimality analyzer (internal/analysis) and
// the interprocedural save/restore audit (internal/dataflow), which run
// over compiled VM code, and the source linter (internal/srclint),
// which runs over the repository's own Go source. All report the same
// shape — a kind plus the location the finding anchors to
// (pc/register/slot for VM-code passes, file/line for source passes) —
// so tooling (lsrc -json, lsrvet -json, CI gates) consumes one format.
package findings

import (
	"encoding/json"
	"io"
)

// Finding is one statically detected fact: an invariant violation in
// compiled code (tool "verify"), detected waste (tool "lint"),
// cross-call waste only a whole-program view can see (tool
// "interproc"), an arena-lifetime escape (tool "arena"), or a
// source-level contract violation (tool "srclint").
type Finding struct {
	// Tool identifies the producing pass: "verify", "lint",
	// "interproc", "arena" or "srclint".
	Tool string `json:"tool"`
	// Kind is the pass-specific finding kind (e.g. "missing-restore",
	// "redundant-save").
	Kind string `json:"kind"`
	// Proc names the enclosing procedure ("" if none).
	Proc string `json:"proc,omitempty"`
	// File and Line anchor source-level findings (tool "srclint") to
	// repository source; VM-code findings leave them zero.
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
	// PC is the offending instruction's address (-1 if none).
	PC int `json:"pc"`
	// Instr is the disassembled instruction at PC ("" if none).
	Instr string `json:"instr,omitempty"`
	// Reg is the register involved, Slot the frame or outgoing slot
	// involved (-1 if none).
	Reg  int `json:"reg"`
	Slot int `json:"slot"`
	// CallPC is the related call's address (-1 if none).
	CallPC int `json:"call_pc"`
	// Msg is a one-line human description.
	Msg string `json:"msg"`
	// Witness is a static control path from the procedure entry to the
	// point where the finding manifests.
	Witness []int `json:"witness,omitempty"`
}

// Report is the JSON envelope emitted by lsrc -json: the findings of
// one pass over one program, plus an optional pass-specific summary.
type Report struct {
	Tool     string    `json:"tool"`
	Findings []Finding `json:"findings"`
	// Summary carries pass-specific aggregate counts (the lint pass's
	// waste totals); nil for passes without one.
	Summary any `json:"summary,omitempty"`
}

// WriteJSON renders r as indented JSON followed by a newline.
func WriteJSON(w io.Writer, r Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
