// Package regset implements register sets as bit vectors, following the
// paper's §3.1: "Liveness information is collected using a bit vector for
// the registers, implemented as an n-bit integer. Thus, the union
// operation is logical or, the intersection operation is logical and, and
// creating the singleton {r} is a logical shift left of 1 for r bits."
//
// The allocator never needs more than 64 registers (the paper uses n on
// the order of a dozen), so a uint64 suffices.
package regset

import (
	"math/bits"
	"strconv"
	"strings"
)

// Set is a set of register numbers in [0, 64).
type Set uint64

// MaxRegisters is the largest register number (exclusive) representable.
const MaxRegisters = 64

// Empty is the empty register set.
const Empty Set = 0

// Single returns the singleton {r}.
func Single(r int) Set { return 1 << uint(r) }

// Of builds a set from the listed registers.
func Of(regs ...int) Set {
	var s Set
	for _, r := range regs {
		s |= Single(r)
	}
	return s
}

// Universe returns the set of all registers 0..n-1. It is the paper's R,
// "the set of all registers... the identity for intersection", used so
// that impossible control paths do not restrict intersections.
func Universe(n int) Set {
	if n >= MaxRegisters {
		return ^Set(0)
	}
	return (1 << uint(n)) - 1
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Minus returns s \ t.
func (s Set) Minus(t Set) Set { return s &^ t }

// Add returns s ∪ {r}.
func (s Set) Add(r int) Set { return s | Single(r) }

// Remove returns s \ {r}.
func (s Set) Remove(r int) Set { return s &^ Single(r) }

// Has reports whether r ∈ s.
func (s Set) Has(r int) bool { return s&Single(r) != 0 }

// IsEmpty reports whether s is empty.
func (s Set) IsEmpty() bool { return s == 0 }

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// Len returns |s|.
func (s Set) Len() int { return bits.OnesCount64(uint64(s)) }

// Regs returns the members of s in increasing order.
func (s Set) Regs() []int {
	out := make([]int, 0, s.Len())
	for v := uint64(s); v != 0; {
		r := bits.TrailingZeros64(v)
		out = append(out, r)
		v &^= 1 << uint(r)
	}
	return out
}

// ForEach calls f for each register in s in increasing order.
func (s Set) ForEach(f func(r int)) {
	for v := uint64(s); v != 0; {
		r := bits.TrailingZeros64(v)
		f(r)
		v &^= 1 << uint(r)
	}
}

// String renders the set as {r0 r3 ...} using raw register numbers.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(r int) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		b.WriteString("r")
		b.WriteString(strconv.Itoa(r))
	})
	b.WriteByte('}')
	return b.String()
}
