package regset

import (
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	s := Of(1, 3, 5)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if !s.Has(3) || s.Has(2) {
		t.Error("Has misbehaves")
	}
	s = s.Add(2).Remove(3)
	want := Of(1, 2, 5)
	if s != want {
		t.Errorf("got %s, want %s", s, want)
	}
}

func TestUniverse(t *testing.T) {
	if Universe(0) != Empty {
		t.Error("Universe(0) not empty")
	}
	u := Universe(8)
	if u.Len() != 8 || !u.Has(7) || u.Has(8) {
		t.Errorf("Universe(8) = %s", u)
	}
	if Universe(64).Len() != 64 {
		t.Error("Universe(64) wrong")
	}
}

func TestRegsRoundTrip(t *testing.T) {
	s := Of(0, 7, 31, 63)
	regs := s.Regs()
	if len(regs) != 4 || regs[0] != 0 || regs[3] != 63 {
		t.Errorf("Regs = %v", regs)
	}
	if Of(regs...) != s {
		t.Error("Of(Regs(s)) != s")
	}
}

func TestString(t *testing.T) {
	if got := Of(2, 4).String(); got != "{r2 r4}" {
		t.Errorf("String = %q", got)
	}
	if got := Empty.String(); got != "{}" {
		t.Errorf("String(empty) = %q", got)
	}
}

// Property: the boolean algebra laws that the save-placement algorithms
// rely on hold for Set.
func TestAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}

	// De Morgan-ish: (a ∪ b) ∩ c == (a ∩ c) ∪ (b ∩ c)
	distributes := func(a, b, c Set) bool {
		return a.Union(b).Intersect(c) == a.Intersect(c).Union(b.Intersect(c))
	}
	if err := quick.Check(distributes, cfg); err != nil {
		t.Error(err)
	}

	// R is the identity for intersection within the universe.
	identity := func(a uint8) bool {
		s := Set(a) // subset of Universe(8)
		return s.Intersect(Universe(8)) == s
	}
	if err := quick.Check(identity, cfg); err != nil {
		t.Error(err)
	}

	// Minus then union restores a superset relationship.
	minus := func(a, b Set) bool {
		return a.Minus(b).Intersect(b).IsEmpty() && a.Minus(b).Union(a.Intersect(b)) == a
	}
	if err := quick.Check(minus, cfg); err != nil {
		t.Error(err)
	}

	// Subset relations.
	subset := func(a, b Set) bool {
		return a.Intersect(b).SubsetOf(a) && a.SubsetOf(a.Union(b))
	}
	if err := quick.Check(subset, cfg); err != nil {
		t.Error(err)
	}
}

func TestForEachOrder(t *testing.T) {
	var seen []int
	Of(9, 1, 4).ForEach(func(r int) { seen = append(seen, r) })
	if len(seen) != 3 || seen[0] != 1 || seen[1] != 4 || seen[2] != 9 {
		t.Errorf("ForEach order = %v", seen)
	}
}
