package regset

import (
	"testing"
	"testing/quick"
)

// The set is a single 64-bit word; register numbers at and past the
// word boundary must degrade predictably (out-of-range members simply
// do not exist — Go shifts by >= 64 bits yield zero), because the
// allocator sizes its universe from the machine configuration and the
// analyses trust Universe/Single to agree about the boundary.
func TestWordBoundary(t *testing.T) {
	// Index 63 is the last representable register.
	if s := Single(63); s.IsEmpty() || !s.Has(63) || s.Len() != 1 {
		t.Errorf("Single(63) = %s", s)
	}
	if got := Of(0, 63).Regs(); len(got) != 2 || got[1] != 63 {
		t.Errorf("Of(0,63).Regs() = %v", got)
	}

	// Indices 64 and 65 are out of range: their singletons are empty,
	// adding them is a no-op, and membership is always false.
	for _, r := range []int{64, 65} {
		if s := Single(r); !s.IsEmpty() {
			t.Errorf("Single(%d) = %s, want empty", r, s)
		}
		if s := Of(1, 2).Add(r); s != Of(1, 2) {
			t.Errorf("Add(%d) changed the set: %s", r, s)
		}
		if Empty.Has(r) || Universe(64).Has(r) {
			t.Errorf("Has(%d) true", r)
		}
		if s := Universe(64).Remove(r); s != Universe(64) {
			t.Errorf("Remove(%d) changed the universe: %s", r, s)
		}
	}

	// Universe saturates at the word: 64, 65 and beyond are all ^0.
	full := ^Set(0)
	for _, n := range []int{64, 65, 1000} {
		if Universe(n) != full {
			t.Errorf("Universe(%d) = %s, want full word", n, Universe(n))
		}
	}
	if Universe(63) == full || Universe(63).Len() != 63 {
		t.Errorf("Universe(63) = %v members", Universe(63).Len())
	}
}

func TestEmptySetIteration(t *testing.T) {
	Empty.ForEach(func(r int) { t.Errorf("ForEach on empty visited r%d", r) })
	if regs := Empty.Regs(); len(regs) != 0 {
		t.Errorf("Empty.Regs() = %v", regs)
	}
	if Empty.Len() != 0 || !Empty.IsEmpty() {
		t.Error("Empty is not empty")
	}
	if Of() != Empty {
		t.Error("Of() != Empty")
	}
}

// Property: identities at arbitrary sets, including ones with bit 63
// set (testing/quick generates full-range uint64 values for Set).
func TestBoundaryAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 1000}

	// Of(Regs(s)) round-trips every set.
	roundTrip := func(s Set) bool { return Of(s.Regs()...) == s }
	if err := quick.Check(roundTrip, cfg); err != nil {
		t.Error(err)
	}

	// Len agrees with iteration.
	lenAgrees := func(s Set) bool {
		n := 0
		s.ForEach(func(int) { n++ })
		return n == s.Len() && n == len(s.Regs())
	}
	if err := quick.Check(lenAgrees, cfg); err != nil {
		t.Error(err)
	}

	// De Morgan within the full-word universe: ¬(a ∪ b) == ¬a ∩ ¬b.
	u := ^Set(0)
	deMorgan := func(a, b Set) bool {
		return u.Minus(a.Union(b)) == u.Minus(a).Intersect(u.Minus(b))
	}
	if err := quick.Check(deMorgan, cfg); err != nil {
		t.Error(err)
	}

	// Union/intersection are idempotent, commutative and associative.
	lattice := func(a, b, c Set) bool {
		return a.Union(a) == a && a.Intersect(a) == a &&
			a.Union(b) == b.Union(a) && a.Intersect(b) == b.Intersect(a) &&
			a.Union(b.Union(c)) == a.Union(b).Union(c) &&
			a.Intersect(b.Intersect(c)) == a.Intersect(b).Intersect(c)
	}
	if err := quick.Check(lattice, cfg); err != nil {
		t.Error(err)
	}

	// SubsetOf is the lattice order: s ⊆ t iff s ∪ t == t.
	order := func(a, b Set) bool {
		return a.SubsetOf(b) == (a.Union(b) == b)
	}
	if err := quick.Check(order, cfg); err != nil {
		t.Error(err)
	}
}
