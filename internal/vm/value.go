package vm

import "repro/internal/prim"

// Closure is a compiled procedure paired with its free-variable values.
// It is an alias for prim.Closure: the type lives in prim so closure
// objects and their Free slices can come from the per-machine
// prim.Arena slabs (via Ctx.AllocClosure) under the same Recycle
// lifetime contract as pair cells. Engine code must allocate closures
// through m.ctx.AllocClosure, never with a literal — the alloc-baseline
// gate (lsrvet) fails on a reintroduced &Closure{...} heap site.
type Closure = prim.Closure

// PrimValue is a primitive as a first-class value (a global cell's
// initial content).
type PrimValue struct{ Def *prim.Def }

// SchemeProcedure marks PrimValue as a procedure.
func (*PrimValue) SchemeProcedure() {}

// RetAddr is a return point: the code address to continue at and the
// caller's frame pointer. It lives in the ret register and in save
// slots like any other value. Return points are normally packed into an
// immediate prim.Value (prim.MakeRet) and never allocate; this boxed
// form is the fallback for pc/fp values outside the packable range.
type RetAddr struct {
	PC int
	FP int
}

// Cont is a captured continuation: a snapshot of the stack up to the
// capturing frame, resumed by jumping to the capture site's return
// point. Continuations are fully re-entrant (the stack is copied both
// ways).
type Cont struct {
	Stack    []prim.Value
	FP       int
	ResumePC int
	// CSRegs snapshots the callee-save registers at capture; a resumed
	// continuation's code may hold variables there.
	CSRegs []prim.Value
	// Acts snapshots the activation side-stack so the Table 2
	// classification stays consistent across continuation invocation.
	Acts []actEntry
}

// SchemeProcedure marks Cont as a procedure.
func (*Cont) SchemeProcedure() {}

// poison is the sentinel stored in caller-save registers after a call
// when ValidateRestores is on; reading it traps, catching any missing
// restore.
type poison struct{}

// poisonVal is the shared boxed poison sentinel: poisoning sweeps run
// per call boundary, so they store one pre-boxed value instead of
// re-boxing at every register (the sentinel is stateless, so sharing
// is invisible).
var poisonVal = prim.ObjV(poison{})

// actEntry tracks one activation for the dynamic call-graph statistics.
type actEntry struct {
	proc     int32
	madeCall bool
}
