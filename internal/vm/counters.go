package vm

import (
	"fmt"
	"strings"
)

// Counters accumulates the measurements the paper's evaluation needs:
// stack references (Table 3), cycle counts under the cost model (the
// "performance" column), and the activation classification of Table 2.
type Counters struct {
	// Instructions executed.
	Instructions int64
	// Cycles under the cost model (includes memory penalties and
	// stalls).
	Cycles int64
	// StallCycles is the load-use stall portion of Cycles.
	StallCycles int64

	// StackReads/StackWrites count every frame-slot access; ByKind
	// breaks them down by purpose.
	StackReads   int64
	StackWrites  int64
	ReadsByKind  [NumSlotKinds]int64
	WritesByKind [NumSlotKinds]int64

	// Calls counts non-tail procedure calls (OpCall/OpCallCC, including
	// primitives and continuations invoked as values); TailCalls counts
	// tail transfers; PrimInstrs counts open-coded primitive
	// applications (not calls).
	Calls      int64
	TailCalls  int64
	PrimInstrs int64

	// Activations is the total number of procedure activations
	// (non-tail calls plus tail transfers).
	Activations int64

	// Table 2 classification, counted when an activation finishes:
	SyntacticLeaves      int64 // procedures with no calls in their body
	NonSyntacticLeaves   int64 // had calls in the body but made none
	NonSyntacticInternal int64 // had call-free paths but made calls
	SyntacticInternal    int64 // no call-free paths (always call)

	// Branches and mispredictions (§6 extension). PredictedBranches
	// counts executions of statically annotated branches.
	Branches          int64
	PredictedBranches int64
	Mispredicts       int64

	// PerProc[i] aggregates per-procedure activation statistics.
	PerProc []ProcCounters
}

// ProcCounters is the per-procedure activation breakdown.
type ProcCounters struct {
	Name        string
	Activations int64
	MadeCalls   int64 // activations that performed at least one call
}

// StackRefs is total stack traffic, the paper's headline metric.
func (c *Counters) StackRefs() int64 { return c.StackReads + c.StackWrites }

// ClassifiedActivations is the number of activations that ran to
// completion and were classified.
func (c *Counters) ClassifiedActivations() int64 {
	return c.SyntacticLeaves + c.NonSyntacticLeaves + c.NonSyntacticInternal + c.SyntacticInternal
}

// EffectiveLeaves is the paper's headline statistic: activations that
// made no calls at run time.
func (c *Counters) EffectiveLeaves() int64 {
	return c.SyntacticLeaves + c.NonSyntacticLeaves
}

// Breakdown returns the Table 2 fractions (syntactic leaf,
// non-syntactic leaf, non-syntactic internal, syntactic internal).
func (c *Counters) Breakdown() (sl, nsl, nsi, si float64) {
	total := float64(c.ClassifiedActivations())
	if total == 0 {
		return 0, 0, 0, 0
	}
	return float64(c.SyntacticLeaves) / total,
		float64(c.NonSyntacticLeaves) / total,
		float64(c.NonSyntacticInternal) / total,
		float64(c.SyntacticInternal) / total
}

// String renders a human-readable summary.
func (c *Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instructions: %d\n", c.Instructions)
	fmt.Fprintf(&b, "cycles:       %d (stalls %d)\n", c.Cycles, c.StallCycles)
	fmt.Fprintf(&b, "stack refs:   %d (%d reads, %d writes)\n", c.StackRefs(), c.StackReads, c.StackWrites)
	for k := SlotKind(0); k < 6; k++ {
		r, w := c.ReadsByKind[k], c.WritesByKind[k]
		if r+w > 0 {
			fmt.Fprintf(&b, "  %-8s %d reads, %d writes\n", k.String()+":", r, w)
		}
	}
	fmt.Fprintf(&b, "calls:        %d non-tail, %d tail\n", c.Calls, c.TailCalls)
	sl, nsl, nsi, si := c.Breakdown()
	fmt.Fprintf(&b, "activations:  %d (%.1f%% syn leaf, %.1f%% eff leaf, %.1f%% non-syn internal, %.1f%% syn internal)\n",
		c.Activations, sl*100, (sl+nsl)*100, nsi*100, si*100)
	if c.Branches > 0 && c.Mispredicts > 0 {
		fmt.Fprintf(&b, "branches:     %d (%d mispredicted)\n", c.Branches, c.Mispredicts)
	}
	return b.String()
}
