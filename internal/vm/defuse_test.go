package vm

import (
	"testing"

	"repro/internal/regset"
)

// testConfig exercises every register class, including callee-saves.
func testConfig() Config {
	return Config{ArgRegs: 2, UserRegs: 2, ScratchRegs: 2, CalleeSaveRegs: 2}
}

// TestInstrEffectsExhaustive asserts the def/use decoder and the static
// cost model cover every opcode: adding an Op without extending
// InstrEffects or StaticCost fails here.
func TestInstrEffectsExhaustive(t *testing.T) {
	cfg := testConfig()
	cm := DefaultCostModel()
	for op := 0; op < NumOps; op++ {
		in := Instr{Op: Op(op), A: 3, B: 0, C: 0}
		if _, ok := in.InstrEffects(cfg); !ok {
			t.Errorf("InstrEffects does not cover opcode %d (%v)", op, Op(op))
		}
		if c, ok := in.StaticCost(cm); !ok {
			t.Errorf("StaticCost does not cover opcode %d (%v)", op, Op(op))
		} else if c < 1 {
			t.Errorf("StaticCost(%v) = %d, want at least the dispatch cycle", Op(op), c)
		}
	}
	if _, ok := (Instr{Op: Op(NumOps)}).InstrEffects(cfg); ok {
		t.Errorf("InstrEffects accepted out-of-range opcode %d; bump NumOps?", NumOps)
	}
	if _, ok := (Instr{Op: Op(NumOps)}).StaticCost(cm); ok {
		t.Errorf("StaticCost accepted out-of-range opcode %d; bump NumOps?", NumOps)
	}

	// Slot and memory traffic is weighted; pure register work is not.
	if c, _ := (Instr{Op: OpLoadSlot}).StaticCost(cm); c != 1+cm.MemPenalty {
		t.Errorf("load-slot cost = %d, want %d", c, 1+cm.MemPenalty)
	}
	if c, _ := (Instr{Op: OpPrim, Regs: []int{3, ^1}}).StaticCost(cm); c != 1+cm.MemPenalty+cm.LoadLatency {
		t.Errorf("prim-with-slot-operand cost = %d, want %d", c, 1+cm.MemPenalty+cm.LoadLatency)
	}
	if c, _ := (Instr{Op: OpMove}).StaticCost(cm); c != 1 {
		t.Errorf("move cost = %d, want 1", c)
	}
}

func TestInstrEffectsDecoding(t *testing.T) {
	cfg := testConfig()

	// A two-operand prim with one register and one slot operand.
	e, ok := (Instr{Op: OpPrim, A: 4, Regs: []int{5, ^2}}).InstrEffects(cfg)
	if !ok {
		t.Fatal("prim not decoded")
	}
	if !e.Uses.Has(5) || e.Uses.Len() != 1 {
		t.Errorf("prim uses = %v, want {r5}", e.Uses)
	}
	if !e.Defs.Has(4) {
		t.Errorf("prim defs = %v, want {r4}", e.Defs)
	}
	if len(e.ReadSlots) != 1 || e.ReadSlots[0] != 2 {
		t.Errorf("prim read slots = %v, want [2]", e.ReadSlots)
	}

	// A call with one stack argument: reads cp + both arg registers,
	// defines rv, clobbers the caller-save set minus rv.
	e, _ = (Instr{Op: OpCall, A: 3, B: 8}).InstrEffects(cfg)
	want := regset.Of(RegCP, cfg.ArgReg(0), cfg.ArgReg(1))
	if e.Uses != want {
		t.Errorf("call uses = %v, want %v", e.Uses, want)
	}
	if len(e.ReadOuts) != 1 || e.ReadOuts[0] != 0 {
		t.Errorf("call out-slot reads = %v, want [0]", e.ReadOuts)
	}
	if !e.Defs.Has(RegRV) || !e.IsCall {
		t.Errorf("call defs/IsCall = %v/%v", e.Defs, e.IsCall)
	}
	if e.Clobbers != CallClobbers(cfg) {
		t.Errorf("call clobbers = %v, want %v", e.Clobbers, CallClobbers(cfg))
	}
	if e.Clobbers.Has(RegRV) {
		t.Error("call clobbers must exclude rv")
	}
	for i := 0; i < cfg.CalleeSaveRegs; i++ {
		if e.Clobbers.Has(cfg.CalleeSaveReg(i)) {
			t.Errorf("call clobbers include callee-save r%d", cfg.CalleeSaveReg(i))
		}
	}

	// A tail call's stack arguments live in the caller's own frame.
	e, _ = (Instr{Op: OpTailCall, A: 4}).InstrEffects(cfg)
	if len(e.ReadSlots) != 2 || e.ReadSlots[0] != 0 || e.ReadSlots[1] != 1 {
		t.Errorf("tail-call slot reads = %v, want [0 1]", e.ReadSlots)
	}
	if !e.Uses.Has(RegRet) || !e.IsExit || e.FallsThrough {
		t.Errorf("tail call uses/exit/fallthrough = %v/%v/%v", e.Uses, e.IsExit, e.FallsThrough)
	}

	// Branches expose both edges; jumps only one.
	e, _ = (Instr{Op: OpBranchFalse, A: 6, B: 42}).InstrEffects(cfg)
	if e.Jump != 42 || !e.FallsThrough {
		t.Errorf("branch jump/fallthrough = %d/%v", e.Jump, e.FallsThrough)
	}
	e, _ = (Instr{Op: OpJump, A: 7}).InstrEffects(cfg)
	if e.Jump != 7 || e.FallsThrough {
		t.Errorf("jump jump/fallthrough = %d/%v", e.Jump, e.FallsThrough)
	}

	// Slot-operand encoding round-trips.
	if !IsSlotOperand(^3) || SlotOperand(^3) != 3 || IsSlotOperand(3) {
		t.Error("slot operand encoding broken")
	}

	// Without callee-saves every register above rv is clobbered.
	flat := Config{ArgRegs: 2, UserRegs: 2, ScratchRegs: 2}
	if got := CallClobbers(flat).Len(); got != flat.NumRegs()-1 {
		t.Errorf("flat clobbers = %d regs, want %d", got, flat.NumRegs()-1)
	}
}
