// Differential test between the two execution engines. The threaded
// pre-decoded engine (EngineThreaded) must be observably identical to
// the reference switch loop (EngineSwitch): same result value, same
// error (including the exact pc inside FuelError and RuntimeError), and
// byte-for-byte identical Counters. This is the guardrail that lets the
// threaded engine fuse superinstructions and specialize primitives
// without ever changing the simulated cost-model outputs the paper's
// tables are built from.
//
// It lives in package vm_test because driving real programs through
// both engines needs the compiler, which depends on package vm.
package vm_test

import (
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/prim"
	"repro/internal/vm"
)

// equivConfigs are the compiler configurations the differential test
// runs under: the paper configuration (lazy saves), the zero-register
// baseline (stack operands everywhere, exercising the readOperand slow
// paths of the specialized arms), and the two alternative save
// strategies.
func equivConfigs() map[string]compiler.Options {
	return map[string]compiler.Options{
		"paper":    bench.PaperOptions(),
		"baseline": bench.BaselineOptions(),
		"early":    bench.StrategyOptions(codegen.SaveEarly),
		"late":     bench.StrategyOptions(codegen.SaveLate),
	}
}

// runEngine compiles nothing — it executes an already-compiled program
// on a fresh machine with the given engine and settings and returns the
// written result (or ""), the error, and the counters.
func runEngine(p *vm.Program, eng vm.EngineKind, mode vm.CounterMode, fuel int64, validate bool) (string, error, *vm.Counters) {
	m := vm.New(p, io.Discard)
	m.Engine = eng
	m.Counting = mode
	m.MaxSteps = fuel
	m.ValidateRestores = validate
	v, err := m.Run()
	res := ""
	if err == nil {
		res = prim.WriteString(v)
	}
	return res, err, &m.Counters
}

// TestEngineEquivalence runs the benchmark suite under several compiler
// configurations on both engines and requires identical results and
// identical full counter vectors. Short mode uses the quick suite; full
// mode runs every program.
func TestEngineEquivalence(t *testing.T) {
	progs := bench.All()
	if testing.Short() {
		progs = quickPrograms(t)
	}
	for cfgName, opts := range equivConfigs() {
		for _, p := range progs {
			c, err := compiler.Compile(p.Source, opts)
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", cfgName, p.Name, err)
			}
			resT, errT, cntT := runEngine(c.Program, vm.EngineThreaded, vm.CountFull, bench.BenchFuel, false)
			resS, errS, cntS := runEngine(c.Program, vm.EngineSwitch, vm.CountFull, bench.BenchFuel, false)
			if errT != nil || errS != nil {
				t.Fatalf("%s/%s: run errors threaded=%v switch=%v", cfgName, p.Name, errT, errS)
			}
			if resT != resS {
				t.Errorf("%s/%s: result mismatch threaded=%s switch=%s", cfgName, p.Name, resT, resS)
			}
			if p.Expect != "" && resT != p.Expect {
				t.Errorf("%s/%s: result %s, want %s", cfgName, p.Name, resT, p.Expect)
			}
			if !reflect.DeepEqual(cntT, cntS) {
				t.Errorf("%s/%s: counter mismatch\nthreaded: %+v\nswitch:   %+v", cfgName, p.Name, cntT, cntS)
			}
			// The counters-off fast path must report the identical cost
			// model outputs, on both engines.
			for _, eng := range []vm.EngineKind{vm.EngineThreaded, vm.EngineSwitch} {
				_, errE, cntE := runEngine(c.Program, eng, vm.CountEssential, bench.BenchFuel, false)
				if errE != nil {
					t.Fatalf("%s/%s: essential run: %v", cfgName, p.Name, errE)
				}
				checkEssential(t, cfgName+"/"+p.Name, cntE, cntT)
			}
		}
	}
}

// quickPrograms is the -short subset: small programs that still cover
// every fused superinstruction shape and specialized primitive.
func quickPrograms(t *testing.T) []*bench.Program {
	var out []*bench.Program
	for _, name := range []string{"tak", "cpstak", "deriv", "destruct"} {
		p, err := bench.ByName(name)
		if err != nil {
			t.Fatalf("quick subset: %v", err)
		}
		out = append(out, p)
	}
	return out
}

// checkEssential verifies the essential counter subset (the cost-model
// outputs) against a full-mode reference.
func checkEssential(t *testing.T, label string, got, want *vm.Counters) {
	t.Helper()
	if got.Instructions != want.Instructions || got.Cycles != want.Cycles ||
		got.StallCycles != want.StallCycles ||
		got.StackReads != want.StackReads || got.StackWrites != want.StackWrites {
		t.Errorf("%s: essential counters diverge from full mode\nessential: %+v\nfull:      %+v", label, got, want)
	}
}

// TestEngineEquivalenceFuel sweeps the step budget so execution is cut
// off at every early pc — including inside fused runs and fused pairs —
// and requires both engines to stop with the same *FuelError (same
// budget, same pc) and identical counters at the point of exhaustion.
func TestEngineEquivalenceFuel(t *testing.T) {
	for cfgName, opts := range equivConfigs() {
		p, err := bench.ByName("tak")
		if err != nil {
			t.Fatal(err)
		}
		c, err := compiler.Compile(p.Source, opts)
		if err != nil {
			t.Fatalf("%s: compile: %v", cfgName, err)
		}
		step := int64(1)
		if testing.Short() {
			step = 17
		}
		for fuel := int64(1); fuel <= 3000; fuel += step {
			_, errT, cntT := runEngine(c.Program, vm.EngineThreaded, vm.CountFull, fuel, false)
			_, errS, cntS := runEngine(c.Program, vm.EngineSwitch, vm.CountFull, fuel, false)
			var feT, feS *vm.FuelError
			if !errors.As(errT, &feT) || !errors.As(errS, &feS) {
				t.Fatalf("%s: fuel=%d expected FuelError, got threaded=%v switch=%v", cfgName, fuel, errT, errS)
			}
			if *feT != *feS {
				t.Fatalf("%s: fuel=%d FuelError mismatch threaded=%+v switch=%+v", cfgName, fuel, feT, feS)
			}
			if !reflect.DeepEqual(cntT, cntS) {
				t.Fatalf("%s: fuel=%d counter mismatch\nthreaded: %+v\nswitch:   %+v", cfgName, fuel, cntT, cntS)
			}
			if !errors.Is(errT, vm.ErrFuelExhausted) {
				t.Fatalf("%s: fuel=%d FuelError does not match ErrFuelExhausted", cfgName, fuel)
			}
		}
	}
}

// TestEngineEquivalenceErrors runs a corpus of programs that trap at
// runtime and requires both engines to raise the same error at the same
// pc with the same counters. The unboxed-operand entries aim a wrong
// immediate tag at every operand position the specialized threaded arms
// type-check, so a divergence between an arm's tag test and the generic
// primitive's would show up as an error or counter mismatch here.
func TestEngineEquivalenceErrors(t *testing.T) {
	corpus := []struct{ name, src string }{
		{"car-of-fixnum", `(car 42)`},
		{"cdr-of-empty", `(cdr '())`},
		{"add-non-number", `(+ 1 'a)`},
		{"lt-non-number", `(< 1 "x")`},
		{"vector-ref-oob", `(vector-ref (vector 1 2 3) 9)`},
		{"string-ref-oob", `(string-ref "ab" 5)`},
		{"arity", `(define (f x y) x) (f 1)`},
		{"non-procedure", `(define f 7) (f 1)`},
		{"zero-division", `(quotient 1 0)`},
		{"error-prim", `(error "boom" 1 2)`},
		// Type traps on unboxed (immediate-tagged) operands.
		{"car-of-char", `(car #\a)`},
		{"car-of-bool", `(car #t)`},
		{"cdr-of-fixnum", `(cdr 3)`},
		{"add-of-char", `(+ 1 #\a)`},
		{"add-of-bool", `(+ #t 1)`},
		{"add-of-empty", `(+ 1 '())`},
		{"sub-of-empty", `(- '() 1)`},
		{"mul-of-char", `(* 2 #\x)`},
		{"div-of-bool", `(/ #f 2)`},
		{"add1-of-bool", `(add1 #t)`},
		{"sub1-of-char", `(sub1 #\a)`},
		{"lt-of-bool", `(< 1 #t)`},
		{"eq-num-of-empty", `(= '() 0)`},
		{"quotient-of-char", `(quotient #\a 2)`},
		{"remainder-of-bool", `(remainder 7 #t)`},
		{"modulo-of-empty", `(modulo 7 '())`},
		{"vector-ref-of-fixnum", `(vector-ref 7 0)`},
		{"vector-ref-char-index", `(vector-ref (vector 1) #\a)`},
		{"string-length-of-fixnum", `(string-length 7)`},
		{"string-ref-bool-index", `(string-ref "ab" #t)`},
		{"set-car-of-fixnum", `(set-car! 1 2)`},
		{"set-cdr-of-empty", `(set-cdr! '() 2)`},
		{"char-to-int-of-fixnum", `(char->integer 5)`},
		{"int-to-char-of-bool", `(integer->char #f)`},
		{"length-of-fixnum", `(length 5)`},
		// Type trap on a BOXED fixnum operand: the wide fixnum is a
		// number, so arithmetic accepts it, but it is not a pair.
		{"car-of-boxed-fixnum", `(car (expt 2 62))`},
	}
	for cfgName, opts := range equivConfigs() {
		for _, tc := range corpus {
			c, err := compiler.Compile(tc.src, opts)
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", cfgName, tc.name, err)
			}
			_, errT, cntT := runEngine(c.Program, vm.EngineThreaded, vm.CountFull, bench.BenchFuel, false)
			_, errS, cntS := runEngine(c.Program, vm.EngineSwitch, vm.CountFull, bench.BenchFuel, false)
			if errT == nil || errS == nil {
				t.Fatalf("%s/%s: expected trap, got threaded=%v switch=%v", cfgName, tc.name, errT, errS)
			}
			if errT.Error() != errS.Error() {
				t.Errorf("%s/%s: error mismatch\nthreaded: %v\nswitch:   %v", cfgName, tc.name, errT, errS)
			}
			var reT, reS *vm.RuntimeError
			if errors.As(errT, &reT) && errors.As(errS, &reS) && reT.PC != reS.PC {
				t.Errorf("%s/%s: trap pc mismatch threaded=%d switch=%d", cfgName, tc.name, reT.PC, reS.PC)
			}
			if !reflect.DeepEqual(cntT, cntS) {
				t.Errorf("%s/%s: counter mismatch\nthreaded: %+v\nswitch:   %+v", cfgName, tc.name, cntT, cntS)
			}
		}
	}
}

// TestEngineEquivalenceOverflow drives every arithmetic primitive
// across the 61-bit immediate/boxed fixnum boundary in both directions
// and requires (a) both engines to agree byte-for-byte on results and
// counters, and (b) the result to match the reference interpreter,
// which shares the Value representation but none of the VM's
// specialized arithmetic arms. A bug in the overflow promotion (an arm
// producing an immediate where FixV would box, or vice versa) would
// surface as an eqv?/write divergence here.
func TestEngineEquivalenceOverflow(t *testing.T) {
	const fixMax = "1152921504606846975"  // prim.FixMax
	const fixMin = "-1152921504606846976" // prim.FixMin
	corpus := []struct{ name, src string }{
		{"add-overflow", `(+ ` + fixMax + ` 1)`},
		{"add-wide", `(+ (expt 2 62) (expt 2 62))`},
		{"sub-overflow", `(- ` + fixMin + ` 1)`},
		{"sub-unary-overflow", `(- ` + fixMin + `)`},
		{"mul-overflow", `(* 3037000499 3037000499)`},
		{"mul-wide", `(* (expt 2 32) (expt 2 29))`},
		{"add1-overflow", `(add1 ` + fixMax + `)`},
		{"sub1-overflow", `(sub1 ` + fixMin + `)`},
		{"abs-overflow", `(abs (- ` + fixMin + ` 1))`},
		{"expt-overflow", `(expt 2 62)`},
		{"quotient-boxed", `(quotient (expt 2 62) 3)`},
		{"quotient-back-in-range", `(quotient (expt 2 62) 16)`},
		{"remainder-boxed", `(remainder (expt 2 62) 1000000007)`},
		{"modulo-boxed", `(modulo (- (expt 2 62)) 1000000007)`},
		{"min-boxed", `(min (expt 2 62) (expt 2 61))`},
		{"max-boxed", `(max (expt 2 61) (expt 2 62))`},
		{"ash-overflow", `(ash 1 62)`},
		{"boxed-compare", `(< (expt 2 61) (add1 (expt 2 61)))`},
		{"boxed-equal-num", `(= (expt 2 62) (expt 2 62))`},
		{"boxed-eqv", `(eqv? (expt 2 62) (expt 2 62))`},
		{"boxed-back-to-immediate", `(- (+ ` + fixMax + ` 1) 1)`},
		{"boxed-zero-p", `(zero? (expt 2 62))`},
		{"boxed-even-p", `(even? (expt 2 62))`},
		{"boxed-fixnum-p", `(fixnum? (expt 2 62))`},
		{"boxed-in-structure", `(car (cons (expt 2 62) '()))`},
		{"boxed-display", `(number->string (add1 (expt 2 61)))`},
	}
	for cfgName, opts := range equivConfigs() {
		for _, tc := range corpus {
			c, err := compiler.Compile(tc.src, opts)
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", cfgName, tc.name, err)
			}
			resT, errT, cntT := runEngine(c.Program, vm.EngineThreaded, vm.CountFull, bench.BenchFuel, false)
			resS, errS, cntS := runEngine(c.Program, vm.EngineSwitch, vm.CountFull, bench.BenchFuel, false)
			if errT != nil || errS != nil {
				t.Fatalf("%s/%s: run errors threaded=%v switch=%v", cfgName, tc.name, errT, errS)
			}
			if resT != resS {
				t.Errorf("%s/%s: result mismatch threaded=%s switch=%s", cfgName, tc.name, resT, resS)
			}
			if !reflect.DeepEqual(cntT, cntS) {
				t.Errorf("%s/%s: counter mismatch\nthreaded: %+v\nswitch:   %+v", cfgName, tc.name, cntT, cntS)
			}
			iv, err := compiler.Interpret(tc.src, false, io.Discard)
			if err != nil {
				t.Fatalf("%s/%s: interpreter oracle: %v", cfgName, tc.name, err)
			}
			if want := prim.WriteString(iv); resT != want {
				t.Errorf("%s/%s: engines produced %s, interpreter oracle %s", cfgName, tc.name, resT, want)
			}
		}
	}
}

// TestEngineEquivalenceFuelOverflow sweeps the step budget over a
// program whose inner loop conses from the arena and pushes fixnums
// across the boxing boundary, so the cut-off lands on every pc of the
// new representation's hot paths (arena cons, FixV overflow promotion,
// boxed comparison) on both engines.
func TestEngineEquivalenceFuelOverflow(t *testing.T) {
	const src = `
	  (define (loop i acc lst)
	    (if (> i 2000)
	        (length lst)
	        (loop (add1 i) (* acc 3) (cons acc lst))))
	  (loop 0 1152921504606846000 '())`
	for cfgName, opts := range equivConfigs() {
		c, err := compiler.Compile(src, opts)
		if err != nil {
			t.Fatalf("%s: compile: %v", cfgName, err)
		}
		step := int64(1)
		if testing.Short() {
			step = 17
		}
		for fuel := int64(1); fuel <= 3000; fuel += step {
			_, errT, cntT := runEngine(c.Program, vm.EngineThreaded, vm.CountFull, fuel, false)
			_, errS, cntS := runEngine(c.Program, vm.EngineSwitch, vm.CountFull, fuel, false)
			var feT, feS *vm.FuelError
			if !errors.As(errT, &feT) || !errors.As(errS, &feS) {
				t.Fatalf("%s: fuel=%d expected FuelError, got threaded=%v switch=%v", cfgName, fuel, errT, errS)
			}
			if *feT != *feS {
				t.Fatalf("%s: fuel=%d FuelError mismatch threaded=%+v switch=%+v", cfgName, fuel, feT, feS)
			}
			if !reflect.DeepEqual(cntT, cntS) {
				t.Fatalf("%s: fuel=%d counter mismatch\nthreaded: %+v\nswitch:   %+v", cfgName, fuel, cntT, cntS)
			}
		}
	}
}

// TestEngineEquivalenceValidate runs with ValidateRestores on (poisoned
// caller-save registers, every register read through the slow path) on
// both engines and requires identical outcomes.
func TestEngineEquivalenceValidate(t *testing.T) {
	p, err := bench.ByName("deriv")
	if err != nil {
		t.Fatal(err)
	}
	for cfgName, opts := range equivConfigs() {
		c, err := compiler.Compile(p.Source, opts)
		if err != nil {
			t.Fatalf("%s: compile: %v", cfgName, err)
		}
		resT, errT, cntT := runEngine(c.Program, vm.EngineThreaded, vm.CountFull, bench.BenchFuel, true)
		resS, errS, cntS := runEngine(c.Program, vm.EngineSwitch, vm.CountFull, bench.BenchFuel, true)
		if errT != nil || errS != nil {
			t.Fatalf("%s: validate run errors threaded=%v switch=%v", cfgName, errT, errS)
		}
		if resT != resS {
			t.Errorf("%s: result mismatch threaded=%s switch=%s", cfgName, resT, resS)
		}
		if !reflect.DeepEqual(cntT, cntS) {
			t.Errorf("%s: counter mismatch\nthreaded: %+v\nswitch:   %+v", cfgName, cntT, cntS)
		}
	}
}
