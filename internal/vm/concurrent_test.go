package vm

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/prim"
	"repro/internal/sexp"
)

// TestConcurrentMachinesOneProgram exercises the package's concurrency
// contract: one immutable Program backing many Machines at once. The
// program touches every class of shared compile-time state — a mutable
// (pair) constant that must be copied per load, a global cell, and a
// primitive — and each machine mutates its copy, so accidental sharing
// shows up as a race (under -race) or as cross-run value corruption.
func TestConcurrentMachinesOneProgram(t *testing.T) {
	s0, s1 := DefaultConfig().ScratchReg(0), DefaultConfig().ScratchReg(1)
	p := asm(
		// load the mutable pair constant '(1 . 2) and stash it in global g
		Instr{Op: OpLoadConst, A: s0, B: 0},
		Instr{Op: OpStoreGlobal, A: s0, B: 0},
		// (set-car! g 7): mutates this machine's copy of the constant
		Instr{Op: OpLoadConst, A: s1, B: 1},
		Instr{Op: OpPrim, A: RegRV, B: 0, Regs: []int{s0, s1}},
		// reload from the global and return (car g)
		Instr{Op: OpLoadGlobal, A: s0, B: 0},
		Instr{Op: OpPrim, A: RegRV, B: 1, Regs: []int{s0}},
		Instr{Op: OpReturn},
	)
	_, p = p.withConst(&sexp.Pair{Car: sexp.Fixnum(1), Cdr: sexp.Fixnum(2)})
	p.ConstMutable[0] = true
	_, p = p.withConst(sexp.Fixnum(7))
	p.withPrim("set-car!")
	p.withPrim("car")
	p.GlobalNames = []sexp.Symbol{"g"}
	p.PrimGlobals = []*prim.Def{nil}

	const runs = 64
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := New(p, nil)
			v, err := m.Run()
			if err != nil {
				t.Errorf("concurrent run: %v", err)
				return
			}
			if v != sexp.Fixnum(7) {
				t.Errorf("concurrent run: got %v, want 7", v)
			}
		}()
	}
	wg.Wait()

	// The shared constant pool must be untouched by the set-car!.
	if car := p.Consts[0].(*sexp.Pair).Car; car != sexp.Fixnum(1) {
		t.Errorf("shared constant mutated: car = %v, want 1", car)
	}
}

// TestConcurrentFuel: concurrent machines over one Program each hit
// their own fuel budget deterministically.
func TestConcurrentFuel(t *testing.T) {
	p := asm(Instr{Op: OpJump, A: 2})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := New(p, nil)
			m.MaxSteps = 500
			_, err := m.Run()
			if !errors.Is(err, ErrFuelExhausted) {
				t.Errorf("want ErrFuelExhausted, got %v", err)
			}
		}()
	}
	wg.Wait()
}
