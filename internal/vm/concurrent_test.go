package vm

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/prim"
	"repro/internal/sexp"
)

// TestConcurrentMachinesOneProgram exercises the package's concurrency
// contract: one immutable Program backing many Machines at once. The
// program touches every class of shared compile-time state — a mutable
// (pair) constant that must be copied per load, a global cell, and a
// primitive — and each machine mutates its copy, so accidental sharing
// shows up as a race (under -race) or as cross-run value corruption.
func TestConcurrentMachinesOneProgram(t *testing.T) {
	s0, s1 := DefaultConfig().ScratchReg(0), DefaultConfig().ScratchReg(1)
	p := asm(
		// load the mutable pair constant '(1 . 2) and stash it in global g
		Instr{Op: OpLoadConst, A: s0, B: 0},
		Instr{Op: OpStoreGlobal, A: s0, B: 0},
		// (set-car! g 7): mutates this machine's copy of the constant
		Instr{Op: OpLoadConst, A: s1, B: 1},
		Instr{Op: OpPrim, A: RegRV, B: 0, Regs: []int{s0, s1}},
		// reload from the global and return (car g)
		Instr{Op: OpLoadGlobal, A: s0, B: 0},
		Instr{Op: OpPrim, A: RegRV, B: 1, Regs: []int{s0}},
		Instr{Op: OpReturn},
	)
	_, p = p.withConst(prim.PairV(&prim.Pair{Car: prim.FixV(1), Cdr: prim.FixV(2)}))
	p.ConstMutable[0] = true
	_, p = p.withConst(prim.FixV(7))
	p.withPrim("set-car!")
	p.withPrim("car")
	p.GlobalNames = []sexp.Symbol{"g"}
	p.PrimGlobals = []*prim.Def{nil}

	const runs = 64
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := New(p, nil)
			v, err := m.Run()
			if err != nil {
				t.Errorf("concurrent run: %v", err)
				return
			}
			if v != prim.FixV(7) {
				t.Errorf("concurrent run: got %v, want 7", v)
			}
		}()
	}
	wg.Wait()

	// The shared constant pool must be untouched by the set-car!.
	cp, _ := p.Consts[0].Pair()
	if car := cp.Car; car != prim.FixV(1) {
		t.Errorf("shared constant mutated: car = %v, want 1", car)
	}
}

// TestConcurrentArenaRecycling exercises the arena ownership contract
// under the race detector: 64 machines share one immutable Program,
// and each machine runs it repeatedly with Recycle between runs, so
// every machine is concurrently zeroing and re-handing-out its own
// pair, closure, and free-slice cells. The program routes its result
// through every slab kind: the pair comes from copyConst, and the call
// goes through an OpClosure capture, so the closure object and its
// free slice come from the closure/value-slice slabs added in PR 10.
// Any accidental sharing of arena state — through the Program, the
// decode cache, or a global — shows up as a race or as cross-run value
// corruption; recycled-slab reuse showing a stale value shows up as a
// wrong result.
func TestConcurrentArenaRecycling(t *testing.T) {
	s0, s1 := DefaultConfig().ScratchReg(0), DefaultConfig().ScratchReg(1)
	p := asm(
		Instr{Op: OpStoreSlot, A: RegRet, B: 0, Kind: KindSave},
		// load the mutable pair constant '(1 . 2) (arena-copied per load)
		Instr{Op: OpLoadConst, A: s0, B: 0},
		// (set-car! it 7) mutates this machine's arena cell
		Instr{Op: OpLoadConst, A: s1, B: 1},
		Instr{Op: OpPrim, A: s1, B: 0, Regs: []int{s0, s1}},
		// close over the mutated pair and call f, which returns its car
		Instr{Op: OpClosure, A: RegCP, B: 1, Regs: []int{s0}},
		Instr{Op: OpCall, A: 0, B: 8},
		Instr{Op: OpLoadSlot, A: RegRet, B: 0, Kind: KindRestore},
		Instr{Op: OpReturn},
	)
	entry := len(p.Code)
	p.Code = append(p.Code,
		Instr{Op: OpEntry, A: 0, B: 4},
		Instr{Op: OpFreeRef, A: s0, B: 0},
		Instr{Op: OpPrim, A: RegRV, B: 1, Regs: []int{s0}}, // (car pair)
		Instr{Op: OpReturn},
	)
	p.Procs = append(p.Procs, ProcInfo{Name: "f", Entry: entry, NFree: 1})
	_, p = p.withConst(prim.PairV(&prim.Pair{Car: prim.FixV(1), Cdr: prim.FixV(2)}))
	p.ConstMutable[0] = true
	_, p = p.withConst(prim.FixV(7))
	p.withPrim("set-car!")
	p.withPrim("car")

	const machines = 64
	const runsPerMachine = 8
	var wg sync.WaitGroup
	for i := 0; i < machines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := New(p, nil)
			for r := 0; r < runsPerMachine; r++ {
				v, err := m.Run()
				if err != nil {
					t.Errorf("run %d: %v", r, err)
					return
				}
				if v != prim.FixV(7) {
					t.Errorf("run %d: got %v, want 7", r, v)
					return
				}
				// The result is consumed; recycle so the next run reuses
				// the same slab cells.
				m.Recycle()
			}
		}()
	}
	wg.Wait()

	// The shared constant is untouched by 512 set-car! mutations.
	cp, _ := p.Consts[0].Pair()
	if car := cp.Car; car != prim.FixV(1) {
		t.Errorf("shared constant mutated: car = %v, want 1", car)
	}
}

// TestConcurrentFuel: concurrent machines over one Program each hit
// their own fuel budget deterministically.
func TestConcurrentFuel(t *testing.T) {
	p := asm(Instr{Op: OpJump, A: 2})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := New(p, nil)
			m.MaxSteps = 500
			_, err := m.Run()
			if !errors.Is(err, ErrFuelExhausted) {
				t.Errorf("want ErrFuelExhausted, got %v", err)
			}
		}()
	}
	wg.Wait()
}
