// Package vm implements the register-machine virtual machine that
// compiled code runs on. It plays the role of the paper's Alpha
// hardware: it executes the code generator's instructions, counts every
// stack reference (the paper's primary metric, Table 3), and charges
// cycles under a simple memory model with load-use stalls so that the
// eager-vs-lazy restore comparison of §2.2 and the run-time speedups of
// §4 can be measured in simulation.
//
// # Concurrency contract
//
// A *Program is immutable once the compiler returns it: the code, the
// constant pool, the procedure table, the primitive table, the shuffle
// records and the config are never written after construction, so any
// number of goroutines may share one Program. Constants whose values
// contain mutable structure (pairs, vectors) are flagged in
// ConstMutable and deep-copied by OpLoadConst on every load, so runs
// never alias mutable constants with each other. All run-time state —
// registers, stack, the globals table (seeded per machine from
// Program.PrimGlobals), counters, the primitive context (output sink,
// gensym counter) — lives in the Machine.
//
// A *Machine is NOT safe for concurrent use: it is a single-threaded
// interpreter meant to be created per run (vm.New is cheap). The
// serving layer (internal/service) relies on exactly this split — one
// cached Program backing many concurrent Machines.
package vm

import "fmt"

// Config fixes the register-file layout. Mirroring §3: "We allocate n
// registers for use by our register allocator. Two of these are used for
// the return address and closure pointer. For some fixed c ≤ n−2, the
// first c actual parameters of all procedure calls are passed via these
// registers; the remaining parameters are passed on the stack. We also
// fix a number l ≤ n−2 of these registers to be used for user variables
// and compiler-generated temporaries."
//
// Register numbering: 0 = ret (return address), 1 = cp (closure
// pointer), 2 = rv (return value), 3..3+ArgRegs-1 = argument registers,
// then UserRegs user-variable registers, then ScratchRegs expression
// temporaries (the "local register allocation performed by the code
// generator" of the paper's baseline).
type Config struct {
	// ArgRegs is c, the number of argument registers (paper default 6;
	// the Table 3 baseline uses 0).
	ArgRegs int
	// UserRegs is l, the number of user-variable registers.
	UserRegs int
	// ScratchRegs is the number of expression-evaluation temporaries
	// (always present; local register allocation exists even in the
	// baseline).
	ScratchRegs int
	// CalleeSaveRegs configures the §2.4/Table 5 study: registers
	// beyond the caller-save set that survive calls and that the callee
	// must save/restore if it uses them.
	CalleeSaveRegs int
}

// DefaultConfig is the paper's main configuration: six argument
// registers and six user registers.
func DefaultConfig() Config {
	return Config{ArgRegs: 6, UserRegs: 6, ScratchRegs: 8}
}

// BaselineConfig is the Table 3 baseline: no argument registers and no
// user registers, so all parameters and user variables live on the
// stack.
func BaselineConfig() Config {
	return Config{ArgRegs: 0, UserRegs: 0, ScratchRegs: 8}
}

// Register indices.
const (
	RegRet = 0
	RegCP  = 1
	RegRV  = 2
	// regFixed is the number of dedicated registers before the argument
	// registers.
	regFixed = 3
)

// ArgReg returns the register holding the i-th register-passed argument.
func (c Config) ArgReg(i int) int { return regFixed + i }

// UserReg returns the i-th user-variable register.
func (c Config) UserReg(i int) int { return regFixed + c.ArgRegs + i }

// ScratchReg returns the i-th scratch register.
func (c Config) ScratchReg(i int) int { return regFixed + c.ArgRegs + c.UserRegs + i }

// CalleeSaveReg returns the i-th callee-save register.
func (c Config) CalleeSaveReg(i int) int {
	return regFixed + c.ArgRegs + c.UserRegs + c.ScratchRegs + i
}

// NumRegs is the register-file size.
func (c Config) NumRegs() int {
	return regFixed + c.ArgRegs + c.UserRegs + c.ScratchRegs + c.CalleeSaveRegs
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ArgRegs < 0 || c.UserRegs < 0 || c.ScratchRegs < 1 || c.CalleeSaveRegs < 0 {
		return fmt.Errorf("vm: invalid register configuration %+v", c)
	}
	if c.NumRegs() > 64 {
		return fmt.Errorf("vm: register file too large (%d > 64)", c.NumRegs())
	}
	return nil
}

// CostModel charges cycles for executed instructions. The numbers are a
// stand-in for the paper's Alpha 3000/600: every instruction costs one
// cycle, stack traffic pays a memory penalty, and a register consumed
// too soon after the load that produced it stalls the pipeline — the
// effect that makes eager restores competitive with lazy restores
// (§2.2: "the reduced effect of memory latency offsets the cost of
// unnecessary restores").
type CostModel struct {
	// MemPenalty is the extra cost of a stack read or write beyond the
	// instruction's base cycle.
	MemPenalty int64
	// LoadLatency is the number of cycles after a stack load before the
	// destination register is ready; consuming it earlier stalls.
	LoadLatency int64
	// BranchMispredict is the penalty for a conditional branch that goes
	// against its static prediction (0 disables the §6 branch-prediction
	// study).
	BranchMispredict int64
}

// DefaultCostModel approximates an early-1990s RISC: cache-hit loads a
// few cycles, stores buffered but accounted, mispredicts modest.
func DefaultCostModel() CostModel {
	return CostModel{MemPenalty: 2, LoadLatency: 3, BranchMispredict: 0}
}
