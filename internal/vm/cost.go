package vm

// Static cost weights for the optimality analyzer (internal/analysis).
// StaticCost mirrors the machine's guaranteed per-instruction charges in
// loop(): one dispatch cycle for every instruction, the memory penalty
// for each frame-slot or outgoing-slot access, and — for slot operands
// of prims and closure captures — the memory penalty plus a full
// load-use stall, exactly as Machine.readOperand charges them.
//
// Deliberately excluded, because they are data- or context-dependent:
// register load-use stalls (they depend on instruction spacing; the
// analyzer models them separately with the machine's readyAt rule),
// branch mispredictions, the cost of callee execution, and the
// outgoing/stack argument loads the machine performs only when the
// callee turns out to be a primitive or continuation.

// StaticCost returns the guaranteed cycle cost of one execution of the
// instruction under the cost model. It returns ok=false for an unknown
// opcode; the exhaustiveness test in defuse_test.go keeps it in sync
// with the opcode set so new opcodes cannot silently escape the static
// cost estimate.
func (in Instr) StaticCost(cm CostModel) (int64, bool) {
	const dispatch = 1
	switch in.Op {
	case OpLoadSlot, OpStoreSlot, OpStoreOut:
		return dispatch + cm.MemPenalty, true
	case OpPrim, OpClosure:
		c := int64(dispatch)
		for _, r := range in.Regs {
			if IsSlotOperand(r) {
				c += cm.MemPenalty + cm.LoadLatency
			}
		}
		return c, true
	case OpHalt, OpEntry, OpMove, OpLoadConst, OpLoadGlobal, OpStoreGlobal,
		OpClosurePatch, OpFreeRef, OpJump, OpBranchFalse,
		OpCall, OpTailCall, OpCallCC, OpReturn:
		return dispatch, true
	default:
		return 0, false
	}
}
