package vm

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/prim"
	"repro/internal/sexp"
)

// asm builds a program around a hand-written main body. The code is laid
// out as [halt, entry args=0 frame=8, body...]; procs can be appended.
func asm(body ...Instr) *Program {
	code := []Instr{
		{Op: OpHalt},
		{Op: OpEntry, A: 0, B: 8},
	}
	code = append(code, body...)
	return &Program{
		Code:         code,
		Consts:       nil,
		ConstMutable: nil,
		Procs:        []ProcInfo{{Name: "main", Entry: 1}},
		MainIndex:    0,
		Config:       DefaultConfig(),
	}
}

func runProgram(t *testing.T, p *Program) (prim.Value, *Machine) {
	t.Helper()
	m := New(p, nil)
	v, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, m
}

func (p *Program) withConst(v prim.Value) (int, *Program) {
	p.Consts = append(p.Consts, v)
	p.ConstMutable = append(p.ConstMutable, false)
	return len(p.Consts) - 1, p
}

func (p *Program) withPrim(name string) int {
	p.Prims = append(p.Prims, prim.Lookup(sexp.Symbol(name)))
	return len(p.Prims) - 1
}

func TestMoveConstReturn(t *testing.T) {
	p := asm(
		Instr{Op: OpLoadConst, A: RegRV, B: 0},
		Instr{Op: OpReturn},
	)
	_, p = p.withConst(prim.FixV(42))
	v, m := runProgram(t, p)
	if v != prim.FixV(42) {
		t.Errorf("got %v", v)
	}
	if m.Counters.Instructions == 0 {
		t.Error("instructions not counted")
	}
}

func TestPrimAndOperandEncoding(t *testing.T) {
	cfg := DefaultConfig()
	s0 := cfg.ScratchReg(0)
	p := asm(
		Instr{Op: OpLoadConst, A: s0, B: 0},
		Instr{Op: OpStoreSlot, A: s0, B: 3, Kind: KindTemp},
		Instr{Op: OpLoadConst, A: s0, B: 1},
		// rv = +(reg s0, slot 3): mixed register/memory operands
		Instr{Op: OpPrim, A: RegRV, B: 0, Regs: []int{s0, ^3}},
		Instr{Op: OpReturn},
	)
	_, p = p.withConst(prim.FixV(30))
	_, p = p.withConst(prim.FixV(12))
	p.withPrim("+")
	v, m := runProgram(t, p)
	if v != prim.FixV(42) {
		t.Errorf("got %v", v)
	}
	// One slot write, one slot read (the memory operand).
	if m.Counters.StackWrites != 1 || m.Counters.StackReads != 1 {
		t.Errorf("stack refs = %d writes, %d reads", m.Counters.StackWrites, m.Counters.StackReads)
	}
	// The memory operand pays penalty + a full load-use stall.
	if m.Counters.StallCycles == 0 {
		t.Error("memory operand should stall")
	}
}

func TestBranchAndJump(t *testing.T) {
	s0 := DefaultConfig().ScratchReg(0)
	p := asm(
		Instr{Op: OpLoadConst, A: s0, B: 0},    // #f
		Instr{Op: OpBranchFalse, A: s0, B: 6},  // jump to else
		Instr{Op: OpLoadConst, A: RegRV, B: 1}, // (not executed)
		Instr{Op: OpJump, A: 7},
		Instr{Op: OpLoadConst, A: RegRV, B: 2}, // pc 6: else
		Instr{Op: OpReturn},                    // pc 7
	)
	_, p = p.withConst(prim.BoolV(false))
	_, p = p.withConst(prim.SymV("then"))
	_, p = p.withConst(prim.SymV("else"))
	v, m := runProgram(t, p)
	if v != prim.SymV("else") {
		t.Errorf("got %v", v)
	}
	if m.Counters.Branches != 1 {
		t.Errorf("branches = %d", m.Counters.Branches)
	}
}

func TestBranchPredictionCounters(t *testing.T) {
	s0 := DefaultConfig().ScratchReg(0)
	p := asm(
		Instr{Op: OpLoadConst, A: s0, B: 0},               // #t -> not taken
		Instr{Op: OpBranchFalse, A: s0, B: 5, Predict: 1}, // predicted taken: mispredict
		Instr{Op: OpLoadConst, A: RegRV, B: 0},
		Instr{Op: OpReturn},
	)
	_, p = p.withConst(prim.BoolV(true))
	m := New(p, nil)
	cost := DefaultCostModel()
	cost.BranchMispredict = 7
	m.SetCostModel(cost)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Counters.Mispredicts != 1 || m.Counters.PredictedBranches != 1 {
		t.Errorf("mispredicts=%d predicted=%d", m.Counters.Mispredicts, m.Counters.PredictedBranches)
	}
}

func TestCallReturnAndArity(t *testing.T) {
	cfg := DefaultConfig()
	a0 := cfg.ArgReg(0)
	// proc double: rv = a0 + a0; return
	p := asm(
		// main: closure for double, call with 5 (saving ret around it)
		Instr{Op: OpStoreSlot, A: RegRet, B: 0, Kind: KindSave},
		Instr{Op: OpClosure, A: RegCP, B: 1, Regs: nil},
		Instr{Op: OpLoadConst, A: a0, B: 0},
		Instr{Op: OpCall, A: 1, B: 8},
		Instr{Op: OpLoadSlot, A: RegRet, B: 0, Kind: KindRestore},
		Instr{Op: OpReturn},
	)
	entry := len(p.Code)
	p.Code = append(p.Code,
		Instr{Op: OpEntry, A: 1, B: 4},
		Instr{Op: OpPrim, A: RegRV, B: 0, Regs: []int{a0, a0}},
		Instr{Op: OpReturn},
	)
	p.Procs = append(p.Procs, ProcInfo{Name: "double", Entry: entry, NArgs: 1, SyntacticLeaf: true})
	_, p = p.withConst(prim.FixV(5))
	p.withPrim("+")
	v, m := runProgram(t, p)
	if v != prim.FixV(10) {
		t.Errorf("got %v", v)
	}
	if m.Counters.Calls != 1 {
		t.Errorf("calls = %d", m.Counters.Calls)
	}
	if m.Counters.SyntacticLeaves != 1 {
		t.Errorf("syntactic leaves = %d", m.Counters.SyntacticLeaves)
	}

	// Arity violation traps.
	bad := asm(
		Instr{Op: OpStoreSlot, A: RegRet, B: 0, Kind: KindSave},
		Instr{Op: OpClosure, A: RegCP, B: 1, Regs: nil},
		Instr{Op: OpCall, A: 2, B: 8}, // double expects 1
		Instr{Op: OpLoadSlot, A: RegRet, B: 0, Kind: KindRestore},
		Instr{Op: OpReturn},
	)
	entry = len(bad.Code)
	bad.Code = append(bad.Code,
		Instr{Op: OpEntry, A: 1, B: 4},
		Instr{Op: OpReturn},
	)
	bad.Procs = append(bad.Procs, ProcInfo{Name: "double", Entry: entry, NArgs: 1})
	m2 := New(bad, nil)
	if _, err := m2.Run(); err == nil || !strings.Contains(err.Error(), "expects 1 arguments") {
		t.Errorf("expected arity error, got %v", err)
	}
}

func TestApplyNonProcedure(t *testing.T) {
	p := asm(
		Instr{Op: OpStoreSlot, A: RegRet, B: 0, Kind: KindSave},
		Instr{Op: OpLoadConst, A: RegCP, B: 0},
		Instr{Op: OpCall, A: 0, B: 8},
		Instr{Op: OpReturn},
	)
	_, p = p.withConst(prim.FixV(3))
	m := New(p, nil)
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "non-procedure") {
		t.Errorf("got %v", err)
	}
}

func TestClosurePatchAndFreeRef(t *testing.T) {
	cfg := DefaultConfig()
	s0 := cfg.ScratchReg(0)
	s1 := cfg.ScratchReg(1)
	p := asm(
		Instr{Op: OpStoreSlot, A: RegRet, B: 0, Kind: KindSave},
		Instr{Op: OpLoadConst, A: s1, B: 0}, // placeholder
		Instr{Op: OpClosure, A: s0, B: 1, Regs: []int{s1}},
		Instr{Op: OpLoadConst, A: s1, B: 1}, // real value 99
		Instr{Op: OpClosurePatch, A: s0, B: 0, C: s1},
		Instr{Op: OpMove, A: RegCP, B: s0},
		Instr{Op: OpCall, A: 0, B: 8},
		Instr{Op: OpLoadSlot, A: RegRet, B: 0, Kind: KindRestore},
		Instr{Op: OpReturn},
	)
	entry := len(p.Code)
	p.Code = append(p.Code,
		Instr{Op: OpEntry, A: 0, B: 4},
		Instr{Op: OpFreeRef, A: RegRV, B: 0},
		Instr{Op: OpReturn},
	)
	p.Procs = append(p.Procs, ProcInfo{Name: "getter", Entry: entry, NFree: 1})
	_, p = p.withConst(prim.BoolV(false))
	_, p = p.withConst(prim.FixV(99))
	v, _ := runProgram(t, p)
	if v != prim.FixV(99) {
		t.Errorf("got %v", v)
	}
}

func TestMutableConstCopied(t *testing.T) {
	// Loading a pair constant twice yields distinct pairs.
	s0 := DefaultConfig().ScratchReg(0)
	s1 := DefaultConfig().ScratchReg(1)
	p := asm(
		Instr{Op: OpLoadConst, A: s0, B: 0},
		Instr{Op: OpLoadConst, A: s1, B: 0},
		Instr{Op: OpPrim, A: RegRV, B: 0, Regs: []int{s0, s1}}, // eq?
		Instr{Op: OpReturn},
	)
	p.Consts = append(p.Consts, prim.PairV(&prim.Pair{Car: prim.FixV(1), Cdr: prim.FixV(2)}))
	p.ConstMutable = append(p.ConstMutable, true)
	p.withPrim("eq?")
	v, _ := runProgram(t, p)
	if v != prim.BoolV(false) {
		t.Errorf("pair constants should be copied per load, got %v", v)
	}
}

func TestValidateRestoresPoison(t *testing.T) {
	cfg := DefaultConfig()
	u0 := cfg.UserReg(0)
	// main puts a value in a user register, calls a leaf, then reads the
	// user register without restoring: must trap under validation.
	p := asm(
		Instr{Op: OpLoadConst, A: u0, B: 0},
		Instr{Op: OpClosure, A: RegCP, B: 1, Regs: nil},
		Instr{Op: OpStoreSlot, A: RegRet, B: 0, Kind: KindSave},
		Instr{Op: OpCall, A: 0, B: 8},
		Instr{Op: OpLoadSlot, A: RegRet, B: 0, Kind: KindRestore},
		Instr{Op: OpMove, A: RegRV, B: u0}, // read of destroyed register
		Instr{Op: OpReturn},
	)
	entry := len(p.Code)
	p.Code = append(p.Code,
		Instr{Op: OpEntry, A: 0, B: 4},
		Instr{Op: OpLoadConst, A: RegRV, B: 0},
		Instr{Op: OpReturn},
	)
	p.Procs = append(p.Procs, ProcInfo{Name: "leaf", Entry: entry, SyntacticLeaf: true})
	_, p = p.withConst(prim.FixV(1))

	// Without validation it runs (value is whatever remains).
	m := New(p, nil)
	if _, err := m.Run(); err != nil {
		t.Fatalf("unvalidated run failed: %v", err)
	}
	// With validation it traps.
	m2 := New(p, nil)
	m2.ValidateRestores = true
	if _, err := m2.Run(); err == nil || !strings.Contains(err.Error(), "destroyed register") {
		t.Errorf("expected poison trap, got %v", err)
	}
}

func TestStepBudget(t *testing.T) {
	p := asm(
		Instr{Op: OpJump, A: 2}, // spin forever
	)
	m := New(p, nil)
	m.MaxSteps = 1000
	_, err := m.Run()
	if !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("want ErrFuelExhausted, got %v", err)
	}
	var fe *FuelError
	if !errors.As(err, &fe) || fe.Budget != 1000 {
		t.Errorf("want *FuelError with budget 1000, got %v", err)
	}
}

func TestSlotKindAccounting(t *testing.T) {
	s0 := DefaultConfig().ScratchReg(0)
	p := asm(
		Instr{Op: OpLoadConst, A: s0, B: 0},
		Instr{Op: OpStoreSlot, A: s0, B: 0, Kind: KindSave},
		Instr{Op: OpLoadSlot, A: s0, B: 0, Kind: KindRestore},
		Instr{Op: OpStoreSlot, A: s0, B: 1, Kind: KindVar},
		Instr{Op: OpLoadSlot, A: RegRV, B: 1, Kind: KindVar},
		Instr{Op: OpReturn},
	)
	_, p = p.withConst(prim.FixV(7))
	v, m := runProgram(t, p)
	if v != prim.FixV(7) {
		t.Errorf("got %v", v)
	}
	c := m.Counters
	if c.WritesByKind[KindSave] != 1 || c.ReadsByKind[KindRestore] != 1 ||
		c.WritesByKind[KindVar] != 1 || c.ReadsByKind[KindVar] != 1 {
		t.Errorf("kind accounting wrong: %+v %+v", c.ReadsByKind, c.WritesByKind)
	}
	if c.StackRefs() != 4 {
		t.Errorf("stack refs = %d", c.StackRefs())
	}
}

func TestLoadUseStall(t *testing.T) {
	s0 := DefaultConfig().ScratchReg(0)
	mk := func(pad int) *Machine {
		body := []Instr{
			{Op: OpLoadConst, A: s0, B: 0},
			{Op: OpStoreSlot, A: s0, B: 0, Kind: KindTemp},
			{Op: OpLoadSlot, A: s0, B: 0, Kind: KindTemp},
		}
		for i := 0; i < pad; i++ {
			body = append(body, Instr{Op: OpLoadConst, A: RegRV, B: 0})
		}
		body = append(body,
			Instr{Op: OpMove, A: RegRV, B: s0}, // consume the load
			Instr{Op: OpReturn},
		)
		p := asm(body...)
		_, p = p.withConst(prim.FixV(1))
		m := New(p, nil)
		if _, err := m.Run(); err != nil {
			panic(err)
		}
		return m
	}
	immediate := mk(0)
	distant := mk(5)
	if immediate.Counters.StallCycles == 0 {
		t.Error("immediate use after load should stall")
	}
	if distant.Counters.StallCycles != 0 {
		t.Errorf("distant use should not stall (got %d)", distant.Counters.StallCycles)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
	bad := Config{ArgRegs: 30, UserRegs: 30, ScratchRegs: 30}
	if err := bad.Validate(); err == nil {
		t.Error("oversized register file should fail validation")
	}
	if err := (Config{ArgRegs: -1, ScratchRegs: 8}).Validate(); err == nil {
		t.Error("negative count should fail validation")
	}
}

func TestRegisterLayout(t *testing.T) {
	cfg := Config{ArgRegs: 2, UserRegs: 3, ScratchRegs: 4, CalleeSaveRegs: 5}
	if cfg.ArgReg(0) != 3 || cfg.UserReg(0) != 5 || cfg.ScratchReg(0) != 8 || cfg.CalleeSaveReg(0) != 12 {
		t.Errorf("layout: arg0=%d user0=%d scratch0=%d cs0=%d",
			cfg.ArgReg(0), cfg.UserReg(0), cfg.ScratchReg(0), cfg.CalleeSaveReg(0))
	}
	if cfg.NumRegs() != 17 {
		t.Errorf("NumRegs = %d", cfg.NumRegs())
	}
}

func TestDisassemblerCoversOpcodes(t *testing.T) {
	p := asm(
		Instr{Op: OpLoadConst, A: RegRV, B: 0},
		Instr{Op: OpReturn},
	)
	_, p = p.withConst(prim.FixV(1))
	out := p.Disassemble()
	for _, frag := range []string{"halt", "entry", "const rv", "return", "main:"} {
		if !strings.Contains(out, frag) {
			t.Errorf("disassembly missing %q:\n%s", frag, out)
		}
	}
	// FormatInstr handles every opcode without panicking.
	for op := OpHalt; op <= OpReturn; op++ {
		_ = p.FormatInstr(Instr{Op: op, Regs: []int{3, ^1}})
	}
}

func TestCountersString(t *testing.T) {
	p := asm(
		Instr{Op: OpLoadConst, A: RegRV, B: 0},
		Instr{Op: OpReturn},
	)
	_, p = p.withConst(prim.FixV(1))
	_, m := runProgram(t, p)
	s := m.Counters.String()
	for _, frag := range []string{"instructions", "stack refs", "activations"} {
		if !strings.Contains(s, frag) {
			t.Errorf("counters string missing %q:\n%s", frag, s)
		}
	}
}

// TestBootstrapClosureSlabLifetime pins the machine.go bootstrap
// closure contract: the zero-capture closure Run installs in RegCP
// comes from the machine's closure slab, survives for the whole run
// (and after it, until the embedder recycles), and a Recycle/re-Run
// cycle hands out a fresh one from the same recycled slab.
func TestBootstrapClosureSlabLifetime(t *testing.T) {
	p := asm(
		Instr{Op: OpLoadConst, A: RegRV, B: 0},
		Instr{Op: OpReturn},
	)
	_, p = p.withConst(prim.FixV(7))
	m := New(p, nil)
	v, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != prim.FixV(7) {
		t.Fatalf("got %v", v)
	}
	// No calls happened, so RegCP still holds the bootstrap closure.
	boot, ok := m.regs[RegCP].Heap().(*Closure)
	if !ok {
		t.Fatalf("RegCP does not hold a closure after Run: %v", m.regs[RegCP])
	}
	if boot.Proc != p.MainIndex || boot.Free != nil {
		t.Fatalf("bootstrap closure = %+v, want Proc %d with nil Free", boot, p.MainIndex)
	}
	if m.ctx.Arena.LiveClosures() != 1 {
		t.Errorf("LiveClosures after run = %d, want 1 (just the bootstrap)", m.ctx.Arena.LiveClosures())
	}

	m.Recycle()
	if m.ctx.Arena.LiveClosures() != 0 {
		t.Errorf("LiveClosures after Recycle = %d, want 0", m.ctx.Arena.LiveClosures())
	}
	// A second run draws a fresh bootstrap closure from the recycled slab.
	v, err = m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != prim.FixV(7) {
		t.Fatalf("re-run after Recycle: got %v", v)
	}
	if m.ctx.Arena.LiveClosures() != 1 {
		t.Errorf("LiveClosures after re-run = %d, want 1", m.ctx.Arena.LiveClosures())
	}
}

// TestClosureResultEscapesViaCopyTree is the escape-hatch proof for
// closure results: a closure returned by a run lives in the machine's
// arena, so an embedder that wants to hold it across Recycle must deep
// copy it with prim.CopyTree(nil, v) — and the copy (object, free
// slice, and captured pairs alike) must survive a Recycle that kills
// the originals.
func TestClosureResultEscapesViaCopyTree(t *testing.T) {
	s0, s1 := DefaultConfig().ScratchReg(0), DefaultConfig().ScratchReg(1)
	p := asm(
		// capture '(1 . 2) (arena-copied per load) and the fixnum 9
		Instr{Op: OpLoadConst, A: s0, B: 0},
		Instr{Op: OpLoadConst, A: s1, B: 1},
		Instr{Op: OpClosure, A: RegRV, B: 0, Regs: []int{s0, s1}},
		Instr{Op: OpReturn},
	)
	p.Consts = append(p.Consts, prim.PairV(&prim.Pair{Car: prim.FixV(1), Cdr: prim.FixV(2)}))
	p.ConstMutable = append(p.ConstMutable, true)
	_, p = p.withConst(prim.FixV(9))
	m := New(p, nil)
	v, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	orig, ok := v.Heap().(*Closure)
	if !ok {
		t.Fatalf("result is not a closure: %v", v)
	}

	cp := prim.CopyTree(nil, v)
	kept, ok := cp.Heap().(*Closure)
	if !ok || kept == orig {
		t.Fatalf("CopyTree did not produce a fresh closure: %v", cp)
	}

	m.Recycle()
	if kept.Proc != p.MainIndex || len(kept.Free) != 2 {
		t.Fatalf("escaped copy damaged by Recycle: %+v", kept)
	}
	pair, ok := kept.Free[0].Pair()
	if !ok {
		t.Fatal("escaped copy lost its captured pair")
	}
	if car, _ := pair.Car.Fixnum(); car != 1 {
		t.Errorf("escaped pair car = %v, want 1", pair.Car)
	}
	if kept.Free[1] != prim.FixV(9) {
		t.Errorf("escaped immediate = %v, want 9", kept.Free[1])
	}
	// The original slab closure is dead, as the contract says.
	if orig.Free != nil {
		t.Error("slab closure survived Recycle; zeroing broken")
	}
}
