package vm

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/prim"
)

// Machine executes a compiled Program.
type Machine struct {
	prog  *Program
	cfg   Config
	cost  CostModel
	regs  []prim.Value
	stack []prim.Value
	// readyAt[r] is the cycle at which register r becomes usable after a
	// load (load-use stall modeling).
	readyAt []int64
	globals []prim.Value
	fp      int
	pc      int
	argc    int
	acts    []actEntry
	ctx     *prim.Ctx
	argbuf  []prim.Value
	// fine caches Counting == CountFull for the duration of a run.
	fine bool

	// Counters accumulates all measurements.
	Counters Counters
	// Counting selects the counter fidelity: CountFull (default)
	// maintains every measurement; CountEssential keeps only the cost
	// model's outputs (instructions, cycles, stalls, stack reads and
	// writes — with cycle counts identical to CountFull) and skips the
	// rest of the bookkeeping.
	Counting CounterMode
	// Engine selects the execution engine: EngineThreaded (default,
	// pre-decoded handlers with superinstruction fusion) or
	// EngineSwitch (the reference decode-every-step loop). Both are
	// observably identical; see exec.go.
	Engine EngineKind
	// MaxSteps is the execution fuel: the maximum number of instructions
	// the machine may execute before Run returns a *FuelError matching
	// ErrFuelExhausted (0 = unlimited). It is the only way to bound a
	// hostile or looping program — the machine does not poll contexts.
	MaxSteps int64
	// ValidateRestores poisons caller-save registers at every call
	// boundary; reading a poisoned register traps. It turns a missing
	// restore into a hard error instead of silent wrong answers.
	ValidateRestores bool
}

// New creates a machine for prog; out receives display/write output (nil
// discards it).
func New(prog *Program, out io.Writer) *Machine {
	m := &Machine{
		prog:    prog,
		cfg:     prog.Config,
		cost:    DefaultCostModel(),
		regs:    make([]prim.Value, prog.Config.NumRegs()),
		readyAt: make([]int64, prog.Config.NumRegs()),
		stack:   make([]prim.Value, 1024),
		globals: make([]prim.Value, len(prog.GlobalNames)),
		ctx:     &prim.Ctx{Out: out, Arena: &prim.Arena{}},
	}
	for i, d := range prog.PrimGlobals {
		if d != nil {
			m.globals[i] = prim.ObjV(&PrimValue{Def: d})
		}
	}
	m.Counters.PerProc = make([]ProcCounters, len(prog.Procs))
	for i, p := range prog.Procs {
		m.Counters.PerProc[i].Name = p.Name
	}
	return m
}

// SetCostModel overrides the default cost model.
func (m *Machine) SetCostModel(c CostModel) { m.cost = c }

// RuntimeError is a trap raised during execution.
type RuntimeError struct {
	PC  int
	Msg string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("vm: runtime error at %d: %s", e.PC, e.Msg)
}

// ErrFuelExhausted is the sentinel for a machine that ran out of its
// step budget. Callers match it with errors.Is; the concrete error is a
// *FuelError carrying the budget and the pc where execution stopped.
var ErrFuelExhausted = errors.New("vm: fuel exhausted")

// FuelError reports that execution consumed its entire step budget
// (Machine.MaxSteps) without halting. It is deterministic: the same
// program with the same budget stops at the same pc.
type FuelError struct {
	// Budget is the MaxSteps the machine started with.
	Budget int64
	// PC is the instruction address at which the budget ran out.
	PC int
}

func (e *FuelError) Error() string {
	return fmt.Sprintf("vm: fuel exhausted after %d steps at pc %d", e.Budget, e.PC)
}

// Is makes errors.Is(err, ErrFuelExhausted) true for *FuelError.
func (e *FuelError) Is(target error) bool { return target == ErrFuelExhausted }

func (m *Machine) errf(format string, args ...interface{}) error {
	return &RuntimeError{PC: m.pc, Msg: fmt.Sprintf(format, args...)}
}

// Run executes the program and returns its result value.
func (m *Machine) Run() (prim.Value, error) {
	m.fine = m.Counting == CountFull
	main := m.prog.Procs[m.prog.MainIndex]
	// The main (bootstrap) closure comes from the machine's own arena
	// slab like every other closure; it lives exactly one run, which is
	// within the Recycle contract (Run re-allocates it each time).
	m.regs[RegCP] = prim.ObjV(m.ctx.AllocClosure(m.prog.MainIndex, 0))
	m.regs[RegRet] = m.retAddr(0, 0) // code[0] is halt
	m.pc = main.Entry
	m.fp = 0
	m.argc = 0
	m.acts = append(m.acts[:0], actEntry{proc: int32(m.prog.MainIndex)})
	if m.fine {
		m.Counters.Activations++
		m.Counters.PerProc[m.prog.MainIndex].Activations++
	}
	if m.Engine == EngineSwitch {
		return m.loop()
	}
	return m.runThreaded()
}

// retAddr returns the return-point value for (pc, fp). The common case
// packs both into an immediate (prim.MakeRet), so building a return
// point costs nothing; pc/fp outside the packable range (a hostile or
// pathological program) fall back to the boxed RetAddr. This replaced
// the old per-machine intern table, which existed only to avoid boxing.
func (m *Machine) retAddr(pc, fp int) prim.Value {
	if v, ok := prim.MakeRet(pc, fp); ok {
		return v
	}
	return prim.ObjV(RetAddr{PC: pc, FP: fp})
}

// retTarget decodes a return-point value produced by retAddr.
func retTarget(v prim.Value) (pc, fp int, ok bool) {
	if pc, fp, ok = v.Ret(); ok {
		return pc, fp, true
	}
	if ra, boxed := v.Heap().(RetAddr); boxed {
		return ra.PC, ra.FP, true
	}
	return 0, 0, false
}

// Recycle returns every pair cell, closure object, and free-variable
// slice the machine's arena has handed out to the free lists for reuse
// by subsequent runs. It invalidates ALL values produced by prior runs
// — including list structure or closures referenced from the result
// value or stored into globals — so callers may only recycle when
// those values are no longer needed (e.g. a benchmark harness
// re-running the same program); prim.CopyTree with a nil arena copies
// a result off the arena first when it must outlive the recycle. The
// next Run starts with warm slabs and near-zero pair/closure
// allocation.
func (m *Machine) Recycle() { m.ctx.Arena.Recycle() }

// call dispatches a procedure invocation. newFP is the callee frame
// pointer; for non-tail calls ret has NOT yet been set (done here).
func (m *Machine) call(argc, newFP int, tail bool) error {
	calleeV, err := m.readReg(RegCP)
	if err != nil {
		return err
	}
	if !tail {
		m.acts[len(m.acts)-1].madeCall = true
		if m.fine {
			m.Counters.Calls++
		}
	} else if m.fine {
		m.Counters.TailCalls++
	}
	switch callee := calleeV.Heap().(type) {
	case *Closure:
		proc := &m.prog.Procs[callee.Proc]
		if !tail {
			m.regs[RegRet] = m.retAddr(m.pc+1, m.fp)
			m.acts = append(m.acts, actEntry{proc: int32(callee.Proc)})
		} else {
			m.classifyTop()
			m.acts[len(m.acts)-1] = actEntry{proc: int32(callee.Proc)}
		}
		if m.fine {
			m.Counters.Activations++
			m.Counters.PerProc[callee.Proc].Activations++
		}
		m.fp = newFP
		m.argc = argc
		m.pc = proc.Entry
		m.poisonAtEntry(argc)
		return nil

	case *PrimValue:
		args, err := m.collectArgs(argc, newFP)
		if err != nil {
			return err
		}
		if err := prim.CheckArity(callee.Def, argc); err != nil {
			return m.errf("%v", err)
		}
		res, err := callee.Def.Fn(m.ctx, args)
		if err != nil {
			return err
		}
		m.regs[RegRV] = res
		if tail {
			// The primitive's result returns directly to our caller.
			rv, err := m.readReg(RegRet)
			if err != nil {
				return err
			}
			rpc, rfp, ok := retTarget(rv)
			if !ok {
				return m.errf("tail call to primitive with corrupt ret register")
			}
			m.classifyTop()
			m.acts = m.acts[:len(m.acts)-1]
			m.pc = rpc
			m.fp = rfp
		} else {
			m.pc++
		}
		m.poisonAfterCall()
		return nil

	case *Cont:
		if argc != 1 {
			return m.errf("continuation expects 1 argument, got %d", argc)
		}
		args, err := m.collectArgs(1, newFP)
		if err != nil {
			return err
		}
		m.resumeCont(callee, args[0])
		return nil

	default:
		return m.errf("attempt to apply non-procedure %s", prim.WriteString(calleeV))
	}
}

// callCC captures the continuation and invokes the receiver in cp with
// it as the single argument. frame is the caller's frame size (the
// instruction's B operand).
func (m *Machine) callCC(frame int) error {
	newFP := m.fp + frame
	k := &Cont{
		Stack:    append([]prim.Value(nil), m.stack[:min(newFP, len(m.stack))]...),
		FP:       m.fp,
		ResumePC: m.pc + 1,
		Acts:     append([]actEntry(nil), m.acts...),
		CSRegs:   append([]prim.Value(nil), m.regs[m.callerSaveLimit():]...),
	}
	k.Acts[len(k.Acts)-1].madeCall = true
	kv := prim.ObjV(k)
	if m.cfg.ArgRegs > 0 {
		m.writeReg(m.cfg.ArgReg(0), kv)
	} else {
		m.storeSlot(newFP, kv, KindArg)
	}
	return m.call(1, newFP, false)
}

// resumeCont reinstates a captured continuation with the given value.
func (m *Machine) resumeCont(k *Cont, value prim.Value) {
	m.ensureStack(len(k.Stack) + 16)
	copy(m.stack, k.Stack)
	// Clear anything above the captured extent within our stack (not
	// semantically necessary; keeps stale values from lingering).
	m.fp = k.FP
	m.pc = k.ResumePC
	m.acts = append(m.acts[:0], k.Acts...)
	copy(m.regs[m.callerSaveLimit():], k.CSRegs)
	m.regs[RegRV] = value
	m.poisonAfterCall()
}

// collectArgs reads an argument list per the calling convention: the
// first ArgRegs arguments from registers, the rest from the callee
// frame's incoming-argument slots.
func (m *Machine) collectArgs(argc, newFP int) ([]prim.Value, error) {
	if cap(m.argbuf) < argc {
		m.argbuf = make([]prim.Value, argc)
	}
	args := m.argbuf[:argc]
	for i := 0; i < argc; i++ {
		if i < m.cfg.ArgRegs {
			v, err := m.readReg(m.cfg.ArgReg(i))
			if err != nil {
				return nil, err
			}
			args[i] = v
		} else {
			v, err := m.loadSlot(newFP+(i-m.cfg.ArgRegs), KindArg)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
	}
	return args, nil
}

// applyPrim applies an open-coded primitive: it reads the encoded
// operands, invokes def and stores the result in register dst. Both
// engines call it (the threaded engine with the definition resolved at
// decode time).
func (m *Machine) applyPrim(dst int, def *prim.Def, regs []int) error {
	if cap(m.argbuf) < len(regs) {
		m.argbuf = make([]prim.Value, len(regs))
	}
	args := m.argbuf[:len(regs)]
	for i, r := range regs {
		if r >= 0 {
			if v, ok := m.regFast(r); ok {
				args[i] = v
				continue
			}
		}
		v, err := m.readOperand(r)
		if err != nil {
			return err
		}
		args[i] = v
	}
	if m.fine {
		m.Counters.PrimInstrs++
	}
	res, err := def.Fn(m.ctx, args)
	if err != nil {
		return err
	}
	m.writeReg(dst, res)
	return nil
}

// readOperand reads a register (>= 0) or frame slot (^slot encoding).
// Slot operands behave like a load consumed immediately: they pay the
// memory penalty plus a full load-use stall.
func (m *Machine) readOperand(r int) (prim.Value, error) {
	if !IsSlotOperand(r) {
		return m.readReg(r)
	}
	v, err := m.loadSlot(m.fp+SlotOperand(r), KindTemp)
	if err != nil {
		return prim.Value{}, err
	}
	m.Counters.Cycles += m.cost.LoadLatency
	m.Counters.StallCycles += m.cost.LoadLatency
	return v, nil
}

// regFast is the inlinable fast path of readReg: a plain register read
// when no load-use stall is pending and restore validation is off. The
// second result is false when the caller must take readReg instead —
// keeping that call out of this function is what keeps it under the
// inlining budget.
func (m *Machine) regFast(r int) (prim.Value, bool) {
	if m.readyAt[r] > m.Counters.Cycles || m.ValidateRestores {
		return prim.Value{}, false
	}
	return m.regs[r], true
}

func (m *Machine) readReg(r int) (prim.Value, error) {
	if ready := m.readyAt[r]; ready > m.Counters.Cycles {
		m.Counters.StallCycles += ready - m.Counters.Cycles
		m.Counters.Cycles = ready
	}
	v := m.regs[r]
	if m.ValidateRestores {
		if _, bad := v.Heap().(poison); bad {
			return prim.Value{}, m.errf("read of destroyed register r%d (missing restore)", r)
		}
	}
	return v, nil
}

func (m *Machine) writeReg(r int, v prim.Value) {
	m.regs[r] = v
	m.readyAt[r] = 0
}

// slotFast is the inlinable fast path of loadSlot: an in-range read
// with counters off needs no per-kind bookkeeping and cannot fail. The
// second result is false when the caller must take loadSlot instead.
func (m *Machine) slotFast(addr int) (prim.Value, bool) {
	if uint(addr) >= uint(len(m.stack)) || m.fine {
		return prim.Value{}, false
	}
	m.Counters.StackReads++
	m.Counters.Cycles += m.cost.MemPenalty
	return m.stack[addr], true
}

func (m *Machine) loadSlot(addr int, kind SlotKind) (prim.Value, error) {
	if addr < 0 || addr >= len(m.stack) {
		return prim.Value{}, m.errf("stack load out of range (%d)", addr)
	}
	m.Counters.StackReads++
	if m.fine {
		m.Counters.ReadsByKind[kind]++
	}
	m.Counters.Cycles += m.cost.MemPenalty
	return m.stack[addr], nil
}

func (m *Machine) storeSlot(addr int, v prim.Value, kind SlotKind) {
	m.ensureStack(addr + 1)
	m.Counters.StackWrites++
	if m.fine {
		m.Counters.WritesByKind[kind]++
	}
	m.Counters.Cycles += m.cost.MemPenalty
	m.stack[addr] = v
}

func (m *Machine) ensureStack(n int) {
	if n <= len(m.stack) {
		return
	}
	grown := make([]prim.Value, max(n, len(m.stack)*2))
	copy(grown, m.stack)
	m.stack = grown
}

func (m *Machine) actTopProc() int {
	if len(m.acts) == 0 {
		return m.prog.MainIndex
	}
	return int(m.acts[len(m.acts)-1].proc)
}

// classifyTop records the finishing activation in the Table 2 breakdown
// (skipped entirely under CountEssential — it only feeds counters).
func (m *Machine) classifyTop() {
	if !m.fine || len(m.acts) == 0 {
		return
	}
	top := m.acts[len(m.acts)-1]
	info := &m.prog.Procs[top.proc]
	pc := &m.Counters.PerProc[top.proc]
	if top.madeCall {
		pc.MadeCalls++
	}
	switch {
	case info.SyntacticLeaf:
		m.Counters.SyntacticLeaves++
	case !top.madeCall:
		m.Counters.NonSyntacticLeaves++
	case info.CallInevitable:
		m.Counters.SyntacticInternal++
	default:
		m.Counters.NonSyntacticInternal++
	}
}

// poisonAfterCall invalidates the caller-save registers (except rv) on
// return from a call.
func (m *Machine) poisonAfterCall() {
	if !m.ValidateRestores {
		return
	}
	CallClobbers(m.cfg).ForEach(func(r int) {
		m.regs[r] = poisonVal
		m.readyAt[r] = 0
	})
}

// poisonAtEntry invalidates everything a fresh activation may not read:
// all registers except ret, cp and the live argument registers.
func (m *Machine) poisonAtEntry(argc int) {
	if !m.ValidateRestores {
		return
	}
	callerSave := m.callerSaveLimit()
	nArgRegs := min(argc, m.cfg.ArgRegs)
	for r := 0; r < callerSave; r++ {
		if r == RegRet || r == RegCP {
			continue
		}
		if r >= m.cfg.ArgReg(0) && r < m.cfg.ArgReg(0)+nArgRegs {
			continue
		}
		m.regs[r] = poisonVal
		m.readyAt[r] = 0
	}
}

// callerSaveLimit returns the first register that is NOT caller-save
// (callee-save registers survive calls).
func (m *Machine) callerSaveLimit() int {
	return m.cfg.CallerSaveLimit()
}

// copyConst deep-copies constants containing mutable structure so each
// evaluation of a quote yields fresh pairs/vectors (matching the
// reference interpreter). Pair cells come from the machine's arena.
func (m *Machine) copyConst(v prim.Value) prim.Value {
	return prim.CopyTree(m.ctx.Arena, v)
}
