package vm

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/prim"
	"repro/internal/sexp"
)

// Machine executes a compiled Program.
type Machine struct {
	prog  *Program
	cfg   Config
	cost  CostModel
	regs  []prim.Value
	stack []prim.Value
	// readyAt[r] is the cycle at which register r becomes usable after a
	// load (load-use stall modeling).
	readyAt []int64
	globals []prim.Value
	fp      int
	pc      int
	argc    int
	acts    []actEntry
	ctx     *prim.Ctx
	argbuf  []prim.Value

	// Counters accumulates all measurements.
	Counters Counters
	// MaxSteps is the execution fuel: the maximum number of instructions
	// the machine may execute before Run returns a *FuelError matching
	// ErrFuelExhausted (0 = unlimited). It is the only way to bound a
	// hostile or looping program — the machine does not poll contexts.
	MaxSteps int64
	// ValidateRestores poisons caller-save registers at every call
	// boundary; reading a poisoned register traps. It turns a missing
	// restore into a hard error instead of silent wrong answers.
	ValidateRestores bool
}

// New creates a machine for prog; out receives display/write output (nil
// discards it).
func New(prog *Program, out io.Writer) *Machine {
	m := &Machine{
		prog:    prog,
		cfg:     prog.Config,
		cost:    DefaultCostModel(),
		regs:    make([]prim.Value, prog.Config.NumRegs()),
		readyAt: make([]int64, prog.Config.NumRegs()),
		stack:   make([]prim.Value, 1024),
		globals: make([]prim.Value, len(prog.GlobalNames)),
		ctx:     &prim.Ctx{Out: out},
	}
	for i, d := range prog.PrimGlobals {
		if d != nil {
			m.globals[i] = &PrimValue{Def: d}
		}
	}
	m.Counters.PerProc = make([]ProcCounters, len(prog.Procs))
	for i, p := range prog.Procs {
		m.Counters.PerProc[i].Name = p.Name
	}
	return m
}

// SetCostModel overrides the default cost model.
func (m *Machine) SetCostModel(c CostModel) { m.cost = c }

// RuntimeError is a trap raised during execution.
type RuntimeError struct {
	PC  int
	Msg string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("vm: runtime error at %d: %s", e.PC, e.Msg)
}

// ErrFuelExhausted is the sentinel for a machine that ran out of its
// step budget. Callers match it with errors.Is; the concrete error is a
// *FuelError carrying the budget and the pc where execution stopped.
var ErrFuelExhausted = errors.New("vm: fuel exhausted")

// FuelError reports that execution consumed its entire step budget
// (Machine.MaxSteps) without halting. It is deterministic: the same
// program with the same budget stops at the same pc.
type FuelError struct {
	// Budget is the MaxSteps the machine started with.
	Budget int64
	// PC is the instruction address at which the budget ran out.
	PC int
}

func (e *FuelError) Error() string {
	return fmt.Sprintf("vm: fuel exhausted after %d steps at pc %d", e.Budget, e.PC)
}

// Is makes errors.Is(err, ErrFuelExhausted) true for *FuelError.
func (e *FuelError) Is(target error) bool { return target == ErrFuelExhausted }

func (m *Machine) errf(format string, args ...interface{}) error {
	return &RuntimeError{PC: m.pc, Msg: fmt.Sprintf(format, args...)}
}

// Run executes the program and returns its result value.
func (m *Machine) Run() (prim.Value, error) {
	main := m.prog.Procs[m.prog.MainIndex]
	m.regs[RegCP] = &Closure{Proc: m.prog.MainIndex}
	m.regs[RegRet] = RetAddr{PC: 0, FP: 0} // code[0] is halt
	m.pc = main.Entry
	m.fp = 0
	m.argc = 0
	m.acts = append(m.acts[:0], actEntry{proc: int32(m.prog.MainIndex)})
	m.Counters.Activations++
	m.Counters.PerProc[m.prog.MainIndex].Activations++
	return m.loop()
}

func (m *Machine) loop() (prim.Value, error) {
	c := &m.Counters
	for {
		if m.pc < 0 || m.pc >= len(m.prog.Code) {
			return nil, m.errf("pc out of range")
		}
		in := &m.prog.Code[m.pc]
		c.Instructions++
		c.Cycles++
		if m.MaxSteps > 0 && c.Instructions > m.MaxSteps {
			return nil, &FuelError{Budget: m.MaxSteps, PC: m.pc}
		}
		switch in.Op {
		case OpHalt:
			v, err := m.readReg(RegRV)
			if err != nil {
				return nil, err
			}
			return v, nil

		case OpEntry:
			if m.argc != in.A {
				name := m.prog.Procs[m.actTopProc()].Name
				return nil, m.errf("%s expects %d arguments, got %d", name, in.A, m.argc)
			}
			m.ensureStack(m.fp + in.B + 16)
			m.pc++

		case OpMove:
			v, err := m.readReg(in.B)
			if err != nil {
				return nil, err
			}
			m.writeReg(in.A, v)
			m.pc++

		case OpLoadConst:
			v := m.prog.Consts[in.B]
			if m.prog.ConstMutable[in.B] {
				v = copyConst(v)
			}
			m.writeReg(in.A, v)
			m.pc++

		case OpLoadGlobal:
			v := m.globals[in.B]
			if v == nil {
				return nil, m.errf("unbound global %s", m.prog.GlobalNames[in.B])
			}
			m.writeReg(in.A, v)
			m.pc++

		case OpStoreGlobal:
			v, err := m.readReg(in.A)
			if err != nil {
				return nil, err
			}
			m.globals[in.B] = v
			m.pc++

		case OpLoadSlot:
			v, err := m.loadSlot(m.fp+in.B, in.Kind)
			if err != nil {
				return nil, err
			}
			m.regs[in.A] = v
			m.readyAt[in.A] = c.Cycles + m.cost.LoadLatency
			m.pc++

		case OpStoreSlot:
			v, err := m.readReg(in.A)
			if err != nil {
				return nil, err
			}
			m.storeSlot(m.fp+in.B, v, in.Kind)
			m.pc++

		case OpStoreOut:
			v, err := m.readReg(in.A)
			if err != nil {
				return nil, err
			}
			m.storeSlot(m.fp+in.C+in.B, v, in.Kind)
			m.pc++

		case OpPrim:
			if err := m.doPrim(in); err != nil {
				return nil, err
			}
			m.pc++

		case OpClosure:
			free := make([]prim.Value, len(in.Regs))
			for i, r := range in.Regs {
				v, err := m.readOperand(r)
				if err != nil {
					return nil, err
				}
				free[i] = v
			}
			m.writeReg(in.A, &Closure{Proc: in.B, Free: free})
			m.pc++

		case OpClosurePatch:
			cv, err := m.readReg(in.A)
			if err != nil {
				return nil, err
			}
			cl, ok := cv.(*Closure)
			if !ok {
				return nil, m.errf("closure-patch of non-closure")
			}
			v, err := m.readReg(in.C)
			if err != nil {
				return nil, err
			}
			cl.Free[in.B] = v
			m.pc++

		case OpFreeRef:
			cpv, err := m.readReg(RegCP)
			if err != nil {
				return nil, err
			}
			cl, ok := cpv.(*Closure)
			if !ok {
				return nil, m.errf("free-ref with non-closure cp")
			}
			m.writeReg(in.A, cl.Free[in.B])
			m.pc++

		case OpJump:
			m.pc = in.A

		case OpBranchFalse:
			v, err := m.readReg(in.A)
			if err != nil {
				return nil, err
			}
			taken := !prim.Truthy(v)
			c.Branches++
			if in.Predict != 0 {
				c.PredictedBranches++
				predictedTaken := in.Predict > 0
				if taken != predictedTaken {
					c.Mispredicts++
					c.Cycles += m.cost.BranchMispredict
				}
			}
			if taken {
				m.pc = in.B
			} else {
				m.pc++
			}

		case OpCall:
			if err := m.call(in.A, m.fp+in.B, false); err != nil {
				return nil, err
			}

		case OpTailCall:
			if err := m.call(in.A, m.fp, true); err != nil {
				return nil, err
			}

		case OpCallCC:
			if err := m.callCC(in); err != nil {
				return nil, err
			}

		case OpReturn:
			rv, err := m.readReg(RegRet)
			if err != nil {
				return nil, err
			}
			ra, ok := rv.(RetAddr)
			if !ok {
				return nil, m.errf("return with corrupt ret register (%s)", prim.WriteString(rv))
			}
			if len(m.acts) == 0 {
				return nil, m.errf("return with empty activation stack")
			}
			m.classifyTop()
			m.acts = m.acts[:len(m.acts)-1]
			m.pc = ra.PC
			m.fp = ra.FP
			m.poisonAfterCall()

		default:
			return nil, m.errf("unknown opcode %d", in.Op)
		}
	}
}

// call dispatches a procedure invocation. newFP is the callee frame
// pointer; for non-tail calls ret has NOT yet been set (done here).
func (m *Machine) call(argc, newFP int, tail bool) error {
	calleeV, err := m.readReg(RegCP)
	if err != nil {
		return err
	}
	if !tail {
		m.acts[len(m.acts)-1].madeCall = true
		m.Counters.Calls++
	} else {
		m.Counters.TailCalls++
	}
	switch callee := calleeV.(type) {
	case *Closure:
		proc := &m.prog.Procs[callee.Proc]
		if !tail {
			m.regs[RegRet] = RetAddr{PC: m.pc + 1, FP: m.fp}
			m.acts = append(m.acts, actEntry{proc: int32(callee.Proc)})
		} else {
			m.classifyTop()
			m.acts[len(m.acts)-1] = actEntry{proc: int32(callee.Proc)}
		}
		m.Counters.Activations++
		m.Counters.PerProc[callee.Proc].Activations++
		m.fp = newFP
		m.argc = argc
		m.pc = proc.Entry
		m.poisonAtEntry(argc)
		return nil

	case *PrimValue:
		args, err := m.collectArgs(argc, newFP)
		if err != nil {
			return err
		}
		if err := prim.CheckArity(callee.Def, argc); err != nil {
			return m.errf("%v", err)
		}
		res, err := callee.Def.Fn(m.ctx, args)
		if err != nil {
			return err
		}
		m.regs[RegRV] = res
		if tail {
			// The primitive's result returns directly to our caller.
			rv, err := m.readReg(RegRet)
			if err != nil {
				return err
			}
			ra, ok := rv.(RetAddr)
			if !ok {
				return m.errf("tail call to primitive with corrupt ret register")
			}
			m.classifyTop()
			m.acts = m.acts[:len(m.acts)-1]
			m.pc = ra.PC
			m.fp = ra.FP
		} else {
			m.pc++
		}
		m.poisonAfterCall()
		return nil

	case *Cont:
		if argc != 1 {
			return m.errf("continuation expects 1 argument, got %d", argc)
		}
		args, err := m.collectArgs(1, newFP)
		if err != nil {
			return err
		}
		m.resumeCont(callee, args[0])
		return nil

	default:
		return m.errf("attempt to apply non-procedure %s", prim.WriteString(calleeV))
	}
}

// callCC captures the continuation and invokes the receiver in cp with
// it as the single argument.
func (m *Machine) callCC(in *Instr) error {
	newFP := m.fp + in.B
	k := &Cont{
		Stack:    append([]prim.Value(nil), m.stack[:min(newFP, len(m.stack))]...),
		FP:       m.fp,
		ResumePC: m.pc + 1,
		Acts:     append([]actEntry(nil), m.acts...),
		CSRegs:   append([]prim.Value(nil), m.regs[m.callerSaveLimit():]...),
	}
	k.Acts[len(k.Acts)-1].madeCall = true
	if m.cfg.ArgRegs > 0 {
		m.writeReg(m.cfg.ArgReg(0), k)
	} else {
		m.storeSlot(newFP, k, KindArg)
	}
	return m.call(1, newFP, false)
}

// resumeCont reinstates a captured continuation with the given value.
func (m *Machine) resumeCont(k *Cont, value prim.Value) {
	m.ensureStack(len(k.Stack) + 16)
	copy(m.stack, k.Stack)
	// Clear anything above the captured extent within our stack (not
	// semantically necessary; keeps stale values from lingering).
	m.fp = k.FP
	m.pc = k.ResumePC
	m.acts = append(m.acts[:0], k.Acts...)
	copy(m.regs[m.callerSaveLimit():], k.CSRegs)
	m.regs[RegRV] = value
	m.poisonAfterCall()
}

// collectArgs reads an argument list per the calling convention: the
// first ArgRegs arguments from registers, the rest from the callee
// frame's incoming-argument slots.
func (m *Machine) collectArgs(argc, newFP int) ([]prim.Value, error) {
	if cap(m.argbuf) < argc {
		m.argbuf = make([]prim.Value, argc)
	}
	args := m.argbuf[:argc]
	for i := 0; i < argc; i++ {
		if i < m.cfg.ArgRegs {
			v, err := m.readReg(m.cfg.ArgReg(i))
			if err != nil {
				return nil, err
			}
			args[i] = v
		} else {
			v, err := m.loadSlot(newFP+(i-m.cfg.ArgRegs), KindArg)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
	}
	return args, nil
}

func (m *Machine) doPrim(in *Instr) error {
	def := m.prog.Prims[in.B]
	if cap(m.argbuf) < len(in.Regs) {
		m.argbuf = make([]prim.Value, len(in.Regs))
	}
	args := m.argbuf[:len(in.Regs)]
	for i, r := range in.Regs {
		v, err := m.readOperand(r)
		if err != nil {
			return err
		}
		args[i] = v
	}
	m.Counters.PrimInstrs++
	res, err := def.Fn(m.ctx, args)
	if err != nil {
		return err
	}
	m.writeReg(in.A, res)
	return nil
}

// readOperand reads a register (>= 0) or frame slot (^slot encoding).
// Slot operands behave like a load consumed immediately: they pay the
// memory penalty plus a full load-use stall.
func (m *Machine) readOperand(r int) (prim.Value, error) {
	if !IsSlotOperand(r) {
		return m.readReg(r)
	}
	v, err := m.loadSlot(m.fp+SlotOperand(r), KindTemp)
	if err != nil {
		return nil, err
	}
	m.Counters.Cycles += m.cost.LoadLatency
	m.Counters.StallCycles += m.cost.LoadLatency
	return v, nil
}

func (m *Machine) readReg(r int) (prim.Value, error) {
	if ready := m.readyAt[r]; ready > m.Counters.Cycles {
		m.Counters.StallCycles += ready - m.Counters.Cycles
		m.Counters.Cycles = ready
	}
	v := m.regs[r]
	if m.ValidateRestores {
		if _, bad := v.(poison); bad {
			return nil, m.errf("read of destroyed register r%d (missing restore)", r)
		}
	}
	return v, nil
}

func (m *Machine) writeReg(r int, v prim.Value) {
	m.regs[r] = v
	m.readyAt[r] = 0
}

func (m *Machine) loadSlot(addr int, kind SlotKind) (prim.Value, error) {
	if addr < 0 || addr >= len(m.stack) {
		return nil, m.errf("stack load out of range (%d)", addr)
	}
	m.Counters.StackReads++
	m.Counters.ReadsByKind[kind]++
	m.Counters.Cycles += m.cost.MemPenalty
	return m.stack[addr], nil
}

func (m *Machine) storeSlot(addr int, v prim.Value, kind SlotKind) {
	m.ensureStack(addr + 1)
	m.Counters.StackWrites++
	m.Counters.WritesByKind[kind]++
	m.Counters.Cycles += m.cost.MemPenalty
	m.stack[addr] = v
}

func (m *Machine) ensureStack(n int) {
	if n <= len(m.stack) {
		return
	}
	grown := make([]prim.Value, max(n, len(m.stack)*2))
	copy(grown, m.stack)
	m.stack = grown
}

func (m *Machine) actTopProc() int {
	if len(m.acts) == 0 {
		return m.prog.MainIndex
	}
	return int(m.acts[len(m.acts)-1].proc)
}

// classifyTop records the finishing activation in the Table 2 breakdown.
func (m *Machine) classifyTop() {
	if len(m.acts) == 0 {
		return
	}
	top := m.acts[len(m.acts)-1]
	info := &m.prog.Procs[top.proc]
	pc := &m.Counters.PerProc[top.proc]
	if top.madeCall {
		pc.MadeCalls++
	}
	switch {
	case info.SyntacticLeaf:
		m.Counters.SyntacticLeaves++
	case !top.madeCall:
		m.Counters.NonSyntacticLeaves++
	case info.CallInevitable:
		m.Counters.SyntacticInternal++
	default:
		m.Counters.NonSyntacticInternal++
	}
}

// poisonAfterCall invalidates the caller-save registers (except rv) on
// return from a call.
func (m *Machine) poisonAfterCall() {
	if !m.ValidateRestores {
		return
	}
	CallClobbers(m.cfg).ForEach(func(r int) {
		m.regs[r] = poison{}
		m.readyAt[r] = 0
	})
}

// poisonAtEntry invalidates everything a fresh activation may not read:
// all registers except ret, cp and the live argument registers.
func (m *Machine) poisonAtEntry(argc int) {
	if !m.ValidateRestores {
		return
	}
	callerSave := m.callerSaveLimit()
	nArgRegs := min(argc, m.cfg.ArgRegs)
	for r := 0; r < callerSave; r++ {
		if r == RegRet || r == RegCP {
			continue
		}
		if r >= m.cfg.ArgReg(0) && r < m.cfg.ArgReg(0)+nArgRegs {
			continue
		}
		m.regs[r] = poison{}
		m.readyAt[r] = 0
	}
}

// callerSaveLimit returns the first register that is NOT caller-save
// (callee-save registers survive calls).
func (m *Machine) callerSaveLimit() int {
	return m.cfg.CallerSaveLimit()
}

// copyConst deep-copies constants containing mutable structure so each
// evaluation of a quote yields fresh pairs/vectors (matching the
// reference interpreter).
func copyConst(v prim.Value) prim.Value {
	switch t := v.(type) {
	case *sexp.Pair:
		return &sexp.Pair{
			Car: copyConst(t.Car).(sexp.Datum),
			Cdr: copyConst(t.Cdr).(sexp.Datum),
		}
	case *sexp.Vector:
		items := make([]sexp.Datum, len(t.Items))
		for i, it := range t.Items {
			items[i] = copyConst(it).(sexp.Datum)
		}
		return &sexp.Vector{Items: items}
	default:
		return v
	}
}
