package vm

// This file is the pre-decoded execution engine: the default hot path
// behind Machine.Run. At first use of a Program it decodes every Instr
// once into a flat array of operand records (dcode) — constants,
// primitive definitions and slot kinds are resolved at decode time, and
// each record carries a dense dispatch code plus an optional handler
// func pointer. Single instructions dispatch through a jump table over
// the dispatch code (an indirect call per instruction costs more than a
// table switch in Go, so the common case stays call-free); fused
// superinstructions (fuse.go) and the rare slow paths dispatch through
// the handler pointer, which is also the engine's extension point.
//
// The engine invariant — enforced by TestEngineEquivalence — is that
// this engine is observably identical to the reference switch loop
// (switchloop.go): same result values, same errors (including
// *FuelError program counters), and byte-for-byte identical Counters
// under CountFull. Simulated cycle accounting is the reproduction's
// measuring stick, so every dispatch arm charges the dispatch cycle,
// memory penalties and load-use stalls in exactly the order the switch
// loop does; fused handlers replicate the per-sub-instruction sequence.

import (
	"repro/internal/prim"
	"repro/internal/sexp"
)

// CounterMode selects the fidelity of the measurement counters.
type CounterMode uint8

const (
	// CountFull (the default) maintains every counter: the per-kind
	// stack-reference breakdown, the Table 2 activation classification,
	// per-procedure statistics, and call/branch counts.
	CountFull CounterMode = iota
	// CountEssential is the counters-off fast path: only the cost
	// model's own outputs are maintained — Instructions (also the fuel
	// meter), Cycles, StallCycles, StackReads and StackWrites. Cycles
	// are byte-for-byte identical to CountFull (mispredict penalties
	// are still charged); everything else reads zero.
	CountEssential
)

// EngineKind selects the execution engine.
type EngineKind uint8

const (
	// EngineThreaded (the default) is the pre-decoded engine in this
	// file, with superinstruction fusion (fuse.go).
	EngineThreaded EngineKind = iota
	// EngineSwitch is the reference decode-every-step switch loop
	// (switchloop.go), kept as the semantic baseline the differential
	// test compares against.
	EngineSwitch
)

// handler executes one fused run or slow-path instruction. It performs
// its own step accounting (tick per sub-instruction) and pc update; a
// nil return means "keep dispatching".
type handler func(*Machine, *dcode) error

// xcode is the dense dispatch code runThreaded switches on. xFn routes
// through dcode.fn (fused runs and slow paths); every other value is an
// inline arm for one opcode.
type xcode uint8

const (
	xFn xcode = iota
	xHalt
	xEntry
	xMove
	xLoadConst
	xLoadGlobal
	xStoreGlobal
	xLoadSlot
	xStoreSlot
	xStoreOut
	xPrim
	xClosure
	xClosurePatch
	xFreeRef
	xJump
	xBranchFalse
	xCall
	xTailCall
	xCallCC
	xReturn
	xUnknown

	// Specialized primitives (see specPrim): OpPrim instructions whose
	// primitive is hot, whose arity is fixed, and whose operands are all
	// registers get a dedicated arm that skips the argument buffer and
	// the indirect Fn call. Each arm handles only the dominant type
	// case and falls back to the table implementation (d.def.Fn) for
	// everything else, so behavior — including error messages — is
	// identical to the generic xPrim arm.
	// One-argument specialized primitives (xPCar..xPBooleanP), then
	// two-argument ones (xPCons..xPCharEq). spec2 and isSpecPrim rely
	// on this ordering.
	xPCar
	xPCdr
	xPNullP
	xPPairP
	xPZeroP
	xPAdd1
	xPSub1
	xPSymbolP
	xPVectorP
	xPNumberP
	xPBooleanP
	xPCons
	xPEq
	xPAdd
	xPSub
	xPMul
	xPLt
	xPNumEq
	xPVectorRef
	xPStringRef
	xPCharEq

	// xPredBr is a fused predicate-primitive + branch-false pair
	// (fuse.go): a specialized predicate whose result feeds the
	// immediately following OpBranchFalse. The predicate kind lives in
	// dcode.pk, the branch target in dcode.tgt.
	xPredBr
	// xPrimSt is a fused specialized-primitive + store-slot pair
	// (fuse.go): the store saves the primitive's result. The primitive
	// kind lives in dcode.pk, the slot offset in dcode.tgt, the slot
	// kind in dcode.kind.
	xPrimSt
	// xHeadSt is a fused value-producer + store pair (fuse.go): a
	// load-const, load-global or move whose result the immediately
	// following store-slot or store-out saves. The producer kind lives
	// in dcode.pk, the store parameters in dcode.tgt/kind/stOut/c.
	xHeadSt
)

// specPrim maps a hot fixed-arity primitive to its specialized dispatch
// code. Operands may be registers or stack slots — the arms read them
// through the same regFast/readOperand pattern as the generic arm.
func specPrim(name sexp.Symbol, regs []int) (xcode, bool) {
	switch len(regs) {
	case 1:
		switch name {
		case "car":
			return xPCar, true
		case "cdr":
			return xPCdr, true
		case "null?":
			return xPNullP, true
		case "pair?":
			return xPPairP, true
		case "zero?":
			return xPZeroP, true
		case "1+", "add1":
			return xPAdd1, true
		case "1-", "sub1":
			return xPSub1, true
		case "symbol?":
			return xPSymbolP, true
		case "vector?":
			return xPVectorP, true
		case "number?":
			return xPNumberP, true
		case "boolean?":
			return xPBooleanP, true
		}
	case 2:
		switch name {
		case "cons":
			return xPCons, true
		case "eq?", "eqv?":
			return xPEq, true
		case "+":
			return xPAdd, true
		case "-":
			return xPSub, true
		case "*":
			return xPMul, true
		case "<":
			return xPLt, true
		case "=":
			return xPNumEq, true
		case "vector-ref":
			return xPVectorRef, true
		case "string-ref":
			return xPStringRef, true
		case "char=?":
			return xPCharEq, true
		}
	}
	return 0, false
}

// isSpecPrim reports whether x is a specialized-primitive dispatch code.
func isSpecPrim(x xcode) bool { return x >= xPCar && x <= xPCharEq }

// spec2 reports whether specialized primitive pk takes two arguments.
func spec2(pk xcode) bool { return pk >= xPCons }

// specCompute1 computes a one-argument specialized primitive; a None
// (zero) result means the argument was outside the fast type case and
// the caller must fall back to the table implementation. (None itself
// is unreachable as a primitive result: predicates yield booleans, and
// car/cdr can only yield values a program put into a pair.) The cases
// mirror the inline single-instruction arms in runThreaded (and through
// them the prim table) — keep all three in step.
func specCompute1(pk xcode, v prim.Value) prim.Value {
	switch pk {
	case xPCar:
		if p, isPair := v.Pair(); isPair {
			return p.Car
		}
	case xPCdr:
		if p, isPair := v.Pair(); isPair {
			return p.Cdr
		}
	case xPNullP:
		return prim.BoolV(v.IsEmpty())
	case xPPairP:
		_, isPair := v.Pair()
		return prim.BoolV(isPair)
	case xPZeroP:
		if n, isFix := v.Fixnum(); isFix {
			return prim.BoolV(n == 0)
		}
	case xPAdd1:
		if n, isFix := v.Fixnum(); isFix {
			return prim.FixV(n + 1)
		}
	case xPSub1:
		if n, isFix := v.Fixnum(); isFix {
			return prim.FixV(n - 1)
		}
	case xPSymbolP:
		_, isSym := v.Symbol()
		return prim.BoolV(isSym)
	case xPVectorP:
		_, isVec := v.Vector()
		return prim.BoolV(isVec)
	case xPNumberP:
		return prim.BoolV(v.IsNumber())
	case xPBooleanP:
		return prim.BoolV(v.IsBool())
	}
	return prim.Value{}
}

// specCompute2 is specCompute1 for the two-argument primitives. It
// takes the machine's Ctx because cons draws its cell from the arena.
func specCompute2(pk xcode, ctx *prim.Ctx, x, y prim.Value) prim.Value {
	switch pk {
	case xPCons:
		return ctx.Cons(x, y)
	case xPEq:
		return prim.BoolV(prim.Eqv(x, y))
	case xPVectorRef:
		if vec, okv := x.Vector(); okv {
			if i, oki := y.Fixnum(); oki && i >= 0 && int(i) < len(vec.Items) {
				return vec.Items[i]
			}
		}
	case xPStringRef:
		if str, oks := x.Str(); oks {
			if i, oki := y.Fixnum(); oki && i >= 0 && int(i) < len(str) {
				return prim.CharV(rune(str[i]))
			}
		}
	case xPCharEq:
		if xc, okx := x.Char(); okx {
			if yc, oky := y.Char(); oky {
				return prim.BoolV(xc == yc)
			}
		}
	default:
		if xn, okx := x.Fixnum(); okx {
			if yn, oky := y.Fixnum(); oky {
				switch pk {
				case xPAdd:
					return prim.FixV(xn + yn)
				case xPSub:
					return prim.FixV(xn - yn)
				case xPMul:
					return prim.FixV(xn * yn)
				case xPLt:
					return prim.BoolV(xn < yn)
				case xPNumEq:
					return prim.BoolV(xn == yn)
				}
			}
		}
	}
	return prim.Value{}
}

// dcode is one pre-decoded instruction: the dispatch code plus its
// operands, resolved as far as immutability allows at decode time.
// (An experiment that shrank the record to one cache line by moving
// operand lists to a side table and type-punning val/def measurably
// regressed: the extra indirections in the hot prim arm cost more than
// the smaller record saved.)
type dcode struct {
	x xcode
	// pk is the pre-fusion xcode of the first instruction of a fused
	// pair (xPredBr, xPrimSt, xHeadSt).
	pk      xcode
	op      Op
	kind    SlotKind
	predict int8
	// stOut marks an xHeadSt record whose store is a store-out (the
	// outgoing-argument base offset is in c) rather than a store-slot.
	stOut   bool
	a, b, c int
	// tgt is the branch target of an xPredBr record.
	tgt int
	// fn is the handler for xFn records (fused runs, slow paths).
	fn handler
	// regs aliases Instr.Regs (OpPrim/OpClosure operand lists).
	regs []int
	// val is the pre-resolved constant for immutable OpLoadConst.
	val prim.Value
	// def is the pre-resolved primitive for OpPrim.
	def *prim.Def
	// els is the element list of a fused run (fuse.go); nil otherwise.
	els []fusedEl
}

// engineCode is a Program's decoded form, built once and shared by
// every Machine running the program (it is immutable after build, like
// the Program itself).
type engineCode struct {
	code []dcode
}

// engine returns the Program's decoded form, building it on first use.
func (p *Program) engine() *engineCode {
	p.engOnce.Do(func() { p.eng = buildEngine(p) })
	return p.eng
}

func buildEngine(p *Program) *engineCode {
	eng := &engineCode{code: make([]dcode, len(p.Code))}
	for pc := range p.Code {
		decodeOne(p, &p.Code[pc], &eng.code[pc])
	}
	fuse(p, eng.code)
	return eng
}

// decodeOne lowers one Instr to its decoded form. Pool references are
// resolved only when they are in range; out-of-range references get the
// slow handler so the failure (a panic, as in the switch loop) happens
// at execution time, not at decode time — a program whose corrupt
// instruction is never reached must run identically on both engines.
func decodeOne(p *Program, in *Instr, d *dcode) {
	d.op = in.Op
	d.a, d.b, d.c = in.A, in.B, in.C
	d.kind = in.Kind
	d.predict = in.Predict
	d.regs = in.Regs
	switch in.Op {
	case OpHalt:
		d.x = xHalt
	case OpEntry:
		d.x = xEntry
	case OpMove:
		d.x = xMove
	case OpLoadConst:
		if in.B >= 0 && in.B < len(p.Consts) && in.B < len(p.ConstMutable) && !p.ConstMutable[in.B] {
			d.val = p.Consts[in.B]
			d.x = xLoadConst
		} else {
			d.x = xFn
			d.fn = hLoadConstSlow
		}
	case OpLoadGlobal:
		d.x = xLoadGlobal
	case OpStoreGlobal:
		d.x = xStoreGlobal
	case OpLoadSlot:
		d.x = xLoadSlot
	case OpStoreSlot:
		d.x = xStoreSlot
	case OpStoreOut:
		d.x = xStoreOut
	case OpPrim:
		if in.B >= 0 && in.B < len(p.Prims) {
			d.def = p.Prims[in.B]
			d.x = xPrim
			if x, ok := specPrim(d.def.Name, in.Regs); ok {
				// Repurpose b and c (the generic arm never reads them)
				// as the argument registers.
				d.x = x
				d.b = in.Regs[0]
				if len(in.Regs) == 2 {
					d.c = in.Regs[1]
				}
			}
		} else {
			d.x = xFn
			d.fn = hPrimSlow
		}
	case OpClosure:
		d.x = xClosure
	case OpClosurePatch:
		d.x = xClosurePatch
	case OpFreeRef:
		d.x = xFreeRef
	case OpJump:
		d.x = xJump
	case OpBranchFalse:
		d.x = xBranchFalse
	case OpCall:
		d.x = xCall
	case OpTailCall:
		d.x = xTailCall
	case OpCallCC:
		d.x = xCallCC
	case OpReturn:
		d.x = xReturn
	default:
		d.x = xUnknown
	}
}

// runThreaded is the pre-decoded dispatch loop. Every arm mirrors the
// corresponding case of the reference loop exactly (switchloop.go is
// the semantic baseline — change it first), reading resolved operands
// from the dcode instead of re-decoding the Instr.
func (m *Machine) runThreaded() (prim.Value, error) {
	code := m.prog.engine().code
	c := &m.Counters
	// The fuel compare runs every instruction; folding "no limit" into
	// a maximal budget makes it a single always-taken-false branch.
	limit := m.MaxSteps
	if limit <= 0 {
		limit = int64(^uint64(0) >> 1)
	}
	for {
		// pc is read into a local once per iteration: the helpers the
		// arms call may reassign m.pc, so without the local the
		// compiler must reload it (and re-check bounds) at every use.
		pc := m.pc
		if uint(pc) >= uint(len(code)) {
			return prim.Value{}, m.errf("pc out of range")
		}
		d := &code[pc]
		if d.x != xFn {
			c.Instructions++
			c.Cycles++
			if c.Instructions > limit {
				return prim.Value{}, &FuelError{Budget: m.MaxSteps, PC: pc}
			}
		}
		switch d.x {
		case xFn:
			// Fused runs and slow paths tick per sub-instruction
			// themselves.
			if err := d.fn(m, d); err != nil {
				return prim.Value{}, err
			}
		case xHalt:
			return m.readReg(RegRV)

		case xEntry:
			if m.argc != d.a {
				name := m.prog.Procs[m.actTopProc()].Name
				return prim.Value{}, m.errf("%s expects %d arguments, got %d", name, d.a, m.argc)
			}
			m.ensureStack(m.fp + d.b + 16)
			m.pc++

		case xMove:
			v, ok := m.regFast(d.b)
			if !ok {
				var err error
				if v, err = m.readReg(d.b); err != nil {
					return prim.Value{}, err
				}
			}
			m.writeReg(d.a, v)
			m.pc++

		case xLoadConst:
			m.writeReg(d.a, d.val)
			m.pc++

		case xLoadGlobal:
			v := m.globals[d.b]
			if v.IsNone() {
				return prim.Value{}, m.errf("unbound global %s", m.prog.GlobalNames[d.b])
			}
			m.writeReg(d.a, v)
			m.pc++

		case xStoreGlobal:
			v, ok := m.regFast(d.a)
			if !ok {
				var err error
				if v, err = m.readReg(d.a); err != nil {
					return prim.Value{}, err
				}
			}
			m.globals[d.b] = v
			m.pc++

		case xLoadSlot:
			v, ok := m.slotFast(m.fp + d.b)
			if !ok {
				var err error
				if v, err = m.loadSlot(m.fp+d.b, d.kind); err != nil {
					return prim.Value{}, err
				}
			}
			m.regs[d.a] = v
			m.readyAt[d.a] = c.Cycles + m.cost.LoadLatency
			m.pc++

		case xStoreSlot:
			v, ok := m.regFast(d.a)
			if !ok {
				var err error
				if v, err = m.readReg(d.a); err != nil {
					return prim.Value{}, err
				}
			}
			m.storeSlot(m.fp+d.b, v, d.kind)
			m.pc++

		case xStoreOut:
			v, ok := m.regFast(d.a)
			if !ok {
				var err error
				if v, err = m.readReg(d.a); err != nil {
					return prim.Value{}, err
				}
			}
			m.storeSlot(m.fp+d.c+d.b, v, d.kind)
			m.pc++

		case xPrim:
			// applyPrim (machine.go), hand-inlined: it is far past the
			// compiler's inlining budget and the call overhead is
			// measurable at this frequency. Keep the two in step.
			regs := d.regs
			if cap(m.argbuf) < len(regs) {
				m.argbuf = make([]prim.Value, len(regs))
			}
			args := m.argbuf[:len(regs)]
			for i, r := range regs {
				if r >= 0 {
					if v, ok := m.regFast(r); ok {
						args[i] = v
						continue
					}
				}
				v, err := m.readOperand(r)
				if err != nil {
					return prim.Value{}, err
				}
				args[i] = v
			}
			if m.fine {
				c.PrimInstrs++
			}
			res, err := d.def.Fn(m.ctx, args)
			if err != nil {
				return prim.Value{}, err
			}
			m.writeReg(d.a, res)
			m.pc++

		// Specialized primitive arms. Each mirrors the generic xPrim
		// arm exactly — read the argument registers in order (with the
		// same stall accounting), count the prim, produce the result,
		// write it back — but computes the dominant type case inline
		// and falls back to the table implementation (primFallback*)
		// for every other case, including errors.
		case xPCar, xPCdr, xPNullP, xPPairP, xPZeroP, xPAdd1, xPSub1,
			xPSymbolP, xPVectorP, xPNumberP, xPBooleanP:
			var v prim.Value
			var ok bool
			if d.b >= 0 {
				v, ok = m.regFast(d.b)
			}
			if !ok {
				var err error
				if v, err = m.readOperand(d.b); err != nil {
					return prim.Value{}, err
				}
			}
			if m.fine {
				c.PrimInstrs++
			}
			var res prim.Value
			switch d.x {
			case xPCar:
				if p, isPair := v.Pair(); isPair {
					res = p.Car
				}
			case xPCdr:
				if p, isPair := v.Pair(); isPair {
					res = p.Cdr
				}
			case xPNullP:
				res = prim.BoolV(v.IsEmpty())
			case xPPairP:
				_, isPair := v.Pair()
				res = prim.BoolV(isPair)
			case xPZeroP:
				if n, isFix := v.Fixnum(); isFix {
					res = prim.BoolV(n == 0)
				}
			case xPAdd1:
				if n, isFix := v.Fixnum(); isFix {
					res = prim.FixV(n + 1)
				}
			case xPSub1:
				if n, isFix := v.Fixnum(); isFix {
					res = prim.FixV(n - 1)
				}
			case xPSymbolP:
				_, isSym := v.Symbol()
				res = prim.BoolV(isSym)
			case xPVectorP:
				_, isVec := v.Vector()
				res = prim.BoolV(isVec)
			case xPNumberP:
				res = prim.BoolV(v.IsNumber())
			case xPBooleanP:
				res = prim.BoolV(v.IsBool())
			}
			if res.IsNone() {
				var err error
				if res, err = m.primFallback1(d, v); err != nil {
					return prim.Value{}, err
				}
			}
			m.writeReg(d.a, res)
			m.pc++

		case xPCons, xPEq, xPAdd, xPSub, xPMul, xPLt, xPNumEq,
			xPVectorRef, xPStringRef, xPCharEq:
			var x, y prim.Value
			var ok bool
			if d.b >= 0 {
				x, ok = m.regFast(d.b)
			}
			if !ok {
				var err error
				if x, err = m.readOperand(d.b); err != nil {
					return prim.Value{}, err
				}
			}
			ok = false
			if d.c >= 0 {
				y, ok = m.regFast(d.c)
			}
			if !ok {
				var err error
				if y, err = m.readOperand(d.c); err != nil {
					return prim.Value{}, err
				}
			}
			if m.fine {
				c.PrimInstrs++
			}
			var res prim.Value
			switch d.x {
			case xPCons:
				res = m.ctx.Cons(x, y)
			case xPEq:
				res = prim.BoolV(prim.Eqv(x, y))
			case xPVectorRef:
				if vec, okv := x.Vector(); okv {
					if i, oki := y.Fixnum(); oki && i >= 0 && int(i) < len(vec.Items) {
						res = vec.Items[i]
					}
				}
			case xPStringRef:
				if str, oks := x.Str(); oks {
					if i, oki := y.Fixnum(); oki && i >= 0 && int(i) < len(str) {
						res = prim.CharV(rune(str[i]))
					}
				}
			case xPCharEq:
				if xc, okx := x.Char(); okx {
					if yc, oky := y.Char(); oky {
						res = prim.BoolV(xc == yc)
					}
				}
			default:
				if xn, okx := x.Fixnum(); okx {
					if yn, oky := y.Fixnum(); oky {
						switch d.x {
						case xPAdd:
							res = prim.FixV(xn + yn)
						case xPSub:
							res = prim.FixV(xn - yn)
						case xPMul:
							res = prim.FixV(xn * yn)
						case xPLt:
							res = prim.BoolV(xn < yn)
						case xPNumEq:
							res = prim.BoolV(xn == yn)
						}
					}
				}
			}
			if res.IsNone() {
				var err error
				if res, err = m.primFallback2(d, x, y); err != nil {
					return prim.Value{}, err
				}
			}
			m.writeReg(d.a, res)
			m.pc++

		case xPredBr:
			// Predicate part: exactly the specialized arm for d.pk.
			var x, y prim.Value
			var ok bool
			if d.b >= 0 {
				x, ok = m.regFast(d.b)
			}
			if !ok {
				var err error
				if x, err = m.readOperand(d.b); err != nil {
					return prim.Value{}, err
				}
			}
			if d.pk == xPEq || d.pk == xPLt || d.pk == xPNumEq || d.pk == xPCharEq {
				ok = false
				if d.c >= 0 {
					y, ok = m.regFast(d.c)
				}
				if !ok {
					var err error
					if y, err = m.readOperand(d.c); err != nil {
						return prim.Value{}, err
					}
				}
			}
			if m.fine {
				c.PrimInstrs++
			}
			var res prim.Value
			switch d.pk {
			case xPNullP:
				res = prim.BoolV(x.IsEmpty())
			case xPPairP:
				_, isPair := x.Pair()
				res = prim.BoolV(isPair)
			case xPZeroP:
				if n, isFix := x.Fixnum(); isFix {
					res = prim.BoolV(n == 0)
				}
			case xPEq:
				res = prim.BoolV(prim.Eqv(x, y))
			case xPLt:
				if xn, okx := x.Fixnum(); okx {
					if yn, oky := y.Fixnum(); oky {
						res = prim.BoolV(xn < yn)
					}
				}
			case xPNumEq:
				if xn, okx := x.Fixnum(); okx {
					if yn, oky := y.Fixnum(); oky {
						res = prim.BoolV(xn == yn)
					}
				}
			case xPSymbolP:
				_, isSym := x.Symbol()
				res = prim.BoolV(isSym)
			case xPVectorP:
				_, isVec := x.Vector()
				res = prim.BoolV(isVec)
			case xPNumberP:
				res = prim.BoolV(x.IsNumber())
			case xPBooleanP:
				res = prim.BoolV(x.IsBool())
			case xPCharEq:
				if xc, okx := x.Char(); okx {
					if yc, oky := y.Char(); oky {
						res = prim.BoolV(xc == yc)
					}
				}
			}
			if res.IsNone() {
				var err error
				switch d.pk {
				case xPEq, xPLt, xPNumEq, xPCharEq:
					res, err = m.primFallback2(d, x, y)
				default:
					res, err = m.primFallback1(d, x)
				}
				if err != nil {
					return prim.Value{}, err
				}
			}
			m.writeReg(d.a, res)
			m.pc++
			// Branch part: the following OpBranchFalse's dispatch
			// accounting and branch logic. Re-reading the condition
			// register is skipped — it was written one line up, so the
			// read could never stall or trap.
			c.Instructions++
			c.Cycles++
			if c.Instructions > limit {
				return prim.Value{}, &FuelError{Budget: m.MaxSteps, PC: m.pc}
			}
			taken := !prim.Truthy(res)
			if m.fine {
				c.Branches++
				if d.predict != 0 {
					c.PredictedBranches++
					if taken != (d.predict > 0) {
						c.Mispredicts++
						c.Cycles += m.cost.BranchMispredict
					}
				}
			} else if d.predict != 0 && taken != (d.predict > 0) {
				c.Cycles += m.cost.BranchMispredict
			}
			if taken {
				m.pc = d.tgt
			} else {
				m.pc++
			}

		case xPrimSt:
			// Primitive part: exactly the specialized arm for d.pk.
			var x, y prim.Value
			var ok bool
			if d.b >= 0 {
				x, ok = m.regFast(d.b)
			}
			if !ok {
				var err error
				if x, err = m.readOperand(d.b); err != nil {
					return prim.Value{}, err
				}
			}
			two := spec2(d.pk)
			if two {
				ok = false
				if d.c >= 0 {
					y, ok = m.regFast(d.c)
				}
				if !ok {
					var err error
					if y, err = m.readOperand(d.c); err != nil {
						return prim.Value{}, err
					}
				}
			}
			if m.fine {
				c.PrimInstrs++
			}
			var res prim.Value
			if two {
				res = specCompute2(d.pk, m.ctx, x, y)
			} else {
				res = specCompute1(d.pk, x)
			}
			if res.IsNone() {
				var err error
				if two {
					res, err = m.primFallback2(d, x, y)
				} else {
					res, err = m.primFallback1(d, x)
				}
				if err != nil {
					return prim.Value{}, err
				}
			}
			m.writeReg(d.a, res)
			m.pc++
			// Store part: the following OpStoreSlot's dispatch accounting
			// and effect. Re-reading the source register is skipped — it
			// was written one line up, so the read could never stall or
			// trap.
			c.Instructions++
			c.Cycles++
			if c.Instructions > limit {
				return prim.Value{}, &FuelError{Budget: m.MaxSteps, PC: m.pc}
			}
			m.storeSlot(m.fp+d.tgt, res, d.kind)
			m.pc++

		case xHeadSt:
			// Producer part: exactly the single arm for d.pk.
			var v prim.Value
			switch d.pk {
			case xLoadConst:
				v = d.val
			case xLoadGlobal:
				v = m.globals[d.b]
				if v.IsNone() {
					return prim.Value{}, m.errf("unbound global %s", m.prog.GlobalNames[d.b])
				}
			default: // xMove
				var ok bool
				if v, ok = m.regFast(d.b); !ok {
					var err error
					if v, err = m.readReg(d.b); err != nil {
						return prim.Value{}, err
					}
				}
			}
			m.writeReg(d.a, v)
			m.pc++
			// Store part, as in xPrimSt.
			c.Instructions++
			c.Cycles++
			if c.Instructions > limit {
				return prim.Value{}, &FuelError{Budget: m.MaxSteps, PC: m.pc}
			}
			if d.stOut {
				m.storeSlot(m.fp+d.c+d.tgt, v, d.kind)
			} else {
				m.storeSlot(m.fp+d.tgt, v, d.kind)
			}
			m.pc++

		case xClosure:
			cl := m.ctx.AllocClosure(d.b, len(d.regs))
			for i, r := range d.regs {
				v, err := m.readOperand(r)
				if err != nil {
					return prim.Value{}, err
				}
				cl.Free[i] = v
			}
			m.writeReg(d.a, prim.ObjV(cl))
			m.pc++

		case xClosurePatch:
			cv, err := m.readReg(d.a)
			if err != nil {
				return prim.Value{}, err
			}
			cl, ok := cv.Heap().(*Closure)
			if !ok {
				return prim.Value{}, m.errf("closure-patch of non-closure")
			}
			v, err := m.readReg(d.c)
			if err != nil {
				return prim.Value{}, err
			}
			cl.Free[d.b] = v
			m.pc++

		case xFreeRef:
			cpv, err := m.readReg(RegCP)
			if err != nil {
				return prim.Value{}, err
			}
			cl, ok := cpv.Heap().(*Closure)
			if !ok {
				return prim.Value{}, m.errf("free-ref with non-closure cp")
			}
			m.writeReg(d.a, cl.Free[d.b])
			m.pc++

		case xJump:
			m.pc = d.a

		case xBranchFalse:
			v, ok := m.regFast(d.a)
			if !ok {
				var err error
				if v, err = m.readReg(d.a); err != nil {
					return prim.Value{}, err
				}
			}
			taken := !prim.Truthy(v)
			if m.fine {
				c.Branches++
				if d.predict != 0 {
					c.PredictedBranches++
					predictedTaken := d.predict > 0
					if taken != predictedTaken {
						c.Mispredicts++
						c.Cycles += m.cost.BranchMispredict
					}
				}
			} else if d.predict != 0 && taken != (d.predict > 0) {
				// Counters are off, but the mispredict penalty is part
				// of the cycle accounting and must still be charged.
				c.Cycles += m.cost.BranchMispredict
			}
			if taken {
				m.pc = d.b
			} else {
				m.pc++
			}

		case xCall:
			if err := m.call(d.a, m.fp+d.b, false); err != nil {
				return prim.Value{}, err
			}

		case xTailCall:
			if err := m.call(d.a, m.fp, true); err != nil {
				return prim.Value{}, err
			}

		case xCallCC:
			if err := m.callCC(d.b); err != nil {
				return prim.Value{}, err
			}

		case xReturn:
			rv, rok := m.regFast(RegRet)
			if !rok {
				var err error
				if rv, err = m.readReg(RegRet); err != nil {
					return prim.Value{}, err
				}
			}
			rpc, rfp, ok := retTarget(rv)
			if !ok {
				return prim.Value{}, m.errf("return with corrupt ret register (%s)", prim.WriteString(rv))
			}
			if len(m.acts) == 0 {
				return prim.Value{}, m.errf("return with empty activation stack")
			}
			m.classifyTop()
			m.acts = m.acts[:len(m.acts)-1]
			m.pc = rpc
			m.fp = rfp
			m.poisonAfterCall()

		default:
			return prim.Value{}, m.errf("unknown opcode %d", d.op)
		}
	}
}

// primFallback1 and primFallback2 route a specialized-arm miss to the
// primitive's table implementation with the already-read arguments, so
// the result — value or error — is exactly the generic arm's.
func (m *Machine) primFallback1(d *dcode, v prim.Value) (prim.Value, error) {
	if cap(m.argbuf) < 1 {
		m.argbuf = make([]prim.Value, 4)
	}
	args := m.argbuf[:1]
	args[0] = v
	return d.def.Fn(m.ctx, args)
}

func (m *Machine) primFallback2(d *dcode, x, y prim.Value) (prim.Value, error) {
	if cap(m.argbuf) < 2 {
		m.argbuf = make([]prim.Value, 4)
	}
	args := m.argbuf[:2]
	args[0], args[1] = x, y
	return d.def.Fn(m.ctx, args)
}

// tick charges the dispatch cycle and the fuel meter for one
// instruction, exactly as the dispatch loops' preambles do. Fused runs
// and slow-path handlers call it once per sub-instruction.
func (m *Machine) tick() error {
	c := &m.Counters
	c.Instructions++
	c.Cycles++
	if m.MaxSteps > 0 && c.Instructions > m.MaxSteps {
		return &FuelError{Budget: m.MaxSteps, PC: m.pc}
	}
	return nil
}

// hLoadConstSlow handles mutable constants (copied per load) and
// out-of-range pool references (which panic, as in the switch loop).
func hLoadConstSlow(m *Machine, d *dcode) error {
	if err := m.tick(); err != nil {
		return err
	}
	v := m.prog.Consts[d.b]
	if m.prog.ConstMutable[d.b] {
		v = m.copyConst(v)
	}
	m.writeReg(d.a, v)
	m.pc++
	return nil
}

// hPrimSlow handles out-of-range primitive pool references (panics at
// execution time, as in the switch loop).
func hPrimSlow(m *Machine, d *dcode) error {
	if err := m.tick(); err != nil {
		return err
	}
	if err := m.applyPrim(d.a, m.prog.Prims[d.b], d.regs); err != nil {
		return err
	}
	m.pc++
	return nil
}
