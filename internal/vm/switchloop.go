package vm

import "repro/internal/prim"

// This file is the reference execution engine: the original
// decode-every-step switch loop, selected with Machine.Engine =
// EngineSwitch. It defines the machine's observable semantics; the
// pre-decoded threaded engine (exec.go, the default) must match it
// exactly — same results, same errors, byte-for-byte identical
// counters — which TestEngineEquivalence enforces over the full
// benchmark suite and the negative corpus. Change semantics here first,
// then make the threaded engine agree.

func (m *Machine) loop() (prim.Value, error) {
	c := &m.Counters
	for {
		if m.pc < 0 || m.pc >= len(m.prog.Code) {
			return prim.Value{}, m.errf("pc out of range")
		}
		in := &m.prog.Code[m.pc]
		c.Instructions++
		c.Cycles++
		if m.MaxSteps > 0 && c.Instructions > m.MaxSteps {
			return prim.Value{}, &FuelError{Budget: m.MaxSteps, PC: m.pc}
		}
		switch in.Op {
		case OpHalt:
			v, err := m.readReg(RegRV)
			if err != nil {
				return prim.Value{}, err
			}
			return v, nil

		case OpEntry:
			if m.argc != in.A {
				name := m.prog.Procs[m.actTopProc()].Name
				return prim.Value{}, m.errf("%s expects %d arguments, got %d", name, in.A, m.argc)
			}
			m.ensureStack(m.fp + in.B + 16)
			m.pc++

		case OpMove:
			v, err := m.readReg(in.B)
			if err != nil {
				return prim.Value{}, err
			}
			m.writeReg(in.A, v)
			m.pc++

		case OpLoadConst:
			v := m.prog.Consts[in.B]
			if m.prog.ConstMutable[in.B] {
				v = m.copyConst(v)
			}
			m.writeReg(in.A, v)
			m.pc++

		case OpLoadGlobal:
			v := m.globals[in.B]
			if v.IsNone() {
				return prim.Value{}, m.errf("unbound global %s", m.prog.GlobalNames[in.B])
			}
			m.writeReg(in.A, v)
			m.pc++

		case OpStoreGlobal:
			v, err := m.readReg(in.A)
			if err != nil {
				return prim.Value{}, err
			}
			m.globals[in.B] = v
			m.pc++

		case OpLoadSlot:
			v, err := m.loadSlot(m.fp+in.B, in.Kind)
			if err != nil {
				return prim.Value{}, err
			}
			m.regs[in.A] = v
			m.readyAt[in.A] = c.Cycles + m.cost.LoadLatency
			m.pc++

		case OpStoreSlot:
			v, err := m.readReg(in.A)
			if err != nil {
				return prim.Value{}, err
			}
			m.storeSlot(m.fp+in.B, v, in.Kind)
			m.pc++

		case OpStoreOut:
			v, err := m.readReg(in.A)
			if err != nil {
				return prim.Value{}, err
			}
			m.storeSlot(m.fp+in.C+in.B, v, in.Kind)
			m.pc++

		case OpPrim:
			if err := m.applyPrim(in.A, m.prog.Prims[in.B], in.Regs); err != nil {
				return prim.Value{}, err
			}
			m.pc++

		case OpClosure:
			cl := m.ctx.AllocClosure(in.B, len(in.Regs))
			for i, r := range in.Regs {
				v, err := m.readOperand(r)
				if err != nil {
					return prim.Value{}, err
				}
				cl.Free[i] = v
			}
			m.writeReg(in.A, prim.ObjV(cl))
			m.pc++

		case OpClosurePatch:
			cv, err := m.readReg(in.A)
			if err != nil {
				return prim.Value{}, err
			}
			cl, ok := cv.Heap().(*Closure)
			if !ok {
				return prim.Value{}, m.errf("closure-patch of non-closure")
			}
			v, err := m.readReg(in.C)
			if err != nil {
				return prim.Value{}, err
			}
			cl.Free[in.B] = v
			m.pc++

		case OpFreeRef:
			cpv, err := m.readReg(RegCP)
			if err != nil {
				return prim.Value{}, err
			}
			cl, ok := cpv.Heap().(*Closure)
			if !ok {
				return prim.Value{}, m.errf("free-ref with non-closure cp")
			}
			m.writeReg(in.A, cl.Free[in.B])
			m.pc++

		case OpJump:
			m.pc = in.A

		case OpBranchFalse:
			v, err := m.readReg(in.A)
			if err != nil {
				return prim.Value{}, err
			}
			taken := !prim.Truthy(v)
			if m.fine {
				c.Branches++
				if in.Predict != 0 {
					c.PredictedBranches++
					predictedTaken := in.Predict > 0
					if taken != predictedTaken {
						c.Mispredicts++
						c.Cycles += m.cost.BranchMispredict
					}
				}
			} else if in.Predict != 0 && taken != (in.Predict > 0) {
				// Counters are off, but the mispredict penalty is part
				// of the cycle accounting and must still be charged.
				c.Cycles += m.cost.BranchMispredict
			}
			if taken {
				m.pc = in.B
			} else {
				m.pc++
			}

		case OpCall:
			if err := m.call(in.A, m.fp+in.B, false); err != nil {
				return prim.Value{}, err
			}

		case OpTailCall:
			if err := m.call(in.A, m.fp, true); err != nil {
				return prim.Value{}, err
			}

		case OpCallCC:
			if err := m.callCC(in.B); err != nil {
				return prim.Value{}, err
			}

		case OpReturn:
			rv, err := m.readReg(RegRet)
			if err != nil {
				return prim.Value{}, err
			}
			rpc, rfp, ok := retTarget(rv)
			if !ok {
				return prim.Value{}, m.errf("return with corrupt ret register (%s)", prim.WriteString(rv))
			}
			if len(m.acts) == 0 {
				return prim.Value{}, m.errf("return with empty activation stack")
			}
			m.classifyTop()
			m.acts = m.acts[:len(m.acts)-1]
			m.pc = rpc
			m.fp = rfp
			m.poisonAfterCall()

		default:
			return prim.Value{}, m.errf("unknown opcode %d", in.Op)
		}
	}
}
