package vm

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/prim"
	"repro/internal/sexp"
)

// Op is an instruction opcode.
type Op uint8

// The instruction set. Operand meanings are documented per opcode; A, B
// and C are small integers (register numbers, slot indices, code
// addresses, pool indices).
const (
	// OpHalt stops the machine; the program result is in rv.
	OpHalt Op = iota
	// OpEntry begins a procedure: A = expected argument count,
	// B = frame size in slots. Checks arity and reserves stack.
	OpEntry
	// OpMove copies register B to register A.
	OpMove
	// OpLoadConst loads constant pool entry B into register A.
	OpLoadConst
	// OpLoadGlobal loads global cell B into register A.
	OpLoadGlobal
	// OpStoreGlobal stores register A into global cell B.
	OpStoreGlobal
	// OpLoadSlot loads frame slot B into register A (a stack reference).
	OpLoadSlot
	// OpStoreSlot stores register A into frame slot B (a stack reference).
	OpStoreSlot
	// OpStoreOut stores register A into outgoing-argument slot B — slot B
	// of the *callee* frame that begins at fp+C, where C is the caller
	// frame size (a stack reference).
	OpStoreOut
	// OpPrim applies primitive pool entry B to the operands encoded in
	// Regs and stores the result in register A. Negative Regs entries
	// denote frame slots (^slot), each counting as a stack reference.
	OpPrim
	// OpClosure allocates a closure of procedure B capturing the values
	// in Regs (same register/slot encoding as OpPrim) into register A.
	OpClosure
	// OpClosurePatch stores register C into free-variable slot B of the
	// closure in register A (mutual-recursion patching for fix).
	OpClosurePatch
	// OpFreeRef loads free-variable slot B of the running closure (in
	// cp) into register A.
	OpFreeRef
	// OpJump continues at address A.
	OpJump
	// OpBranchFalse jumps to address B when register A is #f. Predict
	// carries the static branch prediction (+1 predicted taken, -1
	// predicted not taken, 0 unpredicted).
	OpBranchFalse
	// OpCall invokes the procedure in cp with A arguments; B is the
	// caller's frame size. Sets ret to the return point and advances fp.
	OpCall
	// OpTailCall invokes the procedure in cp with A arguments reusing
	// the current frame (a jump; ret and fp are unchanged).
	OpTailCall
	// OpCallCC captures the current continuation, passes it as the
	// single argument to the procedure in cp; B is the caller's frame
	// size.
	OpCallCC
	// OpReturn returns to the point in ret, with the result in rv.
	OpReturn
)

// SlotKind classifies stack references for the diagnostic breakdown.
type SlotKind uint8

const (
	// KindOther covers uncategorized slot traffic.
	KindOther SlotKind = iota
	// KindSave is a register save (StoreSlot) placed by the allocator.
	KindSave
	// KindRestore is a register restore (LoadSlot) placed by pass 2.
	KindRestore
	// KindArg is argument traffic (stack-passed parameters, in or out).
	KindArg
	// KindTemp is shuffle/evaluation temporary traffic.
	KindTemp
	// KindVar is a stack-homed variable access (baseline configs).
	KindVar
	// NumSlotKinds is the number of SlotKind values; counters and the
	// static analyzer size their per-kind arrays with it.
	NumSlotKinds = int(KindVar) + 1
)

func (k SlotKind) String() string {
	switch k {
	case KindSave:
		return "save"
	case KindRestore:
		return "restore"
	case KindArg:
		return "arg"
	case KindTemp:
		return "temp"
	case KindVar:
		return "var"
	default:
		return "other"
	}
}

// Instr is one machine instruction.
type Instr struct {
	Op      Op
	A, B, C int
	// Regs encodes OpPrim/OpClosure operands: value >= 0 is a register,
	// value < 0 is frame slot ^value.
	Regs []int
	// Kind classifies slot traffic (slot opcodes only).
	Kind SlotKind
	// Predict is the static branch prediction for OpBranchFalse.
	Predict int8
}

// Program is a complete compiled program.
type Program struct {
	Code   []Instr
	Consts []prim.Value
	// ConstMutable marks constants containing pairs or vectors, which
	// are copied on each load so compiled code agrees with the reference
	// interpreter about quoted-constant aliasing.
	ConstMutable []bool
	Prims        []*prim.Def
	Procs        []ProcInfo
	MainIndex    int
	GlobalNames  []sexp.Symbol
	PrimGlobals  []*prim.Def
	// Config is the register layout the code was compiled for.
	Config Config
	// Shuffles documents each call site's argument shuffle as a parallel
	// assignment so the translation validator (internal/verify) can check
	// the emitted move sequence against the allocator's intent.
	Shuffles []ShuffleRecord

	// The pre-decoded threaded form (exec.go), built once on first run
	// and shared by every Machine executing this program. Because of
	// this cache, Code must not be mutated after a Machine has run the
	// program (static tools that corrupt Code for negative tests must
	// do so before the first run, or build a fresh Program).
	engOnce sync.Once
	eng     *engineCode
}

// ShuffleAssign is one transfer a call's argument shuffle must realize:
// after the shuffle, register Target must hold the value the source
// cell (register Src, or frame slot Src when SrcIsSlot) held when the
// call sequence began.
type ShuffleAssign struct {
	Target    int
	Src       int
	SrcIsSlot bool
}

// ShuffleRecord describes one call site's parallel assignment: the
// instructions in [StartPC, CallPC) must implement Assigns as a
// simultaneous substitution. Only simple (variable-reference) arguments
// are recorded; complex arguments have no pre-existing source cell.
type ShuffleRecord struct {
	StartPC int
	CallPC  int
	Assigns []ShuffleAssign
}

// ProcInfo is per-procedure metadata.
type ProcInfo struct {
	Name  string
	Entry int
	NArgs int
	NFree int
	// SyntacticLeaf: the body contains no non-tail calls (Table 2).
	SyntacticLeaf bool
	// CallInevitable: every path through the body calls (Table 2's
	// "syntactic internal nodes").
	CallInevitable bool
}

// globalName, primName and procName render pool references defensively
// (out-of-range indices print as "?" instead of panicking).
func (p *Program) globalName(i int) string {
	if i < 0 || i >= len(p.GlobalNames) {
		return "?"
	}
	return string(p.GlobalNames[i])
}

func (p *Program) primName(i int) string {
	if i < 0 || i >= len(p.Prims) {
		return "?"
	}
	return string(p.Prims[i].Name)
}

func (p *Program) procName(i int) string {
	if i < 0 || i >= len(p.Procs) {
		return "?"
	}
	return p.Procs[i].Name
}

// Disassemble renders the program's code for dumps and tests.
func (p *Program) Disassemble() string {
	var b strings.Builder
	procAt := map[int]string{}
	for _, pi := range p.Procs {
		procAt[pi.Entry] = pi.Name
	}
	for i, in := range p.Code {
		if name, ok := procAt[i]; ok {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "%5d  %s\n", i, p.FormatInstr(in))
	}
	return b.String()
}

// FormatInstr renders one instruction.
func (p *Program) FormatInstr(in Instr) string {
	reg := func(r int) string {
		switch r {
		case RegRet:
			return "ret"
		case RegCP:
			return "cp"
		case RegRV:
			return "rv"
		default:
			return fmt.Sprintf("r%d", r)
		}
	}
	operand := func(r int) string {
		if IsSlotOperand(r) {
			return fmt.Sprintf("fp[%d]", SlotOperand(r))
		}
		return reg(r)
	}
	switch in.Op {
	case OpHalt:
		return "halt"
	case OpEntry:
		return fmt.Sprintf("entry args=%d frame=%d", in.A, in.B)
	case OpMove:
		return fmt.Sprintf("move %s <- %s", reg(in.A), reg(in.B))
	case OpLoadConst:
		v := "?"
		if in.B < len(p.Consts) {
			v = prim.WriteString(p.Consts[in.B])
		}
		return fmt.Sprintf("const %s <- %s", reg(in.A), v)
	case OpLoadGlobal:
		return fmt.Sprintf("gload %s <- %s", reg(in.A), p.globalName(in.B))
	case OpStoreGlobal:
		return fmt.Sprintf("gstore %s -> %s", reg(in.A), p.globalName(in.B))
	case OpLoadSlot:
		return fmt.Sprintf("load %s <- fp[%d] (%s)", reg(in.A), in.B, in.Kind)
	case OpStoreSlot:
		return fmt.Sprintf("store %s -> fp[%d] (%s)", reg(in.A), in.B, in.Kind)
	case OpStoreOut:
		return fmt.Sprintf("storeout %s -> out[%d] (%s)", reg(in.A), in.B, in.Kind)
	case OpPrim:
		var args []string
		for _, r := range in.Regs {
			args = append(args, operand(r))
		}
		return fmt.Sprintf("prim %s <- %s(%s)", reg(in.A), p.primName(in.B), strings.Join(args, " "))
	case OpClosure:
		var args []string
		for _, r := range in.Regs {
			args = append(args, operand(r))
		}
		return fmt.Sprintf("closure %s <- %s[%s]", reg(in.A), p.procName(in.B), strings.Join(args, " "))
	case OpClosurePatch:
		return fmt.Sprintf("patch %s.free[%d] <- %s", reg(in.A), in.B, reg(in.C))
	case OpFreeRef:
		return fmt.Sprintf("free %s <- cp.free[%d]", reg(in.A), in.B)
	case OpJump:
		return fmt.Sprintf("jump %d", in.A)
	case OpBranchFalse:
		pred := ""
		if in.Predict > 0 {
			pred = " predict-taken"
		} else if in.Predict < 0 {
			pred = " predict-fall"
		}
		return fmt.Sprintf("brfalse %s -> %d%s", reg(in.A), in.B, pred)
	case OpCall:
		return fmt.Sprintf("call argc=%d frame=%d", in.A, in.B)
	case OpTailCall:
		return fmt.Sprintf("tailcall argc=%d", in.A)
	case OpCallCC:
		return fmt.Sprintf("callcc frame=%d", in.B)
	case OpReturn:
		return "return"
	default:
		return fmt.Sprintf("op%d A=%d B=%d C=%d", in.Op, in.A, in.B, in.C)
	}
}
