package vm

// Superinstruction fusion: the allocator's hot straight-line patterns —
// save sequences (runs of OpStoreSlot placed by §2.1.2 lazy saves),
// eager-restore sequences (runs of OpLoadSlot placed by the §3 pass-2
// restore placement), argument shuffle chains (runs of OpMove emitted
// by the §2.3 greedy shuffler), and outgoing-argument stores (runs of
// OpStoreOut) — are collapsed into single fused handlers, so a k-long
// run costs one dispatch instead of k. PAPERS.md's "Optimal Shuffle
// Code with Permutation Instructions" motivates exactly this: a fused
// move-run is the software analogue of a permutation instruction.
//
// Fusion is a pure overlay: only the run's first pc gets the fused
// handler; the remaining pcs keep their single-instruction handlers, so
// even if control somehow entered mid-run the semantics would be
// unchanged. It cannot, though: a run never extends across a control
// join — a procedure entry, a jump or branch target, or a call return
// point (pc+1 of OpCall/OpCallCC) — as computed by joinPoints below
// from the same instruction decoding (defuse.go semantics) the verifier
// uses.
//
// Cycle identity: fused handlers charge the dispatch cycle, fuel unit,
// memory penalty and load-use stall of every fused sub-instruction in
// the exact order the switch loop would, advancing m.pc element by
// element so RuntimeError and FuelError program counters are identical.

// fusedEl is one sub-instruction of a fused run.
type fusedEl struct {
	a, b, c int
	kind    SlotKind
}

// fusible reports whether op participates in run fusion.
func fusible(op Op) bool {
	switch op {
	case OpMove, OpLoadSlot, OpStoreSlot, OpStoreOut:
		return true
	}
	return false
}

// joinPoints marks every pc at which control can enter other than by
// falling through: procedure entries, jump and branch targets, call
// return points, and the halt at pc 0 that main returns to.
func joinPoints(p *Program) []bool {
	join := make([]bool, len(p.Code))
	mark := func(pc int) {
		if pc >= 0 && pc < len(join) {
			join[pc] = true
		}
	}
	mark(0)
	for _, pi := range p.Procs {
		mark(pi.Entry)
	}
	for pc, in := range p.Code {
		switch in.Op {
		case OpJump:
			mark(in.A)
		case OpBranchFalse:
			mark(in.B)
		case OpCall, OpCallCC:
			mark(pc + 1)
		}
	}
	return join
}

// fuse overlays fused handlers onto maximal homogeneous runs of length
// >= 2 that contain no interior join point.
func fuse(p *Program, code []dcode) {
	join := joinPoints(p)
	for i := 0; i < len(p.Code); {
		op := p.Code[i].Op
		if !fusible(op) {
			i++
			continue
		}
		j := i + 1
		for j < len(p.Code) && p.Code[j].Op == op && !join[j] {
			j++
		}
		if j-i >= 2 {
			els := make([]fusedEl, j-i)
			for k := i; k < j; k++ {
				in := &p.Code[k]
				els[k-i] = fusedEl{a: in.A, b: in.B, c: in.C, kind: in.Kind}
			}
			d := &code[i]
			d.els = els
			d.x = xFn
			switch op {
			case OpMove:
				d.fn = hMoveRun
			case OpLoadSlot:
				d.fn = hLoadRun
			case OpStoreSlot:
				d.fn = hStoreRun
			case OpStoreOut:
				d.fn = hStoreOutRun
			}
		}
		i = j
	}
	fusePredBr(p, code, join)
	fusePrimStore(p, code, join)
	fuseHeadStore(p, code, join)
}

// fusePredBr overlays xPredBr onto (specialized predicate, branch-false)
// pairs where the branch tests the predicate's destination register and
// is not itself a join point. Like run fusion it is a pure overlay: the
// branch's own dcode is untouched, so a jump straight to it behaves
// normally.
func fusePredBr(p *Program, code []dcode, join []bool) {
	for i := 0; i+1 < len(code); i++ {
		d := &code[i]
		switch d.x {
		case xPNullP, xPPairP, xPZeroP, xPEq, xPLt, xPNumEq,
			xPSymbolP, xPVectorP, xPNumberP, xPBooleanP, xPCharEq:
		default:
			continue
		}
		br := &p.Code[i+1]
		if br.Op != OpBranchFalse || br.A != d.a || join[i+1] {
			continue
		}
		d.pk = d.x
		d.x = xPredBr
		d.tgt = br.B
		d.predict = br.Predict
	}
}

// fusePrimStore overlays xPrimSt onto (specialized primitive, store-slot)
// pairs where the store saves the primitive's destination register and is
// not a join point. Runs after fusePredBr, so predicate-branch pairs win
// when both could apply.
func fusePrimStore(p *Program, code []dcode, join []bool) {
	for i := 0; i+1 < len(code); i++ {
		d := &code[i]
		if !isSpecPrim(d.x) {
			continue
		}
		st := &p.Code[i+1]
		if st.Op != OpStoreSlot || st.A != d.a || join[i+1] {
			continue
		}
		d.pk = d.x
		d.x = xPrimSt
		d.tgt = st.B
		d.kind = st.Kind
	}
}

// hMoveRun executes a fused shuffle chain (run of OpMove).
func hMoveRun(m *Machine, d *dcode) error {
	for i := range d.els {
		e := &d.els[i]
		if err := m.tick(); err != nil {
			return err
		}
		v, ok := m.regFast(e.b)
		if !ok {
			var err error
			if v, err = m.readReg(e.b); err != nil {
				return err
			}
		}
		m.writeReg(e.a, v)
		m.pc++
	}
	return nil
}

// hLoadRun executes a fused restore sequence (run of OpLoadSlot).
func hLoadRun(m *Machine, d *dcode) error {
	for i := range d.els {
		e := &d.els[i]
		if err := m.tick(); err != nil {
			return err
		}
		v, ok := m.slotFast(m.fp + e.b)
		if !ok {
			var err error
			if v, err = m.loadSlot(m.fp+e.b, e.kind); err != nil {
				return err
			}
		}
		m.regs[e.a] = v
		m.readyAt[e.a] = m.Counters.Cycles + m.cost.LoadLatency
		m.pc++
	}
	return nil
}

// hStoreRun executes a fused save sequence (run of OpStoreSlot).
func hStoreRun(m *Machine, d *dcode) error {
	for i := range d.els {
		e := &d.els[i]
		if err := m.tick(); err != nil {
			return err
		}
		v, ok := m.regFast(e.a)
		if !ok {
			var err error
			if v, err = m.readReg(e.a); err != nil {
				return err
			}
		}
		m.storeSlot(m.fp+e.b, v, e.kind)
		m.pc++
	}
	return nil
}

// hStoreOutRun executes a fused outgoing-argument sequence (run of
// OpStoreOut).
func hStoreOutRun(m *Machine, d *dcode) error {
	for i := range d.els {
		e := &d.els[i]
		if err := m.tick(); err != nil {
			return err
		}
		v, ok := m.regFast(e.a)
		if !ok {
			var err error
			if v, err = m.readReg(e.a); err != nil {
				return err
			}
		}
		m.storeSlot(m.fp+e.c+e.b, v, e.kind)
		m.pc++
	}
	return nil
}

// fuseHeadStore overlays xHeadSt onto (load-const | load-global | move,
// store) pairs where the store saves the producer's destination register
// and is not a join point.
func fuseHeadStore(p *Program, code []dcode, join []bool) {
	for i := 0; i+1 < len(code); i++ {
		d := &code[i]
		switch d.x {
		case xLoadConst, xLoadGlobal, xMove:
		default:
			continue
		}
		st := &p.Code[i+1]
		if (st.Op != OpStoreSlot && st.Op != OpStoreOut) || st.A != d.a || join[i+1] {
			continue
		}
		d.pk = d.x
		d.x = xHeadSt
		d.tgt = st.B
		d.kind = st.Kind
		if st.Op == OpStoreOut {
			d.stOut = true
			d.c = st.C
		}
	}
}
