package vm

import "repro/internal/regset"

// This file is the instruction set's single def/use decoding truth: the
// machine (poisoning, operand decoding) and the static verifier
// (internal/verify) both consume it, so a new opcode only needs its
// operand semantics described once. The exhaustiveness test in
// defuse_test.go asserts every opcode through NumOps is covered.

// NumOps is the number of defined opcodes; every Op is in [0, NumOps).
const NumOps = int(OpReturn) + 1

// IsSlotOperand reports whether an OpPrim/OpClosure operand encodes a
// frame slot rather than a register (negative values denote slots).
func IsSlotOperand(r int) bool { return r < 0 }

// SlotOperand decodes the frame-slot index of a slot operand.
func SlotOperand(r int) int { return ^r }

// CallerSaveLimit returns the first register that is NOT caller-save
// (the callee-save registers, when configured, survive calls).
func (c Config) CallerSaveLimit() int {
	if c.CalleeSaveRegs > 0 {
		return c.CalleeSaveReg(0)
	}
	return c.NumRegs()
}

// CallClobbers returns the registers a completed non-tail call destroys:
// every caller-save register except the return-value register. The
// machine's restore-validation poisoning and the verifier's abstract
// call effect are both defined by this set.
func CallClobbers(c Config) regset.Set {
	return regset.Universe(c.CallerSaveLimit()).Remove(RegRV)
}

// Effects describes one instruction's def/use behaviour for dataflow
// analyses. Register sets depend on the register configuration (calls
// read the argument registers the configuration assigns).
type Effects struct {
	// Uses are the registers the instruction reads.
	Uses regset.Set
	// Defs are the registers the instruction writes with a defined value.
	Defs regset.Set
	// Clobbers are the registers the instruction destroys (call
	// boundaries: the caller-save set minus rv).
	Clobbers regset.Set
	// ReadSlots / WriteSlots are the caller-frame slots read and written.
	ReadSlots  []int
	WriteSlots []int
	// ReadOuts / WriteOuts are outgoing-argument (callee-frame) slots
	// read (by the call dispatch) and written.
	ReadOuts  []int
	WriteOuts []int
	// Jump is the static branch/jump target, -1 if none.
	Jump int
	// FallsThrough reports whether control can continue at pc+1.
	FallsThrough bool
	// IsCall marks instructions that invoke a callee and return
	// (OpCall, OpCallCC); IsExit marks instructions that leave the
	// procedure (OpHalt, OpReturn, OpTailCall).
	IsCall bool
	IsExit bool
}

// operandEffects folds an OpPrim/OpClosure operand list into uses.
func operandEffects(e *Effects, regs []int) {
	for _, r := range regs {
		if IsSlotOperand(r) {
			e.ReadSlots = append(e.ReadSlots, SlotOperand(r))
		} else {
			e.Uses = e.Uses.Add(r)
		}
	}
}

// callArgUses returns the registers a call with argc arguments consumes:
// the closure pointer plus the register-passed arguments.
func callArgUses(c Config, argc int) regset.Set {
	uses := regset.Single(RegCP)
	n := argc
	if n > c.ArgRegs {
		n = c.ArgRegs
	}
	for i := 0; i < n; i++ {
		uses = uses.Add(c.ArgReg(i))
	}
	return uses
}

// stackArgSlots returns the slot indices of the stack-passed arguments
// of a call with argc arguments (empty when they all fit in registers).
func stackArgSlots(c Config, argc int) []int {
	if argc <= c.ArgRegs {
		return nil
	}
	slots := make([]int, 0, argc-c.ArgRegs)
	for k := 0; k < argc-c.ArgRegs; k++ {
		slots = append(slots, k)
	}
	return slots
}

// InstrEffects decodes the def/use behaviour of in under configuration
// c. The second result is false for an unknown opcode.
func (in Instr) InstrEffects(c Config) (Effects, bool) {
	e := Effects{Jump: -1, FallsThrough: true}
	switch in.Op {
	case OpHalt:
		e.Uses = regset.Single(RegRV)
		e.FallsThrough = false
		e.IsExit = true
	case OpEntry:
		// Arity check and stack reservation only; the call that reached
		// here defined ret, cp, and the argument registers.
	case OpMove:
		e.Uses = regset.Single(in.B)
		e.Defs = regset.Single(in.A)
	case OpLoadConst, OpLoadGlobal:
		e.Defs = regset.Single(in.A)
	case OpStoreGlobal:
		e.Uses = regset.Single(in.A)
	case OpLoadSlot:
		e.Defs = regset.Single(in.A)
		e.ReadSlots = []int{in.B}
	case OpStoreSlot:
		e.Uses = regset.Single(in.A)
		e.WriteSlots = []int{in.B}
	case OpStoreOut:
		e.Uses = regset.Single(in.A)
		e.WriteOuts = []int{in.B}
	case OpPrim, OpClosure:
		operandEffects(&e, in.Regs)
		e.Defs = regset.Single(in.A)
	case OpClosurePatch:
		e.Uses = regset.Of(in.A, in.C)
	case OpFreeRef:
		e.Uses = regset.Single(RegCP)
		e.Defs = regset.Single(in.A)
	case OpJump:
		e.Jump = in.A
		e.FallsThrough = false
	case OpBranchFalse:
		e.Uses = regset.Single(in.A)
		e.Jump = in.B
	case OpCall:
		e.Uses = callArgUses(c, in.A)
		e.ReadOuts = stackArgSlots(c, in.A)
		e.Defs = regset.Single(RegRV)
		e.Clobbers = CallClobbers(c)
		e.IsCall = true
	case OpTailCall:
		e.Uses = callArgUses(c, in.A).Add(RegRet)
		e.ReadSlots = stackArgSlots(c, in.A)
		e.FallsThrough = false
		e.IsExit = true
	case OpCallCC:
		// The machine itself delivers the captured continuation as the
		// single argument, so no argument registers are read.
		e.Uses = regset.Single(RegCP)
		e.Defs = regset.Single(RegRV)
		e.Clobbers = CallClobbers(c)
		e.IsCall = true
	case OpReturn:
		e.Uses = regset.Of(RegRet, RegRV)
		e.FallsThrough = false
		e.IsExit = true
	default:
		return Effects{}, false
	}
	return e, true
}
