// Package sexp implements the S-expression datum model used by the
// mini-Scheme front end: a reader, a writer, and the handful of datum
// types (symbols, fixnums, flonums, booleans, characters, strings, pairs
// and vectors) that the benchmark programs need.
package sexp

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Datum is the interface implemented by every S-expression node. The
// Sexp marker method is exported so that the run-time system (package
// prim) can store non-datum values such as closures inside pairs and
// vectors via a wrapper type.
type Datum interface {
	// String renders the datum in external (write) notation.
	String() string
	Sexp()
}

// Symbol is an interned-by-value Scheme symbol.
type Symbol string

// Fixnum is an exact integer datum.
type Fixnum int64

// Flonum is an inexact real datum.
type Flonum float64

// Boolean is #t or #f.
type Boolean bool

// Char is a character datum such as #\a.
type Char rune

// Str is a string datum.
type Str string

// Pair is a cons cell. Lists are chains of Pairs ending in Nil.
type Pair struct {
	Car Datum
	Cdr Datum
}

// Empty is the empty list ().
type Empty struct{}

// Vector is a vector datum #(...).
type Vector struct {
	Items []Datum
}

// Nil is the canonical empty list.
var Nil = Empty{}

func (Symbol) Sexp()  {}
func (Fixnum) Sexp()  {}
func (Flonum) Sexp()  {}
func (Boolean) Sexp() {}
func (Char) Sexp()    {}
func (Str) Sexp()     {}
func (*Pair) Sexp()   {}
func (Empty) Sexp()   {}
func (*Vector) Sexp() {}

func (s Symbol) String() string { return string(s) }
func (n Fixnum) String() string { return strconv.FormatInt(int64(n), 10) }

func (f Flonum) String() string {
	v := float64(f)
	if math.IsInf(v, 1) {
		return "+inf.0"
	}
	if math.IsInf(v, -1) {
		return "-inf.0"
	}
	if math.IsNaN(v) {
		return "+nan.0"
	}
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += "."
	}
	return s
}

func (b Boolean) String() string {
	if b {
		return "#t"
	}
	return "#f"
}

func (c Char) String() string {
	switch c {
	case ' ':
		return `#\space`
	case '\n':
		return `#\newline`
	case '\t':
		return `#\tab`
	}
	return `#\` + string(rune(c))
}

func (s Str) String() string { return strconv.Quote(string(s)) }

func (Empty) String() string { return "()" }

func (p *Pair) String() string {
	var b strings.Builder
	b.WriteByte('(')
	writeTail(&b, p)
	b.WriteByte(')')
	return b.String()
}

func writeTail(b *strings.Builder, p *Pair) {
	b.WriteString(p.Car.String())
	switch cdr := p.Cdr.(type) {
	case Empty:
	case *Pair:
		b.WriteByte(' ')
		writeTail(b, cdr)
	default:
		b.WriteString(" . ")
		b.WriteString(cdr.String())
	}
}

func (v *Vector) String() string {
	var b strings.Builder
	b.WriteString("#(")
	for i, it := range v.Items {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(it.String())
	}
	b.WriteByte(')')
	return b.String()
}

// List builds a proper list from the given items.
func List(items ...Datum) Datum {
	var out Datum = Nil
	for i := len(items) - 1; i >= 0; i-- {
		out = &Pair{Car: items[i], Cdr: out}
	}
	return out
}

// Cons builds a single pair.
func Cons(car, cdr Datum) *Pair { return &Pair{Car: car, Cdr: cdr} }

// IsList reports whether d is a proper list.
func IsList(d Datum) bool {
	for {
		switch t := d.(type) {
		case Empty:
			return true
		case *Pair:
			d = t.Cdr
		default:
			return false
		}
	}
}

// ListItems flattens a proper list into a slice. It returns an error for
// improper lists.
func ListItems(d Datum) ([]Datum, error) {
	var out []Datum
	for {
		switch t := d.(type) {
		case Empty:
			return out, nil
		case *Pair:
			out = append(out, t.Car)
			d = t.Cdr
		default:
			return nil, fmt.Errorf("sexp: improper list ending in %s", d)
		}
	}
}

// Length returns the number of items in a proper list, or -1 if d is not
// a proper list.
func Length(d Datum) int {
	n := 0
	for {
		switch t := d.(type) {
		case Empty:
			return n
		case *Pair:
			n++
			d = t.Cdr
		default:
			return -1
		}
	}
}

// Equal reports structural (Scheme equal?) equality of two datums.
func Equal(a, b Datum) bool {
	switch x := a.(type) {
	case *Pair:
		y, ok := b.(*Pair)
		return ok && Equal(x.Car, y.Car) && Equal(x.Cdr, y.Cdr)
	case *Vector:
		y, ok := b.(*Vector)
		if !ok || len(x.Items) != len(y.Items) {
			return false
		}
		for i := range x.Items {
			if !Equal(x.Items[i], y.Items[i]) {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}
