package sexp

import (
	"strings"
	"testing"
)

func mustRead(t *testing.T, src string) Datum {
	t.Helper()
	d, err := ReadOne(src)
	if err != nil {
		t.Fatalf("ReadOne(%q): %v", src, err)
	}
	return d
}

func TestReadAtoms(t *testing.T) {
	cases := []struct {
		src  string
		want Datum
	}{
		{"foo", Symbol("foo")},
		{"set!", Symbol("set!")},
		{"+", Symbol("+")},
		{"-", Symbol("-")},
		{"...", Symbol("...")},
		{"list->vector", Symbol("list->vector")},
		{"42", Fixnum(42)},
		{"-17", Fixnum(-17)},
		{"+9", Fixnum(9)},
		{"3.5", Flonum(3.5)},
		{"-0.25", Flonum(-0.25)},
		{"1e3", Flonum(1000)},
		{"#t", Boolean(true)},
		{"#f", Boolean(false)},
		{`"hi"`, Str("hi")},
		{`#\a`, Char('a')},
		{`#\space`, Char(' ')},
		{`#\newline`, Char('\n')},
	}
	for _, c := range cases {
		got := mustRead(t, c.src)
		if got != c.want {
			t.Errorf("ReadOne(%q) = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestReadLists(t *testing.T) {
	d := mustRead(t, "(a (b c) d)")
	want := List(Symbol("a"), List(Symbol("b"), Symbol("c")), Symbol("d"))
	if !Equal(d, want) {
		t.Errorf("got %s, want %s", d, want)
	}
}

func TestReadBrackets(t *testing.T) {
	d := mustRead(t, "(let ([x 1] [y 2]) x)")
	if Length(d) != 3 {
		t.Fatalf("got %s", d)
	}
}

func TestMismatchedBrackets(t *testing.T) {
	if _, err := ReadOne("(a b]"); err == nil {
		t.Error("expected error for (a b]")
	}
}

func TestReadDotted(t *testing.T) {
	d := mustRead(t, "(a . b)")
	p, ok := d.(*Pair)
	if !ok || p.Car != Symbol("a") || p.Cdr != Symbol("b") {
		t.Errorf("got %s", d)
	}
	d = mustRead(t, "(a b . c)")
	if d.String() != "(a b . c)" {
		t.Errorf("got %s", d)
	}
}

func TestReadQuote(t *testing.T) {
	d := mustRead(t, "'(1 2)")
	want := List(Symbol("quote"), List(Fixnum(1), Fixnum(2)))
	if !Equal(d, want) {
		t.Errorf("got %s, want %s", d, want)
	}
	d = mustRead(t, "`(a ,b ,@c)")
	if d.String() != "(quasiquote (a (unquote b) (unquote-splicing c)))" {
		t.Errorf("got %s", d)
	}
}

func TestReadVector(t *testing.T) {
	d := mustRead(t, "#(1 2 3)")
	v, ok := d.(*Vector)
	if !ok || len(v.Items) != 3 || v.Items[1] != Fixnum(2) {
		t.Errorf("got %s", d)
	}
}

func TestReadComments(t *testing.T) {
	ds, err := ReadAll("; line comment\n(a) #| block #| nested |# comment |# (b)")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("got %d datums: %v", len(ds), ds)
	}
	if !Equal(ds[0], List(Symbol("a"))) || !Equal(ds[1], List(Symbol("b"))) {
		t.Errorf("got %v", ds)
	}
}

func TestReadEmptyAndEOF(t *testing.T) {
	ds, err := ReadAll("   ; nothing\n")
	if err != nil || len(ds) != 0 {
		t.Errorf("got %v, %v", ds, err)
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{"(a", `"unterminated`, "#z", ")", "(a . )", "(a . b c)"}
	for _, src := range bad {
		if _, err := ReadOne(src); err == nil {
			t.Errorf("ReadOne(%q): expected error", src)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := ReadOne("(a\n  ,)")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("expected *SyntaxError, got %T: %v", err, err)
	}
	if se.Line != 2 {
		t.Errorf("line = %d, want 2", se.Line)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	srcs := []string{
		"(define (f x) (+ x 1))",
		"(a . b)",
		"#(1 #t #\\a \"s\")",
		"(quote (1 2 3))",
		"(-1 2.5 () (()))",
	}
	for _, src := range srcs {
		d1 := mustRead(t, src)
		d2 := mustRead(t, d1.String())
		if !Equal(d1, d2) {
			t.Errorf("round trip failed for %q: %s vs %s", src, d1, d2)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	d := mustRead(t, `"a\nb\t\"c\\"`)
	if d != Str("a\nb\t\"c\\") {
		t.Errorf("got %#v", d)
	}
	// And writing it back produces a readable form.
	d2 := mustRead(t, d.String())
	if d != d2 {
		t.Errorf("round trip: %#v vs %#v", d, d2)
	}
}

func TestListHelpers(t *testing.T) {
	lst := List(Fixnum(1), Fixnum(2), Fixnum(3))
	if !IsList(lst) {
		t.Error("IsList(list) = false")
	}
	if IsList(Cons(Fixnum(1), Fixnum(2))) {
		t.Error("IsList(pair) = true")
	}
	items, err := ListItems(lst)
	if err != nil || len(items) != 3 {
		t.Errorf("ListItems: %v, %v", items, err)
	}
	if _, err := ListItems(Cons(Fixnum(1), Fixnum(2))); err == nil {
		t.Error("ListItems(improper): expected error")
	}
	if Length(lst) != 3 || Length(Nil) != 0 || Length(Symbol("x")) != -1 {
		t.Error("Length misbehaves")
	}
}

func TestFlonumPrinting(t *testing.T) {
	if Flonum(1).String() != "1." {
		t.Errorf("Flonum(1) prints as %s", Flonum(1))
	}
	if !strings.Contains(Flonum(1.5).String(), "1.5") {
		t.Errorf("Flonum(1.5) prints as %s", Flonum(1.5))
	}
}

func TestEqual(t *testing.T) {
	a := mustRead(t, "(1 (2 #(3 4)) \"x\")")
	b := mustRead(t, "(1 (2 #(3 4)) \"x\")")
	c := mustRead(t, "(1 (2 #(3 5)) \"x\")")
	if !Equal(a, b) {
		t.Error("Equal(a, b) = false")
	}
	if Equal(a, c) {
		t.Error("Equal(a, c) = true")
	}
}
