package sexp

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Reader parses a stream of S-expression datums from source text.
type Reader struct {
	src  string
	pos  int
	line int
	col  int
}

// NewReader returns a Reader over src.
func NewReader(src string) *Reader {
	return &Reader{src: src, line: 1, col: 1}
}

// SyntaxError reports a malformed datum along with its source position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sexp: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func (r *Reader) errf(format string, args ...interface{}) error {
	return &SyntaxError{Line: r.line, Col: r.col, Msg: fmt.Sprintf(format, args...)}
}

func (r *Reader) peek() (byte, bool) {
	if r.pos >= len(r.src) {
		return 0, false
	}
	return r.src[r.pos], true
}

func (r *Reader) next() (byte, bool) {
	c, ok := r.peek()
	if !ok {
		return 0, false
	}
	r.pos++
	if c == '\n' {
		r.line++
		r.col = 1
	} else {
		r.col++
	}
	return c, true
}

func (r *Reader) skipSpace() {
	for {
		c, ok := r.peek()
		if !ok {
			return
		}
		switch {
		case c == ';':
			for {
				c, ok := r.next()
				if !ok || c == '\n' {
					break
				}
			}
		case c == '#' && r.pos+1 < len(r.src) && r.src[r.pos+1] == '|':
			r.next()
			r.next()
			depth := 1
			for depth > 0 {
				c, ok := r.next()
				if !ok {
					return
				}
				if c == '|' {
					if d, ok := r.peek(); ok && d == '#' {
						r.next()
						depth--
					}
				} else if c == '#' {
					if d, ok := r.peek(); ok && d == '|' {
						r.next()
						depth++
					}
				}
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f':
			r.next()
		default:
			return
		}
	}
}

// ReadAll parses every datum in the source.
func (r *Reader) ReadAll() ([]Datum, error) {
	var out []Datum
	for {
		d, err := r.Read()
		if err != nil {
			return nil, err
		}
		if d == nil {
			return out, nil
		}
		out = append(out, d)
	}
}

// Read parses the next datum, returning nil at end of input.
func (r *Reader) Read() (Datum, error) {
	r.skipSpace()
	c, ok := r.peek()
	if !ok {
		return nil, nil
	}
	switch c {
	case '(', '[':
		return r.readList()
	case ')', ']':
		return nil, r.errf("unexpected %q", c)
	case '\'':
		r.next()
		return r.readAbbrev("quote")
	case '`':
		r.next()
		return r.readAbbrev("quasiquote")
	case ',':
		r.next()
		if d, ok := r.peek(); ok && d == '@' {
			r.next()
			return r.readAbbrev("unquote-splicing")
		}
		return r.readAbbrev("unquote")
	case '"':
		return r.readString()
	case '#':
		return r.readHash()
	default:
		return r.readAtom()
	}
}

func (r *Reader) readAbbrev(tag string) (Datum, error) {
	d, err := r.Read()
	if err != nil {
		return nil, err
	}
	if d == nil {
		return nil, r.errf("unexpected end of input after %s abbreviation", tag)
	}
	return List(Symbol(tag), d), nil
}

func closerFor(open byte) byte {
	if open == '[' {
		return ']'
	}
	return ')'
}

func (r *Reader) readList() (Datum, error) {
	open, _ := r.next()
	closer := closerFor(open)
	var items []Datum
	var tail Datum = Nil
	for {
		r.skipSpace()
		c, ok := r.peek()
		if !ok {
			return nil, r.errf("unterminated list")
		}
		if c == closer {
			r.next()
			break
		}
		if c == ')' || c == ']' {
			return nil, r.errf("mismatched close %q (want %q)", c, closer)
		}
		if c == '.' && r.isDelimitedDot() {
			r.next()
			d, err := r.Read()
			if err != nil {
				return nil, err
			}
			if d == nil {
				return nil, r.errf("unterminated dotted pair")
			}
			tail = d
			r.skipSpace()
			c, ok := r.next()
			if !ok || c != closer {
				return nil, r.errf("malformed dotted pair")
			}
			break
		}
		d, err := r.Read()
		if err != nil {
			return nil, err
		}
		if d == nil {
			return nil, r.errf("unterminated list")
		}
		items = append(items, d)
	}
	out := tail
	for i := len(items) - 1; i >= 0; i-- {
		out = &Pair{Car: items[i], Cdr: out}
	}
	return out, nil
}

// isDelimitedDot reports whether the '.' at the current position is a
// dotted-pair marker rather than the start of a symbol or number.
func (r *Reader) isDelimitedDot() bool {
	if r.pos+1 >= len(r.src) {
		return true
	}
	c := r.src[r.pos+1]
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '(' || c == ')' || c == '[' || c == ']'
}

func (r *Reader) readString() (Datum, error) {
	r.next() // opening quote
	var b strings.Builder
	for {
		c, ok := r.next()
		if !ok {
			return nil, r.errf("unterminated string")
		}
		if c == '"' {
			return Str(b.String()), nil
		}
		if c == '\\' {
			e, ok := r.next()
			if !ok {
				return nil, r.errf("unterminated string escape")
			}
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\', '"':
				b.WriteByte(e)
			default:
				return nil, r.errf("unknown string escape \\%c", e)
			}
			continue
		}
		b.WriteByte(c)
	}
}

func (r *Reader) readHash() (Datum, error) {
	r.next() // '#'
	c, ok := r.next()
	if !ok {
		return nil, r.errf("unexpected end of input after #")
	}
	switch c {
	case 't':
		return Boolean(true), nil
	case 'f':
		return Boolean(false), nil
	case '(':
		r.pos-- // re-read the open paren as a list
		r.col--
		lst, err := r.readList()
		if err != nil {
			return nil, err
		}
		items, err := ListItems(lst)
		if err != nil {
			return nil, err
		}
		return &Vector{Items: items}, nil
	case '\\':
		return r.readChar()
	default:
		return nil, r.errf("unknown # syntax #%c", c)
	}
}

func (r *Reader) readChar() (Datum, error) {
	var b strings.Builder
	c, ok := r.next()
	if !ok {
		return nil, r.errf("unterminated character literal")
	}
	b.WriteByte(c)
	for {
		c, ok := r.peek()
		if !ok || !isSymbolChar(c) {
			break
		}
		r.next()
		b.WriteByte(c)
	}
	s := b.String()
	switch s {
	case "space":
		return Char(' '), nil
	case "newline", "linefeed":
		return Char('\n'), nil
	case "tab":
		return Char('\t'), nil
	case "return":
		return Char('\r'), nil
	case "nul", "null":
		return Char(0), nil
	}
	runes := []rune(s)
	if len(runes) != 1 {
		return nil, r.errf("unknown character name #\\%s", s)
	}
	return Char(runes[0]), nil
}

func isSymbolChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	}
	return strings.IndexByte("!$%&*+-./:<=>?@^_~", c) >= 0
}

func (r *Reader) readAtom() (Datum, error) {
	start := r.pos
	for {
		c, ok := r.peek()
		if !ok || !isSymbolChar(c) {
			break
		}
		r.next()
	}
	text := r.src[start:r.pos]
	if text == "" {
		c, _ := r.peek()
		return nil, r.errf("unexpected character %q", c)
	}
	return parseAtom(text)
}

func parseAtom(text string) (Datum, error) {
	if n, err := strconv.ParseInt(text, 10, 64); err == nil {
		return Fixnum(n), nil
	}
	if looksNumeric(text) {
		if f, err := strconv.ParseFloat(text, 64); err == nil {
			return Flonum(f), nil
		}
	}
	return Symbol(text), nil
}

// looksNumeric distinguishes flonum syntax from symbols such as `+` or
// `...` that ParseFloat would reject anyway but that we should not even
// try to parse (e.g. `1+` is a valid symbol in some Schemes; we treat any
// atom starting with a digit, or sign-then-digit/dot, as numeric intent).
func looksNumeric(text string) bool {
	if text == "" {
		return false
	}
	i := 0
	if text[0] == '+' || text[0] == '-' {
		i = 1
	}
	if i >= len(text) {
		return false
	}
	return unicode.IsDigit(rune(text[i])) || (text[i] == '.' && i+1 < len(text) && unicode.IsDigit(rune(text[i+1])))
}

// ReadAll is a convenience wrapper parsing all datums in src.
func ReadAll(src string) ([]Datum, error) {
	return NewReader(src).ReadAll()
}

// ReadOne parses exactly one datum from src.
func ReadOne(src string) (Datum, error) {
	r := NewReader(src)
	d, err := r.Read()
	if err != nil {
		return nil, err
	}
	if d == nil {
		return nil, fmt.Errorf("sexp: empty input")
	}
	return d, nil
}
