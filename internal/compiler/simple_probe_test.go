package compiler

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/prim"
	"repro/internal/vm"
)

// TestSimpleVsRevisedDiffer exercises the §2.1.2 deficiency pattern: a
// call nested inside an if-test via short-circuit `and`, with a non-tail
// call in the else arm (tail calls are jumps and need no saves, so the
// deficiency requires a real call there). The simple algorithm's save
// sinks into both the test and the else arm, so the path that takes the
// inner call *and* the else call saves twice; the revised algorithm
// hoists one save to the procedure entry.
func TestSimpleVsRevisedDiffer(t *testing.T) {
	src := `
(define (f y) (> y 500))
(define (g y) y)
(define (h x y)
  (if (and x (f y)) (+ y 1) (+ 1 (g (+ y 2)))))
(define (drive i acc)
  (if (zero? i) acc (drive (- i 1) (+ acc (h (even? i) i)))))
(drive 1000 0)`
	want, err := Interpret(src, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	saves := map[codegen.SaveStrategy]int64{}
	for _, s := range []codegen.SaveStrategy{codegen.SaveLazy, codegen.SaveSimple} {
		opts := DefaultOptions()
		opts.Saves = s
		v, counters, err := RunValidated(src, opts, nil)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if prim.WriteString(v) != prim.WriteString(want) {
			t.Fatalf("%v: result = %s, want %s", s, prim.WriteString(v), prim.WriteString(want))
		}
		saves[s] = counters.WritesByKind[vm.KindSave]
	}
	if saves[codegen.SaveSimple] <= saves[codegen.SaveLazy] {
		t.Errorf("the simple algorithm should execute more saves on this pattern (revised %d, simple %d)",
			saves[codegen.SaveLazy], saves[codegen.SaveSimple])
	}
}
