// Package compiler is the end-to-end pipeline: source text → reader →
// macro expansion → assignment conversion → closure conversion →
// register allocation → VM code. It is the internal engine behind the
// public lsr package.
package compiler

import (
	"io"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/codegen"
	"repro/internal/interp"
	"repro/internal/passes"
	"repro/internal/prelude"
	"repro/internal/prim"
	"repro/internal/verify"
	"repro/internal/vm"
)

// Options configures a compilation; it extends the code generator's
// options with front-end choices.
type Options struct {
	codegen.Options
	// NoPrelude omits the Scheme run-time library (used by tiny tests).
	NoPrelude bool
}

// DefaultOptions is the paper's configuration.
func DefaultOptions() Options {
	return Options{Options: codegen.DefaultOptions()}
}

// Compiled bundles the results of a compilation.
type Compiled struct {
	Program *vm.Program
	IR      *irProgramAlias
	Stats   codegen.Stats
	// Lint is the optimality analyzer's report (nil unless Options.Lint).
	Lint *analysis.Report
}

// irProgramAlias avoids exporting internal/ir in the public surface
// while letting internal callers reach the IR for dumps.
type irProgramAlias = irProgram

// Compile compiles source text.
func Compile(src string, opts Options) (*Compiled, error) {
	full := src
	if !opts.NoPrelude {
		full = prelude.Source + "\n" + src
	}
	prog, err := ast.ParseString(full)
	if err != nil {
		return nil, err
	}
	converted := passes.AssignConvert(prog)
	irProg, err := passes.ClosureConvert(converted)
	if err != nil {
		return nil, err
	}
	code, stats, err := codegen.Compile(irProg, opts.Options)
	if err != nil {
		return nil, err
	}
	if opts.Verify {
		if verr := verify.Check(code); verr != nil {
			return nil, verr
		}
	}
	c := &Compiled{Program: code, IR: irProg, Stats: stats}
	if opts.Lint {
		c.Lint = analysis.Analyze(code)
	}
	return c, nil
}

// DefaultFuel is the step budget Run and RunValidated attach to every
// execution. The differential fuzzers and unit tests run through these
// helpers, and their programs finish in well under a billion steps —
// but a miscompilation can turn a terminating program into an infinite
// loop, and without fuel that hangs `go test` instead of failing it.
const DefaultFuel = 1_000_000_000

// Run compiles and executes source, returning the result value and the
// machine counters. out receives program output (nil discards).
// Execution carries the DefaultFuel step budget; a program that
// exhausts it fails with vm.ErrFuelExhausted.
func Run(src string, opts Options, out io.Writer) (prim.Value, *vm.Counters, error) {
	c, err := Compile(src, opts)
	if err != nil {
		return prim.Value{}, nil, err
	}
	m := vm.New(c.Program, out)
	m.MaxSteps = DefaultFuel
	v, err := m.Run()
	return v, &m.Counters, err
}

// RunValidated is Run with the restore-validation machine mode on
// (poisoned registers at call boundaries).
func RunValidated(src string, opts Options, out io.Writer) (prim.Value, *vm.Counters, error) {
	c, err := Compile(src, opts)
	if err != nil {
		return prim.Value{}, nil, err
	}
	m := vm.New(c.Program, out)
	m.MaxSteps = DefaultFuel
	m.ValidateRestores = true
	v, err := m.Run()
	return v, &m.Counters, err
}

// Interpret evaluates source with the reference interpreter (the
// differential-testing oracle).
func Interpret(src string, noPrelude bool, out io.Writer) (prim.Value, error) {
	full := src
	if !noPrelude {
		full = prelude.Source + "\n" + src
	}
	prog, err := ast.ParseString(full)
	if err != nil {
		return prim.Value{}, err
	}
	in := interp.New(out)
	in.MaxSteps = 500_000_000
	return in.RunProgram(prog)
}
