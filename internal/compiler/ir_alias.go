package compiler

import "repro/internal/ir"

// irProgram re-exports the IR program type for internal dump tooling.
type irProgram = ir.Program
