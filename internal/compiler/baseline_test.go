package compiler

import (
	"testing"

	"repro/internal/prim"
	"repro/internal/vm"
)

// These cases exercise the 0-register (all-stack) configuration on the
// construct shapes that once broke it: stack-passed arguments combined
// with complex operators, tail calls whose outgoing slots overlap the
// incoming parameter area, and slot-homed variable traffic.

func TestBaselineConfigConstructs(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"two-arg", "(define (f a b) (cons a b)) (f 1 2)", "(1 . 2)"},
		{"case", "(define (f x) (case x [(a) 1] [(b) 2] [else 3])) (list (f 'a) (f 'b) (f 'c))", "(1 2 3)"},
		{"assq-chain", `
(define (lookup env n) (let ([c (assq n env)]) (if c (cdr c) (error "unbound"))))
(lookup '((x . 1) (y . 2)) 'y)`, "2"},
		{"vec-dispatch", `
(define (mk f) (vector 'proc f))
(define (fn v) (vector-ref v 1))
(define (app p a) ((fn p) a))
(app (mk (lambda (x) (* x 10))) 4)`, "40"},
		{"letstar-deep", `
(define (f e env)
  (let* ([a (car e)] [b (cdr e)] [c (cons a env)] [d (cons b c)])
    d))
(f '(1 . 2) '(9))`, "(2 1 9)"},
		{"extend", `
(define (ext env ns vs)
  (if (null? ns) env (ext (cons (cons (car ns) (car vs)) env) (cdr ns) (cdr vs))))
(ext '() '(a b c) '(1 2 3))`, "((c . 3) (b . 2) (a . 1))"},
		{"map-lambda-env", `
(define (evl e env) (+ e (car env)))
(define (f es env) (map (lambda (a) (evl a env)) es))
(f '(1 2 3) '(10))`, "(11 12 13)"},
	}
	opts := DefaultOptions()
	opts.Config = vm.BaselineConfig()
	for _, c := range cases {
		iv, err := Interpret(c.src, false, nil)
		if err != nil {
			t.Fatalf("%s interp: %v", c.name, err)
		}
		if got := prim.WriteString(iv); got != c.want {
			t.Fatalf("%s: bad want: interp says %s", c.name, got)
		}
		v, _, err := RunValidated(c.src, opts, nil)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got := prim.WriteString(v); got != c.want {
			t.Errorf("%s: got %s want %s", c.name, got, c.want)
		}
	}
}
