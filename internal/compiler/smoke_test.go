package compiler

import (
	"fmt"
	"testing"

	"repro/internal/codegen"
)

func TestVerifySmoke(t *testing.T) {
	srcs := []string{
		`(+ 1 2)`,
		`(define (f x) (+ (f2 x) x)) (define (f2 y) (* y 2)) (display (f 3))`,
		`(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (display (fib 10))`,
		`(define (tak x y z) (if (not (< y x)) z (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y)))) (display (tak 12 6 0))`,
		`(define (big a b c d e f g h) (+ a (+ b (+ c (+ d (+ e (+ f (+ g h)))))))) (display (big 1 2 3 4 5 6 7 8))`,
		`(define (swap a b) (if (= a 0) b (swap (- a 1) (+ b a)))) (display (swap 5 0))`,
		`(display (call/cc (lambda (k) (+ 1 (k 42)))))`,
		`(define (make-adder n) (lambda (x) (+ x n))) (display ((make-adder 3) 4))`,
		`(define counter (let ((n 0)) (lambda () (set! n (+ n 1)) n))) (counter) (display (counter))`,
		`(define (ack m n) (cond ((= m 0) (+ n 1)) ((= n 0) (ack (- m 1) 1)) (else (ack (- m 1) (ack m (- n 1)))))) (display (ack 2 3))`,
		`(define (even2? n) (if (= n 0) #t (odd2? (- n 1)))) (define (odd2? n) (if (= n 0) #f (even2? (- n 1)))) (display (even2? 10))`,
		`(display (map (lambda (x) (* x x)) '(1 2 3 4)))`,
	}
	for si, saves := range []codegen.SaveStrategy{codegen.SaveLazy, codegen.SaveEarly, codegen.SaveLate, codegen.SaveSimple} {
		for _, restores := range []codegen.RestorePolicy{codegen.RestoreEager, codegen.RestoreLazy} {
			for _, shuffle := range []codegen.ShuffleMethod{codegen.ShuffleGreedy, codegen.ShuffleNaive, codegen.ShuffleOptimal} {
				for _, cs := range []int{0, 3} {
					opts := DefaultOptions()
					opts.Verify = true
					opts.Saves = saves
					opts.Restores = restores
					opts.Shuffle = shuffle
					if cs > 0 {
						opts.Config.CalleeSaveRegs = cs
						opts.CalleeSave = true
					}
					name := fmt.Sprintf("s%d-r%v-sh%v-cs%d", si, restores, shuffle, cs)
					for i, src := range srcs {
						if _, err := Compile(src, opts); err != nil {
							t.Errorf("%s program %d: %v", name, i, err)
						}
					}
				}
			}
		}
	}
}
