package compiler

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/prim"
	"repro/internal/vm"
)

// TestCalleeSaveMode: the §2.4 callee-save discipline must preserve
// program semantics under both early and lazy placement, with restore
// validation on.
func TestCalleeSaveMode(t *testing.T) {
	for _, saves := range []codegen.SaveStrategy{codegen.SaveLazy, codegen.SaveEarly} {
		for _, restores := range []codegen.RestorePolicy{codegen.RestoreEager, codegen.RestoreLazy} {
			opts := DefaultOptions()
			opts.Config = vm.Config{ArgRegs: 6, UserRegs: 6, ScratchRegs: 8, CalleeSaveRegs: 6}
			opts.CalleeSave = true
			opts.Saves = saves
			opts.Restores = restores
			name := saves.String() + "/" + restores.String()
			t.Run(name, func(t *testing.T) {
				for _, p := range testPrograms {
					v, _, err := RunValidated(p.src, opts, nil)
					if err != nil {
						t.Errorf("%s: %v", p.name, err)
						continue
					}
					if got := prim.WriteString(v); got != p.want {
						t.Errorf("%s: compiled = %s, want %s", p.name, got, p.want)
					}
				}
			})
		}
	}
}

// TestCalleeSaveLazyBeatsEarlyOnTak: the Table 5 phenomenon — lazy
// placement of callee-save saves skips effective-leaf activations, so
// tak executes fewer stack references than with entry-point saves.
func TestCalleeSaveLazyBeatsEarlyOnTak(t *testing.T) {
	src := `
(define (tak x y z)
  (if (not (< y x)) z
      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
(tak 14 7 0)`
	run := func(saves codegen.SaveStrategy) int64 {
		opts := DefaultOptions()
		opts.Config = vm.Config{ArgRegs: 6, UserRegs: 6, ScratchRegs: 8, CalleeSaveRegs: 6}
		opts.CalleeSave = true
		opts.Saves = saves
		_, counters, err := RunValidated(src, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		return counters.StackRefs()
	}
	early := run(codegen.SaveEarly)
	lazy := run(codegen.SaveLazy)
	if lazy >= early {
		t.Errorf("callee-save lazy (%d refs) should beat early (%d refs)", lazy, early)
	}
}
