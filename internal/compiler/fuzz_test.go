package compiler

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/prim"
	"repro/internal/vm"
)

// This file is a differential fuzzer: it generates random well-typed,
// terminating mini-Scheme programs and checks that the compiled code
// (under several allocator configurations, with register poisoning)
// agrees with the reference interpreter on every one.

// genType is the loose type discipline the generator tracks so programs
// don't die on trivial type errors (which would make runs degenerate).
type genType int

const (
	tyInt genType = iota
	tyBool
	tyPair // a cons cell whose car/cdr are ints (so car/cdr are safe)
)

// progGen generates one random program.
type progGen struct {
	rng *rand.Rand
	b   strings.Builder
	// fns[i] is the arity of top-level function fi; function i may call
	// only functions with smaller index (a DAG, so no unbounded
	// recursion).
	fns []int
	// vars in scope during expression generation, by type.
	scope map[genType][]string
	tmp   int
}

func (g *progGen) fresh(stem string) string {
	g.tmp++
	return fmt.Sprintf("%s%d", stem, g.tmp)
}

// expr emits a random expression of type ty at the given depth budget.
func (g *progGen) expr(ty genType, depth int, fnCeiling int) string {
	if depth <= 0 {
		return g.leaf(ty)
	}
	switch ty {
	case tyInt:
		switch g.rng.Intn(10) {
		case 0, 1:
			return g.leaf(ty)
		case 2:
			return fmt.Sprintf("(+ %s %s)", g.expr(tyInt, depth-1, fnCeiling), g.expr(tyInt, depth-1, fnCeiling))
		case 3:
			return fmt.Sprintf("(- %s %s)", g.expr(tyInt, depth-1, fnCeiling), g.expr(tyInt, depth-1, fnCeiling))
		case 4:
			return fmt.Sprintf("(* %s %s)", g.expr(tyInt, depth-1, fnCeiling), g.leaf(tyInt))
		case 5:
			return fmt.Sprintf("(if %s %s %s)",
				g.expr(tyBool, depth-1, fnCeiling),
				g.expr(tyInt, depth-1, fnCeiling),
				g.expr(tyInt, depth-1, fnCeiling))
		case 6:
			return g.letExpr(tyInt, depth, fnCeiling)
		case 7:
			// call an earlier function (all functions are int-valued)
			if fnCeiling > 0 {
				fi := g.rng.Intn(fnCeiling)
				args := make([]string, g.fns[fi])
				for i := range args {
					args[i] = g.expr(tyInt, depth-1, fi)
				}
				return fmt.Sprintf("(f%d %s)", fi, strings.Join(args, " "))
			}
			return g.leaf(tyInt)
		case 8:
			return fmt.Sprintf("(car %s)", g.expr(tyPair, depth-1, fnCeiling))
		default:
			// bounded named-let loop
			n := 1 + g.rng.Intn(5)
			loop := g.fresh("loop")
			i := g.fresh("i")
			acc := g.fresh("acc")
			return fmt.Sprintf("(let %s ([%s %d] [%s %s]) (if (<= %s 0) %s (%s (- %s 1) (+ %s %s))))",
				loop, i, n, acc, g.expr(tyInt, depth-1, fnCeiling),
				i, acc, loop, i, acc, g.expr(tyInt, depth-1, fnCeiling))
		}
	case tyBool:
		switch g.rng.Intn(6) {
		case 0:
			return g.leaf(ty)
		case 1:
			return fmt.Sprintf("(< %s %s)", g.expr(tyInt, depth-1, fnCeiling), g.expr(tyInt, depth-1, fnCeiling))
		case 2:
			return fmt.Sprintf("(= %s %s)", g.expr(tyInt, depth-1, fnCeiling), g.expr(tyInt, depth-1, fnCeiling))
		case 3:
			return fmt.Sprintf("(and %s %s)", g.expr(tyBool, depth-1, fnCeiling), g.expr(tyBool, depth-1, fnCeiling))
		case 4:
			return fmt.Sprintf("(or %s %s)", g.expr(tyBool, depth-1, fnCeiling), g.expr(tyBool, depth-1, fnCeiling))
		default:
			return fmt.Sprintf("(not %s)", g.expr(tyBool, depth-1, fnCeiling))
		}
	default: // tyPair
		switch g.rng.Intn(4) {
		case 0:
			return g.leaf(ty)
		case 1:
			return fmt.Sprintf("(cons %s %s)", g.expr(tyInt, depth-1, fnCeiling), g.expr(tyInt, depth-1, fnCeiling))
		case 2:
			return fmt.Sprintf("(if %s %s %s)",
				g.expr(tyBool, depth-1, fnCeiling),
				g.expr(tyPair, depth-1, fnCeiling),
				g.expr(tyPair, depth-1, fnCeiling))
		default:
			return g.letExpr(tyPair, depth, fnCeiling)
		}
	}
}

func (g *progGen) leaf(ty genType) string {
	if vars := g.scope[ty]; len(vars) > 0 && g.rng.Intn(3) > 0 {
		return vars[g.rng.Intn(len(vars))]
	}
	switch ty {
	case tyInt:
		return fmt.Sprintf("%d", g.rng.Intn(21)-10)
	case tyBool:
		if g.rng.Intn(2) == 0 {
			return "#t"
		}
		return "#f"
	default:
		return fmt.Sprintf("(cons %d %d)", g.rng.Intn(10), g.rng.Intn(10))
	}
}

// letExpr emits a let (sometimes with a set! in the body to exercise
// assignment conversion).
func (g *progGen) letExpr(ty genType, depth, fnCeiling int) string {
	bindTy := genType(g.rng.Intn(3))
	name := g.fresh("v")
	init := g.expr(bindTy, depth-1, fnCeiling)
	g.scope[bindTy] = append(g.scope[bindTy], name)
	var body string
	if bindTy == tyInt && g.rng.Intn(4) == 0 {
		body = fmt.Sprintf("(begin (set! %s (+ %s 1)) %s)", name, name, g.expr(ty, depth-1, fnCeiling))
	} else {
		body = g.expr(ty, depth-1, fnCeiling)
	}
	g.scope[bindTy] = g.scope[bindTy][:len(g.scope[bindTy])-1]
	return fmt.Sprintf("(let ([%s %s]) %s)", name, init, body)
}

// generate builds a whole program: a DAG of int-valued functions plus a
// main expression combining calls to them.
func generateProgram(seed int64) string {
	g := &progGen{rng: rand.New(rand.NewSource(seed)), scope: map[genType][]string{}}
	nFns := 1 + g.rng.Intn(4)
	var b strings.Builder
	for i := 0; i < nFns; i++ {
		arity := 1 + g.rng.Intn(3)
		g.fns = append(g.fns, arity)
		params := make([]string, arity)
		for j := range params {
			params[j] = fmt.Sprintf("p%d_%d", i, j)
		}
		g.scope = map[genType][]string{tyInt: params}
		body := g.expr(tyInt, 3+g.rng.Intn(3), i)
		fmt.Fprintf(&b, "(define (f%d %s) %s)\n", i, strings.Join(params, " "), body)
	}
	g.scope = map[genType][]string{}
	main := g.expr(tyInt, 4, nFns)
	fmt.Fprintf(&b, "%s\n", main)
	return b.String()
}

// fuzzConfigs are the allocator configurations the fuzzer samples.
func fuzzConfigs() []Options {
	mk := func(cfg vm.Config, s codegen.SaveStrategy, r codegen.RestorePolicy, sh codegen.ShuffleMethod, cs bool) Options {
		o := DefaultOptions()
		o.Config = cfg
		o.Saves = s
		o.Restores = r
		o.Shuffle = sh
		o.CalleeSave = cs
		// Every fuzzed compile also runs the static translation
		// validator, so structural violations are caught even when the
		// behavioral diff coincidentally agrees.
		o.Verify = true
		return o
	}
	def := vm.DefaultConfig()
	tiny := vm.Config{ArgRegs: 1, UserRegs: 1, ScratchRegs: 8}
	base := vm.BaselineConfig()
	csCfg := vm.Config{ArgRegs: 3, UserRegs: 2, ScratchRegs: 8, CalleeSaveRegs: 4}
	return []Options{
		mk(def, codegen.SaveLazy, codegen.RestoreEager, codegen.ShuffleGreedy, false),
		mk(def, codegen.SaveSimple, codegen.RestoreLazy, codegen.ShuffleNaive, false),
		mk(tiny, codegen.SaveLate, codegen.RestoreEager, codegen.ShuffleOptimal, false),
		mk(base, codegen.SaveEarly, codegen.RestoreLazy, codegen.ShuffleGreedy, false),
		mk(csCfg, codegen.SaveLazy, codegen.RestoreEager, codegen.ShuffleGreedy, true),
		mk(csCfg, codegen.SaveLazy, codegen.RestoreLazy, codegen.ShuffleGreedy, true),
		mk(def, codegen.SaveLazy, codegen.RestoreLazy, codegen.ShuffleGreedy, false),
	}
}

// TestFuzzDifferential: every randomly generated program must produce
// the same value in the interpreter and in compiled form under every
// sampled configuration (with register poisoning on).
func TestFuzzDifferential(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 50
	}
	configs := fuzzConfigs()
	for seed := int64(0); seed < int64(n); seed++ {
		src := generateProgram(seed)
		want, ierr := Interpret(src, false, nil)
		if ierr != nil {
			// Generated programs are well-typed and terminating by
			// construction; an interpreter error indicates a generator
			// bug worth seeing.
			t.Fatalf("seed %d: interpreter error: %v\nprogram:\n%s", seed, ierr, src)
		}
		opts := configs[seed%int64(len(configs))]
		got, _, cerr := RunValidated(src, opts, nil)
		if cerr != nil {
			t.Fatalf("seed %d: compiled error: %v\nprogram:\n%s", seed, cerr, src)
		}
		if prim.WriteString(got) != prim.WriteString(want) {
			t.Fatalf("seed %d: compiled %s, interpreted %s\nprogram:\n%s",
				seed, prim.WriteString(got), prim.WriteString(want), src)
		}
	}
}

// TestFuzzVerifyAllSaveStrategies statically verifies every generated
// program under all four save strategies (the behavioral tests sample
// one configuration per seed; save placement differs structurally
// across strategies, so each must uphold the invariants on its own).
func TestFuzzVerifyAllSaveStrategies(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 25
	}
	strategies := []codegen.SaveStrategy{
		codegen.SaveLazy, codegen.SaveEarly, codegen.SaveLate, codegen.SaveSimple,
	}
	for seed := int64(0); seed < int64(n); seed++ {
		src := generateProgram(seed)
		for _, s := range strategies {
			opts := DefaultOptions()
			opts.Saves = s
			opts.Verify = true
			if _, err := Compile(src, opts); err != nil {
				t.Fatalf("seed %d strategy %v: %v\nprogram:\n%s", seed, s, err, src)
			}
		}
	}
}

// TestFuzzAllConfigsOneSeed runs a handful of seeds through *every*
// configuration, catching config-specific divergence.
func TestFuzzAllConfigsOneSeed(t *testing.T) {
	for seed := int64(1000); seed < 1010; seed++ {
		src := generateProgram(seed)
		want, err := Interpret(src, false, nil)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		for ci, opts := range fuzzConfigs() {
			got, _, err := RunValidated(src, opts, nil)
			if err != nil {
				t.Fatalf("seed %d config %d: %v\n%s", seed, ci, err, src)
			}
			if prim.WriteString(got) != prim.WriteString(want) {
				t.Fatalf("seed %d config %d: %s vs %s\n%s",
					seed, ci, prim.WriteString(got), prim.WriteString(want), src)
			}
		}
	}
}
