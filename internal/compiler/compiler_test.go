package compiler

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/prim"
	"repro/internal/vm"
)

// testPrograms is the correctness corpus: each program is run through
// the reference interpreter and through the compiler under every
// strategy combination, with restore validation on.
var testPrograms = []struct {
	name string
	src  string
	want string
}{
	{"const", "42", "42"},
	{"arith", "(+ 1 (* 2 3) (- 10 4))", "13"},
	{"let", "(let ([x 1] [y 2]) (+ x y))", "3"},
	{"let-shadow", "(let ([x 1]) (let ([x 2] [y x]) (+ x y)))", "3"},
	{"if", "(if (< 1 2) 'yes 'no)", "yes"},
	{"and-or", "(list (and 1 2) (and #f 2) (or #f 3) (or 4 5) (not 1))", "(2 #f 3 4 #f)"},
	{"cond", "(cond [(= 1 2) 'a] [(= 1 1) 'b] [else 'c])", "b"},
	{"case", "(case (* 2 3) [(2 3 5 7) 'prime] [(1 4 6 8 9) 'composite])", "composite"},
	{"define", "(define (f x) (+ x 1)) (f 41)", "42"},
	{"fact", "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 12)", "479001600"},
	{"fib", "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 16)", "987"},
	{"mutual", `
(define (ev? n) (if (zero? n) #t (od? (- n 1))))
(define (od? n) (if (zero? n) #f (ev? (- n 1))))
(list (ev? 10) (od? 7))`, "(#t #t)"},
	{"named-let", "(let loop ([i 0] [acc '()]) (if (= i 5) (reverse acc) (loop (+ i 1) (cons i acc))))", "(0 1 2 3 4)"},
	{"do-loop", "(do ([i 0 (+ i 1)] [acc 1 (* acc 2)]) ((= i 8) acc))", "256"},
	{"closure", `
(define (adder n) (lambda (x) (+ x n)))
(define add3 (adder 3))
(define add7 (adder 7))
(list (add3 10) (add7 10))`, "(13 17)"},
	{"counter", `
(define (make-counter)
  (let ([n 0]) (lambda () (set! n (+ n 1)) n)))
(define c1 (make-counter))
(define c2 (make-counter))
(c1) (c1) (c2)
(list (c1) (c2))`, "(3 2)"},
	{"higher-order", "(fold-left + 0 (map (lambda (x) (* x x)) (iota 10)))", "285"},
	{"list-ops", "(list (length '(a b c)) (append '(1 2) '(3)) (reverse '(x y z)) (memq 'b '(a b c)) (assv 2 '((1 a) (2 b))))",
		"(3 (1 2 3) (z y x) (b c) (2 b))"},
	{"vectors", `
(define v (make-vector 5 0))
(do ([i 0 (+ i 1)]) ((= i 5)) (vector-set! v i (* i i)))
(vector->list v)`, "(0 1 4 9 16)"},
	{"strings", `(list (string-append "ab" "cd") (string-length "hello") (substring "world" 1 3))`,
		`("abcd" 5 "or")`},
	{"deep-recursion", "(define (sum n acc) (if (zero? n) acc (sum (- n 1) (+ acc n)))) (sum 10000 0)", "50005000"},
	{"nonsyntactic-leaf", `
(define (maybe-call x f) (if (pair? x) (f (car x)) x))
(list (maybe-call 7 car) (maybe-call '(8 9) (lambda (v) (* v 2))))`, "(7 16)"},
	{"many-args", `
(define (f a b c d e g h i) (- (+ a c e h) (+ b d g i)))
(f 1 2 3 4 5 6 7 8)`, "-4"},
	{"many-args-shuffle", `
(define (g a b c d e f2 h i) (if (zero? a) (list a b c d e f2 h i) (g (- a 1) c b e d h f2 (+ i 1))))
(g 5 1 2 3 4 5 6 0)`, "(0 2 1 4 3 6 5 5)"},
	{"swap-args", `
(define (f x y) (if (zero? x) (list x y) (f (- y 1) x)))
(f 5 7)`, "(0 2)"},
	{"complex-args", `
(define (h n) (+ n 1))
(define (g a b c) (+ a (* b 10) (* c 100)))
(g (h 1) (h 2) (h 3))`, "432"},
	{"nested-complex", `
(define (f x) (* x 2))
(+ (f (+ (f 1) (f 2))) (f 3))`, "18"},
	{"boxes", "(let ([b (box 5)]) (set-box! b (+ (unbox b) 1)) (unbox b))", "6"},
	{"letrec-general", "(letrec ([x 5] [f (lambda () x)]) (f))", "5"},
	{"internal-define", `
(define (outer x)
  (define (double y) (* y 2))
  (define (quad y) (double (double y)))
  (quad x))
(outer 3)`, "12"},
	{"quasiquote", "(let ([x 3] [y '(4 5)]) `(1 2 ,x ,@y 6))", "(1 2 3 4 5 6)"},
	{"callcc-escape", "(+ 1 (call/cc (lambda (k) (k 10) 999)))", "11"},
	{"callcc-normal", "(+ 1 (call/cc (lambda (k) 10)))", "11"},
	{"callcc-deep", `
(define (product l)
  (call/cc
    (lambda (exit)
      (let loop ([l l])
        (cond [(null? l) 1]
              [(zero? (car l)) (exit 0)]
              [else (* (car l) (loop (cdr l)))])))))
(list (product '(1 2 3)) (product '(1 0 3)))`, "(6 0)"},
	{"tak-small", `
(define (tak x y z)
  (if (not (< y x)) z
      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
(tak 8 4 2)`, "3"},
	{"ack", `
(define (ack m n)
  (cond [(zero? m) (+ n 1)]
        [(zero? n) (ack (- m 1) 1)]
        [else (ack (- m 1) (ack m (- n 1)))]))
(ack 2 3)`, "9"},
	{"string-sym", "(list (string->symbol \"hey\") (symbol->string 'yo) (number->string 123) (string->number \"45\"))",
		`(hey "yo" "123" 45)`},
	{"char-ops", `(list (char->integer #\a) (integer->char 98) (char<? #\a #\b))`, `(97 #\b #t)`},
	{"eq-eqv-equal", "(list (eq? 'a 'a) (eqv? 1.5 1.5) (equal? '(1 (2)) '(1 (2))) (eq? '(1) '(1)))",
		"(#t #t #t #f)"},
	{"assoc-update", `
(define (update alist key val)
  (cond [(null? alist) (list (cons key val))]
        [(eq? (caar alist) key) (cons (cons key val) (cdr alist))]
        [else (cons (car alist) (update (cdr alist) key val))]))
(update '((a . 1) (b . 2)) 'b 99)`, "((a . 1) (b . 99))"},
	{"flonums", "(list (* 1.5 2) (/ 1 4) (sqrt 16.0) (< 1.5 2))", "(3. 0.25 4. #t)"},
	{"shadow-prim", "(define (car x) 'my-car) (car '(1 2))", "my-car"},
	{"prim-as-value", "(map car '((1 2) (3 4)))", "(1 3)"},
	{"set-global", "(define x 1) (set! x 42) x", "42"},
	{"begin-effects", `
(define log '())
(define (note x) (set! log (cons x log)) x)
(begin (note 1) (note 2) (note 3))
(reverse log)`, "(1 2 3)"},
	{"deep-nest-if", `
(define (classify n)
  (if (< n 10) (if (< n 5) (if (< n 2) 'tiny 'small) 'medium)
      (if (< n 100) 'large 'huge)))
(map classify '(1 3 7 50 1000))`, "(tiny small medium large huge)"},
	{"arg-eval-order-free", `
(define (f a b) (- a b))
(let ([x 10] [y 3]) (f (+ x y) (- x y)))`, "6"},
	{"tail-call-stack-args", `
(define (f a b c d e g h i j) (if (zero? a) j (f (- a 1) b c d e g h i (+ j 1))))
(f 4 0 0 0 0 0 0 0 100)`, "104"},
	{"capture-in-vector", `
(define v (make-vector 2 0))
(vector-set! v 0 (lambda (x) (* x 3)))
(vector-set! v 1 (lambda (x) (+ x 3)))
(list ((vector-ref v 0) 5) ((vector-ref v 1) 5))`, "(15 8)"},
	{"mutual-fix", `
(define (run)
  (letrec ([e? (lambda (n) (if (zero? n) #t (o? (- n 1))))]
           [o? (lambda (n) (if (zero? n) #f (e? (- n 1))))])
    (list (e? 4) (o? 4))))
(run)`, "(#t #f)"},
	{"fix-capture", `
(define (make n)
  (letrec ([f (lambda (i) (if (= i n) '() (cons i (f (+ i 1)))))])
    (f 0)))
(make 4)`, "(0 1 2 3)"},
}

// allOptions enumerates the strategy matrix.
func allOptions() []compilerCase {
	var out []compilerCase
	configs := []struct {
		name string
		cfg  vm.Config
	}{
		{"c6l6", vm.DefaultConfig()},
		{"c0l0", vm.BaselineConfig()},
		{"c2l1", vm.Config{ArgRegs: 2, UserRegs: 1, ScratchRegs: 8}},
	}
	for _, cfg := range configs {
		for _, saves := range []codegen.SaveStrategy{codegen.SaveLazy, codegen.SaveEarly, codegen.SaveLate, codegen.SaveSimple} {
			for _, restores := range []codegen.RestorePolicy{codegen.RestoreEager, codegen.RestoreLazy} {
				for _, shuffle := range []codegen.ShuffleMethod{codegen.ShuffleGreedy, codegen.ShuffleNaive, codegen.ShuffleOptimal} {
					opts := DefaultOptions()
					opts.Config = cfg.cfg
					opts.Saves = saves
					opts.Restores = restores
					opts.Shuffle = shuffle
					out = append(out, compilerCase{
						name: fmt.Sprintf("%s/%s-saves/%s-restores/%s-shuffle", cfg.name, saves, restores, shuffle),
						opts: opts,
					})
				}
			}
		}
	}
	return out
}

type compilerCase struct {
	name string
	opts Options
}

// TestDifferentialAllStrategies is the central correctness theorem of
// the reproduction: for every program and every (register count, save
// strategy, restore policy, shuffler) combination, compiled execution —
// with poisoned registers at call boundaries — matches both the expected
// value and the reference interpreter.
func TestDifferentialAllStrategies(t *testing.T) {
	for _, p := range testPrograms {
		// Oracle first.
		iv, err := Interpret(p.src, false, nil)
		if err != nil {
			t.Fatalf("%s: interpreter failed: %v", p.name, err)
		}
		if got := prim.WriteString(iv); got != p.want {
			t.Fatalf("%s: interpreter = %s, want %s", p.name, got, p.want)
		}
	}
	for _, c := range allOptions() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, p := range testPrograms {
				v, _, err := RunValidated(p.src, c.opts, nil)
				if err != nil {
					t.Errorf("%s: %v", p.name, err)
					continue
				}
				if got := prim.WriteString(v); got != p.want {
					t.Errorf("%s: compiled = %s, want %s", p.name, got, p.want)
				}
			}
		})
	}
}

// TestNoDefensiveRestores: under the eager policy, the pass-2 analysis
// must cover every register use; the emitter's at-use fallback must
// never fire.
func TestNoDefensiveRestores(t *testing.T) {
	for _, p := range testPrograms {
		c, err := Compile(p.src, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if c.Stats.DefensiveRestores != 0 {
			t.Errorf("%s: %d defensive restores", p.name, c.Stats.DefensiveRestores)
		}
	}
}

// TestOutputAgreement: programs that print must produce identical output
// in both engines.
func TestOutputAgreement(t *testing.T) {
	src := `
(define (show x) (display x) (newline))
(for-each show '(1 two "three"))
(write "done")
(newline)
42`
	var iout, cout strings.Builder
	iv, err := Interpret(src, false, &iout)
	if err != nil {
		t.Fatal(err)
	}
	cv, _, err := RunValidated(src, DefaultOptions(), &cout)
	if err != nil {
		t.Fatal(err)
	}
	if iout.String() != cout.String() {
		t.Errorf("output mismatch:\ninterp:   %q\ncompiled: %q", iout.String(), cout.String())
	}
	if prim.WriteString(iv) != prim.WriteString(cv) {
		t.Errorf("value mismatch: %s vs %s", prim.WriteString(iv), prim.WriteString(cv))
	}
}

// TestRuntimeErrorsAgree: programs that fail must fail in both engines.
func TestRuntimeErrorsAgree(t *testing.T) {
	bad := []string{
		"(car 1)",
		"(vector-ref (vector 1 2) 9)",
		"(undefined-procedure 1 2)",
		"((lambda (x) x) 1 2)",
		"(error \"deliberate\" 1 2)",
		"(+ 'a 1)",
		"(1 2 3)",
	}
	for _, src := range bad {
		if _, err := Interpret(src, false, nil); err == nil {
			t.Errorf("interp(%q): expected error", src)
		}
		if _, _, err := RunValidated(src, DefaultOptions(), nil); err == nil {
			t.Errorf("compiled(%q): expected error", src)
		}
	}
}

func TestArityErrorMessage(t *testing.T) {
	_, _, err := RunValidated("(define (f x y) x) (f 1)", DefaultOptions(), nil)
	if err == nil || !strings.Contains(err.Error(), "expects 2 arguments") {
		t.Errorf("got %v", err)
	}
}

// TestTailCallsDontGrowStack: a million-iteration loop must not grow the
// activation side-stack or the frame stack.
func TestTailCallsDontGrowStack(t *testing.T) {
	src := "(let loop ([i 0]) (if (= i 1000000) 'done (loop (+ i 1))))"
	v, counters, err := Run(src, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if prim.WriteString(v) != "done" {
		t.Errorf("got %s", prim.WriteString(v))
	}
	if counters.TailCalls < 1000000 {
		t.Errorf("expected ≥1e6 tail calls, got %d", counters.TailCalls)
	}
	if counters.Calls > 1000 {
		t.Errorf("loop should use tail calls, got %d non-tail calls", counters.Calls)
	}
}

// TestStackRefsOrdering reproduces the paper's headline claim in
// miniature: with six argument registers, lazy saves produce no more
// stack references than early or late saves, and far fewer than the
// zero-register baseline.
func TestStackRefsOrdering(t *testing.T) {
	src := `
(define (tak x y z)
  (if (not (< y x)) z
      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
(tak 14 7 0)`
	refs := func(opts Options) int64 {
		_, counters, err := Run(src, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		return counters.StackRefs()
	}
	base := DefaultOptions()
	base.Config = vm.BaselineConfig()
	baseline := refs(base)

	lazy := DefaultOptions()
	lazyRefs := refs(lazy)

	early := DefaultOptions()
	early.Saves = codegen.SaveEarly
	earlyRefs := refs(early)

	late := DefaultOptions()
	late.Saves = codegen.SaveLate
	lateRefs := refs(late)

	if lazyRefs >= baseline {
		t.Errorf("lazy (%d) should beat the 0-register baseline (%d)", lazyRefs, baseline)
	}
	if lazyRefs > earlyRefs {
		t.Errorf("lazy (%d) should not exceed early (%d)", lazyRefs, earlyRefs)
	}
	if lazyRefs > lateRefs {
		t.Errorf("lazy (%d) should not exceed late (%d)", lazyRefs, lateRefs)
	}
	reduction := 1 - float64(lazyRefs)/float64(baseline)
	if reduction < 0.4 {
		t.Errorf("lazy reduction vs baseline only %.0f%%", reduction*100)
	}
}

// TestEffectiveLeafStatistics checks the Table 2 phenomenon on a mixed
// workload: effective leaves must strictly exceed syntactic leaves.
func TestEffectiveLeafStatistics(t *testing.T) {
	src := `
(define (leaf x) (+ x 1))
(define (eff-leaf x f) (if (pair? x) (f x) (leaf x)))
(define (internal x) (leaf (eff-leaf x car)))
(let loop ([i 0] [acc 0])
  (if (= i 100) acc (loop (+ i 1) (+ acc (internal i)))))`
	_, counters, err := Run(src, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if counters.EffectiveLeaves() <= counters.SyntacticLeaves {
		t.Errorf("effective leaves (%d) should exceed syntactic leaves (%d)",
			counters.EffectiveLeaves(), counters.SyntacticLeaves)
	}
	if counters.ClassifiedActivations() == 0 {
		t.Error("no activations classified")
	}
}

// TestDumpDisassembly sanity-checks the disassembler output.
func TestDumpDisassembly(t *testing.T) {
	c, err := Compile("(define (f x) (+ x 1)) (f 1)", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	asm := c.Program.Disassemble()
	for _, frag := range []string{"main:", "entry", "call", "return", "halt"} {
		if !strings.Contains(asm, frag) {
			t.Errorf("disassembly missing %q:\n%s", frag, asm)
		}
	}
}
