package gate

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring over a fixed backend set with dynamic
// health. Each backend contributes vnodes points (hashes of
// "backend#i"), so keys spread evenly and adding or removing one
// backend remaps only ~1/N of the key space — the property the
// sharded cache tier depends on (a membership change invalidates a
// slice of each replica's warm cache, not all of it; the golden test
// in ring_test.go pins the mapping).
//
// Health is orthogonal to membership: a down backend keeps its points,
// and lookups walk past them to the next distinct healthy backend.
// When it recovers, its keys return — the deterministic mapping is
// restored rather than reshuffled.
type Ring struct {
	backends []string
	vnodes   int
	points   []ringPoint // sorted by hash

	mu         sync.RWMutex
	alive      []bool
	rebalances int64
}

type ringPoint struct {
	hash    uint64
	backend int
}

// DefaultVNodes balances spread (stddev of key share shrinks with
// sqrt(vnodes)) against ring size; 64 keeps per-backend share within a
// few percent of 1/N for small fleets.
const DefaultVNodes = 64

// NewRing builds the ring; every backend starts healthy.
func NewRing(backends []string, vnodes int) (*Ring, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("gate: ring needs at least one backend")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		backends: append([]string(nil), backends...),
		vnodes:   vnodes,
		alive:    make([]bool, len(backends)),
	}
	for i := range r.alive {
		r.alive[i] = true
	}
	r.points = make([]ringPoint, 0, len(backends)*vnodes)
	for b, name := range r.backends {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(name, v), backend: b})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].backend < r.points[j].backend
	})
	return r, nil
}

// pointHash places virtual node v of a backend on the ring.
func pointHash(backend string, v int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", backend, v)))
	return binary.BigEndian.Uint64(sum[:8])
}

// KeyHash positions an opaque shard key (the service's content-address
// bytes, or a raw body for unparseable requests) on the ring.
func KeyHash(key []byte) uint64 {
	sum := sha256.Sum256(key)
	return binary.BigEndian.Uint64(sum[:8])
}

// Backends returns the backend names in ring order of definition.
func (r *Ring) Backends() []string { return r.backends }

// Pick maps a key hash to a healthy backend index: the first point
// clockwise from h whose backend is alive. ok is false when no backend
// is healthy.
func (r *Ring) Pick(h uint64) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := len(r.points)
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < n; i++ {
		p := r.points[(start+i)%n]
		if r.alive[p.backend] {
			return p.backend, true
		}
	}
	return 0, false
}

// PickOwner is Pick ignoring health: the backend that owns the key
// under full membership (tests and diagnostics).
func (r *Ring) PickOwner(h uint64) int {
	n := len(r.points)
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	return r.points[start%n].backend
}

// SetAlive updates a backend's health; changed reports a transition
// (each one remaps that backend's arc, which the gate counts as a
// ring rebalance).
func (r *Ring) SetAlive(backend int, up bool) (changed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.alive[backend] == up {
		return false
	}
	r.alive[backend] = up
	r.rebalances++
	return true
}

// Alive reports a backend's current health.
func (r *Ring) Alive(backend int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.alive[backend]
}

// HealthyCount is the number of live backends.
func (r *Ring) HealthyCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, a := range r.alive {
		if a {
			n++
		}
	}
	return n
}

// Rebalances counts health transitions since construction.
func (r *Ring) Rebalances() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.rebalances
}
