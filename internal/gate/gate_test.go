package gate

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// echoBackend is a stand-in lsrd replica that reports its own name so
// tests can see where a request landed.
type echoBackend struct {
	name    string
	srv     *httptest.Server
	hits    atomic.Int64
	healthy atomic.Bool
}

func newEchoBackend(t *testing.T, name string) *echoBackend {
	t.Helper()
	b := &echoBackend{name: name}
	b.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		b.hits.Add(1)
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"backend": b.name, "path": r.URL.Path, "bytes": len(body),
			"tenant": r.Header.Get("X-Lsr-Tenant"),
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if !b.healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	b.srv = httptest.NewServer(mux)
	t.Cleanup(b.srv.Close)
	return b
}

func testGate(t *testing.T, backends []string, mut func(*Config)) *Gate {
	t.Helper()
	cfg := Config{
		Backends:   backends,
		VNodes:     16,
		MaxRetries: 2,
		RetryBase:  time.Millisecond,
		Timeout:    5 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	g, err := New(cfg, slog.New(slog.NewTextHandler(io.Discard, nil)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func postJSON(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

// TestProxyShardsByKey: the same source always lands on the same
// backend (the ring owner of its cache key), and distinct sources
// spread across the fleet.
func TestProxyShardsByKey(t *testing.T) {
	a := newEchoBackend(t, "a")
	b := newEchoBackend(t, "b")
	g := testGate(t, []string{a.srv.URL, b.srv.URL}, nil)
	front := httptest.NewServer(g.Handler())
	defer front.Close()

	landed := map[string]string{}
	for i := 0; i < 16; i++ {
		body := fmt.Sprintf(`{"source":"(+ %d %d)"}`, i, i)
		var first string
		for round := 0; round < 3; round++ {
			resp, out := postJSON(t, front.URL+"/v1/compile", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, out)
			}
			var got struct {
				Backend string `json:"backend"`
			}
			if err := json.Unmarshal([]byte(out), &got); err != nil {
				t.Fatal(err)
			}
			if round == 0 {
				first = got.Backend
			} else if got.Backend != first {
				t.Fatalf("source %q moved %s→%s across identical requests", body, first, got.Backend)
			}
			if hdr := resp.Header.Get("X-Lsr-Backend"); hdr == "" {
				t.Fatal("missing X-Lsr-Backend header")
			}
		}
		landed[body] = first
	}
	seen := map[string]bool{}
	for _, backend := range landed {
		seen[backend] = true
	}
	if len(seen) != 2 {
		t.Errorf("16 distinct sources all landed on one backend: %v", seen)
	}
	if a.hits.Load() == 0 || b.hits.Load() == 0 {
		t.Errorf("hit spread a=%d b=%d, want both > 0", a.hits.Load(), b.hits.Load())
	}
}

// TestBatchRoutesByFirstItem: a batch shards exactly where a
// single-unit compile of its first item would.
func TestBatchRoutesByFirstItem(t *testing.T) {
	single := `{"source":"(lambda (x) (* x x))"}`
	batch := `{"items":[{"source":"(lambda (x) (* x x))"},{"source":"(other)"}]}`
	if shardHash("/v1/compile", []byte(single)) != shardHash("/v1/batch", []byte(batch)) {
		t.Error("batch did not route by its first item's key")
	}
	// Unparseable bodies still shard deterministically.
	raw := []byte(`{"not json`)
	if shardHash("/v1/compile", raw) != shardHash("/v1/compile", raw) {
		t.Error("raw-body fallback is not deterministic")
	}
	// Equivalent default options spellings share a key (the shard key
	// is the content address, not the request bytes).
	explicit := `{"source":"(lambda (x) (* x x))","options":{"saves":"lazy"}}`
	if shardHash("/v1/compile", []byte(single)) != shardHash("/v1/compile", []byte(explicit)) {
		t.Error("default and explicit lazy-saves requests sharded differently")
	}
}

// TestFailoverRetries: a dead backend's keys fail over to the
// survivor; the gate marks it down, counts the retry, and reports it
// all in /metrics.
func TestFailoverRetries(t *testing.T) {
	live := newEchoBackend(t, "live")
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	g := testGate(t, []string{live.srv.URL, deadURL}, nil)
	front := httptest.NewServer(g.Handler())
	defer front.Close()

	for i := 0; i < 16; i++ {
		resp, out := postJSON(t, front.URL+"/v1/compile", fmt.Sprintf(`{"source":"(f %d)"}`, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, out)
		}
		var got struct {
			Backend string `json:"backend"`
		}
		if err := json.Unmarshal([]byte(out), &got); err != nil {
			t.Fatal(err)
		}
		if got.Backend != "live" {
			t.Fatalf("request %d served by %q", i, got.Backend)
		}
	}
	if !g.Ring().Alive(0) || g.Ring().Alive(1) {
		t.Errorf("health after failover: live=%v dead=%v", g.Ring().Alive(0), g.Ring().Alive(1))
	}
	m := g.Metrics()
	for _, want := range []string{
		`lsrgate_requests_total{backend="` + live.srv.URL + `",code="200"}`,
		`lsrgate_connect_errors_total{backend="` + deadURL + `"}`,
		`lsrgate_backend_up{backend="` + deadURL + `"} 0`,
		`lsrgate_backend_up{backend="` + live.srv.URL + `"} 1`,
		"lsrgate_retries_total",
		"lsrgate_rebalance_total 1",
		`lsrgate_request_seconds_count{backend="` + live.srv.URL + `"}`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestAllBackendsDown: with more dead backends than retry budget the
// gate answers 502 after bounded retries; once every backend is marked
// down the ring is empty and it sheds 503, with /healthz following.
func TestAllBackendsDown(t *testing.T) {
	deadURLs := make([]string, 4)
	for i := range deadURLs {
		dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
		deadURLs[i] = dead.URL
		dead.Close()
	}

	g := testGate(t, deadURLs, nil)
	front := httptest.NewServer(g.Handler())
	defer front.Close()

	// 4 dead backends, 2 retries: the budget runs out first → 502.
	resp, _ := postJSON(t, front.URL+"/v1/compile", `{"source":"(x)"}`)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("first request status %d, want 502", resp.StatusCode)
	}
	// That marked 3 of 4 down; the next request kills the last one and
	// finds the ring empty.
	resp, out := postJSON(t, front.URL+"/v1/compile", `{"source":"(x)"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request status %d, want 503: %s", resp.StatusCode, out)
	}
	hresp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("gate /healthz status %d with no live backends", hresp.StatusCode)
	}
	if !strings.Contains(g.Metrics(), "lsrgate_no_backend_total 1") {
		t.Error("metrics missing lsrgate_no_backend_total")
	}
}

// TestHealthProbeCycle: CheckHealth takes a 503-answering (draining)
// backend out of rotation and restores it when it recovers.
func TestHealthProbeCycle(t *testing.T) {
	a := newEchoBackend(t, "a")
	b := newEchoBackend(t, "b")
	g := testGate(t, []string{a.srv.URL, b.srv.URL}, nil)

	b.healthy.Store(false)
	g.CheckHealth(context.Background())
	if g.Ring().Alive(1) {
		t.Fatal("draining backend still routable after probe")
	}
	if g.Ring().HealthyCount() != 1 {
		t.Fatalf("healthy = %d, want 1", g.Ring().HealthyCount())
	}

	front := httptest.NewServer(g.Handler())
	defer front.Close()
	for i := 0; i < 8; i++ {
		resp, out := postJSON(t, front.URL+"/v1/run", fmt.Sprintf(`{"source":"(g %d)"}`, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, out)
		}
		if !strings.Contains(out, `"backend":"a"`) {
			t.Fatalf("request routed past the probe result: %s", out)
		}
	}

	b.healthy.Store(true)
	g.CheckHealth(context.Background())
	if !g.Ring().Alive(1) {
		t.Fatal("recovered backend not restored")
	}
	if g.Ring().Rebalances() != 2 {
		t.Errorf("rebalances = %d, want 2", g.Ring().Rebalances())
	}
}

// TestTenantHeaderForwarded: quota headers survive the proxy hop.
func TestTenantHeaderForwarded(t *testing.T) {
	a := newEchoBackend(t, "a")
	g := testGate(t, []string{a.srv.URL}, nil)
	front := httptest.NewServer(g.Handler())
	defer front.Close()

	req, _ := http.NewRequest(http.MethodPost, front.URL+"/v1/compile", strings.NewReader(`{"source":"(t)"}`))
	req.Header.Set("X-Lsr-Tenant", "team-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(out), `"tenant":"team-42"`) {
		t.Fatalf("tenant header lost: %s", out)
	}
}

// TestBodyTooLarge: the gate bounds what it buffers for retry.
func TestBodyTooLarge(t *testing.T) {
	a := newEchoBackend(t, "a")
	g := testGate(t, []string{a.srv.URL}, func(c *Config) { c.MaxBodyBytes = 64 })
	front := httptest.NewServer(g.Handler())
	defer front.Close()

	resp, _ := postJSON(t, front.URL+"/v1/compile", `{"source":"`+strings.Repeat("x", 200)+`"}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}
