package gate

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// corpus builds a deterministic key set standing in for cache keys.
func corpus(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("unit-%04d", i)
	}
	return keys
}

func fleet(n int) []string {
	backends := make([]string, n)
	for i := range backends {
		backends[i] = fmt.Sprintf("http://10.0.0.%d:8377", i+1)
	}
	return backends
}

// TestRingGolden pins the key→backend mapping over a fixed corpus: the
// sharding function is part of the fleet's operational contract (a
// silent change would cold-cache every replica on the next deploy), so
// any intentional change must regenerate the golden file with -update.
func TestRingGolden(t *testing.T) {
	r, err := NewRing(fleet(3), DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, k := range corpus(64) {
		got[k] = r.Backends()[r.PickOwner(KeyHash([]byte(k)))]
	}
	golden := filepath.Join("testdata", "ring_golden.json")
	if *update {
		data, _ := json.MarshalIndent(got, "", "  ")
		if err := os.WriteFile(golden, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d keys, got %d", len(want), len(got))
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("key %s: owner %s, golden %s", k, got[k], w)
		}
	}
}

// TestRemoveRemapsOnlyOwnedKeys is the consistent-hashing contract:
// dropping one backend moves exactly the keys it owned (~1/N of the
// corpus) and leaves every other key's owner untouched.
func TestRemoveRemapsOnlyOwnedKeys(t *testing.T) {
	const n = 8
	backends := fleet(n)
	full, err := NewRing(backends, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing(backends[:n-1], DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	removed := backends[n-1]
	keys := corpus(4096)
	moved := 0
	for _, k := range keys {
		h := KeyHash([]byte(k))
		before := full.Backends()[full.PickOwner(h)]
		after := reduced.Backends()[reduced.PickOwner(h)]
		if before != after {
			moved++
			if before != removed {
				t.Fatalf("key %s moved %s→%s though %s was the backend removed", k, before, after, removed)
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.04 || frac > 0.25 {
		t.Errorf("removing 1 of %d backends remapped %.1f%% of keys, want ~%.1f%%",
			n, 100*frac, 100.0/n)
	}
}

// TestAddRemapsFraction: growing the fleet by one backend steals only
// ~1/(N+1) of the keys.
func TestAddRemapsFraction(t *testing.T) {
	const n = 8
	backends := fleet(n + 1)
	small, err := NewRing(backends[:n], DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewRing(backends, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	added := backends[n]
	keys := corpus(4096)
	moved := 0
	for _, k := range keys {
		h := KeyHash([]byte(k))
		before := small.Backends()[small.PickOwner(h)]
		after := grown.Backends()[grown.PickOwner(h)]
		if before != after {
			moved++
			if after != added {
				t.Fatalf("key %s moved %s→%s though %s was the backend added", k, before, after, added)
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.03 || frac > 0.25 {
		t.Errorf("adding a backend to %d remapped %.1f%% of keys, want ~%.1f%%",
			n, 100*frac, 100.0/(n+1))
	}
}

// TestRingBalance: vnodes keep every backend's share of the corpus
// within a factor of two of fair.
func TestRingBalance(t *testing.T) {
	const n = 8
	r, err := NewRing(fleet(n), DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	keys := corpus(4096)
	for _, k := range keys {
		counts[r.PickOwner(KeyHash([]byte(k)))]++
	}
	fair := float64(len(keys)) / n
	for i, c := range counts {
		if float64(c) < fair/2 || float64(c) > fair*2 {
			t.Errorf("backend %d owns %d keys, fair share %.0f", i, c, fair)
		}
	}
}

// TestHealthWalk: a down backend's keys fail over to live ones and
// return verbatim on recovery, with each transition counted as a
// rebalance.
func TestHealthWalk(t *testing.T) {
	r, err := NewRing(fleet(3), DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	keys := corpus(256)
	before := make([]int, len(keys))
	for i, k := range keys {
		idx, ok := r.Pick(KeyHash([]byte(k)))
		if !ok {
			t.Fatal("healthy ring returned no backend")
		}
		before[i] = idx
	}
	if changed := r.SetAlive(1, false); !changed {
		t.Fatal("SetAlive(down) reported no transition")
	}
	if r.SetAlive(1, false) {
		t.Fatal("repeated SetAlive(down) reported a transition")
	}
	for i, k := range keys {
		idx, ok := r.Pick(KeyHash([]byte(k)))
		if !ok {
			t.Fatal("2-of-3-healthy ring returned no backend")
		}
		if idx == 1 {
			t.Fatalf("key %s routed to a down backend", k)
		}
		if before[i] != 1 && idx != before[i] {
			t.Fatalf("key %s moved %d→%d though its owner stayed healthy", k, before[i], idx)
		}
	}
	r.SetAlive(1, true)
	for i, k := range keys {
		idx, _ := r.Pick(KeyHash([]byte(k)))
		if idx != before[i] {
			t.Fatalf("key %s did not return to backend %d after recovery", k, before[i])
		}
	}
	if got := r.Rebalances(); got != 2 {
		t.Errorf("rebalances = %d, want 2", got)
	}
	if r.HealthyCount() != 3 {
		t.Errorf("healthy = %d, want 3", r.HealthyCount())
	}
}

// TestNoHealthyBackend: Pick reports failure when everything is down.
func TestNoHealthyBackend(t *testing.T) {
	r, err := NewRing(fleet(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	r.SetAlive(0, false)
	r.SetAlive(1, false)
	if _, ok := r.Pick(12345); ok {
		t.Fatal("Pick succeeded with no healthy backends")
	}
}

// TestEmptyRing: construction requires at least one backend.
func TestEmptyRing(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatal("NewRing(nil) succeeded")
	}
}
