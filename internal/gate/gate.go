// Package gate is the fleet front for lsrd replicas: an HTTP proxy
// that consistent-hash-shards compile/run traffic across N backends by
// the same content-addressed cache key the service computes, so each
// replica's two-tier cache (in-memory LRU over the shared on-disk
// store) sees a stable partition of the key space and hit rates
// survive both restarts and fleet growth.
//
// The gate keeps per-backend health (a /healthz probe loop plus
// passive marking on connection failure), walks the ring past down
// backends, and retries connection-level failures against the next
// owner with jittered exponential backoff — never retrying a request
// a backend actually answered, so non-idempotent effects are not
// duplicated. It exposes its own Prometheus-text metrics: per-backend
// request/latency/error series, health gauges, and a ring-rebalance
// counter.
package gate

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
	"repro/internal/service/metrics"
)

// Config configures a Gate.
type Config struct {
	// Backends are the lsrd base URLs (e.g. "http://127.0.0.1:8378").
	Backends []string
	// VNodes is the virtual-node count per backend (0 = DefaultVNodes).
	VNodes int
	// MaxRetries bounds additional attempts after a connection-level
	// failure (0 = default 2). HTTP responses are never retried.
	MaxRetries int
	// RetryBase is the backoff base before jitter (0 = 25ms).
	RetryBase time.Duration
	// HealthInterval is the /healthz probe period (0 = 2s).
	HealthInterval time.Duration
	// Timeout is the per-attempt request deadline (0 = 30s).
	Timeout time.Duration
	// MaxBodyBytes bounds the buffered request body (0 = 8 MiB). The
	// body must be buffered so a connection failure can be retried
	// against the next backend.
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Gate proxies requests to lsrd replicas, sharded by cache key.
type Gate struct {
	cfg    Config
	ring   *Ring
	client *http.Client
	log    *slog.Logger
	reg    *metrics.Registry

	requests  *metrics.CounterVec   // lsrgate_requests_total{backend,code}
	latency   *metrics.HistogramVec // lsrgate_request_seconds{backend}
	connErrs  *metrics.CounterVec   // lsrgate_connect_errors_total{backend}
	up        *metrics.GaugeVec     // lsrgate_backend_up{backend}
	retries   *metrics.Counter      // lsrgate_retries_total
	noBackend *metrics.Counter      // lsrgate_no_backend_total
}

// New builds a Gate over the configured backends; all start healthy
// until the first probe or connection failure says otherwise.
func New(cfg Config, logger *slog.Logger) (*Gate, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Backends, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	g := &Gate{
		cfg:    cfg,
		ring:   ring,
		client: &http.Client{Timeout: cfg.Timeout},
		log:    logger,
		reg:    metrics.NewRegistry(),
	}
	g.requests = g.reg.NewCounterVec("lsrgate_requests_total",
		"Proxied requests by backend and response code.", "backend", "code")
	g.latency = g.reg.NewHistogramVec("lsrgate_request_seconds",
		"Proxied request latency by backend.", metrics.DefBuckets, "backend")
	g.connErrs = g.reg.NewCounterVec("lsrgate_connect_errors_total",
		"Connection-level failures by backend.", "backend")
	g.up = g.reg.NewGaugeVec("lsrgate_backend_up",
		"Backend health (1 = routable).", "backend")
	g.retries = g.reg.NewCounter("lsrgate_retries_total",
		"Requests re-sent to another backend after a connection failure.")
	g.noBackend = g.reg.NewCounter("lsrgate_no_backend_total",
		"Requests dropped because no backend was healthy.")
	g.reg.NewCounterFunc("lsrgate_rebalance_total",
		"Ring rebalances (backend health transitions).", ring.Rebalances)
	for _, b := range cfg.Backends {
		g.up.With(b).Set(1)
	}
	return g, nil
}

// Ring exposes the gate's hash ring (tests and diagnostics).
func (g *Gate) Ring() *Ring { return g.ring }

// Handler returns the gate's HTTP mux: every /v1/ path proxies,
// /healthz reports gate liveness (503 when no backend is routable),
// /metrics renders the gate's own registry.
func (g *Gate) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/", g.proxy)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if g.ring.HealthyCount() == 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"no-backends"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		g.reg.WriteText(w)
	})
	return mux
}

// shardHash positions a request on the ring. Compile/run/verify/lint
// bodies carry {source, options}; their cache key is recomputed here
// exactly as the replica will compute it, so the request lands on the
// replica that owns that key. A batch routes by its first item's key
// (fleet clients group related units, and any replica can serve any
// item — affinity is a hit-rate optimization, not a correctness
// requirement). Bodies the gate cannot parse hash as raw bytes: still
// deterministic, so retried clients keep hitting the same replica.
func shardHash(path string, body []byte) uint64 {
	type unit struct {
		Source  string                  `json:"source"`
		Options *service.OptionsRequest `json:"options"`
	}
	var u unit
	if strings.HasSuffix(path, "/batch") {
		var b struct {
			Items []unit `json:"items"`
		}
		if json.Unmarshal(body, &b) == nil && len(b.Items) > 0 {
			u = b.Items[0]
		}
	} else {
		if json.Unmarshal(body, &u) != nil {
			u = unit{}
		}
	}
	if u.Source != "" {
		if key, err := service.RequestKey(u.Source, u.Options); err == nil {
			return binary.BigEndian.Uint64(key[:8])
		}
	}
	return KeyHash(body)
}

// proxy forwards one request to the key's owner, failing over with
// jittered backoff on connection errors only.
func (g *Gate) proxy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, g.cfg.MaxBodyBytes+1))
	if err != nil {
		http.Error(w, `{"error":{"kind":"bad-request","message":"reading body"}}`, http.StatusBadRequest)
		return
	}
	if int64(len(body)) > g.cfg.MaxBodyBytes {
		http.Error(w, `{"error":{"kind":"bad-request","message":"body too large"}}`, http.StatusRequestEntityTooLarge)
		return
	}
	h := shardHash(r.URL.Path, body)

	for attempt := 0; ; attempt++ {
		idx, ok := g.ring.Pick(h)
		if !ok {
			g.noBackend.Inc()
			http.Error(w, `{"error":{"kind":"overload","message":"no healthy backend"}}`, http.StatusServiceUnavailable)
			return
		}
		backend := g.ring.Backends()[idx]
		resp, err := g.send(r, backend, body)
		if err == nil {
			g.copyResponse(w, resp, backend)
			return
		}
		// Connection-level failure: the backend never answered, so the
		// request is safe to re-send. Mark it down (the probe loop
		// restores it) and walk to the next owner.
		g.connErrs.With(backend).Inc()
		g.markDown(idx, err)
		if attempt >= g.cfg.MaxRetries {
			http.Error(w, `{"error":{"kind":"overload","message":"backends unreachable"}}`, http.StatusBadGateway)
			return
		}
		g.retries.Inc()
		time.Sleep(jitteredBackoff(g.cfg.RetryBase, attempt))
	}
}

// jitteredBackoff is base·2^attempt scaled by a random factor in
// [0.5, 1.5), capped at 1s — enough spread that a fleet of clients
// retrying a dead backend does not re-converge in lockstep.
func jitteredBackoff(base time.Duration, attempt int) time.Duration {
	d := base << uint(attempt)
	if d > time.Second {
		d = time.Second
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// send issues one attempt against a backend, recording latency and
// the response code. A non-nil error means the transport failed and
// the attempt is retryable.
func (g *Gate) send(r *http.Request, backend string, body []byte) (*http.Response, error) {
	url := backend + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	start := time.Now()
	resp, err := g.client.Do(req)
	g.latency.With(backend).Observe(time.Since(start).Seconds())
	if err != nil {
		return nil, err
	}
	g.requests.With(backend, strconv.Itoa(resp.StatusCode)).Inc()
	return resp, nil
}

// copyResponse relays the backend's answer verbatim.
func (g *Gate) copyResponse(w http.ResponseWriter, resp *http.Response, backend string) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Lsr-Backend", backend)
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		g.log.Warn("relaying response", "backend", backend, "err", err)
	}
}

// markDown records a passively-detected failure.
func (g *Gate) markDown(idx int, err error) {
	if g.ring.SetAlive(idx, false) {
		backend := g.ring.Backends()[idx]
		g.up.With(backend).Set(0)
		g.log.Warn("backend down", "backend", backend, "err", err)
	}
}

// CheckHealth probes every backend's /healthz once and updates the
// ring. A replica that is draining answers 503, so the gate routes
// away from it before its listener closes.
func (g *Gate) CheckHealth(ctx context.Context) {
	for i, backend := range g.ring.Backends() {
		healthy := g.probe(ctx, backend)
		if g.ring.SetAlive(i, healthy) {
			v := int64(0)
			state := "down"
			if healthy {
				v, state = 1, "up"
			}
			g.up.With(backend).Set(v)
			g.log.Info("backend "+state, "backend", backend)
		}
	}
}

// probe is one /healthz round-trip; any error or non-200 is unhealthy.
func (g *Gate) probe(ctx context.Context, backend string) bool {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, backend+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// RunHealthChecks probes on the configured interval until ctx ends.
func (g *Gate) RunHealthChecks(ctx context.Context) {
	ticker := time.NewTicker(g.cfg.HealthInterval)
	defer ticker.Stop()
	g.CheckHealth(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			g.CheckHealth(ctx)
		}
	}
}

// Metrics renders the gate's registry (tests).
func (g *Gate) Metrics() string {
	var b strings.Builder
	g.reg.WriteText(&b)
	return b.String()
}
