package analysis_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/vm"
)

// genStraightLine produces a random branch-free, call-free expression
// over the lexical variables in scope: integer literals, variable
// references, arithmetic primitives and let bindings. No if/and/or, no
// procedure calls — so the compiled main body is a single static path
// and the analyzer's cost scan must agree with the machine exactly.
func genStraightLine(rng *rand.Rand, vars []string, depth int) string {
	if depth <= 0 || rng.Intn(4) == 0 {
		if len(vars) > 0 && rng.Intn(2) == 0 {
			return vars[rng.Intn(len(vars))]
		}
		return fmt.Sprint(rng.Intn(19) - 9)
	}
	switch rng.Intn(5) {
	case 0:
		return fmt.Sprintf("(+ %s %s)",
			genStraightLine(rng, vars, depth-1), genStraightLine(rng, vars, depth-1))
	case 1:
		return fmt.Sprintf("(- %s %s)",
			genStraightLine(rng, vars, depth-1), genStraightLine(rng, vars, depth-1))
	case 2:
		return fmt.Sprintf("(* %s %s)",
			genStraightLine(rng, vars, depth-1), genStraightLine(rng, vars, depth-1))
	case 3:
		v := fmt.Sprintf("v%d", rng.Int63n(1_000_000))
		inner := append(append([]string(nil), vars...), v)
		return fmt.Sprintf("(let ([%s %s]) %s)",
			v, genStraightLine(rng, vars, depth-1), genStraightLine(rng, inner, depth-1))
	default:
		return fmt.Sprintf("(car (cons %s %s))",
			genStraightLine(rng, vars, depth-1), genStraightLine(rng, vars, depth-1))
	}
}

// runCounters compiles src (no prelude) and executes it under the
// default cost model, returning the compiled program and the machine's
// counters.
func runCounters(t *testing.T, src string, opts compiler.Options) (*vm.Program, *vm.Counters) {
	t.Helper()
	opts.NoPrelude = true
	c, err := compiler.Compile(src, opts)
	if err != nil {
		t.Fatalf("compile: %v\nprogram: %s", err, src)
	}
	m := vm.New(c.Program, nil)
	m.SetCostModel(vm.DefaultCostModel())
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v\nprogram: %s", err, src)
	}
	return c.Program, &m.Counters
}

// TestStraightLineCycleAgreement is the differential cross-validation
// of the static cost model (ISSUE acceptance bar): on branch-free,
// call-free programs the per-procedure static cycle and instruction
// estimate must equal the machine's dynamic counters exactly — both
// with registers (paper config) and on the stack baseline, where every
// variable access pays the memory and load-latency penalties.
func TestStraightLineCycleAgreement(t *testing.T) {
	configs := map[string]compiler.Options{
		"paper":    bench.PaperOptions(),
		"baseline": bench.BaselineOptions(),
	}
	for cname, opts := range configs {
		for seed := int64(0); seed < 40; seed++ {
			rng := rand.New(rand.NewSource(seed))
			// Wrap in a final addition so the last write to rv comes
			// from the primitive, like any real program result.
			src := fmt.Sprintf("(+ 0 %s)", genStraightLine(rng, nil, 4))

			prog, counters := runCounters(t, src, opts)
			rep := analysis.AnalyzeWithCost(prog, vm.DefaultCostModel())
			main := rep.Procs[prog.MainIndex]
			if !main.Analyzed {
				t.Fatalf("%s seed %d: main not analyzed", cname, seed)
			}
			// The machine returns from main to the bootstrap halt at
			// code[0], one instruction (one cycle) outside any
			// procedure's extent — the only dynamic cost the static
			// per-procedure scan does not see.
			if int64(main.Instructions)+1 != counters.Instructions {
				t.Errorf("%s seed %d: static %d instructions (+1 halt), machine executed %d\nprogram: %s",
					cname, seed, main.Instructions, counters.Instructions, src)
			}
			if main.Cycles+1 != counters.Cycles {
				t.Errorf("%s seed %d: static estimate %d cycles (+1 halt), machine measured %d (stalls %d)\nprogram: %s",
					cname, seed, main.Cycles, counters.Cycles, counters.StallCycles, src)
			}
			if main.StallCycles != counters.StallCycles {
				t.Errorf("%s seed %d: static %d stall cycles, machine %d\nprogram: %s",
					cname, seed, main.StallCycles, counters.StallCycles, src)
			}
		}
	}
}

// TestCallDAGSlotTrafficAgreement extends the differential check
// across calls: procedures with straight-line bodies calling one
// another in a DAG. Stall timing at call boundaries is deliberately
// conservative in the static scan, but slot traffic is exact, so the
// static per-procedure save/restore/arg/temp/var counts, weighted by
// each procedure's dynamic activation count, must equal the machine's
// per-kind counters.
func TestCallDAGSlotTrafficAgreement(t *testing.T) {
	configs := map[string]compiler.Options{
		"paper":    bench.PaperOptions(),
		"late":     bench.StrategyOptions(2), // codegen.SaveLate
		"baseline": bench.BaselineOptions(),
	}
	for cname, opts := range configs {
		for seed := int64(0); seed < 25; seed++ {
			rng := rand.New(rand.NewSource(1000 + seed))
			e := func() string { return genStraightLine(rng, []string{"x"}, 3) }
			e2 := func() string { return genStraightLine(rng, []string{"x", "y"}, 3) }
			var b strings.Builder
			fmt.Fprintf(&b, "(define (f0 x) %s)\n", e())
			fmt.Fprintf(&b, "(define (f1 x y) (+ (f0 x) (+ (f0 y) %s)))\n", e2())
			fmt.Fprintf(&b, "(define (f2 x) (+ (f1 x %s) (f0 (+ x 1))))\n", e())
			fmt.Fprintf(&b, "(+ (f2 4) (f1 2 3))")
			src := b.String()

			prog, counters := runCounters(t, src, opts)
			rep := analysis.AnalyzeWithCost(prog, vm.DefaultCostModel())

			var reads, writes [vm.NumSlotKinds]int64
			for i, pc := range rep.Procs {
				if !pc.Analyzed {
					t.Fatalf("%s seed %d: proc %s not analyzed", cname, seed, prog.Procs[i].Name)
				}
				acts := counters.PerProc[i].Activations
				for k := 0; k < vm.NumSlotKinds; k++ {
					reads[k] += acts * int64(pc.SlotReads[k])
					writes[k] += acts * int64(pc.SlotWrites[k])
				}
			}
			if reads != counters.ReadsByKind {
				t.Errorf("%s seed %d: static slot reads by kind %v, machine %v\nprogram: %s",
					cname, seed, reads, counters.ReadsByKind, src)
			}
			if writes != counters.WritesByKind {
				t.Errorf("%s seed %d: static slot writes by kind %v, machine %v\nprogram: %s",
					cname, seed, writes, counters.WritesByKind, src)
			}
		}
	}
}
