package analysis

import "repro/internal/vm"

// Static cost estimation. costScan walks the extent once in address
// order and mirrors the machine's accounting exactly (machine.go):
// one dispatch cycle per instruction, the memory penalty per slot
// access, prim/closure slot operands charged a memory penalty plus a
// full load-use stall, and register load-use stalls modeled with the
// machine's readyAt rule — a slot load makes its register usable
// LoadLatency cycles later, and a read before that point stalls to it.
//
// Control-flow joins (jump targets) and calls conservatively clear the
// pending-load state, so the estimate is exact for straight-line code
// (asserted by the differential fuzz test) and a per-activation
// approximation otherwise. Charges are attributed to the save, restore
// and shuffle overhead categories: an instruction's own cost goes to
// its category, a stall to the category of the load that caused it.

// charge categories
const (
	catNone = iota
	catSave
	catRestore
	catShuffle
)

func (pa *procAnalysis) costScan() {
	code := pa.p.Code
	cm := pa.cm
	c := pa.cost

	// Control-flow join points, where pending-load state is discarded.
	joins := map[int]bool{}
	for pc := pa.start; pc < pa.end; pc++ {
		if j := pa.pf.Effects(pc).Jump; j >= 0 {
			joins[j] = true
		}
	}

	readyAt := make([]int64, pa.nRegs)
	readyCat := make([]int, pa.nRegs)
	var cycles, stalls int64
	var byCat [4]int64

	clearReady := func() {
		for r := range readyAt {
			readyAt[r] = 0
		}
	}
	stall := func(r int) {
		if r < 0 || r >= pa.nRegs {
			return
		}
		if d := readyAt[r] - cycles; d > 0 {
			cycles += d
			stalls += d
			byCat[readyCat[r]] += d
		}
	}

	for pc := pa.start; pc < pa.end; pc++ {
		if joins[pc] {
			clearReady()
		}
		in := code[pc]

		// The instruction's own (non-stall) charges land in its
		// overhead category.
		cat := catNone
		switch {
		case in.Op == vm.OpStoreSlot && in.Kind == vm.KindSave:
			cat = catSave
		case in.Op == vm.OpLoadSlot && in.Kind == vm.KindRestore:
			cat = catRestore
		case pa.shufflePC[pc]:
			cat = catShuffle
		}
		charge := func(n int64) {
			cycles += n
			byCat[cat] += n
		}
		charge(1) // dispatch

		switch in.Op {
		case vm.OpHalt:
			stall(vm.RegRV)
		case vm.OpEntry, vm.OpJump, vm.OpLoadConst, vm.OpLoadGlobal:
			// LoadConst/LoadGlobal write via writeReg: register ready.
			if in.Op == vm.OpLoadConst || in.Op == vm.OpLoadGlobal {
				readyAt[in.A] = 0
			}
		case vm.OpMove:
			stall(in.B)
			readyAt[in.A] = 0
		case vm.OpStoreGlobal:
			stall(in.A)
		case vm.OpLoadSlot:
			charge(cm.MemPenalty)
			c.SlotReads[in.Kind]++
			readyAt[in.A] = cycles + cm.LoadLatency
			readyCat[in.A] = cat
		case vm.OpStoreSlot:
			stall(in.A)
			charge(cm.MemPenalty)
			c.SlotWrites[in.Kind]++
		case vm.OpStoreOut:
			stall(in.A)
			charge(cm.MemPenalty)
			c.SlotWrites[in.Kind]++
		case vm.OpPrim, vm.OpClosure:
			for _, r := range in.Regs {
				if vm.IsSlotOperand(r) {
					// A slot operand is a load consumed immediately:
					// memory penalty plus a full load-use stall
					// (Machine.readOperand).
					charge(cm.MemPenalty)
					cycles += cm.LoadLatency
					stalls += cm.LoadLatency
					byCat[cat] += cm.LoadLatency
					c.SlotReads[vm.KindTemp]++
				} else {
					stall(r)
				}
			}
			readyAt[in.A] = 0
		case vm.OpClosurePatch:
			stall(in.A)
			stall(in.C)
		case vm.OpFreeRef:
			stall(vm.RegCP)
			readyAt[in.A] = 0
		case vm.OpBranchFalse:
			// Misprediction penalties are data-dependent and not
			// modeled statically (the default model charges zero).
			stall(in.A)
		case vm.OpCall, vm.OpCallCC:
			stall(vm.RegCP)
			// Callee execution elapses arbitrarily many cycles; any
			// pending load completes before control returns.
			clearReady()
		case vm.OpTailCall:
			stall(vm.RegCP)
		case vm.OpReturn:
			stall(vm.RegRet)
		}
	}

	c.Cycles = cycles
	c.StallCycles = stalls
	c.SaveCycles = byCat[catSave]
	c.RestoreCycles = byCat[catRestore]
	c.ShuffleCycles = byCat[catShuffle]
}
