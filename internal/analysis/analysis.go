// Package analysis is a static optimality analyzer — an allocation lint
// — for compiled VM code. Where internal/verify proves the emitted code
// is *sound*, this pass checks that it is not *wasteful*: the paper's
// claim is that lazy saves (§2.1.2), eager restores (§3) and greedy
// shuffling (§2.3, §3.1) minimize the register-traffic overhead of
// calls, and these checks make the minimality claims machine-checkable
// per compilation. It runs over the same per-procedure extents as the
// verifier, reuses the vm.InstrEffects def-use decoder and the
// verifier's PathFinder witness machinery, and reports:
//
//   - redundant-save: a frame save whose slot is never read on any
//     path before the frame dies — work a lazy save placement should
//     have avoided (§2.1.2);
//   - dead-restore: a restore whose register is redefined or destroyed
//     on every path before any read — the overhead the paper concedes
//     for eager restores (§3), here quantified statically;
//   - excess-shuffle-move / excess-shuffle-temp: a call whose emitted
//     move sequence uses more instructions or temporaries than the
//     minimal parallel-move solution of its recorded assignment
//     (cycle decomposition: moves = non-trivial assigns + one per
//     transfer cycle, temporaries = one per transfer cycle);
//   - a static cycle estimate per procedure mirroring the machine's
//     cost accounting, cross-validated against dynamic counters.
//
// Every finding carries the offending pc and a shortest static path
// witness, in the structured format shared with the verifier
// (internal/findings).
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/findings"
	"repro/internal/verify"
	"repro/internal/vm"
)

// Kind classifies a lint finding.
type Kind int

const (
	// RedundantSave is a save whose slot no path reads before the value
	// dies (frame exit or overwrite).
	RedundantSave Kind = iota
	// DeadRestore is a restore whose register every path redefines or
	// destroys before reading.
	DeadRestore
	// ExcessShuffleMove is a call shuffle emitting more move
	// instructions than the minimal parallel-move sequence.
	ExcessShuffleMove
	// ExcessShuffleTemp is a call shuffle using more temporaries than
	// the transfer cycles of its assignment require.
	ExcessShuffleTemp
)

func (k Kind) String() string {
	switch k {
	case RedundantSave:
		return "redundant-save"
	case DeadRestore:
		return "dead-restore"
	case ExcessShuffleMove:
		return "excess-shuffle-move"
	case ExcessShuffleTemp:
		return "excess-shuffle-temp"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Finding is one statically detected piece of allocation waste.
type Finding struct {
	Kind Kind
	// Proc names the enclosing procedure.
	Proc string
	// PC is the offending instruction's address; Op its opcode; Instr
	// its disassembly.
	PC    int
	Op    vm.Op
	Instr string
	// Reg is the register involved (-1 if none); Slot the frame slot
	// involved (-1 if none); CallPC the related call (-1 if none).
	Reg    int
	Slot   int
	CallPC int
	// Excess is the number of wasted instructions or temporaries.
	Excess int
	// Msg is a one-line description.
	Msg string
	// Witness is a static path demonstrating the waste: from the
	// procedure entry to PC, extended past PC to the point where the
	// wasted value dies (for save/restore findings).
	Witness []int
}

func (f Finding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s at pc %d", f.Kind, f.PC)
	if f.Proc != "" {
		fmt.Fprintf(&b, " in %s", f.Proc)
	}
	if f.Instr != "" {
		fmt.Fprintf(&b, " [%s]", f.Instr)
	}
	fmt.Fprintf(&b, ": %s", f.Msg)
	if len(f.Witness) > 0 {
		parts := make([]string, 0, len(f.Witness))
		for _, pc := range f.Witness {
			parts = append(parts, fmt.Sprint(pc))
		}
		fmt.Fprintf(&b, " (path %s)", strings.Join(parts, "→"))
	}
	return b.String()
}

// Structured converts the finding to the format shared with the
// verifier.
func (f Finding) Structured() findings.Finding {
	return findings.Finding{
		Tool:    "lint",
		Kind:    f.Kind.String(),
		Proc:    f.Proc,
		PC:      f.PC,
		Instr:   f.Instr,
		Reg:     f.Reg,
		Slot:    f.Slot,
		CallPC:  f.CallPC,
		Msg:     f.Msg,
		Witness: f.Witness,
	}
}

// ProcCost is the static per-procedure profile: instruction-site counts
// and the cycle estimate for one activation, mirroring the machine's
// accounting (dispatch cycle per instruction, memory penalty per slot
// access, load-use stalls via the readyAt rule). Indexed in parallel
// with Program.Procs / Counters.PerProc.
type ProcCost struct {
	Name string
	// Analyzed is false when the extent was too malformed to walk (the
	// verifier reports why); all other fields are then zero.
	Analyzed bool
	// Instructions is the extent's instruction count.
	Instructions int
	// Saves, Restores and ShuffleMoves count static instruction sites:
	// save stores, restore loads, and data-movement instructions inside
	// analyzable shuffle windows.
	Saves        int
	Restores     int
	ShuffleMoves int
	// ShuffleWindows counts the procedure's recorded call shuffles;
	// ShuffleWindowsChecked those whose emitted window was attributable
	// (pure data movement) and checked for minimality.
	ShuffleWindows        int
	ShuffleWindowsChecked int
	// SlotReads/SlotWrites count static slot-access sites by SlotKind
	// (prim and closure slot operands count as KindTemp reads, matching
	// the machine).
	SlotReads  [vm.NumSlotKinds]int
	SlotWrites [vm.NumSlotKinds]int
	// Cycles estimates one straight-through activation: the sum over
	// the extent of guaranteed instruction costs plus modeled load-use
	// stalls. StallCycles is the stall portion. SaveCycles,
	// RestoreCycles and ShuffleCycles attribute the estimate to the
	// three overhead categories.
	Cycles        int64
	StallCycles   int64
	SaveCycles    int64
	RestoreCycles int64
	ShuffleCycles int64
}

// Summary aggregates the report.
type Summary struct {
	// Finding counts by kind.
	RedundantSaves     int `json:"redundant_saves"`
	DeadRestores       int `json:"dead_restores"`
	ExcessShuffleMoves int `json:"excess_shuffle_moves"`
	ExcessShuffleTemps int `json:"excess_shuffle_temps"`
	// Static site totals.
	Saves                 int `json:"saves"`
	Restores              int `json:"restores"`
	ShuffleMoves          int `json:"shuffle_moves"`
	ShuffleWindows        int `json:"shuffle_windows"`
	ShuffleWindowsChecked int `json:"shuffle_windows_checked"`
}

// Report is the analyzer's result for one program.
type Report struct {
	Findings []Finding
	// Procs holds per-procedure static profiles, indexed in parallel
	// with the program's procedure table.
	Procs  []ProcCost
	Totals Summary
}

// Analyze runs the optimality analyzer over p under the default cost
// model.
func Analyze(p *vm.Program) *Report {
	return AnalyzeWithCost(p, vm.DefaultCostModel())
}

// AnalyzeWithCost runs the analyzer with an explicit cost model.
func AnalyzeWithCost(p *vm.Program, cm vm.CostModel) *Report {
	rep := &Report{Procs: make([]ProcCost, len(p.Procs))}
	entryToProc := map[int]int{}
	for i, info := range p.Procs {
		rep.Procs[i].Name = info.Name
		if _, dup := entryToProc[info.Entry]; !dup {
			entryToProc[info.Entry] = i
		}
	}
	for _, ext := range verify.Extents(p) {
		idx, ok := entryToProc[ext.Start]
		if !ok {
			continue
		}
		pa := newProcAnalysis(p, cm, ext, idx, rep)
		if pa == nil {
			continue
		}
		pa.run()
	}
	for i := range rep.Procs {
		pc := &rep.Procs[i]
		rep.Totals.Saves += pc.Saves
		rep.Totals.Restores += pc.Restores
		rep.Totals.ShuffleMoves += pc.ShuffleMoves
		rep.Totals.ShuffleWindows += pc.ShuffleWindows
		rep.Totals.ShuffleWindowsChecked += pc.ShuffleWindowsChecked
	}
	for _, f := range rep.Findings {
		switch f.Kind {
		case RedundantSave:
			rep.Totals.RedundantSaves++
		case DeadRestore:
			rep.Totals.DeadRestores++
		case ExcessShuffleMove:
			rep.Totals.ExcessShuffleMoves++
		case ExcessShuffleTemp:
			rep.Totals.ExcessShuffleTemps++
		}
	}
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		if rep.Findings[i].PC != rep.Findings[j].PC {
			return rep.Findings[i].PC < rep.Findings[j].PC
		}
		return rep.Findings[i].Kind < rep.Findings[j].Kind
	})
	return rep
}

// Structured converts every finding to the shared format.
func (r *Report) Structured() []findings.Finding {
	out := make([]findings.Finding, len(r.Findings))
	for i, f := range r.Findings {
		out[i] = f.Structured()
	}
	return out
}

// WasteError returns an error when the report contains findings the
// repository gates on — redundant saves or excess shuffle moves, the
// two outcomes the paper's algorithms promise never to produce — and
// nil otherwise. Dead restores are reported but not gated: eager
// restores trade some statically-dead loads for fewer dynamic stalls
// (§3), so they are quantified, not forbidden.
func (r *Report) WasteError() error {
	var bad []Finding
	for _, f := range r.Findings {
		if f.Kind == RedundantSave || f.Kind == ExcessShuffleMove {
			bad = append(bad, f)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "lint: %d waste finding(s):", len(bad))
	for _, f := range bad {
		b.WriteString("\n  ")
		b.WriteString(f.String())
	}
	return fmt.Errorf("%s", b.String())
}

// Render formats the report for humans: the summary line, per-kind
// counts, and every finding.
func (r *Report) Render() string {
	var b strings.Builder
	t := r.Totals
	fmt.Fprintf(&b, "lint: %d finding(s): %d redundant save(s), %d dead restore(s), %d excess shuffle move(s), %d excess shuffle temp(s)\n",
		len(r.Findings), t.RedundantSaves, t.DeadRestores, t.ExcessShuffleMoves, t.ExcessShuffleTemps)
	fmt.Fprintf(&b, "static sites: %d save(s), %d restore(s), %d shuffle move(s) (%d/%d shuffle windows checked)\n",
		t.Saves, t.Restores, t.ShuffleMoves, t.ShuffleWindowsChecked, t.ShuffleWindows)
	for _, f := range r.Findings {
		b.WriteString("  ")
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}
