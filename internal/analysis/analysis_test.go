package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/vm"
)

// sweepOptions mirrors the seven configurations the lint and verify
// sweeps exercise.
func sweepOptions() map[string]compiler.Options {
	lazyRestores := bench.PaperOptions()
	lazyRestores.Restores = codegen.RestoreLazy
	return map[string]compiler.Options{
		"paper":         bench.PaperOptions(),
		"early":         bench.StrategyOptions(codegen.SaveEarly),
		"late":          bench.StrategyOptions(codegen.SaveLate),
		"simple":        bench.StrategyOptions(codegen.SaveSimple),
		"lazy-restores": lazyRestores,
		"callee-save":   bench.CalleeSaveOptions(codegen.SaveLazy),
		"baseline":      bench.BaselineOptions(),
	}
}

// TestCleanUnderAllConfigs is the optimality claim on real output: a
// few representative programs, compiled under every swept
// configuration, carry zero redundant saves and zero excess shuffle
// moves, and the analyzer's site counts agree with the code
// generator's own static statistics.
func TestCleanUnderAllConfigs(t *testing.T) {
	srcs := map[string]string{
		"swap-cycle": `
			(define (g a b) (if (< a b) (g b a) a))
			(define (f x y) (+ (g y x) (g x y)))
			(f 3 9)`,
		"nested-calls": `
			(define (leaf n) (+ n 1))
			(define (mid n) (leaf (leaf n)))
			(define (top n) (mid (+ (mid n) (leaf n))))
			(top 5)`,
	}
	for cname, opts := range sweepOptions() {
		for sname, src := range srcs {
			c, err := compiler.Compile(src, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", cname, sname, err)
			}
			rep := analysis.Analyze(c.Program)
			if err := rep.WasteError(); err != nil {
				t.Errorf("%s/%s: %v", cname, sname, err)
			}
			if rep.Totals.Saves != c.Stats.SaveSites {
				t.Errorf("%s/%s: analyzer counted %d saves, codegen emitted %d",
					cname, sname, rep.Totals.Saves, c.Stats.SaveSites)
			}
			if rep.Totals.Restores != c.Stats.RestoreSites {
				t.Errorf("%s/%s: analyzer counted %d restores, codegen emitted %d",
					cname, sname, rep.Totals.Restores, c.Stats.RestoreSites)
			}
		}
	}
}

// TestNaiveShuffleFlagged compiles a call whose argument assignment
// needs ordering (the first argument register is the source of the
// second argument) under the naive left-to-right shuffler and under
// the greedy one. Naive staging must be flagged as excess; greedy must
// be clean (§2.3).
func TestNaiveShuffleFlagged(t *testing.T) {
	src := `
		(define (g a b c) (+ a (+ b c)))
		(define (f x y) (g x x y))
		(f 1 2)`

	naive := bench.PaperOptions()
	naive.Shuffle = codegen.ShuffleNaive
	c, err := compiler.Compile(src, naive)
	if err != nil {
		t.Fatal(err)
	}
	rep := analysis.Analyze(c.Program)
	if rep.Totals.ExcessShuffleMoves == 0 {
		t.Errorf("naive shuffle produced no excess-shuffle-move finding:\n%s", rep.Render())
	}

	greedy, err := compiler.Compile(src, bench.PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	grep := analysis.Analyze(greedy.Program)
	if grep.Totals.ExcessShuffleMoves != 0 || grep.Totals.ExcessShuffleTemps != 0 {
		t.Errorf("greedy shuffle flagged as excess:\n%s", grep.Render())
	}
}

// corpusProgram hand-builds a program exhibiting all four waste kinds
// in one procedure:
//
//	f:  entry args=1 frame=6
//	    store ret -> fp[0] (save)      ; legitimate: restored below
//	    store r3  -> fp[2] (save)      ; REDUNDANT: fp[2] never read
//	    move  r15 <- r3                ; shuffle stages r3 needlessly
//	    move  r5  <- r6                ; independent transfer
//	    move  r4  <- r15               ; 3 moves/1 temp for a 2-move,
//	    gload cp  <- g                 ;   0-temp assignment: EXCESS
//	    call  argc=2
//	    load  r3  <- fp[3] (restore)   ; DEAD: overwritten before read
//	    load  r3  <- fp[3] (restore)   ; legitimate: read below
//	    load  ret <- fp[0] (restore)
//	    move  rv  <- r3
//	    return
func corpusProgram() *vm.Program {
	e := 3 // f's entry pc
	code := []vm.Instr{
		0:  {Op: vm.OpHalt},
		1:  {Op: vm.OpEntry, A: 0, B: 1}, // main (unused stub)
		2:  {Op: vm.OpHalt},
		3:  {Op: vm.OpEntry, A: 1, B: 6},
		4:  {Op: vm.OpStoreSlot, A: vm.RegRet, B: 0, Kind: vm.KindSave},
		5:  {Op: vm.OpStoreSlot, A: 3, B: 2, Kind: vm.KindSave},
		6:  {Op: vm.OpMove, A: 15, B: 3},
		7:  {Op: vm.OpMove, A: 5, B: 6},
		8:  {Op: vm.OpMove, A: 4, B: 15},
		9:  {Op: vm.OpLoadGlobal, A: vm.RegCP, B: 0},
		10: {Op: vm.OpCall, A: 2, B: 6},
		11: {Op: vm.OpLoadSlot, A: 3, B: 3, Kind: vm.KindRestore},
		12: {Op: vm.OpLoadSlot, A: 3, B: 3, Kind: vm.KindRestore},
		13: {Op: vm.OpLoadSlot, A: vm.RegRet, B: 0, Kind: vm.KindRestore},
		14: {Op: vm.OpMove, A: vm.RegRV, B: 3},
		15: {Op: vm.OpReturn},
	}
	return &vm.Program{
		Code: code,
		Procs: []vm.ProcInfo{
			{Name: "main", Entry: 1, NArgs: 0},
			{Name: "f", Entry: e, NArgs: 1},
		},
		MainIndex: 0,
		Config:    vm.DefaultConfig(),
		Shuffles: []vm.ShuffleRecord{{
			StartPC: 6,
			CallPC:  10,
			Assigns: []vm.ShuffleAssign{
				{Target: 4, Src: 3},
				{Target: 5, Src: 6},
			},
		}},
	}
}

// TestCorpusAllKindsFlagged asserts the negative corpus fires all four
// finding kinds, each anchored at the right pc with a witness that
// starts at the procedure entry and passes through the finding.
func TestCorpusAllKindsFlagged(t *testing.T) {
	rep := analysis.Analyze(corpusProgram())

	want := map[analysis.Kind]int{
		analysis.RedundantSave:     5,
		analysis.ExcessShuffleMove: 10,
		analysis.ExcessShuffleTemp: 10,
		analysis.DeadRestore:       11,
	}
	got := map[analysis.Kind]int{}
	for _, f := range rep.Findings {
		if prev, dup := got[f.Kind]; dup {
			t.Errorf("duplicate %s findings at pc %d and %d", f.Kind, prev, f.PC)
		}
		got[f.Kind] = f.PC
		if f.Proc != "f" {
			t.Errorf("%s attributed to %q, want f", f.Kind, f.Proc)
		}
		if len(f.Witness) == 0 || f.Witness[0] != 3 {
			t.Errorf("%s witness %v does not start at the entry", f.Kind, f.Witness)
		}
		seen := false
		for _, pc := range f.Witness {
			if pc == f.PC {
				seen = true
			}
		}
		if !seen {
			t.Errorf("%s witness %v does not pass through pc %d", f.Kind, f.Witness, f.PC)
		}
	}
	for k, pc := range want {
		if got[k] != pc {
			t.Errorf("%s at pc %d, want pc %d (report:\n%s)", k, got[k], pc, rep.Render())
		}
	}
	if len(rep.Findings) != len(want) {
		t.Errorf("got %d findings, want %d:\n%s", len(rep.Findings), len(want), rep.Render())
	}

	// The save/restore witnesses extend past the finding to the point
	// where the wasted value dies.
	for _, f := range rep.Findings {
		if f.Kind == analysis.RedundantSave || f.Kind == analysis.DeadRestore {
			if last := f.Witness[len(f.Witness)-1]; last <= f.PC {
				t.Errorf("%s witness %v has no death tail past pc %d", f.Kind, f.Witness, f.PC)
			}
		}
	}

	if err := rep.WasteError(); err == nil {
		t.Error("WasteError is nil for a wasteful program")
	}
}

// TestCorruptedCompilation takes real compiled benchmarks and corrupts
// them the way a buggy emitter would: overwriting the first of two
// adjacent restores with a copy of the second (a doubled restore — the
// first becomes dead), and overwriting the first of two adjacent saves
// with a copy of the second (a doubled save — the first becomes
// redundant). The analyzer must catch both at the corrupted pc.
func TestCorruptedCompilation(t *testing.T) {
	p, err := bench.ByName("tak")
	if err != nil {
		t.Fatal(err)
	}

	t.Run("doubled-restore", func(t *testing.T) {
		c, err := compiler.Compile(p.Source, bench.PaperOptions())
		if err != nil {
			t.Fatal(err)
		}
		code := c.Program.Code
		pc := -1
		for i := 0; i+1 < len(code); i++ {
			if code[i].Op == vm.OpLoadSlot && code[i].Kind == vm.KindRestore &&
				code[i+1].Op == vm.OpLoadSlot && code[i+1].Kind == vm.KindRestore &&
				code[i].A != code[i+1].A {
				pc = i
				break
			}
		}
		if pc < 0 {
			t.Skip("no adjacent restore pair found")
		}
		code[pc] = code[pc+1]
		rep := analysis.Analyze(c.Program)
		if !hasFinding(rep, analysis.DeadRestore, pc) {
			t.Errorf("no dead-restore at pc %d after doubling a restore:\n%s", pc, rep.Render())
		}
	})

	t.Run("doubled-save", func(t *testing.T) {
		c, err := compiler.Compile(p.Source, bench.PaperOptions())
		if err != nil {
			t.Fatal(err)
		}
		code := c.Program.Code
		pc := -1
		for i := 0; i+1 < len(code); i++ {
			if code[i].Op == vm.OpStoreSlot && code[i].Kind == vm.KindSave &&
				code[i+1].Op == vm.OpStoreSlot && code[i+1].Kind == vm.KindSave &&
				code[i].B != code[i+1].B {
				pc = i
				break
			}
		}
		if pc < 0 {
			t.Skip("no adjacent save pair found")
		}
		code[pc] = code[pc+1]
		rep := analysis.Analyze(c.Program)
		if !hasFinding(rep, analysis.RedundantSave, pc) {
			t.Errorf("no redundant-save at pc %d after doubling a save:\n%s", pc, rep.Render())
		}
	})
}

func hasFinding(rep *analysis.Report, k analysis.Kind, pc int) bool {
	for _, f := range rep.Findings {
		if f.Kind == k && f.PC == pc {
			return true
		}
	}
	return false
}
