package analysis

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/regset"
	"repro/internal/verify"
	"repro/internal/vm"
)

// maxPasses bounds the backward liveness fixpoints. Procedure bodies
// are forward DAGs (the verifier reports backward jumps), so a couple
// of decreasing-address passes converge; the cap only guards malformed
// code, which is then skipped.
const maxPasses = dataflow.DefaultMaxPasses

// procAnalysis analyzes one procedure extent.
type procAnalysis struct {
	p       *vm.Program
	cfg     vm.Config
	cm      vm.CostModel
	info    vm.ProcInfo
	procIdx int
	start   int
	end     int
	frame   int
	nRegs   int
	pf      *verify.PathFinder
	g       *dataflow.Graph
	rep     *Report
	cost    *ProcCost

	// regLiveIn / slotLiveIn hold the backward may-liveness results:
	// the registers (frame slots) that some downstream path reads
	// before overwriting, per pc.
	regLiveIn  []regset.Set
	slotLiveIn [][]uint64

	// shufflePC marks instructions counted as shuffle data movement,
	// for the cost scan's attribution.
	shufflePC map[int]bool
}

func newProcAnalysis(p *vm.Program, cm vm.CostModel, ext verify.ProcExtent, procIdx int, rep *Report) *procAnalysis {
	pf, ok := verify.NewPathFinder(p, ext.Start, ext.End)
	if !ok {
		return nil
	}
	entry := p.Code[ext.Start]
	if entry.Op != vm.OpEntry || entry.B < 0 {
		return nil
	}
	return &procAnalysis{
		p:         p,
		cfg:       p.Config,
		cm:        cm,
		info:      ext.Info,
		procIdx:   procIdx,
		start:     ext.Start,
		end:       ext.End,
		frame:     entry.B,
		nRegs:     p.Config.NumRegs(),
		pf:        pf,
		g:         pf.Graph(),
		rep:       rep,
		cost:      &rep.Procs[procIdx],
		shufflePC: map[int]bool{},
	}
}

func (pa *procAnalysis) run() {
	pa.cost.Analyzed = true
	pa.cost.Instructions = pa.end - pa.start
	pa.regLiveness()
	pa.slotLiveness()
	pa.checkSavesAndRestores()
	pa.checkShuffles()
	pa.costScan()
}

func (pa *procAnalysis) report(f Finding) {
	f.Proc = pa.info.Name
	if f.PC >= 0 && f.PC < len(pa.p.Code) {
		f.Op = pa.p.Code[f.PC].Op
		f.Instr = pa.p.FormatInstr(pa.p.Code[f.PC])
	}
	pa.rep.Findings = append(pa.rep.Findings, f)
}

// csRegs is the callee-save register set: treated as read at every
// procedure exit, since the caller relies on their values (§2.4).
func (pa *procAnalysis) csRegs() regset.Set {
	var s regset.Set
	for i := 0; i < pa.cfg.CalleeSaveRegs; i++ {
		s = s.Add(pa.cfg.CalleeSaveReg(i))
	}
	return s
}

// regLiveProblem is backward may-liveness of registers: uses generate,
// defs and call clobbers kill, and every procedure exit reads the
// callee-saves (the caller relies on their values, §2.4).
type regLiveProblem struct {
	g  *dataflow.Graph
	cs regset.Set
}

func (rp regLiveProblem) New() regset.Set                      { return 0 }
func (rp regLiveProblem) Merge(dst, src regset.Set) regset.Set { return dst.Union(src) }

func (rp regLiveProblem) Transfer(pc int, out regset.Set) regset.Set {
	e := rp.g.Effects(pc)
	in := e.Uses.Union(out.Minus(e.Defs.Union(e.Clobbers)))
	if e.IsExit {
		in = in.Union(rp.cs)
	}
	return in
}

func (rp regLiveProblem) Eq(a, b regset.Set) bool { return a == b }

// regLiveness computes backward may-liveness of registers over the
// extent: regLiveIn[pc] holds r iff some path from pc reads r before
// any instruction defines or destroys it.
func (pa *procAnalysis) regLiveness() {
	pa.regLiveIn, _ = dataflow.SolveBackward[regset.Set](pa.g, pa.regProblem(), maxPasses)
}

func (pa *procAnalysis) regProblem() regLiveProblem {
	return regLiveProblem{g: pa.g, cs: pa.csRegs()}
}

// regLiveOut reports whether register r is live immediately after pc.
func (pa *procAnalysis) regLiveOut(pc, r int) bool {
	return dataflow.MergeOut[regset.Set](pa.g, pa.regProblem(), pa.regLiveIn, pc).Has(r)
}

// slotLiveProblem is backward may-liveness of frame slots: reads
// generate (tail-call stack arguments and prim slot operands count —
// vm.Effects.ReadSlots covers both), writes kill. States are bitsets
// over the frame.
type slotLiveProblem struct {
	g     *dataflow.Graph
	frame int
	words int
}

func (sp slotLiveProblem) New() []uint64 { return make([]uint64, sp.words) }

func (sp slotLiveProblem) Merge(dst, src []uint64) []uint64 {
	for w := range dst {
		dst[w] |= src[w]
	}
	return dst
}

func (sp slotLiveProblem) Transfer(pc int, out []uint64) []uint64 {
	e := sp.g.Effects(pc)
	for _, s := range e.WriteSlots {
		if s >= 0 && s < sp.frame {
			out[s/64] &^= 1 << (s % 64)
		}
	}
	for _, s := range e.ReadSlots {
		if s >= 0 && s < sp.frame {
			out[s/64] |= 1 << (s % 64)
		}
	}
	return out
}

func (sp slotLiveProblem) Eq(a, b []uint64) bool {
	for w := range a {
		if a[w] != b[w] {
			return false
		}
	}
	return true
}

// slotLiveness computes backward may-liveness of frame slots:
// slotLiveIn[pc] holds slot s iff some path from pc reads fp[s] before
// any instruction overwrites it.
func (pa *procAnalysis) slotLiveness() {
	pa.slotLiveIn, _ = dataflow.SolveBackward[[]uint64](pa.g, pa.slotProblem(), maxPasses)
}

func (pa *procAnalysis) slotProblem() slotLiveProblem {
	return slotLiveProblem{g: pa.g, frame: pa.frame, words: (pa.frame + 63) / 64}
}

// slotLiveOut reports whether frame slot s is live immediately after pc.
func (pa *procAnalysis) slotLiveOut(pc, s int) bool {
	out := dataflow.MergeOut[[]uint64](pa.g, pa.slotProblem(), pa.slotLiveIn, pc)
	return out[s/64]&(1<<(s%64)) != 0
}

// checkSavesAndRestores scans the extent for the two liveness-based
// waste checks and accumulates the static site counts.
func (pa *procAnalysis) checkSavesAndRestores() {
	for pc := pa.start; pc < pa.end; pc++ {
		in := pa.p.Code[pc]
		switch {
		case in.Op == vm.OpStoreSlot && in.Kind == vm.KindSave:
			pa.cost.Saves++
			if in.B < 0 || in.B >= pa.frame {
				continue
			}
			if !pa.slotLiveOut(pc, in.B) {
				pa.report(Finding{
					Kind: RedundantSave, PC: pc, Reg: in.A, Slot: in.B, CallPC: -1, Excess: 1,
					Msg: fmt.Sprintf("save of r%d into fp[%d] is never read on any path before the slot dies — a lazy save placement would omit it",
						in.A, in.B),
					Witness: pa.witnessThrough(pc, pa.slotDeathPath(pc, in.B)),
				})
			}
		case in.Op == vm.OpLoadSlot && in.Kind == vm.KindRestore:
			pa.cost.Restores++
			if !pa.regLiveOut(pc, in.A) {
				pa.report(Finding{
					Kind: DeadRestore, PC: pc, Reg: in.A, Slot: in.B, CallPC: -1, Excess: 1,
					Msg: fmt.Sprintf("restore of r%d from fp[%d] is redefined or destroyed on every path before any read — eager-restore overhead (§3)",
						in.A, in.B),
					Witness: pa.witnessThrough(pc, pa.regDeathPath(pc, in.A)),
				})
			}
		}
	}
}

// slotDeathPath finds a shortest path from pc to the point where the
// saved slot dies: the first overwrite of the slot, or a procedure
// exit. Because the slot is dead after pc, no path reads it first.
func (pa *procAnalysis) slotDeathPath(pc, slot int) []int {
	return pa.pf.PathFrom(pc, func(q int) bool {
		if q == pc {
			return false
		}
		e := pa.pf.Effects(q)
		for _, s := range e.WriteSlots {
			if s == slot {
				return true
			}
		}
		return e.IsExit && !e.FallsThrough && e.Jump < 0
	}, nil)
}

// regDeathPath finds a shortest path from pc to the point where the
// restored register dies: the first redefinition or call clobber, or a
// procedure exit.
func (pa *procAnalysis) regDeathPath(pc, r int) []int {
	return pa.pf.PathFrom(pc, func(q int) bool {
		if q == pc {
			return false
		}
		e := pa.pf.Effects(q)
		return e.Defs.Has(r) || e.Clobbers.Has(r) || (e.IsExit && !e.FallsThrough && e.Jump < 0)
	}, nil)
}

// witnessThrough joins the entry→pc witness with the pc→death tail.
func (pa *procAnalysis) witnessThrough(pc int, tail []int) []int {
	path := pa.pf.WitnessPath(pc)
	if len(tail) > 1 {
		path = append(path, tail[1:]...)
	}
	return path
}
