package analysis

import (
	"fmt"

	"repro/internal/vm"
)

// Shuffle optimality. Each recorded call shuffle (vm.ShuffleRecord)
// names a parallel assignment: target registers receiving values from
// source registers or frame slots. The minimal realization of such an
// assignment is classical (cf. Buchwald et al., "Optimal Shuffle Code
// with Permutation Instructions"): decompose the register-source
// transfer graph — a functional graph target→source — into chains and
// cycles; every non-trivial assignment costs one move, and every
// transfer cycle costs one extra move through one temporary. Sources
// already in a frame slot cost exactly one load and can never lie on a
// cycle (they occupy no target register).
//
// The checker replays the emitted window [StartPC, CallPC), attributes
// each data-movement instruction to the assignment it serves, and flags
// windows whose attributed move count or temporary count exceeds the
// minimum. Windows containing computation (complex arguments evaluate
// prims, closures or nested calls inside the window) are not
// attributable instruction-by-instruction and are skipped — the
// per-procedure report counts how many windows were checked, so skipped
// windows cannot masquerade as verified-minimal.

// instruction classes inside a shuffle window
const (
	clGenerate   = iota // LoadConst / LoadGlobal / FreeRef: creates a value
	clSaveOrRest        // save store or restore load: save/restore traffic
	clArgDeliver        // StoreOut / KindArg store: stack-argument delivery
	clMove              // Move: register copy
	clLoad              // LoadSlot KindTemp/KindVar: data load
	clTempStore         // StoreSlot KindTemp: staging store
)

// value tags: whether an instruction moves a pre-window value (a
// shuffle source) or one generated inside the window (a constant,
// global or free-variable argument, outside the recorded assignment)
const (
	tagSource = iota
	tagGenerated
)

type winOp struct {
	pc    int
	class int
	tag   int
	// src is the index (into the window op list) of the op that
	// produced the value this op consumes, -1 when the value predates
	// the window.
	src int
	// wrReg is the register written (-1 none); rdReg the register read
	// (-1 none).
	wrReg int
	rdReg int
	// excluded marks save/restore traffic, argument delivery and the
	// chains feeding them: not register-shuffle work.
	excluded bool
}

// checkShuffles analyzes every recorded shuffle window inside this
// procedure's extent.
func (pa *procAnalysis) checkShuffles() {
	for _, rec := range pa.p.Shuffles {
		if rec.StartPC < pa.start || rec.StartPC >= pa.end {
			continue
		}
		if rec.CallPC < rec.StartPC || rec.CallPC >= pa.end {
			continue
		}
		pa.cost.ShuffleWindows++
		pa.checkShuffle(rec)
	}
}

func (pa *procAnalysis) checkShuffle(rec vm.ShuffleRecord) {
	targets := map[int]vm.ShuffleAssign{}
	for _, a := range rec.Assigns {
		targets[a.Target] = a
	}

	// Pass 1: classify the window and track value provenance.
	var ops []winOp
	regTag := map[int]int{}    // register → tag (absent: pre-window source)
	regWriter := map[int]int{} // register → last writing op index
	slotTag := map[int]int{}   // temp slot → tag of stored value
	slotWriter := map[int]int{}
	tagOf := func(r int) int {
		if t, ok := regTag[r]; ok {
			return t
		}
		return tagSource
	}
	writerOf := func(r int) int {
		if w, ok := regWriter[r]; ok {
			return w
		}
		return -1
	}
	for pc := rec.StartPC; pc < rec.CallPC; pc++ {
		in := pa.p.Code[pc]
		op := winOp{pc: pc, src: -1, wrReg: -1, rdReg: -1}
		switch in.Op {
		case vm.OpLoadConst, vm.OpLoadGlobal, vm.OpFreeRef:
			op.class, op.tag, op.wrReg = clGenerate, tagGenerated, in.A
		case vm.OpMove:
			op.class, op.tag, op.src = clMove, tagOf(in.B), writerOf(in.B)
			op.wrReg, op.rdReg = in.A, in.B
		case vm.OpLoadSlot:
			switch in.Kind {
			case vm.KindRestore:
				// A restore materializes a pre-window register value.
				op.class, op.tag, op.wrReg = clSaveOrRest, tagSource, in.A
			case vm.KindTemp:
				op.class, op.wrReg = clLoad, in.A
				if t, ok := slotTag[in.B]; ok {
					op.tag, op.src = t, slotWriter[in.B]
				}
			case vm.KindVar:
				// A slot-homed variable read: a slot-source assign.
				op.class, op.tag, op.wrReg = clLoad, tagSource, in.A
			default:
				return // unattributable window
			}
		case vm.OpStoreSlot:
			switch in.Kind {
			case vm.KindSave:
				op.class, op.rdReg = clSaveOrRest, in.A
				op.src = writerOf(in.A)
			case vm.KindTemp:
				op.class, op.tag = clTempStore, tagOf(in.A)
				op.rdReg, op.src = in.A, writerOf(in.A)
				slotTag[in.B], slotWriter[in.B] = op.tag, len(ops)
			case vm.KindArg:
				op.class, op.rdReg, op.src = clArgDeliver, in.A, writerOf(in.A)
			default:
				return
			}
		case vm.OpStoreOut:
			op.class, op.rdReg, op.src = clArgDeliver, in.A, writerOf(in.A)
		default:
			return // computation inside the window: not attributable
		}
		if op.wrReg >= 0 {
			regTag[op.wrReg] = op.tag
			regWriter[op.wrReg] = len(ops)
		}
		ops = append(ops, op)
	}

	// Pass 2: exclude non-shuffle chains — everything feeding a stack
	// argument delivery or a save, transitively.
	var exclude func(i int)
	exclude = func(i int) {
		for i >= 0 && !ops[i].excluded {
			ops[i].excluded = true
			i = ops[i].src
		}
	}
	for i := range ops {
		if ops[i].class == clArgDeliver || ops[i].class == clSaveOrRest {
			exclude(ops[i].src)
		}
	}

	// Pass 3: count attributed data movement.
	readLater := func(from, r int) bool {
		for j := from + 1; j < len(ops); j++ {
			if ops[j].rdReg == r {
				return true
			}
			if ops[j].wrReg == r {
				return false
			}
		}
		return false
	}
	moves, temps := 0, 0
	var pcs []int
	for i, op := range ops {
		if op.excluded || op.tag != tagSource {
			continue
		}
		switch op.class {
		case clMove, clLoad:
			if _, isTarget := targets[op.wrReg]; !isTarget {
				// A staging copy into a non-target register: it must
				// feed later window work, or the window is serving
				// something the record does not describe.
				if !readLater(i, op.wrReg) {
					return
				}
				temps++
			}
		case clTempStore:
			temps++
		default:
			continue
		}
		moves++
		pcs = append(pcs, op.pc)
	}
	minMoves, minTemps := minimalShuffle(rec.Assigns)
	pa.cost.ShuffleWindowsChecked++
	pa.cost.ShuffleMoves += moves
	for _, pc := range pcs {
		pa.shufflePC[pc] = true
	}
	if moves > minMoves {
		pa.report(Finding{
			Kind: ExcessShuffleMove, PC: rec.CallPC, Reg: -1, Slot: -1, CallPC: rec.CallPC,
			Excess: moves - minMoves,
			Msg: fmt.Sprintf("shuffle starting at pc %d emits %d move(s) for an assignment solvable in %d — %d excess",
				rec.StartPC, moves, minMoves, moves-minMoves),
			Witness: pa.pf.WitnessPath(rec.CallPC),
		})
	}
	if temps > minTemps {
		pa.report(Finding{
			Kind: ExcessShuffleTemp, PC: rec.CallPC, Reg: -1, Slot: -1, CallPC: rec.CallPC,
			Excess: temps - minTemps,
			Msg: fmt.Sprintf("shuffle starting at pc %d uses %d temporarie(s) where the assignment's %d transfer cycle(s) require %d",
				rec.StartPC, temps, cyclesOf(rec.Assigns), minTemps),
			Witness: pa.pf.WitnessPath(rec.CallPC),
		})
	}
}

// minimalShuffle computes the minimal instruction and temporary counts
// realizing the parallel assignment: one move per non-trivial assign
// plus one move and one temporary per transfer cycle.
func minimalShuffle(assigns []vm.ShuffleAssign) (minMoves, minTemps int) {
	moves := 0
	for _, a := range assigns {
		if a.SrcIsSlot || a.Src != a.Target {
			moves++
		}
	}
	c := cyclesOf(assigns)
	return moves + c, c
}

// cyclesOf counts the transfer cycles of the assignment's
// register-source functional graph (target → source, edges restricted
// to sources that are themselves targets; trivial self-assignments are
// not cycles).
func cyclesOf(assigns []vm.ShuffleAssign) int {
	srcOf := map[int]int{}
	for _, a := range assigns {
		if !a.SrcIsSlot && a.Src != a.Target {
			srcOf[a.Target] = a.Src
		}
	}
	const (
		unvisited = iota
		inStack
		done
	)
	state := map[int]int{}
	cycles := 0
	for t := range srcOf {
		if state[t] != unvisited {
			continue
		}
		var path []int
		cur := t
		for {
			state[cur] = inStack
			path = append(path, cur)
			nxt, ok := srcOf[cur]
			if !ok || state[nxt] == done {
				break
			}
			if state[nxt] == inStack {
				cycles++
				break
			}
			cur = nxt
		}
		for _, n := range path {
			state[n] = done
		}
	}
	return cycles
}
