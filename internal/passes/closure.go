package passes

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/prim"
	"repro/internal/sexp"
)

// ClosureConvert lowers an assignment-converted AST program into the
// first-order IR: each lambda becomes an ir.Proc whose free variables
// are captured in a closure record, letrecs of lambdas become ir.Fix,
// and calls to primitive names that the program does not shadow are
// open-coded as ir.PrimCall.
func ClosureConvert(p *ast.Program) (*ir.Program, error) {
	cc := &closureConverter{
		globalIdx:   map[sexp.Symbol]int{},
		userDefined: map[sexp.Symbol]bool{},
	}
	for _, d := range p.Defs {
		cc.userDefined[d.Name] = true
	}
	scanGlobalSets(p.Body, cc.userDefined)
	for _, d := range p.Defs {
		scanGlobalSets(d.Rhs, cc.userDefined)
	}

	main := &procConverter{cc: cc, locals: map[*ast.Var]*ir.Var{}}
	var seq []ir.Expr
	for _, d := range p.Defs {
		rhs, err := main.convert(d.Rhs, false)
		if err != nil {
			return nil, err
		}
		seq = append(seq, &ir.GlobalSet{Index: cc.globalIndex(d.Name), Name: d.Name, Rhs: rhs})
	}
	body, err := main.convert(p.Body, true)
	if err != nil {
		return nil, err
	}
	seq = append(seq, body)
	var mainBody ir.Expr
	if len(seq) == 1 {
		mainBody = seq[0]
	} else {
		mainBody = &ir.Seq{Exprs: seq}
	}
	if len(main.freeOrder) != 0 {
		return nil, fmt.Errorf("passes: top level has free variables: %v", main.freeOrder)
	}
	mainProc := &ir.Proc{Name: "main", Body: mainBody}
	cc.procs = append(cc.procs, mainProc)

	prog := &ir.Program{
		Procs:       cc.procs,
		MainIndex:   len(cc.procs) - 1,
		GlobalNames: cc.globalNames,
		PrimGlobals: cc.primGlobals,
		UserGlobals: cc.userGlobals,
	}
	return prog, nil
}

// scanGlobalSets records every global name the program assigns, so that
// a set! of a primitive name disables its open-coding everywhere.
func scanGlobalSets(e ast.Expr, out map[sexp.Symbol]bool) {
	switch t := e.(type) {
	case *ast.GlobalSet:
		out[t.Name] = true
		scanGlobalSets(t.Rhs, out)
	case *ast.If:
		scanGlobalSets(t.Test, out)
		scanGlobalSets(t.Then, out)
		scanGlobalSets(t.Else, out)
	case *ast.Begin:
		for _, x := range t.Exprs {
			scanGlobalSets(x, out)
		}
	case *ast.Lambda:
		scanGlobalSets(t.Body, out)
	case *ast.Let:
		for _, x := range t.Inits {
			scanGlobalSets(x, out)
		}
		scanGlobalSets(t.Body, out)
	case *ast.Letrec:
		for _, x := range t.Inits {
			scanGlobalSets(x, out)
		}
		scanGlobalSets(t.Body, out)
	case *ast.Set:
		scanGlobalSets(t.Rhs, out)
	case *ast.Call:
		scanGlobalSets(t.Fn, out)
		for _, x := range t.Args {
			scanGlobalSets(x, out)
		}
	}
}

type closureConverter struct {
	procs       []*ir.Proc
	globalIdx   map[sexp.Symbol]int
	globalNames []sexp.Symbol
	primGlobals []*prim.Def
	userGlobals []bool
	userDefined map[sexp.Symbol]bool
}

func (cc *closureConverter) globalIndex(name sexp.Symbol) int {
	if i, ok := cc.globalIdx[name]; ok {
		return i
	}
	i := len(cc.globalNames)
	cc.globalIdx[name] = i
	cc.globalNames = append(cc.globalNames, name)
	cc.primGlobals = append(cc.primGlobals, prim.Lookup(name))
	cc.userGlobals = append(cc.userGlobals, cc.userDefined[name])
	return i
}

// openCodable reports whether a call to the global name can be compiled
// as a primitive application.
func (cc *closureConverter) openCodable(name sexp.Symbol) *prim.Def {
	if cc.userDefined[name] {
		return nil
	}
	return prim.Lookup(name)
}

// procConverter converts one lambda body, discovering free variables.
type procConverter struct {
	cc        *closureConverter
	parent    *procConverter
	locals    map[*ast.Var]*ir.Var
	freeIdx   map[*ast.Var]int
	freeOrder []*ast.Var
}

// resolve turns an AST variable into a reference expression in this
// procedure, registering it as a free variable when necessary.
func (pc *procConverter) resolve(v *ast.Var) ir.Expr {
	if iv, ok := pc.locals[v]; ok {
		return &ir.VarRef{Var: iv}
	}
	if pc.parent == nil {
		// Should be impossible: parser resolved it as a local somewhere.
		panic(fmt.Sprintf("passes: unbound variable %s", v))
	}
	if idx, ok := pc.freeIdx[v]; ok {
		return &ir.FreeRef{Index: idx, Name: string(v.Name)}
	}
	if pc.freeIdx == nil {
		pc.freeIdx = map[*ast.Var]int{}
	}
	idx := len(pc.freeOrder)
	pc.freeIdx[v] = idx
	pc.freeOrder = append(pc.freeOrder, v)
	return &ir.FreeRef{Index: idx, Name: string(v.Name)}
}

func (pc *procConverter) newLocal(v *ast.Var) *ir.Var {
	iv := &ir.Var{Name: string(v.Name), SaveSlot: -1, CSReg: -1}
	pc.locals[v] = iv
	return iv
}

func (pc *procConverter) convert(e ast.Expr, tail bool) (ir.Expr, error) {
	switch t := e.(type) {
	case *ast.Const:
		// The ast→ir boundary is THE conversion point from compile-time
		// data (sexp.Datum) to the runtime value representation.
		return &ir.Const{Value: prim.FromDatum(t.Value)}, nil
	case *ast.Ref:
		return pc.resolve(t.Var), nil
	case *ast.GlobalRef:
		return &ir.GlobalRef{Index: pc.cc.globalIndex(t.Name), Name: t.Name}, nil
	case *ast.GlobalSet:
		rhs, err := pc.convert(t.Rhs, false)
		if err != nil {
			return nil, err
		}
		return &ir.GlobalSet{Index: pc.cc.globalIndex(t.Name), Name: t.Name, Rhs: rhs}, nil
	case *ast.If:
		test, err := pc.convert(t.Test, false)
		if err != nil {
			return nil, err
		}
		then, err := pc.convert(t.Then, tail)
		if err != nil {
			return nil, err
		}
		els, err := pc.convert(t.Else, tail)
		if err != nil {
			return nil, err
		}
		return &ir.If{Test: test, Then: then, Else: els}, nil
	case *ast.Begin:
		out := make([]ir.Expr, len(t.Exprs))
		for i, x := range t.Exprs {
			conv, err := pc.convert(x, tail && i == len(t.Exprs)-1)
			if err != nil {
				return nil, err
			}
			out[i] = conv
		}
		return &ir.Seq{Exprs: out}, nil
	case *ast.Lambda:
		return pc.convertLambda(t)
	case *ast.Let:
		return pc.convertLet(t, tail)
	case *ast.Letrec:
		return pc.convertFix(t, tail)
	case *ast.Call:
		return pc.convertCall(t, tail)
	case *ast.Set:
		return nil, fmt.Errorf("passes: set! survived assignment conversion")
	default:
		return nil, fmt.Errorf("passes: unknown expression %T", e)
	}
}

func (pc *procConverter) convertLambda(t *ast.Lambda) (*ir.MakeClosure, error) {
	inner := &procConverter{cc: pc.cc, parent: pc, locals: map[*ast.Var]*ir.Var{}}
	params := make([]*ir.Var, len(t.Params))
	for i, p := range t.Params {
		params[i] = inner.newLocal(p)
		params[i].Name = string(p.Name)
	}
	body, err := inner.convert(t.Body, true)
	if err != nil {
		return nil, err
	}
	proc := &ir.Proc{
		Name:   t.Name,
		Params: params,
		NFree:  len(inner.freeOrder),
		Body:   body,
	}
	for _, fv := range inner.freeOrder {
		proc.FreeNames = append(proc.FreeNames, string(fv.Name))
	}
	pc.cc.procs = append(pc.cc.procs, proc)
	procIdx := len(pc.cc.procs) - 1

	free := make([]ir.Expr, len(inner.freeOrder))
	for i, fv := range inner.freeOrder {
		free[i] = pc.resolve(fv)
	}
	return &ir.MakeClosure{ProcIndex: procIdx, Free: free}, nil
}

func (pc *procConverter) convertLet(t *ast.Let, tail bool) (ir.Expr, error) {
	// Alpha-renaming guarantees the inits cannot see the new bindings,
	// so a parallel let lowers to a chain of sequential binds.
	inits := make([]ir.Expr, len(t.Inits))
	for i, init := range t.Inits {
		conv, err := pc.convert(init, false)
		if err != nil {
			return nil, err
		}
		inits[i] = conv
	}
	vars := make([]*ir.Var, len(t.Vars))
	for i, v := range t.Vars {
		vars[i] = pc.newLocal(v)
	}
	body, err := pc.convert(t.Body, tail)
	if err != nil {
		return nil, err
	}
	for i := len(vars) - 1; i >= 0; i-- {
		body = &ir.Bind{Var: vars[i], Rhs: inits[i], Body: body}
	}
	return body, nil
}

// convertFix handles letrecs of unassigned lambdas (assignment
// conversion lowered every other letrec to boxes).
func (pc *procConverter) convertFix(t *ast.Letrec, tail bool) (ir.Expr, error) {
	vars := make([]*ir.Var, len(t.Vars))
	for i, v := range t.Vars {
		vars[i] = pc.newLocal(v)
	}
	closures := make([]*ir.MakeClosure, len(t.Inits))
	for i, init := range t.Inits {
		lam, ok := init.(*ast.Lambda)
		if !ok {
			return nil, fmt.Errorf("passes: letrec init is not a lambda after assignment conversion")
		}
		mc, err := pc.convertLambda(lam)
		if err != nil {
			return nil, err
		}
		closures[i] = mc
	}
	body, err := pc.convert(t.Body, tail)
	if err != nil {
		return nil, err
	}
	return &ir.Fix{Vars: vars, Closures: closures, Body: body, SaveVars: make([]bool, len(vars))}, nil
}

func (pc *procConverter) convertCall(t *ast.Call, tail bool) (ir.Expr, error) {
	if g, ok := t.Fn.(*ast.GlobalRef); ok {
		// call/cc is compiled specially unless the program shadows it.
		if (g.Name == "call/cc" || g.Name == "call-with-current-continuation") &&
			!pc.cc.userDefined[g.Name] && len(t.Args) == 1 {
			fn, err := pc.convert(t.Args[0], false)
			if err != nil {
				return nil, err
			}
			return &ir.Call{Fn: fn, Tail: tail, CallCC: true}, nil
		}
		if def := pc.cc.openCodable(g.Name); def != nil {
			if err := prim.CheckArity(def, len(t.Args)); err != nil {
				return nil, fmt.Errorf("passes: %v", err)
			}
			args := make([]ir.Expr, len(t.Args))
			for i, a := range t.Args {
				conv, err := pc.convert(a, false)
				if err != nil {
					return nil, err
				}
				args[i] = conv
			}
			return &ir.PrimCall{Def: def, Args: args}, nil
		}
	}
	fn, err := pc.convert(t.Fn, false)
	if err != nil {
		return nil, err
	}
	args := make([]ir.Expr, len(t.Args))
	for i, a := range t.Args {
		conv, err := pc.convert(a, false)
		if err != nil {
			return nil, err
		}
		args[i] = conv
	}
	return &ir.Call{Fn: fn, Args: args, Tail: tail}, nil
}
