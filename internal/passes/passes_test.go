package passes

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/ir"
)

func mustProgram(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := ast.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestAssignConvertSet(t *testing.T) {
	p := mustProgram(t, "(let ([x 1]) (set! x 2) x)")
	out := AssignConvert(p)
	s := ast.Print(out.Body)
	for _, frag := range []string{"box", "set-box!", "unbox"} {
		if !strings.Contains(s, frag) {
			t.Errorf("missing %q in %s", frag, s)
		}
	}
}

func TestAssignConvertUnassignedUntouched(t *testing.T) {
	p := mustProgram(t, "(let ([x 1]) (+ x x))")
	out := AssignConvert(p)
	s := ast.Print(out.Body)
	if strings.Contains(s, "box") {
		t.Errorf("unassigned variable should not be boxed: %s", s)
	}
}

func TestAssignConvertLambdaParam(t *testing.T) {
	p := mustProgram(t, "(lambda (x) (set! x 1) x)")
	out := AssignConvert(p)
	lam := out.Body.(*ast.Lambda)
	// The parameter is renamed and re-bound via a box.
	let, ok := lam.Body.(*ast.Let)
	if !ok {
		t.Fatalf("expected let wrapper, got %s", ast.Print(lam.Body))
	}
	if !strings.Contains(ast.Print(let.Inits[0]), "box") {
		t.Errorf("param should be boxed: %s", ast.Print(let.Inits[0]))
	}
}

func TestAssignConvertLetrecOfLambdasKept(t *testing.T) {
	p := mustProgram(t, "(letrec ([f (lambda (n) (if (zero? n) 1 (f (- n 1))))]) (f 3))")
	out := AssignConvert(p)
	if _, ok := out.Body.(*ast.Letrec); !ok {
		t.Errorf("letrec of lambdas should remain a letrec: %s", ast.Print(out.Body))
	}
}

func TestAssignConvertLetrecGeneralBoxed(t *testing.T) {
	p := mustProgram(t, "(letrec ([x 1] [y (lambda () x)]) (y))")
	out := AssignConvert(p)
	if _, ok := out.Body.(*ast.Letrec); ok {
		t.Errorf("general letrec should lower to boxes: %s", ast.Print(out.Body))
	}
	s := ast.Print(out.Body)
	if !strings.Contains(s, "set-box!") {
		t.Errorf("general letrec should initialize via set-box!: %s", s)
	}
}

func convert(t *testing.T, src string) *ir.Program {
	t.Helper()
	p := AssignConvert(mustProgram(t, src))
	prog, err := ClosureConvert(p)
	if err != nil {
		t.Fatalf("closure convert: %v", err)
	}
	return prog
}

func TestClosureConvertBasics(t *testing.T) {
	prog := convert(t, "(define (f x) (+ x 1)) (f 2)")
	if len(prog.Procs) != 2 { // f and main
		t.Fatalf("got %d procs", len(prog.Procs))
	}
	main := prog.Procs[prog.MainIndex]
	if main.Name != "main" || len(main.Params) != 0 {
		t.Errorf("main misshapen: %s", ir.PrintProc(main))
	}
}

func TestFreeVariableCapture(t *testing.T) {
	prog := convert(t, "(lambda (x) (lambda (y) (+ x y)))")
	var inner *ir.Proc
	for _, p := range prog.Procs {
		if p.NFree == 1 {
			inner = p
		}
	}
	if inner == nil {
		t.Fatalf("no proc captures exactly one free var: %v", prog.Procs)
	}
	if inner.FreeNames[0] != "x" {
		t.Errorf("free var should be x, got %v", inner.FreeNames)
	}
	if !strings.Contains(ir.PrintProc(inner), "free 0") {
		t.Errorf("body should use free ref: %s", ir.PrintProc(inner))
	}
}

func TestNestedFreeVariablePropagation(t *testing.T) {
	// z is free in the innermost lambda and must propagate through the
	// middle lambda's closure.
	prog := convert(t, "(lambda (z) (lambda (y) (lambda (x) (+ x (+ y z)))))")
	count := 0
	for _, p := range prog.Procs {
		count += p.NFree
	}
	// inner captures {y z} (2), middle captures {z} (1).
	if count != 3 {
		t.Errorf("total free slots = %d, want 3", count)
	}
}

func TestPrimOpenCoding(t *testing.T) {
	prog := convert(t, "(car '(1 2))")
	s := ir.PrintProc(prog.Procs[prog.MainIndex])
	if !strings.Contains(s, "%car") {
		t.Errorf("car should be open-coded: %s", s)
	}
}

func TestPrimNotOpenCodedWhenRedefined(t *testing.T) {
	prog := convert(t, "(define (car x) 42) (car '(1 2))")
	s := ir.PrintProc(prog.Procs[prog.MainIndex])
	if strings.Contains(s, "%car") {
		t.Errorf("redefined car must not be open-coded: %s", s)
	}
}

func TestPrimNotOpenCodedWhenSet(t *testing.T) {
	prog := convert(t, "(set! cdr 99) (cdr '(1 2))")
	s := ir.PrintProc(prog.Procs[prog.MainIndex])
	if strings.Contains(s, "%cdr") {
		t.Errorf("assigned cdr must not be open-coded: %s", s)
	}
}

func TestPrimArityError(t *testing.T) {
	p := AssignConvert(mustProgram(t, "(cons 1)"))
	if _, err := ClosureConvert(p); err == nil {
		t.Error("expected arity error for (cons 1)")
	}
}

func TestTailPositionMarking(t *testing.T) {
	prog := convert(t, "(define (f x) (if x (f (- x 1)) (g x))) (f 1)")
	var f *ir.Proc
	for _, p := range prog.Procs {
		if p.Name == "f" {
			f = p
		}
	}
	s := ir.PrintProc(f)
	if !strings.Contains(s, "(tailcall") {
		t.Errorf("recursive calls in tail position should be tail calls: %s", s)
	}
	// The call inside main's body position... f's body if-branches are tail.
	if strings.Count(s, "(tailcall") != 2 {
		t.Errorf("both branch calls are tail calls: %s", s)
	}
}

func TestNonTailInsideArgs(t *testing.T) {
	prog := convert(t, "(define (f x) (+ (f x) 1)) (f 1)")
	var f *ir.Proc
	for _, p := range prog.Procs {
		if p.Name == "f" {
			f = p
		}
	}
	s := ir.PrintProc(f)
	if strings.Contains(s, "(tailcall") {
		t.Errorf("call inside prim args is not a tail call: %s", s)
	}
	if !strings.Contains(s, "(call") {
		t.Errorf("expected a non-tail call: %s", s)
	}
}

func TestFixConversion(t *testing.T) {
	prog := convert(t, "(let loop ([i 0]) (if (= i 3) i (loop (+ i 1))))")
	s := ir.PrintProc(prog.Procs[prog.MainIndex])
	if !strings.Contains(s, "(fix (") {
		t.Errorf("named let should become fix: %s", s)
	}
}

func TestCallCCConversion(t *testing.T) {
	prog := convert(t, "(call/cc (lambda (k) (k 1)))")
	s := ir.PrintProc(prog.Procs[prog.MainIndex])
	if !strings.Contains(s, "call/cc") {
		t.Errorf("expected call/cc node: %s", s)
	}
}

func TestGlobalsTable(t *testing.T) {
	prog := convert(t, "(define x 1) (+ x y)")
	foundX, foundY := false, false
	for i, n := range prog.GlobalNames {
		switch n {
		case "x":
			foundX = true
			if !prog.UserGlobals[i] {
				t.Error("x should be a user global")
			}
		case "y":
			foundY = true
			if prog.UserGlobals[i] {
				t.Error("y should not be a user global")
			}
		}
	}
	if !foundX || !foundY {
		t.Errorf("globals table incomplete: %v", prog.GlobalNames)
	}
}

func TestHasCalls(t *testing.T) {
	prog := convert(t, `
(define (leaf x) (+ x 1))
(define (internal x) (leaf (leaf x)))
(define (tail-only x) (leaf x))
(leaf 1)`)
	byName := map[string]*ir.Proc{}
	for _, p := range prog.Procs {
		byName[p.Name] = p
	}
	if ir.HasCalls(byName["leaf"].Body) {
		t.Error("leaf should have no calls")
	}
	if !ir.HasCalls(byName["internal"].Body) {
		t.Error("internal has a nested non-tail call")
	}
	// tail-only's call is a tail call: not a call for leaf purposes.
	if ir.HasCalls(byName["tail-only"].Body) {
		t.Error("a lone tail call should not count as a call")
	}
}
