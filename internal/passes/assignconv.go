// Package passes implements the front-end program transformations the
// paper assumes have already run before register allocation: assignment
// conversion ("we assume that assignment conversion has already been
// done, so there are no assignment expressions", §2 — it is what makes
// "variables need to be saved only once" true, §2.1) and closure
// conversion into the first-order IR.
package passes

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/sexp"
)

// AssignConvert rewrites the program so no local set! remains: assigned
// variables are bound to boxes, references become unbox, assignments
// become set-box!. letrec forms whose bindings are not all unassigned
// lambdas are also lowered to boxes here, so closure conversion only
// ever sees "fix-able" letrecs (mutually recursive lambdas).
func AssignConvert(p *ast.Program) *ast.Program {
	c := &assignConverter{nextVar: p.NumVars}
	out := &ast.Program{Defs: make([]ast.Def, len(p.Defs))}
	for i, d := range p.Defs {
		out.Defs[i] = ast.Def{Name: d.Name, Rhs: c.convert(d.Rhs)}
	}
	out.Body = c.convert(p.Body)
	out.NumVars = c.nextVar
	return out
}

type assignConverter struct {
	nextVar int
	// boxed marks variables whose binding now holds a box.
	boxed map[*ast.Var]bool
}

func (c *assignConverter) isBoxed(v *ast.Var) bool { return c.boxed[v] }

func (c *assignConverter) markBoxed(v *ast.Var) {
	if c.boxed == nil {
		c.boxed = map[*ast.Var]bool{}
	}
	c.boxed[v] = true
}

func (c *assignConverter) fresh(name sexp.Symbol) *ast.Var {
	v := &ast.Var{Name: name, ID: c.nextVar}
	c.nextVar++
	return v
}

func boxCall(e ast.Expr) ast.Expr {
	return &ast.Call{Fn: &ast.GlobalRef{Name: "box"}, Args: []ast.Expr{e}}
}

func unboxCall(e ast.Expr) ast.Expr {
	return &ast.Call{Fn: &ast.GlobalRef{Name: "unbox"}, Args: []ast.Expr{e}}
}

func setBoxCall(box, rhs ast.Expr) ast.Expr {
	return &ast.Call{Fn: &ast.GlobalRef{Name: "set-box!"}, Args: []ast.Expr{box, rhs}}
}

func (c *assignConverter) convert(e ast.Expr) ast.Expr {
	switch t := e.(type) {
	case *ast.Const, *ast.GlobalRef:
		return e
	case *ast.Ref:
		if c.isBoxed(t.Var) {
			return unboxCall(&ast.Ref{Var: t.Var})
		}
		return e
	case *ast.Set:
		// t.Var is assigned, hence boxed by its binder.
		if !c.isBoxed(t.Var) {
			panic(fmt.Sprintf("passes: set! of unboxed variable %s", t.Var))
		}
		return setBoxCall(&ast.Ref{Var: t.Var}, c.convert(t.Rhs))
	case *ast.GlobalSet:
		return &ast.GlobalSet{Name: t.Name, Rhs: c.convert(t.Rhs)}
	case *ast.If:
		return &ast.If{Test: c.convert(t.Test), Then: c.convert(t.Then), Else: c.convert(t.Else)}
	case *ast.Begin:
		out := make([]ast.Expr, len(t.Exprs))
		for i, x := range t.Exprs {
			out[i] = c.convert(x)
		}
		return &ast.Begin{Exprs: out}
	case *ast.Lambda:
		return c.convertLambda(t)
	case *ast.Let:
		return c.convertLet(t)
	case *ast.Letrec:
		return c.convertLetrec(t)
	case *ast.Call:
		fn := c.convert(t.Fn)
		args := make([]ast.Expr, len(t.Args))
		for i, a := range t.Args {
			args[i] = c.convert(a)
		}
		return &ast.Call{Fn: fn, Args: args}
	default:
		panic(fmt.Sprintf("passes: unknown expression %T", e))
	}
}

// convertLambda boxes assigned parameters: (lambda (p) ...set! p...)
// becomes (lambda (p*) (let ([p (box p*)]) ...)).
func (c *assignConverter) convertLambda(t *ast.Lambda) ast.Expr {
	params := make([]*ast.Var, len(t.Params))
	var boxVars []*ast.Var
	var boxInits []ast.Expr
	for i, p := range t.Params {
		if p.Assigned {
			c.markBoxed(p)
			fresh := c.fresh(p.Name + "*")
			params[i] = fresh
			boxVars = append(boxVars, p)
			boxInits = append(boxInits, boxCall(&ast.Ref{Var: fresh}))
		} else {
			params[i] = p
		}
	}
	body := c.convert(t.Body)
	if len(boxVars) > 0 {
		body = &ast.Let{Vars: boxVars, Inits: boxInits, Body: body}
	}
	return &ast.Lambda{Params: params, Body: body, Name: t.Name}
}

func (c *assignConverter) convertLet(t *ast.Let) ast.Expr {
	inits := make([]ast.Expr, len(t.Inits))
	for i, init := range t.Inits {
		conv := c.convert(init)
		if t.Vars[i].Assigned {
			c.markBoxed(t.Vars[i])
			conv = boxCall(conv)
		}
		inits[i] = conv
	}
	// Boxing must be decided before converting the body (the body's
	// references consult c.boxed), so mark first. Marking happened in
	// the loop above; references in inits see the *outer* bindings of
	// the same names thanks to alpha-renaming, so ordering is safe.
	return &ast.Let{Vars: t.Vars, Inits: inits, Body: c.convert(t.Body)}
}

// convertLetrec keeps letrecs of unassigned lambdas intact (they become
// ir.Fix) and lowers everything else to explicit boxes.
func (c *assignConverter) convertLetrec(t *ast.Letrec) ast.Expr {
	fixable := true
	for i, init := range t.Inits {
		if _, ok := init.(*ast.Lambda); !ok || t.Vars[i].Assigned {
			fixable = false
			break
		}
	}
	if fixable {
		inits := make([]ast.Expr, len(t.Inits))
		for i, init := range t.Inits {
			inits[i] = c.convert(init)
		}
		return &ast.Letrec{Vars: t.Vars, Inits: inits, Body: c.convert(t.Body)}
	}
	// (letrec ([v e] ...) body) ⇒
	// (let ([v (box unspec)] ...) (set-box! v e') ... body')
	for _, v := range t.Vars {
		c.markBoxed(v)
	}
	boxInits := make([]ast.Expr, len(t.Vars))
	for i := range t.Vars {
		boxInits[i] = boxCall(ast.Unspecified)
	}
	var seq []ast.Expr
	for i, init := range t.Inits {
		seq = append(seq, setBoxCall(&ast.Ref{Var: t.Vars[i]}, c.convert(init)))
	}
	seq = append(seq, c.convert(t.Body))
	var body ast.Expr
	if len(seq) == 1 {
		body = seq[0]
	} else {
		body = &ast.Begin{Exprs: seq}
	}
	return &ast.Let{Vars: t.Vars, Inits: boxInits, Body: body}
}
