// Package verify is a translation validator for compiled VM code: a
// static dataflow pass that proves, per compilation, the allocator's
// placement invariants from the paper rather than sampling them
// behaviorally. It symbolically executes each procedure's instruction
// stream — registers, frame slots and outgoing-argument slots as
// abstract cells tracking undefined / defined-value / clobbered-by-call
// — with a worklist fixpoint over branch joins, and checks:
//
//   - defined-before-use: no read of an undefined or call-clobbered
//     register or slot;
//   - lazy-save soundness (§2.1.2): every register restored after a
//     call has a save of the same value into the same slot dominating
//     the call on all paths;
//   - eager-restore soundness (§3): a register read after a call is
//     clobbered unless an OpLoadSlot restore of the matching slot
//     dominates the read — such reads are reported as missing restores;
//   - shuffle validity (§2.3): each call site's emitted move sequence,
//     interpreted as a substitution, realizes the parallel assignment
//     the allocator recorded (vm.ShuffleRecord), detecting values lost
//     in transfer cycles;
//   - structural bounds: frame sizes, arities, jump targets, operand
//     pool indices, callee-save preservation and return-address
//     integrity.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/findings"
	"repro/internal/vm"
)

// Kind classifies a violation.
type Kind int

const (
	// UndefinedRegister is a read of a register no path has defined.
	UndefinedRegister Kind = iota
	// UndefinedSlot is a read of a frame or outgoing-argument slot no
	// path has written.
	UndefinedSlot
	// MissingRestore is a read of a register a call destroyed without an
	// intervening restore (§3's eager-restore invariant).
	MissingRestore
	// MissingSave is a call crossed by a save/restore pair whose save
	// does not dominate the call on every path (§2.1.2's invariant).
	MissingSave
	// ShuffleMismatch is a call whose argument registers do not hold the
	// values the recorded parallel assignment demands (§2.3).
	ShuffleMismatch
	// BadJump is a branch or jump target outside the procedure, or a
	// fall-through off its end.
	BadJump
	// BadFrame is a slot index outside the frame or a call/store-out
	// whose frame-size operand disagrees with the procedure's frame.
	BadFrame
	// BadArity is an OpEntry whose declared argument count disagrees
	// with the procedure metadata.
	BadArity
	// BadOperand is an out-of-range register, constant, primitive,
	// procedure or free-variable index, or a malformed opcode.
	BadOperand
	// BadReturn is an exit whose return address is not the one the
	// procedure was entered with.
	BadReturn
	// CalleeSaveClobbered is an exit at which a callee-save register
	// does not hold its entry value (§2.4's discipline).
	CalleeSaveClobbered
	// Unverifiable reports that the fixpoint did not converge (the code
	// has a shape the validator does not support, e.g. a backward jump).
	Unverifiable
)

func (k Kind) String() string {
	switch k {
	case UndefinedRegister:
		return "undefined-register"
	case UndefinedSlot:
		return "undefined-slot"
	case MissingRestore:
		return "missing-restore"
	case MissingSave:
		return "missing-save"
	case ShuffleMismatch:
		return "shuffle-mismatch"
	case BadJump:
		return "bad-jump"
	case BadFrame:
		return "bad-frame"
	case BadArity:
		return "bad-arity"
	case BadOperand:
		return "bad-operand"
	case BadReturn:
		return "bad-return"
	case CalleeSaveClobbered:
		return "callee-save-clobbered"
	case Unverifiable:
		return "unverifiable"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Violation is one statically detected invariant breach.
type Violation struct {
	Kind Kind
	// Proc names the enclosing procedure.
	Proc string
	// PC is the offending instruction's address; Op its opcode.
	PC int
	Op vm.Op
	// Instr is the disassembled instruction at PC.
	Instr string
	// Reg is the register involved (-1 if none); Slot the frame or
	// outgoing slot involved (-1 if none).
	Reg  int
	Slot int
	// CallPC is the clobbering or crossed call's address (-1 if none).
	CallPC int
	// Msg is a one-line description.
	Msg string
	// Witness is a static control path from the procedure entry to PC
	// along which the violation manifests.
	Witness []int
}

func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s at pc %d", v.Kind, v.PC)
	if v.Proc != "" {
		fmt.Fprintf(&b, " in %s", v.Proc)
	}
	if v.Instr != "" {
		fmt.Fprintf(&b, " [%s]", v.Instr)
	}
	fmt.Fprintf(&b, ": %s", v.Msg)
	if len(v.Witness) > 0 {
		fmt.Fprintf(&b, " (path %s)", formatWitness(v.Witness))
	}
	return b.String()
}

// formatWitness renders a path compactly, eliding long middles.
func formatWitness(path []int) string {
	const head, tail = 6, 4
	var parts []string
	if len(path) <= head+tail+1 {
		for _, pc := range path {
			parts = append(parts, fmt.Sprint(pc))
		}
	} else {
		for _, pc := range path[:head] {
			parts = append(parts, fmt.Sprint(pc))
		}
		parts = append(parts, "…")
		for _, pc := range path[len(path)-tail:] {
			parts = append(parts, fmt.Sprint(pc))
		}
	}
	return strings.Join(parts, "→")
}

// Finding converts the violation to the structured finding format
// shared with the optimality analyzer (internal/analysis).
func (v Violation) Finding() findings.Finding {
	return findings.Finding{
		Tool:    "verify",
		Kind:    v.Kind.String(),
		Proc:    v.Proc,
		PC:      v.PC,
		Instr:   v.Instr,
		Reg:     v.Reg,
		Slot:    v.Slot,
		CallPC:  v.CallPC,
		Msg:     v.Msg,
		Witness: v.Witness,
	}
}

// Findings converts a violation list to structured findings.
func Findings(vs []Violation) []findings.Finding {
	out := make([]findings.Finding, len(vs))
	for i, v := range vs {
		out[i] = v.Finding()
	}
	return out
}

// Error aggregates the violations of one program.
type Error struct {
	Violations []Violation
}

func (e *Error) Error() string {
	if len(e.Violations) == 0 {
		return "verify: no violations"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %d violation(s):", len(e.Violations))
	for _, v := range e.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

// Program statically verifies p and returns every violation found,
// ordered by address. An empty result means every check passed.
func Program(p *vm.Program) []Violation {
	var out []Violation
	if p.MainIndex < 0 || p.MainIndex >= len(p.Procs) {
		out = append(out, Violation{
			Kind: BadOperand, PC: -1, Reg: -1, Slot: -1, CallPC: -1,
			Msg: fmt.Sprintf("main index %d outside procedure table (%d procs)", p.MainIndex, len(p.Procs)),
		})
	}

	ranges := procRanges(p, &out)
	syms := newSymtab()
	for _, pr := range ranges {
		pv := newProcVerifier(p, pr, syms)
		pv.run(&out)
	}

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].PC != out[j].PC {
			return out[i].PC < out[j].PC
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Check verifies p, returning nil or an *Error listing every violation.
func Check(p *vm.Program) error {
	if vs := Program(p); len(vs) > 0 {
		return &Error{Violations: vs}
	}
	return nil
}

// procRange is one procedure's contiguous code extent [start, end).
type procRange struct {
	info  vm.ProcInfo
	start int
	end   int
}

// ProcExtent is one procedure's contiguous code extent [Start, End),
// exported for sibling static passes (internal/analysis) that walk the
// same per-procedure code regions the verifier does.
type ProcExtent struct {
	Info  vm.ProcInfo
	Start int
	End   int
}

// Extents computes every procedure's code extent, in address order.
// Procedures whose entry lies outside the code are skipped (the
// verifier reports those as violations).
func Extents(p *vm.Program) []ProcExtent {
	var discard []Violation
	rs := procRanges(p, &discard)
	out := make([]ProcExtent, len(rs))
	for i, r := range rs {
		out[i] = ProcExtent{Info: r.info, Start: r.start, End: r.end}
	}
	return out
}

// procRanges computes each procedure's extent: procedures are emitted
// contiguously, so a body runs from its entry to the next entry (or the
// end of the code). Out-of-range entries are reported and skipped.
func procRanges(p *vm.Program, out *[]Violation) []procRange {
	var rs []procRange
	for _, info := range p.Procs {
		if info.Entry <= 0 || info.Entry >= len(p.Code) {
			*out = append(*out, Violation{
				Kind: BadOperand, Proc: info.Name, PC: info.Entry, Reg: -1, Slot: -1, CallPC: -1,
				Msg: fmt.Sprintf("procedure entry %d outside code (len %d)", info.Entry, len(p.Code)),
			})
			continue
		}
		rs = append(rs, procRange{info: info, start: info.Entry})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].start < rs[j].start })
	for i := range rs {
		if i+1 < len(rs) {
			rs[i].end = rs[i+1].start
		} else {
			rs[i].end = len(p.Code)
		}
	}
	return rs
}
