package verify

// The abstract domain. Each cell (register, frame slot, outgoing slot)
// holds an absVal:
//
//	aBot    unreachable / no information          (lattice bottom)
//	aDef    defined; sym identifies the value
//	aTop    defined, provenance lost              (widening)
//	aClob   possibly destroyed by a call; sym is the call's pc
//	aUndef  possibly never defined                (lattice top)
//
// Symbols name definition sites: positive symbols are instruction
// addresses (+1), negative symbols are entry seeds (return address,
// closure pointer, parameters, callee-saves), and symbols at or above
// pairBase are interned joins — two values merging at a join point get
// a deterministic pair symbol, so copy-equivalence survives joins (the
// save in one branch and the untouched register in the other still
// compare equal downstream).

type absKind uint8

const (
	aBot absKind = iota
	aDef
	aTop
	aClob
	aUndef
)

type absVal struct {
	k   absKind
	sym int32
}

// Entry-seed symbols. Stack parameters use symStackParam0-k, so with
// the argc sanity cap (maxArgc) the ranges cannot collide.
const (
	symRet        int32 = -2
	symCP         int32 = -3
	symArg0       int32 = -10  // argument i: symArg0 - i
	symCS0        int32 = -200 // callee-save i: symCS0 - i
	symStackParam int32 = -300 // stack parameter k: symStackParam - k
)

// pairBase is the first interned pair symbol; definition-site symbols
// (pc+1) stay far below it.
const pairBase int32 = 1 << 24

// maxPairs caps the interner; past it joins widen to aTop.
const maxPairs = 1 << 16

// symtab interns join symbols by their canonical leaf set, making the
// join idempotent, commutative and associative (so the fixpoint
// converges). It is shared across procedures so symbol meanings stay
// stable for the whole program.
type symtab struct {
	sets    map[string]int32
	members map[int32][]int32
	next    int32
}

func newSymtab() *symtab {
	return &symtab{sets: map[string]int32{}, members: map[int32][]int32{}, next: pairBase}
}

// leaves expands a symbol to its sorted set of leaf symbols.
func (t *symtab) leaves(s int32) []int32 {
	if s >= pairBase {
		return t.members[s]
	}
	return []int32{s}
}

// maxLeafSet bounds the size of a join set; beyond it joins widen.
const maxLeafSet = 64

// pair returns the deterministic symbol for the join of a and b, or -1
// once the intern table or set size caps are hit (the caller widens).
func (t *symtab) pair(a, b int32) int32 {
	if a == b {
		return a
	}
	la, lb := t.leaves(a), t.leaves(b)
	merged := mergeSorted(la, lb)
	// Subset joins resolve to the existing symbol.
	if len(merged) == len(la) {
		return a
	}
	if len(merged) == len(lb) {
		return b
	}
	if len(merged) > maxLeafSet {
		return -1
	}
	key := encodeSet(merged)
	if s, ok := t.sets[key]; ok {
		return s
	}
	if len(t.sets) >= maxPairs {
		return -1
	}
	s := t.next
	t.next++
	t.sets[key] = s
	t.members[s] = merged
	return s
}

// mergeSorted unions two sorted, duplicate-free int32 slices.
func mergeSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// encodeSet renders a sorted leaf set as a map key.
func encodeSet(set []int32) string {
	buf := make([]byte, 0, len(set)*4)
	for _, s := range set {
		buf = append(buf, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
	}
	return string(buf)
}

// join is the lattice join of two abstract values.
func (t *symtab) join(a, b absVal) absVal {
	if a == b {
		return a
	}
	if a.k == aBot {
		return b
	}
	if b.k == aBot {
		return a
	}
	if a.k == aUndef || b.k == aUndef {
		return absVal{k: aUndef}
	}
	if a.k == aClob || b.k == aClob {
		// Possibly-clobbered on some path; keep a clobbering pc if the
		// two sides agree, for the diagnostic.
		sym := a.sym
		if a.k != aClob {
			sym = b.sym
		} else if b.k == aClob && b.sym != a.sym {
			sym = -1
		}
		return absVal{k: aClob, sym: sym}
	}
	if a.k == aTop || b.k == aTop {
		return absVal{k: aTop}
	}
	if s := t.pair(a.sym, b.sym); s >= 0 {
		return absVal{k: aDef, sym: s}
	}
	return absVal{k: aTop}
}

// savedCopy tracks, per register, the most recent save that is valid on
// every path to the current point: the slot it went to and the value
// symbol it carried.
type savedCopy struct {
	ok   bool
	slot int32
	sym  int32
}

// state is the abstract machine state before one instruction.
type state struct {
	live  bool
	regs  []absVal
	slots []absVal
	outs  []absVal
	saved []savedCopy
}

func (s *state) clone() state {
	return state{
		live:  s.live,
		regs:  append([]absVal(nil), s.regs...),
		slots: append([]absVal(nil), s.slots...),
		outs:  append([]absVal(nil), s.outs...),
		saved: append([]savedCopy(nil), s.saved...),
	}
}

// joinInto merges src into dst, returning whether dst changed. dst must
// already be live with the same cell counts.
func (t *symtab) joinInto(dst *state, src *state) bool {
	changed := false
	mergeVals := func(d, s []absVal) {
		for i := range d {
			if nv := t.join(d[i], s[i]); nv != d[i] {
				d[i] = nv
				changed = true
			}
		}
	}
	mergeVals(dst.regs, src.regs)
	mergeVals(dst.slots, src.slots)
	mergeVals(dst.outs, src.outs)
	for i := range dst.saved {
		d, s := dst.saved[i], src.saved[i]
		if d == s {
			continue
		}
		if d.ok && s.ok && d.slot == s.slot && d.sym == s.sym {
			continue
		}
		if d.ok {
			dst.saved[i] = savedCopy{}
			changed = true
		}
	}
	return changed
}
