package verify

// Witness reconstruction: a reported violation carries one concrete
// static path from the procedure entry to the offending instruction
// along which the cell is in the bad state. The search runs a BFS over
// (pc, cell-state) nodes with a three-value concrete simulation of the
// single cell involved — far cheaper than the full abstract state, and
// enough to pick the path a developer should read.

import "repro/internal/vm"

const (
	cUndef uint8 = iota
	cDef
	cClob
)

// witnessCell finds a shortest path from the entry to target arriving
// with the simulated cell in state want. trans advances the cell state
// across the instruction at pc.
func (pv *procVerifier) witnessCell(target int, init uint8, want uint8, trans func(pc int, k uint8) uint8) []int {
	n := pv.end - pv.start
	const nStates = 3
	parent := make([]int32, n*nStates)
	for i := range parent {
		parent[i] = -1
	}
	node := func(pc int, k uint8) int { return (pc-pv.start)*nStates + int(k) }
	startNode := node(pv.start, init)
	parent[startNode] = int32(startNode)
	queue := []int{startNode}
	goal := -1
	if pv.start == target && init == want {
		goal = startNode
	}
	var buf [2]int
	for len(queue) > 0 && goal < 0 {
		cur := queue[0]
		queue = queue[1:]
		pc := pv.start + cur/nStates
		k := uint8(cur % nStates)
		nk := trans(pc, k)
		for _, succ := range pv.succs(pc, buf[:]) {
			nn := node(succ, nk)
			if parent[nn] >= 0 {
				continue
			}
			parent[nn] = int32(cur)
			if succ == target && nk == want {
				goal = nn
				break
			}
			queue = append(queue, nn)
		}
	}
	if goal < 0 {
		return pv.witnessPath(target)
	}
	var rev []int
	for at := goal; ; at = int(parent[at]) {
		rev = append(rev, pv.start+at/nStates)
		if at == int(parent[at]) {
			break
		}
	}
	path := make([]int, len(rev))
	for i, pc := range rev {
		path[len(rev)-1-i] = pc
	}
	return path
}

// witnessReg finds a path on which register r arrives at pc in the
// given abstract state (aUndef or aClob).
func (pv *procVerifier) witnessReg(pc, r int, want absKind) []int {
	init := cUndef
	if r == vm.RegRet || r == vm.RegCP || pv.regDefinedAtEntry(r) {
		init = cDef
	}
	goal := cUndef
	if want == aClob {
		goal = cClob
	}
	return pv.witnessCell(pc, init, goal, func(at int, k uint8) uint8 {
		e := pv.eff[at-pv.start]
		if e.Defs.Has(r) {
			return cDef
		}
		if e.Clobbers.Has(r) {
			return cClob
		}
		return k
	})
}

// regDefinedAtEntry reports whether the calling convention defines r on
// procedure entry (parameters and callee-saves; ret/cp handled by the
// caller).
func (pv *procVerifier) regDefinedAtEntry(r int) bool {
	nArgRegs := pv.info.NArgs
	if nArgRegs > pv.cfg.ArgRegs {
		nArgRegs = pv.cfg.ArgRegs
	}
	for i := 0; i < nArgRegs; i++ {
		if pv.cfg.ArgReg(i) == r {
			return true
		}
	}
	for i := 0; i < pv.cfg.CalleeSaveRegs; i++ {
		if pv.cfg.CalleeSaveReg(i) == r {
			return true
		}
	}
	return false
}

// witnessSlot finds a path on which frame slot sl arrives at pc unwritten.
func (pv *procVerifier) witnessSlot(pc, sl int) []int {
	init := cUndef
	if sl < pv.stackParams {
		init = cDef
	}
	return pv.witnessCell(pc, init, cUndef, func(at int, k uint8) uint8 {
		for _, w := range pv.eff[at-pv.start].WriteSlots {
			if w == sl {
				return cDef
			}
		}
		return k
	})
}

// witnessOut finds a path on which outgoing slot o arrives at pc
// unwritten since the last call.
func (pv *procVerifier) witnessOut(pc, o int) []int {
	return pv.witnessCell(pc, cUndef, cUndef, func(at int, k uint8) uint8 {
		e := pv.eff[at-pv.start]
		if e.IsCall {
			return cUndef
		}
		for _, w := range e.WriteOuts {
			if w == o {
				return cDef
			}
		}
		return k
	})
}

// witnessPath finds any shortest path from the entry to pc.
func (pv *procVerifier) witnessPath(target int) []int {
	n := pv.end - pv.start
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[0] = 0
	if target == pv.start {
		return []int{pv.start}
	}
	queue := []int{pv.start}
	var buf [2]int
	for len(queue) > 0 {
		pc := queue[0]
		queue = queue[1:]
		for _, succ := range pv.succs(pc, buf[:]) {
			i := succ - pv.start
			if parent[i] >= 0 {
				continue
			}
			parent[i] = int32(pc)
			if succ == target {
				var rev []int
				for at := succ; at != pv.start; at = int(parent[at-pv.start]) {
					rev = append(rev, at)
				}
				rev = append(rev, pv.start)
				path := make([]int, len(rev))
				for j, p := range rev {
					path[len(rev)-1-j] = p
				}
				return path
			}
			queue = append(queue, succ)
		}
	}
	return nil
}
