package verify

// Witness reconstruction: a reported violation carries one concrete
// static path from the procedure entry to the offending instruction
// along which the cell is in the bad state. The search runs a BFS over
// (pc, cell-state) nodes with a three-value concrete simulation of the
// single cell involved — far cheaper than the full abstract state, and
// enough to pick the path a developer should read.
//
// The machinery is exported as PathFinder so sibling static passes
// (the optimality analyzer in internal/analysis) can reuse the same
// CFG walking and shortest-path search over a procedure extent.

import "repro/internal/vm"

// Cell states for PathFinder.WitnessCell's single-cell simulation.
const (
	CellUndef uint8 = iota
	CellDef
	CellClob
	// NumCellStates is the size of the simulated state space.
	NumCellStates = 3
)

// Legacy aliases used by the verifier internals.
const (
	cUndef = CellUndef
	cDef   = CellDef
	cClob  = CellClob
)

// PathFinder walks one procedure extent's control-flow graph. It caches
// per-instruction effects and offers shortest-path searches used to
// build violation witnesses.
type PathFinder struct {
	start, end int
	eff        []vm.Effects
}

// NewPathFinder builds a PathFinder for the instructions [start, end)
// of p. It returns ok=false when the extent is too malformed to walk:
// an unknown opcode, a jump leaving the extent, or control falling off
// the end (the verifier reports those structurally; path search over
// them would be meaningless).
func NewPathFinder(p *vm.Program, start, end int) (*PathFinder, bool) {
	if start < 0 || end > len(p.Code) || start >= end {
		return nil, false
	}
	pf := &PathFinder{start: start, end: end, eff: make([]vm.Effects, end-start)}
	for pc := start; pc < end; pc++ {
		e, ok := p.Code[pc].InstrEffects(p.Config)
		if !ok {
			return nil, false
		}
		if e.Jump >= 0 && (e.Jump < start || e.Jump >= end) {
			return nil, false
		}
		if e.FallsThrough && pc+1 >= end {
			return nil, false
		}
		pf.eff[pc-start] = e
	}
	return pf, true
}

// pathFinderFor wraps an effects slice the verifier already built.
func pathFinderFor(start, end int, eff []vm.Effects) *PathFinder {
	return &PathFinder{start: start, end: end, eff: eff}
}

// Start and End delimit the extent.
func (pf *PathFinder) Start() int { return pf.start }
func (pf *PathFinder) End() int   { return pf.end }

// Effects returns the cached def/use effects of the instruction at pc.
func (pf *PathFinder) Effects(pc int) vm.Effects { return pf.eff[pc-pf.start] }

// Succs lists pc's intra-procedure successors into buf.
func (pf *PathFinder) Succs(pc int, buf []int) []int {
	e := pf.eff[pc-pf.start]
	buf = buf[:0]
	if e.FallsThrough {
		buf = append(buf, pc+1)
	}
	if e.Jump >= 0 {
		buf = append(buf, e.Jump)
	}
	return buf
}

// WitnessCell finds a shortest path from the extent start to target
// arriving with the simulated cell in state want. trans advances the
// cell state across the instruction at pc.
func (pf *PathFinder) WitnessCell(target int, init, want uint8, trans func(pc int, k uint8) uint8) []int {
	n := pf.end - pf.start
	parent := make([]int32, n*NumCellStates)
	for i := range parent {
		parent[i] = -1
	}
	node := func(pc int, k uint8) int { return (pc-pf.start)*NumCellStates + int(k) }
	startNode := node(pf.start, init)
	parent[startNode] = int32(startNode)
	queue := []int{startNode}
	goal := -1
	if pf.start == target && init == want {
		goal = startNode
	}
	var buf [2]int
	for len(queue) > 0 && goal < 0 {
		cur := queue[0]
		queue = queue[1:]
		pc := pf.start + cur/NumCellStates
		k := uint8(cur % NumCellStates)
		nk := trans(pc, k)
		for _, succ := range pf.Succs(pc, buf[:]) {
			nn := node(succ, nk)
			if parent[nn] >= 0 {
				continue
			}
			parent[nn] = int32(cur)
			if succ == target && nk == want {
				goal = nn
				break
			}
			queue = append(queue, nn)
		}
	}
	if goal < 0 {
		return pf.WitnessPath(target)
	}
	var rev []int
	for at := goal; ; at = int(parent[at]) {
		rev = append(rev, pf.start+at/NumCellStates)
		if at == int(parent[at]) {
			break
		}
	}
	path := make([]int, len(rev))
	for i, pc := range rev {
		path[len(rev)-1-i] = pc
	}
	return path
}

// WitnessPath finds any shortest path from the extent start to target.
func (pf *PathFinder) WitnessPath(target int) []int {
	return pf.PathFrom(pf.start, func(pc int) bool { return pc == target }, nil)
}

// PathFrom finds a shortest path beginning at from and ending at the
// first instruction satisfying stop. Nodes for which avoid returns true
// are not traversed (avoid may be nil); the stop node itself is still
// tested before its avoid status matters. It returns nil when no such
// path exists.
func (pf *PathFinder) PathFrom(from int, stop func(pc int) bool, avoid func(pc int) bool) []int {
	if from < pf.start || from >= pf.end {
		return nil
	}
	if stop(from) {
		return []int{from}
	}
	if avoid != nil && avoid(from) {
		return nil
	}
	n := pf.end - pf.start
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[from-pf.start] = int32(from)
	queue := []int{from}
	var buf [2]int
	for len(queue) > 0 {
		pc := queue[0]
		queue = queue[1:]
		for _, succ := range pf.Succs(pc, buf[:]) {
			i := succ - pf.start
			if parent[i] >= 0 {
				continue
			}
			parent[i] = int32(pc)
			if stop(succ) {
				var rev []int
				for at := succ; at != from; at = int(parent[at-pf.start]) {
					rev = append(rev, at)
				}
				rev = append(rev, from)
				path := make([]int, len(rev))
				for j, p := range rev {
					path[len(rev)-1-j] = p
				}
				return path
			}
			if avoid != nil && avoid(succ) {
				continue
			}
			queue = append(queue, succ)
		}
	}
	return nil
}

// witnessReg finds a path on which register r arrives at pc in the
// given abstract state (aUndef or aClob).
func (pv *procVerifier) witnessReg(pc, r int, want absKind) []int {
	init := cUndef
	if r == vm.RegRet || r == vm.RegCP || pv.regDefinedAtEntry(r) {
		init = cDef
	}
	goal := cUndef
	if want == aClob {
		goal = cClob
	}
	return pv.pf.WitnessCell(pc, init, goal, func(at int, k uint8) uint8 {
		e := pv.eff[at-pv.start]
		if e.Defs.Has(r) {
			return cDef
		}
		if e.Clobbers.Has(r) {
			return cClob
		}
		return k
	})
}

// regDefinedAtEntry reports whether the calling convention defines r on
// procedure entry (parameters and callee-saves; ret/cp handled by the
// caller).
func (pv *procVerifier) regDefinedAtEntry(r int) bool {
	nArgRegs := pv.info.NArgs
	if nArgRegs > pv.cfg.ArgRegs {
		nArgRegs = pv.cfg.ArgRegs
	}
	for i := 0; i < nArgRegs; i++ {
		if pv.cfg.ArgReg(i) == r {
			return true
		}
	}
	for i := 0; i < pv.cfg.CalleeSaveRegs; i++ {
		if pv.cfg.CalleeSaveReg(i) == r {
			return true
		}
	}
	return false
}

// witnessSlot finds a path on which frame slot sl arrives at pc unwritten.
func (pv *procVerifier) witnessSlot(pc, sl int) []int {
	init := cUndef
	if sl < pv.stackParams {
		init = cDef
	}
	return pv.pf.WitnessCell(pc, init, cUndef, func(at int, k uint8) uint8 {
		for _, w := range pv.eff[at-pv.start].WriteSlots {
			if w == sl {
				return cDef
			}
		}
		return k
	})
}

// witnessOut finds a path on which outgoing slot o arrives at pc
// unwritten since the last call.
func (pv *procVerifier) witnessOut(pc, o int) []int {
	return pv.pf.WitnessCell(pc, cUndef, cUndef, func(at int, k uint8) uint8 {
		e := pv.eff[at-pv.start]
		if e.IsCall {
			return cUndef
		}
		for _, w := range e.WriteOuts {
			if w == o {
				return cDef
			}
		}
		return k
	})
}

// witnessPath finds any shortest path from the entry to pc.
func (pv *procVerifier) witnessPath(target int) []int {
	return pv.pf.WitnessPath(target)
}
