package verify

// Witness reconstruction: a reported violation carries one concrete
// static path from the procedure entry to the offending instruction
// along which the cell is in the bad state. The searches live in
// internal/dataflow (Graph.CellPath, Graph.PathFrom); PathFinder is the
// thin wrapper this package and internal/analysis historically used,
// kept as the stable per-extent handle.

import (
	"repro/internal/dataflow"
	"repro/internal/vm"
)

// Cell states for PathFinder.WitnessCell's single-cell simulation.
const (
	CellUndef uint8 = iota
	CellDef
	CellClob
	// NumCellStates is the size of the simulated state space.
	NumCellStates = 3
)

// Legacy aliases used by the verifier internals.
const (
	cUndef = CellUndef
	cDef   = CellDef
	cClob  = CellClob
)

// PathFinder walks one procedure extent's control-flow graph. It is a
// veneer over dataflow.Graph: per-instruction effects, successor
// edges, and the shortest-path searches used to build violation
// witnesses.
type PathFinder struct {
	g *dataflow.Graph
}

// NewPathFinder builds a PathFinder for the instructions [start, end)
// of p. It returns ok=false when the extent is too malformed to walk:
// an unknown opcode, a jump leaving the extent, or control falling off
// the end (the verifier reports those structurally; path search over
// them would be meaningless).
func NewPathFinder(p *vm.Program, start, end int) (*PathFinder, bool) {
	g, err := dataflow.NewGraph(p, start, end)
	if err != nil {
		return nil, false
	}
	return &PathFinder{g: g}, true
}

// pathFinderFor wraps an effects slice the verifier already built.
func pathFinderFor(start, end int, eff []vm.Effects) *PathFinder {
	return &PathFinder{g: dataflow.GraphFromEffects(start, end, eff)}
}

// Graph exposes the underlying CFG for fixpoint runs.
func (pf *PathFinder) Graph() *dataflow.Graph { return pf.g }

// Start and End delimit the extent.
func (pf *PathFinder) Start() int { return pf.g.Start() }
func (pf *PathFinder) End() int   { return pf.g.End() }

// Effects returns the cached def/use effects of the instruction at pc.
func (pf *PathFinder) Effects(pc int) vm.Effects { return pf.g.Effects(pc) }

// Succs lists pc's intra-procedure successors into buf.
func (pf *PathFinder) Succs(pc int, buf []int) []int { return pf.g.Succs(pc, buf) }

// WitnessCell finds a shortest path from the extent start to target
// arriving with the simulated cell in state want. trans advances the
// cell state across the instruction at pc.
func (pf *PathFinder) WitnessCell(target int, init, want uint8, trans func(pc int, k uint8) uint8) []int {
	return pf.g.CellPath(target, init, want, NumCellStates, trans)
}

// WitnessPath finds any shortest path from the extent start to target.
func (pf *PathFinder) WitnessPath(target int) []int { return pf.g.WitnessPath(target) }

// PathFrom finds a shortest path beginning at from and ending at the
// first instruction satisfying stop. Nodes for which avoid returns true
// are not traversed (avoid may be nil); the stop node itself is still
// tested before its avoid status matters. It returns nil when no such
// path exists.
func (pf *PathFinder) PathFrom(from int, stop func(pc int) bool, avoid func(pc int) bool) []int {
	return pf.g.PathFrom(from, stop, avoid)
}

// witnessReg finds a path on which register r arrives at pc in the
// given abstract state (aUndef or aClob).
func (pv *procVerifier) witnessReg(pc, r int, want absKind) []int {
	init := cUndef
	if r == vm.RegRet || r == vm.RegCP || pv.regDefinedAtEntry(r) {
		init = cDef
	}
	goal := cUndef
	if want == aClob {
		goal = cClob
	}
	return pv.pf.WitnessCell(pc, init, goal, func(at int, k uint8) uint8 {
		e := pv.eff[at-pv.start]
		if e.Defs.Has(r) {
			return cDef
		}
		if e.Clobbers.Has(r) {
			return cClob
		}
		return k
	})
}

// regDefinedAtEntry reports whether the calling convention defines r on
// procedure entry (parameters and callee-saves; ret/cp handled by the
// caller).
func (pv *procVerifier) regDefinedAtEntry(r int) bool {
	nArgRegs := pv.info.NArgs
	if nArgRegs > pv.cfg.ArgRegs {
		nArgRegs = pv.cfg.ArgRegs
	}
	for i := 0; i < nArgRegs; i++ {
		if pv.cfg.ArgReg(i) == r {
			return true
		}
	}
	for i := 0; i < pv.cfg.CalleeSaveRegs; i++ {
		if pv.cfg.CalleeSaveReg(i) == r {
			return true
		}
	}
	return false
}

// witnessSlot finds a path on which frame slot sl arrives at pc unwritten.
func (pv *procVerifier) witnessSlot(pc, sl int) []int {
	init := cUndef
	if sl < pv.stackParams {
		init = cDef
	}
	return pv.pf.WitnessCell(pc, init, cUndef, func(at int, k uint8) uint8 {
		for _, w := range pv.eff[at-pv.start].WriteSlots {
			if w == sl {
				return cDef
			}
		}
		return k
	})
}

// witnessOut finds a path on which outgoing slot o arrives at pc
// unwritten since the last call.
func (pv *procVerifier) witnessOut(pc, o int) []int {
	return pv.pf.WitnessCell(pc, cUndef, cUndef, func(at int, k uint8) uint8 {
		e := pv.eff[at-pv.start]
		if e.IsCall {
			return cUndef
		}
		for _, w := range e.WriteOuts {
			if w == o {
				return cDef
			}
		}
		return k
	})
}

// witnessPath finds any shortest path from the entry to pc.
func (pv *procVerifier) witnessPath(target int) []int {
	return pv.pf.WitnessPath(target)
}
