package verify_test

// The negative corpus: compile small programs, corrupt the emitted code
// in targeted ways (drop a save, drop a restore, misdirect a shuffle
// move, point a jump out of range, lie about arity), and check the
// validator rejects each with the right violation kind. The positive
// half checks clean compilations verify empty across the allocator's
// strategy matrix.

import (
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/verify"
	"repro/internal/vm"
)

// callSrc has a variable live across a non-tail call, so the allocator
// must save x before calling g and (eagerly) restore it after.
const callSrc = `(define (g y) (* y 2)) (define (f x) (+ (g x) x)) (f 3)`

// swapSrc calls with its parameters exchanged, forcing a shuffle cycle.
const swapSrc = `(define (g a b) (- a b)) (define (f x y) (g y x)) (f 7 3)`

// branchSrc has an if, so the emitted code contains a jump.
const branchSrc = `(define (f n) (if (< n 0) 0 n)) (f 3)`

func mustCompile(t *testing.T, src string, mod func(*compiler.Options)) *vm.Program {
	t.Helper()
	opts := compiler.DefaultOptions()
	opts.NoPrelude = true
	if mod != nil {
		mod(&opts)
	}
	c, err := compiler.Compile(src, opts)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return c.Program
}

// findInstr returns the pc of the first instruction matching pred.
func findInstr(t *testing.T, p *vm.Program, what string, pred func(vm.Instr) bool) int {
	t.Helper()
	for pc, in := range p.Code {
		if pred(in) {
			return pc
		}
	}
	t.Fatalf("no %s in:\n%s", what, p.Disassemble())
	return -1
}

// requireKind asserts at least one violation of the given kind and
// returns the first.
func requireKind(t *testing.T, vs []verify.Violation, k verify.Kind) verify.Violation {
	t.Helper()
	for _, v := range vs {
		if v.Kind == k {
			return v
		}
	}
	t.Fatalf("wanted a %v violation, got %d violations: %v", k, len(vs), vs)
	return verify.Violation{}
}

func TestVerifyCleanMatrix(t *testing.T) {
	srcs := []string{callSrc, swapSrc, branchSrc,
		`(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 10)`,
	}
	saves := []codegen.SaveStrategy{codegen.SaveLazy, codegen.SaveEarly, codegen.SaveLate, codegen.SaveSimple}
	restores := []codegen.RestorePolicy{codegen.RestoreEager, codegen.RestoreLazy}
	for _, src := range srcs {
		for _, s := range saves {
			for _, r := range restores {
				p := mustCompile(t, src, func(o *compiler.Options) {
					o.Saves = s
					o.Restores = r
				})
				if vs := verify.Program(p); len(vs) != 0 {
					t.Errorf("saves=%v restores=%v %q: %v", s, r, src, vs)
				}
			}
		}
	}
	// Callee-save mode exercises a different save/restore shape (§2.4).
	p := mustCompile(t, callSrc, func(o *compiler.Options) {
		o.Config.CalleeSaveRegs = 3
		o.CalleeSave = true
	})
	if vs := verify.Program(p); len(vs) != 0 {
		t.Errorf("callee-save: %v", vs)
	}
}

// nop overwrites pc with a jump to the next instruction: a control-flow
// no-op that neither reads nor writes any cell, i.e. the instruction is
// dropped from every path without perturbing the rest of the code.
func nop(p *vm.Program, pc int) {
	p.Code[pc] = vm.Instr{Op: vm.OpJump, A: pc + 1}
}

func TestDroppedSaveRejected(t *testing.T) {
	p := mustCompile(t, callSrc, nil)
	pc := findInstr(t, p, "user-register save", func(in vm.Instr) bool {
		return in.Op == vm.OpStoreSlot && in.Kind == vm.KindSave &&
			in.A != vm.RegRet && in.A != vm.RegCP
	})
	nop(p, pc)
	v := requireKind(t, verify.Program(p), verify.MissingSave)
	if len(v.Witness) == 0 {
		t.Errorf("missing-save violation carries no witness path: %v", v)
	}
}

func TestDroppedRestoreRejected(t *testing.T) {
	p := mustCompile(t, callSrc, nil)
	pc := findInstr(t, p, "user-register restore", func(in vm.Instr) bool {
		return in.Op == vm.OpLoadSlot && in.Kind == vm.KindRestore &&
			in.A != vm.RegRet && in.A != vm.RegCP
	})
	nop(p, pc)
	v := requireKind(t, verify.Program(p), verify.MissingRestore)
	if len(v.Witness) == 0 || v.Witness[len(v.Witness)-1] != v.PC {
		t.Errorf("witness should end at the violating pc %d: %v", v.PC, v.Witness)
	}
}

func TestCorruptShuffleRejected(t *testing.T) {
	p := mustCompile(t, swapSrc, nil)
	if len(p.Shuffles) == 0 {
		t.Fatalf("expected shuffle records in:\n%s", p.Disassemble())
	}
	corrupted := false
	for _, rec := range p.Shuffles {
		for pc := rec.StartPC; pc < rec.CallPC && !corrupted; pc++ {
			if in := p.Code[pc]; in.Op == vm.OpMove && in.A != in.B {
				// Self-move: the target register keeps its old value
				// instead of receiving the assigned source.
				p.Code[pc].B = in.A
				corrupted = true
			}
		}
	}
	if !corrupted {
		t.Fatalf("no register-register shuffle move found in:\n%s", p.Disassemble())
	}
	requireKind(t, verify.Program(p), verify.ShuffleMismatch)
}

func TestOutOfRangeJumpRejected(t *testing.T) {
	p := mustCompile(t, branchSrc, nil)
	pc := findInstr(t, p, "jump", func(in vm.Instr) bool { return in.Op == vm.OpJump })
	p.Code[pc].A = len(p.Code) + 5
	requireKind(t, verify.Program(p), verify.BadJump)
}

func TestArityMismatchRejected(t *testing.T) {
	p := mustCompile(t, callSrc, nil)
	pc := findInstr(t, p, "entry", func(in vm.Instr) bool { return in.Op == vm.OpEntry })
	p.Code[pc].A++
	requireKind(t, verify.Program(p), verify.BadArity)
}

func TestCheckError(t *testing.T) {
	p := mustCompile(t, callSrc, nil)
	if err := verify.Check(p); err != nil {
		t.Fatalf("clean program: %v", err)
	}
	pc := findInstr(t, p, "user-register save", func(in vm.Instr) bool {
		return in.Op == vm.OpStoreSlot && in.Kind == vm.KindSave &&
			in.A != vm.RegRet && in.A != vm.RegCP
	})
	nop(p, pc)
	err := verify.Check(p)
	verr, ok := err.(*verify.Error)
	if !ok {
		t.Fatalf("want *verify.Error, got %T: %v", err, err)
	}
	if len(verr.Violations) == 0 || !strings.Contains(err.Error(), "missing-save") {
		t.Errorf("error should name the violation kind: %v", err)
	}
}
