// Package ir defines the compiler's intermediate representation: a
// program as a set of first-order procedures produced by closure
// conversion. It is the richer production counterpart of the paper's §2
// simplified expression language — every construct the register
// allocator reasons about (calls, sequencing, conditionals, binders,
// constants true and false) is present, plus the machinery constructs
// (primitive applications, closure records, global cells) that the
// simplified language abstracts away.
//
// The register allocator (internal/codegen) annotates IR nodes in place:
// variable locations, call liveness, shuffle plans, and save sets.
package ir

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/prim"
	"repro/internal/regset"
	"repro/internal/sexp"
)

// LocKind distinguishes variable locations.
type LocKind int

const (
	// LocUnassigned means the allocator has not yet placed the variable.
	LocUnassigned LocKind = iota
	// LocReg places the variable in a machine register.
	LocReg
	// LocSlot places the variable in a frame slot (stack).
	LocSlot
)

// Loc is a variable's home location.
type Loc struct {
	Kind  LocKind
	Index int // register number or frame-slot index
}

func (l Loc) String() string {
	switch l.Kind {
	case LocReg:
		return fmt.Sprintf("r%d", l.Index)
	case LocSlot:
		return fmt.Sprintf("fp[%d]", l.Index)
	default:
		return "?"
	}
}

// Var is an IR variable (parameter or let-bound local). The allocator
// fills Loc and, when the variable ever needs saving, SaveSlot.
type Var struct {
	Name string
	Loc  Loc
	// SaveSlot is the frame slot that holds the variable's saved value
	// across calls (or, in callee-save mode, the previous contents of
	// its callee-save register); -1 until allocated.
	SaveSlot int
	// CSReg is the callee-save register shadowing this variable in the
	// §2.4 callee-save mode; -1 when unused.
	CSReg int
	// CrossCall marks variables that may be live across a call (the
	// callee-save mode assigns only these to callee-save registers).
	CrossCall bool
}

func (v *Var) String() string {
	if v.Loc.Kind == LocUnassigned {
		return v.Name
	}
	return v.Name + ":" + v.Loc.String()
}

// Expr is an IR expression.
type Expr interface{ irExpr() }

// Const is a constant (quoted data or literal).
type Const struct{ Value prim.Value }

// VarRef reads a local variable.
type VarRef struct{ Var *Var }

// FreeRef reads the running closure's Index-th free-variable slot (via
// the closure-pointer register).
type FreeRef struct {
	Index int
	Name  string
}

// GlobalRef reads a global cell.
type GlobalRef struct {
	Index int
	Name  sexp.Symbol
}

// GlobalSet writes a global cell.
type GlobalSet struct {
	Index int
	Name  sexp.Symbol
	Rhs   Expr
}

// If is a conditional.
type If struct {
	Test, Then, Else Expr
	// BranchSaves are the lazily-placed save sets wrapped around the two
	// arms by the save-placement pass (empty when unused).
	ThenSaves regset.Set
	ElseSaves regset.Set
	// PredictThen, when branch prediction is enabled, is the compiler's
	// static guess that the then-arm executes (the §6 extension: paths
	// without calls are predicted taken).
	PredictThen *bool
	// LiveAfter is the set of registers live after the whole if — used
	// by the lazy-restore baseline to restore registers "live on exit
	// from the enclosing save region" (Figure 2c).
	LiveAfter regset.Set
}

// Seq evaluates expressions left to right, yielding the last value.
type Seq struct{ Exprs []Expr }

// Bind introduces one local variable scoped over Body. (Multi-binding
// lets are lowered to chains of Binds; alpha-renaming makes this
// semantics-preserving.)
type Bind struct {
	Var  *Var
	Rhs  Expr
	Body Expr
	// SaveVar is set by the save-placement pass when the variable must
	// be saved immediately at its definition point (a call is inevitable
	// while it is live).
	SaveVar bool
}

// PrimCall applies a primitive (open-coded; never a procedure call).
type PrimCall struct {
	Def  *prim.Def
	Args []Expr
}

// Call invokes a procedure value.
type Call struct {
	Fn   Expr
	Args []Expr
	Tail bool
	// CallCC marks (call/cc f): the VM captures the continuation and
	// passes it as f's single argument.
	CallCC bool

	// Annotations produced by the allocator's analysis pass:

	// LiveAfter is the set of registers live after the call (the
	// registers whose variables are referenced later).
	LiveAfter regset.Set
	// RefsAfter is the set of registers possibly referenced after the
	// call before the next call (drives eager restores).
	RefsAfter regset.Set
	// Plan is the argument-shuffle schedule; ShuffleArgs[i] describes
	// Args[i] (with the operator appended last, targeting cp).
	Plan        core.Plan
	ShuffleArgs []core.ShuffleArg
	// LateSaves is used by the late-save strategy: registers saved
	// immediately before this call.
	LateSaves regset.Set
}

// MakeClosure allocates a closure for procedure ProcIndex capturing the
// values of Free (VarRef or FreeRef expressions) in order.
type MakeClosure struct {
	ProcIndex int
	Free      []Expr
}

// Fix binds mutually recursive closures. All right-hand sides are
// closures; free references among the Vars are patched after all the
// closures are allocated, avoiding assignment conversion's boxes for the
// common named-let/internal-define case.
type Fix struct {
	Vars     []*Var
	Closures []*MakeClosure
	Body     Expr
	// SaveVars mirrors Bind.SaveVar per variable.
	SaveVars []bool
}

// Save wraps Body with a register save set (the lazy and early
// strategies place these; the code generator eliminates saves already
// performed by an enclosing Save).
type Save struct {
	Regs regset.Set
	Body Expr
}

func (*Const) irExpr()       {}
func (*VarRef) irExpr()      {}
func (*FreeRef) irExpr()     {}
func (*GlobalRef) irExpr()   {}
func (*GlobalSet) irExpr()   {}
func (*If) irExpr()          {}
func (*Seq) irExpr()         {}
func (*Bind) irExpr()        {}
func (*PrimCall) irExpr()    {}
func (*Call) irExpr()        {}
func (*MakeClosure) irExpr() {}
func (*Fix) irExpr()         {}
func (*Save) irExpr()        {}

// Proc is a first-order procedure.
type Proc struct {
	Name   string
	Params []*Var
	// NFree is the number of free-variable slots in the closure record.
	NFree     int
	FreeNames []string
	Body      Expr

	// Static classification for the dynamic call-graph statistics
	// (Table 2), filled by the allocator:

	// SyntacticLeaf: the body contains no non-tail calls.
	SyntacticLeaf bool
	// CallInevitable: every path through the body makes a non-tail call
	// (detected via the ret-register technique of §2.4).
	CallInevitable bool
}

// Program is a closure-converted program.
type Program struct {
	// Procs[MainIndex] is the nullary entry procedure.
	Procs     []*Proc
	MainIndex int
	// GlobalNames[i] names global cell i. PrimGlobals[i] is non-nil when
	// the cell initially holds that primitive as a first-class value.
	GlobalNames []sexp.Symbol
	PrimGlobals []*prim.Def
	// UserGlobals marks cells that the program defines or assigns;
	// primitive calls through such cells cannot be open-coded.
	UserGlobals []bool
}

// HasCalls reports whether e contains a non-tail call (used for
// syntactic-leaf classification and for simple/complex argument
// partitioning in the shuffler).
func HasCalls(e Expr) bool {
	switch t := e.(type) {
	case *Const, *VarRef, *FreeRef, *GlobalRef:
		return false
	case *GlobalSet:
		return HasCalls(t.Rhs)
	case *If:
		return HasCalls(t.Test) || HasCalls(t.Then) || HasCalls(t.Else)
	case *Seq:
		for _, x := range t.Exprs {
			if HasCalls(x) {
				return true
			}
		}
		return false
	case *Bind:
		return HasCalls(t.Rhs) || HasCalls(t.Body)
	case *PrimCall:
		for _, x := range t.Args {
			if HasCalls(x) {
				return true
			}
		}
		return false
	case *Call:
		if !t.Tail {
			return true
		}
		// A tail call is a jump (paper footnote 1), but calls nested in
		// its argument expressions still count.
		if HasCalls(t.Fn) {
			return true
		}
		for _, x := range t.Args {
			if HasCalls(x) {
				return true
			}
		}
		return false
	case *MakeClosure:
		return false
	case *Fix:
		return HasCalls(t.Body)
	case *Save:
		return HasCalls(t.Body)
	default:
		panic(fmt.Sprintf("ir: unknown expression %T", e))
	}
}

// Print renders an expression for dumps and tests.
func Print(e Expr) string {
	var b strings.Builder
	printExpr(&b, e)
	return b.String()
}

// PrintProc renders a whole procedure.
func PrintProc(p *Proc) string {
	var b strings.Builder
	b.WriteString("(proc ")
	b.WriteString(p.Name)
	b.WriteString(" (")
	for i, v := range p.Params {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(v.String())
	}
	b.WriteString(") ")
	printExpr(&b, p.Body)
	b.WriteByte(')')
	return b.String()
}

func printExpr(b *strings.Builder, e Expr) {
	switch t := e.(type) {
	case *Const:
		b.WriteString(prim.WriteString(t.Value))
	case *VarRef:
		b.WriteString(t.Var.String())
	case *FreeRef:
		fmt.Fprintf(b, "(free %d %s)", t.Index, t.Name)
	case *GlobalRef:
		fmt.Fprintf(b, "(global %s)", t.Name)
	case *GlobalSet:
		fmt.Fprintf(b, "(global-set! %s ", t.Name)
		printExpr(b, t.Rhs)
		b.WriteByte(')')
	case *If:
		b.WriteString("(if ")
		printExpr(b, t.Test)
		b.WriteByte(' ')
		printWrapped(b, t.ThenSaves, t.Then)
		b.WriteByte(' ')
		printWrapped(b, t.ElseSaves, t.Else)
		b.WriteByte(')')
	case *Seq:
		b.WriteString("(seq")
		for _, x := range t.Exprs {
			b.WriteByte(' ')
			printExpr(b, x)
		}
		b.WriteByte(')')
	case *Bind:
		b.WriteString("(bind ")
		if t.SaveVar {
			b.WriteString("save! ")
		}
		b.WriteString(t.Var.String())
		b.WriteByte(' ')
		printExpr(b, t.Rhs)
		b.WriteByte(' ')
		printExpr(b, t.Body)
		b.WriteByte(')')
	case *PrimCall:
		fmt.Fprintf(b, "(%%%s", t.Def.Name)
		for _, x := range t.Args {
			b.WriteByte(' ')
			printExpr(b, x)
		}
		b.WriteByte(')')
	case *Call:
		if t.Tail {
			b.WriteString("(tailcall ")
		} else {
			b.WriteString("(call ")
		}
		if t.CallCC {
			b.WriteString("call/cc ")
		}
		printExpr(b, t.Fn)
		for _, x := range t.Args {
			b.WriteByte(' ')
			printExpr(b, x)
		}
		b.WriteByte(')')
	case *MakeClosure:
		fmt.Fprintf(b, "(closure %d", t.ProcIndex)
		for _, x := range t.Free {
			b.WriteByte(' ')
			printExpr(b, x)
		}
		b.WriteByte(')')
	case *Fix:
		b.WriteString("(fix (")
		for i, v := range t.Vars {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteByte('[')
			b.WriteString(v.String())
			b.WriteByte(' ')
			printExpr(b, t.Closures[i])
			b.WriteByte(']')
		}
		b.WriteString(") ")
		printExpr(b, t.Body)
		b.WriteByte(')')
	case *Save:
		fmt.Fprintf(b, "(save %s ", t.Regs)
		printExpr(b, t.Body)
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "#<unknown %T>", e)
	}
}

func printWrapped(b *strings.Builder, saves regset.Set, e Expr) {
	if saves.IsEmpty() {
		printExpr(b, e)
		return
	}
	fmt.Fprintf(b, "(save %s ", saves)
	printExpr(b, e)
	b.WriteByte(')')
}
