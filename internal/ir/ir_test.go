package ir

import (
	"strings"
	"testing"

	"repro/internal/prim"
	"repro/internal/regset"
	"repro/internal/sexp"
)

func v(name string, reg int) *Var {
	return &Var{Name: name, Loc: Loc{Kind: LocReg, Index: reg}, SaveSlot: -1, CSReg: -1}
}

func TestLocString(t *testing.T) {
	if got := (Loc{Kind: LocReg, Index: 5}).String(); got != "r5" {
		t.Errorf("got %q", got)
	}
	if got := (Loc{Kind: LocSlot, Index: 2}).String(); got != "fp[2]" {
		t.Errorf("got %q", got)
	}
	if got := (Loc{}).String(); got != "?" {
		t.Errorf("got %q", got)
	}
	unassigned := &Var{Name: "x"}
	if unassigned.String() != "x" {
		t.Errorf("got %q", unassigned.String())
	}
}

func TestHasCalls(t *testing.T) {
	x := v("x", 3)
	call := &Call{Fn: &GlobalRef{Name: "f"}, Args: []Expr{&VarRef{Var: x}}}
	tail := &Call{Fn: &GlobalRef{Name: "f"}, Tail: true}

	cases := []struct {
		name string
		e    Expr
		want bool
	}{
		{"const", &Const{Value: prim.FixV(1)}, false},
		{"var", &VarRef{Var: x}, false},
		{"call", call, true},
		{"tail-call-alone", tail, false},
		{"call-inside-tail-args", &Call{Fn: &GlobalRef{Name: "g"}, Args: []Expr{call}, Tail: true}, true},
		{"seq", &Seq{Exprs: []Expr{&Const{Value: prim.FixV(1)}, call}}, true},
		{"if-no-calls", &If{Test: &VarRef{Var: x}, Then: &VarRef{Var: x}, Else: &VarRef{Var: x}}, false},
		{"if-one-arm", &If{Test: &VarRef{Var: x}, Then: call, Else: &VarRef{Var: x}}, true},
		{"bind-rhs", &Bind{Var: x, Rhs: call, Body: &VarRef{Var: x}}, true},
		{"prim-args", &PrimCall{Args: []Expr{call}}, true},
		{"closure", &MakeClosure{ProcIndex: 0, Free: nil}, false},
		{"global-set", &GlobalSet{Rhs: call}, true},
		{"fix-body", &Fix{Vars: []*Var{x}, Closures: []*MakeClosure{{}}, Body: call, SaveVars: []bool{false}}, true},
		{"save", &Save{Body: call}, true},
	}
	for _, c := range cases {
		if got := HasCalls(c.e); got != c.want {
			t.Errorf("%s: HasCalls = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestPrintForms(t *testing.T) {
	x := v("x", 3)
	e := &If{
		Test:      &VarRef{Var: x},
		Then:      &PrimCall{Def: nil, Args: nil},
		Else:      &Const{Value: prim.FixV(1)},
		ThenSaves: regset.Of(3),
	}
	// PrimCall with nil Def would panic on Name; use a real one via a
	// different expression instead.
	e.Then = &Const{Value: prim.True}
	s := Print(e)
	if !strings.Contains(s, "(if x:r3 (save {r3} #t) 1)") {
		t.Errorf("got %q", s)
	}

	bind := &Bind{Var: x, Rhs: &Const{Value: prim.FixV(2)}, Body: &VarRef{Var: x}, SaveVar: true}
	if got := Print(bind); !strings.Contains(got, "save!") {
		t.Errorf("SaveVar marker missing: %q", got)
	}

	call := &Call{Fn: &GlobalRef{Name: "f"}, Args: []Expr{&FreeRef{Index: 0, Name: "y"}}, Tail: true}
	if got := Print(call); !strings.Contains(got, "tailcall") || !strings.Contains(got, "free 0") {
		t.Errorf("got %q", got)
	}

	cc := &Call{Fn: &GlobalRef{Name: "f"}, CallCC: true}
	if got := Print(cc); !strings.Contains(got, "call/cc") {
		t.Errorf("got %q", got)
	}

	fix := &Fix{
		Vars:     []*Var{x},
		Closures: []*MakeClosure{{ProcIndex: 2, Free: []Expr{&VarRef{Var: x}}}},
		Body:     &VarRef{Var: x},
		SaveVars: []bool{false},
	}
	if got := Print(fix); !strings.Contains(got, "(fix (") || !strings.Contains(got, "closure 2") {
		t.Errorf("got %q", got)
	}

	gset := &GlobalSet{Name: "g", Rhs: &Const{Value: prim.FixV(3)}}
	if got := Print(gset); got != "(global-set! g 3)" {
		t.Errorf("got %q", got)
	}

	seq := &Seq{Exprs: []Expr{&Const{Value: prim.FixV(1)}, &Const{Value: prim.FixV(2)}}}
	if got := Print(seq); got != "(seq 1 2)" {
		t.Errorf("got %q", got)
	}

	save := &Save{Regs: regset.Of(1, 2), Body: &Const{Value: prim.FixV(0)}}
	if got := Print(save); !strings.Contains(got, "(save {r1 r2} 0)") {
		t.Errorf("got %q", got)
	}
}

func TestPrintProc(t *testing.T) {
	x := v("x", 3)
	p := &Proc{Name: "f", Params: []*Var{x}, Body: &VarRef{Var: x}}
	if got := PrintProc(p); got != "(proc f (x:r3) x:r3)" {
		t.Errorf("got %q", got)
	}
}

func TestQuotedConstPrinting(t *testing.T) {
	c := &Const{Value: prim.FromDatum(sexp.List(sexp.Symbol("a"), sexp.Fixnum(1)))}
	if got := Print(c); got != "(a 1)" {
		t.Errorf("got %q", got)
	}
}
