// Package srclint is a source-level static analysis suite over this
// repository's own Go code — the same "prove it statically, don't just
// spot-check it dynamically" discipline internal/verify and
// internal/analysis apply to emitted VM code, turned onto the
// implementation itself. It is stdlib-only: syntax and types come from
// go/parser and go/types, imports resolve through compiled export data
// obtained from `go list -export`, and escape diagnostics come from
// the gc compiler via `go build -gcflags=-m`.
//
// Three analyzers, all emitting the shared internal/findings format:
//
//   - alloc-baseline (alloc.go): diffs the compiler's heap-escape
//     diagnostics for the VM hot path against a committed, annotated
//     ALLOC_BASELINE.json, so allocation regressions fail CI and the
//     planned value-representation overhaul has a measurement scaffold.
//   - program-immutability (immutable.go): proves no function outside
//     an allowlist writes to vm.Program fields or their backing
//     slices, statically enforcing the "Program immutable, Machine
//     per-run" concurrency contract.
//   - engine-parity (parity.go): cross-checks the opcode and dispatch
//     tables of the two execution engines, the specialized-primitive
//     and fusion tables, and the handlers' counter/fuel accounting.
//
// The suite is driven by cmd/lsrvet and gated in scripts/check.sh and
// CI. See DESIGN.md §13 for what each analyzer proves and what it
// deliberately cannot.
package srclint

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/findings"
)

// Options selects and scopes the analyzers for one Run.
type Options struct {
	// Root is the module root directory.
	Root string
	// Analyzers selects the passes to run ("alloc", "immutable",
	// "parity"); empty means all three.
	Analyzers []string
	// BaselinePath locates ALLOC_BASELINE.json (relative paths resolve
	// against Root).
	BaselinePath string
	// VMPackage is the import path of the VM package the parity
	// analyzer inspects.
	VMPackage string

	Alloc     AllocConfig
	Immutable ImmutabilityConfig
	Parity    ParityConfig
}

// DefaultOptions analyzes this repository with all three passes.
func DefaultOptions(root string) Options {
	return Options{
		Root:         root,
		BaselinePath: "ALLOC_BASELINE.json",
		VMPackage:    "repro/internal/vm",
		Alloc:        DefaultAllocConfig(),
		Immutable:    DefaultImmutabilityConfig(),
		Parity:       DefaultParityConfig(),
	}
}

// Result is one Run's outcome: the findings (empty means the gate
// passes) plus non-fatal warnings (stale baseline entries) and a
// timing line breaking down where the run's wall time went.
type Result struct {
	Findings []findings.Finding
	Warnings []string
	// Timing is a human-readable breakdown ("load 1.2s · immutable 45ms
	// · ..."); cmd/lsrvet logs it so scripts/check.sh shows where the
	// gate's time goes.
	Timing string
}

// Run executes the selected analyzers and aggregates their findings.
func Run(opts Options) (*Result, error) {
	selected := map[string]bool{}
	for _, a := range opts.Analyzers {
		selected[a] = true
	}
	all := len(opts.Analyzers) == 0
	want := func(name string) bool { return all || selected[name] }
	for _, a := range opts.Analyzers {
		switch a {
		case "alloc", "immutable", "parity":
		default:
			return nil, fmt.Errorf("srclint: unknown analyzer %q (want alloc, immutable or parity)", a)
		}
	}

	res := &Result{}
	loader := NewLoader(opts.Root)
	var spans []string
	timed := func(name string, f func() error) error {
		start := time.Now()
		err := f()
		spans = append(spans, fmt.Sprintf("%s %s", name, time.Since(start).Round(time.Millisecond)))
		return err
	}

	if want("immutable") || want("parity") {
		// Load once up front so the per-analyzer spans measure analysis,
		// not the shared list+parse+check pass.
		if _, err := loader.Packages(); err != nil {
			return nil, err
		}
		spans = append(spans, fmt.Sprintf("load %s", loader.LoadTime.Round(time.Millisecond)))
	}
	if want("immutable") {
		err := timed("immutable", func() error {
			pkgs, err := loader.Packages()
			if err != nil {
				return err
			}
			res.Findings = append(res.Findings, CheckImmutability(opts.Root, pkgs, opts.Immutable)...)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if want("parity") {
		err := timed("parity", func() error {
			vmPkg, err := loader.Package(opts.VMPackage)
			if err != nil {
				return err
			}
			fs, err := CheckParity(opts.Root, vmPkg, opts.Parity)
			if err != nil {
				return err
			}
			res.Findings = append(res.Findings, fs...)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	if want("alloc") {
		err := timed("alloc", func() error {
			data, err := os.ReadFile(resolvePath(opts.Root, opts.BaselinePath))
			if err != nil {
				return fmt.Errorf("srclint: read alloc baseline: %v", err)
			}
			base, err := ReadBaseline(data)
			if err != nil {
				return err
			}
			sites, version, err := MeasureEscapes(opts.Root, opts.Alloc)
			if err != nil {
				return err
			}
			fs, stale, err := DiffAlloc(base, sites, version, opts.Alloc)
			if err != nil {
				return err
			}
			res.Findings = append(res.Findings, fs...)
			res.Warnings = append(res.Warnings, stale...)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	res.Timing = strings.Join(spans, " · ")
	sortFindings(res.Findings)
	return res, nil
}

// Report wraps the result in the shared findings envelope, with a
// per-kind summary so tooling can aggregate without re-counting.
func (r *Result) Report() findings.Report {
	byKind := map[string]int{}
	for _, f := range r.Findings {
		byKind[f.Kind]++
	}
	fs := r.Findings
	if fs == nil {
		fs = []findings.Finding{}
	}
	return findings.Report{
		Tool:     "srclint",
		Findings: fs,
		Summary: map[string]any{
			"by_kind":  byKind,
			"warnings": len(r.Warnings),
		},
	}
}

func sortFindings(fs []findings.Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		return fs[i].Kind < fs[j].Kind
	})
}

func resolvePath(root, p string) string {
	if p == "" || strings.HasPrefix(p, "/") {
		return p
	}
	return root + "/" + p
}
