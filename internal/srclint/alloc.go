package srclint

// The alloc-baseline analyzer: drives the Go compiler's escape analysis
// (go build -gcflags=-m) over the VM package and diffs the reported
// heap-escape sites in the hot-path files against a committed,
// annotated baseline (ALLOC_BASELINE.json). The VM's remaining
// wall-time is allocation-bound (DESIGN.md §12, BENCH_0.json), so any
// *new* escape site in the dispatch hot path is a perf regression that
// must be either eliminated or consciously added to the baseline — and
// the baseline itself is the measurement scaffold for the planned
// value-representation overhaul: shrinking it is the roadmap's metric.
//
// Sites are keyed on (file, diagnostic text) with an occurrence count,
// never on line numbers, so unrelated edits that move code do not churn
// the baseline; only adding or removing an escaping expression does.
// Escape diagnostics are a property of one compiler version's inliner
// and escape analysis, so the baseline records the toolchain and the
// analyzer refuses to diff across a different go MAJOR.MINOR rather
// than report version noise as regressions.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"path"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/findings"
)

// AllocBaselineSchema identifies the ALLOC_BASELINE.json format.
const AllocBaselineSchema = "lsr/alloc-baseline/v1"

// AllocSite is one distinct escape diagnostic: a (file, message) key
// with the number of source locations it fires at.
type AllocSite struct {
	// File is the diagnosed file's path relative to the module root.
	File string `json:"file"`
	// Message is the compiler's diagnostic with the position prefix
	// stripped ("&RuntimeError{...} escapes to heap").
	Message string `json:"message"`
	// Count is how many distinct positions report this message in File.
	Count int `json:"count"`
	// Note justifies why the site is acceptable (required for files
	// outside the dispatch loop, where escapes need an explicit reason).
	Note string `json:"note,omitempty"`

	// line is the first position's line, carried to findings (not part
	// of the baseline key and not serialized).
	line int
}

// AllocBaseline is the committed ALLOC_BASELINE.json payload.
type AllocBaseline struct {
	Schema string `json:"schema"`
	// Package is the go build pattern measured.
	Package string `json:"package"`
	// Files lists the hot-path files in scope (base names).
	Files []string `json:"files"`
	// GoVersion is the toolchain the sites were recorded with.
	GoVersion string `json:"go_version"`
	// Sites are the accepted escapes, sorted by (file, message).
	Sites []AllocSite `json:"sites"`
}

// AllocConfig scopes the alloc-baseline analyzer.
type AllocConfig struct {
	// Package is the build pattern whose escape diagnostics are read.
	Package string
	// Files are the hot-path file base names in scope.
	Files []string
	// RequireNote lists the files whose baseline entries must carry a
	// justifying note: files outside the dispatch loop proper, where
	// an escape is not self-evidently "the known boxing bottleneck".
	RequireNote []string
}

// DefaultAllocConfig scopes the analyzer to the VM hot path: the two
// dispatch-loop files (whose boxing escapes are the roadmap's known
// bottleneck) plus the machine state and value representation files,
// where every escape must carry an explicit justification.
func DefaultAllocConfig() AllocConfig {
	return AllocConfig{
		Package:     "./internal/vm",
		Files:       []string{"exec.go", "fuse.go", "machine.go", "value.go"},
		RequireNote: []string{"machine.go", "value.go"},
	}
}

var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.+)$`)

// MeasureEscapes compiles cfg.Package with -gcflags=-m under root and
// returns the in-scope escape sites. The go tool replays compiler
// diagnostics from the build cache, so repeated runs are cheap.
func MeasureEscapes(root string, cfg AllocConfig) ([]AllocSite, string, error) {
	version, err := goVersion(root)
	if err != nil {
		return nil, "", err
	}
	cmd := exec.Command("go", "build", "-gcflags=-m", cfg.Package)
	cmd.Dir = root
	var errb bytes.Buffer
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, "", fmt.Errorf("srclint: go build -gcflags=-m %s: %v\n%s", cfg.Package, err, errb.String())
	}
	return ParseEscapes(errb.String(), cfg.Files), version, nil
}

// ParseEscapes extracts the escape sites from -gcflags=-m output,
// keeping only "escapes to heap" / "moved to heap" diagnostics in the
// given files (matched by base name). Exported so tests can feed
// captured compiler output instead of shelling out.
func ParseEscapes(output string, files []string) []AllocSite {
	inScope := map[string]bool{}
	for _, f := range files {
		inScope[f] = true
	}
	type key struct{ file, msg string }
	counts := map[key]*AllocSite{}
	for _, line := range strings.Split(output, "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[3]
		if !strings.HasSuffix(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		file := path.Clean(strings.ReplaceAll(m[1], "\\", "/"))
		if !inScope[path.Base(file)] {
			continue
		}
		k := key{file, msg}
		if s := counts[k]; s != nil {
			s.Count++
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		counts[k] = &AllocSite{File: file, Message: msg, Count: 1, line: ln}
	}
	sites := make([]AllocSite, 0, len(counts))
	for _, s := range counts {
		sites = append(sites, *s)
	}
	sortSites(sites)
	return sites
}

func sortSites(sites []AllocSite) {
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].File != sites[j].File {
			return sites[i].File < sites[j].File
		}
		return sites[i].Message < sites[j].Message
	})
}

// DiffAlloc gates current escape sites against the baseline. It
// returns findings for every new site, every grown site, and every
// baseline entry that lacks its required justification; stale baseline
// entries (recorded but no longer reported) come back as warnings, not
// findings, so an improvement never fails the gate — it just asks for
// a baseline refresh.
func DiffAlloc(base *AllocBaseline, current []AllocSite, goVersion string, cfg AllocConfig) ([]findings.Finding, []string, error) {
	if base.Schema != AllocBaselineSchema {
		return nil, nil, fmt.Errorf("srclint: baseline schema %q, want %q", base.Schema, AllocBaselineSchema)
	}
	if bv, cv := majorMinor(base.GoVersion), majorMinor(goVersion); bv != cv {
		return nil, nil, fmt.Errorf(
			"srclint: baseline recorded with %s but current toolchain is %s; escape diagnostics are toolchain-specific — run with %s or regenerate the baseline (lsrvet -write)",
			base.GoVersion, goVersion, bv)
	}
	requireNote := map[string]bool{}
	for _, f := range cfg.RequireNote {
		requireNote[f] = true
	}
	type key struct{ file, msg string }
	baseBy := map[key]AllocSite{}
	var fs []findings.Finding
	for _, s := range base.Sites {
		baseBy[key{s.File, s.Message}] = s
		if requireNote[path.Base(s.File)] && s.Note == "" {
			fs = append(fs, allocFinding("unjustified-escape", s,
				fmt.Sprintf("baseline escape in %s has no justifying note: %s", s.File, s.Message)))
		}
	}
	seen := map[key]bool{}
	for _, s := range current {
		k := key{s.File, s.Message}
		seen[k] = true
		b, ok := baseBy[k]
		switch {
		case !ok:
			fs = append(fs, allocFinding("new-heap-escape", s,
				fmt.Sprintf("new heap-escape site in hot path: %s: %s (eliminate it or add it to %s with a note)",
					s.File, s.Message, "ALLOC_BASELINE.json")))
		case s.Count > b.Count:
			fs = append(fs, allocFinding("heap-escape-growth", s,
				fmt.Sprintf("escape %q in %s grew from %d to %d occurrences", s.Message, s.File, b.Count, s.Count)))
		}
	}
	var stale []string
	for _, s := range base.Sites {
		if !seen[key{s.File, s.Message}] {
			stale = append(stale, fmt.Sprintf("%s: %s (baseline count %d, now gone — refresh with lsrvet -write)", s.File, s.Message, s.Count))
		}
	}
	sort.Strings(stale)
	return fs, stale, nil
}

func allocFinding(kind string, s AllocSite, msg string) findings.Finding {
	return findings.Finding{
		Tool: "srclint", Kind: kind,
		File: s.File, Line: s.line,
		PC: -1, Reg: -1, Slot: -1, CallPC: -1,
		Msg: msg,
	}
}

// NewBaseline builds a baseline from measured sites, carrying over the
// notes of an old baseline (matched by file and message) so -write
// refreshes counts without losing justifications.
func NewBaseline(cfg AllocConfig, goVersion string, sites []AllocSite, old *AllocBaseline) *AllocBaseline {
	type key struct{ file, msg string }
	notes := map[key]string{}
	if old != nil {
		for _, s := range old.Sites {
			if s.Note != "" {
				notes[key{s.File, s.Message}] = s.Note
			}
		}
	}
	out := &AllocBaseline{
		Schema:    AllocBaselineSchema,
		Package:   cfg.Package,
		Files:     cfg.Files,
		GoVersion: goVersion,
		Sites:     append([]AllocSite(nil), sites...),
	}
	for i := range out.Sites {
		out.Sites[i].Note = notes[key{out.Sites[i].File, out.Sites[i].Message}]
		out.Sites[i].line = 0
	}
	sortSites(out.Sites)
	return out
}

// ReadBaseline parses an ALLOC_BASELINE.json payload.
func ReadBaseline(data []byte) (*AllocBaseline, error) {
	var b AllocBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("srclint: parse baseline: %v", err)
	}
	return &b, nil
}

// WriteJSON renders the baseline as indented JSON with a trailing
// newline, the exact bytes committed as ALLOC_BASELINE.json.
func (b *AllocBaseline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// goVersion reports the toolchain `go build` under root will use.
func goVersion(root string) (string, error) {
	cmd := exec.Command("go", "env", "GOVERSION")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("srclint: go env GOVERSION: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// majorMinor reduces "go1.24.0" to "go1.24".
func majorMinor(v string) string {
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return v
	}
	return parts[0] + "." + parts[1]
}
