package srclint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"
)

// Loader memoizes the expensive front half of the suite: one
// `go list -deps -export` walk plus one type-check of the whole module,
// shared by every analyzer that needs resolved syntax instead of being
// re-run per analyzer. It also times the pass so the gate can report
// where lsrvet time goes (see Run's timing line in scripts/check.sh
// output).
type Loader struct {
	// Root is the module root directory.
	Root string

	once sync.Once
	pkgs []*Pkg
	err  error
	// LoadTime is the wall time of the single list+parse+check pass
	// (zero until Packages is first called).
	LoadTime time.Duration
}

// NewLoader returns a loader for the module at root.
func NewLoader(root string) *Loader { return &Loader{Root: root} }

// Packages type-checks the whole module on first use and returns the
// shared result to every caller.
func (l *Loader) Packages() ([]*Pkg, error) {
	l.once.Do(func() {
		start := time.Now()
		l.pkgs, l.err = LoadPackages(l.Root, "./...")
		l.LoadTime = time.Since(start)
	})
	return l.pkgs, l.err
}

// Package returns one loaded package by import path.
func (l *Loader) Package(path string) (*Pkg, error) {
	pkgs, err := l.Packages()
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if p.Path == path {
			return p, nil
		}
	}
	return nil, fmt.Errorf("srclint: package %s not found in module", path)
}

// Pkg is one type-checked package: its syntax plus the go/types
// objects the analyzers resolve names against.
type Pkg struct {
	// Path is the import path ("repro/internal/vm").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions every node in Files.
	Fset *token.FileSet
	// Files is the parsed, non-test syntax of the package.
	Files []*ast.File
	// Types is the checked package object.
	Types *types.Package
	// Info carries the resolved uses/defs/types/selections.
	Info *types.Info
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` under root and decodes the
// package stream. The -export flag makes the go tool compile every
// package (through the build cache) and report the path of its export
// data, which is what lets the analyzers type-check repository source
// with nothing but the standard library: imports resolve through the
// gc importer reading those export files.
func goList(root string, patterns ...string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("srclint: go list %v: %v\n%s", patterns, err, errb.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(&out)
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("srclint: parse go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("srclint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadPackages type-checks the packages matching the given go patterns
// (relative to the module root) from source, resolving their imports
// through compiled export data. Test files are excluded — the negative
// corpora deliberately violate the invariants in _test.go files, and
// the contracts the analyzers prove bind only shipped code.
func LoadPackages(root string, patterns ...string) ([]*Pkg, error) {
	listed, err := goList(root, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("srclint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Pkg
	for _, p := range listed {
		if p.DepOnly {
			continue
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("srclint: %v", err)
			}
			files = append(files, f)
		}
		pkg, info, err := check(p.ImportPath, fset, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, &Pkg{
			Path:  p.ImportPath,
			Dir:   p.Dir,
			Fset:  fset,
			Files: files,
			Types: pkg,
			Info:  info,
		})
	}
	return out, nil
}

// CheckSource type-checks a single in-memory file as its own package.
// It is the test harness for the analyzers' negative corpora: snippets
// are self-contained (import nothing), so no importer is needed.
func CheckSource(path, src string) (*Pkg, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("srclint: %v", err)
	}
	files := []*ast.File{f}
	pkg, info, err := check(path, fset, files, nil)
	if err != nil {
		return nil, err
	}
	return &Pkg{Path: path, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

func check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("srclint: type-check %s: %v", path, err)
	}
	return pkg, info, nil
}

// position renders a node's file-relative location for findings. The
// file path is made relative to root when possible so findings are
// stable across checkouts.
func position(root string, fset *token.FileSet, pos token.Pos) (file string, line int) {
	p := fset.Position(pos)
	file = p.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
			file = filepath.ToSlash(rel)
		}
	}
	return file, p.Line
}
