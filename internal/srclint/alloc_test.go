package srclint

import (
	"os"
	"strings"
	"testing"
)

// sampleM is captured-style `go build -gcflags=-m` output: inline
// decisions (ignored), escapes in scope, an escape in an out-of-scope
// file, and a message that repeats at two positions.
const sampleM = `# repro/internal/vm
internal/vm/exec.go:10:6: can inline (*Machine).step
internal/vm/exec.go:42:14: &RuntimeError{...} escapes to heap
internal/vm/exec.go:97:14: &RuntimeError{...} escapes to heap
internal/vm/machine.go:12:9: new(int) escapes to heap
internal/vm/machine.go:30:2: moved to heap: scratch
internal/vm/other.go:5:9: &Thing{...} escapes to heap
internal/vm/exec.go:50:3: inlining call to tick
`

func allocCfg() AllocConfig {
	return AllocConfig{
		Package:     "./internal/vm",
		Files:       []string{"exec.go", "machine.go"},
		RequireNote: []string{"machine.go"},
	}
}

func TestParseEscapes(t *testing.T) {
	sites := ParseEscapes(sampleM, allocCfg().Files)
	want := []AllocSite{
		{File: "internal/vm/exec.go", Message: "&RuntimeError{...} escapes to heap", Count: 2},
		{File: "internal/vm/machine.go", Message: "moved to heap: scratch", Count: 1},
		{File: "internal/vm/machine.go", Message: "new(int) escapes to heap", Count: 1},
	}
	if len(sites) != len(want) {
		t.Fatalf("got %d sites, want %d: %+v", len(sites), len(want), sites)
	}
	for i := range want {
		if sites[i].File != want[i].File || sites[i].Message != want[i].Message || sites[i].Count != want[i].Count {
			t.Errorf("site %d = %+v, want %+v", i, sites[i], want[i])
		}
	}
	if sites[0].line != 42 {
		t.Errorf("first occurrence line = %d, want 42", sites[0].line)
	}
}

func allocBase(t *testing.T) *AllocBaseline {
	t.Helper()
	sites := ParseEscapes(sampleM, allocCfg().Files)
	b := NewBaseline(allocCfg(), "go1.24.0", sites, nil)
	// Give the RequireNote file entries their justifications.
	for i := range b.Sites {
		if strings.HasSuffix(b.Sites[i].File, "machine.go") {
			b.Sites[i].Note = "test justification"
		}
	}
	return b
}

func TestDiffAllocClean(t *testing.T) {
	b := allocBase(t)
	fs, stale, err := DiffAlloc(b, ParseEscapes(sampleM, allocCfg().Files), "go1.24.3", allocCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 || len(stale) != 0 {
		t.Fatalf("expected clean diff, got findings %+v stale %v", fs, stale)
	}
}

func TestDiffAllocNewSite(t *testing.T) {
	b := allocBase(t)
	cur := sampleM + "internal/vm/exec.go:120:9: make([]byte, n) escapes to heap\n"
	fs, _, err := DiffAlloc(b, ParseEscapes(cur, allocCfg().Files), "go1.24.0", allocCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Kind != "new-heap-escape" {
		t.Fatalf("expected one new-heap-escape, got %+v", fs)
	}
	if fs[0].File != "internal/vm/exec.go" || fs[0].Line != 120 {
		t.Errorf("finding anchored at %s:%d, want internal/vm/exec.go:120", fs[0].File, fs[0].Line)
	}
}

func TestDiffAllocGrowth(t *testing.T) {
	b := allocBase(t)
	cur := sampleM + "internal/vm/exec.go:200:14: &RuntimeError{...} escapes to heap\n"
	fs, _, err := DiffAlloc(b, ParseEscapes(cur, allocCfg().Files), "go1.24.0", allocCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Kind != "heap-escape-growth" {
		t.Fatalf("expected one heap-escape-growth, got %+v", fs)
	}
	if !strings.Contains(fs[0].Msg, "grew from 2 to 3") {
		t.Errorf("growth message = %q", fs[0].Msg)
	}
}

func TestDiffAllocUnjustified(t *testing.T) {
	sites := ParseEscapes(sampleM, allocCfg().Files)
	b := NewBaseline(allocCfg(), "go1.24.0", sites, nil) // no notes at all
	fs, _, err := DiffAlloc(b, sites, "go1.24.0", allocCfg())
	if err != nil {
		t.Fatal(err)
	}
	// machine.go has two entries, both noteless; exec.go needs none.
	var kinds []string
	for _, f := range fs {
		kinds = append(kinds, f.Kind)
	}
	if len(fs) != 2 || fs[0].Kind != "unjustified-escape" || fs[1].Kind != "unjustified-escape" {
		t.Fatalf("expected two unjustified-escape findings, got %v", kinds)
	}
}

func TestDiffAllocStaleIsWarning(t *testing.T) {
	b := allocBase(t)
	cur := strings.ReplaceAll(sampleM, "internal/vm/machine.go:12:9: new(int) escapes to heap\n", "")
	fs, stale, err := DiffAlloc(b, ParseEscapes(cur, allocCfg().Files), "go1.24.0", allocCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("improvement must not produce findings, got %+v", fs)
	}
	if len(stale) != 1 || !strings.Contains(stale[0], "new(int) escapes to heap") {
		t.Fatalf("expected one stale warning, got %v", stale)
	}
}

func TestDiffAllocToolchainMismatch(t *testing.T) {
	b := allocBase(t)
	_, _, err := DiffAlloc(b, nil, "go1.25.1", allocCfg())
	if err == nil || !strings.Contains(err.Error(), "toolchain") {
		t.Fatalf("expected toolchain mismatch error, got %v", err)
	}
}

func TestDiffAllocSchemaMismatch(t *testing.T) {
	b := allocBase(t)
	b.Schema = "lsr/alloc-baseline/v0"
	_, _, err := DiffAlloc(b, nil, "go1.24.0", allocCfg())
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("expected schema mismatch error, got %v", err)
	}
}

func TestNewBaselinePreservesNotes(t *testing.T) {
	old := allocBase(t)
	fresh := NewBaseline(allocCfg(), "go1.24.9", ParseEscapes(sampleM, allocCfg().Files), old)
	if fresh.GoVersion != "go1.24.9" {
		t.Errorf("GoVersion = %q", fresh.GoVersion)
	}
	for _, s := range fresh.Sites {
		if strings.HasSuffix(s.File, "machine.go") && s.Note != "test justification" {
			t.Errorf("note lost on refresh: %+v", s)
		}
	}
}

// TestRealBaselineReportsReintroducedBoxing runs the diff against the
// COMMITTED ALLOC_BASELINE.json (not a synthetic corpus): it simulates
// a hot-path regression by re-adding an interface-boxing escape that
// the tagged value representation removed ("xn + yn escapes to heap"
// was a real pre-overhaul site) and requires the gate to fire. This is
// the proof that the shrunken baseline actually protects the win: a
// PR that reintroduces per-result boxing in the dispatch loop cannot
// pass lsrvet.
func TestRealBaselineReportsReintroducedBoxing(t *testing.T) {
	data, err := os.ReadFile("../../ALLOC_BASELINE.json")
	if err != nil {
		t.Fatal(err)
	}
	base, err := ReadBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultAllocConfig()
	cur := append([]AllocSite(nil), base.Sites...)
	boxing := AllocSite{
		File:    "internal/vm/exec.go",
		Message: "xn + yn escapes to heap",
		Count:   2,
		line:    314,
	}
	cur = append(cur, boxing)
	sortSites(cur)

	fs, stale, err := DiffAlloc(base, cur, base.GoVersion, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 0 {
		t.Errorf("unexpected stale entries: %v", stale)
	}
	if len(fs) != 1 || fs[0].Kind != "new-heap-escape" {
		t.Fatalf("expected exactly one new-heap-escape, got %+v", fs)
	}
	if !strings.Contains(fs[0].Msg, "xn + yn escapes to heap") {
		t.Errorf("finding does not name the boxing site: %q", fs[0].Msg)
	}

	// Sanity: the committed baseline itself must diff clean against its
	// own sites (no unjustified machine.go/value.go entries survive).
	if fs, _, err := DiffAlloc(base, base.Sites, base.GoVersion, cfg); err != nil || len(fs) != 0 {
		t.Fatalf("committed baseline not self-clean: err=%v findings=%+v", err, fs)
	}
}

// TestRealBaselineReportsReintroducedClosureAlloc: the closure-slab
// overhaul (PR 10) moved closure allocation off the Go heap and into
// the per-machine arena, so the committed ALLOC_BASELINE.json no
// longer carries a "&Closure{...} escapes to heap" entry for either
// engine. This test proves the shrunken baseline defends that win the
// same way the boxing test above defends the tagged representation: a
// PR that reverts an engine's OpClosure arm to a heap literal — or
// re-adds the per-closure make([]prim.Value, ...) free slice — cannot
// pass lsrvet.
func TestRealBaselineReportsReintroducedClosureAlloc(t *testing.T) {
	data, err := os.ReadFile("../../ALLOC_BASELINE.json")
	if err != nil {
		t.Fatal(err)
	}
	base, err := ReadBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range base.Sites {
		if strings.Contains(s.Message, "&Closure{...}") {
			t.Fatalf("baseline still carries a closure heap site (%+v); the slab overhaul should have removed it", s)
		}
	}
	cfg := DefaultAllocConfig()
	cur := append([]AllocSite(nil), base.Sites...)
	cur = append(cur,
		AllocSite{
			File:    "internal/vm/exec.go",
			Message: "&Closure{...} escapes to heap",
			Count:   1,
			line:    936,
		},
		AllocSite{
			File:    "internal/vm/exec.go",
			Message: "make([]prim.Value, len(d.regs)) escapes to heap",
			Count:   1,
			line:    928,
		})
	sortSites(cur)

	fs, stale, err := DiffAlloc(base, cur, base.GoVersion, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 0 {
		t.Errorf("unexpected stale entries: %v", stale)
	}
	if len(fs) != 2 {
		t.Fatalf("expected two new-heap-escape findings, got %+v", fs)
	}
	var sawClosure, sawSlice bool
	for _, f := range fs {
		if f.Kind != "new-heap-escape" {
			t.Errorf("finding kind = %q, want new-heap-escape", f.Kind)
		}
		if strings.Contains(f.Msg, "&Closure{...} escapes to heap") {
			sawClosure = true
		}
		if strings.Contains(f.Msg, "make([]prim.Value, len(d.regs)) escapes to heap") {
			sawSlice = true
		}
	}
	if !sawClosure || !sawSlice {
		t.Errorf("findings do not name both reintroduced closure sites: %+v", fs)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	b := allocBase(t)
	var sb strings.Builder
	if err := b.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != b.Schema || got.GoVersion != b.GoVersion || len(got.Sites) != len(b.Sites) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range b.Sites {
		if got.Sites[i] != b.Sites[i] {
			t.Errorf("site %d = %+v, want %+v", i, got.Sites[i], b.Sites[i])
		}
	}
}
