package srclint

// The program-immutability analyzer: a go/types proof that no shipped
// function outside an allowlisted constructor/decode set writes to
// vm.Program fields or the elements of their backing slices. The VM's
// concurrency contract (DESIGN.md §11, vm/concurrent_test.go) is
// "Program immutable after construction, Machine per-run": the service
// cache hands one *Program to many concurrent Machines, and the
// threaded engine's decode cache is built once and shared, so a single
// post-construction write is a data race and a cache-coherence bug.
// Until now only the race-detector tests spot-checked this; here it is
// enforced over every assignment in the module.
//
// What it proves: no assignment statement, ++/--, or copy() target in
// any non-test function of the module has a left-hand side that reaches
// a field of the target struct type (through any chain of selectors,
// indexes, and dereferences), except inside allowlisted functions.
//
// What it deliberately cannot prove: writes through an alias created
// before the check (a Program field slice stored into a local or passed
// to a callee and mutated there), writes via unsafe or reflection, and
// mutation of values *referenced by* fields (e.g. the prim.Def pointers
// in Prims). Aliased-slice mutation in particular is out of scope —
// catching it needs escape/alias analysis, not syntax — so the race
// tests remain the backstop for that class.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/findings"
)

// ImmutabilityConfig names the protected type and its allowed writers.
type ImmutabilityConfig struct {
	// Type is the protected struct type, fully qualified
	// ("repro/internal/vm.Program").
	Type string
	// Allow lists functions permitted to write, by types.Func.FullName
	// ("(*repro/internal/vm.Program).engine",
	// "repro/internal/codegen.Compile"). A closure inherits the
	// enclosing declaration's name.
	Allow []string
	// Forbid lists fully-qualified named types that must never be
	// reachable from the protected type's fields through any chain of
	// struct fields, pointers, slices, arrays, or maps. This is the
	// static form of the arena-ownership contract: a prim.Arena is
	// per-Machine mutable state, so a path from the shared Program to an
	// Arena would make arena recycling a data race even though no code
	// writes a Program field.
	Forbid []string
}

// DefaultImmutabilityConfig protects vm.Program. The only allowed
// writer is the engine() decode-cache initializer, which is guarded by
// sync.Once and therefore safe under the sharing contract. The codegen
// constructor builds the Program in one composite literal and never
// writes through it afterwards, so it needs no entry. The arena — and
// with it the pair, closure, and free-variable-slice slabs — is
// forbidden from being reachable at all: it belongs to exactly one
// Machine. prim.Closure is forbidden separately because closure
// objects live INSIDE the arena's slabs (PR 10): a declared path from
// the shared Program to a Closure would pin per-machine recycled
// memory into shared state even without naming the Arena type.
func DefaultImmutabilityConfig() ImmutabilityConfig {
	return ImmutabilityConfig{
		Type: "repro/internal/vm.Program",
		Allow: []string{
			"(*repro/internal/vm.Program).engine",
			// The arena seeded-violation corpus hand-assembles Programs
			// field by field; they are analyzed by internal/dataflow, never
			// run, and never shared with a Machine.
			"repro/internal/dataflow.corpusProgram",
			"repro/internal/dataflow.withConst",
			"repro/internal/dataflow.withPrim",
		},
		Forbid: []string{
			"repro/internal/prim.Arena",
			"repro/internal/prim.Closure",
		},
	}
}

// CheckImmutability proves the no-writes property over the given
// packages (normally every package in the module).
func CheckImmutability(root string, pkgs []*Pkg, cfg ImmutabilityConfig) []findings.Finding {
	allowed := map[string]bool{}
	for _, name := range cfg.Allow {
		allowed[name] = true
	}
	var fs []findings.Finding
	for _, pkg := range pkgs {
		c := &immutCheck{root: root, pkg: pkg, cfg: cfg, allowed: allowed}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				c.decl(decl)
			}
		}
		fs = append(fs, c.found...)
	}
	fs = append(fs, checkReachability(root, pkgs, cfg)...)
	return fs
}

// checkReachability proves that none of cfg.Forbid is reachable from
// the protected type's fields: it walks the field-type graph (structs,
// pointers, slices, arrays, maps) breadth-first from the protected
// struct and reports the access path to any forbidden type it reaches.
// Interfaces are opaque to the walk (a dynamic value could hide
// anything, but storing per-machine state behind an interface field of
// Program would already be a write-path violation), so the analyzer's
// claim is about the declared structure.
func checkReachability(root string, pkgs []*Pkg, cfg ImmutabilityConfig) []findings.Finding {
	if len(cfg.Forbid) == 0 {
		return nil
	}
	forbidden := map[string]bool{}
	for _, name := range cfg.Forbid {
		forbidden[name] = true
	}
	var fs []findings.Finding
	for _, pkg := range pkgs {
		named := lookupNamed(pkg, cfg.Type)
		if named == nil {
			continue
		}
		w := &reachWalk{root: root, pkg: pkg, forbidden: forbidden, seen: map[*types.Named]bool{}}
		w.walkNamed(named, cfg.Type, named.Obj().Pos())
		fs = append(fs, w.found...)
	}
	return fs
}

// lookupNamed resolves a fully-qualified type name inside pkg's scope,
// returning nil when pkg does not define it.
func lookupNamed(pkg *Pkg, full string) *types.Named {
	dot := lastDot(full)
	if dot < 0 || pkg.Path != full[:dot] {
		return nil
	}
	obj := pkg.Types.Scope().Lookup(full[dot+1:])
	if obj == nil {
		return nil
	}
	named, _ := types.Unalias(obj.Type()).(*types.Named)
	return named
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

type reachWalk struct {
	root      string
	pkg       *Pkg
	forbidden map[string]bool
	seen      map[*types.Named]bool
	found     []findings.Finding
}

// walkNamed expands a named type's underlying struct, if any.
func (w *reachWalk) walkNamed(n *types.Named, path string, at token.Pos) {
	if w.seen[n] {
		return
	}
	w.seen[n] = true
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		w.walkType(f.Type(), path+"."+f.Name(), f.Pos())
	}
}

// walkType follows one field type through containers to named types.
func (w *reachWalk) walkType(t types.Type, path string, at token.Pos) {
	switch u := types.Unalias(t).(type) {
	case *types.Pointer:
		w.walkType(u.Elem(), path, at)
	case *types.Slice:
		w.walkType(u.Elem(), path, at)
	case *types.Array:
		w.walkType(u.Elem(), path, at)
	case *types.Map:
		w.walkType(u.Key(), path, at)
		w.walkType(u.Elem(), path, at)
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil && w.forbidden[obj.Pkg().Path()+"."+obj.Name()] {
			file, line := position(w.root, w.pkg.Fset, at)
			w.found = append(w.found, findings.Finding{
				Tool: "srclint", Kind: "arena-reachable",
				File: file, Line: line,
				PC: -1, Reg: -1, Slot: -1, CallPC: -1,
				Msg: fmt.Sprintf("forbidden type %s.%s is reachable from the shared program as %s: per-machine mutable state must not hang off a type shared by concurrent machines",
					obj.Pkg().Path(), obj.Name(), path),
			})
			return
		}
		w.walkNamed(u, path, at)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			w.walkType(f.Type(), path+"."+f.Name(), f.Pos())
		}
	}
}

type immutCheck struct {
	root    string
	pkg     *Pkg
	cfg     ImmutabilityConfig
	allowed map[string]bool
	// fn is the enclosing declaration's full name during traversal.
	fn    string
	found []findings.Finding
}

func (c *immutCheck) decl(decl ast.Decl) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Body == nil {
			return
		}
		name := c.pkg.Path + ".?"
		if obj, ok := c.pkg.Info.Defs[d.Name].(*types.Func); ok {
			name = obj.FullName()
		}
		c.fn = name
		ast.Inspect(d.Body, c.visit)
	case *ast.GenDecl:
		// Package-level var initializers can write through composite
		// expressions; attribute them to the package's init.
		c.fn = c.pkg.Path + ".init"
		ast.Inspect(d, c.visit)
	}
}

func (c *immutCheck) visit(n ast.Node) bool {
	switch st := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range st.Lhs {
			c.checkWrite(lhs, "assignment")
		}
	case *ast.IncDecStmt:
		c.checkWrite(st.X, "increment")
	case *ast.CallExpr:
		// copy(dst, ...) writes through dst's backing array.
		if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "copy" && len(st.Args) == 2 {
			if obj, ok := c.pkg.Info.Uses[id].(*types.Builtin); ok && obj.Name() == "copy" {
				c.checkWrite(st.Args[0], "copy into")
			}
		}
	}
	return true
}

// checkWrite reports lhs when it reaches a field of the protected type:
// it walks down through parens, indexes, slices, and dereferences, and
// flags the first selector whose base is the protected struct.
func (c *immutCheck) checkWrite(lhs ast.Expr, how string) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SliceExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if c.isProtected(e.X) {
				if !c.allowed[c.fn] {
					c.report(e, how, e.Sel.Name)
				}
				return
			}
			lhs = e.X
		default:
			return
		}
	}
}

// isProtected reports whether expr's type is the protected struct type
// (or a pointer to it).
func (c *immutCheck) isProtected(expr ast.Expr) bool {
	tv, ok := c.pkg.Info.Types[expr]
	if !ok {
		return false
	}
	t := types.Unalias(tv.Type)
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path()+"."+obj.Name() == c.cfg.Type
}

func (c *immutCheck) report(sel *ast.SelectorExpr, how, field string) {
	file, line := position(c.root, c.pkg.Fset, sel.Pos())
	c.found = append(c.found, findings.Finding{
		Tool: "srclint", Kind: "program-mutation",
		File: file, Line: line,
		PC: -1, Reg: -1, Slot: -1, CallPC: -1,
		Msg: fmt.Sprintf("%s %s field %s in %s: %s is immutable after construction (shared by concurrent machines and the decode cache); construct a fresh value or allowlist the function with a justification",
			how, c.cfg.Type, field, c.fn, c.cfg.Type),
	})
}
