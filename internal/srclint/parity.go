package srclint

// The engine-parity analyzer: structural cross-checks between the two
// execution engines and their dispatch tables. TestEngineEquivalence
// proves the engines agree on every program it runs; this analyzer
// proves the table shapes agree on every opcode, so "forgot to add the
// case" drift surfaces as a named finding at lint time instead of a
// differential-test debugging session at run time. The checks:
//
//   - every Op constant has a case in the reference switch loop and in
//     the threaded engine's decoder (decodeOne);
//   - every dispatch code (xcode constant) has an arm in runThreaded,
//     except the ones configured as deliberately default-handled;
//   - the specialized-primitive table is closed: every spec code
//     specPrim can return has a compute case of the right arity
//     (specCompute1/specCompute2), so fused arms can never hit a
//     missing computation;
//   - the run-fusion tables agree: the opcode set fusible() accepts is
//     exactly the set fuse() installs a handler for, so a fusible run
//     can never be left with a nil handler;
//   - every handler-typed function performs its own step accounting
//     (calls tick), and every fused-pair arm charges the second
//     sub-instruction's counters, so counter/fuel parity with the
//     switch loop is structural, not incidental.
//
// What it deliberately cannot prove: that an arm's *body* matches the
// switch loop's semantics — that remains TestEngineEquivalence's job.
// Parity here is table-shape parity: presence, arity, and accounting.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/findings"
)

// ParityConfig names the engine surfaces the analyzer cross-checks.
// Every name is package-local to the analyzed package.
type ParityConfig struct {
	// OpType is the opcode constant type ("Op").
	OpType string
	// XType is the threaded engine's dispatch-code type ("xcode").
	XType string
	// SwitchFunc is the reference switch loop ("loop").
	SwitchFunc string
	// DecodeFunc is the threaded engine's decoder ("decodeOne").
	DecodeFunc string
	// ThreadedFunc is the threaded dispatch loop ("runThreaded").
	ThreadedFunc string
	// DefaultX lists XType constants deliberately handled by the
	// threaded loop's default arm ("xUnknown").
	DefaultX []string
	// HandlerType is the named slow-path/fused handler func type
	// ("handler"); functions of this type must call TickFunc.
	HandlerType string
	// TickFunc is the per-sub-instruction accounting method ("tick").
	TickFunc string
	// SpecFunc maps primitives to specialized codes ("specPrim").
	SpecFunc string
	// SpecCompute1 and SpecCompute2 are the shared compute functions
	// for one- and two-argument specialized primitives.
	SpecCompute1 string
	SpecCompute2 string
	// Spec2First is the first two-argument specialized code ("xPCons");
	// spec codes at or above it are two-argument, below one-argument.
	Spec2First string
	// FusibleFunc and FuseFunc are the run-fusion predicate and the
	// overlay installer whose opcode case sets must match.
	FusibleFunc string
	FuseFunc    string
	// FusedArms are the fused-pair arms in ThreadedFunc that execute a
	// second sub-instruction inline and must charge CounterFields for
	// it ("xPredBr", "xPrimSt", "xHeadSt").
	FusedArms []string
	// CounterFields are the counter selectors every fused arm must
	// touch ("Instructions", "Cycles").
	CounterFields []string
}

// DefaultParityConfig matches internal/vm's engine surfaces.
func DefaultParityConfig() ParityConfig {
	return ParityConfig{
		OpType:        "Op",
		XType:         "xcode",
		SwitchFunc:    "loop",
		DecodeFunc:    "decodeOne",
		ThreadedFunc:  "runThreaded",
		DefaultX:      []string{"xUnknown"},
		HandlerType:   "handler",
		TickFunc:      "tick",
		SpecFunc:      "specPrim",
		SpecCompute1:  "specCompute1",
		SpecCompute2:  "specCompute2",
		Spec2First:    "xPCons",
		FusibleFunc:   "fusible",
		FuseFunc:      "fuse",
		FusedArms:     []string{"xPredBr", "xPrimSt", "xHeadSt"},
		CounterFields: []string{"Instructions", "Cycles"},
	}
}

// CheckParity runs the engine cross-checks over the given package
// (normally internal/vm).
func CheckParity(root string, pkg *Pkg, cfg ParityConfig) ([]findings.Finding, error) {
	c := &parityCheck{root: root, pkg: pkg, cfg: cfg}
	return c.run()
}

type parityCheck struct {
	root  string
	pkg   *Pkg
	cfg   ParityConfig
	found []findings.Finding
}

func (c *parityCheck) run() ([]findings.Finding, error) {
	opConsts, err := c.constsOf(c.cfg.OpType)
	if err != nil {
		return nil, err
	}
	xConsts, err := c.constsOf(c.cfg.XType)
	if err != nil {
		return nil, err
	}

	// 1+2: opcode coverage in both engines' dispatch tables.
	c.checkCoverage(opConsts, c.cfg.SwitchFunc, "missing-switch-case",
		"the reference switch loop has no case for it; both engines must handle every opcode", nil)
	c.checkCoverage(opConsts, c.cfg.DecodeFunc, "missing-decode-case",
		"the threaded engine's decoder has no case for it, so it would decode as unknown and trap where the switch loop succeeds", nil)

	// 3: dispatch-code coverage in the threaded loop.
	defaultX := map[string]bool{}
	for _, n := range c.cfg.DefaultX {
		defaultX[n] = true
	}
	c.checkCoverage(xConsts, c.cfg.ThreadedFunc, "missing-threaded-arm",
		"the threaded dispatch loop has no arm for it", defaultX)

	// 4: the specialized-primitive table is closed.
	if err := c.checkSpecTable(xConsts); err != nil {
		return nil, err
	}

	// 5: run-fusion predicate and installer agree.
	c.checkFusionTables()

	// 6: handler functions perform their own accounting.
	c.checkHandlersTick()

	// 7: fused-pair arms charge the second sub-instruction.
	c.checkFusedArms()

	return c.found, nil
}

// constDecl is one constant of the watched type.
type constDecl struct {
	obj *types.Const
	pos token.Pos
}

// constsOf collects the package-level constants of the named type, in
// declaration (iota) order.
func (c *parityCheck) constsOf(typeName string) ([]constDecl, error) {
	tobj := c.pkg.Types.Scope().Lookup(typeName)
	if tobj == nil {
		return nil, fmt.Errorf("srclint: parity: type %s not found in %s", typeName, c.pkg.Path)
	}
	var out []constDecl
	for ident, obj := range c.pkg.Info.Defs {
		cobj, ok := obj.(*types.Const)
		if !ok || cobj.Parent() != c.pkg.Types.Scope() {
			continue
		}
		if types.Identical(cobj.Type(), tobj.Type()) {
			out = append(out, constDecl{obj: cobj, pos: ident.Pos()})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		vi, _ := constant.Int64Val(out[i].obj.Val())
		vj, _ := constant.Int64Val(out[j].obj.Val())
		return vi < vj
	})
	return out, nil
}

// funcBody returns the body of the package function or method with the
// given name (names are unique across the package's surfaces).
func (c *parityCheck) funcBody(name string) *ast.FuncDecl {
	for _, file := range c.pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name && fd.Body != nil {
				return fd
			}
		}
	}
	return nil
}

// caseConsts collects every constant of the watched set used as a
// switch-case expression anywhere in the function body (nested
// switches included).
func (c *parityCheck) caseConsts(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, expr := range cc.List {
			if id, ok := expr.(*ast.Ident); ok {
				if obj, ok := c.pkg.Info.Uses[id].(*types.Const); ok {
					out[obj.Name()] = true
				}
			}
		}
		return true
	})
	return out
}

func (c *parityCheck) checkCoverage(consts []constDecl, funcName, kind, why string, exempt map[string]bool) {
	fd := c.funcBody(funcName)
	if fd == nil {
		c.reportAt(token.NoPos, kind, fmt.Sprintf("dispatch function %s not found in %s", funcName, c.pkg.Path))
		return
	}
	covered := c.caseConsts(fd)
	for _, cd := range consts {
		name := cd.obj.Name()
		if exempt[name] || covered[name] {
			continue
		}
		c.reportAt(cd.pos, kind, fmt.Sprintf("%s is declared but %s: %s", name, funcName, why))
	}
}

// returnedConsts collects the constants of the watched type returned by
// the function (the spec table's range).
func (c *parityCheck) returnedConsts(fd *ast.FuncDecl, typeName string) map[string]constDecl {
	out := map[string]constDecl{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		if id, ok := ret.Results[0].(*ast.Ident); ok {
			if obj, ok := c.pkg.Info.Uses[id].(*types.Const); ok {
				if named, ok := types.Unalias(obj.Type()).(*types.Named); ok && named.Obj().Name() == typeName {
					out[obj.Name()] = constDecl{obj: obj, pos: id.Pos()}
				}
			}
		}
		return true
	})
	return out
}

func (c *parityCheck) checkSpecTable(xConsts []constDecl) error {
	specFd := c.funcBody(c.cfg.SpecFunc)
	c1 := c.funcBody(c.cfg.SpecCompute1)
	c2 := c.funcBody(c.cfg.SpecCompute2)
	if specFd == nil || c1 == nil || c2 == nil {
		c.reportAt(token.NoPos, "spec-table-mismatch", fmt.Sprintf(
			"specialized-primitive functions missing (%s/%s/%s)",
			c.cfg.SpecFunc, c.cfg.SpecCompute1, c.cfg.SpecCompute2))
		return nil
	}
	var spec2First int64 = -1
	for _, cd := range xConsts {
		if cd.obj.Name() == c.cfg.Spec2First {
			spec2First, _ = constant.Int64Val(cd.obj.Val())
		}
	}
	if spec2First < 0 {
		return fmt.Errorf("srclint: parity: Spec2First constant %s not found", c.cfg.Spec2First)
	}
	compute1 := c.caseConsts(c1)
	compute2 := c.caseConsts(c2)
	for name, cd := range c.returnedConsts(specFd, c.cfg.XType) {
		v, _ := constant.Int64Val(cd.obj.Val())
		if v < spec2First {
			if !compute1[name] {
				c.reportAt(cd.pos, "spec-table-mismatch", fmt.Sprintf(
					"%s returns %s but %s has no case for it: a fused arm hitting the type-miss fallback would lose the computation",
					c.cfg.SpecFunc, name, c.cfg.SpecCompute1))
			}
		} else if !compute2[name] {
			c.reportAt(cd.pos, "spec-table-mismatch", fmt.Sprintf(
				"%s returns %s but %s has no case for it: a fused arm hitting the type-miss fallback would lose the computation",
				c.cfg.SpecFunc, name, c.cfg.SpecCompute2))
		}
	}
	return nil
}

func (c *parityCheck) checkFusionTables() {
	fusible := c.funcBody(c.cfg.FusibleFunc)
	fuse := c.funcBody(c.cfg.FuseFunc)
	if fusible == nil || fuse == nil {
		c.reportAt(token.NoPos, "fusion-table-mismatch", fmt.Sprintf(
			"fusion functions missing (%s/%s)", c.cfg.FusibleFunc, c.cfg.FuseFunc))
		return
	}
	accepts := c.opCases(fusible)
	installs := c.opCases(fuse)
	for name := range accepts {
		if !installs[name] {
			c.reportAt(fusible.Pos(), "fusion-table-mismatch", fmt.Sprintf(
				"%s accepts %s but %s installs no run handler for it: a fused run would dispatch through a nil handler",
				c.cfg.FusibleFunc, name, c.cfg.FuseFunc))
		}
	}
	for name := range installs {
		if !accepts[name] {
			c.reportAt(fuse.Pos(), "fusion-table-mismatch", fmt.Sprintf(
				"%s installs a run handler for %s but %s never accepts it: dead fusion table entry",
				c.cfg.FuseFunc, name, c.cfg.FusibleFunc))
		}
	}
}

// opCases collects the OpType constants used as case expressions in fd.
func (c *parityCheck) opCases(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, expr := range cc.List {
			if id, ok := expr.(*ast.Ident); ok {
				if obj, ok := c.pkg.Info.Uses[id].(*types.Const); ok {
					if named, ok := types.Unalias(obj.Type()).(*types.Named); ok && named.Obj().Name() == c.cfg.OpType {
						out[obj.Name()] = true
					}
				}
			}
		}
		return true
	})
	return out
}

// checkHandlersTick requires every function of the handler type to call
// the tick accounting method: handlers own their per-sub-instruction
// dispatch-cycle and fuel charging, and one that skips it silently
// undercounts against the switch loop.
func (c *parityCheck) checkHandlersTick() {
	hobj := c.pkg.Types.Scope().Lookup(c.cfg.HandlerType)
	if hobj == nil {
		c.reportAt(token.NoPos, "handler-missing-tick", fmt.Sprintf(
			"handler type %s not found in %s", c.cfg.HandlerType, c.pkg.Path))
		return
	}
	hsig := hobj.Type().Underlying()
	for _, file := range c.pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil {
				continue
			}
			obj, ok := c.pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || !types.Identical(obj.Type().Underlying(), hsig) {
				continue
			}
			if !c.callsMethod(fd, c.cfg.TickFunc) {
				c.reportAt(fd.Pos(), "handler-missing-tick", fmt.Sprintf(
					"handler %s never calls %s: it executes sub-instructions without charging the dispatch cycle and fuel the switch loop charges",
					fd.Name.Name, c.cfg.TickFunc))
			}
		}
	}
}

func (c *parityCheck) callsMethod(fd *ast.FuncDecl, name string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// checkFusedArms requires the fused-pair arms of the threaded loop to
// increment each configured counter field: the second sub-instruction
// of a fused pair has no dispatch preamble of its own, so the arm body
// must charge its instruction and cycle explicitly.
func (c *parityCheck) checkFusedArms() {
	fd := c.funcBody(c.cfg.ThreadedFunc)
	if fd == nil {
		return // already reported by coverage check
	}
	want := map[string]bool{}
	for _, a := range c.cfg.FusedArms {
		want[a] = true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		var armName string
		for _, expr := range cc.List {
			if id, ok := expr.(*ast.Ident); ok && want[id.Name] {
				armName = id.Name
			}
		}
		if armName == "" {
			return true
		}
		touched := map[string]bool{}
		for _, stmt := range cc.Body {
			ast.Inspect(stmt, func(m ast.Node) bool {
				switch s := m.(type) {
				case *ast.IncDecStmt:
					if sel, ok := s.X.(*ast.SelectorExpr); ok {
						touched[sel.Sel.Name] = true
					}
				case *ast.AssignStmt:
					for _, lhs := range s.Lhs {
						if sel, ok := lhs.(*ast.SelectorExpr); ok {
							touched[sel.Sel.Name] = true
						}
					}
				}
				return true
			})
		}
		for _, field := range c.cfg.CounterFields {
			if !touched[field] {
				c.reportAt(cc.Pos(), "fused-arm-uncounted", fmt.Sprintf(
					"fused arm %s never touches counter %s: the second sub-instruction of the pair goes uncharged, breaking counter parity with the switch loop",
					armName, field))
			}
		}
		return true
	})
}

func (c *parityCheck) reportAt(pos token.Pos, kind, msg string) {
	var file string
	var line int
	if pos.IsValid() {
		file, line = position(c.root, c.pkg.Fset, pos)
	}
	c.found = append(c.found, findings.Finding{
		Tool: "srclint", Kind: kind,
		File: file, Line: line,
		PC: -1, Reg: -1, Slot: -1, CallPC: -1,
		Msg: msg,
	})
}
