package srclint

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/findings"
)

// immutSrc is the immutability negative corpus: a miniature Program
// with one allowlisted writer and six distinct violation shapes.
const immutSrc = `package vmtest

type Proc struct {
	Frame int
}

type Program struct {
	Code  []uint32
	Procs []Proc
	N     int
}

func (p *Program) engine() {
	p.Code = append(p.Code, 1)
}

func mutateDirect(p *Program) {
	p.Code = nil
}

func mutateElem(p *Program) {
	p.Code[0] = 7
}

func mutateInc(p *Program) {
	p.N++
}

func mutateCopy(p *Program, src []uint32) {
	copy(p.Code, src)
}

func mutateNested(p *Program) {
	p.Procs[0].Frame = 3
}

func mutateAlias(p *Program) {
	q := p
	q.N = 4
}

func readsOK(p *Program) int {
	n := p.N
	code := p.Code
	_ = code
	return n
}
`

func immutCfg() ImmutabilityConfig {
	return ImmutabilityConfig{
		Type:  "vmtest.Program",
		Allow: []string{"(*vmtest.Program).engine"},
	}
}

func checkImmutSrc(t *testing.T, src string, cfg ImmutabilityConfig) []findings.Finding {
	t.Helper()
	pkg, err := CheckSource("vmtest", src)
	if err != nil {
		t.Fatal(err)
	}
	return CheckImmutability("", []*Pkg{pkg}, cfg)
}

func TestImmutabilityViolations(t *testing.T) {
	fs := checkImmutSrc(t, immutSrc, immutCfg())
	wantIn := []string{
		"vmtest.mutateDirect",
		"vmtest.mutateElem",
		"vmtest.mutateInc",
		"vmtest.mutateCopy",
		"vmtest.mutateNested",
		"vmtest.mutateAlias",
	}
	if len(fs) != len(wantIn) {
		t.Fatalf("got %d findings, want %d: %+v", len(fs), len(wantIn), fs)
	}
	for i, fn := range wantIn {
		if fs[i].Kind != "program-mutation" {
			t.Errorf("finding %d kind = %q", i, fs[i].Kind)
		}
		if !strings.Contains(fs[i].Msg, "in "+fn+":") {
			t.Errorf("finding %d not attributed to %s: %q", i, fn, fs[i].Msg)
		}
		if fs[i].File != "vmtest.go" || fs[i].Line == 0 {
			t.Errorf("finding %d anchored at %s:%d", i, fs[i].File, fs[i].Line)
		}
	}
}

func TestImmutabilityAllowlist(t *testing.T) {
	fs := checkImmutSrc(t, immutSrc, immutCfg())
	for _, f := range fs {
		if strings.Contains(f.Msg, "engine") {
			t.Errorf("allowlisted writer flagged: %q", f.Msg)
		}
	}
	// Without the allowlist, engine() is flagged too.
	cfg := immutCfg()
	cfg.Allow = nil
	all := checkImmutSrc(t, immutSrc, cfg)
	if len(all) != len(fs)+1 {
		t.Fatalf("expected exactly one extra finding without allowlist, got %d vs %d", len(all), len(fs))
	}
}

// TestArenaReachability seeds the violation the Forbid config exists
// for: a per-machine Arena reachable from the shared Program, here
// buried two hops deep behind a pointer and a slice so the walk has to
// actually traverse the field graph.
func TestArenaReachability(t *testing.T) {
	src := `package vmtest

type Arena struct{ n int }

type Ctx struct {
	Out   int
	Arena *Arena
}

type ProcInfo struct {
	Name string
	Ctxs []Ctx
}

type Program struct {
	Code  []uint32
	Procs []ProcInfo
}

// Machine may hold an Arena: it is per-run state, not shared.
type Machine struct {
	prog  *Program
	arena *Arena
}
`
	cfg := immutCfg()
	cfg.Forbid = []string{"vmtest.Arena"}
	fs := checkImmutSrc(t, src, cfg)
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(fs), fs)
	}
	f := fs[0]
	if f.Kind != "arena-reachable" {
		t.Errorf("kind = %q", f.Kind)
	}
	if !strings.Contains(f.Msg, "vmtest.Program.Procs.Ctxs.Arena") {
		t.Errorf("finding does not name the access path: %q", f.Msg)
	}
	if f.File != "vmtest.go" || f.Line == 0 {
		t.Errorf("finding anchored at %s:%d", f.File, f.Line)
	}

	// The same layout without the offending field is clean: the Machine's
	// own arena pointer must NOT trip the check (Machine is not Program).
	clean := strings.Replace(src, "\tArena *Arena\n", "", 1)
	if fs := checkImmutSrc(t, clean, cfg); len(fs) != 0 {
		t.Fatalf("arena-free layout flagged: %+v", fs)
	}
}

// TestArenaReachabilityCycle guards the walk against recursive types.
func TestArenaReachabilityCycle(t *testing.T) {
	src := `package vmtest

type Program struct {
	Next *Program
	Tree *Node
}

type Node struct {
	Kids []*Node
}
`
	cfg := immutCfg()
	cfg.Forbid = []string{"vmtest.Arena"}
	if fs := checkImmutSrc(t, src, cfg); len(fs) != 0 {
		t.Fatalf("cyclic layout flagged: %+v", fs)
	}
}

func TestImmutabilityUnrelatedTypePasses(t *testing.T) {
	src := `package vmtest

type Program struct{ N int }
type Other struct{ N int }

func fine(o *Other) {
	o.N = 1
	o.N++
}
`
	if fs := checkImmutSrc(t, src, immutCfg()); len(fs) != 0 {
		t.Fatalf("writes to unrelated type flagged: %+v", fs)
	}
}

// TestImmutabilityGolden pins the exact findings JSON the corpus
// produces, so the report shape consumed by CI is itself under test.
func TestImmutabilityGolden(t *testing.T) {
	fs := checkImmutSrc(t, immutSrc, immutCfg())
	res := &Result{Findings: fs}
	var buf bytes.Buffer
	if err := findings.WriteJSON(&buf, res.Report()); err != nil {
		t.Fatal(err)
	}
	goldenPath := "testdata/immutable_golden.json"
	if os.Getenv("SRCLINT_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with SRCLINT_UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("findings JSON drifted from %s (regenerate with SRCLINT_UPDATE_GOLDEN=1):\n%s", goldenPath, buf.String())
	}
}
