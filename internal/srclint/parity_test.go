package srclint

import (
	"strings"
	"testing"

	"repro/internal/findings"
)

// paritySrc is a miniature two-engine VM with every surface the parity
// analyzer cross-checks, in a consistent (clean) state. The violation
// tests below each break exactly one invariant by string surgery.
const paritySrc = `package vmtest

type Op byte
type xcode byte

const (
	OpHalt Op = iota
	OpAdd
	OpJump
)

const (
	xUnknown xcode = iota
	xHalt
	xAdd
	xJump
	xPCar
	xPCons
	xPredBr
)

type Machine struct {
	Instructions int
	Cycles       int
}

type dcode struct{ op xcode }

type handler func(m *Machine, d *dcode) error

func (m *Machine) tick() { m.Cycles++ }

func loop(m *Machine, op Op) {
	switch op {
	case OpHalt:
	case OpAdd:
	case OpJump:
	}
}

func decodeOne(op Op) xcode {
	switch op {
	case OpHalt:
		return xHalt
	case OpAdd:
		return xAdd
	case OpJump:
		return xJump
	}
	return xUnknown
}

func runThreaded(m *Machine, d *dcode) {
	switch d.op {
	case xHalt:
		m.tick()
	case xAdd:
		m.tick()
	case xJump:
		m.tick()
	case xPCar:
		m.tick()
	case xPCons:
		m.tick()
	case xPredBr:
		m.tick()
		m.Instructions++
		m.Cycles++
	}
}

func specPrim(name string) xcode {
	switch name {
	case "car":
		return xPCar
	case "cons":
		return xPCons
	}
	return xcode(0)
}

func specCompute1(x xcode) {
	switch x {
	case xPCar:
	}
}

func specCompute2(x xcode) {
	switch x {
	case xPCons:
	}
}

func fusible(op Op) bool {
	switch op {
	case OpAdd:
		return true
	}
	return false
}

func fuse(op Op, h handler) handler {
	switch op {
	case OpAdd:
		return h
	}
	return nil
}

func runHandler(m *Machine, d *dcode) error {
	m.tick()
	return nil
}
`

func parityCfg() ParityConfig {
	return ParityConfig{
		OpType:        "Op",
		XType:         "xcode",
		SwitchFunc:    "loop",
		DecodeFunc:    "decodeOne",
		ThreadedFunc:  "runThreaded",
		DefaultX:      []string{"xUnknown"},
		HandlerType:   "handler",
		TickFunc:      "tick",
		SpecFunc:      "specPrim",
		SpecCompute1:  "specCompute1",
		SpecCompute2:  "specCompute2",
		Spec2First:    "xPCons",
		FusibleFunc:   "fusible",
		FuseFunc:      "fuse",
		FusedArms:     []string{"xPredBr"},
		CounterFields: []string{"Instructions", "Cycles"},
	}
}

func checkParitySrc(t *testing.T, src string) []findings.Finding {
	t.Helper()
	pkg, err := CheckSource("vmtest", src)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := CheckParity("", pkg, parityCfg())
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// mutate replaces old with new exactly once, failing the test if the
// pattern is absent or ambiguous (which would silently test nothing).
func mutate(t *testing.T, src, old, new string) string {
	t.Helper()
	if n := strings.Count(src, old); n != 1 {
		t.Fatalf("mutation pattern occurs %d times, want 1: %q", n, old)
	}
	return strings.Replace(src, old, new, 1)
}

func TestParityClean(t *testing.T) {
	if fs := checkParitySrc(t, paritySrc); len(fs) != 0 {
		t.Fatalf("clean corpus produced findings: %+v", fs)
	}
}

func TestParityViolations(t *testing.T) {
	cases := []struct {
		name     string
		old, new string
		kind     string
		msgHas   string
	}{
		{
			name: "missing-switch-case",
			old:  "\tcase OpJump:\n\t}\n}\n\nfunc decodeOne",
			new:  "\t}\n}\n\nfunc decodeOne",
			kind: "missing-switch-case", msgHas: "OpJump",
		},
		{
			name: "missing-decode-case",
			old:  "\tcase OpJump:\n\t\treturn xJump\n",
			new:  "",
			kind: "missing-decode-case", msgHas: "OpJump",
		},
		{
			name: "missing-threaded-arm",
			old:  "\tcase xJump:\n\t\tm.tick()\n",
			new:  "",
			kind: "missing-threaded-arm", msgHas: "xJump",
		},
		{
			name: "spec-table-gap",
			old:  "func specCompute2(x xcode) {\n\tswitch x {\n\tcase xPCons:\n\t}\n}",
			new:  "func specCompute2(x xcode) {\n\tswitch x {\n\t}\n}",
			kind: "spec-table-mismatch", msgHas: "xPCons",
		},
		{
			name: "spec-table-gap-1arg",
			old:  "func specCompute1(x xcode) {\n\tswitch x {\n\tcase xPCar:\n\t}\n}",
			new:  "func specCompute1(x xcode) {\n\tswitch x {\n\t}\n}",
			kind: "spec-table-mismatch", msgHas: "xPCar",
		},
		{
			name: "fusible-without-fuse",
			old:  "func fuse(op Op, h handler) handler {\n\tswitch op {\n\tcase OpAdd:",
			new:  "func fuse(op Op, h handler) handler {\n\tswitch op {\n\tcase OpHalt:",
			kind: "fusion-table-mismatch", msgHas: "OpAdd",
		},
		{
			name: "handler-missing-tick",
			old:  "func runHandler(m *Machine, d *dcode) error {\n\tm.tick()\n\treturn nil\n}",
			new:  "func runHandler(m *Machine, d *dcode) error {\n\treturn nil\n}",
			kind: "handler-missing-tick", msgHas: "runHandler",
		},
		{
			name: "fused-arm-uncounted",
			old:  "\t\tm.tick()\n\t\tm.Instructions++\n\t\tm.Cycles++\n",
			new:  "\t\tm.tick()\n\t\tm.Cycles++\n",
			kind: "fused-arm-uncounted", msgHas: "Instructions",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := checkParitySrc(t, mutate(t, paritySrc, tc.old, tc.new))
			if len(fs) == 0 {
				t.Fatalf("violation not detected")
			}
			found := false
			for _, f := range fs {
				if f.Kind == tc.kind && strings.Contains(f.Msg, tc.msgHas) {
					found = true
				} else if f.Kind != tc.kind {
					t.Errorf("unexpected extra finding %s: %s", f.Kind, f.Msg)
				}
			}
			if !found {
				t.Fatalf("no %s finding mentioning %q in %+v", tc.kind, tc.msgHas, fs)
			}
		})
	}
}

// TestParityFuseDeadEntry covers the reverse fusion mismatch: an
// installer entry the predicate never accepts.
func TestParityFuseDeadEntry(t *testing.T) {
	src := mutate(t, paritySrc,
		"func fusible(op Op) bool {\n\tswitch op {\n\tcase OpAdd:",
		"func fusible(op Op) bool {\n\tswitch op {\n\tcase OpJump:")
	fs := checkParitySrc(t, src)
	var dead bool
	for _, f := range fs {
		if f.Kind == "fusion-table-mismatch" && strings.Contains(f.Msg, "dead fusion table entry") {
			dead = true
		}
	}
	if !dead {
		t.Fatalf("dead fusion entry not detected: %+v", fs)
	}
}
