package srclint

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsUnknownAnalyzer(t *testing.T) {
	_, err := Run(Options{Root: ".", Analyzers: []string{"bogus"}})
	if err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("expected unknown-analyzer error, got %v", err)
	}
}

func TestReportShape(t *testing.T) {
	res := &Result{Warnings: []string{"w"}}
	rep := res.Report()
	if rep.Tool != "srclint" {
		t.Errorf("tool = %q", rep.Tool)
	}
	if rep.Findings == nil {
		t.Error("findings must serialize as [], not null")
	}
}

// TestSeededViolations is the end-to-end smoke test: it copies the
// repository to a temp dir, seeds one violation per analyzer, and runs
// the full suite the way cmd/lsrvet does. This is the proof that the
// gate actually fires on the real module layout, not just on the
// in-memory corpora above.
func TestSeededViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and re-analyzes the whole module")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	if err := copyTree(root, tmp); err != nil {
		t.Fatal(err)
	}

	// Violation 1 (parity): an opcode neither engine handles.
	seed(t, filepath.Join(tmp, "internal/vm/zz_seeded.go"), `package vm

// OpBogus is a deliberately unhandled opcode (seeded violation).
const OpBogus Op = 201

// corruptProgram writes a Program field (seeded violation 2).
func corruptProgram(p *Program) {
	p.Code = nil
}
`)
	// Violation 3 (alloc): a new heap-escape site in a hot-path file.
	appendTo(t, filepath.Join(tmp, "internal/vm/machine.go"), `
// leakSeeded escapes deliberately (seeded violation).
func leakSeeded() *int {
	x := new(int)
	return x
}
`)
	// Violation 4 (arena reachability): a per-machine Arena field on the
	// shared Program, plus a slab-owned closure pointer (closures are
	// arena-backed since the closure-slab overhaul, so a declared path
	// from Program to a Closure pins recycled memory the same way).
	replaceIn(t, filepath.Join(tmp, "internal/vm/instr.go"),
		"type Program struct {",
		"type Program struct {\n\tSeededArena *prim.Arena // seeded violation\n\tSeededBoot *prim.Closure // seeded violation\n")

	res, err := Run(DefaultOptions(tmp))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"missing-switch-case": false,
		"missing-decode-case": false,
		"program-mutation":    false,
		"new-heap-escape":     false,
		"arena-reachable":     false,
	}
	for _, f := range res.Findings {
		if _, ok := want[f.Kind]; ok {
			want[f.Kind] = true
		} else {
			t.Errorf("unexpected finding on seeded copy: %s: %s", f.Kind, f.Msg)
		}
	}
	for kind, hit := range want {
		if !hit {
			t.Errorf("seeded violation not detected: %s", kind)
		}
	}
}

func seed(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func replaceIn(t *testing.T, path, old, new string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), old) {
		t.Fatalf("%s: seed anchor %q not found", path, old)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(data), old, new, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
}

func appendTo(t *testing.T, path, content string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteString(content); err != nil {
		t.Fatal(err)
	}
}

// copyTree copies the module working tree (regular files only, .git
// excluded) so tests can corrupt a throwaway checkout.
func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !d.Type().IsRegular() {
			return nil
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(filepath.Join(dst, rel))
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
}
