// Package prelude holds the Scheme-level run-time library. Primitives
// (package prim) are deliberately first-order, so the classic
// higher-order and list-walking procedures live here and are compiled or
// interpreted exactly like user code — which is also how Chez Scheme
// builds its own library, and is what makes library calls show up in the
// dynamic call-graph statistics of the paper's Table 2.
package prelude

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Version returns the hex SHA-256 of Source. Compiled output depends on
// the prelude text, so the hash participates in any content-addressed
// cache key over compilations (internal/service); it changes exactly
// when the library changes.
func Version() string {
	versionOnce.Do(func() {
		sum := sha256.Sum256([]byte(Source))
		version = hex.EncodeToString(sum[:])
	})
	return version
}

var (
	versionOnce sync.Once
	version     string
)

// Source is prepended to every program by both engines.
const Source = `
(define (not x) (if x #f #t))

(define (list? l)
  (if (null? l) #t (if (pair? l) (list? (cdr l)) #f)))

(define (length l)
  (let loop ([l l] [n 0])
    (if (null? l) n (loop (cdr l) (+ n 1)))))

(define (append a b)
  (if (null? a) b (cons (car a) (append (cdr a) b))))

(define (reverse l)
  (let loop ([l l] [acc '()])
    (if (null? l) acc (loop (cdr l) (cons (car l) acc)))))

(define (memq x l)
  (cond [(null? l) #f]
        [(eq? x (car l)) l]
        [else (memq x (cdr l))]))

(define (memv x l)
  (cond [(null? l) #f]
        [(eqv? x (car l)) l]
        [else (memv x (cdr l))]))

(define (member x l)
  (cond [(null? l) #f]
        [(equal? x (car l)) l]
        [else (member x (cdr l))]))

(define (assq x l)
  (cond [(null? l) #f]
        [(eq? x (car (car l))) (car l)]
        [else (assq x (cdr l))]))

(define (assv x l)
  (cond [(null? l) #f]
        [(eqv? x (car (car l))) (car l)]
        [else (assv x (cdr l))]))

(define (assoc x l)
  (cond [(null? l) #f]
        [(equal? x (car (car l))) (car l)]
        [else (assoc x (cdr l))]))

(define (list-tail l n)
  (if (zero? n) l (list-tail (cdr l) (- n 1))))

(define (list-ref l n)
  (if (zero? n) (car l) (list-ref (cdr l) (- n 1))))

(define (last-pair l)
  (if (pair? (cdr l)) (last-pair (cdr l)) l))

(define (map f l)
  (if (null? l) '() (cons (f (car l)) (map f (cdr l)))))

(define (map2 f l1 l2)
  (if (null? l1) '() (cons (f (car l1) (car l2)) (map2 f (cdr l1) (cdr l2)))))

(define (for-each f l)
  (if (null? l)
      (void)
      (begin (f (car l)) (for-each f (cdr l)))))

(define (for-each2 f l1 l2)
  (if (null? l1)
      (void)
      (begin (f (car l1) (car l2)) (for-each2 f (cdr l1) (cdr l2)))))

(define (filter p l)
  (cond [(null? l) '()]
        [(p (car l)) (cons (car l) (filter p (cdr l)))]
        [else (filter p (cdr l))]))

(define (fold-left f acc l)
  (if (null? l) acc (fold-left f (f acc (car l)) (cdr l))))

(define (fold-right f acc l)
  (if (null? l) acc (f (car l) (fold-right f acc (cdr l)))))

(define (iota n)
  (let loop ([i (- n 1)] [acc '()])
    (if (negative? i) acc (loop (- i 1) (cons i acc)))))

(define (list-copy l)
  (if (null? l) '() (cons (car l) (list-copy (cdr l)))))
`
