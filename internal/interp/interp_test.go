package interp

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/prelude"
	"repro/internal/prim"
)

// run evaluates src (with the prelude prepended) and returns the result's
// write representation.
func run(t *testing.T, src string) string {
	t.Helper()
	v, err := runErr(src)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return prim.WriteString(v)
}

func runErr(src string) (prim.Value, error) {
	prog, err := ast.ParseString(prelude.Source + "\n" + src)
	if err != nil {
		return prim.Value{}, err
	}
	in := New(nil)
	in.MaxSteps = 50_000_000
	return in.RunProgram(prog)
}

func TestBasicEval(t *testing.T) {
	cases := []struct{ src, want string }{
		{"42", "42"},
		{"(+ 1 2 3)", "6"},
		{"(- 10 3 2)", "5"},
		{"(* 2 3 4)", "24"},
		{"(quotient 17 5)", "3"},
		{"(remainder 17 5)", "2"},
		{"(modulo -7 3)", "2"},
		{"(if #t 1 2)", "1"},
		{"(if #f 1 2)", "2"},
		{"(if 0 1 2)", "1"}, // 0 is true in Scheme
		{"(let ([x 1] [y 2]) (+ x y))", "3"},
		{"(let* ([x 1] [y (+ x 1)]) y)", "2"},
		{"((lambda (x y) (* x y)) 3 4)", "12"},
		{"(begin 1 2 3)", "3"},
		{"(cons 1 2)", "(1 . 2)"},
		{"(car '(1 2))", "1"},
		{"(cdr '(1 2))", "(2)"},
		{"'sym", "sym"},
		{"(eq? 'a 'a)", "#t"},
		{"(equal? '(1 (2)) '(1 (2)))", "#t"},
		{"(and 1 2)", "2"},
		{"(and #f 2)", "#f"},
		{"(or #f 2)", "2"},
		{"(or 1 2)", "1"},
		{"(not 3)", "#f"},
		{"(cond [#f 1] [#t 2] [else 3])", "2"},
		{"(case 2 [(1) 'one] [(2 3) 'few] [else 'many])", "few"},
		{"(length '(a b c))", "3"},
		{"(append '(1 2) '(3))", "(1 2 3)"},
		{"(reverse '(1 2 3))", "(3 2 1)"},
		{"(map (lambda (x) (* x x)) '(1 2 3))", "(1 4 9)"},
		{"(assq 'b '((a 1) (b 2)))", "(b 2)"},
		{"(vector-ref (vector 1 2 3) 1)", "2"},
		{"(string-append \"a\" \"b\")", `"ab"`},
		{"(symbol->string 'abc)", `"abc"`},
		{"(char->integer #\\A)", "65"},
		{"(do ([i 0 (+ i 1)] [acc 1 (* acc 2)]) ((= i 4) acc))", "16"},
		{"(let loop ([i 0] [sum 0]) (if (= i 5) sum (loop (+ i 1) (+ sum i))))", "10"},
		{"(filter even? '(1 2 3 4 5 6))", "(2 4 6)"},
		{"(fold-left + 0 '(1 2 3 4))", "10"},
		{"(expt 2 10)", "1024"},
		{"(* 1.5 2)", "3."},
		{"(< 1 2 3)", "#t"},
		{"(< 1 3 2)", "#f"},
	}
	for _, c := range cases {
		if got := run(t, c.src); got != c.want {
			t.Errorf("eval(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestDefineAndRecursion(t *testing.T) {
	src := `
(define (fact n) (if (zero? n) 1 (* n (fact (- n 1)))))
(fact 10)`
	if got := run(t, src); got != "3628800" {
		t.Errorf("fact 10 = %s", got)
	}
}

func TestMutualRecursion(t *testing.T) {
	src := `
(define (even2? n) (if (zero? n) #t (odd2? (- n 1))))
(define (odd2? n) (if (zero? n) #f (even2? (- n 1))))
(even2? 101)`
	if got := run(t, src); got != "#f" {
		t.Errorf("got %s", got)
	}
}

func TestSetAndClosure(t *testing.T) {
	src := `
(define (make-counter)
  (let ([n 0])
    (lambda () (set! n (+ n 1)) n)))
(define c (make-counter))
(c) (c) (c)`
	if got := run(t, src); got != "3" {
		t.Errorf("got %s", got)
	}
}

func TestProperTailCalls(t *testing.T) {
	// A loop of 1e6 iterations must not blow the Go stack.
	src := `(let loop ([i 0]) (if (= i 1000000) 'done (loop (+ i 1))))`
	if got := run(t, src); got != "done" {
		t.Errorf("got %s", got)
	}
}

func TestCallCCEscape(t *testing.T) {
	src := `(+ 1 (call/cc (lambda (k) (k 10) 999)))`
	if got := run(t, src); got != "11" {
		t.Errorf("got %s", got)
	}
	src = `(+ 1 (call/cc (lambda (k) 10)))`
	if got := run(t, src); got != "11" {
		t.Errorf("normal return: got %s", got)
	}
	// Escape from deep inside.
	src = `
(define (find-first p l)
  (call/cc
    (lambda (return)
      (for-each (lambda (x) (if (p x) (return x) #f)) l)
      'not-found)))
(find-first even? '(1 3 4 5))`
	if got := run(t, src); got != "4" {
		t.Errorf("got %s", got)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"(car 1)",
		"(undefined-var)",
		"(+ 'a 1)",
		"((lambda (x) x) 1 2)",
		"(vector-ref (vector 1) 5)",
		"(error \"boom\" 1 2)",
		"(quotient 1 0)",
	}
	for _, src := range bad {
		if _, err := runErr(src); err == nil {
			t.Errorf("eval(%q): expected error", src)
		}
	}
}

func TestSchemeErrorMessage(t *testing.T) {
	_, err := runErr(`(error "bad thing" 'x 42)`)
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*prim.SchemeError)
	if !ok {
		t.Fatalf("expected SchemeError, got %T", err)
	}
	if !strings.Contains(se.Error(), "bad thing") || !strings.Contains(se.Error(), "42") {
		t.Errorf("message = %q", se.Error())
	}
}

func TestOutput(t *testing.T) {
	var b strings.Builder
	prog, err := ast.ParseString(`(display "x = ") (display 42) (newline) (write "q")`)
	if err != nil {
		t.Fatal(err)
	}
	in := New(&b)
	if _, err := in.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	if b.String() != "x = 42\n\"q\"" {
		t.Errorf("output = %q", b.String())
	}
}

func TestStepBudget(t *testing.T) {
	prog, err := ast.ParseString(`(define (spin) (spin)) (spin)`)
	if err != nil {
		t.Fatal(err)
	}
	in := New(nil)
	in.MaxSteps = 10000
	if _, err := in.RunProgram(prog); err == nil {
		t.Error("expected step budget error")
	}
}

func TestQuotedConstantsNotAliased(t *testing.T) {
	// Mutating a quoted constant must not corrupt later evaluations of
	// the same constant expression.
	src := `
(define (f) '(1 2))
(define a (f))
(set-car! a 99)
(car (f))`
	if got := run(t, src); got != "1" {
		t.Errorf("got %s", got)
	}
}

func TestBoxes(t *testing.T) {
	if got := run(t, "(let ([b (box 1)]) (set-box! b 2) (unbox b))"); got != "2" {
		t.Errorf("got %s", got)
	}
}

func TestDatumOpacity(t *testing.T) {
	// Closures stored in vectors survive round trips.
	src := `(let ([v (make-vector 1 0)])
            (vector-set! v 0 (lambda (x) (+ x 1)))
            ((vector-ref v 0) 41))`
	if got := run(t, src); got != "42" {
		t.Errorf("got %s", got)
	}
}

func TestGlobalSetUndefined(t *testing.T) {
	if got := run(t, "(set! brand-new 5) brand-new"); got != "5" {
		t.Errorf("got %s", got)
	}
}

func TestConstDatumValue(t *testing.T) {
	v, err := runErr("'(a . 5)")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := v.Pair()
	if !ok || p.Car != prim.SymV("a") || p.Cdr != prim.FixV(5) {
		t.Errorf("got %#v", v)
	}
}
