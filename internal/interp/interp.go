// Package interp is a reference tree-walking interpreter for the core
// AST. It is the differential-testing oracle for the compiler + VM
// pipeline: any program the compiler accepts must produce the same value
// here (see the cross-engine tests in internal/compiler).
//
// The interpreter is deliberately simple. The only subtlety is proper
// tail calls, implemented by a trampoline so deeply iterative benchmarks
// do not consume Go stack, and call/cc, implemented with panic/recover
// and therefore limited to upward (escaping) continuations — which is all
// the benchmark suite (ctak) requires.
package interp

import (
	"fmt"
	"io"

	"repro/internal/ast"
	"repro/internal/prim"
	"repro/internal/sexp"
)

// Closure is a user procedure paired with its environment.
type Closure struct {
	Lam *ast.Lambda
	Env *Env
}

// SchemeProcedure marks Closure as a procedure for procedure?.
func (*Closure) SchemeProcedure() {}

// PrimProcedure is a primitive as a first-class value.
type PrimProcedure struct{ Def *prim.Def }

// SchemeProcedure marks PrimProcedure as a procedure.
func (*PrimProcedure) SchemeProcedure() {}

// ContProcedure is a captured (escaping) continuation.
type ContProcedure struct{ id *int }

// SchemeProcedure marks ContProcedure as a procedure.
func (*ContProcedure) SchemeProcedure() {}

// contPanic carries a value to a captured continuation's call/cc frame.
type contPanic struct {
	id  *int
	val prim.Value
}

// Env is a chained lexical environment.
type Env struct {
	parent *Env
	vars   map[*ast.Var]*prim.Value
}

// NewEnv returns a fresh child of parent.
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent, vars: map[*ast.Var]*prim.Value{}}
}

func (e *Env) lookup(v *ast.Var) (*prim.Value, bool) {
	for env := e; env != nil; env = env.parent {
		if cell, ok := env.vars[v]; ok {
			return cell, true
		}
	}
	return nil, false
}

func (e *Env) bind(v *ast.Var, val prim.Value) {
	cell := new(prim.Value)
	*cell = val
	e.vars[v] = cell
}

// Interp evaluates programs against a global environment.
type Interp struct {
	globals map[sexp.Symbol]*prim.Value
	ctx     *prim.Ctx
	// Steps counts evaluation steps, to bound runaway tests.
	Steps    int64
	MaxSteps int64
	// Calls counts non-tail procedure applications (diagnostics only).
	Calls int64
}

// New returns an interpreter whose globals contain every primitive and
// whose output is discarded unless out is non-nil.
func New(out io.Writer) *Interp {
	in := &Interp{
		globals: map[sexp.Symbol]*prim.Value{},
		ctx:     &prim.Ctx{Out: out},
	}
	for _, d := range prim.All() {
		v := prim.ObjV(&PrimProcedure{Def: d})
		cell := new(prim.Value)
		*cell = v
		in.globals[d.Name] = cell
	}
	return in
}

// RunProgram evaluates all definitions and then the body, returning the
// body's value.
func (in *Interp) RunProgram(p *ast.Program) (prim.Value, error) {
	for _, d := range p.Defs {
		v, err := in.Eval(d.Rhs, nil)
		if err != nil {
			return prim.Value{}, err
		}
		cell := new(prim.Value)
		*cell = v
		in.globals[d.Name] = cell
	}
	return in.Eval(p.Body, nil)
}

// Eval evaluates e in env (nil means only globals are visible).
func (in *Interp) Eval(e ast.Expr, env *Env) (val prim.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			if cp, ok := r.(contPanic); ok {
				// A continuation escaped past its call/cc frame; treat as error.
				err = fmt.Errorf("interp: continuation invoked outside its dynamic extent (%v)", prim.WriteString(cp.val))
				return
			}
			panic(r)
		}
	}()
	return in.eval(e, env)
}

// eval is the trampolined core: tail positions update e/env and loop.
func (in *Interp) eval(e ast.Expr, env *Env) (prim.Value, error) {
	for {
		in.Steps++
		if in.MaxSteps > 0 && in.Steps > in.MaxSteps {
			return prim.Value{}, fmt.Errorf("interp: step budget exceeded")
		}
		switch n := e.(type) {
		case *ast.Const:
			return constValue(n.Value), nil
		case *ast.Ref:
			cell, ok := env.lookup(n.Var)
			if !ok {
				return prim.Value{}, fmt.Errorf("interp: unbound variable %s", n.Var)
			}
			return *cell, nil
		case *ast.GlobalRef:
			cell, ok := in.globals[n.Name]
			if !ok {
				return prim.Value{}, fmt.Errorf("interp: unbound global %s", n.Name)
			}
			return *cell, nil
		case *ast.If:
			t, err := in.eval(n.Test, env)
			if err != nil {
				return prim.Value{}, err
			}
			if prim.Truthy(t) {
				e = n.Then
			} else {
				e = n.Else
			}
		case *ast.Begin:
			for _, x := range n.Exprs[:len(n.Exprs)-1] {
				if _, err := in.eval(x, env); err != nil {
					return prim.Value{}, err
				}
			}
			e = n.Exprs[len(n.Exprs)-1]
		case *ast.Lambda:
			return prim.ObjV(&Closure{Lam: n, Env: env}), nil
		case *ast.Let:
			inner := NewEnv(env)
			for i, init := range n.Inits {
				v, err := in.eval(init, env)
				if err != nil {
					return prim.Value{}, err
				}
				inner.bind(n.Vars[i], v)
			}
			e, env = n.Body, inner
		case *ast.Letrec:
			inner := NewEnv(env)
			for _, v := range n.Vars {
				inner.bind(v, prim.Unspecified)
			}
			for i, init := range n.Inits {
				v, err := in.eval(init, inner)
				if err != nil {
					return prim.Value{}, err
				}
				*inner.vars[n.Vars[i]] = v
			}
			e, env = n.Body, inner
		case *ast.Set:
			v, err := in.eval(n.Rhs, env)
			if err != nil {
				return prim.Value{}, err
			}
			cell, ok := env.lookup(n.Var)
			if !ok {
				return prim.Value{}, fmt.Errorf("interp: unbound variable %s", n.Var)
			}
			*cell = v
			return prim.Unspecified, nil
		case *ast.GlobalSet:
			v, err := in.eval(n.Rhs, env)
			if err != nil {
				return prim.Value{}, err
			}
			cell, ok := in.globals[n.Name]
			if !ok {
				cell = new(prim.Value)
				in.globals[n.Name] = cell
			}
			*cell = v
			return prim.Unspecified, nil
		case *ast.Call:
			// call/cc is a special form at the application site.
			if g, ok := n.Fn.(*ast.GlobalRef); ok && (g.Name == "call/cc" || g.Name == "call-with-current-continuation") {
				if _, shadowed := in.globals[g.Name]; !shadowed && len(n.Args) == 1 {
					return in.callCC(n.Args[0], env)
				}
			}
			fn, err := in.eval(n.Fn, env)
			if err != nil {
				return prim.Value{}, err
			}
			args := make([]prim.Value, len(n.Args))
			for i, a := range n.Args {
				if args[i], err = in.eval(a, env); err != nil {
					return prim.Value{}, err
				}
			}
			switch p := fn.Heap().(type) {
			case *Closure:
				if len(args) != len(p.Lam.Params) {
					return prim.Value{}, fmt.Errorf("interp: %s expects %d arguments, got %d",
						p.Lam.Name, len(p.Lam.Params), len(args))
				}
				inner := NewEnv(p.Env)
				for i, v := range p.Lam.Params {
					inner.bind(v, args[i])
				}
				in.Calls++
				e, env = p.Lam.Body, inner // proper tail call
			case *PrimProcedure:
				if err := prim.CheckArity(p.Def, len(args)); err != nil {
					return prim.Value{}, err
				}
				return p.Def.Fn(in.ctx, args)
			case *ContProcedure:
				if len(args) != 1 {
					return prim.Value{}, fmt.Errorf("interp: continuation expects 1 argument, got %d", len(args))
				}
				panic(contPanic{id: p.id, val: args[0]})
			default:
				return prim.Value{}, fmt.Errorf("interp: attempt to apply non-procedure %s", prim.WriteString(fn))
			}
		default:
			return prim.Value{}, fmt.Errorf("interp: unknown expression %T", e)
		}
	}
}

// callCC evaluates (call/cc f) by invoking f with an escaping
// continuation; invoking the continuation unwinds to this frame.
func (in *Interp) callCC(fexpr ast.Expr, env *Env) (val prim.Value, err error) {
	fn, err := in.eval(fexpr, env)
	if err != nil {
		return prim.Value{}, err
	}
	id := new(int)
	k := &ContProcedure{id: id}
	defer func() {
		if r := recover(); r != nil {
			if cp, ok := r.(contPanic); ok && cp.id == id {
				val, err = cp.val, nil
				return
			}
			panic(r)
		}
	}()
	switch p := fn.Heap().(type) {
	case *Closure:
		if len(p.Lam.Params) != 1 {
			return prim.Value{}, fmt.Errorf("interp: call/cc receiver must take 1 argument")
		}
		inner := NewEnv(p.Env)
		inner.bind(p.Lam.Params[0], prim.ObjV(k))
		in.Calls++
		return in.eval(p.Lam.Body, inner)
	default:
		return prim.Value{}, fmt.Errorf("interp: call/cc expects a procedure, got %s", prim.WriteString(fn))
	}
}

// constValue converts a quoted datum to a runtime value. FromDatum
// deep-copies pairs and vectors, so compiled/interpreted runs cannot
// alias shared program text through set-car! mutations.
func constValue(d sexp.Datum) prim.Value {
	return prim.FromDatum(d)
}
