package dataflow_test

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/dataflow"
	"repro/internal/vm"
)

func mustCompile(t *testing.T, src string) *vm.Program {
	t.Helper()
	opts := compiler.DefaultOptions()
	opts.NoPrelude = true
	c, err := compiler.Compile(src, opts)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return c.Program
}

// branchSrc compiles to a body with a conditional branch, giving the
// CFG a diamond.
const branchSrc = `(define (f n) (if (< n 0) 0 n)) (f 3)`

func TestGraphFromProgram(t *testing.T) {
	p := mustCompile(t, branchSrc)
	exts := dataflow.Extents(p)
	if len(exts) == 0 {
		t.Fatalf("no extents in:\n%s", p.Disassemble())
	}
	for _, ext := range exts {
		g, err := dataflow.NewGraph(p, ext.Start, ext.End)
		if err != nil {
			t.Fatalf("NewGraph(%s): %v", ext.Info.Name, err)
		}
		if g.Start() != ext.Start || g.End() != ext.End {
			t.Fatalf("extent [%d,%d) became [%d,%d)", ext.Start, ext.End, g.Start(), g.End())
		}
		blocks := g.Blocks()
		if len(blocks) == 0 || blocks[0].Start != ext.Start {
			t.Fatalf("%s: first block does not start at extent start: %+v", ext.Info.Name, blocks)
		}
		// Blocks partition the extent, and BlockOf agrees.
		at := ext.Start
		for bi, b := range blocks {
			if b.Start != at {
				t.Fatalf("%s: block %d starts at %d, want %d", ext.Info.Name, bi, b.Start, at)
			}
			if b.End <= b.Start {
				t.Fatalf("%s: empty block %d: %+v", ext.Info.Name, bi, b)
			}
			for pc := b.Start; pc < b.End; pc++ {
				if g.BlockOf(pc) != bi {
					t.Fatalf("%s: BlockOf(%d) = %d, want %d", ext.Info.Name, pc, g.BlockOf(pc), bi)
				}
			}
			at = b.End
		}
		if at != ext.End {
			t.Fatalf("%s: blocks end at %d, extent at %d", ext.Info.Name, at, ext.End)
		}
		// Per-pc successors stay inside the extent; only a block's last
		// instruction may leave the block. Block edges match pc edges.
		var buf [2]int
		for _, b := range blocks {
			for pc := b.Start; pc < b.End; pc++ {
				for _, succ := range g.Succs(pc, buf[:]) {
					if succ < ext.Start || succ >= ext.End {
						t.Fatalf("%s: successor %d of pc %d escapes extent", ext.Info.Name, succ, pc)
					}
					if pc < b.End-1 && succ != pc+1 {
						t.Fatalf("%s: interior pc %d of block has successor %d", ext.Info.Name, pc, succ)
					}
				}
			}
			want := map[int]bool{}
			for _, succ := range g.Succs(b.End-1, buf[:]) {
				want[g.BlockOf(succ)] = true
			}
			if len(want) != len(b.Succs) {
				t.Fatalf("%s: block succs %v, want %v", ext.Info.Name, b.Succs, want)
			}
			for _, sb := range b.Succs {
				if !want[sb] {
					t.Fatalf("%s: stray block successor %d", ext.Info.Name, sb)
				}
			}
		}
		// Preds are the transpose of Succs.
		preds := make(map[int][]int)
		for bi, b := range blocks {
			for _, sb := range b.Succs {
				preds[sb] = append(preds[sb], bi)
			}
		}
		for bi, b := range blocks {
			if len(b.Preds) != len(preds[bi]) {
				t.Fatalf("block %d preds %v, want %v", bi, b.Preds, preds[bi])
			}
		}
	}
}

func TestNewGraphErrors(t *testing.T) {
	p := mustCompile(t, branchSrc)
	exts := dataflow.Extents(p)
	ext := exts[0]

	jumpPC := -1
	for pc := ext.Start; pc < ext.End; pc++ {
		if e, ok := p.Code[pc].InstrEffects(p.Config); ok && e.Jump >= 0 {
			jumpPC = pc
			break
		}
	}
	if jumpPC < 0 {
		t.Fatalf("no jump in %s:\n%s", ext.Info.Name, p.Disassemble())
	}

	// Program contains a sync.Once and must not be copied; corrupt the
	// code in place and restore after each subtest.
	patch := func(t *testing.T, pc int, in vm.Instr) {
		orig := p.Code[pc]
		p.Code[pc] = in
		t.Cleanup(func() { p.Code[pc] = orig })
	}

	t.Run("jump outside extent", func(t *testing.T) {
		in := p.Code[jumpPC]
		in.A = len(p.Code) + 5
		if in.Op == vm.OpBranchFalse {
			in.B = len(p.Code) + 5
		}
		patch(t, jumpPC, in)
		if _, err := dataflow.NewGraph(p, ext.Start, ext.End); err == nil {
			t.Errorf("out-of-extent jump accepted")
		}
	})
	t.Run("unknown opcode", func(t *testing.T) {
		patch(t, ext.Start+1, vm.Instr{Op: 255})
		if _, err := dataflow.NewGraph(p, ext.Start, ext.End); err == nil {
			t.Errorf("unknown opcode accepted")
		}
	})
	t.Run("falls off end", func(t *testing.T) {
		// Truncate the extent one short of a fall-through instruction.
		if _, err := dataflow.NewGraph(p, ext.Start, ext.Start+1); err == nil {
			t.Errorf("truncated extent accepted")
		}
	})
	t.Run("empty extent", func(t *testing.T) {
		if _, err := dataflow.NewGraph(p, ext.Start, ext.Start); err == nil {
			t.Errorf("empty extent accepted")
		}
	})
}

func TestExtentsOrderedAndContiguous(t *testing.T) {
	p := mustCompile(t, `(define (g y) (* y 2)) (define (f x) (+ (g x) x)) (f 3)`)
	exts := dataflow.Extents(p)
	if len(exts) < 2 {
		t.Fatalf("want >=2 extents, got %d", len(exts))
	}
	for i, ext := range exts {
		if ext.Start >= ext.End {
			t.Fatalf("extent %d empty: %+v", i, ext)
		}
		if i > 0 && exts[i-1].End != ext.Start {
			t.Fatalf("extent %d not contiguous: %+v then %+v", i, exts[i-1], ext)
		}
		if p.Procs[ext.Index].Entry != ext.Start {
			t.Fatalf("extent %d start %d disagrees with proc entry %d", i, ext.Start, p.Procs[ext.Index].Entry)
		}
	}
	if exts[len(exts)-1].End != len(p.Code) {
		t.Fatalf("last extent ends at %d, code at %d", exts[len(exts)-1].End, len(p.Code))
	}
}
