package dataflow

// The generic fixpoint engines. Both iterate the extent in address
// order (forward: increasing pc, backward: decreasing pc) repeatedly
// until no state changes: procedure bodies are forward DAGs emitted in
// topological order, so a single pass normally converges, and the
// schedule exactly matches the loops internal/verify and
// internal/analysis used before the refactor — which is what keeps
// their findings reproducible bit-for-bit. The pass cap only trips on
// malformed code (e.g. an irreducible backward-jump tangle), which the
// caller then reports as unverifiable/unanalyzable.

// DefaultMaxPasses bounds a fixpoint run. The emitter never needs more
// than one or two passes; the cap guards hand-built hostile inputs.
const DefaultMaxPasses = 64

// ForwardProblem is a forward dataflow problem: abstract states flow
// from the extent entry along control edges. S is the per-program-point
// state (a struct, a slice, or any value the three methods agree on).
type ForwardProblem[S any] interface {
	// Entry is the abstract state before the first instruction.
	Entry() S
	// Transfer applies the instruction at pc to s — which the engine
	// owns (a clone) — and returns the state after it. It may mutate s.
	Transfer(pc int, s S) S
	// Clone returns an independent copy of s.
	Clone(s S) S
	// Join merges src into dst and reports whether dst changed. It must
	// not mutate src, and must be idempotent, commutative and monotone
	// so the fixpoint is schedule-independent.
	Join(dst, src S) (S, bool)
}

// SolveForward computes the forward fixpoint over g. It returns the
// in-state before every reachable instruction (indexed pc-Start), the
// reachability mask, and whether the fixpoint converged within
// maxPasses sweeps.
func SolveForward[S any](g *Graph, p ForwardProblem[S], maxPasses int) (in []S, reached []bool, converged bool) {
	n := g.end - g.start
	in = make([]S, n)
	reached = make([]bool, n)
	in[0] = p.Entry()
	reached[0] = true
	var buf [2]int
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for pc := g.start; pc < g.end; pc++ {
			if !reached[pc-g.start] {
				continue
			}
			out := p.Transfer(pc, p.Clone(in[pc-g.start]))
			for _, succ := range g.Succs(pc, buf[:]) {
				i := succ - g.start
				if !reached[i] {
					in[i] = p.Clone(out)
					reached[i] = true
					changed = true
				} else if nv, ch := p.Join(in[i], out); ch {
					in[i] = nv
					changed = true
				}
			}
		}
		if !changed {
			return in, reached, true
		}
	}
	return in, reached, false
}

// BackwardProblem is a backward may-analysis: facts flow from every
// instruction to its predecessors. The in-state of pc is
// Transfer(pc, ⋃ in[succ]).
type BackwardProblem[S any] interface {
	// New returns the bottom (empty) state.
	New() S
	// Merge unions src into dst and returns dst. It may mutate dst but
	// must not mutate src.
	Merge(dst, src S) S
	// Transfer computes the in-state from the merged successor state
	// out, which the engine owns; it may mutate out.
	Transfer(pc int, out S) S
	// Eq reports whether two states are equal (the convergence test).
	Eq(a, b S) bool
}

// SolveBackward computes the backward fixpoint over g, returning the
// in-state of every instruction (indexed pc-Start) and whether the
// fixpoint converged within maxPasses sweeps. The out-state of a pc is
// not stored; recover it with MergeOut.
func SolveBackward[S any](g *Graph, p BackwardProblem[S], maxPasses int) (in []S, converged bool) {
	n := g.end - g.start
	in = make([]S, n)
	for i := range in {
		in[i] = p.New()
	}
	var buf [2]int
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for pc := g.end - 1; pc >= g.start; pc-- {
			out := p.New()
			for _, succ := range g.Succs(pc, buf[:]) {
				out = p.Merge(out, in[succ-g.start])
			}
			next := p.Transfer(pc, out)
			if !p.Eq(next, in[pc-g.start]) {
				changed = true
			}
			in[pc-g.start] = next
		}
		if !changed {
			return in, true
		}
	}
	return in, false
}

// MergeOut reconstructs the out-state of pc from a solved backward
// problem: the union of the in-states of pc's successors.
func MergeOut[S any](g *Graph, p BackwardProblem[S], in []S, pc int) S {
	out := p.New()
	var buf [2]int
	for _, succ := range g.Succs(pc, buf[:]) {
		out = p.Merge(out, in[succ-g.start])
	}
	return out
}
