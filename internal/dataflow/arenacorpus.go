package dataflow

import (
	"repro/internal/prim"
	"repro/internal/sexp"
	"repro/internal/vm"
)

// Seeded-violation corpus for the arena-lifetime analysis. Each entry
// is a hand-built program that breaks exactly one arena rule; the gate
// (TestArenaCorpus, bench.ArenaSweep, scripts/check.sh) requires the
// analysis to report every expected kind on every entry — a mutation
// test for the analysis itself, so a regression that silently blinds a
// rule fails loudly instead of letting the emitter drift. The programs
// are analyzed, never run: several would corrupt shared Program state
// if executed, which is the point.

// ArenaCase is one seeded violation.
type ArenaCase struct {
	// Name identifies the case in gate output.
	Name string
	// Rule is the DESIGN.md §15 obligation the program violates.
	Rule string
	// Want lists the finding kinds the analysis must report (at least
	// one finding of each kind).
	Want []string
	// Strict analyzes with ArenaOptions.StrictResult set.
	Strict bool
	// Prog is the seeded program.
	Prog *vm.Program
}

// corpusArena allocates the pair cells the seeded constants embed. The
// constants deliberately live for the lifetime of the corpus — exactly
// the Program-lifetime sharing the unprotected-constant rule exists to
// catch.
var corpusArena prim.Arena

// corpusProgram builds a program around a hand-written main body:
// [halt, entry args=0 frame=8, body...], followed by any extra
// procedures. Globals are named cells starting unbound.
func corpusProgram(globals []sexp.Symbol, body []vm.Instr, procs ...corpusProc) *vm.Program {
	code := []vm.Instr{
		{Op: vm.OpHalt},
		{Op: vm.OpEntry, A: 0, B: 8},
	}
	code = append(code, body...)
	infos := []vm.ProcInfo{{Name: "main", Entry: 1}}
	for _, pr := range procs {
		infos = append(infos, vm.ProcInfo{Name: pr.name, Entry: len(code)})
		code = append(code, pr.body...)
	}
	return &vm.Program{
		Code:        code,
		Procs:       infos,
		MainIndex:   0,
		GlobalNames: globals,
		PrimGlobals: make([]*prim.Def, len(globals)),
		Config:      vm.DefaultConfig(),
	}
}

type corpusProc struct {
	name string
	body []vm.Instr
}

// withConst appends a constant (not marked ConstMutable; the seeded
// cases rely on that) and returns its index.
func withConst(p *vm.Program, v prim.Value) int {
	p.Consts = append(p.Consts, v)
	p.ConstMutable = append(p.ConstMutable, false)
	return len(p.Consts) - 1
}

// withPrim appends a primitive reference and returns its index.
func withPrim(p *vm.Program, name string) int {
	p.Prims = append(p.Prims, prim.Lookup(sexp.Symbol(name)))
	return len(p.Prims) - 1
}

// ArenaViolationCorpus builds the seeded programs fresh on every call
// (analyses may not share state through them).
func ArenaViolationCorpus() []ArenaCase {
	pairConst := func() prim.Value {
		return prim.PairV(corpusArena.NewPair(prim.FixV(1), prim.Empty))
	}
	vecConst := func() prim.Value {
		return prim.VecV(&prim.Vector{Items: []prim.Value{prim.FixV(1), prim.FixV(2)}})
	}

	var cases []ArenaCase

	// 1. A pair constant not marked ConstMutable: every load aliases the
	// shared Program value instead of getting an arena copy.
	{
		p := corpusProgram(nil, []vm.Instr{
			{Op: vm.OpLoadConst, A: vm.RegRV, B: 0},
			{Op: vm.OpReturn},
		})
		withConst(p, pairConst())
		cases = append(cases, ArenaCase{
			Name: "const-unprotected-pair",
			Rule: "constants containing mutable structure must be marked ConstMutable",
			Want: []string{KindArenaConstUnprotected},
			Prog: p,
		})
	}

	// 2. Same violation through a vector constant.
	{
		p := corpusProgram(nil, []vm.Instr{
			{Op: vm.OpLoadConst, A: vm.RegRV, B: 0},
			{Op: vm.OpReturn},
		})
		withConst(p, vecConst())
		cases = append(cases, ArenaCase{
			Name: "const-unprotected-vector",
			Rule: "constants containing mutable structure must be marked ConstMutable",
			Want: []string{KindArenaConstUnprotected},
			Prog: p,
		})
	}

	// 3. Mutating structure loaded from an unprotected constant: the
	// set-car! would be visible to every machine sharing the Program.
	{
		p := corpusProgram(nil, []vm.Instr{
			{Op: vm.OpLoadConst, A: 3, B: 0},
			{Op: vm.OpLoadConst, A: 4, B: 1},
			{Op: vm.OpPrim, A: vm.RegRV, B: 0, Regs: []int{3, 4}},
			{Op: vm.OpReturn},
		})
		withConst(p, pairConst())
		withConst(p, prim.FixV(9))
		withPrim(p, "set-car!")
		cases = append(cases, ArenaCase{
			Name: "const-mutation",
			Rule: "no mutating primitive may receive unprotected constant structure",
			Want: []string{KindArenaConstUnprotected, KindArenaConstMutation},
			Prog: p,
		})
	}

	// 4. Reading a global before main re-stores it, where a later store
	// proves the global holds arena structure: on a re-run after Recycle
	// the read observes recycled cells from the previous run.
	{
		p := corpusProgram([]sexp.Symbol{"g"}, []vm.Instr{
			{Op: vm.OpLoadGlobal, A: 3, B: 0}, // read g before the store
			{Op: vm.OpLoadConst, A: 4, B: 0},
			{Op: vm.OpPrim, A: 5, B: 0, Regs: []int{4, 4}},
			{Op: vm.OpStoreGlobal, A: 5, B: 0}, // g <- fresh cons
			{Op: vm.OpMove, A: vm.RegRV, B: 3},
			{Op: vm.OpReturn},
		})
		withConst(p, prim.FixV(1))
		withPrim(p, "cons")
		cases = append(cases, ArenaCase{
			Name: "stale-global-read-direct",
			Rule: "arena-holding globals must be re-stored before any same-run read",
			Want: []string{KindArenaStaleGlobalRead},
			Prog: p,
		})
	}

	// 5. The same stale read hidden behind a call: main calls f before
	// storing g, and f reads g. Catching this one requires the
	// transitive global-read summaries, not just a scan of main.
	{
		p := corpusProgram([]sexp.Symbol{"g"}, []vm.Instr{
			{Op: vm.OpClosure, A: 3, B: 1},
			{Op: vm.OpMove, A: vm.RegCP, B: 3},
			{Op: vm.OpCall, A: 0, B: 8}, // f reads g here
			{Op: vm.OpLoadConst, A: 4, B: 0},
			{Op: vm.OpPrim, A: 5, B: 0, Regs: []int{4, 4}},
			{Op: vm.OpStoreGlobal, A: 5, B: 0}, // g <- fresh cons
			{Op: vm.OpReturn},
		}, corpusProc{name: "f", body: []vm.Instr{
			{Op: vm.OpEntry, A: 0, B: 4},
			{Op: vm.OpLoadGlobal, A: vm.RegRV, B: 0},
			{Op: vm.OpReturn},
		}})
		withConst(p, prim.FixV(1))
		withPrim(p, "cons")
		cases = append(cases, ArenaCase{
			Name: "stale-global-read-call",
			Rule: "arena-holding globals must be re-stored before any same-run read",
			Want: []string{KindArenaStaleGlobalRead},
			Prog: p,
		})
	}

	// 6. Strict-result mode: the program result is fresh arena
	// structure, so an embedder that recycles between runs while
	// retaining results would hold dangling cells.
	{
		p := corpusProgram(nil, []vm.Instr{
			{Op: vm.OpLoadConst, A: 3, B: 0},
			{Op: vm.OpPrim, A: vm.RegRV, B: 0, Regs: []int{3, 3}},
			{Op: vm.OpReturn},
		})
		withConst(p, prim.FixV(1))
		withPrim(p, "cons")
		cases = append(cases, ArenaCase{
			Name:   "result-escape-strict",
			Rule:   "under StrictResult the program result must be arena-free",
			Want:   []string{KindArenaResultEscape},
			Strict: true,
			Prog:   p,
		})
	}

	// 7. Closure staleness: closures come from the arena's closure slab
	// (PR 10), so a capture-free closure stored into a global is arena
	// structure even though it holds no pairs — a read before the store
	// observes a recycled closure object on a re-run.
	{
		p := corpusProgram([]sexp.Symbol{"g"}, []vm.Instr{
			{Op: vm.OpLoadGlobal, A: 3, B: 0},         // read g before the store
			{Op: vm.OpClosure, A: 4, B: 1, Regs: nil}, // capture-free closure of f
			{Op: vm.OpStoreGlobal, A: 4, B: 0},        // g <- closure
			{Op: vm.OpMove, A: vm.RegRV, B: 3},
			{Op: vm.OpReturn},
		}, corpusProc{name: "f", body: []vm.Instr{
			{Op: vm.OpEntry, A: 0, B: 4},
			{Op: vm.OpReturn},
		}})
		cases = append(cases, ArenaCase{
			Name: "stale-global-read-closure",
			Rule: "closure objects are arena structure; closure-holding globals must be re-stored before any same-run read",
			Want: []string{KindArenaStaleGlobalRead},
			Prog: p,
		})
	}

	return cases
}

// CheckArenaCorpus analyzes every corpus entry and returns, per case,
// the kinds that were expected but missing (nil slices mean the gate
// holds). Shared by the test and the bench sweep.
func CheckArenaCorpus() map[string][]string {
	missing := make(map[string][]string)
	for _, c := range ArenaViolationCorpus() {
		rep := AnalyzeArena(c.Prog, ArenaOptions{StrictResult: c.Strict})
		got := make(map[string]bool, len(rep.Findings))
		for _, f := range rep.Findings {
			got[f.Kind] = true
		}
		var miss []string
		for _, k := range c.Want {
			if !got[k] {
				miss = append(miss, k)
			}
		}
		missing[c.Name] = miss
	}
	return missing
}
