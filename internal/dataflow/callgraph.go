package dataflow

import (
	"repro/internal/vm"
)

// Call-graph construction. Every call in this instruction set goes
// through the cp register, so resolving a call site means knowing what
// closure value cp holds there. The tracker is a forward dataflow over
// a small "callable identity" lattice, run per procedure extent, with
// global bindings resolved by an outer fixpoint: top-level `define`
// compiles to a closure allocation followed by a global store, so the
// binding of each global is the join of every value stored into it
// (seeded with the prelude's primitive bindings), and loads of the
// global yield that join. Closure free variables get the same
// treatment: each procedure's free slots accumulate the join of every
// value captured at a closure allocation or stored by a patch, so the
// self-patched closures that `fix` and the expander's do-loops emit
// resolve to themselves instead of widening every recursive loop to
// unknown. A global or free slot rebound to two different procedures
// joins to unknown, as does anything flowing through channels the
// tracker does not model (data structures, call/cc).

// CalleeKind classifies what a tracked value is known to be.
type CalleeKind uint8

const (
	// CalleeNone is the lattice bottom: no value seen yet.
	CalleeNone CalleeKind = iota
	// CalleeProc is a closure of a known procedure; Index is the
	// procedure table index.
	CalleeProc
	// CalleePrim is a primitive binding; Index is the global table index
	// it came from.
	CalleePrim
	// CalleeUnknown is the lattice top: could be anything.
	CalleeUnknown
)

// Callee is one point in the callable-identity lattice.
type Callee struct {
	Kind  CalleeKind
	Index int
}

// joinCallee is the lattice join: bottom is the identity, equal values
// stay, and disagreement widens to unknown.
func joinCallee(a, b Callee) Callee {
	switch {
	case a.Kind == CalleeNone:
		return b
	case b.Kind == CalleeNone:
		return a
	case a == b:
		return a
	default:
		return Callee{Kind: CalleeUnknown}
	}
}

// CallSite is one resolved (or unresolved) call instruction.
type CallSite struct {
	// PC is the call instruction's address; Extent indexes
	// CallGraph.Extents for the enclosing procedure.
	PC     int
	Extent int
	// Op is the call opcode (OpCall, OpTailCall or OpCallCC).
	Op vm.Op
	// Callee is the tracked identity of cp at the call. Call/cc sites
	// keep the receiver here but are always treated as unresolved: the
	// captured continuation can re-enter with arbitrary register state.
	Callee Callee
}

// CallGraph holds the whole-program call structure: one extent per
// procedure, the per-extent CFGs, every call site with its resolved
// callee, and the fixpoint global bindings.
type CallGraph struct {
	Prog    *vm.Program
	Extents []Extent
	// Graphs[i] is the CFG of Extents[i], nil when the body was too
	// malformed to walk (the verifier reports why).
	Graphs []*Graph
	// Sites lists every call instruction in address order.
	Sites []CallSite
	// Globals is the resolved binding of each global cell.
	Globals []Callee
	// Frees[p][j] is the resolved binding of free-variable slot j of
	// procedure p: the join of every value captured into that slot by a
	// closure allocation or a patch anywhere in the program.
	Frees [][]Callee

	// extOf maps a procedure table index to its position in Extents
	// (-1 when the procedure has no extent).
	extOf []int
}

// ExtentOf returns the position in Extents of procedure procIdx, or -1.
func (cg *CallGraph) ExtentOf(procIdx int) int { return cg.extOf[procIdx] }

// calleeState is the tracker's per-point state: one lattice value per
// register, then one per frame slot. Frame slots matter because the
// allocator parks closure values in the frame across calls — a
// restore's provenance would otherwise be lost exactly where the
// interprocedural analysis needs it.
type calleeState []Callee

// calleeProblem runs the tracker over one extent.
type calleeProblem struct {
	cg     *CallGraph
	g      *Graph
	nRegs  int
	frame  int
	selfIx int // procedure table index of the extent's own procedure
}

func (cp calleeProblem) Entry() calleeState {
	s := make(calleeState, cp.nRegs+cp.frame)
	for i := range s {
		s[i] = Callee{Kind: CalleeUnknown}
	}
	// cp holds the closure being executed.
	s[vm.RegCP] = Callee{Kind: CalleeProc, Index: cp.selfIx}
	return s
}

func (cp calleeProblem) Clone(s calleeState) calleeState {
	return append(calleeState(nil), s...)
}

func (cp calleeProblem) Join(dst, src calleeState) (calleeState, bool) {
	changed := false
	for i := range dst {
		if nv := joinCallee(dst[i], src[i]); nv != dst[i] {
			dst[i] = nv
			changed = true
		}
	}
	return dst, changed
}

// operandValue reads an OpPrim/OpClosure operand (register or encoded
// frame slot) from the state.
func (cp calleeProblem) operandValue(s calleeState, operand int) Callee {
	if vm.IsSlotOperand(operand) {
		if sl := vm.SlotOperand(operand); sl >= 0 && sl < cp.frame {
			return s[cp.nRegs+sl]
		}
		return Callee{Kind: CalleeUnknown}
	}
	if operand >= 0 && operand < cp.nRegs {
		return s[operand]
	}
	return Callee{Kind: CalleeUnknown}
}

// captureFree folds a value captured into a procedure's free slot. An
// out-of-range slot means the instruction stream disagrees with the
// procedure table, so resolution gives up on free variables entirely.
func (cg *CallGraph) captureFree(proc, slot int, v Callee) {
	if proc < 0 || proc >= len(cg.Frees) {
		return
	}
	if slot < 0 || slot >= len(cg.Frees[proc]) {
		cg.polluteFrees()
		return
	}
	cg.Frees[proc][slot] = joinCallee(cg.Frees[proc][slot], v)
}

// polluteFrees widens every free-slot binding to unknown.
func (cg *CallGraph) polluteFrees() {
	for _, fs := range cg.Frees {
		for j := range fs {
			fs[j] = Callee{Kind: CalleeUnknown}
		}
	}
}

// freeBinding is the resolved binding of one free slot.
func (cg *CallGraph) freeBinding(proc, slot int) Callee {
	if proc >= 0 && proc < len(cg.Frees) && slot >= 0 && slot < len(cg.Frees[proc]) {
		return cg.Frees[proc][slot]
	}
	return Callee{Kind: CalleeUnknown}
}

// freesSnapshot flattens Frees for the stability check.
func (cg *CallGraph) freesSnapshot() []Callee {
	var out []Callee
	for _, fs := range cg.Frees {
		out = append(out, fs...)
	}
	return out
}

func (cp calleeProblem) Transfer(pc int, s calleeState) calleeState {
	in := cp.cg.Prog.Code[pc]
	unknown := Callee{Kind: CalleeUnknown}
	switch in.Op {
	case vm.OpMove:
		s[in.A] = s[in.B]
	case vm.OpLoadConst:
		// The constant pool is compile-time data; no constant is or
		// contains a closure. Bottom, not unknown: the placeholder a
		// patched closure captures before its patch lands must not widen
		// the free slot, and a call through constant data is a runtime
		// type error on which resolution may claim anything.
		s[in.A] = Callee{Kind: CalleeNone}
	case vm.OpClosure:
		for j, r := range in.Regs {
			cp.cg.captureFree(in.B, j, cp.operandValue(s, r))
		}
		s[in.A] = Callee{Kind: CalleeProc, Index: in.B}
	case vm.OpClosurePatch:
		switch cl := s[in.A]; cl.Kind {
		case CalleeProc:
			cp.cg.captureFree(cl.Index, in.B, s[in.C])
		case CalleeNone, CalleePrim:
			// Dead value or a runtime type error: nothing to record.
		default:
			// Patching a closure of unknown identity could write any
			// procedure's free slot.
			cp.cg.polluteFrees()
		}
	case vm.OpFreeRef:
		s[in.A] = cp.cg.freeBinding(cp.selfIx, in.B)
	case vm.OpLoadGlobal:
		s[in.A] = cp.cg.Globals[in.B]
	case vm.OpLoadSlot:
		if in.B >= 0 && in.B < cp.frame {
			s[in.A] = s[cp.nRegs+in.B]
		} else {
			s[in.A] = unknown
		}
	case vm.OpStoreSlot:
		if in.B >= 0 && in.B < cp.frame {
			s[cp.nRegs+in.B] = s[in.A]
		}
	case vm.OpCall, vm.OpCallCC:
		// Conservative at tracker level: the callee may write any
		// caller-save register. Frame slots survive.
		vm.CallClobbers(cp.cg.Prog.Config).ForEach(func(r int) { s[r] = unknown })
		s[vm.RegRV] = unknown
		s[vm.RegRet] = unknown
	default:
		e := cp.g.Effects(pc)
		e.Defs.ForEach(func(r int) { s[r] = unknown })
		e.Clobbers.ForEach(func(r int) { s[r] = unknown })
		for _, sl := range e.WriteSlots {
			if sl >= 0 && sl < cp.frame {
				s[cp.nRegs+sl] = unknown
			}
		}
	}
	return s
}

// BuildCallGraph resolves the program's call structure.
func BuildCallGraph(p *vm.Program) *CallGraph {
	cg := &CallGraph{
		Prog:    p,
		Extents: Extents(p),
		Globals: make([]Callee, len(p.GlobalNames)),
		Frees:   make([][]Callee, len(p.Procs)),
		extOf:   make([]int, len(p.Procs)),
	}
	for i, pr := range p.Procs {
		if pr.NFree > 0 {
			cg.Frees[i] = make([]Callee, pr.NFree)
		}
	}
	for i := range cg.extOf {
		cg.extOf[i] = -1
	}
	cg.Graphs = make([]*Graph, len(cg.Extents))
	for i, ext := range cg.Extents {
		if g, err := NewGraph(p, ext.Start, ext.End); err == nil {
			cg.Graphs[i] = g
		}
		if cg.extOf[ext.Index] < 0 {
			cg.extOf[ext.Index] = i
		}
	}

	seed := make([]Callee, len(cg.Globals))
	for gi := range seed {
		if gi < len(p.PrimGlobals) && p.PrimGlobals[gi] != nil {
			seed[gi] = Callee{Kind: CalleePrim, Index: gi}
		}
	}
	// Stores inside unanalyzable extents are invisible to the tracker;
	// the globals and free slots they touch must stay unknown.
	for i, ext := range cg.Extents {
		if cg.Graphs[i] != nil {
			continue
		}
		for pc := ext.Start; pc < ext.End; pc++ {
			switch in := p.Code[pc]; in.Op {
			case vm.OpStoreGlobal:
				if in.B >= 0 && in.B < len(seed) {
					seed[in.B] = Callee{Kind: CalleeUnknown}
				}
			case vm.OpClosure:
				if in.B >= 0 && in.B < len(cg.Frees) {
					for j := range cg.Frees[in.B] {
						cg.Frees[in.B][j] = Callee{Kind: CalleeUnknown}
					}
				}
			case vm.OpClosurePatch:
				cg.polluteFrees()
			}
		}
	}
	copy(cg.Globals, seed)

	// Outer fixpoint over global bindings: solve every extent under the
	// current bindings, fold each global store's stored value back in,
	// repeat until stable. Bindings only rise in the lattice, so the
	// round cap is generous.
	solved := make([][]calleeState, len(cg.Extents))
	reachedAll := make([][]bool, len(cg.Extents))
	stable := false
	for round := 0; round < DefaultMaxPasses && !stable; round++ {
		next := make([]Callee, len(seed))
		copy(next, seed)
		frees := cg.freesSnapshot()
		for i := range cg.Extents {
			g := cg.Graphs[i]
			if g == nil {
				continue
			}
			prob := cg.problemFor(i)
			in, reached, _ := SolveForward[calleeState](g, prob, DefaultMaxPasses)
			solved[i], reachedAll[i] = in, reached
			for pc := g.Start(); pc < g.End(); pc++ {
				if !reached[pc-g.Start()] {
					continue
				}
				instr := p.Code[pc]
				if instr.Op == vm.OpStoreGlobal && instr.B >= 0 && instr.B < len(next) {
					next[instr.B] = joinCallee(next[instr.B], in[pc-g.Start()][instr.A])
				}
			}
		}
		stable = true
		for gi := range next {
			if next[gi] != cg.Globals[gi] {
				stable = false
			}
		}
		for fi, fv := range cg.freesSnapshot() {
			if fv != frees[fi] {
				stable = false
			}
		}
		copy(cg.Globals, next)
	}

	// Collect call sites from the final converged states.
	for i := range cg.Extents {
		g := cg.Graphs[i]
		if g == nil {
			continue
		}
		for pc := g.Start(); pc < g.End(); pc++ {
			if !reachedAll[i][pc-g.Start()] {
				continue
			}
			op := p.Code[pc].Op
			if op != vm.OpCall && op != vm.OpTailCall && op != vm.OpCallCC {
				continue
			}
			callee := solved[i][pc-g.Start()][vm.RegCP]
			if !stable {
				// The binding fixpoint hit its round cap; the last solve
				// may have used stale bindings, so resolve nothing.
				callee = Callee{Kind: CalleeUnknown}
			}
			cg.Sites = append(cg.Sites, CallSite{PC: pc, Extent: i, Op: op, Callee: callee})
		}
	}
	return cg
}

func (cg *CallGraph) problemFor(ext int) calleeProblem {
	e := cg.Extents[ext]
	frame := 0
	if in := cg.Prog.Code[e.Start]; in.Op == vm.OpEntry && in.B > 0 {
		frame = in.B
	}
	return calleeProblem{
		cg:     cg,
		g:      cg.Graphs[ext],
		nRegs:  cg.Prog.Config.NumRegs(),
		frame:  frame,
		selfIx: e.Index,
	}
}
