package dataflow_test

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/regset"
	"repro/internal/vm"
)

// Hand-built effects for engine tests: tiny CFGs with known answers.

func fall() vm.Effects             { return vm.Effects{Jump: -1, FallsThrough: true} }
func branch(target int) vm.Effects { return vm.Effects{Jump: target, FallsThrough: true} }
func jump(target int) vm.Effects   { return vm.Effects{Jump: target} }
func exit() vm.Effects             { return vm.Effects{Jump: -1, IsExit: true} }
func def(r int) vm.Effects         { e := fall(); e.Defs = e.Defs.Add(r); return e }
func use(r int) vm.Effects         { e := fall(); e.Uses = e.Uses.Add(r); return e }

// maybeDefined is a forward may-analysis: the set of registers some
// path has defined.
type maybeDefined struct{ g *dataflow.Graph }

func (md maybeDefined) Entry() regset.Set { return 0 }
func (md maybeDefined) Transfer(pc int, s regset.Set) regset.Set {
	return s.Union(md.g.Effects(pc).Defs)
}
func (md maybeDefined) Clone(s regset.Set) regset.Set { return s }
func (md maybeDefined) Join(dst, src regset.Set) (regset.Set, bool) {
	nv := dst.Union(src)
	return nv, nv != dst
}

func TestSolveForwardDiamond(t *testing.T) {
	// 0: branch to 3 | 1: def r1 | 2: jump 4 | 3: def r2 | 4: exit
	eff := []vm.Effects{branch(3), def(1), jump(4), def(2), exit()}
	g := dataflow.GraphFromEffects(0, len(eff), eff)
	in, reached, converged := dataflow.SolveForward[regset.Set](g, maybeDefined{g}, dataflow.DefaultMaxPasses)
	if !converged {
		t.Fatalf("diamond did not converge")
	}
	for pc, r := range reached {
		if !r {
			t.Fatalf("pc %d unreached", pc)
		}
	}
	var none regset.Set
	wantIn := []regset.Set{none, none, none.Add(1), none, none.Add(1).Add(2)}
	for pc, want := range wantIn {
		if in[pc] != want {
			t.Errorf("in[%d] = %v, want %v", pc, in[pc], want)
		}
	}
}

func TestSolveForwardUnreachable(t *testing.T) {
	// 1 is dead: 0 jumps straight to 2.
	eff := []vm.Effects{jump(2), def(1), exit()}
	g := dataflow.GraphFromEffects(0, len(eff), eff)
	_, reached, converged := dataflow.SolveForward[regset.Set](g, maybeDefined{g}, dataflow.DefaultMaxPasses)
	if !converged {
		t.Fatalf("did not converge")
	}
	if reached[1] {
		t.Errorf("dead pc 1 marked reached")
	}
	if !reached[0] || !reached[2] {
		t.Errorf("live pcs unreached: %v", reached)
	}
}

// liveRegs is backward may-liveness over registers, mirroring the shape
// internal/analysis uses.
type liveRegs struct{ g *dataflow.Graph }

func (lr liveRegs) New() regset.Set                      { return 0 }
func (lr liveRegs) Merge(dst, src regset.Set) regset.Set { return dst.Union(src) }
func (lr liveRegs) Transfer(pc int, out regset.Set) regset.Set {
	e := lr.g.Effects(pc)
	return e.Uses.Union(out.Minus(e.Defs))
}
func (lr liveRegs) Eq(a, b regset.Set) bool { return a == b }

func TestSolveBackwardLoop(t *testing.T) {
	// 0: def r1 | 1: use r1, branch back to 1 | 2: use r2, exit
	useLoop := use(1)
	useLoop.Jump = 1
	useExit := vm.Effects{Jump: -1, IsExit: true}
	useExit.Uses = useExit.Uses.Add(2)
	eff := []vm.Effects{def(1), useLoop, useExit}
	g := dataflow.GraphFromEffects(0, len(eff), eff)
	in, converged := dataflow.SolveBackward[regset.Set](g, liveRegs{g}, dataflow.DefaultMaxPasses)
	if !converged {
		t.Fatalf("loop did not converge")
	}
	var none regset.Set
	wantIn := []regset.Set{none.Add(2), none.Add(1).Add(2), none.Add(2)}
	for pc, want := range wantIn {
		if in[pc] != want {
			t.Errorf("in[%d] = %v, want %v", pc, in[pc], want)
		}
	}
	// The loop body has a back-edge, so its out-state includes its own
	// in-state; MergeOut must union both successors.
	out := dataflow.MergeOut[regset.Set](g, liveRegs{g}, in, 1)
	if want := none.Add(1).Add(2); out != want {
		t.Errorf("MergeOut(1) = %v, want %v", out, want)
	}
	if out := dataflow.MergeOut[regset.Set](g, liveRegs{g}, in, 2); out != 0 {
		t.Errorf("MergeOut(exit) = %v, want empty", out)
	}
}

func TestBlocksOnLoop(t *testing.T) {
	// 0 falls into a two-instruction loop header; the back-edge makes 1
	// a leader, and 3 is a leader as the branch fall-through.
	eff := []vm.Effects{fall(), fall(), branch(1), exit()}
	g := dataflow.GraphFromEffects(0, len(eff), eff)
	blocks := g.Blocks()
	starts := make([]int, len(blocks))
	for i, b := range blocks {
		starts[i] = b.Start
	}
	want := []int{0, 1, 3}
	if len(starts) != len(want) {
		t.Fatalf("block starts %v, want %v", starts, want)
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("block starts %v, want %v", starts, want)
		}
	}
	// The loop block's successors are itself and the exit block.
	b1 := blocks[1]
	if len(b1.Succs) != 2 {
		t.Fatalf("loop block succs %v", b1.Succs)
	}
}
