package dataflow_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/dataflow"
	"repro/internal/findings"
	"repro/internal/vm"
)

// callSrc saves x across the call to g and eagerly restores it. g is a
// leaf that never touches x's register, so interprocedurally the save
// and restore are both removable — but the intraprocedural lint cannot
// see that: the slot IS read (by the restore) and the register IS read
// (by the +), so neither redundant-save nor dead-restore fires. This is
// the precision gap the interprocedural pass exists to measure.
const callSrc = `(define (g y) (* y 2)) (define (f x) (+ (g x) x)) (f 3)`

func findingsOfKind(fs []findings.Finding, kind string) []findings.Finding {
	var out []findings.Finding
	for _, f := range fs {
		if f.Kind == kind {
			out = append(out, f)
		}
	}
	return out
}

func TestInterprocFindsCrossCallWaste(t *testing.T) {
	p := mustCompile(t, callSrc)
	rep := dataflow.AnalyzeInterproc(p)

	dead := findingsOfKind(rep.Findings, dataflow.KindCrossCallDeadRestore)
	redundant := findingsOfKind(rep.Findings, dataflow.KindCrossCallRedundantSave)
	if len(dead) == 0 {
		t.Fatalf("no cross-call-dead-restore in:\n%s\n%s", p.Disassemble(), rep.Render())
	}
	if len(redundant) == 0 {
		t.Fatalf("no cross-call-redundant-save in:\n%s\n%s", p.Disassemble(), rep.Render())
	}
	// The pair must be x's save/restore (same slot), not ret's: the
	// callee summary includes ret (the call writes it), so ret's
	// restore is genuinely needed.
	if redundant[0].Slot != dead[0].Slot {
		t.Errorf("save slot %d, dead restore slot %d", redundant[0].Slot, dead[0].Slot)
	}
	for _, f := range append(dead, redundant...) {
		if f.Proc != "f" {
			t.Errorf("finding in %q, want f: %+v", f.Proc, f)
		}
		if len(f.Witness) == 0 {
			t.Errorf("finding carries no witness: %+v", f)
		}
		if f.CallPC < 0 {
			t.Errorf("finding carries no call pc: %+v", f)
		}
	}
	// ret's restore must NOT be flagged: every call writes ret.
	for _, f := range dead {
		if f.Reg == vm.RegRet {
			t.Errorf("ret restore flagged dead: %+v", f)
		}
	}

	// The intraprocedural lint misses both sites — that is the point.
	old := analysis.Analyze(p)
	for _, f := range old.Findings {
		if f.Kind == analysis.RedundantSave && f.PC == redundant[0].PC {
			t.Errorf("old lint already flags the save at pc %d", f.PC)
		}
		if f.Kind == analysis.DeadRestore && f.PC == dead[0].PC {
			t.Errorf("old lint already flags the restore at pc %d", f.PC)
		}
	}

	if rep.Totals.CallSites == 0 || rep.Totals.ResolvedSites == 0 {
		t.Errorf("no resolved call sites: %+v", rep.Totals)
	}
	if rep.Totals.CrossDeadRestores != len(dead) || rep.Totals.CrossRedundantSaves != len(redundant) {
		t.Errorf("totals disagree with findings: %+v", rep.Totals)
	}
}

// TestInterprocUnknownCalleeConservative checks that a call through a
// rebindable global (stored twice with different procedures) resolves
// to unknown and suppresses the findings.
func TestInterprocUnknownCalleeConservative(t *testing.T) {
	src := `(define (g y) (* y 2))
	        (define (h y) (+ y 1))
	        (define (pick b) (if b g h))
	        (define (f x) (+ ((pick #t) x) x))
	        (f 3)`
	p := mustCompile(t, src)
	rep := dataflow.AnalyzeInterproc(p)
	for _, f := range rep.Findings {
		if f.Proc == "f" {
			t.Errorf("finding in f despite unknown callee: %+v", f)
		}
	}
}

func TestInterprocCallCCUnresolved(t *testing.T) {
	src := `(define (f x) (+ (call/cc (lambda (k) (k x))) x)) (f 3)`
	p := mustCompile(t, src)
	rep := dataflow.AnalyzeInterproc(p)
	for _, f := range rep.Findings {
		if f.Proc == "f" {
			t.Errorf("finding in f despite call/cc: %+v", f)
		}
	}
}
