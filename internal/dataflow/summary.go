package dataflow

import (
	"repro/internal/regset"
	"repro/internal/vm"
)

// Per-procedure summaries: the transitive may-clobber register set —
// every register a call to the procedure may leave changed when it
// returns. Computed bottom-up over the call graph by a fixpoint (the
// graph may be cyclic through recursion): a procedure's summary is its
// own direct register writes plus the summary of every callee it can
// reach, with unknown callees widening to the full caller-save set.
//
// Two registers are excluded by the calling convention rather than by
// inspection: ret and the callee-save registers, which every verified
// procedure restores before exiting (internal/verify proves this at
// each exit). The summaries are therefore statements about programs
// that pass verification. The call instruction's own writes (ret, rv)
// are added back per site by CallEffect.

// Summaries holds the solved per-procedure clobber summaries.
type Summaries struct {
	cg *CallGraph
	// ByProc is the may-clobber set per procedure table index.
	ByProc []regset.Set
	// Resolved reports whether the procedure's summary is better than
	// the conservative full set (its body was analyzable and every call
	// in its transitive closure resolved or was itself summarized).
	Resolved []bool

	full      regset.Set // caller-save universe incl. rv
	preserved regset.Set // ret + callee-saves, proven restored at exits
}

// ComputeSummaries solves the clobber summaries for cg.
func ComputeSummaries(cg *CallGraph) *Summaries {
	p := cg.Prog
	cfg := p.Config
	s := &Summaries{
		cg:       cg,
		ByProc:   make([]regset.Set, len(p.Procs)),
		Resolved: make([]bool, len(p.Procs)),
		full:     regset.Universe(cfg.CallerSaveLimit()),
	}
	s.preserved = regset.Single(vm.RegRet)
	for i := 0; i < cfg.CalleeSaveRegs; i++ {
		s.preserved = s.preserved.Add(cfg.CalleeSaveReg(i))
	}

	// Direct writes per extent (calls contribute only their own ret/rv
	// writes here; callee effects join in during the fixpoint below).
	direct := make([]regset.Set, len(cg.Extents))
	sitesOf := make([][]int, len(cg.Extents))
	for i := range cg.Extents {
		g := cg.Graphs[i]
		if g == nil {
			continue
		}
		var d regset.Set
		for pc := g.Start(); pc < g.End(); pc++ {
			switch p.Code[pc].Op {
			case vm.OpCall, vm.OpTailCall, vm.OpCallCC:
				d = d.Union(regset.Of(vm.RegRet, vm.RegRV))
			default:
				e := g.Effects(pc)
				d = d.Union(e.Defs).Union(e.Clobbers)
			}
		}
		direct[i] = d
	}
	for si, site := range cg.Sites {
		sitesOf[site.Extent] = append(sitesOf[site.Extent], si)
	}

	// Seed: unanalyzable procedures clobber everything; the rest start
	// from their direct writes and rise monotonically.
	for pi := range s.ByProc {
		ei := cg.extOf[pi]
		if ei < 0 || cg.Graphs[ei] == nil {
			s.ByProc[pi] = s.full.Minus(s.preserved)
			continue
		}
		s.ByProc[pi] = direct[ei].Minus(s.preserved)
		s.Resolved[pi] = true
	}
	for pass := 0; pass < DefaultMaxPasses; pass++ {
		changed := false
		for pi := range s.ByProc {
			ei := cg.extOf[pi]
			if ei < 0 || cg.Graphs[ei] == nil {
				continue
			}
			sum := direct[ei]
			resolved := true
			for _, si := range sitesOf[ei] {
				site := cg.Sites[si]
				clob, ok := s.calleeClobbers(site)
				sum = sum.Union(clob)
				resolved = resolved && ok
			}
			sum = sum.Minus(s.preserved)
			if sum != s.ByProc[pi] || resolved != s.Resolved[pi] {
				s.ByProc[pi] = sum
				s.Resolved[pi] = resolved
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return s
}

// calleeClobbers is the register set the callee of one site may change,
// excluding the call instruction's own writes. ok reports whether the
// set is better-than-conservative.
func (s *Summaries) calleeClobbers(site CallSite) (regset.Set, bool) {
	if site.Op == vm.OpCallCC {
		// The captured continuation can re-enter the site with arbitrary
		// caller-save state regardless of the receiver's body.
		return s.full.Minus(s.preserved), false
	}
	switch site.Callee.Kind {
	case CalleeProc:
		if site.Callee.Index >= 0 && site.Callee.Index < len(s.ByProc) {
			return s.ByProc[site.Callee.Index], s.Resolved[site.Callee.Index]
		}
	case CalleePrim:
		// Primitive dispatch runs no VM code: it writes rv, nothing else.
		return regset.Single(vm.RegRV), true
	}
	return s.full.Minus(s.preserved), false
}

// CallEffect is the register set a call site may leave changed from the
// caller's perspective: the callee's summary plus the call's own writes
// (ret is set to the return point, rv to the result). resolved reports
// whether the set is sharper than the conservative assumption the
// intraprocedural passes make.
func (s *Summaries) CallEffect(site CallSite) (clob regset.Set, resolved bool) {
	c, ok := s.calleeClobbers(site)
	return c.Union(regset.Of(vm.RegRet, vm.RegRV)), ok
}
