package dataflow

import (
	"repro/internal/prim"
)

// Primitive effect classification for the arena-lifetime analysis
// (arena.go). Pair cells come from a per-machine arena that
// Machine.Recycle invalidates wholesale, so the analysis must know, for
// every primitive, whether its result can contain freshly
// arena-allocated cells, whether its result can share mutable structure
// with an argument, and whether it mutates an argument in place. The
// table below classifies every primitive in the runtime; the
// exhaustiveness test (arena_test.go) walks prim.All() and fails if a
// newly added primitive has no entry, so the classification cannot
// silently rot.

// PrimEffect describes one primitive's behaviour with respect to
// mutable structure and the pair arena.
type PrimEffect struct {
	// AllocatesPairs reports that the result may contain pair cells
	// freshly drawn from the machine's arena (prim.Ctx.Cons).
	AllocatesPairs bool
	// Derives reports that the result may share mutable structure
	// (pairs, vectors, boxes) with an argument, so lifetime taint flows
	// from arguments to the result.
	Derives bool
	// MutatesArg is the index of the argument whose structure the
	// primitive mutates in place, or -1 for pure primitives.
	MutatesArg int
	// StoresArg is the index of the argument the mutation stores into
	// the mutated structure, or -1.
	StoresArg int
}

// Effect shorthands for the table.
var (
	// effPure: result carries no mutable structure and aliases nothing
	// (numbers, booleans, characters, symbols, fresh strings, output).
	effPure = PrimEffect{MutatesArg: -1, StoresArg: -1}
	// effCons: result is fresh arena structure containing the arguments.
	effCons = PrimEffect{AllocatesPairs: true, Derives: true, MutatesArg: -1, StoresArg: -1}
	// effDerive: result may alias argument structure (selectors,
	// containers built on the Go heap whose elements are the arguments).
	effDerive = PrimEffect{Derives: true, MutatesArg: -1, StoresArg: -1}
	// effListOf: result is a fresh arena list of non-aliasing elements
	// (string->list: characters are immediates).
	effListOf = PrimEffect{AllocatesPairs: true, MutatesArg: -1, StoresArg: -1}
	// effListOfElems: fresh arena spine whose elements alias the
	// argument's elements (vector->list).
	effListOfElems = PrimEffect{AllocatesPairs: true, Derives: true, MutatesArg: -1, StoresArg: -1}
)

// mut builds a mutator effect: argument m is mutated in place, argument
// s is stored into it. Mutators return unspecified, so the result
// itself aliases nothing.
func mut(m, s int) PrimEffect { return PrimEffect{MutatesArg: m, StoresArg: s} }

// primEffects classifies every primitive by name. Keep in sync with
// the runtime's table (internal/prim); the exhaustiveness test enforces
// the sync in both directions.
var primEffects = map[string]PrimEffect{
	// Arithmetic and numeric predicates: immediates and flonum boxes
	// only, no mutable structure anywhere.
	"*": effPure, "+": effPure, "-": effPure, "/": effPure,
	"1+": effPure, "1-": effPure, "add1": effPure, "sub1": effPure,
	"<": effPure, "<=": effPure, "=": effPure, ">": effPure, ">=": effPure,
	"abs": effPure, "ash": effPure, "atan": effPure, "cos": effPure,
	"even?": effPure, "expt": effPure, "exact->inexact": effPure,
	"floor": effPure, "inexact->exact": effPure, "logand": effPure,
	"logor": effPure, "logxor": effPure, "max": effPure, "min": effPure,
	"modulo": effPure, "negative?": effPure, "odd?": effPure,
	"positive?": effPure, "quotient": effPure, "remainder": effPure,
	"sin": effPure, "sqrt": effPure, "truncate": effPure, "zero?": effPure,

	// Type and equality predicates: booleans out.
	"boolean?": effPure, "box?": effPure, "char?": effPure,
	"eq?": effPure, "equal?": effPure, "eqv?": effPure,
	"fixnum?": effPure, "flonum?": effPure, "integer?": effPure,
	"null?": effPure, "number?": effPure, "pair?": effPure,
	"procedure?": effPure, "string?": effPure, "symbol?": effPure,
	"vector?": effPure,

	// Characters: immediates in, immediates or booleans out.
	"char->integer": effPure, "char-alphabetic?": effPure,
	"char-numeric?": effPure, "char-upcase": effPure,
	"char<=?": effPure, "char<?": effPure, "char=?": effPure,
	"char>=?": effPure, "char>?": effPure, "integer->char": effPure,

	// Strings and symbols: string boxes are freshly allocated on the Go
	// heap and contain no pairs or vectors, so nothing aliases and
	// nothing lives in the arena.
	"gensym": effPure, "list->string": effPure, "number->string": effPure,
	"string->number": effPure, "string->symbol": effPure,
	"string-append": effPure, "string-length": effPure,
	"string-ref": effPure, "string<?": effPure, "string=?": effPure,
	"substring": effPure, "symbol->string": effPure,

	// Output and control: no result structure.
	"display": effPure, "error": effPure, "newline": effPure,
	"void": effPure, "write": effPure, "write-char": effPure,

	// Pair constructors and selectors. cons and list draw fresh cells
	// from the arena AND embed their arguments; the c[ad]+r selectors
	// return sub-structure of their argument.
	"cons": effCons, "list": effCons,
	"car": effDerive, "cdr": effDerive,
	"caar": effDerive, "cadr": effDerive, "cdar": effDerive, "cddr": effDerive,
	"caaar": effDerive, "caadr": effDerive, "cadar": effDerive, "caddr": effDerive,
	"cdaar": effDerive, "cdadr": effDerive, "cddar": effDerive, "cdddr": effDerive,

	// Vectors and boxes: the containers live on the Go heap, but their
	// elements alias the arguments (or the argument's elements), so
	// taint still flows through them.
	"box": effDerive, "unbox": effDerive,
	"vector": effDerive, "make-vector": effDerive, "vector-ref": effDerive,
	"vector-length": effPure,
	"list->vector":  effDerive,
	"vector->list":  effListOfElems,
	"string->list":  effListOf,

	// Mutators: argument 0 is mutated in place; the stored argument's
	// lifetime now flows into every structure that can reach argument 0.
	"set-car!":     mut(0, 1),
	"set-cdr!":     mut(0, 1),
	"set-box!":     mut(0, 1),
	"vector-set!":  mut(0, 2),
	"vector-fill!": mut(0, 1),
}

// PrimEffectOf looks up the effect classification of d. ok is false for
// a primitive missing from the table; callers must treat that as fully
// conservative (allocates, derives, mutates everything) and the
// exhaustiveness test keeps the case from occurring in practice.
func PrimEffectOf(d *prim.Def) (PrimEffect, bool) {
	if d == nil {
		return PrimEffect{}, false
	}
	e, ok := primEffects[string(d.Name)]
	return e, ok
}

// conservativePrimEffect is the fallback for unknown primitives: assume
// the worst on every axis. MutatesArg/StoresArg use argument 0 as a
// stand-in; analyses seeing ok=false from PrimEffectOf should treat
// every argument as both mutated and stored.
var conservativePrimEffect = PrimEffect{
	AllocatesPairs: true, Derives: true, MutatesArg: 0, StoresArg: 0,
}
