// Package dataflow is the shared static-analysis substrate for compiled
// VM code: control-flow graph construction, basic blocks, a generic
// worklist fixpoint engine, whole-program call-graph construction with
// per-procedure summaries, and the two whole-program analyses built on
// top of them — the interprocedural save/restore waste analysis and the
// arena-lifetime escape analysis.
//
// Before this package existed, internal/verify (the translation
// validator) and internal/analysis (the optimality lint) each carried a
// private CFG walker and a private fixpoint loop over the same decoded
// instruction effects (vm.InstrEffects). Both now run on the engines
// here, so an instruction-set change touches one decoder and one
// traversal, and new analyses start from working plumbing instead of a
// third copy. The refactor is behaviour-preserving by construction and
// by test: the engines iterate in the same deterministic address-order
// schedule the originals used (procedure bodies are forward DAGs
// emitted in topological order, so one pass normally converges), and
// the differential golden test in internal/bench locks both passes'
// findings to the pre-refactor output byte-for-byte over the full
// benchmark corpus under every sweep configuration.
//
// The two layers:
//
//   - Intraprocedural: Graph (one procedure extent's CFG: per-pc
//     successors/predecessors, cached effects, basic blocks in reverse
//     postorder) and the fixpoint engines SolveForward / SolveBackward,
//     parameterized by a client-supplied transfer function and lattice
//     join (fixpoint.go).
//   - Interprocedural: CallGraph (callgraph.go) resolves each call
//     site's callee by tracking closure values through registers and
//     once-bound globals, then Summaries (summary.go) computes each
//     procedure's transitive may-clobber register set bottom-up. The
//     analyses in interproc.go and arena.go consume both.
//
// See DESIGN.md §15 for the lattice interfaces, the summary format and
// the arena-lifetime rules.
package dataflow
