package dataflow

import (
	"testing"

	"repro/internal/prim"
	"repro/internal/sexp"
	"repro/internal/vm"
)

// TestArenaCorpus is the mutation gate: every seeded violation must
// produce every expected finding kind. A change that blinds one of the
// arena rules fails here before it can let the emitter drift.
func TestArenaCorpus(t *testing.T) {
	for _, c := range ArenaViolationCorpus() {
		rep := AnalyzeArena(c.Prog, ArenaOptions{StrictResult: c.Strict})
		got := map[string]bool{}
		for _, f := range rep.Findings {
			got[f.Kind] = true
		}
		for _, k := range c.Want {
			if !got[k] {
				t.Errorf("%s: missing expected finding kind %s; report:\n%s", c.Name, k, rep.Render())
			}
		}
		if rep.Clean() {
			t.Errorf("%s: seeded violation analyzed clean", c.Name)
		}
	}
	for name, miss := range CheckArenaCorpus() {
		if len(miss) > 0 {
			t.Errorf("CheckArenaCorpus disagrees with direct analysis for %s: missing %v", name, miss)
		}
	}
}

// TestArenaCleanProgram holds the other side of the gate: a program
// that respects all three rules produces no findings, in both modes.
func TestArenaCleanProgram(t *testing.T) {
	// main: store a fresh cons into g, read it back, return a fixnum.
	p := corpusProgram([]sexp.Symbol{"g"}, []vm.Instr{
		{Op: vm.OpLoadConst, A: 3, B: 0},
		{Op: vm.OpPrim, A: 4, B: 0, Regs: []int{3, 3}},
		{Op: vm.OpStoreGlobal, A: 4, B: 0},
		{Op: vm.OpLoadGlobal, A: 5, B: 0},
		{Op: vm.OpMove, A: vm.RegRV, B: 3},
		{Op: vm.OpReturn},
	})
	withConst(p, prim.FixV(1))
	withPrim(p, "cons")
	for _, strict := range []bool{false, true} {
		rep := AnalyzeArena(p, ArenaOptions{StrictResult: strict})
		if !rep.Clean() {
			t.Errorf("strict=%v: clean program produced findings:\n%s", strict, rep.Render())
		}
	}
}

// TestArenaProtectedConstClean: a ConstMutable pair constant is copied
// into the arena per load, so neither const rule fires — and the copy
// counts as arena structure, so returning it trips only strict mode.
func TestArenaProtectedConstClean(t *testing.T) {
	p := corpusProgram(nil, []vm.Instr{
		{Op: vm.OpLoadConst, A: vm.RegRV, B: 0},
		{Op: vm.OpReturn},
	})
	ci := withConst(p, prim.PairV(corpusArena.NewPair(prim.FixV(1), prim.Empty)))
	p.ConstMutable[ci] = true
	if rep := AnalyzeArena(p, ArenaOptions{}); !rep.Clean() {
		t.Errorf("protected const flagged:\n%s", rep.Render())
	}
	rep := AnalyzeArena(p, ArenaOptions{StrictResult: true})
	if rep.Totals.ResultEscapes == 0 {
		t.Errorf("arena copy of a protected const escaping as the result not flagged under StrictResult:\n%s", rep.Render())
	}
}

// TestArenaResultEscapeOnlyStrict: the result-escape rule must stay
// opt-in; returning list structure is the machine's documented
// contract.
func TestArenaResultEscapeOnlyStrict(t *testing.T) {
	p := corpusProgram(nil, []vm.Instr{
		{Op: vm.OpLoadConst, A: 3, B: 0},
		{Op: vm.OpPrim, A: vm.RegRV, B: 0, Regs: []int{3, 3}},
		{Op: vm.OpReturn},
	})
	withConst(p, prim.FixV(1))
	withPrim(p, "cons")
	if rep := AnalyzeArena(p, ArenaOptions{}); !rep.Clean() {
		t.Errorf("result escape reported without StrictResult:\n%s", rep.Render())
	}
	if rep := AnalyzeArena(p, ArenaOptions{StrictResult: true}); rep.Totals.ResultEscapes == 0 {
		t.Errorf("result escape missed under StrictResult:\n%s", rep.Render())
	}
}

// TestArenaClosureTainted: closure objects come from the per-machine
// arena slab (PR 10), so even a closure that captures nothing is arena
// structure from birth. Storing one into a global must make an earlier
// read of that global stale, and returning one must trip StrictResult
// — both would have analyzed clean under the pre-slab rule that only
// propagated captured taint.
func TestArenaClosureTainted(t *testing.T) {
	p := corpusProgram([]sexp.Symbol{"g"}, []vm.Instr{
		{Op: vm.OpLoadGlobal, A: 3, B: 0},         // read g before its store
		{Op: vm.OpClosure, A: 4, B: 1, Regs: nil}, // capture-free closure of f
		{Op: vm.OpStoreGlobal, A: 4, B: 0},        // g <- closure
		{Op: vm.OpMove, A: vm.RegRV, B: 4},
		{Op: vm.OpReturn},
	}, corpusProc{
		name: "f",
		body: []vm.Instr{{Op: vm.OpEntry, A: 0, B: 0}, {Op: vm.OpReturn}},
	})
	rep := AnalyzeArena(p, ArenaOptions{})
	if rep.Totals.StaleGlobalReads == 0 {
		t.Errorf("stale read of a closure-holding global not flagged:\n%s", rep.Render())
	}
	if rep.Totals.TaintedGlobals != 1 {
		t.Errorf("closure store did not taint the global, got %d tainted:\n%s", rep.Totals.TaintedGlobals, rep.Render())
	}
	if rep := AnalyzeArena(p, ArenaOptions{StrictResult: true}); rep.Totals.ResultEscapes == 0 {
		t.Errorf("capture-free closure escaping as the result not flagged under StrictResult:\n%s", rep.Render())
	}
}

// TestPrimEffectsExhaustive keeps prims.go in lockstep with the
// runtime's primitive table, in both directions: every primitive must
// be classified, and every classification must name a primitive.
func TestPrimEffectsExhaustive(t *testing.T) {
	known := map[string]bool{}
	for _, d := range prim.All() {
		known[string(d.Name)] = true
		if _, ok := primEffects[string(d.Name)]; !ok {
			t.Errorf("primitive %s has no effect classification; add it to primEffects", d.Name)
		}
	}
	for name := range primEffects {
		if !known[name] {
			t.Errorf("primEffects entry %q names no primitive in the runtime table", name)
		}
	}
}

// TestPrimEffectOfUnknown: an unregistered primitive must come back
// un-ok so analyses fall to the conservative effect.
func TestPrimEffectOfUnknown(t *testing.T) {
	if _, ok := PrimEffectOf(nil); ok {
		t.Error("nil def classified")
	}
	if !conservativePrimEffect.AllocatesPairs || !conservativePrimEffect.Derives ||
		conservativePrimEffect.MutatesArg != 0 || conservativePrimEffect.StoresArg != 0 {
		t.Error("conservative effect is not fully conservative")
	}
}

// TestArenaMutatorTaintsGlobals: once a mutator stores arena structure
// into anything, every code-stored global is assumed to hold it — the
// conservative widening that keeps rule 2 sound without heap modeling.
func TestArenaMutatorTaintsGlobals(t *testing.T) {
	// g1 <- plain fixnum-carrying box... then set-car! splices a fresh
	// cons into a pair read back from g1, without ever storing the cons
	// into g1 directly. g1 must still become tainted, and the early read
	// of g2 (also stored by code) must be flagged.
	p := corpusProgram([]sexp.Symbol{"g1", "g2"}, []vm.Instr{
		{Op: vm.OpLoadGlobal, A: 6, B: 1}, // read g2 before its store
		{Op: vm.OpLoadConst, A: 3, B: 0},
		{Op: vm.OpPrim, A: 4, B: 0, Regs: []int{3, 3}}, // fresh cons A
		{Op: vm.OpStoreGlobal, A: 4, B: 1},             // g2 <- cons A (restore path)
		{Op: vm.OpPrim, A: 5, B: 0, Regs: []int{3, 3}}, // fresh cons B
		{Op: vm.OpPrim, A: 7, B: 1, Regs: []int{4, 5}}, // set-car!(A, B): hazard
		{Op: vm.OpStoreGlobal, A: 3, B: 0},             // g1 <- fixnum (but widened)
		{Op: vm.OpMove, A: vm.RegRV, B: 3},
		{Op: vm.OpReturn},
	})
	withConst(p, prim.FixV(1))
	withPrim(p, "cons")
	withPrim(p, "set-car!")
	rep := AnalyzeArena(p, ArenaOptions{})
	if !rep.Totals.MutationHazard {
		t.Fatalf("mutation hazard not detected:\n%s", rep.Render())
	}
	if rep.Totals.TaintedGlobals != 2 {
		t.Errorf("want both globals tainted after a mutation hazard, got %d:\n%s", rep.Totals.TaintedGlobals, rep.Render())
	}
	if rep.Totals.StaleGlobalReads == 0 {
		t.Errorf("stale read of g2 before its store not flagged:\n%s", rep.Render())
	}
}
