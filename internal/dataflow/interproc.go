package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/findings"
	"repro/internal/regset"
	"repro/internal/vm"
)

// The interprocedural save/restore waste analysis. The intraprocedural
// passes assume every call destroys the whole caller-save set — that is
// the contract the allocator compiles against, and the machine's
// -validate mode physically poisons those registers. But the registers
// an actual callee touches are usually a small subset, so some of the
// saves and restores the allocator must emit are provably no-ops for
// the program as compiled. This pass quantifies that slack: it resolves
// each call's callee (callgraph.go), computes transitive may-clobber
// summaries (summary.go), then runs a forward must-analysis per
// procedure tracking which registers still hold the same value as which
// frame slots. A restore whose register provably already holds the
// slot's value is a cross-call-dead-restore; a save whose every
// reachable read is such a restore is a cross-call-redundant-save (the
// save and its restores are removable together).
//
// The findings are advisory, not gated: they measure the headroom an
// interprocedural register allocator would have over the paper's
// per-procedure one, they do not indicate emitter bugs. Removing the
// flagged instructions would break the allocator's own contract (and
// trip -validate) unless callers and callees were allocated together.

// Interprocedural finding kinds.
const (
	// KindCrossCallDeadRestore marks a restore that reloads a value the
	// register provably still holds given callee clobber summaries.
	KindCrossCallDeadRestore = "cross-call-dead-restore"
	// KindCrossCallRedundantSave marks a save whose every reachable read
	// is a cross-call-dead restore.
	KindCrossCallRedundantSave = "cross-call-redundant-save"
)

// InterprocStats aggregates one program's interprocedural audit.
type InterprocStats struct {
	// CallSites counts reachable call instructions; ResolvedSites those
	// whose callee summary is sharper than the conservative assumption.
	CallSites     int `json:"call_sites"`
	ResolvedSites int `json:"resolved_sites"`
	// Saves and Restores count static allocator-placed sites.
	Saves    int `json:"saves"`
	Restores int `json:"restores"`
	// CrossDeadRestores and CrossRedundantSaves count the findings.
	CrossDeadRestores   int `json:"cross_dead_restores"`
	CrossRedundantSaves int `json:"cross_redundant_saves"`
}

// InterprocReport is the analysis result for one program.
type InterprocReport struct {
	Findings []findings.Finding
	Totals   InterprocStats
}

// matchState tracks, per register, the set of frame slots whose current
// value the register provably equals on every path (a must-analysis:
// joins intersect).
type matchState [][]uint64

type matchProblem struct {
	p        *vm.Program
	g        *Graph
	nRegs    int
	frame    int
	words    int
	callClob map[int]regset.Set
}

func (mp matchProblem) Entry() matchState {
	s := make(matchState, mp.nRegs)
	for r := range s {
		s[r] = make([]uint64, mp.words)
	}
	return s
}

func (mp matchProblem) Clone(s matchState) matchState {
	out := make(matchState, len(s))
	for r := range s {
		out[r] = append([]uint64(nil), s[r]...)
	}
	return out
}

func (mp matchProblem) Join(dst, src matchState) (matchState, bool) {
	changed := false
	for r := range dst {
		for w := range dst[r] {
			if nv := dst[r][w] & src[r][w]; nv != dst[r][w] {
				dst[r][w] = nv
				changed = true
			}
		}
	}
	return dst, changed
}

func (mp matchProblem) zero(s matchState, r int) {
	for w := range s[r] {
		s[r][w] = 0
	}
}

func (mp matchProblem) clearSlot(s matchState, sl int) {
	for r := range s {
		s[r][sl/64] &^= 1 << (sl % 64)
	}
}

func (mp matchProblem) Transfer(pc int, s matchState) matchState {
	in := mp.p.Code[pc]
	switch in.Op {
	case vm.OpMove:
		copy(s[in.A], s[in.B])
	case vm.OpLoadSlot:
		mp.zero(s, in.A)
		if in.B >= 0 && in.B < mp.frame {
			s[in.A][in.B/64] |= 1 << (in.B % 64)
		}
	case vm.OpStoreSlot:
		if in.B >= 0 && in.B < mp.frame {
			mp.clearSlot(s, in.B)
			s[in.A][in.B/64] |= 1 << (in.B % 64)
		}
	case vm.OpCall, vm.OpCallCC:
		mp.callClob[pc].ForEach(func(r int) { mp.zero(s, r) })
	default:
		e := mp.g.Effects(pc)
		e.Defs.Union(e.Clobbers).ForEach(func(r int) { mp.zero(s, r) })
		for _, sl := range e.WriteSlots {
			if sl >= 0 && sl < mp.frame {
				mp.clearSlot(s, sl)
			}
		}
	}
	return s
}

func (s matchState) has(r, sl int) bool {
	return s[r][sl/64]&(1<<(sl%64)) != 0
}

// AnalyzeInterproc runs the interprocedural save/restore waste audit.
func AnalyzeInterproc(p *vm.Program) *InterprocReport {
	cg := BuildCallGraph(p)
	sums := ComputeSummaries(cg)
	rep := &InterprocReport{}

	siteAt := make(map[int]CallSite, len(cg.Sites))
	for _, site := range cg.Sites {
		siteAt[site.PC] = site
		rep.Totals.CallSites++
		if _, ok := sums.CallEffect(site); ok {
			rep.Totals.ResolvedSites++
		}
	}

	for ei := range cg.Extents {
		g := cg.Graphs[ei]
		if g == nil {
			continue
		}
		analyzeExtentInterproc(p, cg, sums, ei, siteAt, rep)
	}
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		if rep.Findings[i].PC != rep.Findings[j].PC {
			return rep.Findings[i].PC < rep.Findings[j].PC
		}
		return rep.Findings[i].Kind < rep.Findings[j].Kind
	})
	return rep
}

func analyzeExtentInterproc(p *vm.Program, cg *CallGraph, sums *Summaries, ei int, siteAt map[int]CallSite, rep *InterprocReport) {
	g := cg.Graphs[ei]
	ext := cg.Extents[ei]
	frame := 0
	if in := p.Code[ext.Start]; in.Op == vm.OpEntry && in.B > 0 {
		frame = in.B
	}
	mp := matchProblem{
		p:        p,
		g:        g,
		nRegs:    p.Config.NumRegs(),
		frame:    frame,
		words:    (frame + 63) / 64,
		callClob: map[int]regset.Set{},
	}
	full := regset.Universe(p.Config.CallerSaveLimit())
	for pc := g.Start(); pc < g.End(); pc++ {
		op := p.Code[pc].Op
		if op != vm.OpCall && op != vm.OpCallCC {
			continue
		}
		if site, ok := siteAt[pc]; ok {
			clob, _ := sums.CallEffect(site)
			mp.callClob[pc] = clob
		} else {
			mp.callClob[pc] = full
		}
	}
	in, reached, converged := SolveForward[matchState](g, mp, DefaultMaxPasses)
	if !converged {
		return
	}

	report := func(kind string, pc, reg, slot, callPC int, msg string, witness []int) {
		rep.Findings = append(rep.Findings, findings.Finding{
			Tool: "interproc", Kind: kind, Proc: ext.Info.Name,
			PC: pc, Instr: p.FormatInstr(p.Code[pc]),
			Reg: reg, Slot: slot, CallPC: callPC,
			Msg: msg, Witness: witness,
		})
	}
	// nearestCallBefore finds the last call on the entry→pc witness
	// path, the call whose sharpened summary makes the finding real.
	nearestCallBefore := func(path []int) int {
		for i := len(path) - 1; i >= 0; i-- {
			if op := p.Code[path[i]].Op; op == vm.OpCall || op == vm.OpCallCC {
				return path[i]
			}
		}
		return -1
	}

	deadRestore := map[int]bool{}
	for pc := g.Start(); pc < g.End(); pc++ {
		if !reached[pc-g.Start()] {
			continue
		}
		instr := p.Code[pc]
		switch {
		case instr.Op == vm.OpStoreSlot && instr.Kind == vm.KindSave:
			rep.Totals.Saves++
		case instr.Op == vm.OpLoadSlot && instr.Kind == vm.KindRestore:
			rep.Totals.Restores++
			if instr.B >= 0 && instr.B < frame && in[pc-g.Start()].has(instr.A, instr.B) {
				deadRestore[pc] = true
				rep.Totals.CrossDeadRestores++
				witness := g.WitnessPath(pc)
				callPC := nearestCallBefore(witness)
				msg := fmt.Sprintf("restore of r%d from fp[%d] reloads a value r%d provably still holds: no callee on any path since the save clobbers it",
					instr.A, instr.B, instr.A)
				if callPC >= 0 {
					if site, ok := siteAt[callPC]; ok && site.Callee.Kind == CalleeProc {
						msg += fmt.Sprintf(" (call at pc %d resolves to %s, clobbers %s)",
							callPC, p.Procs[site.Callee.Index].Name, sums.ByProc[site.Callee.Index])
					}
				}
				report(KindCrossCallDeadRestore, pc, instr.A, instr.B, callPC, msg, witness)
			}
		}
	}

	// A save is cross-call-redundant when its slot has at least one
	// reachable read and every such read is a cross-call-dead restore:
	// the save and those restores are removable as a unit. Slots with no
	// reads at all are the intraprocedural lint's redundant-save finding
	// and are not re-reported here.
	for pc := g.Start(); pc < g.End(); pc++ {
		if !reached[pc-g.Start()] {
			continue
		}
		instr := p.Code[pc]
		if instr.Op != vm.OpStoreSlot || instr.Kind != vm.KindSave || instr.B < 0 || instr.B >= frame {
			continue
		}
		reads := slotReadsFrom(p, g, pc, instr.B)
		if len(reads) == 0 {
			continue
		}
		allDead := true
		for _, rpc := range reads {
			if !deadRestore[rpc] {
				allDead = false
				break
			}
		}
		if !allDead {
			continue
		}
		rep.Totals.CrossRedundantSaves++
		witness := g.WitnessPath(pc)
		tail := g.PathFrom(pc, func(q int) bool { return q != pc && deadRestore[q] }, nil)
		if len(tail) > 1 {
			witness = append(witness, tail[1:]...)
		}
		callPC := nearestCallBefore(witness)
		report(KindCrossCallRedundantSave, pc, instr.A, instr.B, callPC,
			fmt.Sprintf("save of r%d into fp[%d] is only read by restores of values the registers still hold — save and restores are removable together given callee clobber summaries",
				instr.A, instr.B),
			witness)
	}
}

// slotReadsFrom walks forward from the save at pc and collects every
// instruction that can read slot sl before it is overwritten: the
// "first uses" the save exists to serve. Reads do not stop the walk
// (later reads of the same stored value count too); writes do.
func slotReadsFrom(p *vm.Program, g *Graph, pc, sl int) []int {
	seen := make(map[int]bool)
	var reads []int
	var buf [2]int
	stack := append([]int(nil), g.Succs(pc, buf[:])...)
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[q] {
			continue
		}
		seen[q] = true
		e := g.Effects(q)
		for _, s := range e.ReadSlots {
			if s == sl {
				reads = append(reads, q)
				break
			}
		}
		overwritten := false
		for _, s := range e.WriteSlots {
			if s == sl {
				overwritten = true
				break
			}
		}
		if overwritten {
			continue
		}
		stack = append(stack, g.Succs(q, buf[:])...)
	}
	return reads
}

// Render formats the report for humans.
func (r *InterprocReport) Render() string {
	var b strings.Builder
	t := r.Totals
	fmt.Fprintf(&b, "interproc: %d finding(s): %d cross-call dead restore(s), %d cross-call redundant save(s)\n",
		len(r.Findings), t.CrossDeadRestores, t.CrossRedundantSaves)
	fmt.Fprintf(&b, "call sites: %d/%d resolved; static sites: %d save(s), %d restore(s)\n",
		t.ResolvedSites, t.CallSites, t.Saves, t.Restores)
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  %s at pc %d in %s [%s]: %s\n", f.Kind, f.PC, f.Proc, f.Instr, f.Msg)
	}
	return b.String()
}
