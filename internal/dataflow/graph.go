package dataflow

import (
	"fmt"

	"repro/internal/vm"
)

// Graph is the control-flow graph of one procedure extent [Start, End)
// of a program's code: per-instruction decoded effects, successor and
// predecessor edges, and basic blocks. Construction fails (with a
// reason) when the extent cannot be walked — an unknown opcode, a jump
// leaving the extent, or control falling off the end; the verifier
// reports those structurally, and dataflow over them would be
// meaningless.
type Graph struct {
	start, end int
	eff        []vm.Effects
	blocks     []Block
	blockOf    []int32 // pc-start -> block index
}

// NewGraph builds the CFG for the instructions [start, end) of p.
func NewGraph(p *vm.Program, start, end int) (*Graph, error) {
	if start < 0 || end > len(p.Code) || start >= end {
		return nil, fmt.Errorf("dataflow: extent [%d,%d) outside code of %d", start, end, len(p.Code))
	}
	eff := make([]vm.Effects, end-start)
	for pc := start; pc < end; pc++ {
		e, ok := p.Code[pc].InstrEffects(p.Config)
		if !ok {
			return nil, fmt.Errorf("dataflow: unknown opcode %d at pc %d", p.Code[pc].Op, pc)
		}
		if e.Jump >= 0 && (e.Jump < start || e.Jump >= end) {
			return nil, fmt.Errorf("dataflow: jump target %d at pc %d outside extent [%d,%d)", e.Jump, pc, start, end)
		}
		if e.FallsThrough && pc+1 >= end {
			return nil, fmt.Errorf("dataflow: control falls off the extent end at pc %d", pc)
		}
		eff[pc-start] = e
	}
	return newGraph(start, end, eff), nil
}

// GraphFromEffects wraps an effects slice the caller already decoded
// and bounds-checked (the verifier builds one during its structural
// prescan). eff[i] describes the instruction at start+i.
func GraphFromEffects(start, end int, eff []vm.Effects) *Graph {
	return newGraph(start, end, eff)
}

func newGraph(start, end int, eff []vm.Effects) *Graph {
	g := &Graph{start: start, end: end, eff: eff}
	g.buildBlocks()
	return g
}

// Start and End delimit the extent.
func (g *Graph) Start() int { return g.start }
func (g *Graph) End() int   { return g.end }

// Effects returns the cached def/use effects of the instruction at pc.
func (g *Graph) Effects(pc int) vm.Effects { return g.eff[pc-g.start] }

// Succs lists pc's intra-procedure successors into buf. An instruction
// has at most two: the fall-through and the branch/jump target.
func (g *Graph) Succs(pc int, buf []int) []int {
	e := g.eff[pc-g.start]
	buf = buf[:0]
	if e.FallsThrough {
		buf = append(buf, pc+1)
	}
	if e.Jump >= 0 {
		buf = append(buf, e.Jump)
	}
	return buf
}

// Block is one basic block: the instruction range [Start, End), entered
// only at Start and left only at End-1. Succs and Preds are indices
// into Graph.Blocks.
type Block struct {
	Start, End int
	Succs      []int
	Preds      []int
}

// Blocks returns the basic blocks in address order (which, for the
// forward-DAG bodies the emitter produces, is also a reverse postorder:
// every edge except loop back-edges goes from a lower to a higher
// address).
func (g *Graph) Blocks() []Block { return g.blocks }

// BlockOf returns the index of the block containing pc.
func (g *Graph) BlockOf(pc int) int { return int(g.blockOf[pc-g.start]) }

// buildBlocks computes leaders (the extent start, jump/branch targets,
// and instructions after a branch or a non-falling-through instruction)
// and wires block-level edges.
func (g *Graph) buildBlocks() {
	n := g.end - g.start
	leader := make([]bool, n)
	leader[0] = true
	for pc := g.start; pc < g.end; pc++ {
		e := g.eff[pc-g.start]
		if e.Jump >= 0 {
			leader[e.Jump-g.start] = true
			if pc+1 < g.end {
				leader[pc+1-g.start] = true
			}
		}
		if !e.FallsThrough && pc+1 < g.end {
			leader[pc+1-g.start] = true
		}
	}
	g.blockOf = make([]int32, n)
	for i := 0; i < n; i++ {
		if leader[i] {
			g.blocks = append(g.blocks, Block{Start: g.start + i})
		}
		g.blockOf[i] = int32(len(g.blocks) - 1)
	}
	for bi := range g.blocks {
		if bi+1 < len(g.blocks) {
			g.blocks[bi].End = g.blocks[bi+1].Start
		} else {
			g.blocks[bi].End = g.end
		}
	}
	var buf [2]int
	for bi := range g.blocks {
		last := g.blocks[bi].End - 1
		for _, succ := range g.Succs(last, buf[:]) {
			sb := g.BlockOf(succ)
			g.blocks[bi].Succs = append(g.blocks[bi].Succs, sb)
			g.blocks[sb].Preds = append(g.blocks[sb].Preds, bi)
		}
	}
}

// Extent is one procedure's contiguous code region [Start, End) plus
// its metadata. Procedures are emitted contiguously, so a body runs
// from its entry to the next entry (or the end of the code).
type Extent struct {
	Info  vm.ProcInfo
	Index int // index into Program.Procs
	Start int
	End   int
}

// Extents computes every procedure's code extent in address order,
// skipping procedures whose entry lies outside the code (the verifier
// reports those as violations).
func Extents(p *vm.Program) []Extent {
	var out []Extent
	for i, info := range p.Procs {
		if info.Entry <= 0 || info.Entry >= len(p.Code) {
			continue
		}
		out = append(out, Extent{Info: info, Index: i, Start: info.Entry})
	}
	// Insertion sort by entry address: the emitter already orders
	// procedures, so this is one linear pass in practice.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Start < out[j-1].Start; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	for i := range out {
		if i+1 < len(out) {
			out[i].End = out[i+1].Start
		} else {
			out[i].End = len(p.Code)
		}
	}
	return out
}
