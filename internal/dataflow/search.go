package dataflow

// Shortest-path searches over the CFG, used to build the witness paths
// attached to findings: a reported violation carries one concrete
// static path a developer can read, not just a program point.

// PathFrom finds a shortest path beginning at from and ending at the
// first instruction satisfying stop. Nodes for which avoid returns true
// are not traversed (avoid may be nil); the stop node itself is still
// tested before its avoid status matters. It returns nil when no such
// path exists.
func (g *Graph) PathFrom(from int, stop func(pc int) bool, avoid func(pc int) bool) []int {
	if from < g.start || from >= g.end {
		return nil
	}
	if stop(from) {
		return []int{from}
	}
	if avoid != nil && avoid(from) {
		return nil
	}
	n := g.end - g.start
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[from-g.start] = int32(from)
	queue := []int{from}
	var buf [2]int
	for len(queue) > 0 {
		pc := queue[0]
		queue = queue[1:]
		for _, succ := range g.Succs(pc, buf[:]) {
			i := succ - g.start
			if parent[i] >= 0 {
				continue
			}
			parent[i] = int32(pc)
			if stop(succ) {
				var rev []int
				for at := succ; at != from; at = int(parent[at-g.start]) {
					rev = append(rev, at)
				}
				rev = append(rev, from)
				path := make([]int, len(rev))
				for j, p := range rev {
					path[len(rev)-1-j] = p
				}
				return path
			}
			if avoid != nil && avoid(succ) {
				continue
			}
			queue = append(queue, succ)
		}
	}
	return nil
}

// WitnessPath finds any shortest path from the extent start to target.
func (g *Graph) WitnessPath(target int) []int {
	return g.PathFrom(g.start, func(pc int) bool { return pc == target }, nil)
}

// CellPath finds a shortest path from the extent start to target
// arriving with a simulated single cell in state want. The cell starts
// in state init; trans advances it across the instruction at pc; states
// are small integers in [0, numStates). The search runs a BFS over
// (pc, cell-state) nodes — far cheaper than replaying a full abstract
// state, and enough to pick the path a developer should read. When no
// such path exists it falls back to any shortest path to target.
func (g *Graph) CellPath(target int, init, want uint8, numStates int, trans func(pc int, k uint8) uint8) []int {
	n := g.end - g.start
	parent := make([]int32, n*numStates)
	for i := range parent {
		parent[i] = -1
	}
	node := func(pc int, k uint8) int { return (pc-g.start)*numStates + int(k) }
	startNode := node(g.start, init)
	parent[startNode] = int32(startNode)
	queue := []int{startNode}
	goal := -1
	if g.start == target && init == want {
		goal = startNode
	}
	var buf [2]int
	for len(queue) > 0 && goal < 0 {
		cur := queue[0]
		queue = queue[1:]
		pc := g.start + cur/numStates
		k := uint8(cur % numStates)
		nk := trans(pc, k)
		for _, succ := range g.Succs(pc, buf[:]) {
			nn := node(succ, nk)
			if parent[nn] >= 0 {
				continue
			}
			parent[nn] = int32(cur)
			if succ == target && nk == want {
				goal = nn
				break
			}
			queue = append(queue, nn)
		}
	}
	if goal < 0 {
		return g.WitnessPath(target)
	}
	var rev []int
	for at := goal; ; at = int(parent[at]) {
		rev = append(rev, g.start+at/numStates)
		if at == int(parent[at]) {
			break
		}
	}
	path := make([]int, len(rev))
	for i, pc := range rev {
		path[len(rev)-1-i] = pc
	}
	return path
}
