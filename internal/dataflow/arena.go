package dataflow

import (
	"fmt"
	"sort"

	"repro/internal/findings"
	"repro/internal/prim"
	"repro/internal/vm"
)

// The arena-lifetime escape analysis. Pair cells, closure objects, and
// closure free-variable slices come from a per-machine arena
// (prim.Arena) that Machine.Recycle invalidates wholesale between
// runs, and constants containing mutable structure are shared
// Program-lifetime values that every load must arena-copy
// (Program.ConstMutable). Closures joined the arena in PR 10, so the
// analysis treats every OpClosure result (and the bootstrap closure in
// main's cp register) as arena-tainted from birth; the rules below are
// checked for the combined pair+closure ownership story:
//
//  1. const-pool protection: every constant containing mutable
//     structure (pairs or vectors) must be marked ConstMutable so the
//     machine copies it per load (kind arena-const-unprotected), and no
//     mutating primitive may receive structure loaded from an
//     unprotected constant (kind arena-const-mutation) — otherwise one
//     machine's set-car! corrupts the Program every machine shares.
//
//  2. no stale global reads: a global that may hold arena-derived
//     structure must be provably re-stored on every path from main's
//     entry before anything can read it — directly in main, or
//     transitively through a call from main (kind
//     arena-stale-global-read). Globals survive Recycle but their
//     arena-derived contents do not, so a read that can happen before
//     the same-run store would observe recycled cells on a re-run.
//
//  3. optionally (StrictResult), the program result must be provably
//     arena-free (kind arena-result-escape): an embedder that recycles
//     between runs while retaining results needs Machine.Recycle's
//     caveat to be vacuous. Real programs return list structure all the
//     time — the machine's contract makes the CALLER keep the result
//     alive past Recycle — so this rule is opt-in.
//
// The analysis is a whole-program forward taint pass built on the
// package's CFG + fixpoint engine: per extent it tracks, for every
// register and frame slot, whether the value may contain arena cells
// (arenaT) and whether it may contain unprotected Program-lifetime
// structure (constT), with primitive effects classified by prims.go and
// global taint resolved by an outer fixpoint like the call-graph
// builder's. Mutation is handled conservatively: once any mutator
// stores an arena-derived value anywhere (set-car!, vector-set!, ...),
// every global the code ever stores is assumed arena-tainted, since the
// mutated structure may be reachable from any of them.

// Arena finding kinds.
const (
	// KindArenaConstUnprotected marks a constant-pool entry containing
	// mutable structure that is not flagged ConstMutable.
	KindArenaConstUnprotected = "arena-const-unprotected"
	// KindArenaConstMutation marks a mutating primitive whose mutated
	// argument may be unprotected Program-lifetime structure.
	KindArenaConstMutation = "arena-const-mutation"
	// KindArenaStaleGlobalRead marks a read (direct or through a call
	// from main) of an arena-tainted global that is not provably
	// re-stored first in the current run.
	KindArenaStaleGlobalRead = "arena-stale-global-read"
	// KindArenaResultEscape marks a program whose result may contain
	// arena cells (reported only under ArenaOptions.StrictResult).
	KindArenaResultEscape = "arena-result-escape"
)

// ArenaOptions configures the analysis.
type ArenaOptions struct {
	// StrictResult additionally requires the program result to be
	// arena-free (see the package rules above).
	StrictResult bool
}

// ArenaStats aggregates one program's audit.
type ArenaStats struct {
	// Extents counts procedure bodies analyzed; Unanalyzable those whose
	// CFG could not be built (every check involving them degrades to the
	// conservative assumption).
	Extents      int `json:"extents"`
	Unanalyzable int `json:"unanalyzable"`
	// MutableConsts counts constant-pool entries with mutable structure;
	// TaintedGlobals the globals that may hold arena-derived values.
	MutableConsts  int `json:"mutable_consts"`
	TaintedGlobals int `json:"tainted_globals"`
	// MutationHazard reports that some mutator may store arena-derived
	// structure (the conservative trigger for rule 2's global taint).
	MutationHazard bool `json:"mutation_hazard"`
	// Findings counts by kind.
	ConstUnprotected int `json:"const_unprotected"`
	ConstMutations   int `json:"const_mutations"`
	StaleGlobalReads int `json:"stale_global_reads"`
	ResultEscapes    int `json:"result_escapes"`
}

// ArenaReport is the analysis result for one program.
type ArenaReport struct {
	Findings []findings.Finding
	Totals   ArenaStats
}

// Clean reports whether the audit found no violations.
func (r *ArenaReport) Clean() bool { return len(r.Findings) == 0 }

// hasMutableStructure reports whether v contains a pair or vector
// anywhere (the structures CopyTree copies and mutators can change).
// Matches the compiler's ConstMutable predicate, which only needs to
// look at the top level: any nested pair or vector sits under a
// top-level pair or vector.
func hasMutableStructure(v prim.Value) bool {
	if _, ok := v.Pair(); ok {
		return true
	}
	_, ok := v.Vector()
	return ok
}

// taintState is the per-point lattice: two bits per location (registers
// then frame slots) — may-hold-arena and may-hold-unprotected-const.
// Join is bitwise OR (a may-analysis).
type taintState struct {
	arena []bool
	conz  []bool
}

type taintProblem struct {
	p      *vm.Program
	g      *Graph
	nRegs  int
	frame  int
	isMain bool
	// constUnprotected[i] is true for const-pool entries with mutable
	// structure not marked ConstMutable (rule 1 scan's result).
	constUnprotected []bool
	gArena, gConst   []bool
	// effects discovered during transfer (monotone accumulators; safe
	// because the engine only re-runs transfer, never un-runs it).
	mutHazard *bool
	constMut  map[int]int // pc -> operand register/slot of the mutation
}

func (tp taintProblem) size() int { return tp.nRegs + tp.frame }

func (tp taintProblem) Entry() taintState {
	s := taintState{arena: make([]bool, tp.size()), conz: make([]bool, tp.size())}
	if !tp.isMain {
		// A procedure can be handed anything through registers and
		// stack-passed arguments. Unprotected const structure is excluded
		// by rule 1: when the scan is clean no such value exists at run
		// time, and when it is not, the const-unprotected finding already
		// fired.
		for i := range s.arena {
			s.arena[i] = true
		}
	} else if vm.RegCP < tp.nRegs {
		// Main starts with the bootstrap closure in cp, which is
		// arena-allocated like every other closure (machine.go Run).
		s.arena[vm.RegCP] = true
	}
	return s
}

func (tp taintProblem) Clone(s taintState) taintState {
	return taintState{
		arena: append([]bool(nil), s.arena...),
		conz:  append([]bool(nil), s.conz...),
	}
}

func (tp taintProblem) Join(dst, src taintState) (taintState, bool) {
	changed := false
	for i := range dst.arena {
		if src.arena[i] && !dst.arena[i] {
			dst.arena[i] = true
			changed = true
		}
		if src.conz[i] && !dst.conz[i] {
			dst.conz[i] = true
			changed = true
		}
	}
	return dst, changed
}

// loc maps an OpPrim/OpClosure operand to a state index (-1 if out of
// the tracked range).
func (tp taintProblem) loc(operand int) int {
	if vm.IsSlotOperand(operand) {
		if sl := vm.SlotOperand(operand); sl >= 0 && sl < tp.frame {
			return tp.nRegs + sl
		}
		return -1
	}
	if operand >= 0 && operand < tp.nRegs {
		return operand
	}
	return -1
}

func (tp taintProblem) taintAt(s taintState, operand int) (arena, conz bool) {
	if i := tp.loc(operand); i >= 0 {
		return s.arena[i], s.conz[i]
	}
	// Out-of-range operand: conservative.
	return true, true
}

func (tp taintProblem) set(s taintState, reg int, arena, conz bool) {
	if reg >= 0 && reg < tp.nRegs {
		s.arena[reg] = arena
		s.conz[reg] = conz
	}
}

func (tp taintProblem) Transfer(pc int, s taintState) taintState {
	in := tp.p.Code[pc]
	switch in.Op {
	case vm.OpMove:
		if in.B >= 0 && in.B < tp.nRegs {
			tp.set(s, in.A, s.arena[in.B], s.conz[in.B])
		} else {
			tp.set(s, in.A, true, true)
		}
	case vm.OpLoadConst:
		arena, conz := false, false
		if in.B >= 0 && in.B < len(tp.p.Consts) {
			mutable := in.B < len(tp.p.ConstMutable) && tp.p.ConstMutable[in.B]
			if mutable {
				// Copied per load: fresh arena structure.
				arena = hasMutableStructure(tp.p.Consts[in.B])
			} else if in.B < len(tp.constUnprotected) && tp.constUnprotected[in.B] {
				// Rule 1 violation: the load aliases the Program's value.
				conz = true
			}
		} else {
			arena, conz = true, true
		}
		tp.set(s, in.A, arena, conz)
	case vm.OpLoadGlobal:
		if in.B >= 0 && in.B < len(tp.gArena) {
			tp.set(s, in.A, tp.gArena[in.B], tp.gConst[in.B])
		} else {
			tp.set(s, in.A, true, true)
		}
	case vm.OpStoreGlobal:
		// Folded into the global taint by the outer fixpoint; no
		// register effect.
	case vm.OpLoadSlot:
		if in.B >= 0 && in.B < tp.frame {
			tp.set(s, in.A, s.arena[tp.nRegs+in.B], s.conz[tp.nRegs+in.B])
		} else {
			tp.set(s, in.A, true, true)
		}
	case vm.OpStoreSlot:
		if in.B >= 0 && in.B < tp.frame {
			a, c := tp.taintAt(s, in.A)
			s.arena[tp.nRegs+in.B] = a
			s.conz[tp.nRegs+in.B] = c
		}
	case vm.OpStoreOut:
		// Writes the callee's frame; the callee's entry state is already
		// fully tainted.
	case vm.OpClosure:
		// The closure object itself is allocated from the machine's
		// arena slab (PR 10), so the result is arena-tainted no matter
		// what it captures; const taint still comes from the captured
		// operands.
		conz := false
		for _, r := range in.Regs {
			_, c := tp.taintAt(s, r)
			conz = conz || c
		}
		tp.set(s, in.A, true, conz)
	case vm.OpClosurePatch:
		// Patches a captured slot of the closure in A with the value in
		// C. The closure may already be stored elsewhere (that is the
		// point of patching), so a tainted patch is a mutation hazard.
		a, c := tp.taintAt(s, in.C)
		if a {
			*tp.mutHazard = true
		}
		if in.A >= 0 && in.A < tp.nRegs {
			s.arena[in.A] = s.arena[in.A] || a
			s.conz[in.A] = s.conz[in.A] || c
		}
	case vm.OpFreeRef:
		// Free variables of the running closure: anything the creator
		// captured. Arena-conservative; const-free by rule 1.
		tp.set(s, in.A, true, false)
	case vm.OpPrim:
		tp.transferPrim(pc, in, s)
	case vm.OpCall, vm.OpCallCC:
		// The callee may return arena structure and leaves the
		// caller-save registers clobbered (restored values reload from
		// slots, which keep their own taint). Const-free by rule 1.
		e := tp.g.Effects(pc)
		e.Defs.Union(e.Clobbers).ForEach(func(r int) { tp.set(s, r, true, false) })
	default:
		// Remaining opcodes (halt, entry, jumps, branches, returns,
		// tail calls) move control, not values.
		e := tp.g.Effects(pc)
		e.Defs.Union(e.Clobbers).ForEach(func(r int) { tp.set(s, r, true, true) })
	}
	return s
}

func (tp taintProblem) transferPrim(pc int, in vm.Instr, s taintState) {
	var def *prim.Def
	if in.B >= 0 && in.B < len(tp.p.Prims) {
		def = tp.p.Prims[in.B]
	}
	eff, ok := PrimEffectOf(def)
	if !ok {
		eff = conservativePrimEffect
		// Unknown primitive: any argument may be mutated with any other.
		anyArena, anyConst := false, false
		for _, r := range in.Regs {
			a, c := tp.taintAt(s, r)
			anyArena, anyConst = anyArena || a, anyConst || c
		}
		if anyArena {
			*tp.mutHazard = true
		}
		if anyConst {
			tp.constMut[pc] = firstOperand(in.Regs)
		}
		tp.set(s, in.A, true, anyConst)
		return
	}
	argArena, argConst := false, false
	for _, r := range in.Regs {
		a, c := tp.taintAt(s, r)
		argArena, argConst = argArena || a, argConst || c
	}
	if eff.MutatesArg >= 0 && eff.MutatesArg < len(in.Regs) {
		_, mc := tp.taintAt(s, in.Regs[eff.MutatesArg])
		if mc {
			// Mutating unprotected Program-lifetime structure.
			tp.constMut[pc] = in.Regs[eff.MutatesArg]
		}
		if eff.StoresArg >= 0 && eff.StoresArg < len(in.Regs) {
			if sa, _ := tp.taintAt(s, in.Regs[eff.StoresArg]); sa {
				// Arena structure now reachable from wherever the mutated
				// value flows — including globals.
				*tp.mutHazard = true
			}
			// The mutated argument now contains the stored one.
			if mi := tp.loc(in.Regs[eff.MutatesArg]); mi >= 0 {
				sa, sc := tp.taintAt(s, in.Regs[eff.StoresArg])
				s.arena[mi] = s.arena[mi] || sa
				s.conz[mi] = s.conz[mi] || sc
			}
		}
	}
	resArena := eff.AllocatesPairs || (eff.Derives && argArena)
	resConst := eff.Derives && argConst
	tp.set(s, in.A, resArena, resConst)
}

func firstOperand(regs []int) int {
	if len(regs) > 0 {
		return regs[0]
	}
	return -1
}

// globalReadSummaries computes, per procedure, the set of globals a
// call to it may read (directly or through any callee), as bitsets over
// the global table. Unanalyzable bodies and unresolved call sites widen
// to the full set; primitive callees read no globals.
func globalReadSummaries(cg *CallGraph) [][]uint64 {
	p := cg.Prog
	words := (len(p.GlobalNames) + 63) / 64
	full := make([]uint64, words)
	for gi := range p.GlobalNames {
		full[gi/64] |= 1 << (gi % 64)
	}
	direct := make([][]uint64, len(cg.Extents))
	sitesOf := make([][]int, len(cg.Extents))
	for si, site := range cg.Sites {
		sitesOf[site.Extent] = append(sitesOf[site.Extent], si)
	}
	for i := range cg.Extents {
		d := make([]uint64, words)
		g := cg.Graphs[i]
		if g == nil {
			copy(d, full)
		} else {
			for pc := g.Start(); pc < g.End(); pc++ {
				if in := p.Code[pc]; in.Op == vm.OpLoadGlobal && in.B >= 0 && in.B < len(p.GlobalNames) {
					d[in.B/64] |= 1 << (in.B % 64)
				}
			}
		}
		direct[i] = d
	}
	sums := make([][]uint64, len(p.Procs))
	for pi := range sums {
		ei := cg.extOf[pi]
		if ei < 0 || cg.Graphs[ei] == nil {
			sums[pi] = append([]uint64(nil), full...)
			continue
		}
		sums[pi] = append([]uint64(nil), direct[ei]...)
	}
	for pass := 0; pass < DefaultMaxPasses; pass++ {
		changed := false
		for pi := range sums {
			ei := cg.extOf[pi]
			if ei < 0 || cg.Graphs[ei] == nil {
				continue
			}
			for _, si := range sitesOf[ei] {
				callee := siteReadSet(cg, sums, full, cg.Sites[si])
				for w := range sums[pi] {
					if nv := sums[pi][w] | callee[w]; nv != sums[pi][w] {
						sums[pi][w] = nv
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	return sums
}

// siteReadSet is the global read set of one call site's callee.
func siteReadSet(cg *CallGraph, sums [][]uint64, full []uint64, site CallSite) []uint64 {
	if site.Op == vm.OpCallCC {
		return full
	}
	switch site.Callee.Kind {
	case CalleeProc:
		if site.Callee.Index >= 0 && site.Callee.Index < len(sums) {
			return sums[site.Callee.Index]
		}
	case CalleePrim:
		return make([]uint64, len(full))
	}
	return full
}

// mustStoredProblem computes, forward over main's extent, the set of
// globals definitely stored on every path from entry (intersection
// join; gen at OpStoreGlobal).
type mustStoredProblem struct {
	p     *vm.Program
	words int
}

func (mp mustStoredProblem) Entry() []uint64 { return make([]uint64, mp.words) }
func (mp mustStoredProblem) Clone(s []uint64) []uint64 {
	return append([]uint64(nil), s...)
}
func (mp mustStoredProblem) Join(dst, src []uint64) ([]uint64, bool) {
	changed := false
	for w := range dst {
		if nv := dst[w] & src[w]; nv != dst[w] {
			dst[w] = nv
			changed = true
		}
	}
	return dst, changed
}
func (mp mustStoredProblem) Transfer(pc int, s []uint64) []uint64 {
	if in := mp.p.Code[pc]; in.Op == vm.OpStoreGlobal && in.B >= 0 && in.B/64 < len(s) {
		s[in.B/64] |= 1 << (in.B % 64)
	}
	return s
}

// AnalyzeArena runs the arena-lifetime escape analysis on p.
func AnalyzeArena(p *vm.Program, opt ArenaOptions) *ArenaReport {
	rep := &ArenaReport{}
	cg := BuildCallGraph(p)
	rep.Totals.Extents = len(cg.Extents)
	for _, g := range cg.Graphs {
		if g == nil {
			rep.Totals.Unanalyzable++
		}
	}

	// Rule 1a: const-pool protection scan.
	constUnprotected := make([]bool, len(p.Consts))
	for i, c := range p.Consts {
		if !hasMutableStructure(c) {
			continue
		}
		rep.Totals.MutableConsts++
		if i < len(p.ConstMutable) && p.ConstMutable[i] {
			continue
		}
		constUnprotected[i] = true
		rep.Totals.ConstUnprotected++
		pc, proc := firstConstLoad(p, cg, i)
		rep.Findings = append(rep.Findings, findings.Finding{
			Tool: "arena", Kind: KindArenaConstUnprotected, Proc: proc,
			PC: pc, Instr: instrAt(p, pc), Reg: -1, Slot: i, CallPC: -1,
			Msg: fmt.Sprintf("constant %d contains mutable structure (%s) but is not marked ConstMutable: loads alias the shared Program value instead of arena copies", i, prim.WriteString(c)),
		})
	}

	// Whole-program taint fixpoint (rule 1b inputs + rule 2 global taint).
	gArena := make([]bool, len(p.GlobalNames))
	gConst := make([]bool, len(p.GlobalNames))
	storedByCode := make([]bool, len(p.GlobalNames))
	mutHazard := false
	problems := make([]taintProblem, len(cg.Extents))
	for i, ext := range cg.Extents {
		frame := 0
		if in := p.Code[ext.Start]; in.Op == vm.OpEntry && in.B > 0 {
			frame = in.B
		}
		problems[i] = taintProblem{
			p: p, g: cg.Graphs[i], nRegs: p.Config.NumRegs(), frame: frame,
			isMain:           ext.Index == p.MainIndex,
			constUnprotected: constUnprotected,
			gArena:           gArena, gConst: gConst,
			mutHazard: &mutHazard,
			constMut:  map[int]int{},
		}
	}
	// Globals stored from unanalyzable extents are conservatively
	// tainted; record all code stores for the mutation-hazard widening.
	for i, ext := range cg.Extents {
		for pc := ext.Start; pc < ext.End; pc++ {
			if in := p.Code[pc]; in.Op == vm.OpStoreGlobal && in.B >= 0 && in.B < len(gArena) {
				storedByCode[in.B] = true
				if cg.Graphs[i] == nil {
					gArena[in.B] = true
				}
			}
		}
	}
	var mainIn []taintState
	var mainReached []bool
	mainExt := -1
	for round := 0; round < DefaultMaxPasses; round++ {
		changed := false
		for i := range cg.Extents {
			g := cg.Graphs[i]
			if g == nil {
				continue
			}
			in, reached, _ := SolveForward[taintState](g, problems[i], DefaultMaxPasses)
			if problems[i].isMain {
				mainIn, mainReached, mainExt = in, reached, i
			}
			for pc := g.Start(); pc < g.End(); pc++ {
				if !reached[pc-g.Start()] {
					continue
				}
				instr := p.Code[pc]
				if instr.Op != vm.OpStoreGlobal || instr.B < 0 || instr.B >= len(gArena) {
					continue
				}
				tp := problems[i]
				// Taint of the stored register AFTER the instructions
				// before the store ran: the in-state at the store.
				a, c := tp.taintAt(in[pc-g.Start()], instr.A)
				if a && !gArena[instr.B] {
					gArena[instr.B] = true
					changed = true
				}
				if c && !gConst[instr.B] {
					gConst[instr.B] = true
					changed = true
				}
			}
		}
		if mutHazard {
			for gi := range gArena {
				if storedByCode[gi] && !gArena[gi] {
					gArena[gi] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	rep.Totals.MutationHazard = mutHazard
	for gi := range gArena {
		if gArena[gi] {
			rep.Totals.TaintedGlobals++
		}
	}

	// Rule 1b: const mutations discovered by the taint transfer.
	for i := range problems {
		ext := cg.Extents[i]
		pcs := make([]int, 0, len(problems[i].constMut))
		for pc := range problems[i].constMut {
			pcs = append(pcs, pc)
		}
		sort.Ints(pcs)
		for _, pc := range pcs {
			rep.Totals.ConstMutations++
			rep.Findings = append(rep.Findings, findings.Finding{
				Tool: "arena", Kind: KindArenaConstMutation, Proc: ext.Info.Name,
				PC: pc, Instr: instrAt(p, pc), Reg: problems[i].constMut[pc], Slot: -1, CallPC: -1,
				Msg:     "mutating primitive may receive structure loaded from an unprotected constant: the mutation would corrupt the Program every machine shares",
				Witness: cg.Graphs[i].WitnessPath(pc),
			})
		}
	}

	// Rule 2: stale global reads, checked over main.
	if mainExt >= 0 {
		g := cg.Graphs[mainExt]
		words := (len(p.GlobalNames) + 63) / 64
		stored, _, _ := SolveForward[[]uint64](g, mustStoredProblem{p: p, words: words}, DefaultMaxPasses)
		readSums := globalReadSummaries(cg)
		full := make([]uint64, words)
		for gi := range p.GlobalNames {
			full[gi/64] |= 1 << (gi % 64)
		}
		siteAt := make(map[int]CallSite, len(cg.Sites))
		for _, site := range cg.Sites {
			siteAt[site.PC] = site
		}
		has := func(bs []uint64, gi int) bool { return bs[gi/64]&(1<<(gi%64)) != 0 }
		flag := func(pc, gi, reg int) {
			rep.Totals.StaleGlobalReads++
			rep.Findings = append(rep.Findings, findings.Finding{
				Tool: "arena", Kind: KindArenaStaleGlobalRead, Proc: mainName(p),
				PC: pc, Instr: instrAt(p, pc), Reg: reg, Slot: gi, CallPC: -1,
				Msg:     fmt.Sprintf("global %s may hold arena structure from a previous run and is not provably re-stored before this read: after Machine.Recycle the read observes recycled cells", p.GlobalNames[gi]),
				Witness: g.WitnessPath(pc),
			})
		}
		for pc := g.Start(); pc < g.End(); pc++ {
			if mainReached != nil && !mainReached[pc-g.Start()] {
				continue
			}
			st := stored[pc-g.Start()]
			if st == nil {
				continue
			}
			in := p.Code[pc]
			switch in.Op {
			case vm.OpLoadGlobal:
				if in.B >= 0 && in.B < len(gArena) && gArena[in.B] && !has(st, in.B) {
					flag(pc, in.B, in.A)
				}
			case vm.OpCall, vm.OpTailCall, vm.OpCallCC:
				reads := full
				if site, ok := siteAt[pc]; ok {
					reads = siteReadSet(cg, readSums, full, site)
				}
				for gi := range gArena {
					if gArena[gi] && has(reads, gi) && !has(st, gi) {
						flag(pc, gi, -1)
						break // one finding per call site
					}
				}
			}
		}

		// Rule 3: strict result escape at main's exits.
		if opt.StrictResult && mainIn != nil {
			for pc := g.Start(); pc < g.End(); pc++ {
				if !mainReached[pc-g.Start()] {
					continue
				}
				in := p.Code[pc]
				exit := in.Op == vm.OpHalt || in.Op == vm.OpReturn || in.Op == vm.OpTailCall
				if !exit {
					continue
				}
				tainted := true // tail call: result comes from the callee
				if in.Op != vm.OpTailCall {
					tainted, _ = problems[mainExt].taintAt(mainIn[pc-g.Start()], vm.RegRV)
				}
				if tainted {
					rep.Totals.ResultEscapes++
					rep.Findings = append(rep.Findings, findings.Finding{
						Tool: "arena", Kind: KindArenaResultEscape, Proc: mainName(p),
						PC: pc, Instr: instrAt(p, pc), Reg: vm.RegRV, Slot: -1, CallPC: -1,
						Msg:     "program result may contain arena cells: a caller that recycles between runs must not retain it (strict-result mode)",
						Witness: g.WitnessPath(pc),
					})
				}
			}
		}
	}

	sort.SliceStable(rep.Findings, func(i, j int) bool {
		if rep.Findings[i].PC != rep.Findings[j].PC {
			return rep.Findings[i].PC < rep.Findings[j].PC
		}
		return rep.Findings[i].Kind < rep.Findings[j].Kind
	})
	return rep
}

func firstConstLoad(p *vm.Program, cg *CallGraph, ci int) (pc int, proc string) {
	for i, ext := range cg.Extents {
		for pc := ext.Start; pc < ext.End; pc++ {
			if in := p.Code[pc]; in.Op == vm.OpLoadConst && in.B == ci {
				_ = i
				return pc, ext.Info.Name
			}
		}
	}
	return -1, ""
}

func instrAt(p *vm.Program, pc int) string {
	if pc < 0 || pc >= len(p.Code) {
		return ""
	}
	return p.FormatInstr(p.Code[pc])
}

func mainName(p *vm.Program) string {
	if p.MainIndex >= 0 && p.MainIndex < len(p.Procs) {
		return p.Procs[p.MainIndex].Name
	}
	return ""
}

// Render formats the report for humans.
func (r *ArenaReport) Render() string {
	t := r.Totals
	s := fmt.Sprintf("arena: %d finding(s): %d unprotected const(s), %d const mutation(s), %d stale global read(s), %d result escape(s)\n",
		len(r.Findings), t.ConstUnprotected, t.ConstMutations, t.StaleGlobalReads, t.ResultEscapes)
	s += fmt.Sprintf("extents: %d (%d unanalyzable); mutable consts: %d; tainted globals: %d; mutation hazard: %v\n",
		t.Extents, t.Unanalyzable, t.MutableConsts, t.TaintedGlobals, t.MutationHazard)
	for _, f := range r.Findings {
		s += fmt.Sprintf("  %s at pc %d in %s [%s]: %s\n", f.Kind, f.PC, f.Proc, f.Instr, f.Msg)
	}
	return s
}
