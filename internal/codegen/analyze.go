package codegen

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/prim"
	"repro/internal/regset"
)

// analyzer is pass 1 of §3.1: a single bottom-up walk per procedure that
// simultaneously performs greedy shuffling, computes variable liveness
// (as register sets), computes S_t[E]/S_f[E], computes the "possibly
// referenced before the next call" sets for pass 2's eager restores, and
// records the save placement for the selected strategy as annotations on
// the IR.
type analyzer struct {
	cg *codegen
	// r is the register universe R.
	r regset.Set
}

// flow carries the backward-flowing analysis state.
type flow struct {
	// live is the set of registers whose variables may be referenced
	// later (variable-level liveness mapped onto home registers).
	live regset.Set
	// refs is the set of registers possibly referenced before the next
	// call (restore analysis, §2.2).
	refs regset.Set
}

// synth carries the bottom-up synthesized results.
type synth struct {
	// sets is (S_t[E], S_f[E]).
	sets core.SaveSets
	// simple is the one-set S[E] of the §2.1.1 simple algorithm (the
	// SaveSimple ablation).
	simple core.SimpleSets
	// ulive is the union of live-after sets over every non-tail call in
	// the subexpression — what the early strategy saves at definition
	// points.
	ulive regset.Set
}

func seqSynth(first, second synth) synth {
	return synth{
		sets:   core.SeqSets(first.sets, second.sets),
		simple: core.SimpleSeq(first.simple, second.simple),
		ulive:  first.ulive.Union(second.ulive),
	}
}

// analyzeProc runs pass 1 over one procedure and returns its entry save
// set.
func (cg *codegen) analyzeProc(p *ir.Proc) regset.Set {
	a := &analyzer{cg: cg, r: regset.Universe(cg.opts.Config.NumRegs())}
	// At procedure exit, ret is referenced (by the return instruction).
	exit := flow{live: regset.Single(retReg), refs: regset.Single(retReg)}
	_, s := a.walk(p.Body, exit)

	p.SyntacticLeaf = !ir.HasCalls(p.Body)
	// §2.4: a call is inevitable iff ret must be saved on every path.
	p.CallInevitable = s.sets.Save().Has(retReg)

	switch cg.opts.Saves {
	case SaveLazy:
		return s.sets.Save()
	case SaveSimple:
		return s.simple.S
	case SaveEarly:
		// Save at entry everything entry-defined that is ever live
		// across a call.
		entryRegs := regset.Of(retReg, cpReg)
		for _, v := range p.Params {
			if v.Loc.Kind == ir.LocReg {
				entryRegs = entryRegs.Add(v.Loc.Index)
			}
		}
		return s.ulive.Intersect(entryRegs)
	default: // SaveLate: saves are attached to each call.
		return regset.Empty
	}
}

const (
	retReg = 0
	cpReg  = 1
)

// walk analyzes e given the backward state after it, returning the state
// before it and the synthesized sets.
func (a *analyzer) walk(e ir.Expr, after flow) (flow, synth) {
	switch t := e.(type) {
	case *ir.Const:
		switch t.Value {
		case prim.True:
			return after, synth{sets: core.TrueSets(a.r)}
		case prim.False:
			return after, synth{sets: core.FalseSets(a.r)}
		}
		return after, synth{sets: core.LeafSets()}

	case *ir.VarRef:
		if t.Var.Loc.Kind == ir.LocReg {
			r := t.Var.Loc.Index
			return flow{live: after.live.Add(r), refs: after.refs.Add(r)}, synth{sets: core.LeafSets()}
		}
		return after, synth{sets: core.LeafSets()}

	case *ir.FreeRef:
		return flow{live: after.live.Add(cpReg), refs: after.refs.Add(cpReg)}, synth{sets: core.LeafSets()}

	case *ir.GlobalRef:
		return after, synth{sets: core.LeafSets()}

	case *ir.GlobalSet:
		return a.walk(t.Rhs, after)

	case *ir.Seq:
		s := synth{sets: core.LeafSets()}
		cur := after
		synths := make([]synth, len(t.Exprs))
		for i := len(t.Exprs) - 1; i >= 0; i-- {
			cur, synths[i] = a.walk(t.Exprs[i], cur)
		}
		for _, si := range synths {
			s = seqSynth(s, si)
		}
		return cur, s

	case *ir.If:
		t.LiveAfter = after.live
		thenFlow, thenS := a.walk(t.Then, after)
		elseFlow, elseS := a.walk(t.Else, after)

		// Save placement on the branches (lazy-family strategies; pass 2
		// eliminates saves already covered by an enclosing region).
		switch a.cg.opts.Saves {
		case SaveLazy:
			t.ThenSaves = thenS.sets.Save()
			t.ElseSaves = elseS.sets.Save()
		case SaveSimple:
			t.ThenSaves = thenS.simple.S
			t.ElseSaves = elseS.simple.S
		default:
			t.ThenSaves = regset.Empty
			t.ElseSaves = regset.Empty
		}

		testAfter := flow{
			live: thenFlow.live.Union(elseFlow.live),
			// A save instruction reads the register it saves, so
			// branch-entry saves count as references for the restore
			// analysis (a register destroyed by an earlier call must be
			// restored before it can be re-saved).
			refs: core.RefBranch(thenFlow.refs, elseFlow.refs).
				Union(t.ThenSaves).Union(t.ElseSaves),
		}
		testFlow, testS := a.walk(t.Test, testAfter)

		// §6 extension: predict the arm without an inevitable call.
		t.PredictThen = nil
		if a.cg.opts.PredictBranches {
			thenCalls := thenS.sets.Save().Has(retReg)
			elseCalls := elseS.sets.Save().Has(retReg)
			if thenCalls != elseCalls {
				predictThen := !thenCalls
				t.PredictThen = &predictThen
			}
		}

		return testFlow, synth{
			sets:   core.IfSets(testS.sets, thenS.sets, elseS.sets),
			simple: core.SimpleIf(testS.simple, thenS.simple, elseS.simple),
			ulive:  testS.ulive.Union(thenS.ulive).Union(elseS.ulive),
		}

	case *ir.Bind:
		bodyFlow, bodyS := a.walk(t.Body, after)
		if t.Var.Loc.Kind == ir.LocReg {
			r := t.Var.Loc.Index
			switch a.cg.opts.Saves {
			case SaveLazy:
				t.SaveVar = core.SaveAtBind(r, bodyS.sets)
			case SaveSimple:
				t.SaveVar = bodyS.simple.S.Has(r)
			case SaveEarly:
				t.SaveVar = bodyS.ulive.Has(r)
			default:
				t.SaveVar = false
			}
			bodyFlow = flow{live: bodyFlow.live.Remove(r), refs: core.RefDef(r, bodyFlow.refs)}
			rhsFlow, rhsS := a.walk(t.Rhs, bodyFlow)
			return rhsFlow, synth{
				sets:   core.BindSets(r, rhsS.sets, bodyS.sets),
				simple: core.SimpleSets{S: rhsS.simple.S.Union(bodyS.simple.S.Remove(r))},
				ulive:  rhsS.ulive.Union(bodyS.ulive),
			}
		}
		t.SaveVar = false
		rhsFlow, rhsS := a.walk(t.Rhs, bodyFlow)
		return rhsFlow, seqSynth(rhsS, bodyS)

	case *ir.PrimCall:
		return a.walkOrdered(primArgOrder(t.Args), after)

	case *ir.MakeClosure:
		cur := after
		s := synth{sets: core.LeafSets()}
		for i := len(t.Free) - 1; i >= 0; i-- {
			var fs synth
			cur, fs = a.walk(t.Free[i], cur)
			s = seqSynth(fs, s)
		}
		return cur, s

	case *ir.Fix:
		bodyFlow, bodyS := a.walk(t.Body, after)
		regs := regset.Empty
		for i, v := range t.Vars {
			if v.Loc.Kind != ir.LocReg {
				t.SaveVars[i] = false
				continue
			}
			r := v.Loc.Index
			regs = regs.Add(r)
			switch a.cg.opts.Saves {
			case SaveLazy:
				t.SaveVars[i] = core.SaveAtBind(r, bodyS.sets)
			case SaveSimple:
				t.SaveVars[i] = bodyS.simple.S.Has(r)
			case SaveEarly:
				t.SaveVars[i] = bodyS.ulive.Has(r)
			default:
				t.SaveVars[i] = false
			}
		}
		cur := flow{live: bodyFlow.live.Minus(regs), refs: bodyFlow.refs.Minus(regs)}
		s := synth{
			sets:   core.SaveSets{T: bodyS.sets.T.Minus(regs), F: bodyS.sets.F.Minus(regs)},
			simple: core.SimpleSets{S: bodyS.simple.S.Minus(regs)},
			ulive:  bodyS.ulive,
		}
		for i := len(t.Closures) - 1; i >= 0; i-- {
			var cs synth
			cur, cs = a.walk(t.Closures[i], cur)
			s = seqSynth(cs, s)
		}
		// Free-variable reads of the fix's own variables (self and
		// sibling recursion) are satisfied by closure patching inside
		// the fix; they must not leak as live registers above it.
		cur.live = cur.live.Minus(regs)
		cur.refs = cur.refs.Minus(regs)
		return cur, s

	case *ir.Call:
		return a.walkCall(t, after)

	default:
		panic(fmt.Sprintf("codegen: analyze: unknown expression %T", e))
	}
}

// walkOrdered analyzes a list of expressions in the given emission
// order.
func (a *analyzer) walkOrdered(order []ir.Expr, after flow) (flow, synth) {
	cur := after
	synths := make([]synth, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		cur, synths[i] = a.walk(order[i], cur)
	}
	s := synth{sets: core.LeafSets()}
	for _, si := range synths {
		s = seqSynth(s, si)
	}
	return cur, s
}

// primArgOrder is the evaluation order the emitter uses for primitive
// arguments: call-containing arguments first (their results go to frame
// temporaries), then the simple arguments.
func primArgOrder(args []ir.Expr) []ir.Expr {
	order := make([]ir.Expr, 0, len(args))
	for _, x := range args {
		if ir.HasCalls(x) {
			order = append(order, x)
		}
	}
	for _, x := range args {
		if !ir.HasCalls(x) {
			order = append(order, x)
		}
	}
	return order
}

// regReads collects the registers whose current values an expression
// reads (home registers of referenced variables, plus cp for free-variable
// access). Used to build shuffle dependency graphs.
func regReads(e ir.Expr) regset.Set {
	switch t := e.(type) {
	case *ir.Const, *ir.GlobalRef:
		return regset.Empty
	case *ir.VarRef:
		if t.Var.Loc.Kind == ir.LocReg {
			return regset.Single(t.Var.Loc.Index)
		}
		return regset.Empty
	case *ir.FreeRef:
		return regset.Single(cpReg)
	case *ir.GlobalSet:
		return regReads(t.Rhs)
	case *ir.If:
		return regReads(t.Test).Union(regReads(t.Then)).Union(regReads(t.Else))
	case *ir.Seq:
		s := regset.Empty
		for _, x := range t.Exprs {
			s = s.Union(regReads(x))
		}
		return s
	case *ir.Bind:
		s := regReads(t.Rhs).Union(regReads(t.Body))
		if t.Var.Loc.Kind == ir.LocReg {
			// The bound register is defined before any read of it within
			// the body, so it is not a read of the *current* value; but
			// its definition also means the body's reads of it are not
			// outer reads. Conservatively keep other reads.
			s = s.Remove(t.Var.Loc.Index)
			s = s.Union(regReads(t.Rhs))
		}
		return s
	case *ir.PrimCall:
		s := regset.Empty
		for _, x := range t.Args {
			s = s.Union(regReads(x))
		}
		return s
	case *ir.Call:
		s := regReads(t.Fn)
		for _, x := range t.Args {
			s = s.Union(regReads(x))
		}
		if t.CallCC || t.Tail {
			s = s.Add(retReg)
		}
		return s
	case *ir.MakeClosure:
		s := regset.Empty
		for _, x := range t.Free {
			s = s.Union(regReads(x))
		}
		return s
	case *ir.Fix:
		s := regReads(t.Body)
		for _, c := range t.Closures {
			s = s.Union(regReads(c))
		}
		return s
	case *ir.Save:
		return regReads(t.Body)
	default:
		panic(fmt.Sprintf("codegen: regReads: unknown expression %T", e))
	}
}

// walkCall handles pass 1 at a call site: shuffle planning, liveness,
// restore analysis, save-set synthesis, and strategy annotations.
func (a *analyzer) walkCall(t *ir.Call, after flow) (flow, synth) {
	cfg := a.cg.opts.Config
	effTail := t.Tail && !t.CallCC
	if t.Tail && t.CallCC {
		// A tail (call/cc f) is emitted as a non-tail capture followed
		// by a return, so ret is live and referenced after it.
		after = flow{live: after.live.Add(retReg), refs: after.refs.Add(retReg)}
	}
	if effTail {
		after = flow{} // nothing is live after a tail transfer
	}
	t.LiveAfter = after.live
	t.RefsAfter = after.refs

	// Build the shuffle problem: register arguments plus the operator
	// (targeting cp).
	nreg := len(t.Args)
	if nreg > cfg.ArgRegs {
		nreg = cfg.ArgRegs
	}
	sargs := make([]core.ShuffleArg, 0, nreg+1)
	exprs := make([]ir.Expr, 0, nreg+1)
	for i := 0; i < nreg; i++ {
		sargs = append(sargs, core.ShuffleArg{
			Target:  cfg.ArgReg(i),
			Reads:   regReads(t.Args[i]),
			Complex: ir.HasCalls(t.Args[i]),
		})
		exprs = append(exprs, t.Args[i])
	}
	sargs = append(sargs, core.ShuffleArg{
		Target:  cpReg,
		Reads:   regReads(t.Fn),
		Complex: ir.HasCalls(t.Fn),
	})
	exprs = append(exprs, t.Fn)

	// Free argument registers usable as shuffle temporaries: not
	// targeted by this call and not read by any argument.
	freeTemps := regset.Empty
	for i := nreg; i < cfg.ArgRegs; i++ {
		freeTemps = freeTemps.Add(cfg.ArgReg(i))
	}
	for _, sa := range sargs {
		freeTemps = freeTemps.Minus(sa.Reads)
	}

	var plan core.Plan
	switch a.cg.opts.Shuffle {
	case ShuffleOptimal:
		plan = core.OptimalShuffle(sargs, freeTemps)
	case ShuffleNaive:
		plan = core.NaiveShuffle(sargs, freeTemps)
	default:
		plan = core.GreedyShuffle(sargs, freeTemps)
	}
	t.ShuffleArgs = sargs
	t.Plan = plan

	st := &a.cg.stats
	st.CallSites++
	if plan.HadCycle {
		st.CyclicCallSites++
	}
	st.ShuffleTemps += plan.SimpleTemps
	if a.cg.opts.ComputeShuffleStats {
		opt := core.OptimalSimpleTemps(sargs)
		st.OptimalTemps += opt
		if plan.SimpleTemps == opt {
			st.SitesOptimal++
		} else {
			st.SitesSuboptimal++
			if extra := plan.SimpleTemps - opt; extra > st.ExtraTempsWorst {
				st.ExtraTempsWorst = extra
			}
		}
	}

	// The emission order of the argument expressions: complex stack
	// arguments (to temps), simple stack arguments (stored or staged
	// before the shuffle can clobber the registers they read), then the
	// shuffle plan's steps.
	order := make([]ir.Expr, 0, len(t.Args)+1)
	for i := cfg.ArgRegs; i < len(t.Args); i++ {
		if ir.HasCalls(t.Args[i]) {
			order = append(order, t.Args[i])
		}
	}
	for i := cfg.ArgRegs; i < len(t.Args); i++ {
		if !ir.HasCalls(t.Args[i]) {
			order = append(order, t.Args[i])
		}
	}
	for _, step := range plan.Steps {
		order = append(order, exprs[step.Arg])
	}

	seed := flow{live: t.LiveAfter}
	if effTail || t.CallCC {
		// The tail transfer passes ret through; the capture reads ret.
		seed.live = seed.live.Add(retReg)
		seed.refs = seed.refs.Add(retReg)
	}
	before, argsS := a.walkOrdered(order, seed)

	s := argsS
	if !effTail {
		s = seqSynth(argsS, synth{
			sets:   core.CallSets(t.LiveAfter),
			simple: core.SimpleCall(t.LiveAfter),
			ulive:  t.LiveAfter,
		})
	}

	// Late-save strategy: save the live registers right before the call.
	// The saves read those registers, which counts as a reference for
	// the restore analysis. When every path through the argument
	// evaluation itself performs a non-tail call, that nested call's own
	// late saves cover a superset of this call's (liveness only grows
	// from the nested call back toward this one, and a register shares
	// its save slot everywhere in the procedure), so saving here would
	// emit stores that are overwritten before they can be read. The
	// coverage test uses the §2.1.1 one-set S[E], whose plain branch
	// intersection matches how pass 2 merges its saved-register state at
	// joins (S_t/S_f's vacuous-path refinement would overclaim here).
	if a.cg.opts.Saves == SaveLate && !effTail {
		t.LateSaves = t.LiveAfter
		if t.LiveAfter.SubsetOf(argsS.simple.S) {
			t.LateSaves = regset.Empty
		} else {
			before.refs = before.refs.Union(t.LateSaves)
			before.live = before.live.Union(t.LateSaves)
		}
	} else {
		t.LateSaves = regset.Empty
	}

	return before, s
}
