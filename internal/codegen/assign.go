package codegen

import (
	"fmt"

	"repro/internal/ir"
)

// assignLocations places every variable of a procedure: the first c
// parameters in argument registers, remaining parameters in incoming
// stack slots, and let-bound locals in user registers while any are
// free (scope-based reuse), otherwise in frame slots. It returns the
// number of incoming stack-argument slots and local variable slots.
func (cg *codegen) assignLocations(p *ir.Proc) (stackParams, varSlots int) {
	cfg := cg.opts.Config
	for i, v := range p.Params {
		if i < cfg.ArgRegs {
			v.Loc = ir.Loc{Kind: ir.LocReg, Index: cfg.ArgReg(i)}
		} else {
			v.Loc = ir.Loc{Kind: ir.LocSlot, Index: i - cfg.ArgRegs}
		}
		v.SaveSlot = -1
		v.CSReg = -1
	}
	stackParams = max(0, len(p.Params)-cfg.ArgRegs)

	a := &locAssigner{cg: cg, slotBase: stackParams}
	for i := 0; i < cfg.UserRegs; i++ {
		a.freeRegs = append(a.freeRegs, cfg.UserReg(i))
	}
	a.assign(p.Body)
	return stackParams, a.maxSlots
}

type locAssigner struct {
	cg       *codegen
	freeRegs []int // user registers currently free (LIFO)
	slotBase int
	// freeSlots are local slots currently free (scope-reused).
	freeSlots []int
	nextSlot  int
	maxSlots  int
}

func (a *locAssigner) place(v *ir.Var) {
	v.SaveSlot = -1
	v.CSReg = -1
	if n := len(a.freeRegs); n > 0 {
		reg := a.freeRegs[n-1]
		a.freeRegs = a.freeRegs[:n-1]
		v.Loc = ir.Loc{Kind: ir.LocReg, Index: reg}
		return
	}
	var slot int
	if n := len(a.freeSlots); n > 0 {
		slot = a.freeSlots[n-1]
		a.freeSlots = a.freeSlots[:n-1]
	} else {
		slot = a.nextSlot
		a.nextSlot++
		if a.nextSlot > a.maxSlots {
			a.maxSlots = a.nextSlot
		}
	}
	v.Loc = ir.Loc{Kind: ir.LocSlot, Index: a.slotBase + slot}
}

func (a *locAssigner) release(v *ir.Var) {
	if v.Loc.Kind == ir.LocReg {
		a.freeRegs = append(a.freeRegs, v.Loc.Index)
	} else {
		a.freeSlots = append(a.freeSlots, v.Loc.Index-a.slotBase)
	}
}

func (a *locAssigner) assign(e ir.Expr) {
	switch t := e.(type) {
	case *ir.Const, *ir.VarRef, *ir.FreeRef, *ir.GlobalRef:
	case *ir.GlobalSet:
		a.assign(t.Rhs)
	case *ir.If:
		a.assign(t.Test)
		a.assign(t.Then)
		a.assign(t.Else)
	case *ir.Seq:
		for _, x := range t.Exprs {
			a.assign(x)
		}
	case *ir.Bind:
		a.assign(t.Rhs)
		a.place(t.Var)
		a.assign(t.Body)
		a.release(t.Var)
	case *ir.PrimCall:
		for _, x := range t.Args {
			a.assign(x)
		}
	case *ir.Call:
		a.assign(t.Fn)
		for _, x := range t.Args {
			a.assign(x)
		}
	case *ir.MakeClosure:
		// Free expressions are VarRef/FreeRef; nothing to place.
	case *ir.Fix:
		for _, v := range t.Vars {
			a.place(v)
		}
		a.assign(t.Body)
		for _, v := range t.Vars {
			a.release(v)
		}
	case *ir.Save:
		a.assign(t.Body)
	default:
		panic(fmt.Sprintf("codegen: assignLocations: unknown expression %T", e))
	}
}
