package codegen

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/regset"
	"repro/internal/vm"
)

// emitter is pass 2 (§3.2) fused with instruction emission: it walks a
// procedure forward generating code, eliminating saves already performed
// by an enclosing save region, and inserting restores per the selected
// policy (immediately after calls for eager, at first use plus save-
// region exit for lazy).
type emitter struct {
	cg  *codegen
	cfg vm.Config

	// saved holds the registers whose save slots are valid along every
	// path to the current point (join: intersection).
	saved regset.Set
	// stale holds the registers whose *register* copy may have been
	// destroyed by a call and not yet restored (join: union).
	stale regset.Set
	// repurposed holds variable-home registers currently carrying a
	// freshly computed outgoing-argument value (written by the shuffle
	// while flagged stale); the lazy policy's save-region-exit restores
	// must not clobber them (join: union).
	repurposed regset.Set
	// regVar maps each register to the variable currently homed there.
	regVar [64]*ir.Var
	// retSaveSlot and cpSaveSlot are the frame homes of ret and cp.
	retSaveSlot, cpSaveSlot int

	// scratch management
	scratchInUse regset.Set
	nScratch     int

	// stackParams is the number of incoming stack-argument slots.
	stackParams int

	// temp-slot watermark allocator
	tempBase int
	nextTemp int
	maxTemp  int

	// patchFrameB/patchFrameC are instruction indices whose B resp. C
	// operand is the final frame size.
	patchFrameB []int
	patchFrameC []int
	entryIdx    int
}

// emitProc compiles one procedure, appending to cg.code, and returns its
// entry address.
func (cg *codegen) emitProc(p *ir.Proc) int {
	stackParams, varSlots := cg.assignLocations(p)
	if cg.opts.CalleeSave {
		markCrossing(p)
		cg.assignCalleeSaveRegs(p)
	}

	// Allocate save-slot homes: ret and cp first, then every
	// register-homed variable.
	saveBase := stackParams + varSlots
	em := &emitter{
		cg:          cg,
		cfg:         cg.opts.Config,
		retSaveSlot: saveBase,
		cpSaveSlot:  saveBase + 1,
		nScratch:    cg.opts.Config.ScratchRegs,
	}
	nSaves := 2
	assignSaveSlots(p.Body, saveBase, &nSaves)
	for _, v := range p.Params {
		if v.Loc.Kind == ir.LocReg {
			v.SaveSlot = saveBase + nSaves
			nSaves++
		}
	}
	em.stackParams = stackParams
	em.tempBase = saveBase + nSaves
	em.nextTemp = em.tempBase
	em.maxTemp = em.tempBase

	entrySaves := cg.analyzeProc(p)

	entry := len(cg.code)
	em.entryIdx = entry
	cg.emit(vm.Instr{Op: vm.OpEntry, A: len(p.Params)})
	for _, v := range p.Params {
		if v.Loc.Kind == ir.LocReg {
			em.regVar[v.Loc.Index] = v
		}
	}
	em.emitSaves(entrySaves, true)
	em.emitExpr(p.Body, vm.RegRV)
	em.ensureFresh(retReg)
	em.emitCSEpilogue()
	cg.emit(vm.Instr{Op: vm.OpReturn})

	frame := em.maxTemp
	cg.code[entry].B = frame
	for _, i := range em.patchFrameB {
		cg.code[i].B = frame
	}
	for _, i := range em.patchFrameC {
		cg.code[i].C = frame
	}
	return entry
}

// assignSaveSlots walks the body giving every register-homed bound
// variable a save-slot home.
func assignSaveSlots(e ir.Expr, base int, n *int) {
	switch t := e.(type) {
	case *ir.Const, *ir.VarRef, *ir.FreeRef, *ir.GlobalRef:
	case *ir.GlobalSet:
		assignSaveSlots(t.Rhs, base, n)
	case *ir.If:
		assignSaveSlots(t.Test, base, n)
		assignSaveSlots(t.Then, base, n)
		assignSaveSlots(t.Else, base, n)
	case *ir.Seq:
		for _, x := range t.Exprs {
			assignSaveSlots(x, base, n)
		}
	case *ir.Bind:
		if t.Var.Loc.Kind == ir.LocReg {
			t.Var.SaveSlot = base + *n
			*n++
		}
		assignSaveSlots(t.Rhs, base, n)
		assignSaveSlots(t.Body, base, n)
	case *ir.PrimCall:
		for _, x := range t.Args {
			assignSaveSlots(x, base, n)
		}
	case *ir.Call:
		assignSaveSlots(t.Fn, base, n)
		for _, x := range t.Args {
			assignSaveSlots(x, base, n)
		}
	case *ir.MakeClosure:
	case *ir.Fix:
		for _, v := range t.Vars {
			if v.Loc.Kind == ir.LocReg {
				v.SaveSlot = base + *n
				*n++
			}
		}
		assignSaveSlots(t.Body, base, n)
	case *ir.Save:
		assignSaveSlots(t.Body, base, n)
	default:
		panic(fmt.Sprintf("codegen: assignSaveSlots: unknown expression %T", e))
	}
}

func (em *emitter) slotForReg(r int) int {
	switch r {
	case retReg:
		return em.retSaveSlot
	case cpReg:
		return em.cpSaveSlot
	}
	v := em.regVar[r]
	if v == nil {
		panic(fmt.Sprintf("codegen: no variable homed in r%d", r))
	}
	if v.SaveSlot < 0 {
		panic(fmt.Sprintf("codegen: variable %s has no save slot", v))
	}
	return v.SaveSlot
}

// emitSaves stores the given registers to their save slots. With dedup,
// registers already covered by an enclosing save region are skipped
// (pass 2's redundant-save elimination); the late strategy passes dedup
// = false to reproduce the natural strategy's redundant saves.
func (em *emitter) emitSaves(regs regset.Set, dedup bool) {
	regs.ForEach(func(r int) {
		if v := em.regVar[r]; v != nil && v.CSReg >= 0 {
			// Callee-save discipline (§2.4): at the save point the
			// variable moves into its callee-save register, whose
			// previous contents are saved to the frame; the move never
			// repeats (the value would overwrite the saved contents).
			if em.saved.Has(r) {
				return
			}
			em.ensureFresh(r)
			em.cg.emit(vm.Instr{Op: vm.OpStoreSlot, A: v.CSReg, B: em.slotForReg(r), Kind: vm.KindSave})
			em.cg.emit(vm.Instr{Op: vm.OpMove, A: v.CSReg, B: r})
			em.cg.stats.SaveSites++
			em.saved = em.saved.Add(r)
			return
		}
		if dedup && em.saved.Has(r) {
			return
		}
		em.ensureFresh(r)
		em.cg.emit(vm.Instr{Op: vm.OpStoreSlot, A: r, B: em.slotForReg(r), Kind: vm.KindSave})
		em.cg.stats.SaveSites++
		em.saved = em.saved.Add(r)
	})
}

// emitCSEpilogue restores the previous contents of every callee-save
// register this procedure moved a variable into. It runs at procedure
// exits (returns and tail calls), after all argument evaluation.
func (em *emitter) emitCSEpilogue() {
	em.saved.ForEach(func(r int) {
		if v := em.regVar[r]; v != nil && v.CSReg >= 0 {
			em.cg.emit(vm.Instr{Op: vm.OpLoadSlot, A: v.CSReg, B: em.slotForReg(r), Kind: vm.KindRestore})
			em.cg.stats.RestoreSites++
		}
	})
}

// releaseCS restores the previous contents of a callee-save register
// when the variable living in it is rebound or goes out of scope. The
// procedure-exit epilogue walks the current regVar/saved bookkeeping, so
// a shadow association dropped mid-procedure would otherwise leave the
// caller's value clobbered at exits (§2.4 requires it restored).
func (em *emitter) releaseCS(r int) {
	v := em.regVar[r]
	if v == nil || v.CSReg < 0 || !em.saved.Has(r) {
		return
	}
	em.cg.emit(vm.Instr{Op: vm.OpLoadSlot, A: v.CSReg, B: em.slotForReg(r), Kind: vm.KindRestore})
	em.cg.stats.RestoreSites++
	em.saved = em.saved.Remove(r)
	em.stale = em.stale.Remove(r)
}

// reconcileCS undoes callee-save moves made within a diverging branch so
// the join sees a consistent register file: the variable's value moves
// back to its primary register and the callee-save register's previous
// contents are reloaded. Moves made before the branch (in savedBefore)
// stay in effect.
func (em *emitter) reconcileCS(savedBefore regset.Set) {
	em.saved.Minus(savedBefore).ForEach(func(r int) {
		v := em.regVar[r]
		if v == nil || v.CSReg < 0 {
			return
		}
		em.cg.emit(vm.Instr{Op: vm.OpMove, A: r, B: v.CSReg})
		em.cg.emit(vm.Instr{Op: vm.OpLoadSlot, A: v.CSReg, B: em.slotForReg(r), Kind: vm.KindRestore})
		em.cg.stats.RestoreSites++
		em.saved = em.saved.Remove(r)
		em.stale = em.stale.Remove(r)
	})
}

// varReadReg returns the register holding the variable's current value:
// the callee-save shadow once the variable has moved there, otherwise
// the primary register (restored if a call destroyed it).
func (em *emitter) varReadReg(v *ir.Var) int {
	r := v.Loc.Index
	if v.CSReg >= 0 && em.saved.Has(r) {
		return v.CSReg
	}
	em.ensureFresh(r)
	return r
}

// csShadowSource reports the callee-save shadow register holding e's
// value, when e is a variable reference whose value has moved there.
// Such a source is immune to the argument shuffle (targets and
// temporaries never come from the callee-save file) and survives any
// call the shuffle plan performs, so it can be read at any point of the
// call sequence.
func (em *emitter) csShadowSource(e ir.Expr) (int, bool) {
	vr, ok := e.(*ir.VarRef)
	if !ok {
		return 0, false
	}
	v := vr.Var
	if v.Loc.Kind == ir.LocReg && v.CSReg >= 0 && em.saved.Has(v.Loc.Index) {
		return v.CSReg, true
	}
	return 0, false
}

// shuffleAssigns records, for the translation validator, where each
// simple (variable-reference) shuffle argument's value lives as the
// call sequence begins: in the callee-save shadow once the variable has
// moved there, in the save slot when a call destroyed the register
// copy, otherwise in the home cell. Complex arguments are computed
// during the sequence and have no pre-existing source to check against.
func (em *emitter) shuffleAssigns(t *ir.Call) []vm.ShuffleAssign {
	if len(t.ShuffleArgs) == 0 {
		return nil
	}
	nreg := len(t.Args)
	if nreg > em.cfg.ArgRegs {
		nreg = em.cfg.ArgRegs
	}
	var out []vm.ShuffleAssign
	record := func(e ir.Expr, target int) {
		vr, ok := e.(*ir.VarRef)
		if !ok {
			return
		}
		v := vr.Var
		switch v.Loc.Kind {
		case ir.LocSlot:
			out = append(out, vm.ShuffleAssign{Target: target, Src: v.Loc.Index, SrcIsSlot: true})
		case ir.LocReg:
			r := v.Loc.Index
			switch {
			case v.CSReg >= 0 && em.saved.Has(r):
				out = append(out, vm.ShuffleAssign{Target: target, Src: v.CSReg})
			case em.stale.Has(r):
				if em.saved.Has(r) && em.regVar[r] == v && v.SaveSlot >= 0 {
					out = append(out, vm.ShuffleAssign{Target: target, Src: v.SaveSlot, SrcIsSlot: true})
				}
			default:
				out = append(out, vm.ShuffleAssign{Target: target, Src: r})
			}
		}
	}
	for i := 0; i < nreg; i++ {
		record(t.Args[i], t.ShuffleArgs[i].Target)
	}
	record(t.Fn, t.ShuffleArgs[len(t.ShuffleArgs)-1].Target)
	return out
}

// ensureFresh makes register r's in-register copy valid, restoring it
// from its save slot if a call destroyed it (this is the lazy-restore
// "restore at first use" path; under the eager policy it only fires for
// ret before returns in rare shapes and is counted as defensive).
func (em *emitter) ensureFresh(r int) {
	if !em.stale.Has(r) {
		return
	}
	if v := em.regVar[r]; v != nil && v.CSReg >= 0 && em.saved.Has(r) {
		// The live value is in the callee-save shadow register; the
		// primary register is never reloaded.
		return
	}
	if !em.saved.Has(r) {
		panic(fmt.Sprintf("codegen: read of destroyed unsaved register r%d", r))
	}
	em.cg.emit(vm.Instr{Op: vm.OpLoadSlot, A: r, B: em.slotForReg(r), Kind: vm.KindRestore})
	em.cg.stats.RestoreSites++
	if em.cg.opts.Restores == RestoreEager {
		em.cg.stats.DefensiveRestores++
	}
	em.stale = em.stale.Remove(r)
	em.repurposed = em.repurposed.Remove(r)
}

func (em *emitter) allocScratch() int {
	for i := 0; i < em.nScratch-1; i++ {
		r := em.cfg.ScratchReg(i)
		if !em.scratchInUse.Has(r) {
			em.scratchInUse = em.scratchInUse.Add(r)
			return r
		}
	}
	return -1
}

func (em *emitter) freeScratch(r int) {
	em.scratchInUse = em.scratchInUse.Remove(r)
}

// spillReg is the reserved scratch register used transiently when the
// pool is exhausted or a throwaway destination is needed; it is always
// written immediately before being consumed.
func (em *emitter) spillReg() int { return em.cfg.ScratchReg(em.nScratch - 1) }

func (em *emitter) allocTemp() int {
	t := em.nextTemp
	em.nextTemp++
	if em.nextTemp > em.maxTemp {
		em.maxTemp = em.nextTemp
	}
	return t
}

func (em *emitter) releaseTemps(mark int) { em.nextTemp = mark }

// operand evaluates e for use as a primitive/closure operand, returning
// the operand encoding (register, or ^slot for a direct memory operand)
// and a release function.
func (em *emitter) operand(e ir.Expr) (int, func()) {
	switch t := e.(type) {
	case *ir.VarRef:
		if t.Var.Loc.Kind == ir.LocReg {
			return em.varReadReg(t.Var), func() {}
		}
		return ^t.Var.Loc.Index, func() {}
	}
	if s := em.allocScratch(); s >= 0 {
		em.emitExpr(e, s)
		return s, func() { em.freeScratch(s) }
	}
	// Scratch pool exhausted: evaluate via the spill register into a
	// frame temporary and use a memory operand.
	em.emitExpr(e, em.spillReg())
	tmp := em.allocTemp()
	em.cg.emit(vm.Instr{Op: vm.OpStoreSlot, A: em.spillReg(), B: tmp, Kind: vm.KindTemp})
	return ^tmp, func() {}
}

// operandReg is like operand but guarantees a register (for branch
// tests, stores, and patches).
func (em *emitter) operandReg(e ir.Expr) (int, func()) {
	if t, ok := e.(*ir.VarRef); ok && t.Var.Loc.Kind == ir.LocReg {
		return em.varReadReg(t.Var), func() {}
	}
	if s := em.allocScratch(); s >= 0 {
		em.emitExpr(e, s)
		return s, func() { em.freeScratch(s) }
	}
	em.emitExpr(e, em.spillReg())
	return em.spillReg(), func() {}
}

// emitExpr generates code computing e into register dst (-1 discards the
// value). The destination is always written last, so dst may be a
// register that e's evaluation reads.
func (em *emitter) emitExpr(e ir.Expr, dst int) {
	cg := em.cg
	switch t := e.(type) {
	case *ir.Const:
		if dst < 0 {
			return
		}
		cg.emit(vm.Instr{Op: vm.OpLoadConst, A: dst, B: cg.constIndex(t.Value)})

	case *ir.VarRef:
		if dst < 0 {
			return
		}
		if t.Var.Loc.Kind == ir.LocReg {
			r := em.varReadReg(t.Var)
			if dst != r {
				cg.emit(vm.Instr{Op: vm.OpMove, A: dst, B: r})
			}
			return
		}
		cg.emit(vm.Instr{Op: vm.OpLoadSlot, A: dst, B: t.Var.Loc.Index, Kind: vm.KindVar})

	case *ir.FreeRef:
		if dst < 0 {
			return
		}
		em.ensureFresh(cpReg)
		cg.emit(vm.Instr{Op: vm.OpFreeRef, A: dst, B: t.Index})

	case *ir.GlobalRef:
		if dst < 0 {
			dst = em.spillReg() // keep the unbound-global check
		}
		cg.emit(vm.Instr{Op: vm.OpLoadGlobal, A: dst, B: t.Index})

	case *ir.GlobalSet:
		r, release := em.operandReg(t.Rhs)
		cg.emit(vm.Instr{Op: vm.OpStoreGlobal, A: r, B: t.Index})
		release()
		if dst >= 0 {
			cg.emit(vm.Instr{Op: vm.OpLoadConst, A: dst, B: cg.unspecIndex()})
		}

	case *ir.Seq:
		for _, x := range t.Exprs[:len(t.Exprs)-1] {
			em.emitExpr(x, -1)
		}
		em.emitExpr(t.Exprs[len(t.Exprs)-1], dst)

	case *ir.If:
		em.emitIf(t, dst)

	case *ir.Bind:
		em.emitBind(t, dst)

	case *ir.PrimCall:
		em.emitPrim(t, dst)

	case *ir.Call:
		em.emitCall(t, dst)

	case *ir.MakeClosure:
		if dst < 0 {
			dst = em.spillReg()
		}
		em.emitClosure(t, dst, nil)

	case *ir.Fix:
		em.emitFix(t, dst)

	case *ir.Save:
		em.emitSaves(t.Regs, true)
		em.emitExpr(t.Body, dst)

	default:
		panic(fmt.Sprintf("codegen: emit: unknown expression %T", e))
	}
}

func (em *emitter) emitIf(t *ir.If, dst int) {
	cg := em.cg
	treg, release := em.operandReg(t.Test)
	br := len(cg.code)
	var predict int8
	if t.PredictThen != nil {
		if *t.PredictThen {
			predict = -1 // predicted fall-through (then)
		} else {
			predict = 1 // predicted taken (else)
		}
	}
	cg.emit(vm.Instr{Op: vm.OpBranchFalse, A: treg, Predict: predict})
	release()

	savedBefore, staleBefore, repBefore := em.saved, em.stale, em.repurposed

	em.emitSaves(t.ThenSaves, true)
	em.emitExpr(t.Then, dst)
	em.exitRegion(t.LiveAfter)
	em.reconcileCS(savedBefore)
	savedThen, staleThen, repThen := em.saved, em.stale, em.repurposed
	jmp := len(cg.code)
	cg.emit(vm.Instr{Op: vm.OpJump})

	cg.code[br].B = len(cg.code)
	em.saved, em.stale, em.repurposed = savedBefore, staleBefore, repBefore
	em.emitSaves(t.ElseSaves, true)
	em.emitExpr(t.Else, dst)
	em.exitRegion(t.LiveAfter)
	em.reconcileCS(savedBefore)

	cg.code[jmp].A = len(cg.code)
	em.saved = em.saved.Intersect(savedThen)
	em.stale = em.stale.Union(staleThen)
	em.repurposed = em.repurposed.Union(repThen)
}

// exitRegion implements the lazy-restore policy's "restore when the
// register is live on exit from the enclosing save region" rule
// (Figure 2c): each branch leaves every live saved register fresh, so
// the join sees a consistent register file.
func (em *emitter) exitRegion(liveAfter regset.Set) {
	if em.cg.opts.Restores != RestoreLazy {
		return
	}
	core.RestoreSet(liveAfter, em.saved).Intersect(em.stale).Minus(em.repurposed).ForEach(func(r int) {
		if v := em.regVar[r]; v != nil && v.CSReg >= 0 {
			return // the live value sits in the callee-save shadow
		}
		em.cg.emit(vm.Instr{Op: vm.OpLoadSlot, A: r, B: em.slotForReg(r), Kind: vm.KindRestore})
		em.cg.stats.RestoreSites++
		em.stale = em.stale.Remove(r)
	})
}

func (em *emitter) emitBind(t *ir.Bind, dst int) {
	cg := em.cg
	if t.Var.Loc.Kind == ir.LocReg {
		r := t.Var.Loc.Index
		em.emitExpr(t.Rhs, r)
		em.releaseCS(r)
		old := em.regVar[r]
		em.regVar[r] = t.Var
		em.saved = em.saved.Remove(r)
		em.stale = em.stale.Remove(r)
		em.repurposed = em.repurposed.Remove(r)
		if t.SaveVar {
			em.emitSaves(regset.Single(r), true)
		}
		em.emitExpr(t.Body, dst)
		em.releaseCS(r)
		em.regVar[r] = old
		em.saved = em.saved.Remove(r)
		em.stale = em.stale.Remove(r)
		return
	}
	rr, release := em.operandReg(t.Rhs)
	cg.emit(vm.Instr{Op: vm.OpStoreSlot, A: rr, B: t.Var.Loc.Index, Kind: vm.KindVar})
	release()
	em.emitExpr(t.Body, dst)
}

func (em *emitter) emitPrim(t *ir.PrimCall, dst int) {
	cg := em.cg
	mark := em.nextTemp
	operands := make([]int, len(t.Args))
	releases := make([]func(), 0, len(t.Args))
	// Call-containing arguments first, into frame temporaries.
	for i, a := range t.Args {
		if ir.HasCalls(a) {
			em.emitExpr(a, vm.RegRV)
			tmp := em.allocTemp()
			cg.emit(vm.Instr{Op: vm.OpStoreSlot, A: vm.RegRV, B: tmp, Kind: vm.KindTemp})
			operands[i] = ^tmp
		}
	}
	for i, a := range t.Args {
		if !ir.HasCalls(a) {
			op, release := em.operand(a)
			operands[i] = op
			releases = append(releases, release)
		}
	}
	if dst < 0 {
		dst = em.spillReg()
	}
	cg.emit(vm.Instr{Op: vm.OpPrim, A: dst, B: cg.primIndex(t.Def), Regs: operands})
	for _, r := range releases {
		r()
	}
	em.releaseTemps(mark)
}

func (em *emitter) emitClosure(t *ir.MakeClosure, dst int, placeholderFor map[*ir.Var]bool) []int {
	cg := em.cg
	operands := make([]int, len(t.Free))
	releases := make([]func(), 0, len(t.Free))
	var patchSlots []int
	for i, f := range t.Free {
		if vr, ok := f.(*ir.VarRef); ok && placeholderFor[vr.Var] {
			// Forward reference to a fix sibling not yet allocated:
			// fill with a placeholder and patch afterwards.
			s := em.spillReg()
			cg.emit(vm.Instr{Op: vm.OpLoadConst, A: s, B: cg.unspecIndex()})
			operands[i] = s
			patchSlots = append(patchSlots, i)
			continue
		}
		op, release := em.operand(f)
		operands[i] = op
		releases = append(releases, release)
	}
	cg.emit(vm.Instr{Op: vm.OpClosure, A: dst, B: t.ProcIndex, Regs: operands})
	for _, r := range releases {
		r()
	}
	return patchSlots
}

func (em *emitter) emitFix(t *ir.Fix, dst int) {
	cg := em.cg
	// Pending siblings need placeholders until allocated.
	pending := map[*ir.Var]bool{}
	for _, v := range t.Vars {
		pending[v] = true
	}
	oldVars := make([]*ir.Var, len(t.Vars))

	type patch struct {
		owner    *ir.Var // closure variable whose record needs patching
		freeSlot int
		src      *ir.Var // value to store (a fix sibling)
	}
	var patches []patch

	for i, v := range t.Vars {
		var target int
		var release func()
		if v.Loc.Kind == ir.LocReg {
			target = v.Loc.Index
			release = func() {}
		} else {
			s := em.allocScratch()
			if s < 0 {
				s = em.spillReg()
				release = func() {}
			} else {
				sv := s
				release = func() { em.freeScratch(sv) }
			}
			target = s
		}
		slots := em.emitClosure(t.Closures[i], target, pending)
		for _, fs := range slots {
			src := t.Closures[i].Free[fs].(*ir.VarRef).Var
			patches = append(patches, patch{owner: v, freeSlot: fs, src: src})
		}
		if v.Loc.Kind == ir.LocReg {
			em.releaseCS(target)
			oldVars[i] = em.regVar[target]
			em.regVar[target] = v
			em.saved = em.saved.Remove(target)
			em.stale = em.stale.Remove(target)
		} else {
			cg.emit(vm.Instr{Op: vm.OpStoreSlot, A: target, B: v.Loc.Index, Kind: vm.KindVar})
		}
		release()
		delete(pending, v)
	}

	// Patch forward references now that every closure exists. Patching
	// mutates the heap record, so slot-homed closures are loaded into a
	// register transiently.
	for _, p := range patches {
		ownerReg := -1
		var release func() = func() {}
		if p.owner.Loc.Kind == ir.LocReg {
			ownerReg = p.owner.Loc.Index
			em.ensureFresh(ownerReg)
		} else {
			s := em.allocScratch()
			if s < 0 {
				s = em.spillReg()
			} else {
				sv := s
				release = func() { em.freeScratch(sv) }
			}
			cg.emit(vm.Instr{Op: vm.OpLoadSlot, A: s, B: p.owner.Loc.Index, Kind: vm.KindVar})
			ownerReg = s
		}
		srcOp, srcRelease := em.operand(&ir.VarRef{Var: p.src})
		if srcOp < 0 {
			// src is slot-homed: bring it into the spill register.
			cg.emit(vm.Instr{Op: vm.OpLoadSlot, A: em.spillReg(), B: ^srcOp, Kind: vm.KindVar})
			srcOp = em.spillReg()
		}
		cg.emit(vm.Instr{Op: vm.OpClosurePatch, A: ownerReg, B: p.freeSlot, C: srcOp})
		srcRelease()
		release()
	}

	for i, v := range t.Vars {
		if v.Loc.Kind == ir.LocReg && t.SaveVars[i] {
			em.emitSaves(regset.Single(v.Loc.Index), true)
		}
	}

	em.emitExpr(t.Body, dst)

	for i, v := range t.Vars {
		if v.Loc.Kind == ir.LocReg {
			r := v.Loc.Index
			em.releaseCS(r)
			em.regVar[r] = oldVars[i]
			em.saved = em.saved.Remove(r)
			em.stale = em.stale.Remove(r)
		}
	}
}

// emitCall generates a call site: late saves, argument setup per the
// shuffle plan, the call itself, and post-call restores.
func (em *emitter) emitCall(t *ir.Call, dst int) {
	cg := em.cg
	cfg := em.cfg
	effTail := t.Tail && !t.CallCC

	// Record the shuffle's parallel assignment for the translation
	// validator before any of the call sequence is emitted: the sources
	// name where each simple argument's value lives right now.
	shStart := len(cg.code)
	shAssigns := em.shuffleAssigns(t)

	if !t.LateSaves.IsEmpty() {
		em.emitSaves(t.LateSaves, false)
	}

	mark := em.nextTemp
	nreg := len(t.Args)
	if nreg > cfg.ArgRegs {
		nreg = cfg.ArgRegs
	}
	exprs := make([]ir.Expr, 0, nreg+1)
	for i := 0; i < nreg; i++ {
		exprs = append(exprs, t.Args[i])
	}
	exprs = append(exprs, t.Fn)

	// Stack arguments are evaluated before the register shuffle (they
	// may read argument registers the shuffle is about to overwrite).
	// Complex ones go to temporaries first; simple ones are stored
	// directly when no call can intervene before the transfer, and
	// staged through temporaries otherwise.
	nStackArgs := max(0, len(t.Args)-cfg.ArgRegs)
	if effTail && nStackArgs > 0 {
		// Staging temporaries must lie above every target slot so the
		// final block copy cannot clobber a pending temporary.
		if em.nextTemp < nStackArgs {
			em.nextTemp = nStackArgs
			if em.nextTemp > em.maxTemp {
				em.maxTemp = em.nextTemp
			}
		}
	}
	planHasCall := false
	for _, sa := range t.ShuffleArgs {
		if sa.Complex {
			planHasCall = true
		}
	}
	stackTemps := map[int]int{}
	for i := cfg.ArgRegs; i < len(t.Args); i++ {
		if ir.HasCalls(t.Args[i]) {
			em.emitExpr(t.Args[i], vm.RegRV)
			tmp := em.allocTemp()
			cg.emit(vm.Instr{Op: vm.OpStoreSlot, A: vm.RegRV, B: tmp, Kind: vm.KindTemp})
			stackTemps[i] = tmp
		}
	}
	for i := cfg.ArgRegs; i < len(t.Args); i++ {
		if ir.HasCalls(t.Args[i]) {
			continue
		}
		k := i - cfg.ArgRegs
		if em.stackArgDirect(t, i, k, effTail, planHasCall) {
			r, release := em.operandReg(t.Args[i])
			if effTail {
				cg.emit(vm.Instr{Op: vm.OpStoreSlot, A: r, B: k, Kind: vm.KindArg})
			} else {
				em.emitStoreOut(r, k)
			}
			release()
			stackTemps[i] = -1 // already delivered
			continue
		}
		r, release := em.operandReg(t.Args[i])
		tmp := em.allocTemp()
		cg.emit(vm.Instr{Op: vm.OpStoreSlot, A: r, B: tmp, Kind: vm.KindTemp})
		release()
		stackTemps[i] = tmp
	}

	// The register shuffle plan. Targets become argument carriers: they
	// are marked repurposed so the lazy policy's save-region-exit
	// restores cannot clobber the pending values.
	//
	// The plan was computed against home registers; a simple argument
	// whose value has moved to its callee-save shadow needs no staging
	// at all, because the shuffle neither targets nor clobbers the
	// callee-save file — the shadow is read directly at move time.
	argTemps := map[int]int{}
	argCS := map[int]int{}
	for _, step := range t.Plan.Steps {
		expr := exprs[step.Arg]
		target := t.ShuffleArgs[step.Arg].Target
		if step.Dest != core.DestTarget {
			if cs, ok := em.csShadowSource(expr); ok {
				argCS[step.Arg] = cs
				continue
			}
		}
		switch step.Dest {
		case core.DestTarget:
			em.repurposed = em.repurposed.Add(target)
			em.emitExpr(expr, target)
			em.repurposed = em.repurposed.Add(target)
		case core.DestRegTemp:
			em.repurposed = em.repurposed.Add(step.TempReg)
			em.emitExpr(expr, step.TempReg)
			em.repurposed = em.repurposed.Add(step.TempReg)
		case core.DestStackTemp:
			if ir.HasCalls(expr) {
				em.emitExpr(expr, vm.RegRV)
				tmp := em.allocTemp()
				cg.emit(vm.Instr{Op: vm.OpStoreSlot, A: vm.RegRV, B: tmp, Kind: vm.KindTemp})
				argTemps[step.Arg] = tmp
			} else {
				r, release := em.operandReg(expr)
				tmp := em.allocTemp()
				cg.emit(vm.Instr{Op: vm.OpStoreSlot, A: r, B: tmp, Kind: vm.KindTemp})
				release()
				argTemps[step.Arg] = tmp
			}
		}
	}
	for _, argIdx := range t.Plan.Moves {
		target := t.ShuffleArgs[argIdx].Target
		em.repurposed = em.repurposed.Add(target)
		if cs, ok := argCS[argIdx]; ok {
			cg.emit(vm.Instr{Op: vm.OpMove, A: target, B: cs})
			continue
		}
		if tmp, ok := argTemps[argIdx]; ok {
			cg.emit(vm.Instr{Op: vm.OpLoadSlot, A: target, B: tmp, Kind: vm.KindTemp})
			continue
		}
		// Register temporary: find its step.
		moved := false
		for _, step := range t.Plan.Steps {
			if step.Arg == argIdx && step.Dest == core.DestRegTemp {
				cg.emit(vm.Instr{Op: vm.OpMove, A: target, B: step.TempReg})
				moved = true
				break
			}
		}
		if !moved {
			panic("codegen: shuffle move without a temporary")
		}
	}

	// For a tail call the outgoing slots overwrite the bottom of our own
	// frame — including, possibly, the ret/cp save area — so ret must be
	// back in its register before the copies run.
	if effTail {
		em.ensureFresh(retReg)
	}

	// Deliver the staged stack arguments (all evaluation, including any
	// calls in the shuffle plan, is complete).
	for i := cfg.ArgRegs; i < len(t.Args); i++ {
		tmp := stackTemps[i]
		if tmp < 0 {
			continue // delivered directly
		}
		k := i - cfg.ArgRegs
		cg.emit(vm.Instr{Op: vm.OpLoadSlot, A: em.spillReg(), B: tmp, Kind: vm.KindTemp})
		if effTail {
			cg.emit(vm.Instr{Op: vm.OpStoreSlot, A: em.spillReg(), B: k, Kind: vm.KindArg})
		} else {
			em.emitStoreOut(em.spillReg(), k)
		}
	}

	switch {
	case t.CallCC:
		em.ensureFresh(retReg)
		em.patchFrameB = append(em.patchFrameB, len(cg.code))
		cg.emit(vm.Instr{Op: vm.OpCallCC, A: 1})
	case effTail:
		em.ensureFresh(retReg)
		em.emitCSEpilogue()
		cg.emit(vm.Instr{Op: vm.OpTailCall, A: len(t.Args)})
	default:
		em.patchFrameB = append(em.patchFrameB, len(cg.code))
		cg.emit(vm.Instr{Op: vm.OpCall, A: len(t.Args)})
	}

	if len(shAssigns) > 0 {
		cg.shuffles = append(cg.shuffles, vm.ShuffleRecord{
			StartPC: shStart,
			CallPC:  len(cg.code) - 1,
			Assigns: shAssigns,
		})
	}

	em.releaseTemps(mark)
	if effTail {
		return
	}

	// Post-call: every caller-save register is destroyed; eager policy
	// restores everything possibly referenced before the next call.
	em.stale = regset.Universe(cfg.NumRegs()).Remove(vm.RegRV)
	em.repurposed = regset.Empty
	if em.cg.opts.Restores == RestoreEager {
		core.RestoreSet(t.RefsAfter, em.saved).ForEach(func(r int) {
			if v := em.regVar[r]; v != nil && v.CSReg >= 0 {
				return // survives the call in its callee-save shadow
			}
			cg.emit(vm.Instr{Op: vm.OpLoadSlot, A: r, B: em.slotForReg(r), Kind: vm.KindRestore})
			cg.stats.RestoreSites++
			em.stale = em.stale.Remove(r)
		})
	}

	if t.Tail && t.CallCC {
		// Emitted as a non-tail capture followed by a return.
		em.ensureFresh(retReg)
		em.emitCSEpilogue()
		cg.emit(vm.Instr{Op: vm.OpReturn})
		return
	}
	if dst >= 0 && dst != vm.RegRV {
		cg.emit(vm.Instr{Op: vm.OpMove, A: dst, B: vm.RegRV})
	}
}

// stackArgDirect reports whether stack argument i (target slot k of the
// callee frame) can be stored directly instead of staged via a
// temporary. For non-tail calls the outgoing area lies beyond our frame,
// so a direct store is safe unless a call in the shuffle plan would push
// a nested frame over it. For tail calls the target overlaps our own
// frame: the slot must lie within the incoming-parameter area (below the
// local/save/temp slots a nested call's restores might read) and must
// not be read by anything evaluated later.
func (em *emitter) stackArgDirect(t *ir.Call, i, k int, effTail, planHasCall bool) bool {
	if !effTail {
		return !planHasCall
	}
	if k >= em.stackParams {
		return false
	}
	cfg := em.cfg
	for j := i + 1; j < len(t.Args); j++ {
		if j >= cfg.ArgRegs && !ir.HasCalls(t.Args[j]) && slotReads(t.Args[j], k) {
			return false
		}
	}
	// Plan step indices range over the register arguments followed by
	// the operator.
	nreg := min(len(t.Args), cfg.ArgRegs)
	for _, step := range t.Plan.Steps {
		var expr ir.Expr
		if step.Arg < nreg {
			expr = t.Args[step.Arg]
		} else {
			expr = t.Fn
		}
		if slotReads(expr, k) {
			return false
		}
	}
	return true
}

// slotReads reports whether evaluating e may read frame slot k (a
// slot-homed variable access).
func slotReads(e ir.Expr, k int) bool {
	switch t := e.(type) {
	case *ir.Const, *ir.GlobalRef, *ir.FreeRef:
		return false
	case *ir.VarRef:
		return t.Var.Loc.Kind == ir.LocSlot && t.Var.Loc.Index == k
	case *ir.GlobalSet:
		return slotReads(t.Rhs, k)
	case *ir.If:
		return slotReads(t.Test, k) || slotReads(t.Then, k) || slotReads(t.Else, k)
	case *ir.Seq:
		for _, x := range t.Exprs {
			if slotReads(x, k) {
				return true
			}
		}
		return false
	case *ir.Bind:
		return slotReads(t.Rhs, k) || slotReads(t.Body, k)
	case *ir.PrimCall:
		for _, x := range t.Args {
			if slotReads(x, k) {
				return true
			}
		}
		return false
	case *ir.Call:
		if slotReads(t.Fn, k) {
			return true
		}
		for _, x := range t.Args {
			if slotReads(x, k) {
				return true
			}
		}
		return false
	case *ir.MakeClosure:
		for _, x := range t.Free {
			if slotReads(x, k) {
				return true
			}
		}
		return false
	case *ir.Fix:
		for _, c := range t.Closures {
			if slotReads(c, k) {
				return true
			}
		}
		return slotReads(t.Body, k)
	case *ir.Save:
		return slotReads(t.Body, k)
	default:
		panic(fmt.Sprintf("codegen: slotReads: unknown expression %T", e))
	}
}

func (em *emitter) emitStoreOut(srcReg, outSlot int) {
	em.patchFrameC = append(em.patchFrameC, len(em.cg.code))
	em.cg.emit(vm.Instr{Op: vm.OpStoreOut, A: srcReg, B: outSlot, Kind: vm.KindArg})
}
