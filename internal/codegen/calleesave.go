package codegen

import (
	"fmt"

	"repro/internal/ir"
)

// markCrossing marks every variable that may be live across a non-tail
// call (conservatively), for the §2.4 callee-save mode: only those are
// worth shadowing in callee-save registers. The walk is a backward
// variable-liveness pass; at each call every live variable is marked.
func markCrossing(p *ir.Proc) {
	live := map[*ir.Var]bool{}
	var walk func(e ir.Expr)
	markLive := func() {
		for v := range live {
			v.CrossCall = true
		}
	}
	walk = func(e ir.Expr) {
		switch t := e.(type) {
		case *ir.Const, *ir.FreeRef, *ir.GlobalRef:
		case *ir.VarRef:
			live[t.Var] = true
		case *ir.GlobalSet:
			walk(t.Rhs)
		case *ir.If:
			// Backward over a union of both arms (conservative).
			walk(t.Then)
			walk(t.Else)
			walk(t.Test)
		case *ir.Seq:
			for i := len(t.Exprs) - 1; i >= 0; i-- {
				walk(t.Exprs[i])
			}
		case *ir.Bind:
			walk(t.Body)
			delete(live, t.Var)
			walk(t.Rhs)
		case *ir.PrimCall:
			for i := len(t.Args) - 1; i >= 0; i-- {
				walk(t.Args[i])
			}
		case *ir.Call:
			if !t.Tail || t.CallCC {
				markLive()
			}
			walk(t.Fn)
			for i := len(t.Args) - 1; i >= 0; i-- {
				walk(t.Args[i])
			}
			if !t.Tail || t.CallCC {
				// Variables read by the arguments are live at the call.
				markLive()
			}
		case *ir.MakeClosure:
			for _, f := range t.Free {
				walk(f)
			}
		case *ir.Fix:
			walk(t.Body)
			for _, v := range t.Vars {
				delete(live, v)
			}
			for _, c := range t.Closures {
				walk(c)
			}
		case *ir.Save:
			walk(t.Body)
		default:
			panic(fmt.Sprintf("codegen: markCrossing: unknown expression %T", e))
		}
	}
	walk(p.Body)
}

// assignCalleeSaveRegs gives every register-homed crossing variable a
// callee-save shadow register from the pool, with scope-based reuse
// mirroring assignLocations.
func (cg *codegen) assignCalleeSaveRegs(p *ir.Proc) {
	cfg := cg.opts.Config
	pool := make([]int, 0, cfg.CalleeSaveRegs)
	for i := cfg.CalleeSaveRegs - 1; i >= 0; i-- {
		pool = append(pool, cfg.CalleeSaveReg(i))
	}
	take := func(v *ir.Var) {
		v.CSReg = -1
		if v.Loc.Kind != ir.LocReg || !v.CrossCall {
			return
		}
		if n := len(pool); n > 0 {
			v.CSReg = pool[n-1]
			pool = pool[:n-1]
		}
	}
	release := func(v *ir.Var) {
		if v.CSReg >= 0 {
			pool = append(pool, v.CSReg)
		}
	}
	for _, v := range p.Params {
		take(v)
	}
	var walk func(e ir.Expr)
	walk = func(e ir.Expr) {
		switch t := e.(type) {
		case *ir.Const, *ir.VarRef, *ir.FreeRef, *ir.GlobalRef:
		case *ir.GlobalSet:
			walk(t.Rhs)
		case *ir.If:
			walk(t.Test)
			walk(t.Then)
			walk(t.Else)
		case *ir.Seq:
			for _, x := range t.Exprs {
				walk(x)
			}
		case *ir.Bind:
			walk(t.Rhs)
			take(t.Var)
			walk(t.Body)
			release(t.Var)
		case *ir.PrimCall:
			for _, x := range t.Args {
				walk(x)
			}
		case *ir.Call:
			walk(t.Fn)
			for _, x := range t.Args {
				walk(x)
			}
		case *ir.MakeClosure:
		case *ir.Fix:
			for _, v := range t.Vars {
				take(v)
			}
			walk(t.Body)
			for _, v := range t.Vars {
				release(v)
			}
		case *ir.Save:
			walk(t.Body)
		default:
			panic(fmt.Sprintf("codegen: assignCalleeSaveRegs: unknown expression %T", e))
		}
	}
	walk(p.Body)
}
