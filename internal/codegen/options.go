// Package codegen is the register allocator and code generator: the
// two-pass algorithm of §3 driving the core save/restore/shuffle
// machinery over the IR and emitting VM instructions.
//
// Pass 1 (analyze.go) walks each procedure bottom-up computing liveness,
// the S_t/S_f save sets, the "possibly referenced before the next call"
// restore sets, and a shuffle plan per call site; it records save
// placements as annotations on the IR. Pass 2 (emit.go) walks forward
// emitting code, eliminating saves already performed by an enclosing
// save region and inserting restores immediately after calls.
package codegen

import (
	"fmt"

	"repro/internal/vm"
)

// SaveStrategy selects the register save placement of §4's comparison.
type SaveStrategy int

const (
	// SaveLazy is the paper's strategy: save as soon as a call is
	// inevitable (revised S_t/S_f algorithm).
	SaveLazy SaveStrategy = iota
	// SaveEarly saves at the definition point (procedure entry for
	// parameters) every register that is live across any call anywhere
	// in the procedure — the natural callee-save-style extreme.
	SaveEarly
	// SaveLate saves the live registers immediately before each call —
	// the natural caller-save extreme, with redundant saves on paths
	// with multiple calls.
	SaveLate
	// SaveSimple places saves with the simple one-set algorithm of
	// §2.1.1 (S[E] instead of S_t/S_f). It is sound — every call's
	// requirement is still covered at its own branch — but "too lazy"
	// around short-circuit boolean tests, pushing saves into branches
	// where they execute repeatedly (the §2.1.2 deficiency).
	SaveSimple
)

func (s SaveStrategy) String() string {
	switch s {
	case SaveLazy:
		return "lazy"
	case SaveEarly:
		return "early"
	case SaveLate:
		return "late"
	case SaveSimple:
		return "simple"
	default:
		return fmt.Sprintf("SaveStrategy(%d)", int(s))
	}
}

// RestorePolicy selects §2.2's restore placement.
type RestorePolicy int

const (
	// RestoreEager restores immediately after each call every register
	// possibly referenced before the next call (the paper's choice).
	RestoreEager RestorePolicy = iota
	// RestoreLazy restores a register at its first use after a call
	// (the maximally lazy baseline).
	RestoreLazy
)

func (r RestorePolicy) String() string {
	if r == RestoreLazy {
		return "lazy"
	}
	return "eager"
}

// ShuffleMethod selects the argument-shuffling algorithm of §2.3.
type ShuffleMethod int

const (
	// ShuffleGreedy is the paper's greedy algorithm.
	ShuffleGreedy ShuffleMethod = iota
	// ShuffleOptimal exhaustively minimizes temporaries.
	ShuffleOptimal
	// ShuffleNaive evaluates arguments left to right (the pre-greedy
	// compiler of §4, whose performance "decreased after two argument
	// registers").
	ShuffleNaive
)

func (s ShuffleMethod) String() string {
	switch s {
	case ShuffleOptimal:
		return "optimal"
	case ShuffleNaive:
		return "naive"
	default:
		return "greedy"
	}
}

// Options configures a compilation.
type Options struct {
	Config   vm.Config
	Saves    SaveStrategy
	Restores RestorePolicy
	Shuffle  ShuffleMethod
	// PredictBranches enables the §6 static branch prediction extension:
	// paths without calls are predicted taken.
	PredictBranches bool
	// ComputeShuffleStats additionally runs the exhaustive-optimal
	// shuffler at every call site to measure the greedy heuristic's
	// optimality (§3.1); it does not affect generated code.
	ComputeShuffleStats bool
	// CalleeSave enables the §2.4 callee-save discipline: variables live
	// across calls are shadowed in callee-save registers
	// (Config.CalleeSaveRegs must be positive); the save of the
	// register's previous contents and the move into it are placed by
	// the selected save strategy, and the previous contents are restored
	// at procedure exits.
	CalleeSave bool
	// Verify runs the internal/verify translation validator over the
	// generated code as a compiler post-pass: a compilation whose output
	// breaks the save/restore/shuffle invariants fails instead of
	// producing code that misbehaves at run time.
	Verify bool
	// Lint runs the internal/analysis optimality analyzer over the
	// generated code as a compiler post-pass. Unlike Verify it never
	// fails the compilation: the waste report (redundant saves, dead
	// restores, suboptimal shuffles, static cost estimate) is attached
	// to the compilation result for the caller to inspect or gate on.
	Lint bool
}

// DefaultOptions is the paper's configuration: lazy saves, eager
// restores, greedy shuffling, six argument and six user registers.
func DefaultOptions() Options {
	return Options{Config: vm.DefaultConfig()}
}

// Stats reports static compilation measurements (§3.1, §4).
type Stats struct {
	// CallSites is the number of non-tail plus tail call sites with at
	// least one register argument to shuffle.
	CallSites int
	// CyclicCallSites counts call sites whose simple-argument dependency
	// graph had a cycle (§3.1 reports 7%).
	CyclicCallSites int
	// ShuffleTemps is the total number of simple-argument temporaries
	// the selected shuffler introduced.
	ShuffleTemps int
	// OptimalTemps is the exhaustive minimum (only filled when
	// ComputeShuffleStats is set).
	OptimalTemps int
	// SitesOptimal / SitesSuboptimal break down greedy-vs-optimal per
	// call site (only with ComputeShuffleStats).
	SitesOptimal    int
	SitesSuboptimal int
	// ExtraTempsWorst is the largest per-site excess over optimal.
	ExtraTempsWorst int
	// SaveSites / RestoreSites count emitted save and restore
	// instructions (static).
	SaveSites    int
	RestoreSites int
	// DefensiveRestores counts restores the emitter inserted at a use
	// even though the eager policy should have covered it; nonzero
	// values indicate an analysis imprecision (tests assert zero).
	DefensiveRestores int
	// Procs is the number of procedures compiled; SyntacticLeaves and
	// CallInevitable count their static classification.
	Procs           int
	SyntacticLeaves int
	CallInevitable  int
	// Instructions is the total code length.
	Instructions int
}
