package codegen

import (
	"fmt"
	"os"

	"repro/internal/ir"
	"repro/internal/prim"
	"repro/internal/vm"
)

// codegen holds program-wide compilation state.
type codegen struct {
	opts   Options
	prog   *ir.Program
	code   []vm.Instr
	consts []prim.Value
	// constIdx dedups comparable constants.
	constIdx map[prim.Value]int
	prims    []*prim.Def
	primIdx  map[*prim.Def]int
	unspec   int
	stats    Stats
	shuffles []vm.ShuffleRecord
}

// Compile lowers an IR program to VM code under the given options. The
// IR is annotated in place (variable locations, shuffle plans, save
// sets), so a fresh IR must be built per compilation.
func Compile(prog *ir.Program, opts Options) (compiled *vm.Program, stats Stats, err error) {
	if verr := opts.Config.Validate(); verr != nil {
		return nil, Stats{}, verr
	}
	cg := &codegen{
		opts:     opts,
		prog:     prog,
		constIdx: map[prim.Value]int{},
		primIdx:  map[*prim.Def]int{},
		unspec:   -1,
	}
	defer func() {
		if r := recover(); r != nil {
			if os.Getenv("CODEGEN_DEBUG") != "" {
				panic(r)
			}
			err = fmt.Errorf("codegen: internal error: %v", r)
		}
	}()

	cg.emit(vm.Instr{Op: vm.OpHalt}) // code[0]: where main returns

	procs := make([]vm.ProcInfo, len(prog.Procs))
	for i, p := range prog.Procs {
		entry := cg.emitProc(p)
		procs[i] = vm.ProcInfo{
			Name:           p.Name,
			Entry:          entry,
			NArgs:          len(p.Params),
			NFree:          p.NFree,
			SyntacticLeaf:  p.SyntacticLeaf,
			CallInevitable: p.CallInevitable,
		}
		cg.stats.Procs++
		if p.SyntacticLeaf {
			cg.stats.SyntacticLeaves++
		}
		if p.CallInevitable {
			cg.stats.CallInevitable++
		}
	}
	cg.stats.Instructions = len(cg.code)

	constMutable := make([]bool, len(cg.consts))
	for i, c := range cg.consts {
		constMutable[i] = isMutableConst(c)
	}

	out := &vm.Program{
		Code:         cg.code,
		Consts:       cg.consts,
		ConstMutable: constMutable,
		Prims:        cg.prims,
		Procs:        procs,
		MainIndex:    prog.MainIndex,
		GlobalNames:  prog.GlobalNames,
		PrimGlobals:  prog.PrimGlobals,
		Config:       opts.Config,
		Shuffles:     cg.shuffles,
	}
	return out, cg.stats, nil
}

func (cg *codegen) emit(in vm.Instr) { cg.code = append(cg.code, in) }

func (cg *codegen) constIndex(v prim.Value) int {
	if comparableConst(v) {
		if i, ok := cg.constIdx[v]; ok {
			return i
		}
	}
	i := len(cg.consts)
	cg.consts = append(cg.consts, v)
	if comparableConst(v) {
		cg.constIdx[v] = i
	}
	return i
}

func (cg *codegen) unspecIndex() int {
	if cg.unspec < 0 {
		cg.unspec = cg.constIndex(prim.Unspecified)
	}
	return cg.unspec
}

func (cg *codegen) primIndex(d *prim.Def) int {
	if i, ok := cg.primIdx[d]; ok {
		return i
	}
	i := len(cg.prims)
	cg.prims = append(cg.prims, d)
	cg.primIdx[d] = i
	return i
}

// comparableConst reports whether v can key the dedup map: everything
// except pairs and vectors, which are mutable (each quote evaluation
// must yield fresh structure, so sharing a pool slot is fine but the
// Value contains pointers that defeat by-value dedup anyway).
func comparableConst(v prim.Value) bool {
	return !isMutableConst(v)
}

func isMutableConst(v prim.Value) bool {
	if _, ok := v.Pair(); ok {
		return true
	}
	_, ok := v.Vector()
	return ok
}
