package codegen

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/vm"
)

// build lowers source through the front end into IR (no prelude).
func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := ast.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	irProg, err := passes.ClosureConvert(passes.AssignConvert(prog))
	if err != nil {
		t.Fatal(err)
	}
	return irProg
}

func procByName(t *testing.T, p *ir.Program, name string) *ir.Proc {
	t.Helper()
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	t.Fatalf("no proc %q", name)
	return nil
}

func TestAssignLocationsParams(t *testing.T) {
	prog := build(t, "(define (f a b c) (+ a b c)) (f 1 2 3)")
	cg := &codegen{opts: Options{Config: vm.Config{ArgRegs: 2, UserRegs: 2, ScratchRegs: 8}}}
	f := procByName(t, prog, "f")
	stackParams, _ := cg.assignLocations(f)
	if stackParams != 1 {
		t.Errorf("stackParams = %d, want 1", stackParams)
	}
	if f.Params[0].Loc.Kind != ir.LocReg || f.Params[0].Loc.Index != cg.opts.Config.ArgReg(0) {
		t.Errorf("param a placed at %v", f.Params[0].Loc)
	}
	if f.Params[2].Loc.Kind != ir.LocSlot || f.Params[2].Loc.Index != 0 {
		t.Errorf("param c placed at %v", f.Params[2].Loc)
	}
}

func TestAssignLocationsScopeReuse(t *testing.T) {
	// Two sibling lets must reuse the same user register.
	prog := build(t, `
(define (f a)
  (+ (let ([x (+ a 1)]) x)
     (let ([y (+ a 2)]) y)))
(f 1)`)
	cg := &codegen{opts: Options{Config: vm.Config{ArgRegs: 2, UserRegs: 1, ScratchRegs: 8}}}
	f := procByName(t, prog, "f")
	cg.assignLocations(f)
	var locs []ir.Loc
	var collect func(e ir.Expr)
	collect = func(e ir.Expr) {
		switch n := e.(type) {
		case *ir.Bind:
			locs = append(locs, n.Var.Loc)
			collect(n.Rhs)
			collect(n.Body)
		case *ir.PrimCall:
			for _, a := range n.Args {
				collect(a)
			}
		case *ir.Seq:
			for _, a := range n.Exprs {
				collect(a)
			}
		}
	}
	collect(f.Body)
	if len(locs) != 2 {
		t.Fatalf("found %d binds", len(locs))
	}
	if locs[0] != locs[1] {
		t.Errorf("sibling binds should share a register: %v vs %v", locs[0], locs[1])
	}
	if locs[0].Kind != ir.LocReg {
		t.Errorf("expected register placement, got %v", locs[0])
	}
}

func TestAssignLocationsSlotOverflow(t *testing.T) {
	// With zero user registers, nested lets go to distinct frame slots.
	prog := build(t, `
(define (f a)
  (let ([x (+ a 1)])
    (let ([y (+ x 1)])
      (+ x y))))
(f 1)`)
	cg := &codegen{opts: Options{Config: vm.BaselineConfig()}}
	f := procByName(t, prog, "f")
	_, varSlots := cg.assignLocations(f)
	if varSlots != 2 {
		t.Errorf("varSlots = %d, want 2", varSlots)
	}
}

func TestAnalyzeAnnotations(t *testing.T) {
	prog := build(t, `
(define (g x) x)
(define (f a)
  (if (< a 0)
      a
      (+ 1 (g a))))
(f 1)`)
	opts := DefaultOptions()
	cg := &codegen{opts: opts}
	f := procByName(t, prog, "f")
	cg.assignLocations(f)
	entrySaves := cg.analyzeProc(f)

	// f has a call-free path (the then branch), so nothing is saved at
	// entry under the lazy strategy...
	if !entrySaves.IsEmpty() {
		t.Errorf("entry saves = %s, want empty", entrySaves)
	}
	if f.SyntacticLeaf {
		t.Error("f is not a syntactic leaf")
	}
	if f.CallInevitable {
		t.Error("f has a call-free path")
	}
	// ...and the else branch carries the saves. Only ret is live after
	// the call (a's last use is as the argument), so only ret is saved.
	iff := findIf(f.Body)
	if iff == nil {
		t.Fatal("no if in body")
	}
	if !iff.ThenSaves.IsEmpty() {
		t.Errorf("then-branch saves = %s, want empty", iff.ThenSaves)
	}
	aReg := f.Params[0].Loc.Index
	if !iff.ElseSaves.Has(retReg) {
		t.Errorf("else-branch saves = %s, want ret", iff.ElseSaves)
	}
	if iff.ElseSaves.Has(aReg) {
		t.Errorf("a (r%d) is dead after the call and must not be saved: %s", aReg, iff.ElseSaves)
	}

	// The call is annotated with liveness and restore information.
	call := findCall(f.Body)
	if call == nil {
		t.Fatal("no call in body")
	}
	if !call.LiveAfter.Has(retReg) {
		t.Errorf("ret should be live after the call: %s", call.LiveAfter)
	}
	if !call.RefsAfter.Has(retReg) {
		t.Errorf("ret is referenced before the next call (the return): %s", call.RefsAfter)
	}
}

func TestAnalyzeCallInevitable(t *testing.T) {
	prog := build(t, `
(define (g x) x)
(define (f a) (+ 1 (g a)))
(f 1)`)
	cg := &codegen{opts: DefaultOptions()}
	f := procByName(t, prog, "f")
	cg.assignLocations(f)
	saves := cg.analyzeProc(f)
	if !f.CallInevitable {
		t.Error("every path through f calls")
	}
	if !saves.Has(retReg) {
		t.Errorf("ret must be saved at entry: %s", saves)
	}
}

func TestEarlyStrategySavesAtEntry(t *testing.T) {
	prog := build(t, `
(define (g x) x)
(define (f a)
  (if (< a 0) a (+ 1 (g a))))
(f 1)`)
	opts := DefaultOptions()
	opts.Saves = SaveEarly
	cg := &codegen{opts: opts}
	f := procByName(t, prog, "f")
	cg.assignLocations(f)
	saves := cg.analyzeProc(f)
	// Early saves at entry everything ever live across a call — even
	// though the then-path never calls.
	if !saves.Has(retReg) {
		t.Errorf("early strategy should save ret at entry: %s", saves)
	}
	iff := findIf(f.Body)
	if !iff.ThenSaves.IsEmpty() || !iff.ElseSaves.IsEmpty() {
		t.Error("early strategy places no branch saves")
	}
}

func TestLateStrategyAnnotatesCalls(t *testing.T) {
	prog := build(t, `
(define (g x) x)
(define (f a) (+ a (g a)))
(f 1)`)
	opts := DefaultOptions()
	opts.Saves = SaveLate
	cg := &codegen{opts: opts}
	f := procByName(t, prog, "f")
	cg.assignLocations(f)
	saves := cg.analyzeProc(f)
	if !saves.IsEmpty() {
		t.Errorf("late strategy saves nothing at entry: %s", saves)
	}
	call := findCall(f.Body)
	if call.LateSaves.IsEmpty() {
		t.Error("late strategy should annotate the call with saves")
	}
}

func TestRegReads(t *testing.T) {
	prog := build(t, `
(define (f a b)
  (g (+ a 1) (h b)))
(f 1 2)`)
	cg := &codegen{opts: DefaultOptions()}
	f := procByName(t, prog, "f")
	cg.assignLocations(f)
	aReg := f.Params[0].Loc.Index
	bReg := f.Params[1].Loc.Index
	call := findCall(f.Body) // outermost (tail) call to g
	reads := regReads(call)
	if !reads.Has(aReg) || !reads.Has(bReg) {
		t.Errorf("call reads %s, want a (r%d) and b (r%d)", reads, aReg, bReg)
	}
	// Tail calls read ret.
	if !reads.Has(retReg) {
		t.Errorf("tail call should read ret: %s", reads)
	}
}

func TestMarkCrossing(t *testing.T) {
	prog := build(t, `
(define (g x) x)
(define (f a b)
  (+ (g a) b))
(f 1 2)`)
	f := procByName(t, prog, "f")
	markCrossing(f)
	// b is read after the call to g: crossing. The pass is deliberately
	// conservative (argument reads are marked too), so a is also
	// crossing; the essential property is that b is never missed.
	if !f.Params[1].CrossCall {
		t.Error("b must be marked crossing")
	}
}

func TestCompileStats(t *testing.T) {
	prog := build(t, `
(define (swap a b) (if (zero? a) b (swap b (- a 1))))
(swap 3 4)`)
	opts := DefaultOptions()
	opts.ComputeShuffleStats = true
	_, stats, err := Compile(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CallSites == 0 || stats.Procs < 2 {
		t.Errorf("stats incomplete: %+v", stats)
	}
	if stats.CyclicCallSites == 0 {
		t.Error("swap's recursive call has an argument cycle")
	}
	if stats.SitesOptimal+stats.SitesSuboptimal != stats.CallSites {
		t.Error("optimality accounting inconsistent")
	}
}

func TestCompileRejectsBadConfig(t *testing.T) {
	prog := build(t, "(+ 1 2)")
	opts := DefaultOptions()
	opts.Config = vm.Config{ArgRegs: 40, UserRegs: 40, ScratchRegs: 8}
	if _, _, err := Compile(prog, opts); err == nil {
		t.Error("expected config validation error")
	}
}

func TestStrategyStrings(t *testing.T) {
	for s, want := range map[SaveStrategy]string{
		SaveLazy: "lazy", SaveEarly: "early", SaveLate: "late", SaveSimple: "simple",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if !strings.Contains(SaveStrategy(99).String(), "99") {
		t.Error("unknown strategy should print its number")
	}
	if RestoreLazy.String() != "lazy" || RestoreEager.String() != "eager" {
		t.Error("restore policy strings")
	}
	if ShuffleOptimal.String() != "optimal" || ShuffleNaive.String() != "naive" || ShuffleGreedy.String() != "greedy" {
		t.Error("shuffle method strings")
	}
}

func TestSlotReads(t *testing.T) {
	slotVar := &ir.Var{Name: "s", Loc: ir.Loc{Kind: ir.LocSlot, Index: 2}, SaveSlot: -1, CSReg: -1}
	regVar := &ir.Var{Name: "r", Loc: ir.Loc{Kind: ir.LocReg, Index: 5}, SaveSlot: -1, CSReg: -1}
	e := ir.Expr(&ir.PrimCall{Args: []ir.Expr{&ir.VarRef{Var: slotVar}, &ir.VarRef{Var: regVar}}})
	if !slotReads(e, 2) {
		t.Error("should read slot 2")
	}
	if slotReads(e, 3) {
		t.Error("should not read slot 3")
	}
}

// findIf and findCall locate the first node of each type.
func findIf(e ir.Expr) *ir.If {
	var out *ir.If
	walkIR(e, func(x ir.Expr) {
		if n, ok := x.(*ir.If); ok && out == nil {
			out = n
		}
	})
	return out
}

func findCall(e ir.Expr) *ir.Call {
	var out *ir.Call
	walkIR(e, func(x ir.Expr) {
		if n, ok := x.(*ir.Call); ok && out == nil {
			out = n
		}
	})
	return out
}

func walkIR(e ir.Expr, f func(ir.Expr)) {
	f(e)
	switch n := e.(type) {
	case *ir.GlobalSet:
		walkIR(n.Rhs, f)
	case *ir.If:
		walkIR(n.Test, f)
		walkIR(n.Then, f)
		walkIR(n.Else, f)
	case *ir.Seq:
		for _, x := range n.Exprs {
			walkIR(x, f)
		}
	case *ir.Bind:
		walkIR(n.Rhs, f)
		walkIR(n.Body, f)
	case *ir.PrimCall:
		for _, x := range n.Args {
			walkIR(x, f)
		}
	case *ir.Call:
		walkIR(n.Fn, f)
		for _, x := range n.Args {
			walkIR(x, f)
		}
	case *ir.MakeClosure:
		for _, x := range n.Free {
			walkIR(x, f)
		}
	case *ir.Fix:
		for _, c := range n.Closures {
			walkIR(c, f)
		}
		walkIR(n.Body, f)
	case *ir.Save:
		walkIR(n.Body, f)
	}
}
