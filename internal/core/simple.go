package core

import (
	"fmt"
	"strings"

	"repro/internal/regset"
)

// Expr is the paper's §2 simplified expression language:
//
//	E → x | true | false | call | (seq E1 E2) | (if E1 E2 E3)
//
// It exists so the placement algorithms can be exercised — and verified
// against brute-force path enumeration — in exactly the terms the paper
// uses; the production compiler folds the same combinators over its
// richer IR.
type Expr interface {
	simpleExpr()
	String() string
}

// Var is a variable reference x (a register read).
type Var struct{ Reg int }

// True is the constant true.
type True struct{}

// False is the constant false.
type False struct{}

// Call is a procedure call; LiveAfter is the set of registers live after
// it, i.e. the registers that must be saved somewhere before it executes.
type Call struct{ LiveAfter regset.Set }

// Seq is (seq E1 E2).
type Seq struct{ E1, E2 Expr }

// If is (if E1 E2 E3).
type If struct{ Test, Then, Else Expr }

func (Var) simpleExpr()   {}
func (True) simpleExpr()  {}
func (False) simpleExpr() {}
func (Call) simpleExpr()  {}
func (Seq) simpleExpr()   {}
func (If) simpleExpr()    {}

func (v Var) String() string  { return fmt.Sprintf("x%d", v.Reg) }
func (True) String() string   { return "true" }
func (False) String() string  { return "false" }
func (c Call) String() string { return "call" + c.LiveAfter.String() }
func (s Seq) String() string  { return fmt.Sprintf("(seq %s %s)", s.E1, s.E2) }
func (i If) String() string   { return fmt.Sprintf("(if %s %s %s)", i.Test, i.Then, i.Else) }

// Simple computes S[E] by the simple algorithm of §2.1.1.
func Simple(e Expr) regset.Set {
	switch t := e.(type) {
	case Var, True, False:
		return regset.Empty
	case Call:
		return t.LiveAfter
	case Seq:
		return SimpleSeq(SimpleSets{Simple(t.E1)}, SimpleSets{Simple(t.E2)}).S
	case If:
		return SimpleIf(SimpleSets{Simple(t.Test)}, SimpleSets{Simple(t.Then)}, SimpleSets{Simple(t.Else)}).S
	default:
		panic(fmt.Sprintf("core: unknown expression %T", e))
	}
}

// Revised computes (S_t[E], S_f[E]) by the revised algorithm of §2.1.3.
// r is the machine's full register universe R.
func Revised(e Expr, r regset.Set) SaveSets {
	switch t := e.(type) {
	case Var:
		return LeafSets()
	case True:
		return TrueSets(r)
	case False:
		return FalseSets(r)
	case Call:
		return CallSets(t.LiveAfter)
	case Seq:
		return SeqSets(Revised(t.E1, r), Revised(t.E2, r))
	case If:
		return IfSets(Revised(t.Test, r), Revised(t.Then, r), Revised(t.Else, r))
	default:
		panic(fmt.Sprintf("core: unknown expression %T", e))
	}
}

// outcome abstracts an expression result on a particular control path.
type outcome int

const (
	outTrue outcome = iota
	outFalse
)

// path is one feasible control path: the result outcome and the union of
// the save sets of the calls executed along it.
type path struct {
	out   outcome
	saves regset.Set
	calls int
}

// paths enumerates every feasible control path through e. Infeasible
// paths (e.g. the constant true evaluating to false) are not produced —
// this is the semantic ground truth against which the recursive
// equations are verified.
func paths(e Expr) []path {
	switch t := e.(type) {
	case Var:
		return []path{{out: outTrue}, {out: outFalse}}
	case True:
		return []path{{out: outTrue}}
	case False:
		return []path{{out: outFalse}}
	case Call:
		return []path{
			{out: outTrue, saves: t.LiveAfter, calls: 1},
			{out: outFalse, saves: t.LiveAfter, calls: 1},
		}
	case Seq:
		var out []path
		for _, p1 := range paths(t.E1) {
			for _, p2 := range paths(t.E2) {
				out = append(out, path{
					out:   p2.out,
					saves: p1.saves.Union(p2.saves),
					calls: p1.calls + p2.calls,
				})
			}
		}
		return out
	case If:
		var out []path
		for _, pt := range paths(t.Test) {
			branch := t.Then
			if pt.out == outFalse {
				branch = t.Else
			}
			for _, pb := range paths(branch) {
				out = append(out, path{
					out:   pb.out,
					saves: pt.saves.Union(pb.saves),
					calls: pt.calls + pb.calls,
				})
			}
		}
		return out
	default:
		panic(fmt.Sprintf("core: unknown expression %T", e))
	}
}

// PathSets computes (S_t[E], S_f[E]) from first principles by
// enumerating control paths: along a path, union the save sets; across
// paths with the same outcome, intersect; an outcome with no feasible
// path yields R.
func PathSets(e Expr, r regset.Set) SaveSets {
	st, sf := r, r
	for _, p := range paths(e) {
		if p.out == outTrue {
			st = st.Intersect(p.saves)
		} else {
			sf = sf.Intersect(p.saves)
		}
	}
	return SaveSets{T: st, F: sf}
}

// HasCallFreePath reports whether some feasible path through e executes
// no call ("E contains a path without any calls", §2.4).
func HasCallFreePath(e Expr) bool {
	for _, p := range paths(e) {
		if p.calls == 0 {
			return true
		}
	}
	return false
}

// CallInevitable reports whether every feasible path through e makes a
// call. With the ret-register technique of §2.4 this is equivalent to
// ret ∈ S_t[E] ∩ S_f[E].
func CallInevitable(e Expr) bool { return !HasCallFreePath(e) }

// FormatSets renders save sets for dumps: "St=... Sf=... save=...".
func FormatSets(s SaveSets) string {
	var b strings.Builder
	b.WriteString("St=")
	b.WriteString(s.T.String())
	b.WriteString(" Sf=")
	b.WriteString(s.F.String())
	b.WriteString(" save=")
	b.WriteString(s.Save().String())
	return b.String()
}
