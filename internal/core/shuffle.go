package core

import (
	"math/bits"

	"repro/internal/regset"
)

// ShuffleArg describes one outgoing argument of a call for the purposes
// of argument-register shuffling (§2.3). The operator itself participates
// as an extra argument whose target is the closure-pointer register.
type ShuffleArg struct {
	// Target is the register the argument must end up in.
	Target int
	// Reads is the set of argument registers whose *current* values the
	// argument expression reads. Reads of the argument's own target do
	// not constrain the order (the write happens after the reads).
	Reads regset.Set
	// Complex marks arguments containing (non-tail) calls; per §3.1 all
	// but one of these are evaluated into stack temporaries up front,
	// "since evaluation of complex arguments may require a call, causing
	// the previous arguments to be saved on the stack anyway".
	Complex bool
}

// DestKind says where a shuffle step delivers its value.
type DestKind int

const (
	// DestTarget evaluates the argument directly into its target register.
	DestTarget DestKind = iota
	// DestRegTemp evaluates into a free register temporary; a final move
	// transfers it to the target.
	DestRegTemp
	// DestStackTemp evaluates into a stack temporary; a final move
	// transfers it to the target.
	DestStackTemp
)

// Step is one evaluation in a shuffle plan.
type Step struct {
	Arg  int      // index into the args slice
	Dest DestKind // where the value goes
	// TempReg is the temporary register when Dest == DestRegTemp.
	TempReg int
}

// Plan is a complete argument-evaluation schedule: execute Steps in
// order, then perform the temp-to-target Moves (each Moves entry is an
// arg index whose temporary must be copied into its target register).
type Plan struct {
	Steps []Step
	Moves []int
	// HadCycle reports whether the simple-argument dependency graph
	// contained a cycle (§3.1 reports 7% of call sites do).
	HadCycle bool
	// SimpleTemps counts temporaries introduced for simple arguments —
	// the quantity the greedy heuristic tries to minimize and the one
	// compared against OptimalSimpleTemps.
	SimpleTemps int
	// ComplexTemps counts temporaries used for complex arguments.
	ComplexTemps int
}

// Temps returns the total number of temporaries in the plan.
func (p Plan) Temps() int { return p.SimpleTemps + p.ComplexTemps }

// targetsOf returns the set of target registers of the given arg indices.
func targetsOf(args []ShuffleArg, idxs []int) regset.Set {
	var s regset.Set
	for _, i := range idxs {
		s = s.Add(args[i].Target)
	}
	return s
}

// GreedyShuffle computes an evaluation order per the paper's greedy
// algorithm (§3.1 steps 1–5):
//
//  1. build the dependency graph over the argument registers;
//  2. partition into simple and complex arguments;
//  3. evaluate all but one complex argument into stack temporaries,
//     choosing as the directly-evaluated complex argument one on which no
//     simple argument depends (if none exists, every complex argument
//     goes to a temporary);
//  4. repeatedly move an argument with no dependencies on the remaining
//     argument registers onto a "to be done last" stack;
//  5. on a cycle, greedily evaluate the argument causing the most
//     dependencies into a temporary (a free argument register when one
//     is available, otherwise the stack) and continue with step 4.
func GreedyShuffle(args []ShuffleArg, freeRegs regset.Set) Plan {
	var plan Plan
	var simple, complex []int
	for i, a := range args {
		if a.Complex {
			complex = append(complex, i)
		} else {
			simple = append(simple, i)
		}
	}

	// Step 3: pick the complex argument to evaluate directly into its
	// register: one whose target no simple argument reads.
	chosen := -1
	for _, c := range complex {
		ok := true
		for _, s := range simple {
			if args[s].Reads.Has(args[c].Target) {
				ok = false
				break
			}
		}
		if ok {
			chosen = c
			break
		}
	}
	for _, c := range complex {
		if c == chosen {
			continue
		}
		plan.Steps = append(plan.Steps, Step{Arg: c, Dest: DestStackTemp})
		plan.Moves = append(plan.Moves, c)
		plan.ComplexTemps++
	}
	if chosen >= 0 {
		plan.Steps = append(plan.Steps, Step{Arg: chosen, Dest: DestTarget})
	}

	// Steps 4 and 5 over the simple arguments.
	remaining := append([]int(nil), simple...)
	var doneLast []int // stack; popped LIFO after victims
	freePool := freeRegs
	for len(remaining) > 0 {
		pick := -1
		for k, i := range remaining {
			deps := args[i].Reads.
				Intersect(targetsOf(args, remaining)).
				Remove(args[i].Target)
			if deps.IsEmpty() {
				pick = k
				break
			}
		}
		if pick >= 0 {
			doneLast = append(doneLast, remaining[pick])
			remaining = append(remaining[:pick], remaining[pick+1:]...)
			continue
		}
		// Cycle: every remaining argument reads a remaining target.
		plan.HadCycle = true
		victim := 0
		best := -1
		for k, i := range remaining {
			count := 0
			for _, j := range remaining {
				if j != i && args[j].Reads.Has(args[i].Target) {
					count++
				}
			}
			if count > best {
				best = count
				victim = k
			}
		}
		v := remaining[victim]
		remaining = append(remaining[:victim], remaining[victim+1:]...)
		step := Step{Arg: v, Dest: DestStackTemp}
		if !freePool.IsEmpty() {
			r := bits.TrailingZeros64(uint64(freePool))
			freePool = freePool.Remove(r)
			step = Step{Arg: v, Dest: DestRegTemp, TempReg: r}
		}
		plan.Steps = append(plan.Steps, step)
		plan.Moves = append(plan.Moves, v)
		plan.SimpleTemps++
	}
	for k := len(doneLast) - 1; k >= 0; k-- {
		plan.Steps = append(plan.Steps, Step{Arg: doneLast[k], Dest: DestTarget})
	}
	return plan
}

// NaiveShuffle evaluates the simple arguments in their written order —
// the strategy the compiler used "before we installed this algorithm"
// (§4) — placing an argument in a temporary whenever a later simple
// argument still reads its target register. Complex arguments all go to
// stack temporaries up front (no register value may span their internal
// calls, so no target register or register temporary can be written
// until every call-containing argument has finished).
func NaiveShuffle(args []ShuffleArg, freeRegs regset.Set) Plan {
	var plan Plan
	freePool := freeRegs
	var simple []int
	for i, a := range args {
		if a.Complex {
			plan.Steps = append(plan.Steps, Step{Arg: i, Dest: DestStackTemp})
			plan.Moves = append(plan.Moves, i)
			plan.ComplexTemps++
		} else {
			simple = append(simple, i)
		}
	}
	for k, i := range simple {
		needTemp := false
		for _, j := range simple[k+1:] {
			if args[j].Reads.Has(args[i].Target) {
				needTemp = true
				break
			}
		}
		if !needTemp {
			plan.Steps = append(plan.Steps, Step{Arg: i, Dest: DestTarget})
			continue
		}
		step := Step{Arg: i, Dest: DestStackTemp}
		if !freePool.IsEmpty() {
			r := bits.TrailingZeros64(uint64(freePool))
			freePool = freePool.Remove(r)
			step = Step{Arg: i, Dest: DestRegTemp, TempReg: r}
		}
		plan.Steps = append(plan.Steps, step)
		plan.Moves = append(plan.Moves, i)
		plan.SimpleTemps++
	}
	if hasSimpleCycle(args) {
		plan.HadCycle = true
	}
	return plan
}

// OptimalShuffle searches every evaluation order of the simple arguments
// for one minimizing the number of temporaries (the problem is
// NP-complete in general, §3.1, but argument counts are small). Complex
// arguments are handled as in GreedyShuffle.
func OptimalShuffle(args []ShuffleArg, freeRegs regset.Set) Plan {
	order, temps := optimalOrder(args)
	plan := planFromOrder(args, order, temps, freeRegs)
	plan.SimpleTemps = len(temps)
	return plan
}

// OptimalSimpleTemps returns the minimum number of simple-argument
// temporaries over all evaluation orders, for comparing the greedy
// heuristic against the optimum (§3.1: greedy is optimal at all but 6 of
// 20,245 compiler call sites).
func OptimalSimpleTemps(args []ShuffleArg) int {
	_, temps := optimalOrder(args)
	return len(temps)
}

// optimalOrder returns an order of the simple args (as arg indices) and
// the set of args that must use temporaries under that order.
func optimalOrder(args []ShuffleArg) ([]int, map[int]bool) {
	var simple []int
	for i, a := range args {
		if !a.Complex {
			simple = append(simple, i)
		}
	}
	bestTemps := map[int]bool{}
	for _, i := range simple {
		bestTemps[i] = true // worst case: everything through temps
	}
	bestOrder := append([]int(nil), simple...)
	perm := append([]int(nil), simple...)
	var rec func(k int)
	found := false
	rec = func(k int) {
		if found && len(bestTemps) == 0 {
			return
		}
		if k == len(perm) {
			temps := tempsForOrder(args, perm)
			if !found || len(temps) < len(bestTemps) {
				found = true
				bestTemps = temps
				bestOrder = append([]int(nil), perm...)
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return bestOrder, bestTemps
}

// tempsForOrder returns which args need temporaries when simple args are
// evaluated in the given order: arg i needs one iff a later argument
// still reads i's target register.
func tempsForOrder(args []ShuffleArg, order []int) map[int]bool {
	temps := map[int]bool{}
	for k, i := range order {
		for _, j := range order[k+1:] {
			if args[j].Reads.Has(args[i].Target) {
				temps[i] = true
				break
			}
		}
	}
	return temps
}

// planFromOrder builds a Plan that evaluates complex args to temps, then
// the simple args in the given order with the given temp assignment.
func planFromOrder(args []ShuffleArg, order []int, temps map[int]bool, freeRegs regset.Set) Plan {
	var plan Plan
	for i, a := range args {
		if a.Complex {
			plan.Steps = append(plan.Steps, Step{Arg: i, Dest: DestStackTemp})
			plan.Moves = append(plan.Moves, i)
			plan.ComplexTemps++
		}
	}
	freePool := freeRegs
	for _, i := range order {
		if !temps[i] {
			plan.Steps = append(plan.Steps, Step{Arg: i, Dest: DestTarget})
			continue
		}
		step := Step{Arg: i, Dest: DestStackTemp}
		if !freePool.IsEmpty() {
			r := bits.TrailingZeros64(uint64(freePool))
			freePool = freePool.Remove(r)
			step = Step{Arg: i, Dest: DestRegTemp, TempReg: r}
		}
		plan.Steps = append(plan.Steps, step)
		plan.Moves = append(plan.Moves, i)
	}
	if hasSimpleCycle(args) {
		plan.HadCycle = true
	}
	return plan
}

// hasSimpleCycle reports whether the dependency graph over the simple
// arguments contains a directed cycle (arg i → arg j when i reads j's
// target).
func hasSimpleCycle(args []ShuffleArg) bool {
	var simple []int
	for i, a := range args {
		if !a.Complex {
			simple = append(simple, i)
		}
	}
	remaining := append([]int(nil), simple...)
	for len(remaining) > 0 {
		pick := -1
		for k, i := range remaining {
			deps := args[i].Reads.
				Intersect(targetsOf(args, remaining)).
				Remove(args[i].Target)
			if deps.IsEmpty() {
				pick = k
				break
			}
		}
		if pick < 0 {
			return true
		}
		remaining = append(remaining[:pick], remaining[pick+1:]...)
	}
	return false
}

// ValidOrder checks a plan against the shuffle correctness contract: no
// argument may read a target register after that register has been
// overwritten. It returns false if the plan would read clobbered data.
// (Complex arguments' internal calls save and restore live registers, so
// only direct target writes are modeled.)
func ValidOrder(args []ShuffleArg, plan Plan) bool {
	written := regset.Empty
	planned := map[int]bool{}
	for _, st := range plan.Steps {
		if planned[st.Arg] {
			return false // evaluated twice
		}
		planned[st.Arg] = true
		a := args[st.Arg]
		if !a.Reads.Intersect(written).Remove(a.Target).IsEmpty() {
			return false
		}
		if st.Dest == DestTarget {
			written = written.Add(a.Target)
		}
		if st.Dest == DestRegTemp {
			written = written.Add(st.TempReg)
		}
	}
	for i := range args {
		if !planned[i] {
			return false // argument never evaluated
		}
	}
	return true
}
