package core

import (
	"math/rand"
	"testing"

	"repro/internal/regset"
)

// swapArgs is the paper's f(y, x) example: y in a2 must reach a1 and x
// in a1 must reach a2 — a two-cycle requiring one temporary.
func swapArgs() []ShuffleArg {
	return []ShuffleArg{
		{Target: 0, Reads: regset.Of(1)}, // a1 ← y (in a2)
		{Target: 1, Reads: regset.Of(0)}, // a2 ← x (in a1)
	}
}

func TestGreedySwap(t *testing.T) {
	args := swapArgs()
	plan := GreedyShuffle(args, regset.Empty)
	if !plan.HadCycle {
		t.Error("swap should be detected as a cycle")
	}
	if plan.SimpleTemps != 1 {
		t.Errorf("swap needs exactly 1 temp, got %d", plan.SimpleTemps)
	}
	if !ValidOrder(args, plan) {
		t.Errorf("invalid plan: %+v", plan)
	}
	// With a free register available, it should be used instead of the stack.
	plan = GreedyShuffle(args, regset.Of(5))
	for _, st := range plan.Steps {
		if st.Dest == DestStackTemp {
			t.Error("free register should be preferred over stack temp")
		}
	}
}

// TestPaperNoShuffleExample is §2.3's f(x+y, y+1, y+z) with x in a1,
// y in a2, z in a3: evaluating y+1 last avoids all temporaries.
func TestPaperNoShuffleExample(t *testing.T) {
	args := []ShuffleArg{
		{Target: 0, Reads: regset.Of(0, 1)}, // a1 ← x+y
		{Target: 1, Reads: regset.Of(1)},    // a2 ← y+1
		{Target: 2, Reads: regset.Of(1, 2)}, // a3 ← y+z
	}
	plan := GreedyShuffle(args, regset.Empty)
	if plan.HadCycle {
		t.Error("no cycle here")
	}
	if plan.SimpleTemps != 0 {
		t.Errorf("greedy should need 0 temps, got %d", plan.SimpleTemps)
	}
	if !ValidOrder(args, plan) {
		t.Errorf("invalid plan: %+v", plan)
	}
	// y+1 must be the last evaluation.
	last := plan.Steps[len(plan.Steps)-1]
	if last.Arg != 1 {
		t.Errorf("y+1 should be evaluated last, got arg %d", last.Arg)
	}
	// A left-to-right ordering requires a temporary.
	naive := NaiveShuffle(args, regset.Empty)
	if naive.SimpleTemps == 0 {
		t.Error("naive left-to-right should need a temp")
	}
	if !ValidOrder(args, naive) {
		t.Errorf("invalid naive plan: %+v", naive)
	}
}

func TestNoDependencies(t *testing.T) {
	args := []ShuffleArg{
		{Target: 0, Reads: regset.Empty},
		{Target: 1, Reads: regset.Empty},
		{Target: 2, Reads: regset.Of(7)},
	}
	for _, plan := range []Plan{
		GreedyShuffle(args, regset.Empty),
		NaiveShuffle(args, regset.Empty),
		OptimalShuffle(args, regset.Empty),
	} {
		if plan.Temps() != 0 || plan.HadCycle || !ValidOrder(args, plan) {
			t.Errorf("independent args need no temps: %+v", plan)
		}
	}
}

func TestSelfReadIsNotADependency(t *testing.T) {
	// a1 ← a1+1 reads its own target only: no constraint.
	args := []ShuffleArg{{Target: 0, Reads: regset.Of(0)}}
	plan := GreedyShuffle(args, regset.Empty)
	if plan.Temps() != 0 || plan.HadCycle {
		t.Errorf("self-read should not force a temp: %+v", plan)
	}
}

func TestThreeCycle(t *testing.T) {
	// a1←a2, a2←a3, a3←a1: a rotation needs exactly one temporary.
	args := []ShuffleArg{
		{Target: 0, Reads: regset.Of(1)},
		{Target: 1, Reads: regset.Of(2)},
		{Target: 2, Reads: regset.Of(0)},
	}
	plan := GreedyShuffle(args, regset.Empty)
	if !plan.HadCycle || plan.SimpleTemps != 1 {
		t.Errorf("rotation: temps=%d cycle=%v", plan.SimpleTemps, plan.HadCycle)
	}
	if !ValidOrder(args, plan) {
		t.Errorf("invalid plan: %+v", plan)
	}
	if opt := OptimalSimpleTemps(args); opt != 1 {
		t.Errorf("optimal temps = %d, want 1", opt)
	}
}

func TestTwoDisjointCycles(t *testing.T) {
	// (a1 a2) swap and (a3 a4) swap: two temps.
	args := []ShuffleArg{
		{Target: 0, Reads: regset.Of(1)},
		{Target: 1, Reads: regset.Of(0)},
		{Target: 2, Reads: regset.Of(3)},
		{Target: 3, Reads: regset.Of(2)},
	}
	plan := GreedyShuffle(args, regset.Empty)
	if plan.SimpleTemps != 2 {
		t.Errorf("two swaps need 2 temps, got %d", plan.SimpleTemps)
	}
	if !ValidOrder(args, plan) {
		t.Errorf("invalid plan: %+v", plan)
	}
}

func TestGreedyBreaksCycleWithBestVictim(t *testing.T) {
	// a1 participates in two cycles (with a2 and with a3): removing a1
	// breaks both, so greedy should need only one temp.
	args := []ShuffleArg{
		{Target: 0, Reads: regset.Of(1, 2)}, // a1 reads a2, a3
		{Target: 1, Reads: regset.Of(0)},    // a2 reads a1
		{Target: 2, Reads: regset.Of(0)},    // a3 reads a1
	}
	plan := GreedyShuffle(args, regset.Empty)
	if plan.SimpleTemps != 1 {
		t.Errorf("greedy should break both cycles with one temp, got %d", plan.SimpleTemps)
	}
	if !ValidOrder(args, plan) {
		t.Errorf("invalid plan: %+v", plan)
	}
}

func TestComplexArgsGoToTemps(t *testing.T) {
	args := []ShuffleArg{
		{Target: 0, Complex: true},
		{Target: 1, Complex: true},
		{Target: 2, Reads: regset.Of(5)},
	}
	plan := GreedyShuffle(args, regset.Empty)
	if plan.ComplexTemps != 1 {
		t.Errorf("all but one complex arg should use temps, got %d", plan.ComplexTemps)
	}
	if !ValidOrder(args, plan) {
		t.Errorf("invalid plan: %+v", plan)
	}
	// The chosen complex argument is evaluated before any simple one.
	sawTarget := false
	for _, st := range plan.Steps {
		if st.Dest == DestTarget && args[st.Arg].Complex {
			sawTarget = true
		}
		if !args[st.Arg].Complex && !sawTarget {
			t.Fatalf("simple arg evaluated before the direct complex arg: %+v", plan.Steps)
		}
	}
}

func TestComplexChosenAvoidsSimpleDependency(t *testing.T) {
	// The simple arg reads a1, so the complex arg targeting a1 cannot be
	// evaluated directly; the one targeting a2 can.
	args := []ShuffleArg{
		{Target: 0, Complex: true},
		{Target: 1, Complex: true},
		{Target: 2, Reads: regset.Of(0)},
	}
	plan := GreedyShuffle(args, regset.Empty)
	for _, st := range plan.Steps {
		if st.Arg == 0 && st.Dest == DestTarget {
			t.Error("complex arg 0 must not be evaluated directly (simple arg reads its target)")
		}
	}
	if !ValidOrder(args, plan) {
		t.Errorf("invalid plan: %+v", plan)
	}
}

func TestAllComplexTargetsRead(t *testing.T) {
	// Every complex target is read by a simple arg: all complex args
	// must go through temporaries.
	args := []ShuffleArg{
		{Target: 0, Complex: true},
		{Target: 1, Reads: regset.Of(0)},
	}
	plan := GreedyShuffle(args, regset.Empty)
	if plan.ComplexTemps != 1 {
		t.Errorf("complex arg must use a temp, got %d", plan.ComplexTemps)
	}
	if !ValidOrder(args, plan) {
		t.Errorf("invalid plan: %+v", plan)
	}
}

// randomShuffleArgs builds a random shuffle problem over m arguments.
func randomShuffleArgs(r *rand.Rand, m int) []ShuffleArg {
	args := make([]ShuffleArg, m)
	targets := regset.Empty
	for i := range args {
		args[i].Target = i
		targets = targets.Add(i)
	}
	for i := range args {
		args[i].Reads = regset.Set(r.Uint64()) & regset.Set(targets)
	}
	return args
}

// TestGreedyValidOnRandomGraphs: every greedy plan must be executable
// without reading clobbered registers.
func TestGreedyValidOnRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		m := 1 + r.Intn(6)
		args := randomShuffleArgs(r, m)
		for _, plan := range []Plan{
			GreedyShuffle(args, regset.Empty),
			GreedyShuffle(args, regset.Of(6, 7)),
			NaiveShuffle(args, regset.Empty),
			OptimalShuffle(args, regset.Empty),
		} {
			if !ValidOrder(args, plan) {
				t.Fatalf("invalid plan for %+v: %+v", args, plan)
			}
		}
	}
}

// sparseShuffleArgs builds a realistically sparse shuffle problem: each
// argument reads at most two registers, like typical call sites, where
// "most dependency graph cycles are simple" (§3.1).
func sparseShuffleArgs(r *rand.Rand, m int) []ShuffleArg {
	args := make([]ShuffleArg, m)
	for j := range args {
		args[j].Target = j
		for k := 0; k < r.Intn(3); k++ {
			args[j].Reads = args[j].Reads.Add(r.Intn(m))
		}
	}
	return args
}

// TestGreedyNearOptimal: §3.1 reports the greedy heuristic is optimal at
// all but 6 of 20,245 compiler call sites, needing at most one extra
// temporary, "mainly because most dependency graph cycles are simple".
// On realistically sparse graphs we demand a near-perfect match rate; on
// adversarially dense graphs a weaker one. Greedy must never beat the
// exhaustive optimum and never exceed it by more than the cycle count.
func TestGreedyNearOptimal(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	check := func(gen func(*rand.Rand, int) []ShuffleArg, minMatch float64, label string) {
		total, matched := 0, 0
		for i := 0; i < 2000; i++ {
			m := 2 + r.Intn(5)
			args := gen(r, m)
			greedy := GreedyShuffle(args, regset.Empty).SimpleTemps
			opt := OptimalSimpleTemps(args)
			if greedy < opt {
				t.Fatalf("%s: greedy %d < optimal %d for %+v", label, greedy, opt, args)
			}
			if greedy > opt+2 {
				t.Fatalf("%s: greedy %d far from optimal %d for %+v", label, greedy, opt, args)
			}
			total++
			if greedy == opt {
				matched++
			}
		}
		if ratio := float64(matched) / float64(total); ratio < minMatch {
			t.Errorf("%s: greedy matched optimal on only %.1f%% of graphs (want ≥ %.0f%%)",
				label, ratio*100, minMatch*100)
		}
	}
	check(sparseShuffleArgs, 0.97, "sparse")
	check(randomShuffleArgs, 0.80, "dense")
}

// TestOptimalZeroWhenAcyclic: an acyclic dependency graph always admits
// a zero-temp order, and greedy must find one.
func TestOptimalZeroWhenAcyclic(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 3000; i++ {
		m := 2 + r.Intn(5)
		args := randomShuffleArgs(r, m)
		if hasSimpleCycle(args) {
			continue
		}
		if opt := OptimalSimpleTemps(args); opt != 0 {
			t.Fatalf("acyclic graph needs %d temps: %+v", opt, args)
		}
		if g := GreedyShuffle(args, regset.Empty); g.SimpleTemps != 0 || g.HadCycle {
			t.Fatalf("greedy used %d temps on acyclic graph: %+v", g.SimpleTemps, args)
		}
	}
}

func TestCycleDetectionConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 3000; i++ {
		m := 2 + r.Intn(5)
		args := randomShuffleArgs(r, m)
		plan := GreedyShuffle(args, regset.Empty)
		if plan.HadCycle != hasSimpleCycle(args) {
			t.Fatalf("cycle flag mismatch for %+v", args)
		}
		// No cycle ⟺ zero simple temps under greedy.
		if !plan.HadCycle && plan.SimpleTemps != 0 {
			t.Fatalf("no cycle but %d temps", plan.SimpleTemps)
		}
		if plan.HadCycle && plan.SimpleTemps == 0 {
			t.Fatalf("cycle but no temps")
		}
	}
}

func TestEmptyArgs(t *testing.T) {
	plan := GreedyShuffle(nil, regset.Empty)
	if len(plan.Steps) != 0 || plan.Temps() != 0 {
		t.Errorf("empty call should produce an empty plan: %+v", plan)
	}
}
