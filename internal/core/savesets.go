// Package core implements the paper's register-allocation algorithms:
//
//   - the simple save-placement function S[E] of §2.1.1,
//   - the revised S_t[E]/S_f[E] save-placement algorithm of §2.1.3
//     (including the derived Figure 1 equations for not/and/or),
//   - the eager-restore "possibly referenced before the next call"
//     analysis of §2.2 and §3.2, and
//   - the greedy argument-shuffling algorithm of §2.3 and §3.1, together
//     with the exhaustive-optimal and naive baselines used to evaluate
//     it.
//
// The algorithms are expressed as bottom-up set combinators over
// register sets so the compiler pass (internal/codegen) can fold them
// directly over its richer IR, while the paper's simplified expression
// language (simple.go) exercises exactly the equations printed in §2.
package core

import "repro/internal/regset"

// SaveSets carries the pair (S_t[E], S_f[E]) of the revised algorithm:
// the registers to save around E if E should evaluate to true,
// respectively false. A register is saved around E iff it is in
// S_t[E] ∩ S_f[E].
type SaveSets struct {
	T regset.Set
	F regset.Set
}

// Save returns the registers to save around the expression:
// S_t[E] ∩ S_f[E].
func (s SaveSets) Save() regset.Set { return s.T.Intersect(s.F) }

// LeafSets is S_t/S_f for a variable reference or for any other trivial
// expression that makes no calls and whose result may be either true or
// false: both sets are empty.
func LeafSets() SaveSets { return SaveSets{} }

// TrueSets is S_t/S_f for the constant true. Since it is impossible for
// true to evaluate to false, S_f[true] = R, the set of all registers —
// the identity for intersection — so impossible paths do not restrict
// the result. R is the full register universe of the machine.
func TrueSets(r regset.Set) SaveSets { return SaveSets{T: regset.Empty, F: r} }

// FalseSets is S_t/S_f for the constant false (the mirror of TrueSets).
func FalseSets(r regset.Set) SaveSets { return SaveSets{T: r, F: regset.Empty} }

// CallSets is S_t/S_f for a call expression: the registers live after the
// call must be saved regardless of the call's result.
func CallSets(liveAfter regset.Set) SaveSets {
	return SaveSets{T: liveAfter, F: liveAfter}
}

// SeqSets combines (seq E1 E2):
//
//	S_t[seq] = (S_t[E1] ∩ S_f[E1]) ∪ S_t[E2]
//	S_f[seq] = (S_t[E1] ∩ S_f[E1]) ∪ S_f[E2]
//
// E1's contribution is its unconditional save set, because both of E1's
// outcomes flow into E2.
func SeqSets(e1, e2 SaveSets) SaveSets {
	s1 := e1.Save()
	return SaveSets{T: s1.Union(e2.T), F: s1.Union(e2.F)}
}

// IfSets combines (if E1 E2 E3):
//
//	S_t[if] = (S_t[E1] ∪ S_t[E2]) ∩ (S_f[E1] ∪ S_t[E3])
//	S_f[if] = (S_t[E1] ∪ S_f[E2]) ∩ (S_f[E1] ∪ S_f[E3])
//
// Each conjunct is one control path: along a path we take the union of
// the registers to save at each node, and across alternative paths the
// intersection.
func IfSets(test, then, els SaveSets) SaveSets {
	return SaveSets{
		T: test.T.Union(then.T).Intersect(test.F.Union(els.T)),
		F: test.T.Union(then.F).Intersect(test.F.Union(els.F)),
	}
}

// BindSets combines a binding of register r with right-hand side rhs and
// body scope. The binder behaves like a seq for control flow, except
// that saves of r itself cannot float above the point where r is
// defined, so r is removed from the propagated sets. The caller is
// responsible for inserting a save point for r at the binder when
// r ∈ S_t[body] ∩ S_f[body] (see SaveAtBind).
func BindSets(r int, rhs, body SaveSets) SaveSets {
	s := SeqSets(rhs, SaveSets{T: body.T.Remove(r), F: body.F.Remove(r)})
	return s
}

// SaveAtBind reports whether the binder of register r must save r
// immediately (a call is inevitable in the binder's body).
func SaveAtBind(r int, body SaveSets) bool {
	return body.Save().Has(r)
}

// NotSets is the derived Figure 1 equation for (not E) = (if E false true):
//
//	S_t[(not E)] = S_f[E]
//	S_f[(not E)] = S_t[E]
func NotSets(e SaveSets) SaveSets { return SaveSets{T: e.F, F: e.T} }

// AndSets is the derived Figure 1 equation for
// (and E1 E2) = (if E1 E2 false):
//
//	S_t[and] = S_t[E1] ∪ S_t[E2]
//	S_f[and] = (S_t[E1] ∪ S_f[E2]) ∩ S_f[E1]
func AndSets(e1, e2 SaveSets) SaveSets {
	return SaveSets{
		T: e1.T.Union(e2.T),
		F: e1.T.Union(e2.F).Intersect(e1.F),
	}
}

// OrSets is the derived Figure 1 equation for
// (or E1 E2) = (if E1 true E2):
//
//	S_t[or] = S_t[E1] ∩ (S_f[E1] ∪ S_t[E2])
//	S_f[or] = S_f[E1] ∪ S_f[E2]
func OrSets(e1, e2 SaveSets) SaveSets {
	return SaveSets{
		T: e1.T.Intersect(e1.F.Union(e2.T)),
		F: e1.F.Union(e2.F),
	}
}

// --- the simple algorithm of §2.1.1, kept for comparison and ablation ---

// SimpleSets is the one-set save function S[E] of the simple algorithm.
type SimpleSets struct{ S regset.Set }

// SimpleLeaf is S[x] = S[true] = S[false] = ∅.
func SimpleLeaf() SimpleSets { return SimpleSets{} }

// SimpleCall is S[call] = {r | r live after the call}.
func SimpleCall(liveAfter regset.Set) SimpleSets { return SimpleSets{S: liveAfter} }

// SimpleSeq is S[(seq E1 E2)] = S[E1] ∪ S[E2].
func SimpleSeq(e1, e2 SimpleSets) SimpleSets { return SimpleSets{S: e1.S.Union(e2.S)} }

// SimpleIf is S[(if E1 E2 E3)] = S[E1] ∪ (S[E2] ∩ S[E3]).
func SimpleIf(test, then, els SimpleSets) SimpleSets {
	return SimpleSets{S: test.S.Union(then.S.Intersect(els.S))}
}
