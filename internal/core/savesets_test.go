package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/regset"
)

// nRegs is the register universe size used by the tests.
const nRegs = 8

var testR = regset.Universe(nRegs)

// genExpr builds a random simplified-language expression of bounded
// depth, for property testing the placement algorithms against the
// path-enumeration ground truth.
func genExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return Var{Reg: r.Intn(nRegs)}
		case 1:
			return True{}
		case 2:
			return False{}
		default:
			return Call{LiveAfter: regset.Set(r.Uint64()) & regset.Set(testR)}
		}
	}
	switch r.Intn(6) {
	case 0:
		return Var{Reg: r.Intn(nRegs)}
	case 1:
		return True{}
	case 2:
		return False{}
	case 3:
		return Call{LiveAfter: regset.Set(r.Uint64()) & regset.Set(testR)}
	case 4:
		return Seq{E1: genExpr(r, depth-1), E2: genExpr(r, depth-1)}
	default:
		return If{Test: genExpr(r, depth-1), Then: genExpr(r, depth-1), Else: genExpr(r, depth-1)}
	}
}

// randomExpr wraps Expr for testing/quick generation.
type randomExpr struct{ E Expr }

func (randomExpr) Generate(r *rand.Rand, size int) interface{} {
	panic("unused")
}

func TestPaperExample(t *testing.T) {
	// §2.1.2–2.1.3: A = (if (if x call false) y call).
	// Let L be the live set after both calls; the paper's walkthrough
	// uses S[call inner] = {y} ∪ L and S[call outer] = L.
	y := 3
	L := regset.Of(1, 2)
	inner := If{
		Test: Var{Reg: 0},
		Then: Call{LiveAfter: L.Add(y)},
		Else: False{},
	}
	a := If{Test: inner, Then: Var{Reg: y}, Else: Call{LiveAfter: L}}

	// The simple algorithm is too lazy: S[A] = ∅.
	if s := Simple(a); !s.IsEmpty() {
		t.Errorf("simple S[A] = %s, want empty", s)
	}

	// The revised algorithm saves all of L around A.
	sets := Revised(a, testR)
	if sets.T != L {
		t.Errorf("S_t[A] = %s, want %s", sets.T, L)
	}
	if sets.F != L {
		t.Errorf("S_f[A] = %s, want %s", sets.F, L)
	}
	if sets.Save() != L {
		t.Errorf("save set = %s, want %s", sets.Save(), L)
	}

	// The inner if saves nothing itself (S_t[B] ∩ S_f[B] = ∅).
	b := Revised(inner, testR)
	if want := L.Add(y); b.T != want {
		t.Errorf("S_t[B] = %s, want %s", b.T, want)
	}
	if !b.F.IsEmpty() {
		t.Errorf("S_f[B] = %s, want empty", b.F)
	}
	if !b.Save().IsEmpty() {
		t.Errorf("inner save set = %s, want empty", b.Save())
	}
}

// TestRevisedMatchesPathEnumeration verifies the recursive S_t/S_f
// equations against brute-force enumeration of feasible control paths —
// the semantic definition in §2.1.3.
func TestRevisedMatchesPathEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		e := genExpr(r, 4)
		got := Revised(e, testR)
		want := PathSets(e, testR)
		if got != want {
			t.Fatalf("expr %s:\n got %s\nwant %s", e, FormatSets(got), FormatSets(want))
		}
	}
}

// TestNeverTooEager: if there is a feasible path through E without
// calls, then S_t[E] ∩ S_f[E] = ∅.
func TestNeverTooEager(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		e := genExpr(r, 4)
		if HasCallFreePath(e) {
			if s := Revised(e, testR).Save(); !s.IsEmpty() {
				t.Fatalf("expr %s has a call-free path but save set %s", e, s)
			}
		}
	}
}

// TestSimpleSubsetOfRevised: S[E] ⊆ S_t[E] ∩ S_f[E] — the revised
// algorithm is not as lazy as the simple algorithm.
func TestSimpleSubsetOfRevised(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		e := genExpr(r, 4)
		simple := Simple(e)
		revised := Revised(e, testR).Save()
		if !simple.SubsetOf(revised) {
			t.Fatalf("expr %s: S[E]=%s not ⊆ revised %s", e, simple, revised)
		}
	}
}

// TestSoundness: every register in the save set is genuinely needed on
// all feasible paths — it appears in the live-after set of some call on
// each path. (Follows from PathSets equality, but checked directly.)
func TestSoundnessAgainstPaths(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		e := genExpr(r, 4)
		save := Revised(e, testR).Save()
		for _, p := range paths(e) {
			if !save.SubsetOf(p.saves) {
				t.Fatalf("expr %s: save %s not ⊆ path saves %s", e, save, p.saves)
			}
		}
	}
}

// TestCallInevitableViaRet reproduces the §2.4 technique: add a
// caller-save return register ret that is live after every call; then
// ret ∈ S_t[E] ∩ S_f[E] iff E inevitably calls.
func TestCallInevitableViaRet(t *testing.T) {
	const ret = nRegs // one past the ordinary registers
	universe := testR.Add(ret)
	var addRet func(e Expr) Expr
	addRet = func(e Expr) Expr {
		switch t := e.(type) {
		case Call:
			return Call{LiveAfter: t.LiveAfter.Add(ret)}
		case Seq:
			return Seq{E1: addRet(t.E1), E2: addRet(t.E2)}
		case If:
			return If{Test: addRet(t.Test), Then: addRet(t.Then), Else: addRet(t.Else)}
		default:
			return e
		}
	}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		e := genExpr(r, 4)
		withRet := addRet(e)
		save := Revised(withRet, universe).Save()
		if save.Has(ret) != CallInevitable(e) {
			t.Fatalf("expr %s: ret∈save=%v but CallInevitable=%v",
				e, save.Has(ret), CallInevitable(e))
		}
	}
}

// TestFigure1Not verifies S_t[(not E)] = S_f[E] and S_f[(not E)] = S_t[E]
// against the if-expansion (not E) = (if E false true).
func TestFigure1Not(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		e := genExpr(r, 3)
		se := Revised(e, testR)
		derived := NotSets(se)
		expanded := Revised(If{Test: e, Then: False{}, Else: True{}}, testR)
		if derived != expanded {
			t.Fatalf("not %s: derived %s != expanded %s",
				e, FormatSets(derived), FormatSets(expanded))
		}
	}
}

// TestFigure1And verifies the derived and-equations against the
// expansion (and E1 E2) = (if E1 E2 false).
func TestFigure1And(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		e1 := genExpr(r, 3)
		e2 := genExpr(r, 3)
		derived := AndSets(Revised(e1, testR), Revised(e2, testR))
		expanded := Revised(If{Test: e1, Then: e2, Else: False{}}, testR)
		if derived != expanded {
			t.Fatalf("and %s %s: derived %s != expanded %s",
				e1, e2, FormatSets(derived), FormatSets(expanded))
		}
	}
}

// TestFigure1Or verifies the derived or-equations against the expansion
// (or E1 E2) = (if E1 true E2).
func TestFigure1Or(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		e1 := genExpr(r, 3)
		e2 := genExpr(r, 3)
		derived := OrSets(Revised(e1, testR), Revised(e2, testR))
		expanded := Revised(If{Test: e1, Then: True{}, Else: e2}, testR)
		if derived != expanded {
			t.Fatalf("or %s %s: derived %s != expanded %s",
				e1, e2, FormatSets(derived), FormatSets(expanded))
		}
	}
}

// TestShortCircuitDeficiency reproduces §2.1.2: the simple algorithm
// computes S = ∅ for (if (and x call) y call) even though a call is
// inevitable, while the revised algorithm saves the live registers.
func TestShortCircuitDeficiency(t *testing.T) {
	live := regset.Of(1, 2, 3)
	e := If{
		Test: If{Test: Var{Reg: 0}, Then: Call{LiveAfter: live}, Else: False{}},
		Then: Var{Reg: 1},
		Else: Call{LiveAfter: live},
	}
	if !CallInevitable(e) {
		t.Fatal("a call should be inevitable through this expression")
	}
	if s := Simple(e); !s.IsEmpty() {
		t.Errorf("simple algorithm: S = %s, want ∅ (too lazy)", s)
	}
	if s := Revised(e, testR).Save(); s != live {
		t.Errorf("revised algorithm: save = %s, want %s", s, live)
	}
}

func TestBindSets(t *testing.T) {
	// (bind r ← simple-rhs in (seq call[r live] r)): r's save cannot
	// float above the binder, but other registers' saves do.
	r := 2
	other := regset.Of(5)
	body := SeqSets(CallSets(other.Add(r)), LeafSets())
	rhs := LeafSets()
	got := BindSets(r, rhs, body)
	if got.Save().Has(r) {
		t.Errorf("r must not escape its binder: %s", FormatSets(got))
	}
	if !got.Save().Has(5) {
		t.Errorf("other registers should propagate: %s", FormatSets(got))
	}
	if !SaveAtBind(r, body) {
		t.Error("binder should save r (call inevitable in body)")
	}
	// No call in body: nothing to save at the binder.
	if SaveAtBind(r, LeafSets()) {
		t.Error("no call: binder should not save")
	}
}

func TestSeqAssociativityOfSave(t *testing.T) {
	// The unconditional save set of a sequence is order-insensitive in
	// the sense that (seq (seq a b) c) and (seq a (seq b c)) agree.
	check := func(aT, aF, bT, bF, cT, cF uint8) bool {
		a := SaveSets{T: regset.Set(aT), F: regset.Set(aF)}
		b := SaveSets{T: regset.Set(bT), F: regset.Set(bF)}
		c := SaveSets{T: regset.Set(cT), F: regset.Set(cF)}
		left := SeqSets(SeqSets(a, b), c)
		right := SeqSets(a, SeqSets(b, c))
		return left == right
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRefsCombinators(t *testing.T) {
	after := regset.Of(1, 2)
	if got := RefUse(3, after); got != regset.Of(1, 2, 3) {
		t.Errorf("RefUse = %s", got)
	}
	if got := RefDef(1, after); got != regset.Of(2) {
		t.Errorf("RefDef = %s", got)
	}
	if got := RefCallBoundary(); !got.IsEmpty() {
		t.Errorf("RefCallBoundary = %s", got)
	}
	if got := RefBranch(regset.Of(1), regset.Of(2)); got != regset.Of(1, 2) {
		t.Errorf("RefBranch = %s", got)
	}
	if got := RestoreSet(regset.Of(1, 2, 3), regset.Of(2, 3, 4)); got != regset.Of(2, 3) {
		t.Errorf("RestoreSet = %s", got)
	}
}
