package core

import "repro/internal/regset"

// This file holds the eager-restore analysis of §2.2/§3.2: a backward
// "possibly referenced before the next call" computation. The compiler's
// second pass folds these combinators over the IR; restores for the
// possibly-referenced registers are inserted immediately after calls.
//
// The analysis is a *may* analysis — branches join with union — which is
// what makes the restores eager: a register referenced on either arm of
// an if is restored right after the preceding call, possibly needlessly
// on the arm that does not touch it (Figure 2a/2b). The paper found the
// memory-latency benefit of early restores offsets those unnecessary
// loads.

// RefUse extends the possibly-referenced set with a register use.
func RefUse(r int, after regset.Set) regset.Set { return after.Add(r) }

// RefDef removes a register from the possibly-referenced set at the
// point where it is (re)defined: references after a fresh definition do
// not require restoring the old value.
func RefDef(r int, after regset.Set) regset.Set { return after.Remove(r) }

// RefCallBoundary is the possibly-referenced set seen *before* a call:
// empty, because the call's own restores re-establish anything
// referenced after it, and argument-register reads made by the call's
// own setup are accounted for explicitly by the caller of this function.
func RefCallBoundary() regset.Set { return regset.Empty }

// RefBranch joins the two arms of a conditional (union: may analysis).
func RefBranch(thenRefs, elseRefs regset.Set) regset.Set {
	return thenRefs.Union(elseRefs)
}

// RestoreSet is the set restored immediately after a call: the registers
// possibly referenced before the next call, limited to the registers the
// enclosing save regions have actually saved.
func RestoreSet(refsAfter, saved regset.Set) regset.Set {
	return refsAfter.Intersect(saved)
}
