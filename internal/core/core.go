package core
