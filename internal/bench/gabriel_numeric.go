package bench

import "fmt"

// Numeric and array Gabriel benchmarks: fft, puzzle, triang, fxtriang.

func init() {
	register(Program{
		Name:        "fft",
		Description: "fast Fourier transform on 256 flonum points",
		Source: `
(define pi 3.141592653589793)

;; In-place radix-2 FFT over vectors re/im of n points stored 1..n
;; (slot 0 unused, matching the Gabriel original's layout).

(define (log2-of n)
  (let loop ([m 0] [i 1])
    (if (< i n) (loop (+ m 1) (* i 2)) m)))

;; interchange elements in bit-reversed order
(define (bit-reverse! re im n)
  (let loop ([i 1] [j 1])
    (if (< i n)
        (begin
          (when (< i j)
            (let ([tr (vector-ref re j)] [ti (vector-ref im j)])
              (vector-set! re j (vector-ref re i))
              (vector-set! im j (vector-ref im i))
              (vector-set! re i tr)
              (vector-set! im i ti)))
          (let adjust ([j j] [k (quotient n 2)])
            (if (< k j)
                (adjust (- j k) (quotient k 2))
                (loop (+ i 1) (+ j k)))))
        'ok)))

(define (butterfly! re im n ii le le1 ur ui)
  (if (> ii n)
      'ok
      (let* ([ip (+ ii le1)]
             [tr (- (* (vector-ref re ip) ur) (* (vector-ref im ip) ui))]
             [ti (+ (* (vector-ref re ip) ui) (* (vector-ref im ip) ur))])
        (vector-set! re ip (- (vector-ref re ii) tr))
        (vector-set! im ip (- (vector-ref im ii) ti))
        (vector-set! re ii (+ (vector-ref re ii) tr))
        (vector-set! im ii (+ (vector-ref im ii) ti))
        (butterfly! re im n (+ ii le) le le1 ur ui))))

(define (stage! re im n le le1 wr wi jj ur ui)
  (if (> jj le1)
      'ok
      (begin
        (butterfly! re im n jj le le1 ur ui)
        (stage! re im n le le1 wr wi (+ jj 1)
                (- (* ur wr) (* ui wi))
                (+ (* ur wi) (* ui wr))))))

(define (fft re im)
  (let* ([n (- (vector-length re) 1)]
         [m (log2-of n)])
    (bit-reverse! re im n)
    (let stages ([l 1] [le 2])
      (if (> l m)
          #t
          (let* ([le1 (quotient le 2)]
                 [flle1 (exact->inexact le1)]
                 [wr (cos (/ pi flle1))]
                 [wi (- 0.0 (sin (/ pi flle1)))])
            (stage! re im n le le1 wr wi 1 1.0 0.0)
            (stages (+ l 1) (* le 2)))))))

(define (make-input n)
  (let ([v (make-vector (+ n 1) 0.0)])
    (do ([i 1 (+ i 1)]) ((> i n) v)
      (vector-set! v i (exact->inexact (modulo (* i 7) 19))))))

(define (energy v n)
  (let loop ([i 1] [acc 0.0])
    (if (> i n)
        acc
        (loop (+ i 1) (+ acc (* (vector-ref v i) (vector-ref v i)))))))

(define (run k)
  (if (zero? k)
      'done
      (let ([re (make-input 256)]
            [im (make-vector 257 0.0)])
        (fft re im)
        ;; Parseval sanity: output energy must be n times input energy.
        (let ([in-e (energy (make-input 256) 256)]
              [out-e (+ (energy re 256) (energy im 256))])
          (if (< (abs (- out-e (* 256.0 in-e))) 1.0)
              (run (- k 1))
              (error "fft energy mismatch" out-e))))))
(run 4)`,
		Expect: "done",
	})

	register(Program{
		Name:        "puzzle",
		Description: "Forest Baskett's combinatorial bin-packing puzzle",
		Source:      puzzleSource,
		Expect:      "#t",
	})

	register(Program{
		Name:        "triang",
		Description: "triangle-board peg solitaire search (solution budget 60)",
		Source:      triangSource(60),
		Expect:      "60",
	})

	register(Program{
		Name:        "fxtriang",
		Description: "fixnum-tuned triangle-board search (solution budget 200)",
		Source:      triangSource(200),
		Expect:      "200",
	})
}

const puzzleSource = `
(define size 511)
(define classmax 3)
(define typemax 12)

(define *iii* (box 0))
(define *kount* (box 0))
(define *d* 8)

(define piececount (make-vector (+ classmax 1) 0))
(define class (make-vector (+ typemax 1) 0))
(define piecemax (make-vector (+ typemax 1) 0))
(define puzzle (make-vector (+ size 1) #f))
(define p (make-vector (+ typemax 1) #f))

(define (fit i j)
  (let ([end (vector-ref piecemax i)])
    (let loop ([k 0])
      (cond
        [(> k end) #t]
        [(and (vector-ref (vector-ref p i) k)
              (vector-ref puzzle (+ j k)))
         #f]
        [else (loop (+ k 1))]))))

(define (place i j)
  (let ([end (vector-ref piecemax i)])
    (do ([k 0 (+ k 1)]) ((> k end))
      (if (vector-ref (vector-ref p i) k)
          (vector-set! puzzle (+ j k) #t)
          #f))
    (vector-set! piececount (vector-ref class i)
                 (- (vector-ref piececount (vector-ref class i)) 1))
    (let loop ([k j])
      (cond
        [(> k size) 0]
        [(not (vector-ref puzzle k)) k]
        [else (loop (+ k 1))]))))

(define (puzzle-remove i j)
  (let ([end (vector-ref piecemax i)])
    (do ([k 0 (+ k 1)]) ((> k end))
      (if (vector-ref (vector-ref p i) k)
          (vector-set! puzzle (+ j k) #f)
          #f))
    (vector-set! piececount (vector-ref class i)
                 (+ (vector-ref piececount (vector-ref class i)) 1))))

(define (trial j)
  (set-box! *kount* (+ (unbox *kount*) 1))
  (let loop ([i 0])
    (cond
      [(> i typemax) #f]
      [(zero? (vector-ref piececount (vector-ref class i))) (loop (+ i 1))]
      [(not (fit i j)) (loop (+ i 1))]
      [else
       (let ([k (place i j)])
         (cond
           [(or (trial k) (zero? k)) #t]
           [else (puzzle-remove i j) (loop (+ i 1))]))])))

(define (definepiece iclass ii jj kk)
  (let ([index (box 0)])
    (do ([i 0 (+ i 1)]) ((> i ii))
      (do ([j 0 (+ j 1)]) ((> j jj))
        (do ([k 0 (+ k 1)]) ((> k kk))
          (set-box! index (+ i (* *d* (+ j (* *d* k)))))
          (vector-set! (vector-ref p (unbox *iii*)) (unbox index) #t))))
    (vector-set! class (unbox *iii*) iclass)
    (vector-set! piecemax (unbox *iii*) (unbox index))
    (if (not (= (unbox *iii*) typemax))
        (set-box! *iii* (+ (unbox *iii*) 1))
        #f)))

(define (start)
  (do ([m 0 (+ m 1)]) ((> m size)) (vector-set! puzzle m #t))
  (do ([i 1 (+ i 1)]) ((> i 5))
    (do ([j 1 (+ j 1)]) ((> j 5))
      (do ([k 1 (+ k 1)]) ((> k 5))
        (vector-set! puzzle (+ i (* *d* (+ j (* *d* k)))) #f))))
  (do ([i 0 (+ i 1)]) ((> i typemax))
    (vector-set! p i (make-vector (+ size 1) #f)))
  (do ([i 0 (+ i 1)]) ((> i classmax)) (vector-set! piececount i 0))
  (set-box! *iii* 0)
  (definepiece 0 3 1 0)
  (definepiece 0 1 0 3)
  (definepiece 0 0 3 1)
  (definepiece 0 1 3 0)
  (definepiece 0 3 0 1)
  (definepiece 0 0 1 3)
  (definepiece 1 2 0 0)
  (definepiece 1 0 2 0)
  (definepiece 1 0 0 2)
  (definepiece 2 1 1 0)
  (definepiece 2 1 0 1)
  (definepiece 2 0 1 1)
  (definepiece 3 1 1 1)
  (vector-set! piececount 0 13)
  (vector-set! piececount 1 3)
  (vector-set! piececount 2 1)
  (vector-set! piececount 3 1)
  (let ([n (+ 1 (* *d* (+ 1 *d*)))])
    (cond
      [(fit 0 n) (let ([k (place 0 n)]) (trial k))]
      [else #f])))
(start)`

// triangSource builds the triang peg-solitaire search with a solution
// budget: the full Gabriel run finds 775 solutions over ~22M trials;
// the budget caps the work while preserving the search's call behaviour.
// The jump tables are the original's.
func triangSource(budget int) string {
	return `
(define board (make-vector 16 1))
(define sequence (make-vector 14 0))
(define a (list->vector
  '(1 2 4 3 5 6 1 3 6 2 5 4 11 12 13 7 8 4 4 7 11 8 12 13 6 10 15 9 14 13 13 14 15 9 10 6 6)))
(define b (list->vector
  '(2 4 7 5 8 9 3 6 10 5 9 8 12 13 14 8 9 5 2 4 7 5 8 9 3 6 10 5 9 8 12 13 14 8 9 5 5)))
(define c (list->vector
  '(4 7 11 8 12 13 6 10 15 9 14 13 13 14 15 9 10 6 1 2 4 3 5 6 1 3 6 2 5 4 11 12 13 7 8 4 4)))
(define answer (box '()))
(define found (box 0))
(define budget ` + itoa(budget) + `)

(define (last-position)
  (let loop ([i 1])
    (cond
      [(> i 15) 0]
      [(= 1 (vector-ref board i)) i]
      [else (loop (+ i 1))])))

(define (ttry i depth)
  (and (< (unbox found) budget)
       (cond
         [(= depth 14)
          (let ([lp (last-position)])
            (if (not (member lp (unbox answer)))
                (set-box! answer (cons lp (unbox answer)))
                #f))
          (set-box! found (+ (unbox found) 1))
          #f]
         [(and (= 1 (vector-ref board (vector-ref a i)))
               (= 1 (vector-ref board (vector-ref b i)))
               (= 0 (vector-ref board (vector-ref c i))))
          (vector-set! board (vector-ref a i) 0)
          (vector-set! board (vector-ref b i) 0)
          (vector-set! board (vector-ref c i) 1)
          (vector-set! sequence depth i)
          (do ([j 0 (+ j 1)])
              ((or (> j 36) (>= (unbox found) budget)) #f)
            (ttry j (+ depth 1)))
          (vector-set! board (vector-ref a i) 1)
          (vector-set! board (vector-ref b i) 1)
          (vector-set! board (vector-ref c i) 0)
          #f]
         [else #f])))

(define (gogogo i)
  (vector-set! board 5 0)
  (ttry i 1))
(gogogo 22)
(unbox found)`
}

func itoa(n int) string {
	return fmt.Sprintf("%d", n)
}
